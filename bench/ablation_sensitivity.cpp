// Ablation — the Definition-4 sensitivity thresholds RT and DT.
//
// The paper picks RT = 2.8 and DT = 8 "by sensitivity test" against the
// reference method. This bench sweeps both thresholds over a workload with
// injected ground truth and reports precision/recall per setting — the
// trade-off surface behind the paper's operating point: loose thresholds
// flood the operator with alarms, tight ones miss true events, and the
// dual criterion (ratio AND difference) beats either criterion alone.
#include "bench/bench_util.h"

#include "eval/metrics.h"

namespace {

using namespace tiresias;
using namespace tiresias::workload;

struct Scored {
  double rt;
  double dt;
  eval::ConfusionCounts counts;
};

}  // namespace

int main() {
  bench::banner("Ablation: RT/DT",
                "sensitivity-threshold sweep (Definition 4)");
  const auto spec = ccdNetworkWorkload(Scale::kTest);
  const auto& h = spec.hierarchy;
  bench::note("CCD network (test preset), 4 days, 12 injected spikes; "
              "scored against the injection ledger");

  GroundTruthLedger ledger;
  Rng rng(42);
  const std::size_t window = 96;
  for (int i = 0; i < 12; ++i) {
    const auto node = static_cast<NodeId>(rng.below(h.size() - 1) + 1);
    ledger.add({node, static_cast<TimeUnit>(120 + i * 20), 2,
                35.0 + static_cast<double>(rng.below(35))});
  }
  auto injector = std::make_shared<AnomalyInjector>(h, ledger);

  // One detector pass records every (node, unit, actual, forecast); the
  // RT/DT sweep is then pure post-processing, as a real sensitivity test
  // would do.
  struct Decision {
    NodeId node;
    TimeUnit unit;
    double actual;
    double forecast;
  };
  std::vector<Decision> decisions;
  {
    DetectorConfig cfg = bench::paperConfig(window, 8.0, bench::hwFactory());
    cfg.ratioThreshold = 1.0;  // record everything; judge in the sweep
    cfg.diffThreshold = -1e18;
    AdaDetector ada(h, cfg);
    GeneratorSource src(spec, 0, 96 * 4, 99, injector);
    TimeUnitBatcher batcher(src, spec.unit, 0);
    while (auto b = batcher.next()) {
      if (auto r = ada.step(*b)) {
        for (NodeId n : r->shhh) {
          const auto series = ada.seriesOf(n);
          const auto fc = ada.forecastSeriesOf(n);
          decisions.push_back({n, r->unit, series.back(), fc.back()});
        }
      }
    }
  }

  auto score = [&](double rt, double dt) {
    Scored s{rt, dt, {}};
    for (const auto& d : decisions) {
      const bool flagged = isAnomalous(d.actual, d.forecast, rt, dt);
      const bool real = ledger.matches(h, d.node, d.unit);
      if (flagged && real) {
        ++s.counts.tp;
      } else if (flagged) {
        ++s.counts.fp;
      } else if (real) {
        ++s.counts.fn;
      } else {
        ++s.counts.tn;
      }
    }
    return s;
  };

  const std::vector<double> rts{1.2, 2.0, 2.8, 4.0, 8.0};
  const std::vector<double> dts{0, 4, 8, 16, 32};
  AsciiTable table({"RT \\ DT", "0", "4", "8", "16", "32"});
  std::vector<std::vector<Scored>> grid;
  for (double rt : rts) {
    std::vector<Scored> row;
    std::vector<std::string> cells{fmtF(rt, 1)};
    for (double dt : dts) {
      row.push_back(score(rt, dt));
      const auto& c = row.back().counts;
      cells.push_back("P" + fmtPct(c.precision(), 0) + "/R" +
                      fmtPct(c.recall(), 0));
    }
    grid.push_back(std::move(row));
    table.addRow(cells);
  }
  std::printf("cells are precision/recall of flagged (node,unit) decisions\n");
  table.print(std::cout);

  const auto paperPoint = score(2.8, 8.0);
  const auto ratioOnly = score(2.8, 0.0);
  const auto diffOnly = score(1.0, 8.0);
  std::printf("paper operating point RT=2.8 DT=8: precision %s recall %s "
              "F1 %.2f\n",
              fmtPct(paperPoint.counts.precision(), 1).c_str(),
              fmtPct(paperPoint.counts.recall(), 1).c_str(),
              paperPoint.counts.f1());

  bool ok = true;
  ok &= bench::check(grid[0][0].counts.recall() >=
                         grid.back().back().counts.recall(),
                     "loosening thresholds cannot reduce recall");
  ok &= bench::check(grid.back().back().counts.precision() + 1e-9 >=
                         grid[0][0].counts.precision(),
                     "tightening thresholds cannot reduce precision");
  ok &= bench::check(paperPoint.counts.f1() >= ratioOnly.counts.f1() - 0.02 &&
                         paperPoint.counts.f1() >= diffOnly.counts.f1() - 0.02,
                     "the dual criterion is at least as good as either "
                     "criterion alone (the paper's motivation)");
  ok &= bench::check(paperPoint.counts.recall() > 0.5,
                     "the paper's operating point catches most events");
  return ok ? 0 : 1;
}
