// Table II — hierarchy properties of the operational datasets.
//
// Builds the paper-scale hierarchies and reports depth, per-level typical
// degree and node counts. These are structural, so the paper preset is used
// directly (CCD network ~46k nodes, SCD ~430k nodes build in milliseconds).
#include "bench/bench_util.h"

int main() {
  using namespace tiresias;
  using namespace tiresias::workload;
  bench::banner("Table II", "hierarchy depth and typical per-level degrees");

  struct Row {
    const char* data;
    const char* type;
    std::vector<std::size_t> degrees;
    Hierarchy hierarchy;
  };
  std::vector<Row> rows;
  rows.push_back({"CCD", "Trouble descr.", ccdTroubleDegrees(Scale::kPaper),
                  ccdTroubleWorkload(Scale::kPaper).hierarchy});
  rows.push_back({"CCD", "Network path", ccdNetworkDegrees(Scale::kPaper),
                  ccdNetworkWorkload(Scale::kPaper).hierarchy});
  rows.push_back({"SCD", "Network path", scdNetworkDegrees(Scale::kPaper),
                  scdNetworkWorkload(Scale::kPaper).hierarchy});

  AsciiTable table({"Data", "Type", "Depth", "k=1", "k=2", "k=3", "k=4",
                    "Nodes", "Leaves"});
  for (const auto& row : rows) {
    std::vector<std::string> cells{row.data, row.type,
                                   std::to_string(row.degrees.size() + 1)};
    for (std::size_t k = 0; k < 4; ++k) {
      cells.push_back(k < row.degrees.size() ? std::to_string(row.degrees[k])
                                             : "N/A");
    }
    cells.push_back(fmtI(static_cast<long long>(row.hierarchy.size())));
    cells.push_back(fmtI(static_cast<long long>(row.hierarchy.leafCount())));
    table.addRow(cells);
  }
  table.print(std::cout);

  bool ok = true;
  ok &= bench::check(rows[0].hierarchy.height() == 5,
                     "CCD trouble tree has 5 levels");
  ok &= bench::check(rows[1].hierarchy.height() == 5,
                     "CCD network tree has 5 levels (SHO..DSLAM)");
  ok &= bench::check(rows[2].hierarchy.height() == 4,
                     "SCD network tree has 4 levels");
  // The paper's reference-series counts for the CCD network tree (§VII-A):
  // h=1 -> 61 series, h=2 -> 366-ish (paper: 322 with its real, slightly
  // irregular degrees), total nodes ~45k.
  const auto& net = rows[1].hierarchy;
  std::size_t h1 = net.nodesAtDepth(2).size();
  std::size_t h2 = h1 + net.nodesAtDepth(3).size();
  std::printf("reference-series counts (CCD network): h=1 -> %zu, h=2 -> %zu, "
              "all nodes -> %s (paper: 61 / 322 / 45,479)\n",
              h1, h2, fmtI(static_cast<long long>(net.size())).c_str());
  ok &= bench::check(h1 == 61, "h=1 reference level has exactly 61 nodes");
  ok &= bench::check(net.size() > 40000 && net.size() < 50000,
                     "CCD network tree is ~45k nodes");
  return ok ? 0 : 1;
}
