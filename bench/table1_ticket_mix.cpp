// Table I — CCD customer-call first-level ticket mix.
//
// Generates one synthetic week of CCD trouble-description records and
// reports the measured level-1 category shares next to the paper's values.
#include "bench/bench_util.h"

int main() {
  using namespace tiresias;
  using namespace tiresias::workload;
  bench::banner("Table I", "CCD customer calls: first-level ticket mix");

  const auto spec = ccdTroubleWorkload(Scale::kMedium);
  const auto& h = spec.hierarchy;
  bench::note("workload: CCD trouble tree (medium preset), 7 days, 15-min units");

  GeneratorSource src(spec, 0, 7 * 96, 20260611);
  std::vector<std::size_t> counts(h.size(), 0);
  std::size_t total = 0;
  while (auto r = src.next()) {
    NodeId cur = r->category;
    while (h.depth(cur) > 2) cur = h.parent(cur);
    ++counts[cur];
    ++total;
  }

  AsciiTable table({"Ticket Type", "Paper (%)", "Measured (%)", "Delta (pp)"});
  bool allClose = true;
  for (const auto& cat : ccdTicketMix()) {
    const NodeId n = h.childNamed(h.root(), cat.name);
    const double measured =
        static_cast<double>(counts[n]) / static_cast<double>(total);
    allClose = allClose && std::abs(measured - cat.share) < 0.02;
    table.addRow({cat.name, fmtF(cat.share * 100.0, 2),
                  fmtF(measured * 100.0, 2),
                  fmtF((measured - cat.share) * 100.0, 2)});
  }
  table.print(std::cout);
  std::printf("records generated: %s\n", fmtI((long long)total).c_str());

  bool ok = bench::check(allClose, "every category within 2pp of Table I");
  ok &= bench::check(counts[h.childNamed(h.root(), "TV")] >
                         counts[h.childNamed(h.root(), "Internet")],
                     "TV dominates (paper: 39.6% vs 10.0%)");
  return ok ? 0 : 1;
}
