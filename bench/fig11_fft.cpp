// Fig 11 — FFT periodogram of the root count series for (a) CCD and
// (b) SCD, magnitudes normalized by the maximum.
//
// Shape to reproduce: the strongest period is 24 hours in both datasets;
// CCD additionally shows a noticeable weekly line (the paper reports it at
// ~170 hours, the closest measurable bin to 168), while SCD does not.
// The wavelet detail-energy cross-check of §VI is printed alongside.
#include "bench/bench_util.h"

#include "analysis/fft.h"
#include "analysis/seasonality.h"

namespace {

using namespace tiresias;
using namespace tiresias::workload;

std::vector<double> rootSeries(const WorkloadSpec& spec, TimeUnit units,
                               std::uint64_t seed) {
  GeneratorSource src(spec, 0, units, seed);
  TimeUnitBatcher batcher(src, spec.unit, 0);
  std::vector<double> counts;
  while (auto b = batcher.next()) {
    counts.push_back(static_cast<double>(b->records.size()));
  }
  return counts;
}

void printDataset(const char* name, const WorkloadSpec& spec,
                  std::uint64_t seed, bool weeklyExpected, bool& ok) {
  std::printf("\n--- %s ---\n", name);
  // 6 weeks of 15-minute units: enough resolution to separate 24h / 168h.
  const auto series = rootSeries(spec, 6 * 7 * 96, seed);
  const auto spectrum = periodogram(series);
  double peak = 0.0;
  for (const auto& line : spectrum) peak = std::max(peak, line.magnitude);

  AsciiTable table({"Period (hours)", "Normalized magnitude"});
  for (double hours : {6.0, 12.0, 24.0, 84.0, 168.0, 336.0}) {
    const double mag = magnitudeNearPeriod(spectrum, hours * 4.0);  // 15-min
    table.addRow({fmtF(hours, 0), fmtG(mag / peak, 3)});
  }
  table.print(std::cout);

  const auto top = dominantPeriods(series, 3);
  std::printf("strongest spectral lines (hours): ");
  for (const auto& line : top) std::printf("%.1f ", line.period / 4.0);
  std::printf("\n");

  ok &= bench::check(std::abs(top[0].period / 4.0 - 24.0) < 2.0,
                     std::string(name) + ": dominant period is 24 hours");
  const double weekly = magnitudeNearPeriod(spectrum, 168.0 * 4.0) / peak;
  if (weeklyExpected) {
    // The paper reports the weekly line at ~170 hours (the most measurable
    // bin); require a clearly elevated magnitude and a top-3 placement.
    bool weeklyInTop = false;
    for (const auto& line : top) {
      if (std::abs(line.period / 4.0 - 168.0) < 24.0) weeklyInTop = true;
    }
    ok &= bench::check(weekly > 0.1 && weeklyInTop,
                       std::string(name) + ": weekly (~168h) line visible");
  } else {
    ok &= bench::check(weekly < 0.1,
                       std::string(name) + ": no strong weekly line");
  }

  // §VI cross-check: wavelet detail energies agree with the FFT.
  SeasonalityOptions opts;
  opts.candidatePeriods = {96, 672};
  const auto result = analyzeSeasonality(series, opts);
  std::printf("seasonality analysis picked: ");
  for (const auto& s : result.seasons) {
    std::printf("period=%zu units (weight %.2f)  ", s.period, s.weight);
  }
  std::printf("\n");
  ok &= bench::check(!result.seasons.empty() && result.seasons[0].period == 96,
                     std::string(name) + ": day season selected first");
  if (weeklyExpected) {
    const double xi = result.seasons[0].weight;
    std::printf("xi (day share of combined season) = %.2f "
                "(paper: 0.76 / (1 + 0.76) ~ 0.43 as a raw FFT ratio; our "
                "normalization reports day / (day + week))\n", xi);
  }
}

}  // namespace

int main() {
  bench::banner("Fig 11", "FFT periodogram of root counts, CCD and SCD");
  bool ok = true;
  printDataset("(a) CCD", ccdTroubleWorkload(Scale::kTest), 301, true, ok);
  printDataset("(b) SCD", scdNetworkWorkload(Scale::kTest), 302, false, ok);
  return ok ? 0 : 1;
}
