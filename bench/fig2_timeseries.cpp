// Fig 2 — representative time series of the normalized count of
// appearances in 15-minute units: (a) one CCD week starting on a Saturday,
// (b) one SCD week starting on a Thursday.
//
// Prints hourly-sampled normalized counts plus per-day summaries. Shape to
// reproduce: clear diurnal cycle with peak ~4 PM and trough ~4 AM, a
// weekend dip in CCD (first two days of the CCD series), and no weekly
// pattern in SCD.
#include "bench/bench_util.h"

namespace {

using namespace tiresias;
using namespace tiresias::workload;

std::vector<double> unitCounts(const WorkloadSpec& spec, TimeUnit first,
                               TimeUnit last, std::uint64_t seed) {
  GeneratorSource src(spec, first, last, seed);
  TimeUnitBatcher batcher(src, spec.unit, unitStart(first, spec.unit));
  std::vector<double> counts;
  while (auto b = batcher.next()) {
    counts.push_back(static_cast<double>(b->records.size()));
  }
  return counts;
}

struct DayStats {
  double total = 0.0;
  int peakHour = 0;
  int troughHour = 0;
};

void printDataset(const char* name, const WorkloadSpec& spec, TimeUnit first,
                  std::uint64_t seed, bool weekendDipExpected, bool& ok) {
  std::printf("\n--- %s ---\n", name);
  const auto counts = unitCounts(spec, first, first + 7 * 96, seed);
  double maxCount = 1.0;
  for (double c : counts) maxCount = std::max(maxCount, c);

  // Hourly sparkline-style series (96 15-min units/day -> 24 rows of 7).
  AsciiTable table({"Hour", "Day1", "Day2", "Day3", "Day4", "Day5", "Day6",
                    "Day7"});
  for (int hr = 0; hr < 24; hr += 2) {
    std::vector<std::string> cells{std::to_string(hr) + ":00"};
    for (int d = 0; d < 7; ++d) {
      double sum = 0.0;
      for (int q = 0; q < 4; ++q) {
        const std::size_t idx =
            static_cast<std::size_t>(d * 96 + hr * 4 + q);
        if (idx < counts.size()) sum += counts[idx];
      }
      cells.push_back(fmtF(sum / 4.0 / maxCount, 2));
    }
    table.addRow(cells);
  }
  table.print(std::cout);

  std::vector<DayStats> days(7);
  for (int d = 0; d < 7; ++d) {
    double best = -1, worst = 1e18;
    for (int hr = 0; hr < 24; ++hr) {
      double sum = 0.0;
      for (int q = 0; q < 4; ++q) {
        sum += counts[static_cast<std::size_t>(d * 96 + hr * 4 + q)];
      }
      days[d].total += sum;
      if (sum > best) {
        best = sum;
        days[d].peakHour = hr;
      }
      if (sum < worst) {
        worst = sum;
        days[d].troughHour = hr;
      }
    }
  }
  int peakOk = 0, troughOk = 0;
  for (const auto& day : days) {
    peakOk += (std::abs(day.peakHour - 16) <= 2);
    troughOk += (std::abs(day.troughHour - 4) <= 2);
  }
  ok &= bench::check(peakOk >= 6, std::string(name) +
                                      ": daily peak ~4 PM on >=6 of 7 days");
  ok &= bench::check(troughOk >= 6,
                     std::string(name) + ": daily trough ~4 AM on >=6 days");
  if (weekendDipExpected) {
    const double weekend = days[0].total + days[1].total;   // Sat+Sun
    const double midweek = days[2].total + days[3].total;   // Mon+Tue
    ok &= bench::check(weekend < 0.8 * midweek,
                       std::string(name) + ": weekend (days 1-2) quieter");
  }
  // Volatility headline (§II-B): p90/p10 of unit counts.
  std::printf("p90/p10 unit-count ratio: %.1f (paper reports ~35x for the "
              "CCD root)\n", bench::dispersionRatio(counts));
}

}  // namespace

int main() {
  bench::banner("Fig 2", "representative weekly time series, 15-min units");
  bool ok = true;
  // CCD week starts Saturday (day 0 of the synthetic calendar).
  printDataset("(a) CCD, week starting Saturday",
               ccdTroubleWorkload(Scale::kMedium), 0, 201, true, ok);
  // SCD week starting Thursday: day-of-week is irrelevant for SCD (no
  // weekly factor); start mid-week for fidelity to the figure.
  printDataset("(b) SCD, week starting Thursday",
               scdNetworkWorkload(Scale::kMedium), 5 * 96, 202, false, ok);
  return ok ? 0 : 1;
}
