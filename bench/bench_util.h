// Shared helpers for the reproduction benches.
//
// Every bench prints (1) the paper artifact it regenerates, (2) the scale
// it runs at (test/medium presets — absolute numbers differ from the
// paper's testbed, shapes should not), and (3) one or more CHECK lines
// stating whether the qualitative claim holds in this run.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "core/ada.h"
#include "core/sta.h"
#include "stream/window.h"
#include "timeseries/holt_winters.h"
#include "workload/ccd.h"
#include "workload/scd.h"

namespace tiresias::bench {

inline void banner(const char* artifact, const char* description) {
  std::printf("==========================================================\n");
  std::printf("Reproduction of %s\n  %s\n", artifact, description);
  std::printf("==========================================================\n");
}

inline void note(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

/// A single qualitative pass/fail line; benches aggregate their own exit
/// code so `for b in bench/*; do $b; done` surfaces regressions.
inline bool check(bool ok, const std::string& claim) {
  std::printf("CHECK %-4s %s\n", ok ? "[ok]" : "[!!]", claim.c_str());
  return ok;
}

/// p50/p90/p99/max of a sample set via the shared linear-interpolation
/// quantile (common/stats.h) — the one summary shape benches report for
/// latency and count distributions.
struct PercentileSummary {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

inline PercentileSummary summarize(std::vector<double> xs) {
  PercentileSummary out;
  if (xs.empty()) return out;
  out.max = *std::max_element(xs.begin(), xs.end());
  out.p50 = quantile(xs, 0.50);
  out.p90 = quantile(xs, 0.90);
  out.p99 = quantile(xs, 0.99);
  return out;
}

/// p90/p10 dispersion ratio (the volatility headline of Fig 2). The p10
/// floor keeps quiet traces from blowing the ratio up via a near-zero
/// denominator.
inline double dispersionRatio(const std::vector<double>& xs,
                              double p10Floor = 1.0) {
  if (xs.empty()) return 0.0;
  const double p90 = quantile(xs, 0.9);
  const double p10 = std::max(quantile(xs, 0.1), p10Floor);
  return p90 / p10;
}

/// Means of `.second` over the quietest and busiest quarters of the
/// samples ordered by `.first` (e.g. |SHHH| over the quietest/busiest
/// units of the theta ablation). Returns {quietMean, busyMean}.
inline std::pair<double, double> quartileMeansBy(
    std::vector<std::pair<double, double>> samples) {
  if (samples.empty()) return {0.0, 0.0};
  std::sort(samples.begin(), samples.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const std::size_t quartile = std::max<std::size_t>(samples.size() / 4, 1);
  double quiet = 0.0, busy = 0.0;
  for (std::size_t i = 0; i < quartile; ++i) {
    quiet += samples[i].second;
    busy += samples[samples.size() - 1 - i].second;
  }
  return {quiet / static_cast<double>(quartile),
          busy / static_cast<double>(quartile)};
}

/// Default Holt-Winters factory used across benches (single diurnal season
/// at 15-minute units unless a bench overrides it).
inline std::shared_ptr<ForecasterFactory> hwFactory(
    std::vector<SeasonSpec> seasons = {{96, 1.0}},
    HoltWintersParams params = {0.5, 0.05, 0.3}) {
  return std::make_shared<HoltWintersFactory>(params, std::move(seasons));
}

/// Paper §VII defaults scaled to bench runs.
inline DetectorConfig paperConfig(std::size_t windowLength, double theta,
                                  std::shared_ptr<ForecasterFactory> factory) {
  DetectorConfig cfg;
  cfg.theta = theta;
  cfg.windowLength = windowLength;
  cfg.ratioThreshold = 2.8;
  cfg.diffThreshold = 8.0;
  cfg.referenceLevels = 2;
  cfg.forecasterFactory = std::move(factory);
  return cfg;
}

}  // namespace tiresias::bench
