// Shared helpers for the reproduction benches.
//
// Every bench prints (1) the paper artifact it regenerates, (2) the scale
// it runs at (test/medium presets — absolute numbers differ from the
// paper's testbed, shapes should not), and (3) one or more CHECK lines
// stating whether the qualitative claim holds in this run.
#pragma once

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>

#include "common/table.h"
#include "core/ada.h"
#include "core/sta.h"
#include "stream/window.h"
#include "timeseries/holt_winters.h"
#include "workload/ccd.h"
#include "workload/scd.h"

namespace tiresias::bench {

inline void banner(const char* artifact, const char* description) {
  std::printf("==========================================================\n");
  std::printf("Reproduction of %s\n  %s\n", artifact, description);
  std::printf("==========================================================\n");
}

inline void note(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

/// A single qualitative pass/fail line; benches aggregate their own exit
/// code so `for b in bench/*; do $b; done` surfaces regressions.
inline bool check(bool ok, const std::string& claim) {
  std::printf("CHECK %-4s %s\n", ok ? "[ok]" : "[!!]", claim.c_str());
  return ok;
}

/// Default Holt-Winters factory used across benches (single diurnal season
/// at 15-minute units unless a bench overrides it).
inline std::shared_ptr<ForecasterFactory> hwFactory(
    std::vector<SeasonSpec> seasons = {{96, 1.0}},
    HoltWintersParams params = {0.5, 0.05, 0.3}) {
  return std::make_shared<HoltWintersFactory>(params, std::move(seasons));
}

/// Paper §VII defaults scaled to bench runs.
inline DetectorConfig paperConfig(std::size_t windowLength, double theta,
                                  std::shared_ptr<ForecasterFactory> factory) {
  DetectorConfig cfg;
  cfg.theta = theta;
  cfg.windowLength = windowLength;
  cfg.ratioThreshold = 2.8;
  cfg.diffThreshold = 8.0;
  cfg.referenceLevels = 2;
  cfg.forecasterFactory = std::move(factory);
  return cfg;
}

}  // namespace tiresias::bench
