// Fig 9 — relative forecast error RE[t+k] after a biased split, for bias
// xi in {2F[t], F[t], 0.5F[t]}, EWMA alpha = 0.5, T[i] = 1.
//
// Two independent computations that must agree:
//   closed form  RE[t+k] = |xi| (1-alpha)^k / F[t+k]   (Eq. 1-2)
//   simulation   run two EWMA forecasters, inject the bias, measure.
// Shape to reproduce: error decays exponentially at rate (1-alpha), i.e.
// halves every iteration at alpha = 0.5, independent of xi's magnitude.
#include "bench/bench_util.h"

#include "timeseries/ewma.h"

int main() {
  using namespace tiresias;
  bench::banner("Fig 9", "relative error RE[t+k] after a split bias");
  const double alpha = 0.5;
  const int iterations = 10;
  const std::vector<std::pair<const char*, double>> biases = {
      {"xi=2F[t]", 2.0}, {"xi=F[t]", 1.0}, {"xi=0.5F[t]", 0.5}};

  AsciiTable table({"k", "RE xi=2F (sim)", "RE xi=2F (eq)", "RE xi=F (sim)",
                    "RE xi=F (eq)", "RE xi=0.5F (sim)", "RE xi=0.5F (eq)"});
  bool ok = true;
  std::vector<std::vector<double>> simCurves;

  for (const auto& [name, factor] : biases) {
    (void)name;
    EwmaForecaster unbiased(alpha), biased(alpha);
    for (int i = 0; i < 200; ++i) {
      unbiased.update(1.0);  // steady T[i] = 1 -> F converges to 1
      biased.update(1.0);
    }
    const double f = unbiased.forecast();
    // Inject xi = factor * F[t].
    biased.scale((f + factor * f) / f);
    std::vector<double> curve;
    for (int k = 1; k <= iterations; ++k) {
      unbiased.update(1.0);
      biased.update(1.0);
      curve.push_back(std::abs(biased.forecast() - unbiased.forecast()) /
                      unbiased.forecast());
    }
    simCurves.push_back(curve);
  }

  for (int k = 1; k <= iterations; ++k) {
    std::vector<std::string> cells{std::to_string(k)};
    for (std::size_t b = 0; b < biases.size(); ++b) {
      const double eq = biases[b].second * std::pow(1.0 - alpha, k);
      const double sim = simCurves[b][static_cast<std::size_t>(k - 1)];
      cells.push_back(fmtG(sim, 4));
      cells.push_back(fmtG(eq, 4));
      ok &= std::abs(sim - eq) < 1e-9;
    }
    table.addRow(cells);
  }
  table.print(std::cout);

  ok = bench::check(ok, "simulation matches Eq. (1)-(2) closed form");
  for (std::size_t b = 0; b < biases.size(); ++b) {
    bool expDecay = true;
    for (int k = 1; k < iterations; ++k) {
      const double ratio = simCurves[b][static_cast<std::size_t>(k)] /
                           simCurves[b][static_cast<std::size_t>(k - 1)];
      expDecay = expDecay && std::abs(ratio - (1.0 - alpha)) < 1e-6;
    }
    ok &= bench::check(expDecay, std::string(biases[b].first) +
                                     ": error halves every iteration "
                                     "(rate = 1-alpha)");
  }
  ok &= bench::check(simCurves[0][9] < 0.005,
                     "after 10 iterations the worst bias is <0.5% error");
  return ok ? 0 : 1;
}
