// Scalability headline (§I / §VII-A): a Tier-1 ISP inspects >300,000
// customer care calls per working day; Tiresias must keep up online on a
// single core. This bench measures end-to-end detector throughput
// (records/second through ADA, including batching) and reports the
// headroom over the paper's operational load.
#include "bench/bench_util.h"

int main() {
  using namespace tiresias;
  using namespace tiresias::workload;
  bench::banner("Throughput", "single-core records/second vs ISP load");

  const auto spec = ccdNetworkWorkload(Scale::kMedium);
  const std::size_t window = 2 * 96;
  DetectorConfig cfg = bench::paperConfig(window, 10.0, bench::hwFactory());
  AdaDetector ada(spec.hierarchy, cfg);

  // Pre-generate three days so generation cost is excluded from the
  // detector measurement (the paper's "Reading Traces" stage).
  std::vector<TimeUnitBatch> batches;
  std::size_t records = 0;
  {
    GeneratorSource src(spec, 0, 3 * 96, 90210);
    TimeUnitBatcher batcher(src, spec.unit, 0);
    while (auto b = batcher.next()) {
      records += b->records.size();
      batches.push_back(std::move(*b));
    }
  }

  Stopwatch watch;
  std::size_t instances = 0;
  for (const auto& b : batches) {
    if (ada.step(b)) ++instances;
  }
  const double seconds = watch.elapsedSeconds();
  const double recordsPerSec = static_cast<double>(records) / seconds;
  const double paperDailyLoad = 300000.0;
  const double daysPerSec = recordsPerSec / paperDailyLoad;

  AsciiTable table({"Metric", "Value"});
  table.addRow({"records processed", fmtI(static_cast<long long>(records))});
  table.addRow({"detection instances", fmtI(static_cast<long long>(instances))});
  table.addRow({"wall time (s)", fmtF(seconds, 3)});
  table.addRow({"throughput (records/s)",
                fmtI(static_cast<long long>(recordsPerSec))});
  table.addRow({"ISP days of calls per second", fmtF(daysPerSec, 2)});
  table.addRow({"splits / merges", std::to_string(ada.splitCount()) + " / " +
                                       std::to_string(ada.mergeCount())});
  table.print(std::cout);

  bool ok = true;
  // Online operation needs to clear one day of calls in well under a day;
  // we ask for 4 orders of magnitude of headroom.
  ok &= bench::check(recordsPerSec > paperDailyLoad / 8.64,
                     "clears one ISP day of calls in <1% of a day");
  ok &= bench::check(instances + window - 1 == batches.size(),
                     "one detection instance per unit after warm-up");
  return ok ? 0 : 1;
}
