// Ingestion + engine scaling bench (BENCH_ingest.json).
//
// Two measurements, both over the same CCD-network workload:
//
//  1. Ingest layer in isolation (source -> timeunit batching, no
//     detection): the seed's per-record path — one virtual next() per
//     record, per-record floor divisions, a fresh batch vector per unit,
//     and for CSV a full split + hierarchy walk per row — against the
//     batched fast path (RecordSource::nextBatch, boundary comparisons,
//     reused buffers, CSV path cache). Measured for csv, vector and
//     generated sources; the committed baseline must show >= 2x for the
//     batched path at 1 shard.
//
//  2. Aggregate detection throughput of the concurrent engine for the
//     same three source kinds at 1/2/4/8 shards (8 streams of fixed
//     work; the shard count is the concurrency knob).
//
// Results are printed as tables and written as machine-readable JSON
// (schema tiresias_bench_ingest/v1) for the committed perf trajectory.
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/expect.h"
#include "common/timer.h"
#include "engine/engine.h"
#include "report/concurrent_store.h"
#include "timeseries/ewma.h"
#include "workload/generator.h"

namespace {

using namespace tiresias;
using engine::DetectionEngine;
using engine::EngineConfig;
using engine::EngineStats;
using workload::GeneratorSource;
using workload::Scale;
using workload::WorkloadSpec;

/// Seed-faithful replica of the pre-batching TimeUnitBatcher: one virtual
/// next() per record, two timeUnitOf divisions per record, a fresh batch
/// vector per unit. This is the "per-record next() path" the batched
/// ingest is measured against.
class LegacyBatcher {
 public:
  LegacyBatcher(RecordSource& source, Duration delta, Timestamp startTime)
      : source_(source),
        delta_(delta),
        nextUnit_(timeUnitOf(startTime, delta)) {}

  std::optional<TimeUnitBatch> next() {
    while (!pending_ && !sourceDone_) {
      pending_ = source_.next();
      if (!pending_) {
        sourceDone_ = true;
        break;
      }
      if (timeUnitOf(pending_->time, delta_) < nextUnit_) pending_.reset();
    }
    if (sourceDone_ && !pending_) return std::nullopt;
    TimeUnitBatch batch;
    batch.unit = nextUnit_;
    while (true) {
      if (!pending_) {
        if (sourceDone_) break;
        pending_ = source_.next();
        if (!pending_) {
          sourceDone_ = true;
          break;
        }
        TIRESIAS_EXPECT(timeUnitOf(pending_->time, delta_) >= nextUnit_,
                        "records must arrive in non-decreasing time order");
      }
      if (timeUnitOf(pending_->time, delta_) != nextUnit_) break;
      batch.records.push_back(*pending_);
      pending_.reset();
    }
    ++nextUnit_;
    return batch;
  }

 private:
  RecordSource& source_;
  Duration delta_;
  TimeUnit nextUnit_;
  std::optional<Record> pending_;
  bool sourceDone_ = false;
};

struct PathStats {
  std::size_t records = 0;
  double seconds = 0.0;
  double recordsPerSec = 0.0;
};

using SourceFactory = std::function<std::unique_ptr<RecordSource>()>;

/// Repeats full passes over a fresh source until enough records have been
/// ingested for a stable records/sec figure.
PathStats measureIngest(const SourceFactory& make, Duration delta,
                        bool batched, std::size_t targetRecords) {
  PathStats out;
  while (out.records < targetRecords) {
    auto src = make();
    Stopwatch watch;
    if (batched) {
      TimeUnitBatcher batcher(*src, delta, 0);
      TimeUnitBatch batch;
      while (batcher.next(batch)) out.records += batch.records.size();
    } else {
      LegacyBatcher batcher(*src, delta, 0);
      while (auto b = batcher.next()) out.records += b->records.size();
    }
    out.seconds += watch.elapsedSeconds();
  }
  out.recordsPerSec =
      out.seconds > 0 ? static_cast<double>(out.records) / out.seconds : 0.0;
  return out;
}

PipelineConfig pipelineConfig(const WorkloadSpec& spec) {
  PipelineConfig cfg;
  cfg.delta = spec.unit;
  cfg.detector.theta = 8.0;
  cfg.detector.windowLength = 64;
  cfg.detector.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
  return cfg;
}

struct BenchResult {
  std::size_t shards = 0;
  EngineStats stats;
};

BenchResult runEngine(const WorkloadSpec& spec, std::size_t streams,
                      std::size_t shards,
                      const std::function<SourceFactory(std::size_t)>& source) {
  EngineConfig cfg;
  cfg.shards = shards;
  cfg.queueCapacity = 32;
  report::ConcurrentAnomalyStore store;
  DetectionEngine eng(cfg, store.sink());
  for (std::size_t i = 0; i < streams; ++i) {
    const std::string name = "s" + std::to_string(i);
    store.registerStream(name, spec.hierarchy);
    eng.addStream(name, spec.hierarchy, pipelineConfig(spec), source(i)());
  }
  eng.start();
  return {shards, eng.drain()};
}

void jsonPathStats(std::FILE* f, const char* key, const PathStats& s,
                   bool trailingComma) {
  std::fprintf(f,
               "      \"%s\": {\"records\": %zu, \"seconds\": %.6f, "
               "\"records_per_sec\": %.0f}%s\n",
               key, s.records, s.seconds, s.recordsPerSec,
               trailingComma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  const TimeUnit units = argc > 1 ? std::atoll(argv[1]) : 512;
  const std::string jsonPath = argc > 2 ? argv[2] : "BENCH_ingest.json";
  const std::size_t streams = 8;
  const std::size_t shardGrid[] = {1, 2, 4, 8};
  const char* kinds[] = {"csv", "vector", "generated"};

  bench::banner("ingest fast path + engine scaling (src/stream, src/engine)",
                "batched vs per-record ingest, and aggregate records/sec of "
                "8 concurrent streams at 1/2/4/8 shards");
  const unsigned cores = std::thread::hardware_concurrency();
  bench::note("hardware threads: " + std::to_string(cores));
  bench::note("per-stream units: " + std::to_string(units));

  const WorkloadSpec spec = workload::ccdNetworkWorkload(Scale::kMedium);

  // Materialize one fixed trace (same records for every source kind, so
  // the three ingest paths chew identical work).
  std::vector<Record> records;
  {
    GeneratorSource gen(spec, 0, units, 1);
    std::vector<Record> chunk;
    while (gen.nextBatch(chunk, 65536) > 0) {
      records.insert(records.end(), chunk.begin(), chunk.end());
    }
  }
  const std::string tracePath = "bench_ingest_trace.csv";
  writeRecordsCsv(tracePath, spec.hierarchy, records);
  bench::note("trace: " + std::to_string(records.size()) + " records (" +
              std::to_string(units) + " units of " +
              std::to_string(spec.unit / 60) + " min)");

  const SourceFactory makeCsv = [&] {
    return std::make_unique<CsvSource>(tracePath, spec.hierarchy);
  };
  const SourceFactory makeVector = [&] {
    return std::make_unique<VectorSource>(records);
  };
  const SourceFactory makeGenerated = [&] {
    return std::make_unique<GeneratorSource>(spec, 0, units, 1);
  };
  const SourceFactory factories[] = {makeCsv, makeVector, makeGenerated};

  // ---- Ingest layer: per-record vs batched ----
  const std::size_t targetRecords = 2'000'000;
  PathStats perRecord[3], batched[3];
  double speedup[3];
  std::printf("\ningest layer (no detection), %zu+ records per path:\n",
              targetRecords);
  std::printf("%-10s %14s %14s %9s\n", "source", "per-record/s", "batched/s",
              "speedup");
  for (int k = 0; k < 3; ++k) {
    perRecord[k] =
        measureIngest(factories[k], spec.unit, false, targetRecords);
    batched[k] = measureIngest(factories[k], spec.unit, true, targetRecords);
    speedup[k] = perRecord[k].recordsPerSec > 0
                     ? batched[k].recordsPerSec / perRecord[k].recordsPerSec
                     : 0.0;
    std::printf("%-10s %14.0f %14.0f %8.2fx\n", kinds[k],
                perRecord[k].recordsPerSec, batched[k].recordsPerSec,
                speedup[k]);
  }

  // ---- Engine: aggregate throughput over the shard grid ----
  std::vector<BenchResult> grid[3];
  std::printf("\nengine, %zu streams:\n", streams);
  std::printf("%-10s %-7s %12s %12s %10s %10s %14s\n", "source", "shards",
              "records", "elapsed(s)", "queue-max", "bp-waits",
              "records/sec");
  for (int k = 0; k < 3; ++k) {
    for (std::size_t shards : shardGrid) {
      const auto r = runEngine(spec, streams, shards,
                               [&](std::size_t) { return factories[k]; });
      grid[k].push_back(r);
      std::printf("%-10s %-7zu %12zu %12.3f %10zu %10zu %14.0f\n", kinds[k],
                  r.shards, r.stats.recordsProcessed, r.stats.elapsedSeconds,
                  r.stats.maxQueueDepth, r.stats.backpressureWaits,
                  r.stats.recordsPerSecond);
    }
  }

  bool ok = true;
  // Same input => every shard configuration must do identical work.
  for (int k = 0; k < 3; ++k) {
    for (const auto& r : grid[k]) {
      ok &= bench::check(
          r.stats.recordsProcessed == grid[k][0].stats.recordsProcessed &&
              r.stats.unitsProcessed == grid[k][0].stats.unitsProcessed,
          std::string(kinds[k]) + " shards=" + std::to_string(r.shards) +
              " processed identical work to shards=1 (determinism)");
    }
  }
  // The tentpole claim: batching pays off on the operational ingest paths
  // — the generated workload ingested as a CSV trace or replayed from
  // memory. The live generator is compute-bound on record synthesis
  // (~45ns/record vs the ~8ns/record that batching removes), so there the
  // requirement is only that batching never hurts.
  ok &= bench::check(speedup[0] >= 2.0,
                     "batched csv ingest of the generated workload >= 2x "
                     "the per-record next() path");
  ok &= bench::check(speedup[1] >= 2.0,
                     "batched in-memory ingest of the generated workload "
                     ">= 2x the per-record path");
  ok &= bench::check(speedup[2] >= 1.0,
                     "batched live-generator ingest not slower than the "
                     "per-record path (synthesis-bound)");
  const double scale4 = grid[2][2].stats.recordsPerSecond /
                        grid[2][0].stats.recordsPerSecond;
  std::printf("generated 4-shard speedup over 1 shard: %.2fx\n", scale4);
  if (cores >= 4) {
    ok &= bench::check(scale4 >= 2.0,
                       "aggregate throughput at 4 shards >= 2x 1 shard");
  } else {
    bench::note("< 4 hardware threads: scaling CHECK skipped");
  }

  // ---- Machine-readable baseline ----
  std::FILE* f = std::fopen(jsonPath.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"tiresias_bench_ingest/v1\",\n");
  std::fprintf(f, "  \"workload\": \"ccd-net/medium\",\n");
  std::fprintf(f, "  \"units_per_stream\": %lld,\n",
               static_cast<long long>(units));
  std::fprintf(f, "  \"trace_records\": %zu,\n", records.size());
  std::fprintf(f, "  \"hardware_threads\": %u,\n", cores);
  std::fprintf(f, "  \"ingest\": {\n");
  for (int k = 0; k < 3; ++k) {
    std::fprintf(f, "    \"%s\": {\n", kinds[k]);
    jsonPathStats(f, "per_record", perRecord[k], true);
    jsonPathStats(f, "batched", batched[k], true);
    std::fprintf(f, "      \"speedup\": %.2f\n", speedup[k]);
    std::fprintf(f, "    }%s\n", k < 2 ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"engine\": [\n");
  for (int k = 0; k < 3; ++k) {
    for (std::size_t i = 0; i < grid[k].size(); ++i) {
      const auto& r = grid[k][i];
      std::fprintf(
          f,
          "    {\"source\": \"%s\", \"shards\": %zu, \"records\": %zu, "
          "\"seconds\": %.6f, \"records_per_sec\": %.0f}%s\n",
          kinds[k], r.shards, r.stats.recordsProcessed,
          r.stats.elapsedSeconds, r.stats.recordsPerSecond,
          (k == 2 && i + 1 == grid[k].size()) ? "" : ",");
    }
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", jsonPath.c_str());
  std::remove(tracePath.c_str());

  return ok ? 0 : 1;
}
