// Engine scaling bench: aggregate detection throughput of the concurrent
// multi-stream engine at 1/2/4/8 shards.
//
// Fixed work: 8 independent CCD-network streams of `units` timeunits each.
// The shard count is the concurrency knob — at 1 shard all streams are
// processed by a single ingest/worker pair, at 8 every stream has its own.
// On a machine with >= 4 cores the paper-style expectation is near-linear
// scaling of aggregate records/sec until shards exceed cores; the CHECK
// asserts >= 2x at 4 shards vs 1 shard (skipped on smaller machines, where
// the run still prints queue-depth/backpressure stats for inspection).
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "engine/engine.h"
#include "report/concurrent_store.h"
#include "timeseries/ewma.h"
#include "workload/generator.h"

namespace {

using namespace tiresias;
using engine::DetectionEngine;
using engine::EngineConfig;
using engine::EngineStats;
using workload::GeneratorSource;
using workload::Scale;
using workload::WorkloadSpec;

struct BenchResult {
  std::size_t shards = 0;
  EngineStats stats;
};

PipelineConfig pipelineConfig(const WorkloadSpec& spec) {
  PipelineConfig cfg;
  cfg.delta = spec.unit;
  cfg.detector.theta = 8.0;
  cfg.detector.windowLength = 64;
  cfg.detector.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
  return cfg;
}

BenchResult runAt(const std::vector<WorkloadSpec>& specs, std::size_t shards,
                  TimeUnit units) {
  EngineConfig cfg;
  cfg.shards = shards;
  cfg.queueCapacity = 32;
  report::ConcurrentAnomalyStore store;
  DetectionEngine eng(cfg, store.sink());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::string name = "s" + std::to_string(i);
    store.registerStream(name, specs[i].hierarchy);
    eng.addStream(name, specs[i].hierarchy, pipelineConfig(specs[i]),
                  std::make_unique<GeneratorSource>(specs[i], 0, units,
                                                    1000 + i));
  }
  eng.start();
  return {shards, eng.drain()};
}

}  // namespace

int main(int argc, char** argv) {
  const TimeUnit units = argc > 1 ? std::atoll(argv[1]) : 512;
  const std::size_t streams = 8;

  bench::banner("engine scaling (src/engine/)",
                "aggregate records/sec of 8 concurrent streams at "
                "1/2/4/8 shards");
  const unsigned cores = std::thread::hardware_concurrency();
  bench::note("hardware threads: " + std::to_string(cores));
  bench::note("per-stream units: " + std::to_string(units));

  std::vector<WorkloadSpec> specs;
  for (std::size_t i = 0; i < streams; ++i) {
    specs.push_back(workload::ccdNetworkWorkload(Scale::kMedium));
  }

  std::vector<BenchResult> results;
  std::printf("%-7s %12s %12s %10s %10s %14s\n", "shards", "records",
              "elapsed(s)", "queue-max", "bp-waits", "records/sec");
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    const auto r = runAt(specs, shards, units);
    results.push_back(r);
    std::printf("%-7zu %12zu %12.3f %10zu %10zu %14.0f\n", r.shards,
                r.stats.recordsProcessed, r.stats.elapsedSeconds,
                r.stats.maxQueueDepth, r.stats.backpressureWaits,
                r.stats.recordsPerSecond);
  }

  bool ok = true;
  // Same seeds => every configuration must do the identical work.
  for (const auto& r : results) {
    ok &= bench::check(
        r.stats.recordsProcessed == results[0].stats.recordsProcessed &&
            r.stats.unitsProcessed == results[0].stats.unitsProcessed,
        "shards=" + std::to_string(r.shards) +
            " processed identical work to shards=1 (determinism)");
  }
  const double speedup4 =
      results[2].stats.recordsPerSecond / results[0].stats.recordsPerSecond;
  std::printf("4-shard speedup over 1 shard: %.2fx\n", speedup4);
  if (cores >= 4) {
    ok &= bench::check(speedup4 >= 2.0,
                       "aggregate throughput at 4 shards >= 2x 1 shard");
  } else {
    bench::note("< 4 hardware threads: scaling CHECK skipped");
  }
  return ok ? 0 : 1;
}
