// Ingestion + engine scaling bench (BENCH_ingest.json + BENCH_engine.json).
//
// Three measurements, all over the CCD-network workload:
//
//  1. Ingest layer in isolation (source -> timeunit batching, no
//     detection): the seed's per-record path — one virtual next() per
//     record, per-record floor divisions, a fresh batch vector per unit,
//     and for CSV a full split + hierarchy walk per row — against the
//     batched fast path (RecordSource::nextBatch, boundary comparisons,
//     reused buffers, CSV path cache). Measured for csv, vector,
//     generated and binary (converted trace, parse-free memcpy decode)
//     sources; the committed baseline must show >= 2x for the batched
//     path, and batched binary ingest must beat batched CSV ingest by
//     >= 2x (the binary-format headline). Written to BENCH_ingest.json
//     (schema v3).
//
//  2. Worker grid: aggregate detection throughput of the task-scheduled
//     engine for 8 uniform generated streams at 1/2/4/8 workers.
//
//  3. Skewed streams: 8 streams where two are ~8x heavier than the rest —
//     and, crucially, would land on the SAME shard under the old
//     round-robin thread-pair-per-shard engine (replicated here as
//     StaticShardEngine). The shared worker pool runs the two heavy
//     streams on two workers while the static layout serializes them
//     behind one thread pair, so the scheduler must win on aggregate
//     records/sec. Written (with the grid) to BENCH_engine.json — the
//     committed scheduler-vs-shards baseline.
//
//  4. Metrics overhead + stage percentiles: the uniform workers=1 scenario
//     with the obs::MetricsRegistry on vs off (best-of-3 alternating runs;
//     the committed overhead delta must stay < 2%), plus the per-stage
//     latency percentiles of the metrics-on run. Both land in the
//     BENCH_engine.json "metrics" section.
//
//  5. Residency: a fleet (default 100k streams, argv[4]) sharing ONE
//     hierarchy, advanced under an aggressive resident cap with pooled
//     workspaces and idle-stream hibernation. The committed figure is the
//     resident workspace-bytes reduction vs the pre-refactor
//     one-bound-workspace-per-stream layout (must be >= 50x). Written to
//     the BENCH_engine.json "residency" section.
//
//  6. Socket ingest: the same materialized trace streamed over loopback
//     TCP in the framed binary protocol into a SocketSource-fed engine
//     stream. Reports end-to-end records/sec plus the ingest-latency
//     percentiles (p50/p90/p99 of engine.unit_latency — queue entry to
//     detection done). Written to the BENCH_engine.json "socket_ingest"
//     section (schema v5).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/expect.h"
#include "common/timer.h"
#include "core/workspace.h"
#include "engine/bounded_queue.h"
#include "engine/engine.h"
#include "net/tcp.h"
#include "stream/binary_source.h"
#include "stream/socket_source.h"
#include "timeseries/ewma.h"
#include "workload/generator.h"

namespace {

using namespace tiresias;
using engine::BoundedQueue;
using engine::DetectionEngine;
using engine::EngineConfig;
using engine::EngineStats;
using workload::GeneratorSource;
using workload::Scale;
using workload::WorkloadSpec;

/// Seed-faithful replica of the pre-batching TimeUnitBatcher: one virtual
/// next() per record, two timeUnitOf divisions per record, a fresh batch
/// vector per unit. This is the "per-record next() path" the batched
/// ingest is measured against.
class LegacyBatcher {
 public:
  LegacyBatcher(RecordSource& source, Duration delta, Timestamp startTime)
      : source_(source),
        delta_(delta),
        nextUnit_(timeUnitOf(startTime, delta)) {}

  std::optional<TimeUnitBatch> next() {
    while (!pending_ && !sourceDone_) {
      pending_ = source_.next();
      if (!pending_) {
        sourceDone_ = true;
        break;
      }
      if (timeUnitOf(pending_->time, delta_) < nextUnit_) pending_.reset();
    }
    if (sourceDone_ && !pending_) return std::nullopt;
    TimeUnitBatch batch;
    batch.unit = nextUnit_;
    while (true) {
      if (!pending_) {
        if (sourceDone_) break;
        pending_ = source_.next();
        if (!pending_) {
          sourceDone_ = true;
          break;
        }
        TIRESIAS_EXPECT(timeUnitOf(pending_->time, delta_) >= nextUnit_,
                        "records must arrive in non-decreasing time order");
      }
      if (timeUnitOf(pending_->time, delta_) != nextUnit_) break;
      batch.records.push_back(*pending_);
      pending_.reset();
    }
    ++nextUnit_;
    return batch;
  }

 private:
  RecordSource& source_;
  Duration delta_;
  TimeUnit nextUnit_;
  std::optional<Record> pending_;
  bool sourceDone_ = false;
};

/// Replica of the PR-2 engine's concurrency layout (the layout this PR
/// removed): streams bound round-robin to shards, one ingest + one worker
/// thread per shard, one bounded queue between them. Kept in-bench as the
/// baseline the scheduler is measured against — an unlucky stream mix
/// serializes its heavy streams behind a single thread pair here.
class StaticShardEngine {
 public:
  struct Stream {
    std::unique_ptr<RecordSource> source;
    TiresiasPipeline pipeline;
    RunSummary summary;
    Stream(const Hierarchy& h, PipelineConfig cfg,
           std::unique_ptr<RecordSource> src)
        : source(std::move(src)),
          pipeline(borrowHierarchy(h), std::move(cfg)) {}
  };

  explicit StaticShardEngine(std::size_t shards) : shards_(shards) {}

  void addStream(const Hierarchy& h, PipelineConfig cfg,
                 std::unique_ptr<RecordSource> src) {
    streams_.push_back(std::make_unique<Stream>(h, std::move(cfg),
                                                std::move(src)));
  }

  /// Run every stream to exhaustion; returns total records processed.
  std::size_t run() {
    struct Shard {
      std::vector<Stream*> streams;
      std::unique_ptr<BoundedQueue<std::pair<Stream*, TimeUnitBatch>>> queue;
      // Same record-buffer recycling the PR-2 engine had (ingest -> queue
      // -> worker -> ingest), so the baseline isn't handicapped with
      // per-unit allocations the real shard engine didn't pay.
      std::mutex recycleMutex;
      std::vector<std::vector<Record>> recycle;
      std::vector<Record> takeRecycled() {
        std::lock_guard lock(recycleMutex);
        if (recycle.empty()) return {};
        std::vector<Record> buf = std::move(recycle.back());
        recycle.pop_back();
        return buf;
      }
      void recycleBuffer(std::vector<Record>&& buf) {
        buf.clear();
        std::lock_guard lock(recycleMutex);
        if (recycle.size() < 34) recycle.push_back(std::move(buf));
      }
    };
    std::vector<Shard> shards(shards_);
    for (auto& s : shards) {
      s.queue = std::make_unique<
          BoundedQueue<std::pair<Stream*, TimeUnitBatch>>>(32);
    }
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      shards[i % shards_].streams.push_back(streams_[i].get());
    }
    std::vector<std::thread> threads;
    for (auto& shard : shards) {
      threads.emplace_back([&shard] {  // ingest
        std::vector<std::unique_ptr<TimeUnitBatcher>> batchers;
        std::vector<bool> done(shard.streams.size(), false);
        for (Stream* s : shard.streams) {
          batchers.push_back(std::make_unique<TimeUnitBatcher>(
              *s->source, s->pipeline.config().delta,
              s->pipeline.config().startTime));
        }
        std::size_t live = shard.streams.size();
        TimeUnitBatch batch;
        while (live > 0) {
          for (std::size_t i = 0; i < shard.streams.size(); ++i) {
            if (done[i]) continue;
            batch.records = shard.takeRecycled();
            if (!batchers[i]->next(batch)) {
              done[i] = true;
              --live;
              shard.recycleBuffer(std::move(batch.records));
              continue;
            }
            shard.queue->push({shard.streams[i], std::move(batch)});
          }
        }
        shard.queue->close();
      });
      threads.emplace_back([&shard] {  // worker
        while (auto item = shard.queue->pop()) {
          item->first->pipeline.processUnit(item->second, nullptr,
                                            item->first->summary);
          shard.recycleBuffer(std::move(item->second.records));
        }
      });
    }
    for (auto& t : threads) t.join();
    std::size_t records = 0;
    for (const auto& s : streams_) records += s->summary.recordsProcessed;
    return records;
  }

 private:
  std::size_t shards_;
  std::vector<std::unique_ptr<Stream>> streams_;
};

/// Simulates a paginated remote feed (log tailer, HTTP export): at most
/// `pageSize` records per nextBatch pull, each pull preceded by a network
/// round-trip latency. The sleep happens while *fetching*, so sources on
/// different threads overlap their waits — sources serialized on one
/// thread stack them.
class RemoteSource final : public RecordSource {
 public:
  RemoteSource(std::unique_ptr<RecordSource> inner, std::size_t pageSize,
               std::chrono::microseconds latency)
      : inner_(std::move(inner)), pageSize_(pageSize), latency_(latency) {}

  std::optional<Record> next() override { return inner_->next(); }

  std::size_t nextBatch(std::vector<Record>& out, std::size_t max) override {
    std::this_thread::sleep_for(latency_);
    return inner_->nextBatch(out, std::min(max, pageSize_));
  }

  std::size_t skippedRecords() const override {
    return inner_->skippedRecords();
  }

 private:
  std::unique_ptr<RecordSource> inner_;
  std::size_t pageSize_;
  std::chrono::microseconds latency_;
};

struct PathStats {
  std::size_t records = 0;
  double seconds = 0.0;
  double recordsPerSec = 0.0;
};

using SourceFactory = std::function<std::unique_ptr<RecordSource>()>;

/// Repeats full passes over a fresh source until enough records have been
/// ingested for a stable records/sec figure.
PathStats measureIngest(const SourceFactory& make, Duration delta,
                        bool batched, std::size_t targetRecords) {
  PathStats out;
  while (out.records < targetRecords) {
    auto src = make();
    Stopwatch watch;
    if (batched) {
      TimeUnitBatcher batcher(*src, delta, 0);
      TimeUnitBatch batch;
      while (batcher.next(batch)) out.records += batch.records.size();
    } else {
      LegacyBatcher batcher(*src, delta, 0);
      while (auto b = batcher.next()) out.records += b->records.size();
    }
    out.seconds += watch.elapsedSeconds();
  }
  out.recordsPerSec =
      out.seconds > 0 ? static_cast<double>(out.records) / out.seconds : 0.0;
  return out;
}

PipelineConfig pipelineConfig(const WorkloadSpec& spec) {
  PipelineConfig cfg;
  cfg.delta = spec.unit;
  cfg.detector.theta = 8.0;
  cfg.detector.windowLength = 64;
  cfg.detector.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
  return cfg;
}

struct BenchResult {
  std::size_t workers = 0;
  EngineStats stats;
};

BenchResult runEngine(const WorkloadSpec& spec, std::size_t workers,
                      const std::vector<SourceFactory>& sources,
                      std::size_t ingestThreads = 2, bool metrics = true) {
  EngineConfig cfg;
  cfg.workers = workers;
  cfg.ingestThreads = ingestThreads;
  cfg.streamQueueCapacity = 32;
  cfg.totalQueueCapacity = 256;
  cfg.metrics = metrics;
  // Null sink, like the StaticShardEngine baseline: both sides measure
  // pure scheduling + detection, not result-store insertion.
  DetectionEngine eng(cfg, nullptr);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    eng.addStream("s" + std::to_string(i), borrowHierarchy(spec.hierarchy),
                  pipelineConfig(spec), sources[i]());
  }
  eng.start();
  return {workers, eng.drain()};
}

/// Result row of the residency scenario (pooled workspaces + hibernation
/// at fleet scale).
struct ResidencyResult {
  std::size_t streams = 0;
  std::size_t workers = 0;
  std::size_t maxResident = 0;
  std::size_t perStreamWorkspaceBytes = 0;  // one bound workspace
  EngineStats stats;
  /// streams * perStreamWorkspaceBytes / pooled bytes: the resident-memory
  /// factor saved by lending M pooled workspaces instead of giving every
  /// stream its own (the pre-refactor layout).
  double reductionX = 0.0;
};

/// A fleet of `streams` streams sharing ONE spec/hierarchy, advanced under
/// a hard resident cap: pooled workspaces bound per-claim, cold streams
/// hibernated to in-memory blobs and woken on their next unit. Skewed: one
/// in a thousand streams is ~8x heavier than the rest.
ResidencyResult runResidency(std::size_t streams, std::size_t workers,
                             std::size_t maxResident) {
  WorkloadSpec base = workload::ccdNetworkWorkload(Scale::kTest);
  base.baseRatePerUnit = 4;  // thin per-stream traffic: fleet-shaped load
  const auto spec = std::make_shared<const WorkloadSpec>(std::move(base));

  ResidencyResult out;
  out.streams = streams;
  out.workers = workers;
  out.maxResident = maxResident;
  {
    DetectWorkspace probe;
    probe.bind(spec->hierarchy.size());
    out.perStreamWorkspaceBytes = probe.bytes();
  }

  EngineConfig cfg;
  cfg.workers = workers;
  cfg.ingestThreads = 2;
  cfg.streamQueueCapacity = 8;
  cfg.totalQueueCapacity = 4096;
  cfg.maxResidentStreams = maxResident;
  cfg.metricsSampleMillis = 500;  // 100k-stream stat sweeps are not free
  DetectionEngine eng(cfg, nullptr);
  const TimeUnit lightUnits = 3;
  const TimeUnit heavyUnits = 24;
  for (std::size_t i = 0; i < streams; ++i) {
    const TimeUnit n = (i % 1000 == 0) ? heavyUnits : lightUnits;
    eng.addStream("r" + std::to_string(i), workload::sharedHierarchy(spec),
                  pipelineConfig(*spec),
                  std::make_unique<GeneratorSource>(*spec, 0, n, 1 + i));
  }
  eng.start();
  out.stats = eng.drain();
  const std::size_t pooled = out.stats.workspaceBytes;
  if (pooled > 0) {
    out.reductionX =
        static_cast<double>(out.perStreamWorkspaceBytes) *
        static_cast<double>(streams) / static_cast<double>(pooled);
  }
  return out;
}

void jsonPathStats(std::FILE* f, const char* key, const PathStats& s,
                   bool trailingComma) {
  std::fprintf(f,
               "      \"%s\": {\"records\": %zu, \"seconds\": %.6f, "
               "\"records_per_sec\": %.0f}%s\n",
               key, s.records, s.seconds, s.recordsPerSec,
               trailingComma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  const TimeUnit units = argc > 1 ? std::atoll(argv[1]) : 512;
  const std::string ingestJsonPath = argc > 2 ? argv[2] : "BENCH_ingest.json";
  const std::string engineJsonPath = argc > 3 ? argv[3] : "BENCH_engine.json";
  const std::size_t residencyStreams =
      argc > 4 ? static_cast<std::size_t>(std::atoll(argv[4])) : 100000;
  const std::size_t streams = 8;
  const std::size_t workerGrid[] = {1, 2, 4, 8};
  const char* kinds[] = {"csv", "vector", "generated", "binary"};
  constexpr int kKinds = 4;

  bench::banner("ingest fast path + task-scheduled engine (src/stream, "
                "src/engine)",
                "batched vs per-record ingest; aggregate records/sec of 8 "
                "uniform streams at 1/2/4/8 workers; skewed streams through "
                "the scheduler vs the static-shard layout");
  const unsigned cores = std::thread::hardware_concurrency();
  bench::note("hardware threads: " + std::to_string(cores));
  bench::note("per-stream units: " + std::to_string(units));

  const WorkloadSpec spec = workload::ccdNetworkWorkload(Scale::kMedium);

  // Materialize one fixed trace (same records for every source kind, so
  // the three ingest paths chew identical work).
  std::vector<Record> records;
  {
    GeneratorSource gen(spec, 0, units, 1);
    std::vector<Record> chunk;
    while (gen.nextBatch(chunk, 65536) > 0) {
      records.insert(records.end(), chunk.begin(), chunk.end());
    }
  }
  const std::string tracePath = "bench_ingest_trace.csv";
  writeRecordsCsv(tracePath, spec.hierarchy, records);
  bench::note("trace: " + std::to_string(records.size()) + " records (" +
              std::to_string(units) + " units of " +
              std::to_string(spec.unit / 60) + " min)");

  // The binary trace is the same records, converted once (the one-time
  // convert cost is reported but not part of the ingest measurement).
  const std::string binaryTracePath = "bench_ingest_trace.tsrb";
  {
    Stopwatch watch;
    const auto cs = convertCsvTraceToBinary(tracePath, binaryTracePath);
    bench::note("convert: " + std::to_string(cs.records) + " records, " +
                std::to_string(cs.paths) + " paths, " +
                std::to_string(cs.bytesWritten) + " bytes in " +
                std::to_string(watch.elapsedSeconds()) + "s (one-time)");
  }

  const SourceFactory makeCsv = [&] {
    return std::make_unique<CsvSource>(tracePath, spec.hierarchy);
  };
  const SourceFactory makeVector = [&] {
    return std::make_unique<VectorSource>(records);
  };
  const SourceFactory makeGenerated = [&] {
    return std::make_unique<GeneratorSource>(spec, 0, units, 1);
  };
  const SourceFactory makeBinary = [&] {
    return std::make_unique<BinarySource>(binaryTracePath, spec.hierarchy);
  };
  const SourceFactory factories[] = {makeCsv, makeVector, makeGenerated,
                                     makeBinary};

  // ---- Ingest layer: per-record vs batched ----
  const std::size_t targetRecords = 2'000'000;
  PathStats perRecord[kKinds], batched[kKinds];
  double speedup[kKinds];
  std::printf("\ningest layer (no detection), %zu+ records per path:\n",
              targetRecords);
  std::printf("%-10s %14s %14s %9s\n", "source", "per-record/s", "batched/s",
              "speedup");
  for (int k = 0; k < kKinds; ++k) {
    perRecord[k] =
        measureIngest(factories[k], spec.unit, false, targetRecords);
    batched[k] = measureIngest(factories[k], spec.unit, true, targetRecords);
    speedup[k] = perRecord[k].recordsPerSec > 0
                     ? batched[k].recordsPerSec / perRecord[k].recordsPerSec
                     : 0.0;
    std::printf("%-10s %14.0f %14.0f %8.2fx\n", kinds[k],
                perRecord[k].recordsPerSec, batched[k].recordsPerSec,
                speedup[k]);
  }

  bool ok = true;
  // The binary format's headline: batched binary ingest vs batched CSV
  // ingest over the identical record stream. No parallelism involved, so
  // this CHECK holds on any core count.
  const double binaryVsCsv =
      batched[0].recordsPerSec > 0
          ? batched[3].recordsPerSec / batched[0].recordsPerSec
          : 0.0;
  std::printf("binary vs csv (batched): %.2fx\n", binaryVsCsv);
  ok &= bench::check(binaryVsCsv >= 2.0,
                     "batched binary ingest >= 2x batched CSV ingest");

  // ---- Engine: uniform streams over the worker grid ----
  std::vector<SourceFactory> uniformSources(streams, makeGenerated);
  std::vector<BenchResult> grid;
  std::printf("\nengine, %zu uniform generated streams:\n", streams);
  std::printf("%-8s %12s %12s %10s %10s %9s %14s\n", "workers", "records",
              "elapsed(s)", "claims", "requeues", "bp-waits", "records/sec");
  for (std::size_t workers : workerGrid) {
    const auto r = runEngine(spec, workers, uniformSources);
    grid.push_back(r);
    std::printf("%-8zu %12zu %12.3f %10zu %10zu %9zu %14.0f\n", r.workers,
                r.stats.recordsProcessed, r.stats.elapsedSeconds,
                r.stats.scheduler.claims, r.stats.scheduler.requeues,
                r.stats.backpressureWaits, r.stats.recordsPerSecond);
  }

  // Same input => every worker count must do identical work.
  for (const auto& r : grid) {
    ok &= bench::check(
        r.stats.recordsProcessed == grid[0].stats.recordsProcessed &&
            r.stats.unitsProcessed == grid[0].stats.unitsProcessed,
        "workers=" + std::to_string(r.workers) +
            " processed identical work to workers=1 (determinism)");
  }
  const double scale4 =
      grid[2].stats.recordsPerSecond / grid[0].stats.recordsPerSecond;
  std::printf("4-worker speedup over 1 worker: %.2fx\n", scale4);
  if (cores >= 4) {
    ok &= bench::check(scale4 >= 2.0,
                       "aggregate throughput at 4 workers >= 2x 1 worker");
  } else {
    bench::note("< 4 hardware threads: scaling CHECK skipped");
  }

  // ---- Metrics overhead: registry on vs off, uniform workers=1 ----
  // Alternating runs absorb thermal/cache drift; best-of-3 per side is the
  // committed figure. workers=1 is the least forgiving scenario: every
  // per-unit recording cost lands on the one thread doing all the work.
  double metricsOffBest = 0.0, metricsOnBest = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    metricsOffBest = std::max(
        metricsOffBest,
        runEngine(spec, 1, uniformSources, 2, false).stats.recordsPerSecond);
    metricsOnBest = std::max(
        metricsOnBest,
        runEngine(spec, 1, uniformSources, 2, true).stats.recordsPerSecond);
  }
  const double overheadPct =
      metricsOffBest > 0.0
          ? (metricsOffBest - metricsOnBest) / metricsOffBest * 100.0
          : 0.0;
  std::printf("\nmetrics overhead (uniform, workers=1, best of 3 per side):\n");
  std::printf("  metrics off: %14.0f records/sec\n", metricsOffBest);
  std::printf("  metrics on:  %14.0f records/sec\n", metricsOnBest);
  std::printf("  overhead: %.2f%%\n", overheadPct);
  if (cores >= 4) {
    ok &= bench::check(overheadPct < 2.0,
                       "metrics overhead < 2% on the uniform workers=1 "
                       "scenario");
  } else {
    bench::note("< 4 hardware threads: metrics-overhead CHECK skipped "
                "(single-core timing too noisy for a 2% bound; the "
                "committed baseline still carries the measured delta)");
  }

  // ---- Stage percentiles from the metrics-on workers=1 grid run ----
  const obs::MetricsSnapshot& stageSnap = grid[0].stats.metrics;
  std::printf("\nstage latency percentiles (uniform, workers=1):\n");
  std::printf("%-28s %10s %10s %10s %10s %10s\n", "stage", "count", "p50 us",
              "p90 us", "p99 us", "max us");
  for (const auto& s : stageSnap.stages) {
    std::printf("%-28s %10llu %10.1f %10.1f %10.1f %10.1f\n", s.name.c_str(),
                static_cast<unsigned long long>(s.count), s.p50 * 1e6,
                s.p90 * 1e6, s.p99 * 1e6, s.max * 1e6);
  }
  ok &= bench::check(stageSnap.stage(obs::Stage::kRunSlice) != nullptr &&
                         stageSnap.stage(obs::Stage::kUnitLatency) != nullptr,
                     "metrics-on run exposes run-slice and unit-latency "
                     "stage histograms");

  // ---- Skewed streams: scheduler vs the static-shard layout ----
  // 8 streams, two of them ~8x heavier — at ids 0 and 4 so the old
  // round-robin over 4 shards co-locates both on shard 0 (the "unlucky
  // neighbors" failure mode: one thread pair serializes both heavies
  // while the other three shards go idle). The shared pool instead runs
  // each heavy stream on its own worker.
  const TimeUnit heavyUnits = units;
  const TimeUnit lightUnits = std::max<TimeUnit>(units / 8, 16);
  const std::size_t skewShards = 4;
  auto skewSource = [&](std::size_t i) -> SourceFactory {
    const bool heavy = i == 0 || i == 4;
    const TimeUnit n = heavy ? heavyUnits : lightUnits;
    return [&, n, i] {
      return std::make_unique<GeneratorSource>(spec, 0, n, 1 + i);
    };
  };
  std::vector<SourceFactory> skewSources;
  for (std::size_t i = 0; i < streams; ++i) skewSources.push_back(skewSource(i));

  std::printf("\nskewed streams (2 heavy x %lld units + 6 light x %lld "
              "units):\n",
              static_cast<long long>(heavyUnits),
              static_cast<long long>(lightUnits));
  PathStats staticShard;
  {
    StaticShardEngine baseline(skewShards);
    for (std::size_t i = 0; i < streams; ++i) {
      baseline.addStream(spec.hierarchy, pipelineConfig(spec),
                         skewSources[i]());
    }
    Stopwatch watch;
    staticShard.records = baseline.run();
    staticShard.seconds = watch.elapsedSeconds();
    staticShard.recordsPerSec =
        static_cast<double>(staticShard.records) / staticShard.seconds;
  }
  const auto sched = runEngine(spec, skewShards, skewSources);
  const double skewSpeedup =
      sched.stats.recordsPerSecond / staticShard.recordsPerSec;
  std::printf("%-22s %12zu records %10.3fs %14.0f records/sec\n",
              "static 4-shard pairs", staticShard.records,
              staticShard.seconds, staticShard.recordsPerSec);
  std::printf("%-22s %12zu records %10.3fs %14.0f records/sec\n",
              "scheduler (4 workers)", sched.stats.recordsProcessed,
              sched.stats.elapsedSeconds, sched.stats.recordsPerSecond);
  std::printf("scheduler speedup on the skewed mix: %.2fx (busiest-stream "
              "share %.2f)\n",
              skewSpeedup, sched.stats.busiestStreamShare);
  ok &= bench::check(sched.stats.recordsProcessed == staticShard.records,
                     "scheduler and static baseline processed identical "
                     "skewed work");
  if (cores >= 4) {
    ok &= bench::check(skewSpeedup >= 1.15,
                       "scheduler beats the static-shard layout on the "
                       "skewed mix by >= 1.15x");
  } else {
    bench::note("< 4 hardware threads: compute-bound skew CHECK skipped "
                "(no parallelism to reclaim)");
  }

  // ---- Skewed remote streams: the co-residency stall, without needing
  // spare cores ----
  // Same skewed mix, but every source is a paginated remote feed. The
  // static layout welds ingest to shards: shard 0's single ingest thread
  // fetches both heavy streams, so their round-trip latencies stack. The
  // scheduler's ingest pool is sized independently (3 threads here — it
  // need not match the worker count), which puts the two heavy sources on
  // different ingest threads; their waits overlap even on one core.
  const std::size_t pageSize = 256;
  const auto pageLatency = std::chrono::microseconds(2000);
  auto remoteSource = [&](std::size_t i) -> SourceFactory {
    return [&, i] {
      const bool heavy = i == 0 || i == 4;
      return std::make_unique<RemoteSource>(
          std::make_unique<GeneratorSource>(
              spec, 0, heavy ? heavyUnits : lightUnits, 1 + i),
          pageSize, pageLatency);
    };
  };
  std::vector<SourceFactory> remoteSources;
  for (std::size_t i = 0; i < streams; ++i) {
    remoteSources.push_back(remoteSource(i));
  }
  std::printf("\nskewed remote streams (paginated sources, %zu records/page "
              "at %lldus/page):\n",
              pageSize, static_cast<long long>(pageLatency.count()));
  PathStats staticRemote;
  {
    StaticShardEngine baseline(skewShards);
    for (std::size_t i = 0; i < streams; ++i) {
      baseline.addStream(spec.hierarchy, pipelineConfig(spec),
                         remoteSources[i]());
    }
    Stopwatch watch;
    staticRemote.records = baseline.run();
    staticRemote.seconds = watch.elapsedSeconds();
    staticRemote.recordsPerSec =
        static_cast<double>(staticRemote.records) / staticRemote.seconds;
  }
  const auto schedRemote = runEngine(spec, skewShards, remoteSources, 3);
  const double remoteSpeedup =
      schedRemote.stats.recordsPerSecond / staticRemote.recordsPerSec;
  std::printf("%-22s %12zu records %10.3fs %14.0f records/sec\n",
              "static 4-shard pairs", staticRemote.records,
              staticRemote.seconds, staticRemote.recordsPerSec);
  std::printf("%-22s %12zu records %10.3fs %14.0f records/sec\n",
              "scheduler (4w + 3i)", schedRemote.stats.recordsProcessed,
              schedRemote.stats.elapsedSeconds,
              schedRemote.stats.recordsPerSecond);
  std::printf("scheduler speedup on the skewed remote mix: %.2fx\n",
              remoteSpeedup);
  ok &= bench::check(
      schedRemote.stats.recordsProcessed == staticRemote.records,
      "scheduler and static baseline processed identical remote work");
  ok &= bench::check(remoteSpeedup >= 1.15,
                     "scheduler beats the static-shard layout on the skewed "
                     "remote mix by >= 1.15x");

  // ---- Residency: fleet-scale memory under pooled workspaces +
  // hibernation ----
  // A skewed fleet sharing one hierarchy, advanced under a resident cap a
  // tiny fraction of the fleet size. Pre-refactor, every stream owned a
  // bound workspace; now only the M pooled ones (M = workers) hold planes,
  // so resident workspace bytes shrink by ~streams/workers regardless of
  // hierarchy size. Hibernation keeps cold per-stream state paged out.
  const std::size_t residencyWorkers = 4;
  const std::size_t residencyCap =
      std::max<std::size_t>(residencyStreams / 100, 64);
  std::printf("\nresidency fleet (%zu streams, %zu workers, cap %zu):\n",
              residencyStreams, residencyWorkers, residencyCap);
  const ResidencyResult res =
      runResidency(residencyStreams, residencyWorkers, residencyCap);
  std::printf("%-22s %12zu records %10.3fs %14.0f records/sec\n",
              "pooled + hibernate", res.stats.recordsProcessed,
              res.stats.elapsedSeconds, res.stats.recordsPerSecond);
  std::printf("workspace bytes: per-stream layout %zu (%zu streams x %zu), "
              "pooled %zu -> %.0fx smaller\n",
              res.perStreamWorkspaceBytes * res.streams, res.streams,
              res.perStreamWorkspaceBytes, res.stats.workspaceBytes,
              res.reductionX);
  std::printf("residency: hierarchies=%zu resident=%zu hibernated=%zu "
              "evictions=%zu wakes=%zu\n",
              res.stats.distinctHierarchies, res.stats.residentStreams,
              res.stats.hibernatedStreams, res.stats.hibernateEvictions,
              res.stats.hibernateWakes);
  ok &= bench::check(res.stats.distinctHierarchies == 1,
                     "fleet shares a single engine-owned hierarchy");
  ok &= bench::check(res.reductionX >= 50.0,
                     "pooled workspaces cut resident workspace bytes by >= "
                     "50x vs one-workspace-per-stream");
  ok &= bench::check(
      res.stats.hibernateEvictions > 0 && res.stats.hibernateWakes > 0,
      "resident cap exercised hibernation (evictions and wakes > 0)");
  ok &= bench::check(res.stats.residentStreams <=
                         residencyCap + residencyWorkers,
                     "resident streams stay within the best-effort cap");

  // ---- Socket ingest: loopback TCP -> SocketSource -> engine ----
  // The materialized trace, framed with the binary stream protocol and
  // pushed over a real loopback socket by a writer thread. One stream,
  // one worker: the figure is the serving surface's single-connection
  // ingest path, and the unit-latency histogram (queue entry to detection
  // done) is the committed ingest-latency percentile baseline.
  std::printf("\nsocket ingest (loopback, framed binary, 1 stream):\n");
  std::vector<std::uint8_t> socketWire;
  {
    std::vector<std::string> paths;
    paths.reserve(spec.hierarchy.size());
    for (std::size_t n = 0; n < spec.hierarchy.size(); ++n) {
      paths.push_back(spec.hierarchy.path(static_cast<NodeId>(n)));
    }
    socketWire = encodeSocketHandshake(paths);
    constexpr std::size_t kFrame = 8192;
    for (std::size_t at = 0; at < records.size(); at += kFrame) {
      appendSocketFrame(socketWire, records.data() + at,
                        std::min(kFrame, records.size() - at));
    }
    appendSocketEndOfStream(socketWire);
  }
  auto socketListener = std::make_shared<net::TcpListener>();
  ok &= bench::check(socketListener->listen(0, /*loopbackOnly=*/true),
                     "loopback listener binds an ephemeral port");
  std::thread socketWriter(
      [port = socketListener->port(), &socketWire] {
        net::TcpConn conn = net::connectLoopback(port, 30'000);
        if (conn.valid()) {
          conn.writeAll(socketWire.data(), socketWire.size());
        }
      });
  EngineStats socketStats;
  std::size_t socketProtocolErrors = 0;
  {
    EngineConfig cfg;
    cfg.workers = 1;
    cfg.ingestThreads = 1;
    cfg.streamQueueCapacity = 32;
    cfg.totalQueueCapacity = 256;
    cfg.metrics = true;
    DetectionEngine eng(cfg, nullptr);
    SocketSourceOptions sopt;
    sopt.format = SocketSourceOptions::Format::kBinary;
    auto src = std::make_unique<SocketSource>(socketListener, spec.hierarchy,
                                              sopt);
    const SocketSource* view = src.get();
    eng.addStream("net-0", borrowHierarchy(spec.hierarchy),
                  pipelineConfig(spec), std::move(src));
    eng.start();
    socketStats = eng.drain();
    socketProtocolErrors = view->protocolErrors();
  }
  socketWriter.join();
  const obs::StageStats* socketLatency =
      socketStats.metrics.stage(obs::Stage::kUnitLatency);
  std::printf("%-22s %12zu records %10.3fs %14.0f records/sec\n",
              "loopback binary", socketStats.recordsProcessed,
              socketStats.elapsedSeconds, socketStats.recordsPerSecond);
  if (socketLatency != nullptr) {
    std::printf("unit latency: p50 %.1fus p90 %.1fus p99 %.1fus (max "
                "%.1fus over %llu units)\n",
                socketLatency->p50 * 1e6, socketLatency->p90 * 1e6,
                socketLatency->p99 * 1e6, socketLatency->max * 1e6,
                static_cast<unsigned long long>(socketLatency->count));
  }
  ok &= bench::check(socketStats.recordsProcessed == records.size() &&
                         socketProtocolErrors == 0,
                     "socket ingest delivered the whole trace with zero "
                     "protocol errors");
  ok &= bench::check(socketLatency != nullptr && socketLatency->count > 0,
                     "socket run exposes the unit-latency histogram");

  // ---- Machine-readable baselines ----
  {
    std::FILE* f = std::fopen(ingestJsonPath.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", ingestJsonPath.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"tiresias_bench_ingest/v3\",\n");
    std::fprintf(f, "  \"workload\": \"ccd-net/medium\",\n");
    std::fprintf(f, "  \"units_per_stream\": %lld,\n",
                 static_cast<long long>(units));
    std::fprintf(f, "  \"trace_records\": %zu,\n", records.size());
    std::fprintf(f, "  \"hardware_threads\": %u,\n", cores);
    std::fprintf(f, "  \"ingest\": {\n");
    for (int k = 0; k < kKinds; ++k) {
      std::fprintf(f, "    \"%s\": {\n", kinds[k]);
      jsonPathStats(f, "per_record", perRecord[k], true);
      jsonPathStats(f, "batched", batched[k], true);
      std::fprintf(f, "      \"speedup\": %.2f\n", speedup[k]);
      std::fprintf(f, "    }%s\n", k < kKinds - 1 ? "," : "");
    }
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"binary_vs_csv_batched\": %.2f\n", binaryVsCsv);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", ingestJsonPath.c_str());
  }
  {
    std::FILE* f = std::fopen(engineJsonPath.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", engineJsonPath.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"tiresias_bench_engine/v5\",\n");
    std::fprintf(f, "  \"workload\": \"ccd-net/medium\",\n");
    std::fprintf(f, "  \"hardware_threads\": %u,\n", cores);
    std::fprintf(f, "  \"uniform\": {\n");
    std::fprintf(f, "    \"streams\": %zu,\n", streams);
    std::fprintf(f, "    \"units_per_stream\": %lld,\n",
                 static_cast<long long>(units));
    std::fprintf(f, "    \"grid\": [\n");
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const auto& r = grid[i];
      std::fprintf(f,
                   "      {\"workers\": %zu, \"records\": %zu, \"seconds\": "
                   "%.6f, \"records_per_sec\": %.0f, \"claims\": %zu, "
                   "\"requeues\": %zu}%s\n",
                   r.workers, r.stats.recordsProcessed,
                   r.stats.elapsedSeconds, r.stats.recordsPerSecond,
                   r.stats.scheduler.claims, r.stats.scheduler.requeues,
                   i + 1 < grid.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  },\n");
    std::fprintf(f, "  \"skewed\": {\n");
    std::fprintf(f, "    \"streams\": %zu,\n", streams);
    std::fprintf(f, "    \"heavy_streams\": 2,\n");
    std::fprintf(f, "    \"heavy_units\": %lld,\n",
                 static_cast<long long>(heavyUnits));
    std::fprintf(f, "    \"light_units\": %lld,\n",
                 static_cast<long long>(lightUnits));
    std::fprintf(f,
                 "    \"static_shards\": {\"shards\": %zu, \"records\": %zu, "
                 "\"seconds\": %.6f, \"records_per_sec\": %.0f},\n",
                 skewShards, staticShard.records, staticShard.seconds,
                 staticShard.recordsPerSec);
    std::fprintf(f,
                 "    \"scheduler\": {\"workers\": %zu, \"ingest_threads\": "
                 "2, \"records\": %zu, \"seconds\": %.6f, "
                 "\"records_per_sec\": %.0f, \"busiest_stream_share\": "
                 "%.3f},\n",
                 skewShards, sched.stats.recordsProcessed,
                 sched.stats.elapsedSeconds, sched.stats.recordsPerSecond,
                 sched.stats.busiestStreamShare);
    std::fprintf(f, "    \"speedup\": %.2f\n", skewSpeedup);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"skewed_remote\": {\n");
    std::fprintf(f, "    \"streams\": %zu,\n", streams);
    std::fprintf(f, "    \"heavy_streams\": 2,\n");
    std::fprintf(f, "    \"heavy_units\": %lld,\n",
                 static_cast<long long>(heavyUnits));
    std::fprintf(f, "    \"light_units\": %lld,\n",
                 static_cast<long long>(lightUnits));
    std::fprintf(f, "    \"page_records\": %zu,\n", pageSize);
    std::fprintf(f, "    \"page_latency_us\": %lld,\n",
                 static_cast<long long>(pageLatency.count()));
    std::fprintf(f,
                 "    \"static_shards\": {\"shards\": %zu, \"records\": %zu, "
                 "\"seconds\": %.6f, \"records_per_sec\": %.0f},\n",
                 skewShards, staticRemote.records, staticRemote.seconds,
                 staticRemote.recordsPerSec);
    std::fprintf(f,
                 "    \"scheduler\": {\"workers\": %zu, \"ingest_threads\": "
                 "3, \"records\": %zu, \"seconds\": %.6f, "
                 "\"records_per_sec\": %.0f},\n",
                 skewShards, schedRemote.stats.recordsProcessed,
                 schedRemote.stats.elapsedSeconds,
                 schedRemote.stats.recordsPerSecond);
    std::fprintf(f, "    \"speedup\": %.2f\n", remoteSpeedup);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"residency\": {\n");
    std::fprintf(f, "    \"streams\": %zu,\n", res.streams);
    std::fprintf(f, "    \"workers\": %zu,\n", res.workers);
    std::fprintf(f, "    \"max_resident\": %zu,\n", res.maxResident);
    std::fprintf(f, "    \"records\": %zu,\n", res.stats.recordsProcessed);
    std::fprintf(f, "    \"seconds\": %.3f,\n", res.stats.elapsedSeconds);
    std::fprintf(f, "    \"records_per_sec\": %.0f,\n",
                 res.stats.recordsPerSecond);
    std::fprintf(f, "    \"workspace_bytes_per_stream\": %zu,\n",
                 res.perStreamWorkspaceBytes);
    std::fprintf(f, "    \"per_stream_workspace_bytes\": %zu,\n",
                 res.perStreamWorkspaceBytes * res.streams);
    std::fprintf(f, "    \"pooled_workspace_bytes\": %zu,\n",
                 res.stats.workspaceBytes);
    std::fprintf(f, "    \"reduction_x\": %.1f,\n", res.reductionX);
    std::fprintf(f, "    \"distinct_hierarchies\": %zu,\n",
                 res.stats.distinctHierarchies);
    std::fprintf(f, "    \"resident_streams\": %zu,\n",
                 res.stats.residentStreams);
    std::fprintf(f, "    \"hibernated_streams\": %zu,\n",
                 res.stats.hibernatedStreams);
    std::fprintf(f, "    \"hibernate_evictions\": %zu,\n",
                 res.stats.hibernateEvictions);
    std::fprintf(f, "    \"hibernate_wakes\": %zu\n",
                 res.stats.hibernateWakes);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"socket_ingest\": {\n");
    std::fprintf(f, "    \"transport\": \"loopback tcp, framed binary\",\n");
    std::fprintf(f, "    \"streams\": 1,\n");
    std::fprintf(f, "    \"frame_records\": 8192,\n");
    std::fprintf(f, "    \"records\": %zu,\n", socketStats.recordsProcessed);
    std::fprintf(f, "    \"seconds\": %.6f,\n", socketStats.elapsedSeconds);
    std::fprintf(f, "    \"records_per_sec\": %.0f,\n",
                 socketStats.recordsPerSecond);
    std::fprintf(f, "    \"protocol_errors\": %zu,\n", socketProtocolErrors);
    std::fprintf(f,
                 "    \"unit_latency_us\": {\"count\": %llu, \"p50\": %.1f, "
                 "\"p90\": %.1f, \"p99\": %.1f, \"max\": %.1f}\n",
                 static_cast<unsigned long long>(
                     socketLatency != nullptr ? socketLatency->count : 0),
                 socketLatency != nullptr ? socketLatency->p50 * 1e6 : 0.0,
                 socketLatency != nullptr ? socketLatency->p90 * 1e6 : 0.0,
                 socketLatency != nullptr ? socketLatency->p99 * 1e6 : 0.0,
                 socketLatency != nullptr ? socketLatency->max * 1e6 : 0.0);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"metrics\": {\n");
    std::fprintf(f,
                 "    \"overhead\": {\"scenario\": \"uniform workers=1\", "
                 "\"runs_per_side\": 3, \"metrics_off_records_per_sec\": "
                 "%.0f, \"metrics_on_records_per_sec\": %.0f, "
                 "\"overhead_pct\": %.2f},\n",
                 metricsOffBest, metricsOnBest, overheadPct);
    std::fprintf(f, "    \"stages\": %s\n",
                 obs::stagesJson(stageSnap).c_str());
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", engineJsonPath.c_str());
  }
  std::remove(tracePath.c_str());
  std::remove(binaryTracePath.c_str());

  return ok ? 0 : 1;
}
