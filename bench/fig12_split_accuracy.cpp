// Fig 12 — absolute error of ADA's time series against STA's exact
// reconstruction, (a) per timeunit offset and (b) per hierarchy depth, for
// the split heuristics and reference depths h of §V-B4/§V-B5.
//
// Shape to reproduce: error drops sharply as reference levels are added
// (h=2 reaches ~1% in the paper); Long-Term-History is slightly better
// than the other heuristics; error is stable across timeunit offsets.
#include "bench/bench_util.h"

namespace {

using namespace tiresias;
using namespace tiresias::workload;

struct ErrorProfile {
  std::vector<double> byOffset;  // mean |ADA-STA| / mean|STA|, per offset
  std::vector<double> byDepth;   // same, grouped by node depth (1-based)
  double overall = 0.0;
};

struct Variant {
  std::string label;
  SplitRule rule;
  double ewmaAlpha;
  std::size_t refLevels;
};

ErrorProfile measure(const WorkloadSpec& spec, const Variant& variant,
                     std::size_t window, TimeUnit totalUnits,
                     const std::vector<std::size_t>& offsets) {
  const auto& h = spec.hierarchy;
  DetectorConfig cfg = bench::paperConfig(window, 8.0, bench::hwFactory());
  cfg.splitRule = variant.rule;
  cfg.splitEwmaAlpha = variant.ewmaAlpha;
  cfg.referenceLevels = variant.refLevels;

  AdaDetector ada(h, cfg);
  StaDetector sta(h, cfg);
  GeneratorSource src(spec, 0, totalUnits, 1207);
  TimeUnitBatcher batcher(src, spec.unit, 0);

  std::vector<double> errSum(offsets.size(), 0.0), refSum(offsets.size(), 0.0);
  std::vector<double> depthErr(static_cast<std::size_t>(h.height()) + 1, 0.0);
  std::vector<double> depthRef(static_cast<std::size_t>(h.height()) + 1, 0.0);
  double allErr = 0.0, allRef = 0.0;

  while (auto b = batcher.next()) {
    auto ra = ada.step(*b);
    auto rs = sta.step(*b);
    if (!ra || !rs) continue;
    for (NodeId n : rs->shhh) {
      const auto sa = ada.seriesOf(n);
      const auto ss = sta.seriesOf(n);
      if (sa.size() != ss.size() || sa.empty()) continue;
      const auto d = static_cast<std::size_t>(h.depth(n));
      for (std::size_t o = 0; o < offsets.size(); ++o) {
        if (offsets[o] >= ss.size()) continue;
        const std::size_t idx = ss.size() - 1 - offsets[o];
        errSum[o] += std::abs(sa[idx] - ss[idx]);
        refSum[o] += std::abs(ss[idx]);
      }
      for (std::size_t i = 0; i < ss.size(); ++i) {
        const double e = std::abs(sa[i] - ss[i]);
        depthErr[d] += e;
        depthRef[d] += std::abs(ss[i]);
        allErr += e;
        allRef += std::abs(ss[i]);
      }
    }
  }

  ErrorProfile profile;
  for (std::size_t o = 0; o < offsets.size(); ++o) {
    profile.byOffset.push_back(refSum[o] > 0 ? errSum[o] / refSum[o] : 0.0);
  }
  for (std::size_t d = 0; d < depthErr.size(); ++d) {
    profile.byDepth.push_back(depthRef[d] > 0 ? depthErr[d] / depthRef[d]
                                              : 0.0);
  }
  profile.overall = allRef > 0 ? allErr / allRef : 0.0;
  return profile;
}

}  // namespace

int main() {
  bench::banner("Fig 12", "ADA time-series error vs STA ground truth");
  const auto spec = ccdNetworkWorkload(Scale::kTest);
  const std::size_t window = 192;     // 2 days of 15-min units
  const TimeUnit totalUnits = 292;    // ~100 detection instances
  const std::vector<std::size_t> offsets{0, 10, 20, 30, 40};
  bench::note("CCD network (test preset), window=192 units, 100 instances; "
              "STA is the exact reference");

  const std::vector<Variant> variants = {
      {"Long-Term-History; h=0", SplitRule::kLongTermHistory, 0.4, 0},
      {"Long-Term-History; h=1", SplitRule::kLongTermHistory, 0.4, 1},
      {"Long-Term-History; h=2", SplitRule::kLongTermHistory, 0.4, 2},
      {"EWMA a=0.8; h=2", SplitRule::kEwma, 0.8, 2},
      {"EWMA a=0.4; h=2", SplitRule::kEwma, 0.4, 2},
      {"Last-Time-Unit; h=2", SplitRule::kLastTimeUnit, 0.4, 2},
      {"Uniform; h=2", SplitRule::kUniform, 0.4, 2},
  };

  std::vector<ErrorProfile> profiles;
  for (const auto& v : variants) {
    profiles.push_back(measure(spec, v, window, totalUnits, offsets));
  }

  std::printf("\n(a) mean relative error by timeunit offset "
              "(0 = detection unit)\n");
  AsciiTable byOffset({"Heuristic", "-40", "-30", "-20", "-10", "0"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    std::vector<std::string> cells{variants[i].label};
    for (std::size_t o = offsets.size(); o-- > 0;) {
      cells.push_back(fmtPct(profiles[i].byOffset[o], 2));
    }
    byOffset.addRow(cells);
  }
  byOffset.print(std::cout);

  std::printf("\n(b) mean relative error by hierarchy depth\n");
  AsciiTable byDepth({"Heuristic", "d=1", "d=2", "d=3", "d=4", "d=5"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    std::vector<std::string> cells{variants[i].label};
    for (int d = 1; d <= 5; ++d) {
      cells.push_back(
          fmtPct(profiles[i].byDepth[static_cast<std::size_t>(d)], 2));
    }
    byDepth.addRow(cells);
  }
  byDepth.print(std::cout);

  std::printf("\noverall relative error per heuristic\n");
  for (std::size_t i = 0; i < variants.size(); ++i) {
    std::printf("  %-24s %s\n", variants[i].label.c_str(),
                fmtPct(profiles[i].overall, 2).c_str());
  }

  bool ok = true;
  ok &= bench::check(profiles[2].overall < profiles[0].overall,
                     "h=2 reference levels reduce error vs h=0");
  ok &= bench::check(profiles[2].overall < 0.05,
                     "Long-Term-History h=2 error is small (~1% in paper)");
  ok &= bench::check(profiles[1].overall <= profiles[0].overall + 1e-9,
                     "h=1 is no worse than h=0");
  // Stability across offsets for the best variant (paper: "very stable").
  const auto& best = profiles[2].byOffset;
  double lo = 1e9, hi = 0.0;
  for (double e : best) {
    lo = std::min(lo, e);
    hi = std::max(hi, e);
  }
  ok &= bench::check(hi - lo < 0.05, "h=2 error stable across timeunits");
  return ok ? 0 : 1;
}
