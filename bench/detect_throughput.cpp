// Detect-phase micro-benchmark (BENCH_detect.json).
//
// Times the per-unit detection hot path in isolation on the CCD-network
// workload — no engine, no ingest: the record stream is materialized into
// timeunit batches up front and every measurement below is pure detection
// compute.
//
//  1. computeShhh: the dense epoch-stamped workspace kernel ("after")
//     against the retained map-based reference implementation ("before",
//     src/core/shhh_reference.h). Identical outputs are asserted
//     bit-for-bit before timing.
//
//  2. STA observe: StaDetector's incremental raw-aggregate window
//     ("after") against reference::StaReplica, the historical step that
//     copies the window and rebuilds every series from scratch per
//     instance ("before"). Per-step detection results are asserted equal.
//
//  3. ADA observe: steady-state AdaDetector step throughput plus the
//     paper's Table III stage breakdown (no "before" twin — the adaptive
//     detector was rewritten in place; its outputs are pinned by the
//     equivalence property tests instead).
//
//  4. SIMD dispatch: the same warm STA/ADA observe loops under the best
//     available instruction set vs simd::forceScalar(true). Outputs are
//     asserted identical first (bit-identity is the SIMD layer's hard
//     contract); the timing delta is reported per algorithm.
//
// Written to BENCH_detect.json (schema tiresias_bench_detect/v2) — the
// committed before/after baseline for the flat detection hot path. All
// measurements are single-threaded; no parallel-speedup claims are made,
// so nothing here needs a hardware_concurrency gate.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/simd.h"
#include "common/timer.h"
#include "core/shhh_reference.h"
#include "timeseries/ewma.h"
#include "workload/generator.h"

namespace {

using namespace tiresias;
using workload::GeneratorSource;
using workload::Scale;
using workload::WorkloadSpec;

struct Timing {
  std::size_t units = 0;
  std::size_t records = 0;
  double seconds = 0.0;
  double unitsPerSec() const { return seconds > 0 ? units / seconds : 0.0; }
  double recordsPerSec() const {
    return seconds > 0 ? records / seconds : 0.0;
  }
};

void printTiming(const char* label, const Timing& t) {
  std::printf("%-28s %9zu units %10.4fs %12.0f units/s %12.0f records/s\n",
              label, t.units, t.seconds, t.unitsPerSec(), t.recordsPerSec());
}

void jsonTiming(std::FILE* f, const char* key, const Timing& t,
                bool trailingComma) {
  std::fprintf(f,
               "    \"%s\": {\"units\": %zu, \"records\": %zu, \"seconds\": "
               "%.6f, \"units_per_sec\": %.0f, \"records_per_sec\": %.0f}%s\n",
               key, t.units, t.records, t.seconds, t.unitsPerSec(),
               t.recordsPerSec(), trailingComma ? "," : "");
}

DetectorConfig detectorConfig(std::size_t window, double theta) {
  DetectorConfig cfg;
  cfg.theta = theta;
  cfg.windowLength = window;
  cfg.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
  return cfg;
}

bool sameResult(const std::optional<InstanceResult>& a,
                const std::optional<InstanceResult>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a) return true;
  return a->unit == b->unit && a->shhh == b->shhh &&
         a->anomalies == b->anomalies;
}

}  // namespace

int main(int argc, char** argv) {
  const TimeUnit units = argc > 1 ? std::atoll(argv[1]) : 256;
  const std::string jsonPath = argc > 2 ? argv[2] : "BENCH_detect.json";
  const std::size_t window = 64;
  const double theta = 8.0;
  // Repeat passes until each measurement has at least this much signal.
  const double minSeconds = 0.3;

  bench::banner(
      "detect-phase hot path (src/core: shhh, sta, ada)",
      "dense epoch-stamped workspace kernels vs the retained map-based "
      "reference; incremental STA windows vs per-step reconstruction");
  bench::note("hardware threads: " +
              std::to_string(std::thread::hardware_concurrency()));

  const WorkloadSpec spec = workload::ccdNetworkWorkload(Scale::kMedium);
  std::vector<TimeUnitBatch> batches;
  std::size_t totalRecords = 0;
  {
    GeneratorSource src(spec, 0, units, 1);
    TimeUnitBatcher batcher(src, spec.unit, 0);
    TimeUnitBatch batch;
    while (batcher.next(batch)) {
      totalRecords += batch.records.size();
      batches.push_back(batch);
    }
  }
  bench::note("workload: ccd-net/medium, " + std::to_string(batches.size()) +
              " units, " + std::to_string(totalRecords) +
              " records, window " + std::to_string(window));
  if (batches.size() <= window) {
    std::fprintf(stderr, "need more than %zu units\n", window);
    return 1;
  }

  std::vector<CountMap> unitCounts(batches.size());
  for (std::size_t u = 0; u < batches.size(); ++u) {
    for (const auto& r : batches[u].records) {
      unitCounts[u][r.category] += 1.0;
    }
  }

  bool ok = true;

  // ---- 1. computeShhh: map-based reference vs flat workspace ----
  DetectWorkspace ws;
  ShhhResult flat;
  bool identical = true;
  for (const auto& counts : unitCounts) {
    const ShhhResult ref =
        reference::computeShhh(spec.hierarchy, counts, theta);
    computeShhh(spec.hierarchy, counts, theta, ws, flat);
    identical &= ref.shhh == flat.shhh &&
                 ref.touched.size() == flat.touched.size();
    for (std::size_t i = 0; identical && i < ref.touched.size(); ++i) {
      const auto& a = ref.touched[i];
      const auto& b = flat.touched[i];
      identical &= a.node == b.node && a.raw == b.raw &&
                   a.modified == b.modified && a.heavy == b.heavy;
    }
  }
  ok &= bench::check(identical,
                     "flat computeShhh output is bit-identical to the "
                     "map-based reference on every unit");

  Timing before, after;
  while (before.seconds < minSeconds) {
    Stopwatch watch;
    for (const auto& counts : unitCounts) {
      const auto r = reference::computeShhh(spec.hierarchy, counts, theta);
      before.units += 1;
      (void)r;
    }
    before.seconds += watch.elapsedSeconds();
    before.records += totalRecords;
  }
  while (after.seconds < minSeconds) {
    Stopwatch watch;
    for (const auto& counts : unitCounts) {
      computeShhh(spec.hierarchy, counts, theta, ws, flat);
      after.units += 1;
    }
    after.seconds += watch.elapsedSeconds();
    after.records += totalRecords;
  }
  const double speedup = after.unitsPerSec() / before.unitsPerSec();
  std::printf("\ncomputeShhh (Definition 2, one evaluation per unit):\n");
  printTiming("  map-based reference", before);
  printTiming("  flat workspace", after);
  std::printf("  speedup: %.2fx\n", speedup);
  ok &= bench::check(speedup >= 1.5,
                     "flat computeShhh >= 1.5x the map-based reference");

  // ---- 2. STA observe ----
  const std::size_t warm = window;
  bool staEqual = true;
  {
    reference::StaReplica replica(spec.hierarchy, detectorConfig(window, theta));
    StaDetector sta(spec.hierarchy, detectorConfig(window, theta));
    for (const auto& batch : batches) {
      staEqual &= sameResult(replica.step(batch), sta.step(batch));
    }
    for (NodeId n : sta.currentShhh()) {
      staEqual &= replica.seriesOf(n) == sta.seriesOf(n) &&
                  replica.forecastSeriesOf(n) == sta.forecastSeriesOf(n);
    }
  }
  ok &= bench::check(staEqual,
                     "incremental STA results match the window-copy "
                     "reference step for step (series bit-identical)");

  Timing staBefore, staAfter;
  while (staBefore.seconds < minSeconds) {
    reference::StaReplica replica(spec.hierarchy, detectorConfig(window, theta));
    for (std::size_t u = 0; u < warm; ++u) replica.step(batches[u]);
    Stopwatch watch;
    for (std::size_t u = warm; u < batches.size(); ++u) {
      replica.step(batches[u]);
      staBefore.units += 1;
      staBefore.records += batches[u].records.size();
    }
    staBefore.seconds += watch.elapsedSeconds();
  }
  while (staAfter.seconds < minSeconds) {
    StaDetector sta(spec.hierarchy, detectorConfig(window, theta));
    for (std::size_t u = 0; u < warm; ++u) sta.step(batches[u]);
    Stopwatch watch;
    for (std::size_t u = warm; u < batches.size(); ++u) {
      sta.step(batches[u]);
      staAfter.units += 1;
      staAfter.records += batches[u].records.size();
    }
    staAfter.seconds += watch.elapsedSeconds();
  }
  const double staSpeedup = staAfter.unitsPerSec() / staBefore.unitsPerSec();
  std::printf("\nSTA observe (window %zu, warm steady state):\n", window);
  printTiming("  window-copy reference", staBefore);
  printTiming("  incremental window", staAfter);
  std::printf("  speedup: %.2fx\n", staSpeedup);
  ok &= bench::check(staSpeedup >= 2.0,
                     "incremental STA >= 2x the window-copy reference");

  // ---- 3. ADA observe ----
  Timing ada;
  double stageUpdate = 0.0, stageSeries = 0.0, stageDetect = 0.0;
  while (ada.seconds < minSeconds) {
    AdaDetector det(spec.hierarchy, detectorConfig(window, theta));
    for (std::size_t u = 0; u < warm; ++u) det.step(batches[u]);
    Stopwatch watch;
    for (std::size_t u = warm; u < batches.size(); ++u) {
      det.step(batches[u]);
      ada.units += 1;
      ada.records += batches[u].records.size();
    }
    ada.seconds += watch.elapsedSeconds();
    stageUpdate = det.stages().totalSeconds(kStageUpdateHierarchies);
    stageSeries = det.stages().totalSeconds(kStageCreateSeries);
    stageDetect = det.stages().totalSeconds(kStageDetect);
  }
  std::printf("\nADA observe (window %zu, warm steady state):\n", window);
  printTiming("  adaptive detector", ada);
  std::printf("  last-pass stages: updating %.4fs, series %.4fs, "
              "detect %.4fs\n",
              stageUpdate, stageSeries, stageDetect);
  // With the incremental window, STA is no longer orders of magnitude
  // behind (that gap lives in the window-copy reference above); ADA and
  // STA now trade blows within a small factor, so this is a sanity floor
  // rather than a ranking claim.
  ok &= bench::check(ada.unitsPerSec() >= 0.5 * staAfter.unitsPerSec(),
                     "ADA observe stays within 2x of the incremental STA");

  // ---- 4. SIMD dispatch: forced-scalar vs best available ISA ----
  // Same warm observe loops as above, but toggling the simd:: dispatch
  // table. Equivalence first: the SIMD layer's contract is bit-identical
  // output, so the scalar run must reproduce the SIMD run exactly.
  const std::string isa = simd::activeIsa();
  bool simdEqual = true;
  for (const bool useAda : {false, true}) {
    std::vector<std::optional<InstanceResult>> simdSteps, scalarSteps;
    for (const bool scalar : {false, true}) {
      const bool prev = simd::forceScalar(scalar);
      auto& steps = scalar ? scalarSteps : simdSteps;
      if (useAda) {
        AdaDetector det(spec.hierarchy, detectorConfig(window, theta));
        for (const auto& batch : batches) steps.push_back(det.step(batch));
      } else {
        StaDetector det(spec.hierarchy, detectorConfig(window, theta));
        for (const auto& batch : batches) steps.push_back(det.step(batch));
      }
      simd::forceScalar(prev);
    }
    for (std::size_t u = 0; u < simdSteps.size(); ++u) {
      simdEqual &= sameResult(simdSteps[u], scalarSteps[u]);
    }
  }
  ok &= bench::check(simdEqual,
                     "STA and ADA step results are identical under " + isa +
                         " and forced-scalar dispatch");

  auto timeObserve = [&](bool useAda, bool scalar) {
    const bool prev = simd::forceScalar(scalar);
    Timing t;
    while (t.seconds < minSeconds) {
      std::unique_ptr<Detector> det;
      if (useAda) {
        det = std::make_unique<AdaDetector>(spec.hierarchy,
                                            detectorConfig(window, theta));
      } else {
        det = std::make_unique<StaDetector>(spec.hierarchy,
                                            detectorConfig(window, theta));
      }
      for (std::size_t u = 0; u < warm; ++u) det->step(batches[u]);
      Stopwatch watch;
      for (std::size_t u = warm; u < batches.size(); ++u) {
        det->step(batches[u]);
        t.units += 1;
        t.records += batches[u].records.size();
      }
      t.seconds += watch.elapsedSeconds();
    }
    simd::forceScalar(prev);
    return t;
  };
  const Timing staScalar = timeObserve(false, true);
  const Timing staSimd = timeObserve(false, false);
  const Timing adaScalar = timeObserve(true, true);
  const Timing adaSimd = timeObserve(true, false);
  const double staSimdSpeedup = staSimd.unitsPerSec() / staScalar.unitsPerSec();
  const double adaSimdSpeedup = adaSimd.unitsPerSec() / adaScalar.unitsPerSec();
  std::printf("\nSIMD dispatch (active ISA: %s):\n", isa.c_str());
  printTiming("  STA forced scalar", staScalar);
  printTiming(("  STA " + isa).c_str(), staSimd);
  std::printf("  STA simd-vs-scalar: %.2fx\n", staSimdSpeedup);
  printTiming("  ADA forced scalar", adaScalar);
  printTiming(("  ADA " + isa).c_str(), adaSimd);
  std::printf("  ADA simd-vs-scalar: %.2fx\n", adaSimdSpeedup);
  // No speedup CHECK here: the observe path is dominated by hierarchy
  // bookkeeping and the vector kernels are element-wise by contract
  // (bit-identity forbids FMA/reassociation), so the delta is modest and
  // noisy on small machines. The committed >=2x delta for this PR is the
  // binary-vs-csv ingest check in bench/engine_throughput.cpp.

  // ---- Machine-readable baseline ----
  std::FILE* f = std::fopen(jsonPath.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"tiresias_bench_detect/v2\",\n");
  std::fprintf(f, "  \"workload\": \"ccd-net/medium\",\n");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"units\": %zu,\n", batches.size());
  std::fprintf(f, "  \"trace_records\": %zu,\n", totalRecords);
  std::fprintf(f, "  \"window\": %zu,\n", window);
  std::fprintf(f, "  \"theta\": %.1f,\n", theta);
  std::fprintf(f, "  \"compute_shhh\": {\n");
  jsonTiming(f, "before", before, true);
  jsonTiming(f, "after", after, true);
  std::fprintf(f, "    \"speedup\": %.2f\n  },\n", speedup);
  std::fprintf(f, "  \"sta_observe\": {\n");
  jsonTiming(f, "before", staBefore, true);
  jsonTiming(f, "after", staAfter, true);
  std::fprintf(f, "    \"speedup\": %.2f\n  },\n", staSpeedup);
  std::fprintf(f, "  \"ada_observe\": {\n");
  jsonTiming(f, "after", ada, true);
  std::fprintf(f,
               "    \"stage_seconds\": {\"updating_hierarchies\": %.6f, "
               "\"creating_time_series\": %.6f, \"detecting_anomalies\": "
               "%.6f}\n  },\n",
               stageUpdate, stageSeries, stageDetect);
  std::fprintf(f, "  \"simd\": {\n");
  std::fprintf(f, "    \"active_isa\": \"%s\",\n", isa.c_str());
  jsonTiming(f, "sta_scalar", staScalar, true);
  jsonTiming(f, "sta_simd", staSimd, true);
  std::fprintf(f, "    \"sta_simd_vs_scalar\": %.2f,\n", staSimdSpeedup);
  jsonTiming(f, "ada_scalar", adaScalar, true);
  jsonTiming(f, "ada_simd", adaSimd, true);
  std::fprintf(f, "    \"ada_simd_vs_scalar\": %.2f\n  }\n", adaSimdSpeedup);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", jsonPath.c_str());

  return ok ? 0 : 1;
}
