// Table VI — comparison of ADA against the ISP's current practice
// (control charts on VHO-level aggregates), plus the level distribution of
// the new anomalies (NAs) Tiresias finds below the VHO level.
//
// Setup mirrors §VII-B: the reference method only sees the first network
// level, so its anomaly set is incomplete by construction. We inject
// ground-truth spikes at several depths; the control chart's alarms are
// screened against the injection ledger — the synthetic equivalent of the
// paper's "reference set verified by the ISP's operational group" — and
// ADA's detections are scored with the TA/MA/NA/TN semantics and
// Type 1/2/3 metrics.
#include "bench/bench_util.h"

#include <set>

#include "eval/comparison.h"
#include "eval/reference_method.h"

int main() {
  using namespace tiresias;
  using namespace tiresias::workload;
  bench::banner("Table VI", "ADA vs the VHO-level control-chart practice");

  const auto spec = ccdNetworkWorkload(Scale::kMedium);
  const auto& h = spec.hierarchy;
  bench::note("CCD network (medium preset), 25 simulated days, spikes "
              "injected at VHO/IO/CO/DSLAM levels; chart alarms verified "
              "against the injection ledger as the ISP ops group did");

  // Ground truth: a few large VHO-level events (visible to the reference
  // method) plus many deeper events (structurally invisible to it).
  GroundTruthLedger ledger;
  Rng rng(2026);
  const std::size_t window = 14 * 96;  // two weeks: day+week seasons fit
  const TimeUnit firstSpike = static_cast<TimeUnit>(window) + 12;
  int spikeIdx = 0;
  auto addSpikes = [&](int depth, int count, double magnitude) {
    for (int i = 0; i < count; ++i) {
      std::vector<NodeId> level;
      for (NodeId n : h.nodesAtDepth(depth)) level.push_back(n);
      const NodeId node = level[rng.below(level.size())];
      ledger.add({node, firstSpike + spikeIdx * 9, 3, magnitude});
      ++spikeIdx;
    }
  };
  addSpikes(2, 3, 260.0);   // VHO-level, big enough for the chart
  addSpikes(3, 8, 60.0);    // IO
  addSpikes(4, 5, 35.0);    // CO
  addSpikes(5, 2, 25.0);    // DSLAM

  auto injector = std::make_shared<AnomalyInjector>(h, ledger);
  GeneratorSource src(spec, 0, 25 * 96, 606, injector);

  // Dual seasonality as the paper uses for CCD (xi = 0.76).
  DetectorConfig cfg = bench::paperConfig(
      window, 10.0,
      bench::hwFactory({{96, 0.76}, {672, 0.24}}, {0.1, 0.01, 0.15}));
  // Sensitivity thresholds re-tuned for this workload's scale, as the
  // paper's sensitivity test did for its own traffic volumes.
  cfg.ratioThreshold = 3.0;
  cfg.diffThreshold = 15.0;
  AdaDetector ada(h, cfg);
  eval::ControlChartConfig chartCfg;
  chartCfg.depth = 2;
  chartCfg.sigmas = 3.0;
  chartCfg.history = 672;
  chartCfg.minHistory = 672;
  eval::ControlChartReference chart(h, chartCfg);

  TimeUnitBatcher batcher(src, spec.unit, 0);
  std::vector<eval::LocatedEvent> tiresias, rawChart, negatives;
  while (auto b = batcher.next()) {
    const auto alarms = chart.step(*b);
    rawChart.insert(rawChart.end(), alarms.begin(), alarms.end());
    if (auto r = ada.step(*b)) {
      std::set<NodeId> reported;
      for (const auto& a : r->anomalies) {
        tiresias.push_back({a.node, a.unit});
        reported.insert(a.node);
      }
      for (NodeId n : r->shhh) {
        if (!reported.count(n)) negatives.push_back({n, r->unit});
      }
    }
  }

  // Operational verification: keep only chart alarms that correspond to a
  // real (injected) event.
  std::vector<eval::LocatedEvent> reference;
  for (const auto& alarm : rawChart) {
    if (ledger.matches(h, alarm.node, alarm.unit)) reference.push_back(alarm);
  }
  std::printf("chart alarms: %zu raw, %zu verified by the ledger\n",
              rawChart.size(), reference.size());

  const auto counts =
      eval::compareToReference(h, tiresias, reference, negatives);
  AsciiTable table({"Performance metric", "Formula", "Value", "Paper"});
  table.addRow({"Type 1 (Accuracy)", "(TA+TN)/cases", fmtPct(counts.type1(), 1),
                "94.1%"});
  table.addRow({"Type 2", "TA/(TA+MA)", fmtPct(counts.type2(), 1), "90.9%"});
  table.addRow({"Type 3", "TN/(TN+NA)", fmtPct(counts.type3(), 1), "94.1%"});
  table.print(std::cout);
  std::printf("raw counts: TA=%zu MA=%zu NA=%zu TN=%zu, Tiresias "
              "detections=%zu\n",
              counts.trueAlarms, counts.missedAnomalies, counts.newAnomalies,
              counts.trueNegatives, tiresias.size());

  // NA level distribution (paper: 5% / 56.3% / 29.3% / 9.4% at
  // VHO/IO/CO/DSLAM — 95% of new anomalies live below the VHO level).
  // Following the paper, NAs that are real events (they match the ledger
  // even though the VHO-level reference missed them) are what Tiresias
  // contributes; we report all NAs after ancestor dedup.
  const auto naSet = eval::dropAncestorDuplicates(
      h, eval::newAnomalySet(h, tiresias, reference));
  const auto byDepth = eval::countByDepth(h, naSet);
  double naTotal = 0.0;
  for (int d = 2; d <= 5; ++d) naTotal += static_cast<double>(byDepth[d]);
  AsciiTable na({"Level", "VHO", "IO", "CO", "DSLAM"});
  na.addRow({"NA share",
             fmtPct(naTotal ? byDepth[2] / naTotal : 0.0, 1),
             fmtPct(naTotal ? byDepth[3] / naTotal : 0.0, 1),
             fmtPct(naTotal ? byDepth[4] / naTotal : 0.0, 1),
             fmtPct(naTotal ? byDepth[5] / naTotal : 0.0, 1)});
  std::printf("\nnew-anomaly (NA) level distribution after ancestor dedup:\n");
  na.print(std::cout);

  bool ok = true;
  ok &= bench::check(counts.type1() > 0.85,
                     "Type 1 accuracy high (paper: 94.1%)");
  ok &= bench::check(counts.type2() > 0.7,
                     "most reference anomalies are re-found (paper: 90.9%)");
  ok &= bench::check(counts.type3() > 0.85,
                     "few spurious new anomalies (paper Type 3: 94.1%)");
  const double belowVho = naTotal ? (naTotal - byDepth[2]) / naTotal : 0.0;
  ok &= bench::check(belowVho > 0.6,
                     "most NAs are below the VHO level (paper: 95%)");
  // Ground-truth sanity: how many injected spikes did each method see?
  std::size_t adaHits = 0, chartHits = 0;
  for (const auto& s : ledger.specs()) {
    auto sees = [&](const std::vector<eval::LocatedEvent>& events) {
      for (const auto& e : events) {
        if (s.activeAt(e.unit) && (h.isAncestorOrEqual(e.node, s.node) ||
                                   h.isAncestorOrEqual(s.node, e.node))) {
          return true;
        }
      }
      return false;
    };
    adaHits += sees(tiresias);
    chartHits += sees(rawChart);
  }
  std::printf("injected spikes found: Tiresias %zu/%zu, reference %zu/%zu\n",
              adaHits, ledger.specs().size(), chartHits,
              ledger.specs().size());
  ok &= bench::check(adaHits > chartHits,
                     "Tiresias finds more injected events than the "
                     "VHO-only practice");
  return ok ? 0 : 1;
}
