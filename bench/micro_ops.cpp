// Micro-benchmarks (google-benchmark) for the hot operations behind
// Tables III/IV: the bottom-up SHHH pass, one ADA step, one STA step,
// split/merge-heavy steps, Holt-Winters updates, ring pushes, the FFT,
// and the simd:: primitive kernels (masked accumulate, SoA slot sweep)
// under both the best dispatch table and the forced-scalar fallback.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "core/ada.h"
#include "core/shhh.h"
#include "core/sta.h"
#include "analysis/fft.h"
#include "timeseries/holt_winters.h"
#include "workload/ccd.h"

namespace {

using namespace tiresias;
using namespace tiresias::workload;

const WorkloadSpec& spec() {
  static const WorkloadSpec s = ccdNetworkWorkload(Scale::kMedium);
  return s;
}

std::vector<TimeUnitBatch> makeBatches(TimeUnit units, std::uint64_t seed) {
  GeneratorSource src(spec(), 0, units, seed);
  TimeUnitBatcher batcher(src, spec().unit, 0);
  std::vector<TimeUnitBatch> batches;
  while (auto b = batcher.next()) batches.push_back(std::move(*b));
  return batches;
}

DetectorConfig config(std::size_t window) {
  DetectorConfig cfg;
  cfg.theta = 8.0;
  cfg.windowLength = window;
  cfg.forecasterFactory = std::make_shared<HoltWintersFactory>(
      HoltWintersParams{}, std::vector<SeasonSpec>{{96, 1.0}});
  return cfg;
}

void BM_ComputeShhh(benchmark::State& state) {
  const auto batches = makeBatches(4, 1);
  CountMap counts;
  for (const auto& r : batches.back().records) counts[r.category] += 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(computeShhh(spec().hierarchy, counts, 8.0));
  }
}
BENCHMARK(BM_ComputeShhh);

void BM_AdaStep(benchmark::State& state) {
  const auto window = static_cast<std::size_t>(state.range(0));
  auto batches = makeBatches(static_cast<TimeUnit>(window + 64), 2);
  AdaDetector ada(spec().hierarchy, config(window));
  std::size_t i = 0;
  for (; i < window; ++i) ada.step(batches[i]);
  std::size_t cursor = window;
  for (auto _ : state) {
    auto batch = batches[window + (cursor++ % 64)];
    benchmark::DoNotOptimize(ada.step(batch));
  }
}
BENCHMARK(BM_AdaStep)->Arg(96)->Arg(192);

void BM_StaStep(benchmark::State& state) {
  const auto window = static_cast<std::size_t>(state.range(0));
  auto batches = makeBatches(static_cast<TimeUnit>(window + 64), 2);
  StaDetector sta(spec().hierarchy, config(window));
  std::size_t i = 0;
  for (; i < window; ++i) sta.step(batches[i]);
  std::size_t cursor = window;
  for (auto _ : state) {
    auto batch = batches[window + (cursor++ % 64)];
    benchmark::DoNotOptimize(sta.step(batch));
  }
}
BENCHMARK(BM_StaStep)->Arg(96)->Arg(192);

void BM_HoltWintersUpdate(benchmark::State& state) {
  HoltWintersForecaster hw({0.5, 0.05, 0.3}, {{96, 0.76}, {672, 0.24}});
  std::vector<double> warm(2 * 672, 10.0);
  hw.initFromHistory(warm);
  double v = 9.0;
  for (auto _ : state) {
    hw.update(v);
    v = v < 20.0 ? v + 0.1 : 9.0;
    benchmark::DoNotOptimize(hw.forecast());
  }
}
BENCHMARK(BM_HoltWintersUpdate);

void BM_RingPush(benchmark::State& state) {
  RingSeries ring(8064);
  double v = 0.0;
  for (auto _ : state) {
    ring.push(v);
    v += 1.0;
    benchmark::DoNotOptimize(ring.latest());
  }
}
BENCHMARK(BM_RingPush);

// ---- simd:: primitive kernels ------------------------------------------
// Range 0 is the element count, range 1 selects the dispatch table
// (0 = best available ISA, 1 = forced scalar); the label records which
// table actually ran so A/B pairs read off the same report.

/// The epoch-masked accumulate primitive over a stamped workspace plane:
/// dst[i] += src[i] on lanes whose stamp matches the current generation,
/// old bits kept on the rest.
void BM_SimdAccumulateStamped(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool scalar = state.range(1) != 0;
  const std::uint32_t gen = 7;
  Rng rng(17);
  std::vector<double> dst(n), src(n);
  std::vector<std::uint32_t> stamp(n);
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<double>(rng.below(1000));
    src[i] = static_cast<double>(rng.below(1000)) * 0.25;
    stamp[i] = rng.below(2) ? gen : 0;  // ~half the lanes live
  }
  const bool prev = simd::forceScalar(scalar);
  for (auto _ : state) {
    simd::accumulateStamped(dst.data(), src.data(), stamp.data(), gen, n);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  simd::forceScalar(prev);
  state.SetLabel(scalar ? "scalar" : simd::activeIsa());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_SimdAccumulateStamped)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({4096, 0})
    ->Args({4096, 1});

/// The holder-table slot sweep shape: the STA/ADA SoA layouts walk
/// contiguous per-slot lanes and retire a departing unit from each
/// (dst[i] -= src[i], one short run per slot).
void BM_SimdSlotSweep(benchmark::State& state) {
  const auto slots = static_cast<std::size_t>(state.range(0));
  const bool scalar = state.range(1) != 0;
  const std::size_t width = 64;  // one detection window per slot
  Rng rng(29);
  std::vector<double> plane(slots * width);
  std::vector<double> departing(width);
  for (auto& v : plane) v = static_cast<double>(rng.below(1000));
  for (auto& v : departing) v = static_cast<double>(rng.below(4)) * 0.5;
  const bool prev = simd::forceScalar(scalar);
  for (auto _ : state) {
    for (std::size_t s = 0; s < slots; ++s) {
      simd::sub(plane.data() + s * width, departing.data(), width);
    }
    benchmark::DoNotOptimize(plane.data());
    benchmark::ClobberMemory();
  }
  simd::forceScalar(prev);
  state.SetLabel(scalar ? "scalar" : simd::activeIsa());
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * slots * width));
}
BENCHMARK(BM_SimdSlotSweep)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({1024, 0})
    ->Args({1024, 1});

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> series(n);
  for (std::size_t i = 0; i < n; ++i) {
    series[i] = std::sin(static_cast<double>(i) * 0.1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(periodogram(series));
  }
}
BENCHMARK(BM_Fft)->Arg(1024)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
