// §VII-A "Results for SCD" — the paper's SCD paragraph as a bench:
//   - STA's runtime blows up more on SCD than CCD (bigger hierarchy),
//   - ADA's memory stays a fraction of STA's,
//   - ADA's time-series error is tiny (0.8% at h=1 in the paper) because
//     SCD's low variance triggers fewer splits,
//   - anomaly agreement with STA is near-perfect (no FPs, ~0.13% FNs).
#include "bench/bench_util.h"

#include <set>

#include "eval/memory_model.h"
#include "eval/metrics.h"

namespace {

using namespace tiresias;
using namespace tiresias::workload;

struct Outcome {
  double adaSec = 0.0;
  double staSec = 0.0;
  MemoryStats adaMem, staMem;
  double seriesError = 0.0;
  eval::ConfusionCounts anomalyAgreement;
  std::size_t splits = 0;
};

Outcome run(const WorkloadSpec& spec, std::size_t window,
            TimeUnit totalUnits, std::uint64_t seed) {
  DetectorConfig cfg = bench::paperConfig(window, 6.0, bench::hwFactory());
  cfg.referenceLevels = 1;
  AdaDetector ada(spec.hierarchy, cfg);
  StaDetector sta(spec.hierarchy, cfg);

  GeneratorSource src(spec, 0, totalUnits, seed);
  TimeUnitBatcher batcher(src, spec.unit, 0);
  Outcome out;
  double errSum = 0.0, refSum = 0.0;
  while (auto b = batcher.next()) {
    Stopwatch wa;
    auto ra = ada.step(*b);
    out.adaSec += wa.elapsedSeconds();
    Stopwatch ws;
    auto rs = sta.step(*b);
    out.staSec += ws.elapsedSeconds();
    if (!ra || !rs) continue;
    std::set<NodeId> adaPos, staPos;
    for (const auto& a : ra->anomalies) adaPos.insert(a.node);
    for (const auto& a : rs->anomalies) staPos.insert(a.node);
    for (NodeId n : rs->shhh) {
      const bool p = adaPos.count(n), t = staPos.count(n);
      if (p && t) {
        ++out.anomalyAgreement.tp;
      } else if (p) {
        ++out.anomalyAgreement.fp;
      } else if (t) {
        ++out.anomalyAgreement.fn;
      } else {
        ++out.anomalyAgreement.tn;
      }
      const auto sa = ada.seriesOf(n);
      const auto ss = sta.seriesOf(n);
      for (std::size_t i = 0; i < std::min(sa.size(), ss.size()); ++i) {
        errSum += std::abs(sa[i] - ss[i]);
        refSum += std::abs(ss[i]);
      }
    }
  }
  out.seriesError = refSum > 0 ? errSum / refSum : 0.0;
  out.adaMem = ada.memoryStats();
  out.staMem = sta.memoryStats();
  out.splits = ada.splitCount();
  return out;
}

}  // namespace

int main() {
  bench::banner("SCD results (SVII-A)", "ADA vs STA on the STB crash data");
  const std::size_t window = 192;
  const TimeUnit totalUnits = 292;

  const auto scd = run(scdNetworkWorkload(Scale::kTest), window, totalUnits,
                       11);
  const auto ccd = run(ccdNetworkWorkload(Scale::kTest), window, totalUnits,
                       12);

  AsciiTable table({"Metric", "SCD", "CCD", "Paper note"});
  table.addRow({"STA/ADA runtime factor",
                fmtF(scd.staSec / std::max(scd.adaSec, 1e-9), 1),
                fmtF(ccd.staSec / std::max(ccd.adaSec, 1e-9), 1),
                "gap larger for SCD (bigger hierarchy)"});
  table.addRow({"ADA/STA memory",
                fmtPct(static_cast<double>(scd.adaMem.bytesEstimate) /
                           std::max<std::size_t>(scd.staMem.bytesEstimate, 1),
                       0),
                fmtPct(static_cast<double>(ccd.adaMem.bytesEstimate) /
                           std::max<std::size_t>(ccd.staMem.bytesEstimate, 1),
                       0),
                "43-46% at h<=1 in the paper"});
  table.addRow({"ADA series error", fmtPct(scd.seriesError, 2),
                fmtPct(ccd.seriesError, 2), "0.8% for SCD at h=1"});
  table.addRow({"splits performed", std::to_string(scd.splits),
                std::to_string(ccd.splits),
                "fewer splits on SCD (low variance)"});
  table.addRow({"false positives vs STA",
                std::to_string(scd.anomalyAgreement.fp),
                std::to_string(ccd.anomalyAgreement.fp),
                "none for SCD in the paper"});
  table.addRow({"false-negative rate",
                fmtPct(scd.anomalyAgreement.fn == 0
                           ? 0.0
                           : static_cast<double>(scd.anomalyAgreement.fn) /
                                 static_cast<double>(
                                     scd.anomalyAgreement.fn +
                                     scd.anomalyAgreement.tn),
                       2),
                "-", "~0.13% of negatives in the paper"});
  table.print(std::cout);

  bool ok = true;
  ok &= bench::check(scd.seriesError < 0.05,
                     "SCD series error is small (paper: 0.8%)");
  ok &= bench::check(scd.seriesError <= ccd.seriesError + 1e-9,
                     "SCD error <= CCD error (fewer splits)");
  ok &= bench::check(scd.splits < ccd.splits,
                     "fewer split operations on SCD");
  const double fpRate =
      static_cast<double>(scd.anomalyAgreement.fp) /
      static_cast<double>(std::max<std::size_t>(scd.anomalyAgreement.total(),
                                                1));
  ok &= bench::check(fpRate < 0.01,
                     "false positives vs STA on SCD are negligible "
                     "(paper: none at full scale)");
  ok &= bench::check(scd.adaMem.bytesEstimate < scd.staMem.bytesEstimate,
                     "ADA memory below STA on SCD");
  return ok ? 0 : 1;
}
