// Table III — running time of Tiresias by stage, ADA vs STA, for timeunit
// sizes of 15 and 60 minutes.
//
// Shape to reproduce: STA's total is dominated by "Creating Time Series"
// (83-94% in the paper); ADA removes that stage's per-instance window
// traversal, giving a large total-time factor that *grows as the timeunit
// shrinks* (more instances, longer window in units). Absolute times differ
// from the paper's 2010 Solaris box; the factors are the claim.
//
// The STA side runs reference::StaReplica — the paper's algorithm with the
// per-instance window copy and full reconstruction. The production
// StaDetector keeps incremental sliding-window aggregates (see DESIGN.md
// "Detection hot path") and no longer has the cost shape Table III
// describes; bench/detect_throughput.cpp measures that rewrite.
#include "bench/bench_util.h"

#include "core/shhh_reference.h"

namespace {

using namespace tiresias;
using namespace tiresias::workload;

struct RunResult {
  double readSec = 0.0;  // trace generation + batching ("Reading Traces")
  StageTimer stages;
  double totalSec = 0.0;
  std::size_t instances = 0;
};

RunResult run(const WorkloadSpec& spec, bool useAda, Duration delta,
              std::size_t window, TimeUnit totalUnits) {
  // Rescale the workload to the requested timeunit size.
  WorkloadSpec scaled = spec;
  scaled.unit = delta;
  scaled.baseRatePerUnit =
      spec.baseRatePerUnit * static_cast<double>(delta) /
      static_cast<double>(spec.unit);

  DetectorConfig cfg = bench::paperConfig(
      window, 8.0, bench::hwFactory({{static_cast<std::size_t>(kDay / delta),
                                      1.0}}));
  // The STA side runs the paper-faithful cost model (per-instance window
  // copy + full reconstruction), not the incremental production
  // StaDetector. Only the selected detector is constructed — the other
  // would hold dense hierarchy-sized state for the whole measured run.
  std::unique_ptr<AdaDetector> ada;
  std::unique_ptr<reference::StaReplica> sta;
  if (useAda) {
    ada = std::make_unique<AdaDetector>(scaled.hierarchy, cfg);
  } else {
    sta = std::make_unique<reference::StaReplica>(scaled.hierarchy, cfg);
  }

  GeneratorSource src(scaled, 0, totalUnits, 31337);
  TimeUnitBatcher batcher(src, scaled.unit, 0);
  RunResult result;
  Stopwatch total;
  while (true) {
    Stopwatch read;
    auto batch = batcher.next();
    result.readSec += read.elapsedSeconds();
    if (!batch) break;
    const bool instance = useAda ? ada->step(*batch).has_value()
                                 : sta->step(*batch).has_value();
    if (instance) ++result.instances;
  }
  result.totalSec = total.elapsedSeconds();
  result.stages = useAda ? ada->stages() : sta->stages();
  return result;
}

void printRun(AsciiTable& table, const char* algo, const RunResult& r) {
  const double stagesTotal = r.stages.totalSeconds() + r.readSec;
  auto row = [&](const std::string& stage, double total, double meanMs,
                 double varMs) {
    table.addRow({algo, stage, fmtF(total * 1000.0, 1),
                  fmtPct(total / stagesTotal, 1), fmtF(meanMs, 3),
                  fmtF(varMs, 4)});
  };
  row("Reading Traces", r.readSec, 0.0, 0.0);
  for (const auto& stage :
       {kStageUpdateHierarchies, kStageCreateSeries, kStageDetect}) {
    row(stage, r.stages.totalSeconds(stage),
        r.stages.meanSeconds(stage) * 1000.0,
        r.stages.varianceSeconds(stage) * 1e6);
  }
  table.addRow({algo, "Sum", fmtF(stagesTotal * 1000.0, 1), "100.0%", "", ""});
  table.addRule();
}

}  // namespace

int main() {
  bench::banner("Table III", "running time by stage, ADA vs STA");
  const auto spec = ccdNetworkWorkload(Scale::kMedium);
  bench::note("CCD network (medium preset), 1 simulated week; window = 3 "
              "days of history (the paper used 12 weeks at full scale)");

  bool ok = true;
  double factor15 = 0.0, factor60 = 0.0;
  for (const Duration delta : {15 * kMinute, 60 * kMinute}) {
    const auto unitsPerDay = static_cast<std::size_t>(kDay / delta);
    const std::size_t window = 3 * unitsPerDay;
    const auto totalUnits = static_cast<TimeUnit>(7 * unitsPerDay);

    const auto ada = run(spec, true, delta, window, totalUnits);
    const auto sta = run(spec, false, delta, window, totalUnits);

    std::printf("\n--- timeunit size = %lld minutes ---\n",
                static_cast<long long>(delta / kMinute));
    AsciiTable table({"Algorithm", "Stage", "Total (ms)", "Share",
                      "Mean/inst (ms)", "Var (ms^2)"});
    printRun(table, "ADA", ada);
    printRun(table, "STA", sta);
    table.print(std::cout);

    const double adaTotal = ada.stages.totalSeconds() + ada.readSec;
    const double staTotal = sta.stages.totalSeconds() + sta.readSec;
    const double factor = staTotal / adaTotal;
    const double factorNoRead =
        sta.stages.totalSeconds() / std::max(ada.stages.totalSeconds(), 1e-9);
    std::printf("total factor STA/ADA: %.1fx (excluding Reading Traces: "
                "%.1fx); instances: %zu\n", factor, factorNoRead,
                ada.instances);
    (delta == 15 * kMinute ? factor15 : factor60) = factorNoRead;

    const double staCreateShare =
        sta.stages.totalSeconds(kStageCreateSeries) /
        (sta.stages.totalSeconds() + sta.readSec);
    ok &= bench::check(staCreateShare > 0.5,
                       "STA dominated by Creating Time Series (paper: "
                       "83-94%)");
    ok &= bench::check(factorNoRead > 2.0,
                       "ADA is several times faster than STA");
  }
  ok &= bench::check(factor15 > factor60,
                     "STA/ADA gap grows as the timeunit shrinks (paper: "
                     "14.2x at 15 min vs 5.4x at 60 min)");
  return ok ? 0 : 1;
}
