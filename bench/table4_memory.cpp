// Table IV — normalized memory cost of Tiresias with STA vs ADA at
// reference depths h = 0, 1, 2.
//
// Normalization follows the paper: total memory / average tree size /
// per-node cost. Shape to reproduce: ADA needs a small fraction of STA's
// space (~36% at h=0 in the paper), and each added reference level costs a
// little more but stays far below STA.
#include "bench/bench_util.h"

#include "eval/memory_model.h"

namespace {

using namespace tiresias;
using namespace tiresias::workload;

struct Run {
  MemoryStats stats;
  double avgTreeNodes = 0.0;
};

Run run(const WorkloadSpec& spec, bool useAda, std::size_t refLevels,
        std::size_t window, TimeUnit totalUnits) {
  DetectorConfig cfg = bench::paperConfig(window, 8.0, bench::hwFactory());
  cfg.referenceLevels = refLevels;
  std::unique_ptr<Detector> detector;
  if (useAda) {
    detector = std::make_unique<AdaDetector>(spec.hierarchy, cfg);
  } else {
    detector = std::make_unique<StaDetector>(spec.hierarchy, cfg);
  }
  GeneratorSource src(spec, 0, totalUnits, 4242);
  TimeUnitBatcher batcher(src, spec.unit, 0);
  Run result;
  std::size_t units = 0;
  std::size_t touchedTotal = 0;
  while (auto batch = batcher.next()) {
    detector->step(*batch);
    ++units;
    // Average sparse-tree size: counted nodes plus ancestors.
    CountMap counts;
    for (const auto& r : batch->records) counts[r.category] += 1.0;
    std::unordered_map<NodeId, bool> seen;
    for (const auto& [n, c] : counts) {
      (void)c;
      for (NodeId cur = n; cur != kInvalidNode;
           cur = spec.hierarchy.parent(cur)) {
        if (!seen.emplace(cur, true).second) break;
      }
    }
    touchedTotal += seen.size();
  }
  result.stats = detector->memoryStats();
  result.avgTreeNodes =
      static_cast<double>(touchedTotal) / static_cast<double>(units);
  return result;
}

}  // namespace

int main() {
  bench::banner("Table IV", "normalized memory cost, STA vs ADA(h=0,1,2)");
  const auto spec = ccdNetworkWorkload(Scale::kMedium);
  const std::size_t window = 2 * 96;  // 2 days of 15-min units
  const TimeUnit totalUnits = 4 * 96;
  bench::note("CCD network (medium preset), measured after a long run as "
              "in the paper (window full, adaptation active)");

  const auto sta = run(spec, false, 0, window, totalUnits);
  std::vector<Run> ada;
  for (std::size_t h : {0u, 1u, 2u}) {
    ada.push_back(run(spec, true, h, window, totalUnits));
  }

  AsciiTable table({"Algorithm", "# ref levels (h)", "Normalized space",
                    "Bytes", "Ref series"});
  const auto staReport =
      eval::normalizeMemory(sta.stats, sta.avgTreeNodes);
  table.addRow({"STA", "N/A", fmtF(staReport.normalized, 1),
                fmtI(static_cast<long long>(staReport.bytes)), "0"});
  std::vector<double> adaNorm;
  for (std::size_t h = 0; h < ada.size(); ++h) {
    const auto report =
        eval::normalizeMemory(ada[h].stats, ada[h].avgTreeNodes);
    adaNorm.push_back(report.normalized);
    table.addRow({"ADA", std::to_string(h), fmtF(report.normalized, 1),
                  fmtI(static_cast<long long>(report.bytes)),
                  std::to_string(ada[h].stats.refSeriesCount / 2)});
  }
  table.print(std::cout);

  std::printf("ADA/STA space ratio: h=0 %.0f%%, h=1 %.0f%%, h=2 %.0f%% "
              "(paper: 36%%, 38%%, 43%%)\n",
              100.0 * adaNorm[0] / staReport.normalized,
              100.0 * adaNorm[1] / staReport.normalized,
              100.0 * adaNorm[2] / staReport.normalized);

  bool ok = true;
  ok &= bench::check(adaNorm[0] < staReport.normalized,
                     "ADA uses less memory than STA");
  ok &= bench::check(adaNorm[0] <= adaNorm[1] && adaNorm[1] <= adaNorm[2],
                     "memory grows with reference levels");
  ok &= bench::check(adaNorm[2] < 0.8 * staReport.normalized,
                     "even h=2 stays well below STA (paper: 43%)");
  return ok ? 0 : 1;
}
