// Ablation — the heavy-hitter threshold θ (§VII "System parameters").
//
// The paper chooses "a small heavy hitter threshold θ, which gives us
// around 125 (5) heavy hitters in the busy (quiet) period in CCD, and 500
// heavy hitters in SCD". This bench sweeps θ and reports the busy/quiet
// heavy-hitter counts plus ADA's split/merge activity, reproducing the
// qualitative trade-off: smaller θ tracks more aggregates (more memory,
// more adaptation work) but reaches deeper into the hierarchy.
#include "bench/bench_util.h"

#include <algorithm>
#include <tuple>

namespace {

using namespace tiresias;
using namespace tiresias::workload;

struct SweepPoint {
  double theta;
  double busyHh = 0.0;   // mean |SHHH| over the busiest quartile of units
  double quietHh = 0.0;  // mean |SHHH| over the quietest quartile
  double meanDepth = 0.0;
  std::size_t splits = 0;
};

SweepPoint runTheta(const WorkloadSpec& spec, double theta) {
  DetectorConfig cfg = bench::paperConfig(96, theta, bench::hwFactory());
  AdaDetector ada(spec.hierarchy, cfg);
  GeneratorSource src(spec, 0, 96 * 3, 515);
  TimeUnitBatcher batcher(src, spec.unit, 0);

  struct Sample {
    std::size_t records;
    std::size_t hh;
    double depthSum;
  };
  std::vector<Sample> samples;
  while (auto b = batcher.next()) {
    const std::size_t records = b->records.size();
    if (auto r = ada.step(*b)) {
      double depthSum = 0.0;
      for (NodeId n : r->shhh) {
        depthSum += spec.hierarchy.depth(n);
      }
      samples.push_back({records, r->shhh.size(), depthSum});
    }
  }
  SweepPoint point;
  point.theta = theta;
  std::vector<std::pair<double, double>> hhByLoad;
  hhByLoad.reserve(samples.size());
  double hhTotal = 0.0, depthTotal = 0.0;
  for (const auto& s : samples) {
    hhByLoad.emplace_back(static_cast<double>(s.records),
                          static_cast<double>(s.hh));
    hhTotal += static_cast<double>(s.hh);
    depthTotal += s.depthSum;
  }
  std::tie(point.quietHh, point.busyHh) =
      bench::quartileMeansBy(std::move(hhByLoad));
  point.meanDepth = hhTotal > 0 ? depthTotal / hhTotal : 0.0;
  point.splits = ada.splitCount();
  return point;
}

}  // namespace

int main() {
  bench::banner("Ablation: theta",
                "heavy-hitter count vs threshold, busy vs quiet periods");
  bench::note("CCD network (medium preset), 3 days; the paper's chosen "
              "theta yields ~125 busy / ~5 quiet HHs at full scale");

  const auto spec = ccdNetworkWorkload(Scale::kMedium);
  const std::vector<double> thetas{4, 8, 16, 32, 64, 128};
  AsciiTable table({"theta", "busy HHs", "quiet HHs", "mean HH depth",
                    "ADA splits"});
  std::vector<SweepPoint> points;
  for (double theta : thetas) {
    points.push_back(runTheta(spec, theta));
    const auto& p = points.back();
    table.addRow({fmtF(theta, 0), fmtF(p.busyHh, 1), fmtF(p.quietHh, 1),
                  fmtF(p.meanDepth, 2), std::to_string(p.splits)});
  }
  table.print(std::cout);

  bool ok = true;
  for (std::size_t i = 1; i < points.size(); ++i) {
    ok &= points[i].busyHh <= points[i - 1].busyHh + 1e-9;
  }
  ok = bench::check(ok, "heavy-hitter count decreases monotonically in theta");
  ok &= bench::check(points.front().busyHh > 4.0 * points.front().quietHh,
                     "busy periods track many more HHs than quiet ones "
                     "(paper: ~125 vs ~5)");
  ok &= bench::check(points.front().meanDepth > points.back().meanDepth,
                     "small theta reaches deeper into the hierarchy");
  return ok ? 0 : 1;
}
