// Fig 1 — per-level CCDF of the normalized count of cases across nodes and
// timeunits, for (a) CCD trouble issues, (b) CCD network locations and
// (c) SCD network locations.
//
// For each hierarchy level we collect the per-(node, unit) raw aggregate
// counts over a multi-day window, normalize by the global maximum (as the
// paper does) and print a log-binned CCDF. The qualitative shape to
// reproduce: deeper levels are strictly sparser (their CCDFs sit below the
// shallower ones), and CO-level cells are overwhelmingly empty.
#include "bench/bench_util.h"

#include "common/stats.h"

namespace {

using namespace tiresias;
using namespace tiresias::workload;

struct LevelSamples {
  int depth;
  std::vector<double> counts;  // per (node, unit), including zeros
  double emptyFraction = 0.0;
};

std::vector<LevelSamples> collect(const WorkloadSpec& spec, TimeUnit units,
                                  std::uint64_t seed) {
  const auto& h = spec.hierarchy;
  GeneratorSource src(spec, 0, units, seed);
  TimeUnitBatcher batcher(src, spec.unit, 0);
  std::vector<LevelSamples> levels;
  for (int d = 1; d <= h.height(); ++d) levels.push_back({d, {}, 0.0});

  while (auto b = batcher.next()) {
    std::vector<double> agg(h.size(), 0.0);
    for (const auto& r : b->records) agg[r.category] += 1.0;
    for (NodeId n = static_cast<NodeId>(h.size()); n-- > 1;) {
      agg[h.parent(n)] += agg[n];
    }
    for (NodeId n = 0; n < h.size(); ++n) {
      levels[static_cast<std::size_t>(h.depth(n) - 1)].counts.push_back(
          agg[n]);
    }
  }
  return levels;
}

void printDataset(const char* name, const WorkloadSpec& spec, TimeUnit units,
                  std::uint64_t seed, bool& ok) {
  std::printf("\n--- %s ---\n", name);
  auto levels = collect(spec, units, seed);
  double maxCount = 0.0;
  for (const auto& lvl : levels) {
    for (double c : lvl.counts) maxCount = std::max(maxCount, c);
  }
  AsciiTable table({"Level", "Nodes x Units", "Empty cells",
                    "P(x>=0.001)", "P(x>=0.01)", "P(x>=0.1)"});
  std::vector<double> sparsity;
  for (auto& lvl : levels) {
    std::size_t empty = 0;
    std::vector<double> normalized;
    normalized.reserve(lvl.counts.size());
    for (double c : lvl.counts) {
      if (c == 0.0) ++empty;
      normalized.push_back(c / maxCount);
    }
    auto ccdfAt = [&](double x) {
      std::size_t cnt = 0;
      for (double v : normalized) cnt += (v >= x);
      return static_cast<double>(cnt) / static_cast<double>(normalized.size());
    };
    lvl.emptyFraction =
        static_cast<double>(empty) / static_cast<double>(lvl.counts.size());
    sparsity.push_back(lvl.emptyFraction);
    table.addRow({std::to_string(lvl.depth),
                  fmtI(static_cast<long long>(lvl.counts.size())),
                  fmtPct(lvl.emptyFraction, 1), fmtG(ccdfAt(0.001), 3),
                  fmtG(ccdfAt(0.01), 3), fmtG(ccdfAt(0.1), 3)});
  }
  table.print(std::cout);
  for (std::size_t d = 1; d < sparsity.size(); ++d) {
    ok &= bench::check(sparsity[d] >= sparsity[d - 1] - 1e-9,
                       std::string(name) + ": level " + std::to_string(d + 1) +
                           " at least as sparse as level " +
                           std::to_string(d));
  }
}

}  // namespace

int main() {
  bench::banner("Fig 1", "CCDF of normalized counts per hierarchy level");
  bench::note("test-scale trees, 4 days of 15-minute units; the paper's "
              "claim is the ordering of the per-level curves, not absolute "
              "values");
  bool ok = true;
  printDataset("(a) CCD trouble issues", ccdTroubleWorkload(Scale::kTest),
               4 * 96, 101, ok);
  printDataset("(b) CCD network locations", ccdNetworkWorkload(Scale::kTest),
               4 * 96, 102, ok);
  const auto scd = scdNetworkWorkload(Scale::kTest);
  printDataset("(c) SCD network locations", scd, 4 * 96, 103, ok);

  // Paper headline: ~93% of CO-level cells empty in CCD, ~70% in SCD.
  // With test-scale trees the exact fractions differ; the CCD-sparser-
  // than-SCD-at-matching-level relation is scale-dependent, so we check
  // the within-dataset ordering above and print the headline numbers here.
  return ok ? 0 : 1;
}
