// Table V — anomaly detection accuracy of ADA against STA (the ground
// truth), across split heuristics and reference depths, over ~100 time
// instances.
//
// Per instance and per heavy hitter we compare the binary anomaly decision
// of ADA vs STA; accuracy = agreement over all decisions, precision/recall
// treat STA's anomalies as the positives. Shape to reproduce: accuracy
// >99%; precision/recall climb steeply with h; EWMA(0.4) has the highest
// precision, Uniform the best recall, Long-Term-History good on all.
#include "bench/bench_util.h"

#include <set>

#include "eval/metrics.h"

namespace {

using namespace tiresias;
using namespace tiresias::workload;

struct Variant {
  std::string label;
  SplitRule rule;
  double ewmaAlpha;
  std::size_t refLevels;
};

eval::ConfusionCounts measure(const WorkloadSpec& spec, const Variant& v,
                              std::size_t window, TimeUnit totalUnits) {
  DetectorConfig cfg = bench::paperConfig(window, 8.0, bench::hwFactory());
  cfg.ratioThreshold = 2.0;  // slightly more sensitive at bench scale
  cfg.diffThreshold = 6.0;
  cfg.splitRule = v.rule;
  cfg.splitEwmaAlpha = v.ewmaAlpha;
  cfg.referenceLevels = v.refLevels;

  const auto& h = spec.hierarchy;
  AdaDetector ada(h, cfg);
  StaDetector sta(h, cfg);
  // Inject occasional spikes so there are real positives to score.
  GroundTruthLedger ledger;
  Rng rng(99);
  for (int i = 0; i < 14; ++i) {
    const auto node = static_cast<NodeId>(rng.below(h.size() - 1) + 1);
    ledger.add({node, static_cast<TimeUnit>(292 + i * 6),
                2, 30.0 + static_cast<double>(rng.below(40))});
  }
  auto injector = std::make_shared<AnomalyInjector>(h, ledger);
  GeneratorSource src(spec, 0, totalUnits, 777, injector);
  TimeUnitBatcher batcher(src, spec.unit, 0);

  eval::ConfusionCounts counts;
  while (auto b = batcher.next()) {
    auto ra = ada.step(*b);
    auto rs = sta.step(*b);
    if (!ra || !rs) continue;
    std::set<NodeId> adaPos, staPos;
    for (const auto& a : ra->anomalies) adaPos.insert(a.node);
    for (const auto& a : rs->anomalies) staPos.insert(a.node);
    for (NodeId n : rs->shhh) {
      const bool predicted = adaPos.count(n) != 0;
      const bool actual = staPos.count(n) != 0;
      if (predicted && actual) {
        ++counts.tp;
      } else if (predicted) {
        ++counts.fp;
      } else if (actual) {
        ++counts.fn;
      } else {
        ++counts.tn;
      }
    }
  }
  return counts;
}

}  // namespace

int main() {
  bench::banner("Table V", "ADA anomaly agreement with STA by heuristic");
  const auto spec = ccdNetworkWorkload(Scale::kTest);
  // The window must exceed the Holt-Winters bootstrap (2 x 96-unit season)
  // so STA's per-instance refit reaches the live recursion.
  const std::size_t window = 288;
  const TimeUnit totalUnits = 388;  // ~100 instances
  bench::note("CCD network (test preset) with 14 injected spikes; STA's "
              "decisions are the ground truth as in the paper");

  const std::vector<Variant> variants = {
      {"Long-Term-History h=0", SplitRule::kLongTermHistory, 0.4, 0},
      {"Long-Term-History h=1", SplitRule::kLongTermHistory, 0.4, 1},
      {"Long-Term-History h=2", SplitRule::kLongTermHistory, 0.4, 2},
      {"EWMA (rate=0.8) h=2", SplitRule::kEwma, 0.8, 2},
      {"EWMA (rate=0.6) h=2", SplitRule::kEwma, 0.6, 2},
      {"EWMA (rate=0.4) h=2", SplitRule::kEwma, 0.4, 2},
      {"Last-Time-Unit h=2", SplitRule::kLastTimeUnit, 0.4, 2},
      {"Uniform h=2", SplitRule::kUniform, 0.4, 2},
  };

  AsciiTable table({"Split rule", "Accuracy", "Precision", "Recall",
                    "Decisions"});
  std::vector<eval::ConfusionCounts> results;
  for (const auto& v : variants) {
    const auto counts = measure(spec, v, window, totalUnits);
    results.push_back(counts);
    table.addRow({v.label, fmtPct(counts.accuracy(), 1),
                  fmtPct(counts.precision(), 1), fmtPct(counts.recall(), 1),
                  fmtI(static_cast<long long>(counts.total()))});
  }
  table.print(std::cout);

  bool ok = true;
  const auto& lth0 = results[0];
  const auto& lth2 = results[2];
  ok &= bench::check(lth2.accuracy() > 0.95,
                     "accuracy with h=2 is very high (paper: 99.6% at full "
                     "12-week scale)");
  ok &= bench::check(lth2.precision() >= lth0.precision() &&
                         lth2.recall() >= lth0.recall(),
                     "reference levels improve precision and recall");
  ok &= bench::check(results[2].f1() > 0.6,
                     "Long-Term-History h=2 balances precision/recall");
  // Paper: EWMA(0.4) has the highest precision of the h=2 heuristics.
  double ewma04 = results[5].precision();
  bool top = true;
  for (std::size_t i = 2; i < results.size(); ++i) {
    if (i != 5 && results[i].precision() > ewma04 + 0.02) top = false;
  }
  ok &= bench::check(top, "EWMA(0.4) precision is at or near the top");
  return ok ? 0 : 1;
}
