// Unit tests for the a-trous wavelet transform.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "analysis/wavelet.h"
#include "common/rng.h"

namespace tiresias {
namespace {

std::vector<double> sinusoid(std::size_t n, double period, double amp) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = amp * std::sin(2.0 * std::numbers::pi * static_cast<double>(i) /
                            period);
  }
  return out;
}

TEST(Wavelet, ExactReconstruction) {
  Rng rng(43);
  std::vector<double> series(300);
  for (auto& v : series) v = rng.uniform(-10.0, 10.0);
  const auto decomp = atrousTransform(series, 5);
  EXPECT_LT(reconstructionError(series, decomp), 1e-9);
}

TEST(Wavelet, ShapesMatchInput) {
  const auto series = sinusoid(128, 16.0, 1.0);
  const auto decomp = atrousTransform(series, 4);
  ASSERT_EQ(decomp.smooth.size(), 4u);
  ASSERT_EQ(decomp.detail.size(), 4u);
  for (const auto& s : decomp.smooth) EXPECT_EQ(s.size(), series.size());
}

TEST(Wavelet, EnergyConcentratesAtMatchingScale) {
  // A sinusoid of period 32 should put most detail energy near level
  // log2(32) - 1 = 4 (levels are ~2^(j+1) sample scales).
  const auto series = sinusoid(1024, 32.0, 1.0);
  const auto energies = detailEnergies(atrousTransform(series, 8));
  std::size_t best = 0;
  for (std::size_t j = 1; j < energies.size(); ++j) {
    if (energies[j] > energies[best]) best = j;
  }
  EXPECT_GE(best, 3u);
  EXPECT_LE(best, 5u);
}

TEST(Wavelet, SmootherLevelsHaveLessVariance) {
  Rng rng(47);
  std::vector<double> series(512);
  for (auto& v : series) v = rng.normal(0.0, 1.0);
  const auto decomp = atrousTransform(series, 6);
  auto variance = [](const std::vector<double>& xs) {
    double m = 0.0;
    for (double x : xs) m += x;
    m /= static_cast<double>(xs.size());
    double v = 0.0;
    for (double x : xs) v += (x - m) * (x - m);
    return v / static_cast<double>(xs.size());
  };
  for (std::size_t j = 1; j < decomp.smooth.size(); ++j) {
    EXPECT_LE(variance(decomp.smooth[j]), variance(decomp.smooth[j - 1]) + 1e-12);
  }
}

TEST(Wavelet, ConstantSignalHasZeroDetails) {
  std::vector<double> series(64, 7.5);
  const auto energies = detailEnergies(atrousTransform(series, 4));
  for (double e : energies) EXPECT_NEAR(e, 0.0, 1e-18);
}

TEST(Wavelet, RejectsDegenerateInput) {
  std::vector<double> tiny(4, 1.0);
  EXPECT_DEATH(atrousTransform(tiny, 2), "too short");
  std::vector<double> ok(64, 1.0);
  EXPECT_DEATH(atrousTransform(ok, 0), "level");
}

}  // namespace
}  // namespace tiresias
