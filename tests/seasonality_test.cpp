// Unit tests for the automatic seasonality analysis (Step 3).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "analysis/seasonality.h"
#include "common/rng.h"

namespace tiresias {
namespace {

std::vector<double> dayWeekSignal(std::size_t days, std::size_t unitsPerDay,
                                  double dayAmp, double weekAmp,
                                  std::uint64_t seed = 0) {
  Rng rng(seed ? seed : 53);
  std::vector<double> out;
  const std::size_t weekUnits = unitsPerDay * 7;
  for (std::size_t i = 0; i < days * unitsPerDay; ++i) {
    const double day = std::sin(2.0 * std::numbers::pi *
                                static_cast<double>(i % unitsPerDay) /
                                static_cast<double>(unitsPerDay));
    const double week = std::sin(2.0 * std::numbers::pi *
                                 static_cast<double>(i % weekUnits) /
                                 static_cast<double>(weekUnits));
    out.push_back(100.0 + dayAmp * day + weekAmp * week +
                  rng.normal(0.0, 1.0));
  }
  return out;
}

TEST(Seasonality, FindsDayAndWeekWithCandidates) {
  const std::size_t unitsPerDay = 24;
  const auto series = dayWeekSignal(28, unitsPerDay, 30.0, 12.0);
  SeasonalityOptions opts;
  opts.candidatePeriods = {unitsPerDay, unitsPerDay * 7};
  const auto result = analyzeSeasonality(series, opts);
  ASSERT_EQ(result.seasons.size(), 2u);
  EXPECT_EQ(result.seasons[0].period, unitsPerDay);      // strongest first
  EXPECT_EQ(result.seasons[1].period, unitsPerDay * 7);
  EXPECT_GT(result.seasons[0].weight, result.seasons[1].weight);
  EXPECT_NEAR(result.seasons[0].weight + result.seasons[1].weight, 1.0, 1e-9);
}

TEST(Seasonality, AutomaticPeakPicking) {
  const std::size_t unitsPerDay = 24;
  const auto series = dayWeekSignal(28, unitsPerDay, 30.0, 0.0);
  const auto result = analyzeSeasonality(series);
  ASSERT_FALSE(result.seasons.empty());
  EXPECT_NEAR(static_cast<double>(result.seasons[0].period),
              static_cast<double>(unitsPerDay), 3.0);
}

TEST(Seasonality, InsignificantCandidateRejected) {
  const std::size_t unitsPerDay = 24;
  // No weekly component at all: the weekly candidate must be dropped.
  const auto series = dayWeekSignal(28, unitsPerDay, 30.0, 0.0);
  SeasonalityOptions opts;
  opts.candidatePeriods = {unitsPerDay, unitsPerDay * 7};
  opts.significanceRatio = 0.25;
  const auto result = analyzeSeasonality(series, opts);
  ASSERT_EQ(result.seasons.size(), 1u);
  EXPECT_EQ(result.seasons[0].period, unitsPerDay);
  EXPECT_DOUBLE_EQ(result.seasons[0].weight, 1.0);
}

TEST(Seasonality, WaveletEnergiesExposed) {
  const auto series = dayWeekSignal(14, 24, 20.0, 5.0);
  const auto result = analyzeSeasonality(series);
  EXPECT_FALSE(result.waveletEnergies.empty());
}

TEST(Seasonality, PaperXiRatioShape) {
  // The paper derives xi = FFT_day / FFT_week = 0.76 for CCD, i.e. the
  // day weight is 0.76/(1+0.76) of... — our generalization assigns weights
  // proportional to magnitudes; verify day magnitude dominates with a
  // CCD-like amplitude ratio.
  const std::size_t unitsPerDay = 96;  // 15-minute units
  const auto series = dayWeekSignal(28, unitsPerDay, 30.0, 10.0, 57);
  SeasonalityOptions opts;
  opts.candidatePeriods = {unitsPerDay, unitsPerDay * 7};
  const auto result = analyzeSeasonality(series, opts);
  ASSERT_EQ(result.seasons.size(), 2u);
  const double xi = result.seasons[0].weight;
  EXPECT_GT(xi, 0.6);
  EXPECT_LT(xi, 0.95);
}

}  // namespace
}  // namespace tiresias
