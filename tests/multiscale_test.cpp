// Unit tests for the multi-timescale series maintenance (Fig 10).
#include <gtest/gtest.h>

#include "timeseries/multiscale.h"

namespace tiresias {
namespace {

TEST(MultiScale, CascadeSumsLambdaValues) {
  MultiScaleSeries ms(3, 4, 16, 0.5);
  for (int i = 1; i <= 16; ++i) ms.push(1.0);
  EXPECT_EQ(ms.actual(0).size(), 16u);
  ASSERT_EQ(ms.actual(1).size(), 4u);  // 16/4
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(ms.actual(1).at(i), 4.0);
  ASSERT_EQ(ms.actual(2).size(), 1u);  // 16/16
  EXPECT_DOUBLE_EQ(ms.actual(2).at(0), 16.0);
}

TEST(MultiScale, CoarseValuesAreExactSums) {
  MultiScaleSeries ms(2, 3, 32, 0.5);
  std::vector<double> vals{1, 2, 3, 4, 5, 6, 7};  // 7 = 2 full groups + 1
  for (double v : vals) ms.push(v);
  ASSERT_EQ(ms.actual(1).size(), 2u);
  EXPECT_DOUBLE_EQ(ms.actual(1).at(0), 6.0);   // 1+2+3
  EXPECT_DOUBLE_EQ(ms.actual(1).at(1), 15.0);  // 4+5+6
}

TEST(MultiScale, ForecastIsLaggedEwma) {
  MultiScaleSeries ms(1, 2, 8, 0.5);
  ms.push(10.0);
  ms.push(20.0);
  ms.push(40.0);
  // forecast[0] seeds at the first value; then F = 0.5*T + 0.5*F.
  EXPECT_DOUBLE_EQ(ms.forecastSeries(0).at(0), 10.0);
  EXPECT_DOUBLE_EQ(ms.forecastSeries(0).at(1), 10.0);
  EXPECT_DOUBLE_EQ(ms.forecastSeries(0).at(2), 15.0);
}

TEST(MultiScale, RingEvictionAtCapacity) {
  MultiScaleSeries ms(1, 2, 4, 0.5);
  for (int i = 1; i <= 10; ++i) ms.push(i);
  EXPECT_EQ(ms.actual(0).size(), 4u);
  EXPECT_EQ(ms.actual(0).toVector(), (std::vector<double>{7, 8, 9, 10}));
}

TEST(MultiScale, PushCountAmortizedBound) {
  // The UPDATE_TS analysis: for kappa base pushes, total pushes across
  // scales are at most 2*kappa.
  MultiScaleSeries ms(6, 2, 64, 0.5);
  const std::size_t kappa = 64;
  for (std::size_t i = 0; i < kappa; ++i) ms.push(1.0);
  std::size_t totalStored = 0;
  std::size_t expected = 0;
  std::size_t perScale = kappa;
  for (std::size_t s = 0; s < ms.scales(); ++s) {
    totalStored += ms.actual(s).size();
    expected += perScale;
    perScale /= 2;
  }
  EXPECT_LE(totalStored, 2 * kappa);
  EXPECT_EQ(totalStored, expected);
}

TEST(MultiScale, RejectsBadConfig) {
  EXPECT_DEATH(MultiScaleSeries(0, 2, 4, 0.5), "scale");
  EXPECT_DEATH(MultiScaleSeries(1, 1, 4, 0.5), "lambda");
  EXPECT_DEATH(MultiScaleSeries(1, 2, 0, 0.5), "capacity");
}

}  // namespace
}  // namespace tiresias
