// Unit + property tests for Definition 2 (SHHH) and Definition 3 (fixed-set
// time series reconstruction).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/shhh.h"
#include "hierarchy/builder.h"

namespace tiresias {
namespace {

// Brute-force Definition 2 evaluation over the full tree (dense).
std::vector<NodeId> bruteForceShhh(const Hierarchy& h, const CountMap& counts,
                                   double theta,
                                   std::vector<double>* modifiedOut = nullptr) {
  std::vector<double> w(h.size(), 0.0);
  for (const auto& [n, c] : counts) w[n] += c;
  std::vector<bool> heavy(h.size(), false);
  for (NodeId n = static_cast<NodeId>(h.size()); n-- > 0;) {
    heavy[n] = w[n] >= theta;
    const NodeId p = h.parent(n);
    if (p != kInvalidNode && !heavy[n]) w[p] += w[n];
  }
  std::vector<NodeId> out;
  for (NodeId n = 0; n < h.size(); ++n) {
    if (heavy[n]) out.push_back(n);
  }
  if (modifiedOut) *modifiedOut = w;
  return out;
}

TEST(Shhh, HandComputedExample) {
  // root -> {a, b}; a -> {a0, a1}.  Counts: a0=6, a1=2, b=3. theta=5.
  HierarchyBuilder builder("root");
  const NodeId a = builder.addChild(0, "a");
  builder.addChild(0, "b");
  builder.addChild(a, "a0");
  builder.addChild(a, "a1");
  const auto h = builder.build();
  const NodeId a0 = h.find("a/a0");
  const NodeId a1 = h.find("a/a1");
  const NodeId bb = h.find("b");

  const auto result = computeShhh(h, {{a0, 6.0}, {a1, 2.0}, {bb, 3.0}}, 5.0);
  // a0 is heavy (6 >= 5). a's modified weight = 2 (a0 discounted) -> not
  // heavy. root's = 2 + 3 = 5 -> heavy.
  EXPECT_EQ(result.shhh, (std::vector<NodeId>{h.root(), a0}));
  (void)a;

  for (const auto& t : result.touched) {
    if (t.node == h.root()) {
      EXPECT_DOUBLE_EQ(t.modified, 5.0);
      EXPECT_DOUBLE_EQ(t.raw, 11.0);
    }
    if (t.node == a0) {
      EXPECT_DOUBLE_EQ(t.modified, 6.0);
    }
  }
}

TEST(Shhh, EmptyCountsYieldEmptySet) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  const auto result = computeShhh(h, {}, 1.0);
  EXPECT_TRUE(result.shhh.empty());
  EXPECT_TRUE(result.touched.empty());
}

TEST(Shhh, AllWeightAtOneLeaf) {
  const auto h = HierarchyBuilder::balanced({2, 2});
  const NodeId leaf = h.leaves()[0];
  const auto result = computeShhh(h, {{leaf, 10.0}}, 5.0);
  // Leaf heavy; ancestors have modified weight 0.
  EXPECT_EQ(result.shhh, std::vector<NodeId>{leaf});
}

TEST(Shhh, InteriorCountsSupported) {
  const auto h = HierarchyBuilder::balanced({2, 2});
  const NodeId interior = h.children(h.root())[0];
  const auto result = computeShhh(h, {{interior, 7.0}}, 5.0);
  EXPECT_EQ(result.shhh, std::vector<NodeId>{interior});
}

TEST(Shhh, ThresholdBoundaryInclusive) {
  const auto h = HierarchyBuilder::balanced({2});
  const NodeId leaf = h.leaves()[0];
  EXPECT_EQ(computeShhh(h, {{leaf, 5.0}}, 5.0).shhh.size(), 1u);
  EXPECT_EQ(computeShhh(h, {{leaf, 4.999}}, 5.0).shhh.size(), 0u);
}

class ShhhPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShhhPropertyTest, MatchesBruteForceOnRandomTrees) {
  Rng rng(GetParam());
  // Random tree.
  HierarchyBuilder b("root");
  std::vector<NodeId> nodes{0};
  for (int i = 0; i < 80; ++i) {
    nodes.push_back(b.addChild(nodes[rng.below(nodes.size())],
                               "n" + std::to_string(i)));
  }
  const auto h = b.build();
  // Random counts on random nodes (leaves and interiors).
  CountMap counts;
  for (int i = 0; i < 40; ++i) {
    counts[static_cast<NodeId>(rng.below(h.size()))] +=
        static_cast<double>(rng.below(7));
  }
  const double theta = 1.0 + static_cast<double>(rng.below(10));
  std::vector<double> denseW;
  const auto expected = bruteForceShhh(h, counts, theta, &denseW);
  const auto result = computeShhh(h, counts, theta);
  EXPECT_EQ(result.shhh, expected);
  for (const auto& t : result.touched) {
    EXPECT_NEAR(t.modified, denseW[t.node], 1e-9);
  }
}

TEST_P(ShhhPropertyTest, ModifiedWeightsConserveTotal) {
  // Sum of modified weights over the SHHH set plus the root's residual
  // equals the total record count (every count is routed to exactly one
  // holder: its nearest heavy-hitter ancestor or the root).
  Rng rng(GetParam() ^ 0x7777ULL);
  const auto h = HierarchyBuilder::balanced({4, 3, 2});
  CountMap counts;
  double total = 0.0;
  for (int i = 0; i < 60; ++i) {
    const NodeId leaf = h.leaves()[rng.below(h.leafCount())];
    const double c = 1.0 + static_cast<double>(rng.below(5));
    counts[leaf] += c;
    total += c;
  }
  const double theta = 4.0;
  const auto result = computeShhh(h, counts, theta);
  double sum = 0.0;
  bool rootHeavy = false;
  for (const auto& t : result.touched) {
    if (t.heavy) {
      sum += t.modified;
      if (t.node == h.root()) rootHeavy = true;
    }
    if (t.node == h.root() && !t.heavy) sum += t.modified;  // residual
  }
  (void)rootHeavy;
  EXPECT_NEAR(sum, total, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShhhPropertyTest,
                         ::testing::Values(7, 17, 27, 37, 47, 57, 67, 77));

TEST(FixedSetSeries, ReconstructsKnownValues) {
  // Tree: root -> {a, b}; a -> {a0, a1}. Fixed set {a0}. Two units.
  HierarchyBuilder builder("root");
  const NodeId a = builder.addChild(0, "a");
  builder.addChild(0, "b");
  builder.addChild(a, "a0");
  builder.addChild(a, "a1");
  const auto h = builder.build();
  const NodeId a0 = h.find("a/a0");
  const NodeId a1 = h.find("a/a1");
  const NodeId bb = h.find("b");

  std::vector<CountMap> units;
  units.push_back({{a0, 6.0}, {a1, 2.0}, {bb, 1.0}});
  units.push_back({{a0, 1.0}, {bb, 4.0}});
  const auto series = modifiedSeriesFixedSet(h, units, {a0});

  ASSERT_TRUE(series.count(a0));
  EXPECT_EQ(series.at(a0), (std::vector<double>{6.0, 1.0}));
  // Root series excludes the a0 member in both units, even in unit 1 where
  // a0's weight (1.0) is below any threshold: membership is fixed.
  ASSERT_TRUE(series.count(h.root()));
  EXPECT_EQ(series.at(h.root()), (std::vector<double>{3.0, 4.0}));
}

TEST(FixedSetSeries, NestedMembersDiscountOnlyUncoveredWeight) {
  // root -> a -> a0; fixed set {a, a0}: a's series must exclude a0's.
  HierarchyBuilder builder("root");
  const NodeId a = builder.addChild(0, "a");
  const NodeId a0p = builder.addChild(a, "a0");
  const NodeId a1p = builder.addChild(a, "a1");
  (void)a0p;
  (void)a1p;
  const auto h = builder.build();
  const NodeId a0 = h.find("a/a0");
  const NodeId a1 = h.find("a/a1");
  const NodeId aa = h.find("a");

  std::vector<CountMap> units;
  units.push_back({{a0, 5.0}, {a1, 3.0}});
  const auto series = modifiedSeriesFixedSet(h, units, {aa, a0});
  EXPECT_EQ(series.at(a0), std::vector<double>{5.0});
  EXPECT_EQ(series.at(aa), std::vector<double>{3.0});
  EXPECT_EQ(series.at(h.root()), std::vector<double>{0.0});
}

TEST(RawSeries, AggregatesFullSubtree) {
  const auto h = HierarchyBuilder::balanced({2, 2});
  const NodeId left = h.children(h.root())[0];
  std::vector<CountMap> units;
  units.push_back({{h.leaves()[0], 2.0}, {h.leaves()[1], 3.0},
                   {h.leaves()[2], 7.0}});
  units.push_back({{h.leaves()[0], 1.0}});
  const auto series = rawSeries(h, units, {h.root(), left});
  EXPECT_EQ(series.at(h.root()), (std::vector<double>{12.0, 1.0}));
  EXPECT_EQ(series.at(left), (std::vector<double>{5.0, 1.0}));
}

}  // namespace
}  // namespace tiresias
