// Tests for the tiresias_cli front end (generate / detect / analyze /
// hierarchy), driven in-process through runCli.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/faultinject.h"
#include "tools/cli.h"

namespace tiresias::tools {
namespace {

int run(const std::vector<std::string>& argv, std::string* outText = nullptr,
        std::string* errText = nullptr) {
  std::ostringstream out, err;
  const int rc = runCli(argv, out, err);
  if (outText) *outText = out.str();
  if (errText) *errText = err.str();
  return rc;
}

TEST(CliArgs, ParsesCommandOptionsPositionals) {
  const auto args = parseArgs(
      {"generate", "--dataset", "scd", "--flag", "--seed", "9", "extra"});
  EXPECT_EQ(args.command, "generate");
  EXPECT_EQ(args.get("dataset", ""), "scd");
  EXPECT_EQ(args.get("seed", ""), "9");
  EXPECT_TRUE(args.has("flag"));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get("missing", "fallback"), "fallback");
  ASSERT_EQ(args.positional.size(), 1u);
  EXPECT_EQ(args.positional[0], "extra");
}

TEST(CliArgs, RepeatedOptionKeepsAll) {
  const auto args = parseArgs({"generate", "--spike", "a:1:2:3", "--spike",
                               "b:4:5:6"});
  int spikes = 0;
  for (const auto& [k, v] : args.options) {
    (void)v;
    if (k == "spike") ++spikes;
  }
  EXPECT_EQ(spikes, 2);
}

TEST(Cli, NoCommandPrintsUsage) {
  std::string out;
  EXPECT_EQ(run({}, &out), 2);
  EXPECT_NE(out.find("usage:"), std::string::npos);
  EXPECT_EQ(run({"help"}, &out), 0);
}

TEST(Cli, UnknownCommandFails) {
  std::string err;
  EXPECT_EQ(run({"frobnicate"}, nullptr, &err), 2);
  EXPECT_NE(err.find("unknown command"), std::string::npos);
}

TEST(Cli, HierarchySummary) {
  std::string out;
  EXPECT_EQ(run({"hierarchy", "--dataset", "scd", "--scale", "test"}, &out),
            0);
  EXPECT_NE(out.find("height=4"), std::string::npos);
  EXPECT_NE(out.find("depth 1: 1 nodes"), std::string::npos);
}

TEST(Cli, RejectsBadDatasetAndScale) {
  std::string err;
  EXPECT_EQ(run({"hierarchy", "--dataset", "nope"}, nullptr, &err), 2);
  EXPECT_NE(err.find("unknown --dataset"), std::string::npos);
  EXPECT_EQ(run({"hierarchy", "--dataset", "scd", "--scale", "giant"},
                nullptr, &err),
            2);
}

TEST(Cli, GenerateDetectRoundTrip) {
  const std::string trace = ::testing::TempDir() + "/cli_trace.csv";
  const std::string report = ::testing::TempDir() + "/cli_anoms.csv";
  std::string out;
  // 3 days of test-scale CCD network traffic with one injected IO burst
  // on day 3 (unit 240), after the 96-unit detection window fills.
  ASSERT_EQ(run({"generate", "--dataset", "ccd-net", "--scale", "test",
                 "--days", "3", "--seed", "5", "--out", trace, "--spike",
                 "VHO1/IO0:240:3:80"},
                &out),
            0);
  EXPECT_NE(out.find("1 injected spikes"), std::string::npos);

  ASSERT_EQ(run({"detect", "--dataset", "ccd-net", "--scale", "test",
                 "--trace", trace, "--theta", "8", "--window", "96", "--rt",
                 "2.0", "--dt", "6", "--out", report},
                &out),
            0);
  EXPECT_NE(out.find("processed 288 timeunits"), std::string::npos);
  EXPECT_NE(out.find("VHO1/IO0"), std::string::npos);  // burst localized
  std::ifstream reportIn(report);
  EXPECT_TRUE(reportIn.good());
  std::remove(trace.c_str());
  std::remove(report.c_str());
}

TEST(Cli, DetectRequiresTrace) {
  std::string err;
  EXPECT_EQ(run({"detect", "--dataset", "scd"}, nullptr, &err), 2);
  EXPECT_NE(err.find("--trace is required"), std::string::npos);
}

TEST(Cli, ConvertDetectRoundTrip) {
  const std::string trace = ::testing::TempDir() + "/cli_convert.csv";
  const std::string binary = ::testing::TempDir() + "/cli_convert.tsrb";
  std::string out;
  ASSERT_EQ(run({"generate", "--dataset", "ccd-net", "--scale", "test",
                 "--days", "3", "--seed", "5", "--out", trace, "--spike",
                 "VHO1/IO0:240:3:80"},
                &out),
            0);
  ASSERT_EQ(run({"convert", "--in", trace, "--out", binary}, &out), 0);
  EXPECT_NE(out.find("0 junk rows dropped"), std::string::npos);

  // detect sniffs the binary format by magic and must report the exact
  // run the CSV trace produces (binary ingest is record-identical).
  std::string fromCsv, fromBinary;
  ASSERT_EQ(run({"detect", "--dataset", "ccd-net", "--scale", "test",
                 "--trace", trace, "--theta", "8", "--window", "96"},
                &fromCsv),
            0);
  ASSERT_EQ(run({"detect", "--dataset", "ccd-net", "--scale", "test",
                 "--trace", binary, "--theta", "8", "--window", "96"},
                &fromBinary),
            0);
  EXPECT_EQ(fromCsv, fromBinary);
  EXPECT_NE(fromBinary.find("processed 288 timeunits"), std::string::npos);
  std::remove(trace.c_str());
  std::remove(binary.c_str());
}

TEST(Cli, ConvertRequiresInAndOut) {
  std::string err;
  EXPECT_EQ(run({"convert", "--out", "x.tsrb"}, nullptr, &err), 2);
  EXPECT_NE(err.find("--in and --out are required"), std::string::npos);
  EXPECT_EQ(run({"convert", "--in", "x.csv"}, nullptr, &err), 2);
  EXPECT_NE(err.find("--in and --out are required"), std::string::npos);
}

TEST(Cli, CorruptBinaryTraceFailsCleanly) {
  // A truncated .tsrb must come back as exit 1 with a clean message from
  // detect AND analyze — the SnapshotError is thrown while *opening* the
  // source (framing validation), not just while decoding records, and
  // both commands must catch it there.
  const std::string trace = ::testing::TempDir() + "/cli_corrupt.tsrb";
  {
    std::ofstream f(trace, std::ios::binary);
    f << "TSRB truncated prologue";
  }
  std::string err;
  EXPECT_EQ(run({"detect", "--dataset", "ccd-net", "--scale", "test",
                 "--trace", trace},
                nullptr, &err),
            1);
  EXPECT_NE(err.find("bad binary trace"), std::string::npos);
  EXPECT_EQ(run({"analyze", "--dataset", "ccd-net", "--scale", "test",
                 "--trace", trace},
                nullptr, &err),
            1);
  EXPECT_NE(err.find("bad binary trace"), std::string::npos);
  std::remove(trace.c_str());
}

TEST(Cli, GenerateRejectsBadSpike) {
  std::string err;
  EXPECT_EQ(run({"generate", "--dataset", "ccd-net", "--out", "/tmp/x.csv",
                 "--spike", "garbage"},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("bad --spike"), std::string::npos);
  EXPECT_EQ(run({"generate", "--dataset", "ccd-net", "--out", "/tmp/x.csv",
                 "--spike", "NoSuchNode:1:1:1"},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("unknown spike path"), std::string::npos);
  // A negative duration used to wrap through stoul into a ~2^64-unit
  // spike; it must be a usage error, as must trailing garbage in any
  // numeric field.
  for (const char* bad : {"VHO1/IO0:240:-1:80", "VHO1/IO0:240:3junk:80",
                          "VHO1/IO0:2.5:3:80", "VHO1/IO0:240:3:80junk",
                          "VHO1/IO0:240::80"}) {
    EXPECT_EQ(run({"generate", "--dataset", "ccd-net", "--out", "/tmp/x.csv",
                   "--spike", bad},
                  nullptr, &err),
              2)
        << bad;
    EXPECT_NE(err.find("bad --spike"), std::string::npos) << bad;
  }
}

TEST(Cli, ServeValidatesNetworkFlags) {
  std::string err;
  // Generated-mode stream options conflict with --listen.
  EXPECT_EQ(run({"serve", "--listen", "0", "--streams", "4"}, nullptr, &err),
            2);
  EXPECT_NE(err.find("cannot be combined with --listen"), std::string::npos);
  // Network options require --listen.
  EXPECT_EQ(run({"serve", "--streams", "1", "--units", "1",
                 "--ingest-format", "csv"},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("requires --listen"), std::string::npos);
  EXPECT_EQ(run({"serve", "--listen", "70000"}, nullptr, &err), 2);
  EXPECT_NE(err.find("port in [0, 65535]"), std::string::npos);
  EXPECT_EQ(run({"serve", "--listen", "0", "--ingest-format", "xml"},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("unknown --ingest-format"), std::string::npos);
  EXPECT_EQ(run({"serve", "--listen", "0", "--net-streams", "0"}, nullptr,
                &err),
            2);
  EXPECT_NE(err.find("--net-streams must be positive"), std::string::npos);
}

TEST(Cli, ServeValidatesFaultToleranceFlags) {
  std::string err;
  // Stream names must be well-formed and unique.
  EXPECT_EQ(run({"serve", "--listen", "0", "--stream-names", "a,,b"},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("comma-separated names"), std::string::npos);
  EXPECT_EQ(run({"serve", "--listen", "0", "--stream-names", "a,b,a"},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("lists 'a' twice"), std::string::npos);
  // A malformed fault plan is rejected with the parser's diagnostic.
  EXPECT_EQ(run({"serve", "--listen", "0", "--fault-plan", "bogus=1.0"},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("bad --fault-plan"), std::string::npos);
  EXPECT_NE(err.find("unknown key"), std::string::npos);
  EXPECT_EQ(run({"serve", "--listen", "0", "--fault-plan",
                 "disconnect=2.0"},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("bad --fault-plan"), std::string::npos);
  // Fault injection is a listen-mode option like the rest.
  EXPECT_EQ(run({"serve", "--streams", "1", "--units", "1", "--fault-plan",
                 "disconnect=0.1"},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("requires --listen"), std::string::npos);
  // A failed arm must not leave the process armed.
  EXPECT_FALSE(faultinject::armed());
}

TEST(Cli, SendValidatesArguments) {
  std::string err;
  EXPECT_EQ(run({"send", "--trace", "/tmp/x.csv"}, nullptr, &err), 2);
  EXPECT_NE(err.find("--to HOST:PORT"), std::string::npos);
  for (const char* bad : {"nohost", "host:", ":123", "host:0", "host:junk",
                          "host:70000"}) {
    EXPECT_EQ(run({"send", "--to", bad, "--trace", "/tmp/x.csv"}, nullptr,
                  &err),
              2)
        << bad;
    EXPECT_NE(err.find("bad --to"), std::string::npos) << bad;
  }
  EXPECT_EQ(run({"send", "--to", "localhost:1", "--trace", "/tmp/x.csv",
                 "--format", "xml"},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("unknown --format"), std::string::npos);
  // Reconnect/resume options are binary-framing features.
  EXPECT_EQ(run({"send", "--to", "localhost:1", "--trace", "/tmp/x.csv",
                 "--format", "csv", "--stream-name", "s0"},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("require the binary format"), std::string::npos);
  EXPECT_EQ(run({"send", "--to", "localhost:1", "--trace", "/tmp/x.csv",
                 "--format", "csv", "--retries", "3"},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("require the binary format"), std::string::npos);
  EXPECT_EQ(run({"send", "--to", "localhost:1", "--trace", "/tmp/x.csv",
                 "--stream-name", ""},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("--stream-name wants 1.."), std::string::npos);
  EXPECT_EQ(run({"send", "--to", "localhost:1", "--trace", "/tmp/x.csv",
                 "--retries", "-1"},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("--retries must be >= 0"), std::string::npos);
  EXPECT_EQ(run({"send", "--to", "localhost:1", "--trace", "/tmp/x.csv",
                 "--backoff-ms", "0"},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("--backoff-ms positive"), std::string::npos);
}

TEST(Cli, AnalyzeFindsDiurnalSeason) {
  const std::string trace = ::testing::TempDir() + "/cli_seasonal.csv";
  std::string out;
  ASSERT_EQ(run({"generate", "--dataset", "ccd-trouble", "--scale", "test",
                 "--days", "6", "--seed", "3", "--out", trace},
                &out),
            0);
  ASSERT_EQ(run({"analyze", "--dataset", "ccd-trouble", "--scale", "test",
                 "--trace", trace},
                &out),
            0);
  EXPECT_NE(out.find("period=96 units (24.0 hours)"), std::string::npos);
  std::remove(trace.c_str());
}

TEST(Cli, CustomHierarchyFromPathsFile) {
  const std::string pathsFile = ::testing::TempDir() + "/custom_paths.txt";
  {
    std::ofstream f(pathsFile);
    f << "east/pop1\neast/pop2\nwest/pop1\n";
  }
  std::string out;
  EXPECT_EQ(run({"hierarchy", "--hierarchy", pathsFile}, &out), 0);
  EXPECT_NE(out.find("leaves=3"), std::string::npos);
  EXPECT_NE(out.find("height=3"), std::string::npos);
  std::remove(pathsFile.c_str());
}

TEST(Cli, CustomHierarchyDetect) {
  const std::string pathsFile = ::testing::TempDir() + "/det_paths.txt";
  const std::string trace = ::testing::TempDir() + "/det_trace.csv";
  {
    std::ofstream f(pathsFile);
    f << "east/pop1\neast/pop2\nwest/pop1\n";
  }
  {
    // 20 quiet units then a burst at pop1 in unit 20.
    std::ofstream f(trace);
    for (int u = 0; u < 21; ++u) {
      const int count = u == 20 ? 30 : 4;
      for (int i = 0; i < count; ++i) {
        f << "east/pop1," << u * 900 + i << "\n";
      }
    }
  }
  std::string out;
  ASSERT_EQ(run({"detect", "--hierarchy", pathsFile, "--trace", trace,
                 "--theta", "3", "--window", "12", "--rt", "2", "--dt", "5"},
                &out),
            0);
  EXPECT_NE(out.find("anomaly unit=20 root/east/pop1"), std::string::npos);
  std::remove(pathsFile.c_str());
  std::remove(trace.c_str());
}

TEST(Cli, ServeRunsStreamsThroughEngine) {
  std::string out;
  ASSERT_EQ(run({"serve", "--streams", "3", "--workers", "2", "--units", "40",
                 "--window", "16", "--seed", "5"},
                &out),
            0);
  EXPECT_NE(out.find("engine: 3 streams, 2 workers, 1 ingest threads"),
            std::string::npos);
  EXPECT_NE(out.find("stream ccd-net-0:"), std::string::npos);
  EXPECT_NE(out.find("stream ccd-trouble-1:"), std::string::npos);
  EXPECT_NE(out.find("stream scd-2:"), std::string::npos);
  EXPECT_NE(out.find("scheduler: claims="), std::string::npos);
  EXPECT_NE(out.find("aggregate: ingested=120 units=120 discarded=0 lag=0"),
            std::string::npos);
  EXPECT_NE(out.find("warmup="), std::string::npos);
  EXPECT_NE(out.find("records/sec"), std::string::npos);
  // Metrics ride along by default: the final summary includes the
  // per-stage latency table.
  EXPECT_NE(out.find("stages (latency percentiles):"), std::string::npos);
  EXPECT_NE(out.find("scheduler.run_slice"), std::string::npos);
  EXPECT_NE(out.find("engine.unit_latency"), std::string::npos);
}

TEST(Cli, ServeWritesMetricsJsonLines) {
  const std::string path = "cli_test_metrics.jsonl";
  std::string out;
  ASSERT_EQ(run({"serve", "--streams", "2", "--workers", "1", "--units",
                 "32", "--window", "16", "--seed", "11", "--metrics-out",
                 path, "--metrics-every", "50"},
                &out),
            0);
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line, last;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    last = line;
    // Every line is one self-describing JSON object.
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"schema\":\"tiresias_metrics/v1\""),
              std::string::npos);
  }
  // At minimum the final post-drain line is present.
  ASSERT_GE(lines, 1u);
  EXPECT_NE(last.find("\"units_processed\":64"), std::string::npos);
  EXPECT_NE(last.find("\"stages\":{"), std::string::npos);
  EXPECT_NE(last.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(last.find("\"engine.unit_latency\""), std::string::npos);
  EXPECT_NE(last.find("\"p99_us\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, ServeMetricsEveryRequiresMetricsOut) {
  std::string err;
  EXPECT_EQ(run({"serve", "--streams", "1", "--metrics-every", "100"},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("--metrics-every requires --metrics-out"),
            std::string::npos);
  EXPECT_EQ(run({"serve", "--streams", "1", "--metrics-out", "x.jsonl",
                 "--metrics-every", "0"},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("must be positive"), std::string::npos);
}

TEST(Cli, ServeRejectsZeroStreams) {
  std::string err;
  EXPECT_EQ(run({"serve", "--streams", "0"}, nullptr, &err), 2);
  EXPECT_NE(err.find("must be positive"), std::string::npos);
}

TEST(Cli, ServeMapsDeprecatedShardsToWorkers) {
  std::string out, err;
  ASSERT_EQ(run({"serve", "--streams", "2", "--shards", "3", "--units", "24",
                 "--window", "8"},
                &out, &err),
            0);
  EXPECT_NE(err.find("--shards is deprecated"), std::string::npos);
  EXPECT_NE(out.find("engine: 2 streams, 3 workers"), std::string::npos);
  // The mapping is a bridge, not an alias: combining both is an error.
  EXPECT_EQ(run({"serve", "--streams", "2", "--shards", "3", "--workers",
                 "2"},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("cannot be combined"), std::string::npos);
}

/// Typos must fail loudly: unknown options were previously ignored, so
/// `--shard 4` (for --shards, itself now deprecated) silently ran with
/// defaults.
TEST(Cli, RejectsUnknownOptions) {
  std::string err;
  EXPECT_EQ(run({"serve", "--shard", "4"}, nullptr, &err), 2);
  EXPECT_NE(err.find("unknown option '--shard'"), std::string::npos);
  EXPECT_NE(err.find("usage:"), std::string::npos);
  EXPECT_EQ(run({"generate", "--dataset", "ccd-net", "--out", "/tmp/x.csv",
                 "--sede", "7"},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("unknown option '--sede'"), std::string::npos);
  EXPECT_EQ(run({"hierarchy", "--dataset", "scd", "--verbose"}, nullptr,
                &err),
            2);
  EXPECT_NE(err.find("unknown option '--verbose'"), std::string::npos);
}

/// Duplicated single-use options are ambiguous (the parser keeps the last
/// occurrence); they are rejected instead of silently last-winning. The
/// explicitly repeatable option (--spike) stays repeatable.
TEST(Cli, RejectsDuplicateSingleUseOptions) {
  std::string err;
  EXPECT_EQ(run({"serve", "--streams", "2", "--streams", "3"}, nullptr,
                &err),
            2);
  EXPECT_NE(err.find("option '--streams' given 2 times"), std::string::npos);
  EXPECT_EQ(run({"detect", "--dataset", "scd", "--dataset", "ccd-net",
                 "--trace", "t.csv"},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("option '--dataset' given 2 times"), std::string::npos);
}

/// Value typos fail as loudly as option-name typos: a non-numeric value
/// for a numeric option is a usage error, not an uncaught std::stoll
/// exception terminating the process.
TEST(Cli, RejectsNonNumericOptionValues) {
  std::string err;
  EXPECT_EQ(run({"serve", "--workers", "two"}, nullptr, &err), 2);
  EXPECT_NE(err.find("bad numeric value 'two' for --workers"),
            std::string::npos);
  EXPECT_EQ(run({"serve", "--streams", "3x"}, nullptr, &err), 2);
  EXPECT_NE(err.find("bad numeric value '3x' for --streams"),
            std::string::npos);
  EXPECT_EQ(run({"serve", "--budget", "99999999999999999999"}, nullptr,
                &err),
            2);
  EXPECT_NE(err.find("bad numeric value"), std::string::npos);
  EXPECT_EQ(run({"detect", "--dataset", "scd", "--trace", "t.csv",
                 "--theta", "high"},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("bad numeric value 'high' for --theta"),
            std::string::npos);
  EXPECT_EQ(run({"generate", "--dataset", "scd", "--out", "/tmp/x.csv",
                 "--days", ""},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("bad numeric value '' for --days"), std::string::npos);
  EXPECT_EQ(run({"analyze", "--dataset", "scd", "--trace", "t.csv",
                 "--unit-minutes", "-5"},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("--unit-minutes must be positive"), std::string::npos);
}

TEST(Cli, RejectsStrayPositionalArguments) {
  std::string err;
  EXPECT_EQ(run({"hierarchy", "--dataset", "scd", "extra"}, nullptr, &err),
            2);
  EXPECT_NE(err.find("unexpected argument 'extra'"), std::string::npos);
}

TEST(Cli, MissingHierarchyFileFails) {
  std::string err;
  EXPECT_EQ(run({"hierarchy", "--hierarchy", "/nonexistent/x.txt"}, nullptr,
                &err),
            2);
  EXPECT_NE(err.find("cannot open --hierarchy"), std::string::npos);
}

TEST(Cli, AnalyzeRejectsShortTrace) {
  const std::string trace = ::testing::TempDir() + "/cli_short.csv";
  {
    std::ofstream f(trace);
    f << "VHO0/IO0/CO0/DSLAM0,100\n";
  }
  std::string err;
  EXPECT_EQ(run({"analyze", "--dataset", "ccd-net", "--scale", "test",
                 "--trace", trace},
                nullptr, &err),
            1);
  EXPECT_NE(err.find("too short"), std::string::npos);
  std::remove(trace.c_str());
}

}  // namespace
}  // namespace tiresias::tools
