// Unit tests for the FFT and periodogram.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "analysis/fft.h"
#include "common/rng.h"

namespace tiresias {
namespace {

TEST(Fft, InverseRoundTrip) {
  Rng rng(31);
  std::vector<std::complex<double>> data(64);
  for (auto& x : data) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto original = data;
  fft(data);
  fft(data, /*inverse=*/true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-9);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-9);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(37);
  std::vector<std::complex<double>> data(128);
  double timeEnergy = 0.0;
  for (auto& x : data) {
    x = {rng.uniform(-1, 1), 0.0};
    timeEnergy += std::norm(x);
  }
  fft(data);
  double freqEnergy = 0.0;
  for (const auto& x : data) freqEnergy += std::norm(x);
  EXPECT_NEAR(freqEnergy / 128.0, timeEnergy, 1e-9);
}

TEST(Fft, NextPow2) {
  EXPECT_EQ(nextPow2(1), 1u);
  EXPECT_EQ(nextPow2(2), 2u);
  EXPECT_EQ(nextPow2(3), 4u);
  EXPECT_EQ(nextPow2(1000), 1024u);
}

TEST(Fft, RejectsNonPow2) {
  std::vector<std::complex<double>> data(48);
  EXPECT_DEATH(fft(data), "power of 2");
}

std::vector<double> sinusoid(std::size_t n, double period, double amp,
                             double offset = 0.0) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = offset + amp * std::sin(2.0 * std::numbers::pi *
                                     static_cast<double>(i) / period);
  }
  return out;
}

TEST(Periodogram, FindsSinglePeriod) {
  const auto signal = sinusoid(512, 32.0, 5.0, 100.0);
  const auto top = dominantPeriods(signal, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_NEAR(top[0].period, 32.0, 2.0);
}

TEST(Periodogram, FindsTwoPeriodsStrongestFirst) {
  auto signal = sinusoid(1024, 24.0, 10.0, 50.0);
  const auto weekly = sinusoid(1024, 168.0, 4.0);
  for (std::size_t i = 0; i < signal.size(); ++i) signal[i] += weekly[i];
  const auto top = dominantPeriods(signal, 4);
  ASSERT_GE(top.size(), 2u);
  EXPECT_NEAR(top[0].period, 24.0, 2.0);
  bool foundWeekly = false;
  for (const auto& line : top) {
    if (std::abs(line.period - 168.0) < 25.0) foundWeekly = true;
  }
  EXPECT_TRUE(foundWeekly);
  EXPECT_GT(top[0].magnitude, magnitudeNearPeriod(periodogram(signal), 168.0));
}

TEST(Periodogram, NoisySignalStillPeaks) {
  Rng rng(41);
  auto signal = sinusoid(512, 48.0, 8.0, 20.0);
  for (auto& v : signal) v += rng.normal(0.0, 2.0);
  const auto top = dominantPeriods(signal, 1);
  ASSERT_FALSE(top.empty());
  EXPECT_NEAR(top[0].period, 48.0, 4.0);
}

TEST(Periodogram, MagnitudeNearPeriodPicksClosestLine) {
  const auto spec = periodogram(sinusoid(256, 16.0, 1.0));
  const double at16 = magnitudeNearPeriod(spec, 16.0);
  const double at100 = magnitudeNearPeriod(spec, 100.0);
  EXPECT_GT(at16, at100 * 5.0);
}

}  // namespace
}  // namespace tiresias
