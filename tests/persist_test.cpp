// Round-trip property tests for the persist subsystem (src/persist/ and
// every component's saveState/loadState): randomized state -> save ->
// load into a fresh object -> identical observable state AND bit-identical
// subsequent outputs. The forecasters, rings, detectors and pipeline are
// all deterministic, so "feed both copies the same future and compare
// exactly" is the strongest equivalence there is.
#include <gtest/gtest.h>

#include <random>

#include "core/ada.h"
#include "core/multiscale_detector.h"
#include "core/pipeline.h"
#include "core/split_rules.h"
#include "core/sta.h"
#include "hierarchy/builder.h"
#include "persist/snapshot.h"
#include "report/concurrent_store.h"
#include "report/store.h"
#include "timeseries/ewma.h"
#include "timeseries/holt_winters.h"
#include "timeseries/multiscale.h"
#include "timeseries/ring.h"

namespace tiresias {
namespace {

using persist::Deserializer;
using persist::Serializer;

/// save -> reload helper: returns a Deserializer over the saved bytes
/// (kept alive by the caller-owned Serializer).
template <typename T>
Serializer saved(const T& object) {
  Serializer out;
  object.saveState(out);
  return out;
}

TEST(Snapshot, PrimitivesRoundTrip) {
  Serializer out;
  out.u8(0xAB);
  out.u32(0xDEADBEEF);
  out.u64(0x0123456789ABCDEFull);
  out.i64(-42);
  out.f64(3.141592653589793);
  out.f64(-0.0);
  out.boolean(true);
  out.boolean(false);
  out.str("hello/world");
  out.str("");

  Deserializer in(out.data());
  EXPECT_EQ(in.u8(), 0xAB);
  EXPECT_EQ(in.u32(), 0xDEADBEEFu);
  EXPECT_EQ(in.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(in.i64(), -42);
  EXPECT_EQ(in.f64(), 3.141592653589793);
  const double negZero = in.f64();
  EXPECT_EQ(negZero, 0.0);
  EXPECT_TRUE(std::signbit(negZero));
  EXPECT_TRUE(in.boolean());
  EXPECT_FALSE(in.boolean());
  EXPECT_EQ(in.str(), "hello/world");
  EXPECT_EQ(in.str(), "");
  EXPECT_TRUE(in.atEnd());
}

TEST(Snapshot, SectionsRoundTripWithCrc) {
  persist::SnapshotWriter writer;
  Serializer a, b;
  a.u64(7);
  b.str("payload");
  writer.addSection(10, a);
  writer.addSection(20, b);
  const auto bytes = writer.encode();

  const auto reader = persist::SnapshotReader::parse(bytes);
  ASSERT_EQ(reader.sections().size(), 2u);
  EXPECT_EQ(reader.sections()[0].tag, 10u);
  EXPECT_EQ(reader.sections()[1].tag, 20u);
  Deserializer in(reader.sections()[1].payload);
  EXPECT_EQ(in.str(), "payload");
}

TEST(Snapshot, CrcMatchesKnownVector) {
  // CRC-32("123456789") == 0xCBF43926 (the classic check value).
  const std::string s = "123456789";
  EXPECT_EQ(persist::crc32(std::span(
                reinterpret_cast<const std::uint8_t*>(s.data()), s.size())),
            0xCBF43926u);
}

TEST(RingPersist, RandomizedRoundTrip) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> value(-100.0, 100.0);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t capacity = 1 + rng() % 32;
    const std::size_t pushes = rng() % (3 * capacity);
    RingSeries ring(capacity);
    for (std::size_t i = 0; i < pushes; ++i) ring.push(value(rng));

    const Serializer bytes = saved(ring);
    RingSeries restored;  // default-constructed: shape comes from the bytes
    Deserializer in(bytes.data());
    restored.loadState(in);
    EXPECT_TRUE(in.atEnd());

    EXPECT_EQ(restored.capacity(), ring.capacity());
    EXPECT_EQ(restored.toVector(), ring.toVector());
    // Subsequent pushes behave identically (eviction order preserved).
    for (int i = 0; i < 20; ++i) {
      const double v = value(rng);
      ring.push(v);
      restored.push(v);
    }
    EXPECT_EQ(restored.toVector(), ring.toVector());
  }
}

TEST(ForecasterPersist, EwmaRoundTrip) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> value(0.0, 50.0);
  for (int warm = 0; warm < 5; ++warm) {
    EwmaForecaster model(0.3);
    for (int i = 0; i < warm * 3; ++i) model.update(value(rng));

    const Serializer bytes = saved(model);
    EwmaForecaster restored(0.9);  // alpha is overwritten from the snapshot
    Deserializer in(bytes.data());
    restored.loadState(in);

    EXPECT_EQ(restored.alpha(), model.alpha());
    for (int i = 0; i < 25; ++i) {
      EXPECT_EQ(restored.forecast(), model.forecast());
      const double v = value(rng);
      model.update(v);
      restored.update(v);
    }
  }
}

TEST(ForecasterPersist, HoltWintersRoundTripAcrossBootstrap) {
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> value(0.0, 50.0);
  const std::vector<SeasonSpec> seasons{{4, 0.7}, {6, 0.3}};
  // Feed counts spanning the pre-bootstrap buffer (< 12), the bootstrap
  // point, and deep post-bootstrap operation.
  for (const int feed : {0, 3, 11, 12, 13, 40}) {
    HoltWintersForecaster model({0.5, 0.1, 0.3}, seasons);
    for (int i = 0; i < feed; ++i) model.update(value(rng));

    const Serializer bytes = saved(model);
    // Restored instance starts with a different shape on purpose: the
    // snapshot overwrites it.
    HoltWintersForecaster restored({0.9, 0.9, 0.9}, {});
    Deserializer in(bytes.data());
    restored.loadState(in);

    EXPECT_EQ(restored.bootstrapped(), model.bootstrapped());
    for (int i = 0; i < 30; ++i) {
      EXPECT_EQ(restored.forecast(), model.forecast()) << "feed=" << feed;
      const double v = value(rng);
      model.update(v);
      restored.update(v);
    }
  }
}

TEST(ForecasterPersist, TypeMismatchIsCleanError) {
  EwmaForecaster ewma(0.5);
  const Serializer bytes = saved(ewma);
  HoltWintersForecaster hw({0.5, 0.1, 0.3}, {});
  Deserializer in(bytes.data());
  EXPECT_THROW(hw.loadState(in), persist::SnapshotError);
}

TEST(MultiScalePersist, RandomizedRoundTrip) {
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> value(0.0, 10.0);
  for (const std::size_t pushes : {0u, 1u, 5u, 23u, 100u}) {
    MultiScaleSeries series(3, 4, 16, 0.5);
    for (std::size_t i = 0; i < pushes; ++i) series.push(value(rng));

    const Serializer bytes = saved(series);
    MultiScaleSeries restored(1, 2, 1, 0.1);  // shape overwritten
    Deserializer in(bytes.data());
    restored.loadState(in);
    EXPECT_TRUE(in.atEnd());

    ASSERT_EQ(restored.scales(), series.scales());
    EXPECT_EQ(restored.lambda(), series.lambda());
    EXPECT_EQ(restored.pushCount(), series.pushCount());
    // Continue pushing through cascade boundaries on both copies.
    for (int i = 0; i < 40; ++i) {
      const double v = value(rng);
      series.push(v);
      restored.push(v);
    }
    for (std::size_t s = 0; s < series.scales(); ++s) {
      EXPECT_EQ(restored.actual(s).toVector(), series.actual(s).toVector());
      EXPECT_EQ(restored.forecastSeries(s).toVector(),
                series.forecastSeries(s).toVector());
    }
  }
}

TEST(SplitRulePersist, EveryRuleRoundTrips) {
  std::mt19937_64 rng(19);
  std::uniform_real_distribution<double> weight(0.0, 30.0);
  for (const SplitRule rule :
       {SplitRule::kUniform, SplitRule::kLastTimeUnit,
        SplitRule::kLongTermHistory, SplitRule::kEwma}) {
    SplitRuleEngine engine(rule, 0.4);
    for (int inst = 0; inst < 12; ++inst) {
      std::vector<std::pair<NodeId, double>> raws;
      for (NodeId n = 0; n < 8; ++n) {
        if (rng() % 2) raws.emplace_back(n, weight(rng));
      }
      engine.observeInstance(raws);
    }

    const Serializer bytes = saved(engine);
    SplitRuleEngine restored(SplitRule::kUniform, 0.9);  // overwritten
    Deserializer in(bytes.data());
    restored.loadState(in);
    EXPECT_TRUE(in.atEnd());

    EXPECT_EQ(restored.rule(), engine.rule());
    EXPECT_EQ(restored.trackedNodes(), engine.trackedNodes());
    for (NodeId n = 0; n < 8; ++n) {
      EXPECT_EQ(restored.weightOf(n), engine.weightOf(n));
    }
    const std::vector<NodeId> group{1, 2, 5};
    EXPECT_EQ(restored.ratios(group), engine.ratios(group));
    // Future observations keep both copies in lockstep (EWMA lazy decay
    // depends on the persisted instance counter).
    engine.observeInstance({{3, 7.0}});
    restored.observeInstance({{3, 7.0}});
    for (NodeId n = 0; n < 8; ++n) {
      EXPECT_EQ(restored.weightOf(n), engine.weightOf(n));
    }
  }
}

// --- Detector-level round trips -------------------------------------------

DetectorConfig detectorConfig(std::size_t window) {
  DetectorConfig cfg;
  cfg.theta = 6.0;
  cfg.windowLength = window;
  cfg.ratioThreshold = 2.0;
  cfg.diffThreshold = 3.0;
  cfg.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
  return cfg;
}

TimeUnitBatch randomBatch(TimeUnit unit, const Hierarchy& h,
                          std::mt19937_64& rng, std::size_t maxPerLeaf = 6) {
  TimeUnitBatch b;
  b.unit = unit;
  for (NodeId leaf : h.leaves()) {
    const std::size_t count = rng() % (maxPerLeaf + 1);
    for (std::size_t i = 0; i < count; ++i) {
      b.records.push_back({leaf, unitStart(unit, 900)});
    }
  }
  return b;
}

void expectSameResult(const std::optional<InstanceResult>& a,
                      const std::optional<InstanceResult>& b, TimeUnit unit) {
  ASSERT_EQ(a.has_value(), b.has_value()) << "unit " << unit;
  if (!a) return;
  EXPECT_EQ(a->unit, b->unit);
  EXPECT_EQ(a->shhh, b->shhh) << "unit " << unit;
  EXPECT_EQ(a->anomalies, b->anomalies) << "unit " << unit;
}

template <typename DetectorT>
void runDetectorRoundTrip(std::size_t checkpointAfter) {
  const auto h = HierarchyBuilder::balanced({3, 2, 2});
  std::mt19937_64 rng(23 + checkpointAfter);
  DetectorT original(h, detectorConfig(8));
  for (TimeUnit u = 0; u < static_cast<TimeUnit>(checkpointAfter); ++u) {
    original.step(randomBatch(u, h, rng));
  }

  const Serializer bytes = saved(original);
  DetectorT restored(h, detectorConfig(8));
  Deserializer in(bytes.data());
  restored.loadState(in);
  EXPECT_TRUE(in.atEnd());

  EXPECT_EQ(restored.currentShhh(), original.currentShhh());
  for (NodeId n = 0; n < h.size(); ++n) {
    EXPECT_EQ(restored.seriesOf(n), original.seriesOf(n));
    EXPECT_EQ(restored.forecastSeriesOf(n), original.forecastSeriesOf(n));
  }
  // Identical subsequent outputs, including occasional spikes that force
  // splits/merges in ADA.
  for (TimeUnit u = static_cast<TimeUnit>(checkpointAfter);
       u < static_cast<TimeUnit>(checkpointAfter) + 24; ++u) {
    auto batch = randomBatch(u, h, rng);
    if (u % 7 == 0 && !h.leaves().empty()) {
      for (int i = 0; i < 40; ++i) {
        batch.records.push_back({h.leaves()[0], unitStart(u, 900)});
      }
    }
    expectSameResult(restored.step(batch), original.step(batch), u);
    EXPECT_EQ(restored.currentShhh(), original.currentShhh()) << u;
  }
}

TEST(DetectorPersist, StaRoundTripMidWarmup) { runDetectorRoundTrip<StaDetector>(3); }
TEST(DetectorPersist, StaRoundTripWarm) { runDetectorRoundTrip<StaDetector>(20); }
TEST(DetectorPersist, AdaRoundTripMidBootstrap) {
  runDetectorRoundTrip<AdaDetector>(5);
}
TEST(DetectorPersist, AdaRoundTripAdaptive) {
  runDetectorRoundTrip<AdaDetector>(30);
}

// The detectors' slot-table storage hands out slots in acquisition order
// (splits/merges/free-list reuse scramble it), but the snapshot encoding
// must stay the canonical ascending-node byte stream of the historical
// map-based storage: save -> load into a fresh detector -> save must
// reproduce the exact bytes, and a second generation of churn after the
// restore must keep the copies in lockstep.
template <typename DetectorT>
void runSnapshotByteStability() {
  const auto h = HierarchyBuilder::balanced({3, 2, 2});
  std::mt19937_64 rng(57);
  DetectorT original(h, detectorConfig(8));
  // Churn: shifting hot spots force ADA splits/merges (slot reuse) and
  // rotate STA's raw-aggregate slot table through its free list.
  for (TimeUnit u = 0; u < 40; ++u) {
    auto batch = randomBatch(u, h, rng, 3);
    const NodeId hot = h.leaves()[static_cast<std::size_t>(u / 6) %
                                  h.leafCount()];
    for (int i = 0; i < 30; ++i) {
      batch.records.push_back({hot, unitStart(u, 900)});
    }
    original.step(batch);
  }

  const Serializer bytes = saved(original);
  DetectorT restored(h, detectorConfig(8));
  Deserializer in(bytes.data());
  restored.loadState(in);
  EXPECT_TRUE(in.atEnd());

  const Serializer again = saved(restored);
  ASSERT_EQ(again.size(), bytes.size());
  EXPECT_TRUE(std::equal(bytes.data().begin(), bytes.data().end(),
                         again.data().begin()))
      << "snapshot bytes changed across a load/save round trip";

  // Post-restore churn stays bit-identical too (and so do its snapshots).
  for (TimeUnit u = 40; u < 60; ++u) {
    const auto batch = randomBatch(u, h, rng, 4);
    expectSameResult(restored.step(batch), original.step(batch), u);
  }
  const Serializer finalOriginal = saved(original);
  const Serializer finalRestored = saved(restored);
  ASSERT_EQ(finalOriginal.size(), finalRestored.size());
  EXPECT_TRUE(std::equal(finalOriginal.data().begin(),
                         finalOriginal.data().end(),
                         finalRestored.data().begin()));
}

TEST(DetectorPersist, StaSnapshotBytesStableAcrossRoundTrip) {
  runSnapshotByteStability<StaDetector>();
}
TEST(DetectorPersist, AdaSnapshotBytesStableAcrossRoundTrip) {
  runSnapshotByteStability<AdaDetector>();
}

TEST(DetectorPersist, AdaDetectorTagMismatchIsCleanError) {
  const auto h = HierarchyBuilder::balanced({2, 2});
  StaDetector sta(h, detectorConfig(4));
  const Serializer bytes = saved(sta);
  AdaDetector ada(h, detectorConfig(4));
  Deserializer in(bytes.data());
  EXPECT_THROW(ada.loadState(in), persist::SnapshotError);
}

TEST(DetectorPersist, SlidingScaleRoundTrip) {
  const auto h = HierarchyBuilder::balanced({2, 3});
  std::mt19937_64 rng(29);
  SlidingScaleConfig scale;
  scale.lambda = 4;
  SlidingScaleDetector original(h, detectorConfig(12), scale);
  SlidingScaleDetector restored(h, detectorConfig(12), scale);
  for (TimeUnit u = 0; u < 18; ++u) original.step(randomBatch(u, h, rng));

  const Serializer bytes = saved(original);
  Deserializer in(bytes.data());
  restored.loadState(in);

  std::mt19937_64 futureRng(31);
  for (TimeUnit u = 18; u < 40; ++u) {
    const auto batch = randomBatch(u, h, futureRng);
    expectSameResult(restored.step(batch), original.step(batch), u);
  }
}

// --- Batcher position ------------------------------------------------------

TEST(BatcherPersist, ResumesOnARepositionedSource) {
  std::mt19937_64 rng(37);
  std::vector<Record> trace;
  Timestamp t = 100;
  for (int i = 0; i < 500; ++i) {
    t += static_cast<Timestamp>(rng() % 40);
    trace.push_back({static_cast<NodeId>(rng() % 4), t});
  }
  const Duration delta = 120;

  // Uninterrupted reference run.
  std::vector<TimeUnitBatch> reference;
  {
    VectorSource source(trace);
    TimeUnitBatcher batcher(source, delta, 0, /*chunkSize=*/32);
    TimeUnitBatch b;
    while (batcher.next(b)) reference.push_back(b);
  }

  for (const std::size_t splitAt : {0u, 1u, 3u, 7u}) {
    VectorSource source(trace);
    TimeUnitBatcher first(source, delta, 0, 32);
    TimeUnitBatch b;
    std::vector<TimeUnitBatch> units;
    for (std::size_t i = 0; i < splitAt && first.next(b); ++i) units.push_back(b);

    const Serializer bytes = saved(first);
    // A second source positioned exactly past what the first batcher
    // consumed (delivered + read-ahead); the snapshot carries the
    // read-ahead records themselves.
    std::vector<Record> rest(trace.begin() + static_cast<std::ptrdiff_t>(
                                                 first.consumedRecords()),
                             trace.end());
    VectorSource resumedSource(rest);
    TimeUnitBatcher resumed(resumedSource, delta, 0, 32);
    Deserializer in(bytes.data());
    resumed.loadState(in);
    EXPECT_TRUE(in.atEnd());
    EXPECT_EQ(resumed.droppedRecords(), first.droppedRecords());

    while (resumed.next(b)) units.push_back(b);
    ASSERT_EQ(units.size(), reference.size()) << "splitAt=" << splitAt;
    for (std::size_t i = 0; i < units.size(); ++i) {
      EXPECT_EQ(units[i].unit, reference[i].unit);
      EXPECT_EQ(units[i].records, reference[i].records) << "unit " << i;
    }
  }
}

// --- Pipeline --------------------------------------------------------------

std::vector<Record> pipelineTrace(std::size_t units, Duration delta,
                                  const Hierarchy& h, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Record> trace;
  for (std::size_t u = 0; u < units; ++u) {
    for (NodeId leaf : h.leaves()) {
      // Mild diurnal shape so the Step-3 seasonality analysis has
      // something to find.
      const std::size_t base = 2 + (u % 8 < 4 ? 3 : 0);
      const std::size_t count = base + rng() % 3;
      for (std::size_t i = 0; i < count; ++i) {
        trace.push_back(
            {leaf, unitStart(static_cast<TimeUnit>(u), delta) +
                       static_cast<Timestamp>(rng() % static_cast<std::uint64_t>(
                                                  delta))});
      }
    }
  }
  std::sort(trace.begin(), trace.end(),
            [](const Record& a, const Record& b) { return a.time < b.time; });
  return trace;
}

void runPipelineRoundTrip(bool deriveFactory, std::size_t splitUnits) {
  const auto h = HierarchyBuilder::balanced({2, 2, 2});
  const Duration delta = 900;
  const std::size_t totalUnits = 64;
  PipelineConfig cfg;
  cfg.delta = delta;
  cfg.detector.theta = 5.0;
  cfg.detector.windowLength = 24;
  if (!deriveFactory) {
    cfg.detector.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
  }
  cfg.candidatePeriods = {8};
  const auto trace = pipelineTrace(totalUnits, delta, h, 41);

  // Uninterrupted reference.
  report::AnomalyStore refStore(h);
  TiresiasPipeline reference(borrowHierarchy(h), cfg);
  VectorSource refSource(trace);
  const RunSummary refSummary = reference.run(
      refSource, [&](const InstanceResult& r) { refStore.add(r); });

  // Split run: process `splitUnits`, snapshot, restore into a fresh
  // pipeline, replay the same source from the beginning (the restored
  // batching position skips the processed prefix).
  report::AnomalyStore splitStore(h);
  RunSummary summary;
  Serializer bytes;
  {
    TiresiasPipeline first(borrowHierarchy(h), cfg);
    VectorSource source(trace);
    TimeUnitBatcher batcher(source, delta, 0);
    TimeUnitBatch b;
    for (std::size_t i = 0; i < splitUnits && batcher.next(b); ++i) {
      first.processUnit(b, [&](const InstanceResult& r) { splitStore.add(r); },
                        summary);
    }
    first.saveState(bytes);
  }
  TiresiasPipeline restored(borrowHierarchy(h), cfg);
  {
    Deserializer in(bytes.data());
    restored.loadState(in);
    EXPECT_TRUE(in.atEnd());
  }
  EXPECT_EQ(restored.resumeTime(),
            unitStart(static_cast<TimeUnit>(splitUnits), delta));
  VectorSource resumeSource(trace);
  const RunSummary tail = restored.run(
      resumeSource, [&](const InstanceResult& r) { splitStore.add(r); });

  EXPECT_EQ(summary.unitsProcessed + tail.unitsProcessed,
            refSummary.unitsProcessed);
  EXPECT_EQ(summary.recordsProcessed + tail.recordsProcessed,
            refSummary.recordsProcessed);
  EXPECT_EQ(summary.instancesDetected + tail.instancesDetected,
            refSummary.instancesDetected);
  EXPECT_EQ(summary.anomaliesReported + tail.anomaliesReported,
            refSummary.anomaliesReported);
  ASSERT_EQ(splitStore.size(), refStore.size());
  for (std::size_t i = 0; i < refStore.size(); ++i) {
    EXPECT_EQ(splitStore.all()[i].anomaly, refStore.all()[i].anomaly) << i;
  }
}

TEST(PipelinePersist, RoundTripDuringWarmupSuppliedFactory) {
  runPipelineRoundTrip(false, 10);
}
TEST(PipelinePersist, RoundTripAfterWarmupSuppliedFactory) {
  runPipelineRoundTrip(false, 40);
}
TEST(PipelinePersist, RoundTripDerivedFactoryRebuildsSeasonality) {
  runPipelineRoundTrip(true, 40);
}
TEST(PipelinePersist, RoundTripDerivedFactoryDuringWarmup) {
  runPipelineRoundTrip(true, 12);
}

TEST(PipelinePersist, FactoryParameterMismatchIsCleanError) {
  // The fingerprint of the snapshot's factory (a fresh forecaster's
  // serialized state) must reject a restore under differently
  // parameterized models — otherwise restored holders and newly promoted
  // heavy hitters would run with mixed semantics.
  const auto h = HierarchyBuilder::balanced({2, 2});
  PipelineConfig cfg;
  cfg.delta = 900;
  cfg.detector.theta = 4.0;
  cfg.detector.windowLength = 4;
  cfg.detector.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
  TiresiasPipeline pipeline(borrowHierarchy(h), cfg);
  RunSummary summary;
  std::mt19937_64 rng(47);
  for (TimeUnit u = 0; u < 6; ++u) {
    TimeUnitBatch b;
    b.unit = u;
    for (int i = 0; i < 12; ++i) {
      b.records.push_back({h.leaves()[rng() % h.leaves().size()],
                           unitStart(u, cfg.delta)});
    }
    pipeline.processUnit(b, nullptr, summary);
  }
  Serializer bytes;
  pipeline.saveState(bytes);

  PipelineConfig other = cfg;
  other.detector.forecasterFactory = std::make_shared<EwmaFactory>(0.9);
  TiresiasPipeline mismatched(borrowHierarchy(h), other);
  Deserializer in(bytes.data());
  EXPECT_THROW(mismatched.loadState(in), persist::SnapshotError);

  // Same parameters restore fine.
  TiresiasPipeline matched(borrowHierarchy(h), cfg);
  Deserializer again(bytes.data());
  matched.loadState(again);
  EXPECT_TRUE(again.atEnd());
}

TEST(PipelinePersist, ConfigMismatchIsCleanError) {
  const auto h = HierarchyBuilder::balanced({2, 2});
  PipelineConfig cfg;
  cfg.delta = 900;
  cfg.detector.windowLength = 8;
  cfg.detector.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
  TiresiasPipeline pipeline(borrowHierarchy(h), cfg);
  Serializer bytes;
  pipeline.saveState(bytes);

  PipelineConfig other = cfg;
  other.detector.windowLength = 16;
  TiresiasPipeline mismatched(borrowHierarchy(h), other);
  Deserializer in(bytes.data());
  EXPECT_THROW(mismatched.loadState(in), persist::SnapshotError);
}

// --- Report stores ---------------------------------------------------------

TEST(StorePersist, AnomalyStoreRoundTripRederivesPaths) {
  const auto h = HierarchyBuilder::balanced({2, 3});
  report::AnomalyStore store(h);
  std::mt19937_64 rng(43);
  for (int i = 0; i < 40; ++i) {
    Anomaly a;
    a.node = static_cast<NodeId>(rng() % h.size());
    a.unit = static_cast<TimeUnit>(i);
    a.actual = static_cast<double>(rng() % 1000) / 7.0;
    a.forecast = a.actual / 3.0;
    a.ratio = 3.0;
    store.add(a);
  }

  Serializer bytes;
  store.saveState(bytes);
  report::AnomalyStore restored(h);
  Deserializer in(bytes.data());
  restored.loadState(in);
  EXPECT_TRUE(in.atEnd());

  ASSERT_EQ(restored.size(), store.size());
  for (std::size_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(restored.all()[i].anomaly, store.all()[i].anomaly);
    EXPECT_EQ(restored.all()[i].path, store.all()[i].path);
    EXPECT_EQ(restored.all()[i].depth, store.all()[i].depth);
  }
}

TEST(StorePersist, ConcurrentStoreRoundTripPerStream) {
  const auto h1 = HierarchyBuilder::balanced({2, 2});
  const auto h2 = HierarchyBuilder::balanced({3});
  report::ConcurrentAnomalyStore store;
  store.registerStream("alpha", h1);
  store.registerStream("beta", h2);
  InstanceResult r;
  r.unit = 5;
  r.anomalies.push_back({1, 5, 10.0, 2.0, 5.0});
  store.add("alpha", r);
  store.add("beta", r);
  store.add("beta", r);

  Serializer bytes;
  store.saveState(bytes);
  report::ConcurrentAnomalyStore restored;
  restored.registerStream("alpha", h1);
  restored.registerStream("beta", h2);
  Deserializer in(bytes.data());
  restored.loadState(in);

  EXPECT_EQ(restored.totalSize(), store.totalSize());
  EXPECT_EQ(restored.store("alpha").size(), 1u);
  EXPECT_EQ(restored.store("beta").size(), 2u);
  EXPECT_EQ(restored.store("beta").all()[0].anomaly, r.anomalies[0]);

  // A snapshot naming an unregistered stream is a clean error.
  report::ConcurrentAnomalyStore missing;
  missing.registerStream("alpha", h1);
  Deserializer again(bytes.data());
  EXPECT_THROW(missing.loadState(again), persist::SnapshotError);
}

}  // namespace
}  // namespace tiresias
