// End-to-end integration tests: multi-level anomaly localization, ADA vs
// STA agreement under realistic workloads, SCD behaviour, and failure
// injection (malformed inputs, degenerate streams).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "core/ada.h"
#include "core/pipeline.h"
#include "core/sta.h"
#include "eval/comparison.h"
#include "eval/reference_method.h"
#include "report/store.h"
#include "timeseries/ewma.h"
#include "workload/ccd.h"
#include "workload/scd.h"

namespace tiresias {
namespace {

using namespace tiresias::workload;

DetectorConfig ewmaConfig(std::size_t window, double theta) {
  DetectorConfig cfg;
  cfg.theta = theta;
  cfg.windowLength = window;
  cfg.ratioThreshold = 2.8;
  cfg.diffThreshold = 8.0;
  cfg.referenceLevels = 2;
  cfg.forecasterFactory = std::make_shared<EwmaFactory>(0.3);
  return cfg;
}

TEST(Integration, LocalizesSpikesAtMultipleLevels) {
  const auto spec = ccdNetworkWorkload(Scale::kTest);
  const auto& h = spec.hierarchy;
  GroundTruthLedger ledger;
  const NodeId vho = h.find("VHO2");
  const NodeId co = h.find("VHO0/IO0/CO1");
  ledger.add({vho, 70, 3, 120.0});
  ledger.add({co, 90, 3, 70.0});
  auto injector = std::make_shared<AnomalyInjector>(h, ledger);
  GeneratorSource src(spec, 0, 120, 5, injector);

  AdaDetector ada(h, ewmaConfig(48, 8.0));
  TimeUnitBatcher batcher(src, spec.unit, 0);
  std::vector<eval::LocatedEvent> detections;
  while (auto b = batcher.next()) {
    if (auto r = ada.step(*b)) {
      for (const auto& a : r->anomalies) {
        detections.push_back({a.node, a.unit});
      }
    }
  }
  auto hitNear = [&](NodeId target, TimeUnit from, TimeUnit to) {
    for (const auto& d : detections) {
      if (d.unit >= from && d.unit <= to &&
          (h.isAncestorOrEqual(target, d.node) ||
           h.isAncestorOrEqual(d.node, target))) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(hitNear(vho, 70, 72));
  EXPECT_TRUE(hitNear(co, 90, 92));
}

TEST(Integration, AdaMatchesStaHeavyHittersOnScd) {
  const auto spec = scdNetworkWorkload(Scale::kTest);
  GeneratorSource src(spec, 0, 80, 17);
  AdaDetector ada(spec.hierarchy, ewmaConfig(32, 6.0));
  StaDetector sta(spec.hierarchy, ewmaConfig(32, 6.0));
  TimeUnitBatcher batcher(src, spec.unit, 0);
  std::size_t checked = 0;
  while (auto b = batcher.next()) {
    auto ra = ada.step(*b);
    auto rs = sta.step(*b);
    ASSERT_EQ(ra.has_value(), rs.has_value());
    if (!ra) continue;
    EXPECT_EQ(ra->shhh, rs->shhh) << "unit " << b->unit;
    ++checked;
  }
  EXPECT_GT(checked, 40u);
}

TEST(Integration, TiresiasBeatsControlChartBelowVho) {
  // A CO-level spike that is small relative to its VHO aggregate: the
  // control chart at VHO level misses it, ADA finds it.
  const auto spec = ccdNetworkWorkload(Scale::kMedium);
  const auto& h = spec.hierarchy;
  // A low-share CO inside the busiest VHO: its baseline is ~2 records per
  // unit while VHO0 peaks near 85.
  const NodeId co = h.find("VHO0/IO4/CO3");
  const NodeId vho0 = h.find("VHO0");
  ASSERT_NE(co, kInvalidNode);
  GroundTruthLedger ledger;
  // Spike at unit 900 (a Monday morning in week 2): the chart's trailing
  // window then spans one full week, so its control band absorbs both the
  // diurnal and the weekend swings of the VHO aggregate. 15 extra records
  // per unit is ~8x the CO's baseline yet invisible at VHO granularity.
  const TimeUnit spikeAt = 900;
  ledger.add({co, spikeAt, 4, 15.0});
  auto injector = std::make_shared<AnomalyInjector>(h, ledger);
  GeneratorSource src(spec, 0, 960, 23, injector);

  AdaDetector ada(h, ewmaConfig(96, 10.0));
  eval::ControlChartConfig chartCfg;
  chartCfg.depth = 2;
  chartCfg.minHistory = 96;
  chartCfg.sigmas = 4.0;
  eval::ControlChartReference chart(h, chartCfg);

  TimeUnitBatcher batcher(src, spec.unit, 0);
  bool adaFound = false;
  bool chartFound = false;
  while (auto b = batcher.next()) {
    for (const auto& alarm : chart.step(*b)) {
      // Does the chart localize the spike (an alarm at the affected VHO)?
      if (alarm.unit >= spikeAt && alarm.unit < spikeAt + 4 &&
          alarm.node == vho0) {
        chartFound = true;
      }
    }
    if (auto r = ada.step(*b)) {
      for (const auto& a : r->anomalies) {
        if (a.unit >= spikeAt && a.unit < spikeAt + 4 &&
            h.isAncestorOrEqual(vho0, a.node)) {
          adaFound = true;
        }
      }
    }
  }
  EXPECT_TRUE(adaFound);
  EXPECT_FALSE(chartFound);
}

TEST(Integration, ScdQuieterThanCcdInSplitActivity) {
  // §VII-A: SCD's smaller variance means fewer splits. Compare split
  // counts under equal record budgets.
  auto run = [](const WorkloadSpec& spec, double theta) {
    GeneratorSource src(spec, 0, 96, 29);
    AdaDetector ada(spec.hierarchy, ewmaConfig(32, theta));
    TimeUnitBatcher batcher(src, spec.unit, 0);
    while (auto b = batcher.next()) ada.step(*b);
    return ada.splitCount();
  };
  const auto ccdSplits = run(ccdNetworkWorkload(Scale::kTest), 6.0);
  const auto scdSplits = run(scdNetworkWorkload(Scale::kTest), 6.0);
  EXPECT_LT(scdSplits, ccdSplits);
}

TEST(Integration, MalformedCsvTraceIsSkippedNotFatal) {
  const auto spec = ccdNetworkWorkload(Scale::kTest);
  const auto& h = spec.hierarchy;
  const std::string path = ::testing::TempDir() + "/bad_trace.csv";
  {
    std::ofstream out(path);
    out << h.path(h.leaves()[0]) << ",900\n";
    out << "garbage line without separator\n";
    out << ",,,\n";
    out << h.path(h.leaves()[1]) << ",1800\n";
  }
  CsvSource src(path, h);
  TimeUnitBatcher batcher(src, 900, 900);
  std::size_t records = 0;
  while (auto b = batcher.next()) records += b->records.size();
  EXPECT_EQ(records, 2u);
  EXPECT_EQ(src.skippedRecords(), 2u);
  std::remove(path.c_str());
}

TEST(Integration, SilentWorkloadProducesNoAnomalies) {
  const auto spec = ccdNetworkWorkload(Scale::kTest);
  AdaDetector ada(spec.hierarchy, ewmaConfig(16, 8.0));
  for (TimeUnit u = 0; u < 40; ++u) {
    TimeUnitBatch empty;
    empty.unit = u;
    if (auto r = ada.step(empty)) {
      EXPECT_TRUE(r->anomalies.empty());
      EXPECT_TRUE(r->shhh.empty());
    }
  }
}

TEST(Integration, StageTimersPopulated) {
  const auto spec = ccdNetworkWorkload(Scale::kTest);
  GeneratorSource src(spec, 0, 24, 31);
  AdaDetector ada(spec.hierarchy, ewmaConfig(16, 8.0));
  TimeUnitBatcher batcher(src, spec.unit, 0);
  while (auto b = batcher.next()) ada.step(*b);
  const auto& stages = ada.stages().stages();
  EXPECT_NE(std::find(stages.begin(), stages.end(), kStageUpdateHierarchies),
            stages.end());
  EXPECT_NE(std::find(stages.begin(), stages.end(), kStageCreateSeries),
            stages.end());
  EXPECT_NE(std::find(stages.begin(), stages.end(), kStageDetect),
            stages.end());
  EXPECT_GT(ada.stages().totalSeconds(), 0.0);
}

TEST(Integration, ReportStoreDrillDown) {
  // The paper's operator workflow: query the store for a time window, then
  // drill into one subtree.
  const auto spec = ccdNetworkWorkload(Scale::kTest);
  const auto& h = spec.hierarchy;
  GroundTruthLedger ledger;
  const NodeId io = h.find("VHO1/IO1");
  ledger.add({io, 50, 2, 100.0});
  auto injector = std::make_shared<AnomalyInjector>(h, ledger);
  GeneratorSource src(spec, 0, 70, 37, injector);

  PipelineConfig cfg;
  cfg.delta = spec.unit;
  cfg.detector = ewmaConfig(32, 8.0);
  TiresiasPipeline pipeline(borrowHierarchy(h), cfg);
  report::AnomalyStore store(h);
  pipeline.run(src, [&](const InstanceResult& r) { store.add(r); });

  report::Query q;
  q.fromUnit = 50;
  q.toUnit = 51;
  q.subtreeRoot = h.find("VHO1");
  EXPECT_FALSE(store.query(q).empty());
}

}  // namespace
}  // namespace tiresias
