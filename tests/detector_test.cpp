// Unit tests for the Definition-4 anomaly judgment.
#include <gtest/gtest.h>

#include <limits>

#include "core/detector.h"

namespace tiresias {
namespace {

TEST(Definition4, RequiresBothCriteria) {
  // RT = 2, DT = 5.
  EXPECT_TRUE(isAnomalous(20.0, 5.0, 2.0, 5.0));    // ratio 4, diff 15
  EXPECT_FALSE(isAnomalous(9.0, 5.0, 2.0, 5.0));    // diff 4 <= DT
  EXPECT_FALSE(isAnomalous(100.0, 60.0, 2.0, 5.0)); // ratio 1.67 <= RT
}

TEST(Definition4, BoundaryIsStrict) {
  // T/F > RT and T - F > DT are strict inequalities.
  EXPECT_FALSE(isAnomalous(10.0, 5.0, 2.0, 4.0));  // ratio exactly 2
  EXPECT_FALSE(isAnomalous(9.0, 4.0, 2.0, 5.0));   // diff exactly 5
  EXPECT_TRUE(isAnomalous(10.01, 5.0, 2.0, 5.0));
}

TEST(Definition4, NonPositiveForecast) {
  // Zero/negative forecast with a significant actual counts as anomalous.
  EXPECT_TRUE(isAnomalous(10.0, 0.0, 2.8, 8.0));
  EXPECT_TRUE(isAnomalous(10.0, -3.0, 2.8, 8.0));
  EXPECT_FALSE(isAnomalous(5.0, 0.0, 2.8, 8.0));  // diff 5 <= DT
  EXPECT_FALSE(isAnomalous(0.0, -20.0, 2.8, 8.0));  // nothing observed
}

TEST(Definition4, PeakAndDipGuards) {
  // The paper motivates the dual test: at peaks the absolute diff guards
  // against ratio noise on small forecasts; at dips the ratio guards
  // against small absolute bumps on large forecasts.
  EXPECT_FALSE(isAnomalous(3.0, 1.0, 2.8, 8.0));     // tiny spike at night
  EXPECT_FALSE(isAnomalous(1010.0, 1000.0, 2.8, 8.0));  // +10 at peak
  EXPECT_TRUE(isAnomalous(3000.0, 1000.0, 2.8, 8.0));
}

TEST(AnomalyRatio, CapsAndComputes) {
  EXPECT_DOUBLE_EQ(anomalyRatio(10.0, 4.0), 2.5);
  EXPECT_DOUBLE_EQ(anomalyRatio(10.0, 0.0),
                   std::numeric_limits<double>::max());
  EXPECT_DOUBLE_EQ(anomalyRatio(0.0, 0.0), 0.0);
}

}  // namespace
}  // namespace tiresias
