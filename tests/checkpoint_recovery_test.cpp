// Crash-recovery equivalence for DetectionEngine::checkpoint/restoreFrom:
// run K units, checkpoint mid-flight, destroy the engine (simulating a
// crash: everything in memory is lost, queued work discarded), build a
// fresh engine over re-created sources, restore, drain — the final
// streamSummary() of every stream and every per-stream anomaly report must
// be bit-identical to an uninterrupted run, at 1 worker and at 4.
//
// Also the EngineStats-tear regression: stats() polled concurrently with
// an active checkpoint must return a consistent CheckpointStats snapshot
// (the seqlock/atomic guard) — run under TSan in CI.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "engine/engine.h"
#include "persist/snapshot.h"
#include "report/concurrent_store.h"
#include "timeseries/ewma.h"
#include "workload/ccd.h"
#include "workload/scd.h"

namespace tiresias {
namespace {

using engine::DetectionEngine;
using engine::EngineConfig;
using workload::GeneratorSource;
using workload::Scale;
using workload::WorkloadSpec;

std::string tempSnapshotPath(const char* name) {
  return std::string(::testing::TempDir()) + "ckpt_" + name + "_" +
         std::to_string(::getpid()) + ".tsnap";
}

struct Fleet {
  std::vector<std::unique_ptr<WorkloadSpec>> specs;
  std::vector<std::string> names;
};

PipelineConfig fleetPipelineConfig(const WorkloadSpec& spec) {
  PipelineConfig cfg;
  cfg.delta = spec.unit;
  cfg.detector.theta = 8.0;
  cfg.detector.windowLength = 16;
  cfg.detector.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
  return cfg;
}

/// Registers `streams` generated streams (cycling the dataset presets,
/// deterministic per-stream seeds) on the engine and store.
Fleet registerFleet(DetectionEngine& eng, report::ConcurrentAnomalyStore& store,
                    std::size_t streams, TimeUnit units) {
  Fleet fleet;
  using Maker = WorkloadSpec (*)(Scale);
  static constexpr Maker kMakers[] = {workload::ccdNetworkWorkload,
                                      workload::ccdTroubleWorkload,
                                      workload::scdNetworkWorkload};
  for (std::size_t i = 0; i < streams; ++i) {
    fleet.specs.push_back(std::make_unique<WorkloadSpec>(
        kMakers[i % std::size(kMakers)](Scale::kTest)));
    WorkloadSpec& spec = *fleet.specs.back();
    const std::string name = "stream-" + std::to_string(i);
    fleet.names.push_back(name);
    if (!store.hasStream(name)) store.registerStream(name, spec.hierarchy);
    eng.addStream(name, borrowHierarchy(spec.hierarchy), fleetPipelineConfig(spec),
                  std::make_unique<GeneratorSource>(spec, 0, units, 100 + i));
  }
  return fleet;
}

EngineConfig engineConfig(std::size_t workers) {
  EngineConfig cfg;
  cfg.workers = workers;
  cfg.ingestThreads = 2;
  cfg.runBudget = 4;
  cfg.streamQueueCapacity = 8;
  cfg.totalQueueCapacity = 64;
  return cfg;
}

void expectSameSummary(const RunSummary& a, const RunSummary& b,
                       const std::string& name) {
  EXPECT_EQ(a.unitsProcessed, b.unitsProcessed) << name;
  EXPECT_EQ(a.recordsProcessed, b.recordsProcessed) << name;
  EXPECT_EQ(a.instancesDetected, b.instancesDetected) << name;
  EXPECT_EQ(a.anomaliesReported, b.anomaliesReported) << name;
  EXPECT_EQ(a.junkRowsSkipped, b.junkRowsSkipped) << name;
  EXPECT_EQ(a.warmupUnitsBuffered, b.warmupUnitsBuffered) << name;
}

void runRecoveryEquivalence(std::size_t workers) {
  const std::size_t kStreams = 5;
  const TimeUnit kUnits = 160;
  const std::string path = tempSnapshotPath("recovery");

  // Uninterrupted reference run.
  report::ConcurrentAnomalyStore refStore;
  std::vector<RunSummary> refSummaries;
  {
    DetectionEngine eng(engineConfig(workers), refStore.sink());
    const Fleet fleet = registerFleet(eng, refStore, kStreams, kUnits);
    (void)fleet;
    eng.start();
    eng.drain();
    for (std::size_t i = 0; i < eng.streamCount(); ++i) {
      refSummaries.push_back(eng.streamSummary(i));
    }
  }

  // Interrupted run: checkpoint once some real progress exists, then
  // "crash" (stop() discards the queued backlog, the engine dies).
  report::ConcurrentAnomalyStore lostStore;  // dies with the crash
  {
    DetectionEngine eng(engineConfig(workers), lostStore.sink());
    const Fleet fleet = registerFleet(eng, lostStore, kStreams, kUnits);
    (void)fleet;
    eng.start();
    while (eng.stats().unitsProcessed < kStreams * 40) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    eng.checkpoint(path, [&](persist::Serializer& s) {
      // The store snapshot rides inside the quiesced window, so it is
      // exactly consistent with the pipeline state in the same file.
      lostStore.saveState(s);
    });
    const auto st = eng.stats();
    EXPECT_EQ(st.checkpoint.checkpoints, 1u);
    EXPECT_GT(st.checkpoint.lastBytes, 0u);
    eng.stop();
  }

  // Recovery: fresh engine, fresh sources over the same full range (the
  // restored batching position skips the processed prefix), restore,
  // drain to completion.
  report::ConcurrentAnomalyStore store;
  DetectionEngine eng(engineConfig(workers), store.sink());
  const Fleet fleet = registerFleet(eng, store, kStreams, kUnits);
  const std::size_t restored = eng.restoreFrom(
      path, [&](persist::Deserializer& d) { store.loadState(d); });
  EXPECT_EQ(restored, kStreams);
  eng.start();
  const auto stats = eng.drain();
  EXPECT_EQ(stats.checkpoint.restores, 1u);

  for (std::size_t i = 0; i < eng.streamCount(); ++i) {
    expectSameSummary(eng.streamSummary(i), refSummaries[i], fleet.names[i]);
    // Per-stream anomaly reports, bit-identical and in order.
    const auto got = store.snapshot(fleet.names[i]);
    const auto want = refStore.snapshot(fleet.names[i]);
    ASSERT_EQ(got.size(), want.size()) << fleet.names[i];
    for (std::size_t k = 0; k < got.size(); ++k) {
      EXPECT_EQ(got[k].anomaly, want[k].anomaly) << fleet.names[i];
      EXPECT_EQ(got[k].path, want[k].path) << fleet.names[i];
    }
  }
  std::remove(path.c_str());
}

TEST(CheckpointRecovery, EquivalentToUninterruptedRunOneWorker) {
  runRecoveryEquivalence(1);
}

TEST(CheckpointRecovery, EquivalentToUninterruptedRunFourWorkers) {
  runRecoveryEquivalence(4);
}

/// Crash-recovery equivalence with the residency cap in play: the
/// checkpoint is taken while most of the fleet sits hibernated (cap 2
/// over 6 streams), so the snapshot splices each hibernated stream's
/// paged-out blob instead of calling saveState on a live pipeline. The
/// blob IS the saveState encoding, so recovery must still be
/// bit-identical to an uninterrupted unlimited-residency run — at 1 and
/// 4 workers, and with blobs in RAM or paged to --hibernate-dir files.
void runHibernatedCheckpointEquivalence(std::size_t workers, bool onDisk) {
  const std::size_t kStreams = 6;
  const TimeUnit kUnits = 96;
  const std::string path = tempSnapshotPath("hibernated");
  const std::string hibDir =
      std::string(::testing::TempDir()) + "hib_" + std::to_string(::getpid()) +
      "_" + std::to_string(workers) + (onDisk ? "_disk" : "_ram");
  auto cappedConfig = [&] {
    EngineConfig cfg = engineConfig(workers);
    cfg.maxResidentStreams = 2;
    if (onDisk) cfg.hibernateDir = hibDir;
    return cfg;
  };

  // Uninterrupted unlimited-residency reference.
  report::ConcurrentAnomalyStore refStore;
  std::vector<RunSummary> refSummaries;
  {
    DetectionEngine eng(engineConfig(workers), refStore.sink());
    const Fleet fleet = registerFleet(eng, refStore, kStreams, kUnits);
    (void)fleet;
    eng.start();
    eng.drain();
    for (std::size_t i = 0; i < eng.streamCount(); ++i) {
      refSummaries.push_back(eng.streamSummary(i));
    }
  }

  // Interrupted capped run: checkpoint mid-flight, then crash.
  report::ConcurrentAnomalyStore lostStore;
  {
    DetectionEngine eng(cappedConfig(), lostStore.sink());
    const Fleet fleet = registerFleet(eng, lostStore, kStreams, kUnits);
    (void)fleet;
    eng.start();
    while (eng.stats().unitsProcessed < kStreams * 24) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    eng.checkpoint(path,
                   [&](persist::Serializer& s) { lostStore.saveState(s); });
    const auto st = eng.stats();
    EXPECT_EQ(st.checkpoint.checkpoints, 1u);
    EXPECT_GT(st.hibernateEvictions, 0u)
        << "cap 2 over 6 streams must have hibernated by checkpoint time";
    EXPECT_GT(st.hibernatedStreams, 0u);
    if (onDisk) {
      // Cold streams page to files, not RAM blobs.
      EXPECT_FALSE(std::filesystem::is_empty(hibDir));
    }
    eng.stop();
  }

  // Recovery into another capped engine: restoreFrom rehydrates every
  // stream's state, re-registers residency, and re-applies the cap.
  report::ConcurrentAnomalyStore store;
  DetectionEngine eng(cappedConfig(), store.sink());
  const Fleet fleet = registerFleet(eng, store, kStreams, kUnits);
  const std::size_t restored = eng.restoreFrom(
      path, [&](persist::Deserializer& d) { store.loadState(d); });
  EXPECT_EQ(restored, kStreams);
  eng.start();
  const auto stats = eng.drain();
  EXPECT_EQ(stats.checkpoint.restores, 1u);
  EXPECT_GT(stats.hibernateEvictions, 0u);
  EXPECT_LE(stats.residentStreams, 2 + workers);

  for (std::size_t i = 0; i < eng.streamCount(); ++i) {
    expectSameSummary(eng.streamSummary(i), refSummaries[i], fleet.names[i]);
    const auto got = store.snapshot(fleet.names[i]);
    const auto want = refStore.snapshot(fleet.names[i]);
    ASSERT_EQ(got.size(), want.size()) << fleet.names[i];
    for (std::size_t k = 0; k < got.size(); ++k) {
      EXPECT_EQ(got[k].anomaly, want[k].anomaly) << fleet.names[i];
      EXPECT_EQ(got[k].path, want[k].path) << fleet.names[i];
    }
  }
  std::remove(path.c_str());
  std::error_code ec;
  std::filesystem::remove_all(hibDir, ec);
}

TEST(CheckpointRecovery, HibernatedCheckpointEquivalentOneWorker) {
  runHibernatedCheckpointEquivalence(1, /*onDisk=*/false);
}

TEST(CheckpointRecovery, HibernatedCheckpointEquivalentFourWorkers) {
  runHibernatedCheckpointEquivalence(4, /*onDisk=*/false);
}

TEST(CheckpointRecovery, HibernatedCheckpointEquivalentOnDisk) {
  runHibernatedCheckpointEquivalence(4, /*onDisk=*/true);
}

TEST(CheckpointRecovery, CheckpointBeforeStartAndAfterDrain) {
  const std::string path = tempSnapshotPath("cold");
  report::ConcurrentAnomalyStore store;
  {
    // Cold checkpoint: nothing started, every pipeline fresh.
    DetectionEngine eng(engineConfig(1), store.sink());
    const Fleet fleet = registerFleet(eng, store, 2, 32);
    (void)fleet;
    eng.checkpoint(path);
  }
  {
    report::ConcurrentAnomalyStore store2;
    DetectionEngine eng(engineConfig(1), store2.sink());
    const Fleet fleet = registerFleet(eng, store2, 2, 32);
    (void)fleet;
    EXPECT_EQ(eng.restoreFrom(path), 2u);
    eng.start();
    eng.drain();
    // Post-drain checkpoint captures the final state without quiescing.
    eng.checkpoint(path);
    const auto st = eng.stats();
    // Counters are per engine instance: one restore, one checkpoint here.
    EXPECT_EQ(st.checkpoint.checkpoints, 1u);
    EXPECT_EQ(st.checkpoint.restores, 1u);
    EXPECT_EQ(st.checkpoint.lastUnits, st.unitsProcessed);
  }
  // Restoring the end-of-run checkpoint resumes past the whole source:
  // zero new units, summaries intact.
  report::ConcurrentAnomalyStore store3;
  DetectionEngine eng(engineConfig(1), store3.sink());
  const Fleet fleet = registerFleet(eng, store3, 2, 32);
  (void)fleet;
  EXPECT_EQ(eng.restoreFrom(path), 2u);
  const auto before = eng.streamSummary(0);
  eng.start();
  eng.drain();
  expectSameSummary(eng.streamSummary(0), before, "resume-at-end");
  std::remove(path.c_str());
}

TEST(CheckpointRecovery, JunkRowCountSurvivesRestore) {
  // The junk count lives ingest-side (sourceSkipped mirror), not in the
  // worker-written summary — the checkpoint must fold it in, and a
  // restore over a source that covers only the unprocessed suffix must
  // resume the count rather than reset it.
  const std::string path = tempSnapshotPath("junk");
  const std::string csv =
      std::string(::testing::TempDir()) + "junk_trace_" +
      std::to_string(::getpid()) + ".csv";
  WorkloadSpec spec = workload::ccdNetworkWorkload(Scale::kTest);
  {
    GeneratorSource src(spec, 0, 24, 9);
    std::vector<Record> records;
    while (auto r = src.next()) records.push_back(*r);
    writeRecordsCsv(csv, spec.hierarchy, records);
    std::ofstream app(csv, std::ios::app);
    app << "not/a/real/path,99999999\n"
        << "garbage line without a comma\n"
        << "also/not/real,99999999\n";
  }

  std::size_t junkAtCheckpoint = 0;
  {
    report::ConcurrentAnomalyStore store;
    store.registerStream("csv", spec.hierarchy);
    DetectionEngine eng(engineConfig(1), store.sink());
    eng.addStream("csv", borrowHierarchy(spec.hierarchy), fleetPipelineConfig(spec),
                  std::make_unique<CsvSource>(csv, spec.hierarchy));
    eng.start();
    eng.drain();
    junkAtCheckpoint = eng.streamSummary(0).junkRowsSkipped;
    EXPECT_EQ(junkAtCheckpoint, 3u);
    eng.checkpoint(path);
  }

  // The suffix after a drained run is empty — an empty source stands in
  // for "everything before the resume point is gone".
  report::ConcurrentAnomalyStore store;
  store.registerStream("csv", spec.hierarchy);
  DetectionEngine eng(engineConfig(1), store.sink());
  eng.addStream("csv", borrowHierarchy(spec.hierarchy), fleetPipelineConfig(spec),
                std::make_unique<VectorSource>(std::vector<Record>{}));
  EXPECT_EQ(eng.restoreFrom(path), 1u);
  EXPECT_EQ(eng.streamSummary(0).junkRowsSkipped, junkAtCheckpoint);
  eng.start();
  eng.drain();
  EXPECT_EQ(eng.streamSummary(0).junkRowsSkipped, junkAtCheckpoint);
  std::remove(path.c_str());
  std::remove(csv.c_str());
}

TEST(CheckpointRecovery, RestoreRejectsUnknownStream) {
  const std::string path = tempSnapshotPath("unknown");
  {
    report::ConcurrentAnomalyStore store;
    DetectionEngine eng(engineConfig(1), store.sink());
    const Fleet fleet = registerFleet(eng, store, 3, 16);
    (void)fleet;
    eng.checkpoint(path);
  }
  report::ConcurrentAnomalyStore store;
  DetectionEngine eng(engineConfig(1), store.sink());
  const Fleet fleet = registerFleet(eng, store, 2, 16);  // stream-2 missing
  (void)fleet;
  EXPECT_THROW(eng.restoreFrom(path), persist::SnapshotError);
  std::remove(path.c_str());
}

// The seqlock regression: checkpoints publish their counters while a
// poller hammers stats(). Under TSan this is the data-race check; the
// invariant assertions catch torn snapshots everywhere (a reader mixing
// two checkpoints would see totalSeconds < lastSeconds or a count/bytes
// mismatch).
TEST(CheckpointRecovery, StatsDuringCheckpointDoNotTear) {
  const std::string path = tempSnapshotPath("tear");
  report::ConcurrentAnomalyStore store;
  DetectionEngine eng(engineConfig(2), store.sink());
  const Fleet fleet = registerFleet(eng, store, 4, 220);
  (void)fleet;
  eng.start();

  std::atomic<bool> done{false};
  std::thread poller([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const auto st = eng.stats();
      const auto& c = st.checkpoint;
      // Fields must always come from one coherent checkpoint record.
      EXPECT_GE(c.totalSeconds, c.lastSeconds);
      if (c.checkpoints == 0) {
        EXPECT_EQ(c.lastBytes, 0u);
        EXPECT_EQ(c.lastSeconds, 0.0);
      } else {
        EXPECT_GT(c.lastBytes, 0u);
      }
    }
  });
  std::thread checkpointer([&] {
    for (int i = 0; i < 6; ++i) {
      eng.checkpoint(path);
    }
  });
  checkpointer.join();
  eng.drain();
  done.store(true, std::memory_order_relaxed);
  poller.join();
  EXPECT_EQ(eng.stats().checkpoint.checkpoints, 6u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tiresias
