// Randomized stress tests for the timeunit batcher and the batcher +
// detector composition: arbitrary gaps, bursts, and boundary timestamps
// must never lose or duplicate records, and unit indices must be
// contiguous.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/ada.h"
#include "hierarchy/builder.h"
#include "stream/window.h"
#include "timeseries/ewma.h"

namespace tiresias {
namespace {

class BatcherFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatcherFuzz, NoLossNoDuplicationContiguousUnits) {
  Rng rng(GetParam());
  const Duration delta = 60 + rng.below(900);
  std::vector<Record> records;
  Timestamp t = static_cast<Timestamp>(rng.below(1000));
  const std::size_t n = 200 + rng.below(800);
  for (std::size_t i = 0; i < n; ++i) {
    // Mixture of dense bursts, unit-boundary hits and long gaps.
    switch (rng.below(6)) {
      case 0:
        t += 0;  // duplicate timestamp
        break;
      case 1:
        t += delta - (t % delta);  // land exactly on a unit boundary
        break;
      case 2:
        t += delta * (1 + rng.below(10));  // skip whole units
        break;
      default:
        t += rng.below(static_cast<std::uint64_t>(delta));
        break;
    }
    records.push_back({static_cast<NodeId>(rng.below(4)), t});
  }

  VectorSource src(records);
  TimeUnitBatcher batcher(src, delta, records.front().time);
  std::size_t total = 0;
  std::optional<TimeUnit> prev;
  while (auto batch = batcher.next()) {
    if (prev) {
      EXPECT_EQ(batch->unit, *prev + 1) << "units must be contiguous";
    }
    prev = batch->unit;
    for (const auto& r : batch->records) {
      EXPECT_EQ(timeUnitOf(r.time, delta), batch->unit);
      ++total;
    }
  }
  EXPECT_EQ(total, records.size());
  EXPECT_EQ(batcher.droppedRecords(), 0u);
}

TEST_P(BatcherFuzz, DetectorSurvivesArbitraryStreams) {
  // End-to-end robustness: ADA over fuzzed streams never violates its
  // internal invariants (validateShhh aborts on any Lemma-1 breach).
  Rng rng(GetParam() ^ 0xf00dULL);
  const auto h = HierarchyBuilder::balanced({3, 3, 2});
  DetectorConfig cfg;
  cfg.theta = 2.0 + static_cast<double>(rng.below(5));
  cfg.windowLength = 4 + rng.below(12);
  cfg.referenceLevels = rng.below(3);
  cfg.validateShhh = true;
  cfg.forecasterFactory = std::make_shared<EwmaFactory>(0.4);
  AdaDetector ada(h, cfg);

  std::vector<Record> records;
  Timestamp t = 0;
  for (int i = 0; i < 600; ++i) {
    t += rng.below(2400);
    records.push_back(
        {h.leaves()[rng.below(h.leafCount())], t});
  }
  VectorSource src(records);
  TimeUnitBatcher batcher(src, 900, 0);
  std::size_t results = 0;
  while (auto batch = batcher.next()) {
    if (ada.step(*batch)) ++results;
  }
  EXPECT_GT(results, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatcherFuzz,
                         ::testing::Values(1, 12, 123, 1234, 12345, 54321));

}  // namespace
}  // namespace tiresias
