// SIMD primitive bit-identity: every simd:: routine must produce exactly
// the bytes the scalar reference loop produces — across ISA paths, odd
// lengths (head/tail handling), and adversarial values (signed zeros,
// infinities, NaNs, denormals). The detectors' end-to-end SIMD-vs-scalar
// equivalence rides on these primitives plus the flat-vs-reference
// property tests; this file pins the primitives themselves.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "core/pipeline.h"
#include "report/store.h"
#include "timeseries/ewma.h"
#include "workload/ccd.h"

namespace tiresias {
namespace {

/// Restore the dispatch table even when a test fails mid-body.
struct ScopedForceScalar {
  explicit ScopedForceScalar(bool on) : prev_(simd::forceScalar(on)) {}
  ~ScopedForceScalar() { simd::forceScalar(prev_); }
  bool prev_;
};

/// Deterministic mix of ordinary magnitudes and IEEE-754 edge cases.
std::vector<double> trickyDoubles(std::size_t n, std::uint64_t seed) {
  static const double kEdges[] = {
      0.0,
      -0.0,
      1.0,
      -1.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      1e-300,
      -3.5e17,
      0.1,
  };
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) {
    if (rng.below(3) == 0) {
      v = kEdges[rng.below(std::size(kEdges))];
    } else {
      // Random bits biased to finite magnitudes via a random exponent.
      v = (static_cast<double>(rng.below(1u << 20)) - (1u << 19)) *
          std::pow(2.0, static_cast<double>(rng.below(64)) - 32.0);
    }
  }
  return out;
}

void expectBitIdentical(const std::vector<double>& got,
                        const std::vector<double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    std::uint64_t g = 0, w = 0;
    std::memcpy(&g, &got[i], 8);
    std::memcpy(&w, &want[i], 8);
    EXPECT_EQ(g, w) << what << " diverges at [" << i << "]: got " << got[i]
                    << " want " << want[i];
  }
}

const std::size_t kSizes[] = {0,  1,  2,  3,  4,  5,   7,  8,
                              9,  15, 16, 17, 31, 33,  64, 100};

TEST(SimdDispatch, ForceScalarFlipsTheTable) {
  const std::string best = simd::activeIsa();
  EXPECT_FALSE(best.empty());
  {
    ScopedForceScalar forced(true);
    EXPECT_STREQ(simd::activeIsa(), "scalar");
  }
  EXPECT_EQ(simd::activeIsa(), best);  // restored
}

TEST(SimdKernels, AddSubScaleDivideMatchScalarReference) {
  for (const std::size_t n : kSizes) {
    const auto src = trickyDoubles(n, 11 + n);
    const auto base = trickyDoubles(n, 23 + n);
    const double factor = -1.75e3;
    const double divisor = 3.0;  // 1/3 is inexact: exposes reciprocal tricks

    // Scalar reference loops, semantics pinned inline.
    std::vector<double> refAdd = base, refSub = base, refScale = base,
                        refDiv = base;
    for (std::size_t i = 0; i < n; ++i) {
      refAdd[i] += src[i];
      refSub[i] -= src[i];
      refScale[i] *= factor;
      refDiv[i] /= divisor;
    }

    for (const bool scalar : {true, false}) {
      ScopedForceScalar forced(scalar);
      std::vector<double> a = base, s = base, m = base, d = base;
      simd::add(a.data(), src.data(), n);
      simd::sub(s.data(), src.data(), n);
      simd::scale(m.data(), factor, n);
      simd::divide(d.data(), divisor, n);
      expectBitIdentical(a, refAdd, scalar ? "add/scalar" : "add/simd");
      expectBitIdentical(s, refSub, scalar ? "sub/scalar" : "sub/simd");
      expectBitIdentical(m, refScale, scalar ? "scale/scalar" : "scale/simd");
      expectBitIdentical(d, refDiv, scalar ? "div/scalar" : "div/simd");
    }
  }
}

TEST(SimdKernels, AccumulateStampedMatchesScalarReference) {
  for (const std::size_t n : kSizes) {
    const auto src = trickyDoubles(n, 31 + n);
    const auto base = trickyDoubles(n, 47 + n);
    const std::uint32_t gen = 7;
    Rng rng(59 + n);
    std::vector<std::uint32_t> stamp(n);
    for (auto& st : stamp) {
      st = rng.below(2) ? gen : static_cast<std::uint32_t>(rng.below(7));
    }

    std::vector<double> ref = base;
    for (std::size_t i = 0; i < n; ++i) {
      if (stamp[i] == gen) ref[i] += src[i];
    }

    for (const bool scalar : {true, false}) {
      ScopedForceScalar forced(scalar);
      std::vector<double> got = base;
      simd::accumulateStamped(got.data(), src.data(), stamp.data(), gen, n);
      expectBitIdentical(got, ref, scalar ? "accum/scalar" : "accum/simd");
    }
  }
}

TEST(SimdKernels, AccumulateStampedKeepsMaskedBitsExactly) {
  // The masked-out lane must keep its *old* bit pattern: a blend that
  // added a literal 0.0 would turn -0.0 into +0.0 and quiet NaN payloads.
  std::vector<double> dst = {-0.0, std::numeric_limits<double>::quiet_NaN(),
                             -0.0, 5.0};
  const std::vector<double> src = {1.0, 1.0, 1.0, 1.0};
  const std::vector<std::uint32_t> stamp = {1, 1, 1, 9};  // last lane live
  const std::vector<double> before = dst;
  simd::accumulateStamped(dst.data(), src.data(), stamp.data(), 9, 4);
  for (std::size_t i = 0; i < 3; ++i) {
    std::uint64_t g = 0, w = 0;
    std::memcpy(&g, &dst[i], 8);
    std::memcpy(&w, &before[i], 8);
    EXPECT_EQ(g, w) << "masked lane " << i << " was disturbed";
  }
  EXPECT_EQ(dst[3], 6.0);
}

TEST(SimdKernels, GatherStampedOrZeroMatchesScalarReference) {
  const std::size_t planeSize = 67;
  const auto values = trickyDoubles(planeSize, 71);
  const std::uint32_t gen = 3;
  Rng rng(83);
  std::vector<std::uint32_t> stamp(planeSize);
  for (auto& st : stamp) {
    st = rng.below(2) ? gen : static_cast<std::uint32_t>(rng.below(3));
  }

  for (const std::size_t n : kSizes) {
    std::vector<std::uint32_t> idx(n);
    for (auto& i : idx) {
      i = static_cast<std::uint32_t>(rng.below(planeSize));
    }
    std::vector<double> ref(n);
    for (std::size_t i = 0; i < n; ++i) {
      ref[i] = stamp[idx[i]] == gen ? values[idx[i]] : 0.0;
    }
    for (const bool scalar : {true, false}) {
      ScopedForceScalar forced(scalar);
      std::vector<double> got(n, -7.0);  // stale garbage must be overwritten
      simd::gatherStampedOrZero(got.data(), values.data(), stamp.data(), gen,
                                idx.data(), n);
      expectBitIdentical(got, ref, scalar ? "gather/scalar" : "gather/simd");
    }
  }
}

TEST(SimdKernels, GatherMaskedLanesArePositiveZero) {
  // A masked gather lane must read exactly +0.0 — matching the scalar
  // ternary's literal 0.0 — even when the plane holds -0.0 or NaN there.
  std::vector<double> values = {-0.0, std::numeric_limits<double>::quiet_NaN(),
                                2.5};
  const std::vector<std::uint32_t> stamp = {1, 1, 4};
  const std::vector<std::uint32_t> idx = {0, 1, 2, 0};
  for (const bool scalar : {true, false}) {
    ScopedForceScalar forced(scalar);
    std::vector<double> out(4, 9.0);
    simd::gatherStampedOrZero(out.data(), values.data(), stamp.data(), 4,
                              idx.data(), 4);
    for (const std::size_t masked : {0u, 1u, 3u}) {
      EXPECT_EQ(out[masked], 0.0);
      EXPECT_FALSE(std::signbit(out[masked]))
          << "masked lane " << masked << " leaked -0.0";
    }
    EXPECT_EQ(out[2], 2.5);
  }
}

/// End to end: a full detection run (warm-up, seasonality-free EWMA
/// forecasting, SHHH + split + anomaly reporting) is bit-identical under
/// the SIMD and forced-scalar dispatch tables, for both algorithms.
TEST(SimdEndToEnd, DetectorsBitIdenticalUnderForcedScalar) {
  const auto spec = workload::ccdNetworkWorkload(workload::Scale::kTest);
  workload::SpikeSpec spike;
  spike.node = spec.hierarchy.children(spec.hierarchy.root()).front();
  spike.startUnit = 30;
  spike.durationUnits = 3;
  spike.extraPerUnit = 40.0 * spec.baseRatePerUnit;
  workload::GroundTruthLedger ledger;
  ledger.add(spike);
  const auto injector = std::make_shared<workload::AnomalyInjector>(
      spec.hierarchy, std::move(ledger));

  for (const bool useAda : {true, false}) {
    PipelineConfig cfg;
    cfg.delta = spec.unit;
    cfg.useAda = useAda;
    cfg.detector.theta = 8.0;
    cfg.detector.windowLength = 16;
    cfg.detector.forecasterFactory = std::make_shared<EwmaFactory>(0.5);

    auto run = [&](bool scalar, RunSummary& sum) {
      const bool prev = simd::forceScalar(scalar);
      workload::GeneratorSource src(spec, 0, 48, 7, injector);
      TiresiasPipeline pipeline(borrowHierarchy(spec.hierarchy), cfg);
      report::AnomalyStore store(spec.hierarchy);
      sum = pipeline.run(src, [&](const InstanceResult& r) { store.add(r); });
      simd::forceScalar(prev);
      return store.all();
    };

    RunSummary simdSum, scalarSum;
    const auto simdAnoms = run(false, simdSum);
    const auto scalarAnoms = run(true, scalarSum);
    SCOPED_TRACE(useAda ? "ada" : "sta");
    EXPECT_EQ(simdSum.unitsProcessed, scalarSum.unitsProcessed);
    EXPECT_EQ(simdSum.instancesDetected, scalarSum.instancesDetected);
    EXPECT_EQ(simdSum.anomaliesReported, scalarSum.anomaliesReported);
    ASSERT_EQ(simdAnoms.size(), scalarAnoms.size());
    for (std::size_t i = 0; i < simdAnoms.size(); ++i) {
      EXPECT_EQ(simdAnoms[i].anomaly, scalarAnoms[i].anomaly);
      EXPECT_EQ(simdAnoms[i].path, scalarAnoms[i].path);
    }
    EXPECT_GT(simdAnoms.size(), 0u);  // the comparison must see anomalies
  }
}

}  // namespace
}  // namespace tiresias
