// Tests for the observability layer (src/obs/): log2 histogram bucket
// boundaries, percentile estimation bounds, gauge last-seen tracking,
// shard-id clamping, and a concurrent writer/reader stress run that must
// be TSan-clean (the registry promises lock-free recording with
// tear-free snapshots).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace tiresias::obs {
namespace {

TEST(Histogram, BucketOfMatchesBitWidth) {
  // Bucket 0 is exactly {0}; bucket b >= 1 covers [2^(b-1), 2^b).
  EXPECT_EQ(MetricsRegistry::bucketOf(0), 0u);
  EXPECT_EQ(MetricsRegistry::bucketOf(1), 1u);
  EXPECT_EQ(MetricsRegistry::bucketOf(2), 2u);
  EXPECT_EQ(MetricsRegistry::bucketOf(3), 2u);
  EXPECT_EQ(MetricsRegistry::bucketOf(4), 3u);
  for (std::size_t b = 1; b < 39; ++b) {
    const std::uint64_t lo = std::uint64_t{1} << (b - 1);
    const std::uint64_t hi = (std::uint64_t{1} << b) - 1;
    EXPECT_EQ(MetricsRegistry::bucketOf(lo), b) << "lower edge of bucket "
                                                << b;
    EXPECT_EQ(MetricsRegistry::bucketOf(hi), b) << "upper edge of bucket "
                                                << b;
  }
  // Everything at or beyond 2^38 clamps into the last bucket.
  EXPECT_EQ(MetricsRegistry::bucketOf(std::uint64_t{1} << 38), 39u);
  EXPECT_EQ(MetricsRegistry::bucketOf(~std::uint64_t{0}), 39u);
}

TEST(Histogram, ExactCountSumMax) {
  MetricsRegistry reg(1);
  bindThreadShard(0);
  const std::vector<std::uint64_t> values{0, 1, 7, 100, 4096, 123456789};
  std::uint64_t sum = 0;
  for (std::uint64_t v : values) {
    reg.recordLatencyNs(Stage::kRunSlice, v);
    sum += v;
  }
  const auto h = reg.stageHistogram(Stage::kRunSlice);
  EXPECT_EQ(h.count, values.size());
  EXPECT_EQ(h.sum, sum);
  EXPECT_EQ(h.max, 123456789u);
  for (std::uint64_t v : values) {
    EXPECT_GE(h.buckets[MetricsRegistry::bucketOf(v)], 1u);
  }
}

TEST(Histogram, PercentileStaysInsideContainingBucket) {
  MetricsRegistry reg(1);
  bindThreadShard(0);
  // 100 samples all in bucket 10 ([512, 1024)).
  for (int i = 0; i < 100; ++i) {
    reg.recordLatencyNs(Stage::kStaObserve, 700);
  }
  const auto h = reg.stageHistogram(Stage::kStaObserve);
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    const double p = h.percentile(q);
    EXPECT_GE(p, 512.0) << "q=" << q;
    EXPECT_LE(p, 700.0) << "q=" << q;  // clamped to the exact max
  }
  // The tail percentile approaches the bucket top before clamping, so it
  // must be the max exactly.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 700.0);
}

TEST(Histogram, PercentileOrderingAcrossBuckets) {
  MetricsRegistry reg(1);
  bindThreadShard(0);
  for (int i = 0; i < 90; ++i) reg.recordLatencyNs(Stage::kRunSlice, 100);
  for (int i = 0; i < 10; ++i) reg.recordLatencyNs(Stage::kRunSlice, 100000);
  const auto h = reg.stageHistogram(Stage::kRunSlice);
  // p50 lives in the low bucket, p99 in the high one.
  EXPECT_LT(h.percentile(0.5), 128.0);
  EXPECT_GT(h.percentile(0.99), 65536.0);
  EXPECT_LE(h.percentile(0.99), 100000.0);
  EXPECT_LE(h.percentile(0.5), h.percentile(0.9));
  EXPECT_LE(h.percentile(0.9), h.percentile(0.99));
}

TEST(Histogram, EmptyIsZero) {
  MetricsRegistry reg(1);
  const auto h = reg.stageHistogram(Stage::kCheckpointSave);
  EXPECT_EQ(h.count, 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Gauges, LastSeenAndDistribution) {
  MetricsRegistry reg(2);
  bindThreadShard(0);
  reg.recordValue(Gauge::kQueuedUnits, 5);
  reg.recordValue(Gauge::kQueuedUnits, 9);
  reg.recordValue(Gauge::kQueuedUnits, 2);
  const auto snap = reg.snapshot();
  const auto* g = snap.gauge(Gauge::kQueuedUnits);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->samples, 3u);
  EXPECT_EQ(g->last, 2u);  // most recent sample, not the max
  EXPECT_EQ(g->max, 9u);
  // Gauges with no samples are omitted from the snapshot.
  EXPECT_EQ(snap.gauge(Gauge::kWorkspaceBytes), nullptr);
}

TEST(Snapshot, NamesAndLookup) {
  MetricsRegistry reg(1);
  bindThreadShard(0);
  reg.recordLatencyNs(Stage::kUnitLatency, 1000);
  const auto snap = reg.snapshot();
  EXPECT_TRUE(snap.enabled);
  ASSERT_EQ(snap.stages.size(), 1u);
  EXPECT_EQ(snap.stages[0].name, "engine.unit_latency");
  EXPECT_EQ(snap.stage(Stage::kUnitLatency), &snap.stages[0]);
  EXPECT_EQ(snap.stage("engine.unit_latency"), &snap.stages[0]);
  EXPECT_EQ(snap.stage("no.such.stage"), nullptr);
  EXPECT_EQ(snap.stage(Stage::kRunSlice), nullptr);
  EXPECT_EQ(snap.stages[0].count, 1u);
  EXPECT_NEAR(snap.stages[0].totalSeconds, 1e-6, 1e-12);
}

TEST(Shards, OutOfRangeShardClampsToZero) {
  MetricsRegistry reg(2);
  bindThreadShard(999);  // beyond shardCount -> clamped, still recorded
  reg.recordLatencyNs(Stage::kRunSlice, 42);
  bindThreadShard(0);
  const auto h = reg.stageHistogram(Stage::kRunSlice);
  EXPECT_EQ(h.count, 1u);
  EXPECT_EQ(h.max, 42u);
}

TEST(StageSpanTest, RecordsOnceEvenWithExplicitFinish) {
  MetricsRegistry reg(1);
  bindThreadShard(0);
  {
    StageSpan span(&reg, Stage::kReportSink);
    span.finish();
    span.finish();  // idempotent
  }  // destructor must not double-record
  EXPECT_EQ(reg.stageHistogram(Stage::kReportSink).count, 1u);
  {
    StageSpan nullSpan(nullptr, Stage::kReportSink);  // no-op, no crash
  }
  EXPECT_EQ(reg.stageHistogram(Stage::kReportSink).count, 1u);
}

// Concurrent stress: writers on distinct shards plus one unbound writer on
// shard 0, with a reader snapshotting throughout. The reader asserts every
// snapshot is self-consistent (count == sum of buckets by construction)
// and monotone non-decreasing; after joining, totals are exact.
TEST(Concurrency, ShardedWritersWithLiveReader) {
  constexpr std::size_t kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20000;
  MetricsRegistry reg(kWriters + 1);
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&reg, w] {
      bindThreadShard(w + 1);
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        reg.recordLatencyNs(Stage::kRunSlice, (w + 1) * 1000 + i % 7);
        reg.recordValue(Gauge::kQueuedUnits, i % 32);
      }
    });
  }
  std::thread unbound([&reg] {
    // Never bound in this thread: falls back to shard 0.
    for (std::uint64_t i = 0; i < kPerWriter; ++i) {
      reg.recordLatencyNs(Stage::kRunSlice, 1 + i % 3);
    }
  });

  std::uint64_t lastCount = 0;
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto h = reg.stageHistogram(Stage::kRunSlice);
      std::uint64_t bucketSum = 0;
      for (std::uint64_t b : h.buckets) bucketSum += b;
      ASSERT_EQ(h.count, bucketSum);   // tear-free by construction
      ASSERT_GE(h.count, lastCount);   // monotone under concurrent writes
      lastCount = h.count;
    }
  });

  for (auto& t : writers) t.join();
  unbound.join();
  done.store(true, std::memory_order_release);
  reader.join();

  const auto h = reg.stageHistogram(Stage::kRunSlice);
  EXPECT_EQ(h.count, (kWriters + 1) * kPerWriter);
  EXPECT_EQ(h.max, kWriters * 1000 + 6);  // i % 7 peaks at 6
  const auto g = reg.gaugeHistogram(Gauge::kQueuedUnits);
  EXPECT_EQ(g.count, kWriters * kPerWriter);
  EXPECT_EQ(g.max, 31u);
}

}  // namespace
}  // namespace tiresias::obs
