// Unit tests for the synthetic workload generators: determinism, the
// Table I ticket mix, seasonal rate shape, leaf-share consistency and
// anomaly injection.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "stream/window.h"
#include "workload/ccd.h"
#include "workload/scd.h"

namespace tiresias::workload {
namespace {

TEST(RateModel, DiurnalPeakAndTroughHours) {
  const auto model = SeasonalRateModel::ccdLike();
  // Trough near 4 AM on a weekday (day 2 = Monday in our calendar).
  const Timestamp monday = 2 * kDay;
  double troughVal = 1e9, peakVal = -1e9;
  int troughHour = -1, peakHour = -1;
  for (int hr = 0; hr < 24; ++hr) {
    const double m = model.multiplier(monday + hr * kHour);
    if (m < troughVal) {
      troughVal = m;
      troughHour = hr;
    }
    if (m > peakVal) {
      peakVal = m;
      peakHour = hr;
    }
  }
  EXPECT_EQ(troughHour, 4);
  EXPECT_EQ(peakHour, 16);
  EXPECT_NEAR(peakVal / troughVal, 24.0, 0.5);
}

TEST(RateModel, WeekendDipInCcd) {
  const auto model = SeasonalRateModel::ccdLike();
  const Timestamp saturdayNoon = 12 * kHour;            // day 0 = Saturday
  const Timestamp mondayNoon = 2 * kDay + 12 * kHour;
  EXPECT_LT(model.multiplier(saturdayNoon), model.multiplier(mondayNoon));
}

TEST(RateModel, ScdHasNoWeeklyPattern) {
  const auto model = SeasonalRateModel::scdLike();
  for (int d = 1; d < 7; ++d) {
    EXPECT_DOUBLE_EQ(model.multiplier(12 * kHour),
                     model.multiplier(d * kDay + 12 * kHour));
  }
}

TEST(RateModel, FlatIsConstant) {
  const auto model = SeasonalRateModel::flat();
  for (int hr = 0; hr < 48; ++hr) {
    EXPECT_NEAR(model.multiplier(hr * kHour), 1.0, 1e-12);
  }
}

TEST(WorkloadSpec, LeafProbabilitiesSumToOne) {
  for (const auto& spec :
       {ccdTroubleWorkload(Scale::kTest), ccdNetworkWorkload(Scale::kTest),
        scdNetworkWorkload(Scale::kTest)}) {
    const auto probs = spec.leafProbabilities();
    double total = 0.0;
    for (double p : probs) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(WorkloadSpec, NodeProbabilityMatchesSubtreeSum) {
  const auto spec = ccdNetworkWorkload(Scale::kTest);
  const auto& h = spec.hierarchy;
  const NodeId vho = h.children(h.root())[1];
  double sum = 0.0;
  const auto probs = spec.leafProbabilities();
  for (std::size_t i = 0; i < h.leaves().size(); ++i) {
    if (h.isAncestorOrEqual(vho, h.leaves()[i])) sum += probs[i];
  }
  EXPECT_NEAR(spec.nodeProbability(vho), sum, 1e-9);
}

TEST(Generator, Deterministic) {
  const auto spec = ccdTroubleWorkload(Scale::kTest);
  GeneratorSource a(spec, 0, 8, 99);
  GeneratorSource b(spec, 0, 8, 99);
  while (true) {
    auto ra = a.next();
    auto rb = b.next();
    ASSERT_EQ(ra.has_value(), rb.has_value());
    if (!ra) break;
    EXPECT_EQ(*ra, *rb);
  }
}

TEST(Generator, TimeOrderedWithinRange) {
  const auto spec = ccdTroubleWorkload(Scale::kTest);
  GeneratorSource src(spec, 5, 12, 7);
  Timestamp prev = unitStart(5, spec.unit);
  std::size_t count = 0;
  while (auto r = src.next()) {
    EXPECT_GE(r->time, prev);
    EXPECT_GE(r->time, unitStart(5, spec.unit));
    EXPECT_LT(r->time, unitStart(12, spec.unit));
    prev = r->time;
    ++count;
  }
  EXPECT_GT(count, 0u);
}

TEST(Generator, TicketMixMatchesTableOne) {
  const auto spec = ccdTroubleWorkload(Scale::kMedium);
  const auto& h = spec.hierarchy;
  // Generate a quiet-free day and aggregate level-1 shares.
  GeneratorSource src(spec, 0, 96, 1234);
  std::vector<std::size_t> counts(h.size(), 0);
  std::size_t total = 0;
  while (auto r = src.next()) {
    NodeId cur = r->category;
    while (h.depth(cur) > 2) cur = h.parent(cur);
    ++counts[cur];
    ++total;
  }
  ASSERT_GT(total, 1000u);
  for (const auto& cat : ccdTicketMix()) {
    const NodeId n = h.childNamed(h.root(), cat.name);
    ASSERT_NE(n, kInvalidNode) << cat.name;
    const double measured =
        static_cast<double>(counts[n]) / static_cast<double>(total);
    EXPECT_NEAR(measured, cat.share, 0.02) << cat.name;
  }
}

TEST(Generator, SeasonalityVisibleInCounts) {
  const auto spec = ccdTroubleWorkload(Scale::kTest);
  GeneratorSource src(spec, 0, 96 * 3, 5);  // 3 days
  TimeUnitBatcher batcher(src, spec.unit, 0);
  std::vector<double> counts;
  while (auto b = batcher.next()) {
    counts.push_back(static_cast<double>(b->records.size()));
  }
  ASSERT_GE(counts.size(), 96u * 3 - 1);
  // 4 PM unit should far exceed the 4 AM unit on the same (week)day.
  const std::size_t day = 2;  // Monday
  const double peak = counts[day * 96 + 64];    // 16:00
  const double trough = counts[day * 96 + 16];  // 04:00
  EXPECT_GT(peak, 4.0 * std::max(trough, 1.0));
}

TEST(TableTwoDegrees, PaperPresetsMatch) {
  EXPECT_EQ(ccdTroubleDegrees(Scale::kPaper),
            (std::vector<std::size_t>{9, 6, 3, 5}));
  EXPECT_EQ(ccdNetworkDegrees(Scale::kPaper),
            (std::vector<std::size_t>{61, 5, 6, 24}));
  EXPECT_EQ(scdNetworkDegrees(Scale::kPaper),
            (std::vector<std::size_t>{2000, 30, 6}));
  // Depths: CCD trees have 5 levels, SCD 4 (degrees are per-level edges).
  EXPECT_EQ(ccdTroubleDegrees(Scale::kPaper).size() + 1, 5u);
  EXPECT_EQ(scdNetworkDegrees(Scale::kPaper).size() + 1, 4u);
}

TEST(Injector, GroundTruthMatching) {
  const auto spec = ccdNetworkWorkload(Scale::kTest);
  const auto& h = spec.hierarchy;
  const NodeId io = h.find("VHO0/IO1");
  ASSERT_NE(io, kInvalidNode);
  GroundTruthLedger ledger;
  ledger.add({io, 10, 3, 50.0});
  EXPECT_TRUE(ledger.matches(h, io, 10));
  EXPECT_TRUE(ledger.matches(h, io, 12));
  EXPECT_FALSE(ledger.matches(h, io, 13));
  // Ancestors and descendants match; siblings don't.
  EXPECT_TRUE(ledger.matches(h, h.root(), 11));
  EXPECT_TRUE(ledger.matches(h, h.children(io)[0], 11));
  EXPECT_FALSE(ledger.matches(h, h.find("VHO0/IO0"), 11));
}

TEST(Injector, ExtrasLandUnderTarget) {
  const auto spec = ccdNetworkWorkload(Scale::kTest);
  const auto& h = spec.hierarchy;
  const NodeId io = h.find("VHO1/IO0");
  GroundTruthLedger ledger;
  ledger.add({io, 5, 2, 40.0});
  AnomalyInjector injector(h, ledger);
  Rng rng(77);
  const auto extras = injector.drawExtras(5, rng);
  EXPECT_GT(extras.size(), 15u);
  for (NodeId leaf : extras) {
    EXPECT_TRUE(h.isAncestorOrEqual(io, leaf));
    EXPECT_TRUE(h.isLeaf(leaf));
  }
  EXPECT_TRUE(injector.drawExtras(99, rng).empty());
}

TEST(Injector, SpikeVisibleInGeneratedStream) {
  const auto spec = ccdNetworkWorkload(Scale::kTest);
  const auto& h = spec.hierarchy;
  const NodeId io = h.find("VHO0/IO1");
  GroundTruthLedger ledger;
  ledger.add({io, 10, 2, 120.0});
  auto injector = std::make_shared<AnomalyInjector>(h, ledger);
  GeneratorSource with(spec, 8, 14, 55, injector);
  GeneratorSource without(spec, 8, 14, 55);
  auto countIn = [&](GeneratorSource& src, TimeUnit unit) {
    std::size_t c = 0;
    // count records under io in `unit` (sources are consumed independently)
    while (auto r = src.next()) {
      if (timeUnitOf(r->time, spec.unit) == unit &&
          h.isAncestorOrEqual(io, r->category)) {
        ++c;
      }
    }
    return c;
  };
  const std::size_t spiked = countIn(with, 10);
  const std::size_t base = countIn(without, 10);
  EXPECT_GT(spiked, base + 60);
}

TEST(Fig1Shape, LowerLevelsAreSparser) {
  // §II-B sparsity: the fraction of empty (node, unit) cells grows with
  // depth.
  const auto spec = ccdNetworkWorkload(Scale::kTest);
  const auto& h = spec.hierarchy;
  GeneratorSource src(spec, 0, 96, 31);
  TimeUnitBatcher batcher(src, spec.unit, 0);
  std::vector<std::vector<std::size_t>> perDepthCounts(
      static_cast<std::size_t>(h.height()) + 1);
  std::size_t units = 0;
  std::vector<std::size_t> nonEmpty(static_cast<std::size_t>(h.height()) + 1,
                                    0);
  while (auto b = batcher.next()) {
    ++units;
    std::vector<double> agg(h.size(), 0.0);
    for (const auto& r : b->records) agg[r.category] += 1.0;
    for (NodeId n = static_cast<NodeId>(h.size()); n-- > 1;) {
      agg[h.parent(n)] += agg[n];
    }
    for (NodeId n = 0; n < h.size(); ++n) {
      if (agg[n] > 0.0) ++nonEmpty[static_cast<std::size_t>(h.depth(n))];
    }
  }
  auto fillRate = [&](int depth) {
    const auto nodes = h.nodesAtDepth(depth).size();
    return static_cast<double>(nonEmpty[static_cast<std::size_t>(depth)]) /
           static_cast<double>(nodes * units);
  };
  EXPECT_GT(fillRate(1), fillRate(3));
  EXPECT_GT(fillRate(3), fillRate(5));
}

}  // namespace
}  // namespace tiresias::workload
