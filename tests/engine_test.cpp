// Tests for the concurrent multi-stream detection engine (src/engine/):
// the bounded ingest queue, the sequential-equivalence guarantee, stress
// with shards >> cores, early stop, and junk-row surfacing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <thread>

#include "core/pipeline.h"
#include "engine/bounded_queue.h"
#include "engine/engine.h"
#include "report/concurrent_store.h"
#include "timeseries/ewma.h"
#include "workload/ccd.h"
#include "workload/scd.h"

namespace tiresias {
namespace {

using engine::BoundedQueue;
using engine::DetectionEngine;
using engine::EngineConfig;
using workload::GeneratorSource;
using workload::Scale;
using workload::WorkloadSpec;

PipelineConfig testPipelineConfig(const WorkloadSpec& spec) {
  PipelineConfig cfg;
  cfg.delta = spec.unit;
  cfg.detector.theta = 8.0;
  cfg.detector.windowLength = 16;
  cfg.detector.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
  return cfg;
}

TEST(BoundedQueue, FifoAndDepthTracking) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.depth(), 4u);
  EXPECT_EQ(q.maxDepth(), 4u);
  EXPECT_EQ(q.blockedPushes(), 0u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.pop(), i);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(BoundedQueue, BackpressureBlocksProducerUntilConsumed) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(3));  // blocks until the consumer pops
    pushed.store(true);
  });
  // The producer must be parked on the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_GE(q.blockedPushes(), 1u);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BoundedQueue, CloseDrainsThenEndsStream) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(7));
  q.close();
  EXPECT_FALSE(q.push(8));          // refused after close
  EXPECT_EQ(q.pop(), 7);            // queued items still drain
  EXPECT_EQ(q.pop(), std::nullopt); // then end-of-stream
}

TEST(BoundedQueue, ClosedEmptyQueueUnblocksConsumer) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  q.close();
  consumer.join();
}

TEST(BoundedQueue, CloseDiscardDropsQueuedItems) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close(BoundedQueue<int>::CloseMode::kDiscard);
  EXPECT_EQ(q.pop(), std::nullopt);  // backlog dropped, not drained
  EXPECT_EQ(q.discardedItems(), 2u);
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_FALSE(q.push(3));
}

TEST(BoundedQueue, DiscardAfterDrainCloseStillDropsBacklog) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(1));
  q.close();  // graceful close: item stays poppable...
  q.close(BoundedQueue<int>::CloseMode::kDiscard);  // ...until discarded
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_EQ(q.discardedItems(), 1u);
}

/// The headline guarantee: k streams through an N-shard engine produce
/// exactly the per-stream anomalies and summaries of k sequential
/// TiresiasPipeline::run calls. Shards deliberately do not divide streams
/// evenly, and the tiny queue forces backpressure on the ingest path.
TEST(Engine, EquivalentToSequentialPipelines) {
  const std::vector<WorkloadSpec> specs = {
      workload::ccdNetworkWorkload(Scale::kTest),
      workload::ccdTroubleWorkload(Scale::kTest),
      workload::scdNetworkWorkload(Scale::kTest),
      workload::ccdNetworkWorkload(Scale::kTest),
  };
  const TimeUnit units = 48;

  // Sequential baseline, one pipeline per stream.
  std::vector<std::vector<report::StoredAnomaly>> baselineAnomalies;
  std::vector<RunSummary> baselineSummaries;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    GeneratorSource src(specs[i], 0, units, 100 + i);
    TiresiasPipeline pipeline(specs[i].hierarchy, testPipelineConfig(specs[i]));
    report::AnomalyStore store(specs[i].hierarchy);
    baselineSummaries.push_back(
        pipeline.run(src, [&](const InstanceResult& r) { store.add(r); }));
    baselineAnomalies.push_back(store.all());
  }

  EngineConfig cfg;
  cfg.shards = 3;        // uneven 4-streams-over-3-shards mapping
  cfg.queueCapacity = 2; // force backpressure
  report::ConcurrentAnomalyStore store;
  DetectionEngine eng(cfg, store.sink());
  std::vector<std::string> names;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::string name = "stream-" + std::to_string(i);
    names.push_back(name);
    store.registerStream(name, specs[i].hierarchy);
    eng.addStream(name, specs[i].hierarchy, testPipelineConfig(specs[i]),
                  std::make_unique<GeneratorSource>(specs[i], 0, units,
                                                    100 + i));
  }
  eng.start();
  const auto stats = eng.drain();

  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(names[i]);
    const auto sum = eng.streamSummary(i);
    EXPECT_EQ(sum.unitsProcessed, baselineSummaries[i].unitsProcessed);
    EXPECT_EQ(sum.recordsProcessed, baselineSummaries[i].recordsProcessed);
    EXPECT_EQ(sum.instancesDetected, baselineSummaries[i].instancesDetected);
    EXPECT_EQ(sum.anomaliesReported, baselineSummaries[i].anomaliesReported);

    const auto got = store.snapshot(names[i]);
    const auto& want = baselineAnomalies[i];
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t j = 0; j < got.size(); ++j) {
      EXPECT_EQ(got[j].anomaly, want[j].anomaly);
      EXPECT_EQ(got[j].path, want[j].path);
      EXPECT_EQ(got[j].depth, want[j].depth);
    }
  }

  std::size_t baselineUnits = 0, baselineRecords = 0;
  for (const auto& s : baselineSummaries) {
    baselineUnits += s.unitsProcessed;
    baselineRecords += s.recordsProcessed;
  }
  EXPECT_EQ(stats.unitsProcessed, baselineUnits);
  EXPECT_EQ(stats.recordsProcessed, baselineRecords);
  EXPECT_EQ(stats.streams, specs.size());
  // The tiny queue must actually have exercised backpressure accounting.
  EXPECT_GT(stats.maxQueueDepth, 0u);
}

/// Determinism across engine runs: identical seeds => identical aggregate
/// counters, run-to-run, regardless of thread scheduling.
TEST(Engine, DeterministicAcrossRuns) {
  auto runOnce = [](std::size_t shards) {
    const auto spec = workload::ccdNetworkWorkload(Scale::kTest);
    std::vector<WorkloadSpec> specs(3, spec);
    EngineConfig cfg;
    cfg.shards = shards;
    cfg.queueCapacity = 4;
    report::ConcurrentAnomalyStore store;
    DetectionEngine eng(cfg, store.sink());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      store.registerStream("s" + std::to_string(i), specs[i].hierarchy);
      eng.addStream("s" + std::to_string(i), specs[i].hierarchy,
                    testPipelineConfig(specs[i]),
                    std::make_unique<GeneratorSource>(specs[i], 0, 40,
                                                      7 * (i + 1)));
    }
    eng.start();
    const auto stats = eng.drain();
    return std::tuple(stats.recordsProcessed, stats.instancesDetected,
                      stats.anomaliesReported, store.totalSize());
  };
  const auto oneShard = runOnce(1);
  EXPECT_EQ(runOnce(3), oneShard);
  EXPECT_EQ(runOnce(3), oneShard);
}

/// Many small units over far more shards than cores: exercises queue
/// wakeups and thread churn; completion without deadlock is the assertion.
TEST(Engine, StressManyShardsManySmallUnits) {
  const auto spec = workload::scdNetworkWorkload(Scale::kTest);
  const std::size_t streams = 12;
  const TimeUnit units = 128;
  EngineConfig cfg;
  cfg.shards = 12;  // >> cores on any CI box
  cfg.queueCapacity = 2;
  std::atomic<std::size_t> results{0};
  DetectionEngine eng(cfg, [&](const std::string&, const InstanceResult&) {
    results.fetch_add(1);
  });
  for (std::size_t i = 0; i < streams; ++i) {
    eng.addStream("s" + std::to_string(i), spec.hierarchy,
                  testPipelineConfig(spec),
                  std::make_unique<GeneratorSource>(spec, 0, units, i + 1));
  }
  eng.start();
  const auto stats = eng.drain();
  EXPECT_EQ(stats.unitsProcessed, streams * static_cast<std::size_t>(units));
  const std::size_t perStream = units - 16 + 1;  // window 16
  EXPECT_EQ(results.load(), streams * perStream);
  EXPECT_EQ(stats.instancesDetected, streams * perStream);
  for (std::size_t i = 0; i < streams; ++i) {
    EXPECT_EQ(eng.streamSummary(i).unitsProcessed,
              static_cast<std::size_t>(units));
  }
}

/// stats() is documented as pollable from any thread, including while
/// drain() finalizes timing — the poller and the drain must not race on
/// the elapsed-time bookkeeping (run under TSan in CI).
TEST(Engine, StatsPollDuringDrainIsRaceFree) {
  const auto spec = workload::ccdNetworkWorkload(Scale::kTest);
  EngineConfig cfg;
  cfg.shards = 2;
  cfg.queueCapacity = 4;
  DetectionEngine eng(cfg, nullptr);
  for (std::size_t i = 0; i < 4; ++i) {
    eng.addStream("s" + std::to_string(i), spec.hierarchy,
                  testPipelineConfig(spec),
                  std::make_unique<GeneratorSource>(spec, 0, 64, i + 1));
  }
  std::atomic<bool> done{false};
  eng.start();
  std::thread poller([&] {
    while (!done.load()) {
      const auto s = eng.stats();
      EXPECT_GE(s.elapsedSeconds, 0.0);
      EXPECT_LE(s.unitsProcessed, 4u * 64u);
    }
  });
  const auto stats = eng.drain();
  done.store(true);
  poller.join();
  EXPECT_EQ(stats.unitsProcessed, 4u * 64u);
  EXPECT_EQ(stats.unitsIngested, stats.unitsProcessed);
  EXPECT_EQ(stats.unitsDiscarded, 0u);
  EXPECT_GT(stats.elapsedSeconds, 0.0);
  // Final stats are frozen: polling later returns the same elapsed time.
  const auto later = eng.stats();
  EXPECT_EQ(later.elapsedSeconds, stats.elapsedSeconds);
}

/// stop() must actually discard the queued backlog (its documented
/// contract), not let the worker drain it. The sink blocks the worker on a
/// gate so the queue holds a known backlog when stop() fires.
TEST(Engine, StopDiscardsQueuedWork) {
  const auto spec = workload::ccdNetworkWorkload(Scale::kTest);
  EngineConfig cfg;
  cfg.shards = 1;
  cfg.queueCapacity = 8;
  std::atomic<bool> release{false};
  PipelineConfig pcfg = testPipelineConfig(spec);
  pcfg.detector.windowLength = 2;  // instances (and the gate) fire early
  DetectionEngine eng(cfg, [&](const std::string&, const InstanceResult&) {
    while (!release.load()) std::this_thread::yield();
  });
  eng.addStream("s0", spec.hierarchy, pcfg,
                std::make_unique<GeneratorSource>(spec, 0, 100000, 1));
  eng.start();
  // Wait until the worker is wedged in the sink and ingest has piled a
  // backlog into the queue behind it.
  while (eng.stats().queueLagUnits() < cfg.queueCapacity) {
    std::this_thread::yield();
  }
  std::thread stopper([&] { eng.stop(); });
  // Only release the worker once stop() has demonstrably discarded the
  // backlog — otherwise a fast worker could drain it first.
  while (eng.stats().unitsDiscarded == 0) std::this_thread::yield();
  release.store(true);  // un-wedge the worker; stop() can now join it
  stopper.join();

  const auto stats = eng.stats();
  EXPECT_GT(stats.unitsDiscarded, 0u);
  EXPECT_EQ(stats.unitsIngested,
            stats.unitsProcessed + stats.unitsDiscarded);
  // The discarded backlog must not have reached the pipeline.
  EXPECT_LT(stats.unitsProcessed, stats.unitsIngested);
}

/// A stream shorter than the detector window never leaves warm-up; that
/// must be visible in the summary/stats instead of silently reporting
/// "processed" units with zero instances.
TEST(Engine, SurfacesStreamsEndingInWarmup) {
  const auto spec = workload::ccdNetworkWorkload(Scale::kTest);
  EngineConfig cfg;
  cfg.shards = 1;
  DetectionEngine eng(cfg, nullptr);
  PipelineConfig pcfg = testPipelineConfig(spec);  // window 16
  eng.addStream("short", spec.hierarchy, pcfg,
                std::make_unique<GeneratorSource>(spec, 0, 10, 3));
  eng.start();
  const auto stats = eng.drain();
  EXPECT_EQ(stats.unitsProcessed, 10u);
  EXPECT_EQ(stats.instancesDetected, 0u);
  EXPECT_EQ(stats.warmupUnitsBuffered, 10u);
  const auto sum = eng.streamSummary(0);
  EXPECT_EQ(sum.warmupUnitsBuffered, 10u);
  EXPECT_EQ(sum.instancesDetected, 0u);
}

/// stop() mid-flight must unblock parked producers and join cleanly.
TEST(Engine, StopInterruptsBackloggedIngest) {
  const auto spec = workload::ccdNetworkWorkload(Scale::kTest);
  EngineConfig cfg;
  cfg.shards = 1;
  cfg.queueCapacity = 1;  // producers park almost immediately
  DetectionEngine eng(cfg, nullptr);
  eng.addStream("s0", spec.hierarchy, testPipelineConfig(spec),
                std::make_unique<GeneratorSource>(spec, 0, 100000, 1));
  eng.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  eng.stop();  // must not hang
  const auto stats = eng.stats();
  EXPECT_LT(stats.unitsProcessed, 100000u);
  EXPECT_GT(stats.elapsedSeconds, 0.0);
}

/// Junk rows in a CSV-backed stream surface through RunSummary and
/// EngineStats instead of disappearing.
TEST(Engine, SurfacesCsvJunkRowCounts) {
  const auto spec = workload::ccdNetworkWorkload(Scale::kTest);
  // A trace with two good rows, one unknown category, one malformed row.
  const std::string path = "engine_junk_test.csv";
  {
    const NodeId leaf = spec.hierarchy.leaves().front();
    std::ofstream out(path);
    out << spec.hierarchy.path(leaf) << ",100\n";
    out << "no/such/category/path,200\n";
    out << "not a csv row\n";
    out << spec.hierarchy.path(leaf) << ",900\n";
  }

  {  // Plain pipeline run: RunSummary carries the count.
    CsvSource src(path, spec.hierarchy);
    PipelineConfig cfg = testPipelineConfig(spec);
    cfg.detector.windowLength = 2;
    cfg.delta = 600;
    TiresiasPipeline pipeline(spec.hierarchy, cfg);
    const auto sum = pipeline.run(src, nullptr);
    EXPECT_EQ(sum.junkRowsSkipped, 2u);
    EXPECT_EQ(sum.recordsProcessed, 2u);
  }

  {  // Engine run: EngineStats and streamSummary carry it too.
    EngineConfig ecfg;
    ecfg.shards = 1;
    DetectionEngine eng(ecfg, nullptr);
    PipelineConfig cfg = testPipelineConfig(spec);
    cfg.detector.windowLength = 2;
    cfg.delta = 600;
    eng.addStream("csv", spec.hierarchy, cfg,
                  std::make_unique<CsvSource>(path, spec.hierarchy));
    eng.start();
    const auto stats = eng.drain();
    EXPECT_EQ(stats.junkRowsSkipped, 2u);
    EXPECT_EQ(eng.streamSummary(0).junkRowsSkipped, 2u);
    EXPECT_EQ(stats.recordsProcessed, 2u);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tiresias
