// Tests for the task-scheduled multi-stream detection engine
// (src/engine/): the MPMC bounded queue, the Scheduler's per-stream
// serialization, the sequential-equivalence guarantee across worker-pool
// sizes (including a pathologically skewed 200+-stream mix), stress with
// workers >> cores, early stop, and junk-row surfacing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <thread>

#include "core/pipeline.h"
#include "engine/bounded_queue.h"
#include "engine/engine.h"
#include "engine/scheduler.h"
#include "report/concurrent_store.h"
#include "timeseries/ewma.h"
#include "workload/ccd.h"
#include "workload/scd.h"

namespace tiresias {
namespace {

using engine::BoundedQueue;
using engine::DetectionEngine;
using engine::EngineConfig;
using engine::Scheduler;
using engine::SchedulerConfig;
using workload::GeneratorSource;
using workload::Scale;
using workload::WorkloadSpec;

PipelineConfig testPipelineConfig(const WorkloadSpec& spec) {
  PipelineConfig cfg;
  cfg.delta = spec.unit;
  cfg.detector.theta = 8.0;
  cfg.detector.windowLength = 16;
  cfg.detector.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
  return cfg;
}

TEST(BoundedQueue, FifoAndDepthTracking) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.depth(), 4u);
  EXPECT_EQ(q.maxDepth(), 4u);
  EXPECT_EQ(q.blockedPushes(), 0u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.pop(), i);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(BoundedQueue, BackpressureBlocksProducerUntilConsumed) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(3));  // blocks until the consumer pops
    pushed.store(true);
  });
  // The producer must be parked on the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_GE(q.blockedPushes(), 1u);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BoundedQueue, TryPushNeverBlocks) {
  BoundedQueue<int> q(2);
  using Push = BoundedQueue<int>::PushResult;
  EXPECT_EQ(q.tryPush(1), Push::kOk);
  EXPECT_EQ(q.tryPush(2), Push::kOk);
  EXPECT_EQ(q.tryPush(3), Push::kFull);  // at capacity: refused, not parked
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.tryPush(3), Push::kOk);
  q.close();
  EXPECT_EQ(q.tryPush(4), Push::kClosed);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, CloseDrainsThenEndsStream) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(7));
  q.close();
  EXPECT_FALSE(q.push(8));          // refused after close
  EXPECT_EQ(q.pop(), 7);            // queued items still drain
  EXPECT_EQ(q.pop(), std::nullopt); // then end-of-stream
}

TEST(BoundedQueue, ClosedEmptyQueueUnblocksConsumer) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  q.close();
  consumer.join();
}

TEST(BoundedQueue, CloseDiscardDropsQueuedItems) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close(BoundedQueue<int>::CloseMode::kDiscard);
  EXPECT_EQ(q.pop(), std::nullopt);  // backlog dropped, not drained
  EXPECT_EQ(q.discardedItems(), 2u);
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_FALSE(q.push(3));
}

TEST(BoundedQueue, DiscardAfterDrainCloseStillDropsBacklog) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(1));
  q.close();  // graceful close: item stays poppable...
  q.close(BoundedQueue<int>::CloseMode::kDiscard);  // ...until discarded
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_EQ(q.discardedItems(), 1u);
}

/// Scheduler in isolation: whatever the worker count, every stream's
/// units must come out serialized and in submission order.
TEST(Scheduler, PreservesPerStreamFifoUnderManyWorkers) {
  const std::size_t streams = 6;
  const std::size_t unitsPerStream = 64;
  std::vector<std::vector<TimeUnit>> seen(streams);
  std::vector<std::atomic<int>> inFlight(streams);
  for (auto& f : inFlight) f.store(0);
  std::atomic<bool> overlapped{false};

  SchedulerConfig cfg;
  cfg.workers = 8;
  cfg.runBudget = 3;
  cfg.streamQueueCapacity = 4;
  cfg.totalQueueCapacity = 16;
  Scheduler sched(cfg, [&](std::size_t, std::size_t id, TimeUnitBatch& b) {
    if (inFlight[id].fetch_add(1) != 0) overlapped.store(true);
    seen[id].push_back(b.unit);  // safe: serialized per stream
    std::this_thread::yield();
    inFlight[id].fetch_sub(1);
  });
  for (std::size_t i = 0; i < streams; ++i) ASSERT_EQ(sched.addStream(), i);
  sched.start();

  // One producer per stream, as the engine's ingest partition guarantees.
  std::vector<std::thread> producers;
  for (std::size_t i = 0; i < streams; ++i) {
    producers.emplace_back([&, i] {
      for (std::size_t u = 0; u < unitsPerStream;) {
        if (!sched.canAccept(i)) {
          if (!sched.waitForSpace()) return;
          continue;
        }
        TimeUnitBatch b;
        b.unit = static_cast<TimeUnit>(u);
        ASSERT_TRUE(sched.submit(i, std::move(b)));
        ++u;
      }
      sched.finishStream(i);
    });
  }
  for (auto& t : producers) t.join();
  sched.drainAndJoin();

  EXPECT_FALSE(overlapped.load());
  for (std::size_t i = 0; i < streams; ++i) {
    ASSERT_EQ(seen[i].size(), unitsPerStream);
    for (std::size_t u = 0; u < unitsPerStream; ++u) {
      EXPECT_EQ(seen[i][u], static_cast<TimeUnit>(u));
    }
  }
  const auto stats = sched.stats();
  EXPECT_GT(stats.claims, 0u);
  EXPECT_EQ(stats.queuedUnits, 0u);
  EXPECT_GT(stats.maxQueuedUnits, 0u);
  EXPECT_LE(stats.maxReadyStreams, streams);
}

/// The headline guarantee: k streams through an M-worker engine produce
/// exactly the per-stream anomalies and summaries of k sequential
/// TiresiasPipeline::run calls. The tiny queues force backpressure on the
/// ingest path.
TEST(Engine, EquivalentToSequentialPipelines) {
  const std::vector<WorkloadSpec> specs = {
      workload::ccdNetworkWorkload(Scale::kTest),
      workload::ccdTroubleWorkload(Scale::kTest),
      workload::scdNetworkWorkload(Scale::kTest),
      workload::ccdNetworkWorkload(Scale::kTest),
  };
  const TimeUnit units = 48;

  // Sequential baseline, one pipeline per stream.
  std::vector<std::vector<report::StoredAnomaly>> baselineAnomalies;
  std::vector<RunSummary> baselineSummaries;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    GeneratorSource src(specs[i], 0, units, 100 + i);
    TiresiasPipeline pipeline(borrowHierarchy(specs[i].hierarchy), testPipelineConfig(specs[i]));
    report::AnomalyStore store(specs[i].hierarchy);
    baselineSummaries.push_back(
        pipeline.run(src, [&](const InstanceResult& r) { store.add(r); }));
    baselineAnomalies.push_back(store.all());
  }

  EngineConfig cfg;
  cfg.workers = 3;             // uneven 4-streams-over-3-workers contention
  cfg.ingestThreads = 2;
  cfg.runBudget = 2;
  cfg.streamQueueCapacity = 2; // force per-stream backpressure
  cfg.totalQueueCapacity = 4;  // ...and the global bound
  report::ConcurrentAnomalyStore store;
  DetectionEngine eng(cfg, store.sink());
  std::vector<std::string> names;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::string name = "stream-" + std::to_string(i);
    names.push_back(name);
    store.registerStream(name, specs[i].hierarchy);
    eng.addStream(name, borrowHierarchy(specs[i].hierarchy), testPipelineConfig(specs[i]),
                  std::make_unique<GeneratorSource>(specs[i], 0, units,
                                                    100 + i));
  }
  eng.start();
  const auto stats = eng.drain();

  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(names[i]);
    const auto sum = eng.streamSummary(i);
    EXPECT_EQ(sum.unitsProcessed, baselineSummaries[i].unitsProcessed);
    EXPECT_EQ(sum.recordsProcessed, baselineSummaries[i].recordsProcessed);
    EXPECT_EQ(sum.instancesDetected, baselineSummaries[i].instancesDetected);
    EXPECT_EQ(sum.anomaliesReported, baselineSummaries[i].anomaliesReported);

    const auto got = store.snapshot(names[i]);
    const auto& want = baselineAnomalies[i];
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t j = 0; j < got.size(); ++j) {
      EXPECT_EQ(got[j].anomaly, want[j].anomaly);
      EXPECT_EQ(got[j].path, want[j].path);
      EXPECT_EQ(got[j].depth, want[j].depth);
    }
  }

  std::size_t baselineUnits = 0, baselineRecords = 0;
  for (const auto& s : baselineSummaries) {
    baselineUnits += s.unitsProcessed;
    baselineRecords += s.recordsProcessed;
  }
  EXPECT_EQ(stats.unitsProcessed, baselineUnits);
  EXPECT_EQ(stats.recordsProcessed, baselineRecords);
  EXPECT_EQ(stats.streams, specs.size());
  ASSERT_EQ(stats.perStream.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(stats.perStream[i].name, names[i]);
    EXPECT_EQ(stats.perStream[i].unitsProcessed,
              baselineSummaries[i].unitsProcessed);
    EXPECT_GT(stats.perStream[i].runs, 0u);
  }
  // The tiny queues must actually have exercised the scheduler: streams
  // were claimed, requeued with backlog, and producers parked.
  EXPECT_GT(stats.maxQueueDepth, 0u);
  EXPECT_GT(stats.scheduler.claims, 0u);
  EXPECT_GT(stats.scheduler.requeues, 0u);
  EXPECT_GT(stats.scheduler.maxQueuedUnits, 0u);
}

/// Pathological skew (the satellite stress): one stream carries ~95% of
/// all records among 200 tiny streams, plus a zero-record stream. Every
/// worker-pool size must reproduce the sequential baseline bit-identically
/// per stream — the heavy stream may occupy one worker for long stretches,
/// but it must never corrupt or reorder its neighbors.
TEST(Engine, SkewedMixEquivalentAcrossWorkerGrid) {
  const auto spec = workload::ccdNetworkWorkload(Scale::kTest);
  const auto& h = spec.hierarchy;
  const std::vector<NodeId> leaves = h.leaves();
  const Duration delta = spec.unit;

  // Synthetic per-stream traces (VectorSource) so the skew is exact.
  // Stream 0: 180 units x 100 records plus a localized 400-record spike on
  // one leaf at unit 40 (so it produces real anomalies). Streams 1..200:
  // one record every 6th unit over 24 units. Stream 201: zero records
  // (exhausts immediately, must still retire).
  const std::size_t kTiny = 200;
  const TimeUnit heavyUnits = 180, tinyUnits = 24;
  auto makeRecords = [&](std::size_t streamIdx) {
    std::vector<Record> records;
    if (streamIdx == kTiny + 1) return records;  // the zero-record stream
    const bool heavy = streamIdx == 0;
    const TimeUnit units = heavy ? heavyUnits : tinyUnits;
    for (TimeUnit u = 0; u < units; ++u) {
      std::size_t perUnit = heavy ? 100 : (u % 6 == 0 ? 1 : 0);
      if (heavy && u == 40) perUnit += 400;  // spike, placed on one leaf
      for (std::size_t i = 0; i < perUnit; ++i) {
        Record r;
        r.time = static_cast<Timestamp>(u) * delta +
                 static_cast<Timestamp>(i % static_cast<std::size_t>(delta));
        r.category = (heavy && i >= 100)
                         ? leaves[0]
                         : leaves[(streamIdx + i) % leaves.size()];
        records.push_back(r);
      }
    }
    return records;
  };
  PipelineConfig pcfg = testPipelineConfig(spec);
  pcfg.detector.theta = 4.0;
  const std::size_t streams = kTiny + 2;

  // Sequential baseline.
  std::vector<std::vector<report::StoredAnomaly>> baseAnoms(streams);
  std::vector<RunSummary> baseSums(streams);
  std::size_t totalBaseRecords = 0, heavyRecords = 0;
  for (std::size_t i = 0; i < streams; ++i) {
    VectorSource src(makeRecords(i));
    TiresiasPipeline pipeline(borrowHierarchy(h), pcfg);
    report::AnomalyStore store(h);
    baseSums[i] =
        pipeline.run(src, [&](const InstanceResult& r) { store.add(r); });
    baseAnoms[i] = store.all();
    totalBaseRecords += baseSums[i].recordsProcessed;
    if (i == 0) heavyRecords = baseSums[i].recordsProcessed;
  }
  // The mix really is pathological: >= 95% of records in one stream, and
  // the heavy stream really detects something.
  EXPECT_GE(static_cast<double>(heavyRecords),
            0.95 * static_cast<double>(totalBaseRecords));
  EXPECT_GT(baseAnoms[0].size(), 0u);

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    EngineConfig cfg;
    cfg.workers = workers;
    cfg.ingestThreads = 2;
    cfg.streamQueueCapacity = 4;
    cfg.totalQueueCapacity = 64;
    cfg.runBudget = 4;
    report::ConcurrentAnomalyStore store;
    DetectionEngine eng(cfg, store.sink());
    for (std::size_t i = 0; i < streams; ++i) {
      const std::string name = "s" + std::to_string(i);
      store.registerStream(name, h);
      eng.addStream(name, borrowHierarchy(h), pcfg,
                    std::make_unique<VectorSource>(makeRecords(i)));
    }
    eng.start();
    const auto stats = eng.drain();

    EXPECT_EQ(stats.recordsProcessed, totalBaseRecords);
    EXPECT_EQ(stats.busiestStreamUnits,
              static_cast<std::size_t>(heavyUnits));
    EXPECT_GT(stats.busiestStreamShare, 0.02);  // 180 of ~4980 units
    for (std::size_t i = 0; i < streams; ++i) {
      SCOPED_TRACE("stream " + std::to_string(i));
      const auto sum = eng.streamSummary(i);
      EXPECT_EQ(sum.unitsProcessed, baseSums[i].unitsProcessed);
      EXPECT_EQ(sum.recordsProcessed, baseSums[i].recordsProcessed);
      EXPECT_EQ(sum.instancesDetected, baseSums[i].instancesDetected);
      EXPECT_EQ(sum.anomaliesReported, baseSums[i].anomaliesReported);
      const auto got = store.snapshot("s" + std::to_string(i));
      ASSERT_EQ(got.size(), baseAnoms[i].size());
      for (std::size_t j = 0; j < got.size(); ++j) {
        EXPECT_EQ(got[j].anomaly, baseAnoms[i][j].anomaly);
        EXPECT_EQ(got[j].path, baseAnoms[i][j].path);
        EXPECT_EQ(got[j].depth, baseAnoms[i][j].depth);
      }
    }
    // The zero-record stream exhausted without ever becoming ready.
    EXPECT_EQ(stats.perStream[kTiny + 1].unitsIngested, 0u);
    EXPECT_EQ(stats.perStream[kTiny + 1].runs, 0u);
  }
}

/// Determinism across engine runs: identical seeds => identical aggregate
/// counters, run-to-run, regardless of thread scheduling.
TEST(Engine, DeterministicAcrossRuns) {
  auto runOnce = [](std::size_t workers) {
    const auto spec = workload::ccdNetworkWorkload(Scale::kTest);
    std::vector<WorkloadSpec> specs(3, spec);
    EngineConfig cfg;
    cfg.workers = workers;
    cfg.ingestThreads = workers > 1 ? 2 : 1;
    cfg.streamQueueCapacity = 4;
    report::ConcurrentAnomalyStore store;
    DetectionEngine eng(cfg, store.sink());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      store.registerStream("s" + std::to_string(i), specs[i].hierarchy);
      eng.addStream("s" + std::to_string(i), borrowHierarchy(specs[i].hierarchy),
                    testPipelineConfig(specs[i]),
                    std::make_unique<GeneratorSource>(specs[i], 0, 40,
                                                      7 * (i + 1)));
    }
    eng.start();
    const auto stats = eng.drain();
    return std::tuple(stats.recordsProcessed, stats.instancesDetected,
                      stats.anomaliesReported, store.totalSize());
  };
  const auto oneWorker = runOnce(1);
  EXPECT_EQ(runOnce(3), oneWorker);
  EXPECT_EQ(runOnce(3), oneWorker);
}

/// Many small units with far more workers than cores (and more than
/// streams): exercises ready-queue wakeups and thread churn; completion
/// without deadlock is the assertion.
TEST(Engine, StressManyWorkersManySmallUnits) {
  const auto spec = workload::scdNetworkWorkload(Scale::kTest);
  const std::size_t streams = 12;
  const TimeUnit units = 128;
  EngineConfig cfg;
  cfg.workers = 16;  // >> cores on any CI box, > streams
  cfg.ingestThreads = 3;
  cfg.streamQueueCapacity = 2;
  cfg.totalQueueCapacity = 8;
  cfg.runBudget = 1;  // maximal scheduling churn
  std::atomic<std::size_t> results{0};
  DetectionEngine eng(cfg, [&](const std::string&, const InstanceResult&) {
    results.fetch_add(1);
  });
  for (std::size_t i = 0; i < streams; ++i) {
    eng.addStream("s" + std::to_string(i), borrowHierarchy(spec.hierarchy),
                  testPipelineConfig(spec),
                  std::make_unique<GeneratorSource>(spec, 0, units, i + 1));
  }
  eng.start();
  const auto stats = eng.drain();
  EXPECT_EQ(stats.unitsProcessed, streams * static_cast<std::size_t>(units));
  const std::size_t perStream = units - 16 + 1;  // window 16
  EXPECT_EQ(results.load(), streams * perStream);
  EXPECT_EQ(stats.instancesDetected, streams * perStream);
  for (std::size_t i = 0; i < streams; ++i) {
    EXPECT_EQ(eng.streamSummary(i).unitsProcessed,
              static_cast<std::size_t>(units));
  }
}

/// stats() is documented as pollable from any thread, including while
/// drain() finalizes timing — the poller and the drain must not race on
/// the elapsed-time bookkeeping (run under TSan in CI).
TEST(Engine, StatsPollDuringDrainIsRaceFree) {
  const auto spec = workload::ccdNetworkWorkload(Scale::kTest);
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.ingestThreads = 2;
  cfg.streamQueueCapacity = 4;
  DetectionEngine eng(cfg, nullptr);
  for (std::size_t i = 0; i < 4; ++i) {
    eng.addStream("s" + std::to_string(i), borrowHierarchy(spec.hierarchy),
                  testPipelineConfig(spec),
                  std::make_unique<GeneratorSource>(spec, 0, 64, i + 1));
  }
  std::atomic<bool> done{false};
  eng.start();
  std::thread poller([&] {
    while (!done.load()) {
      const auto s = eng.stats();
      EXPECT_GE(s.elapsedSeconds, 0.0);
      EXPECT_LE(s.unitsProcessed, 4u * 64u);
    }
  });
  const auto stats = eng.drain();
  done.store(true);
  poller.join();
  EXPECT_EQ(stats.unitsProcessed, 4u * 64u);
  EXPECT_EQ(stats.unitsIngested, stats.unitsProcessed);
  EXPECT_EQ(stats.unitsDiscarded, 0u);
  EXPECT_GT(stats.elapsedSeconds, 0.0);
  // Final stats are frozen: polling later returns the same elapsed time.
  const auto later = eng.stats();
  EXPECT_EQ(later.elapsedSeconds, stats.elapsedSeconds);
}

/// streamSummary() while the pools are still running would race the
/// owning worker's pipeline; the engine fails fast instead of returning a
/// torn summary.
TEST(EngineDeathTest, StreamSummaryWhileRunningFailsFast) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto spec = workload::ccdNetworkWorkload(Scale::kTest);
  EXPECT_DEATH(
      {
        EngineConfig cfg;
        cfg.workers = 1;
        DetectionEngine eng(cfg, nullptr);
        eng.addStream("s0", borrowHierarchy(spec.hierarchy), testPipelineConfig(spec),
                      std::make_unique<GeneratorSource>(spec, 0, 100000, 1));
        eng.start();
        (void)eng.streamSummary(0);  // pools still running: must abort
      },
      "streamSummary\\(\\) while the pools are running");
}

/// stop() must actually discard the queued backlog (its documented
/// contract), not let the workers drain it. The sink blocks the worker on
/// a gate so the stream queue holds a known backlog when stop() fires.
TEST(Engine, StopDiscardsQueuedWork) {
  const auto spec = workload::ccdNetworkWorkload(Scale::kTest);
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.streamQueueCapacity = 8;
  std::atomic<bool> release{false};
  PipelineConfig pcfg = testPipelineConfig(spec);
  pcfg.detector.windowLength = 2;  // instances (and the gate) fire early
  DetectionEngine eng(cfg, [&](const std::string&, const InstanceResult&) {
    while (!release.load()) std::this_thread::yield();
  });
  eng.addStream("s0", borrowHierarchy(spec.hierarchy), pcfg,
                std::make_unique<GeneratorSource>(spec, 0, 100000, 1));
  eng.start();
  // Wait until the worker is wedged in the sink and ingest has piled a
  // backlog into the stream queue behind it.
  while (eng.stats().queueLagUnits() < cfg.streamQueueCapacity) {
    std::this_thread::yield();
  }
  std::thread stopper([&] { eng.stop(); });
  // Only release the worker once stop() has demonstrably discarded the
  // backlog — otherwise a fast worker could drain it first.
  while (eng.stats().unitsDiscarded == 0) std::this_thread::yield();
  release.store(true);  // un-wedge the worker; stop() can now join it
  stopper.join();

  const auto stats = eng.stats();
  EXPECT_GT(stats.unitsDiscarded, 0u);
  EXPECT_EQ(stats.unitsIngested,
            stats.unitsProcessed + stats.unitsDiscarded);
  // The discarded backlog must not have reached the pipeline.
  EXPECT_LT(stats.unitsProcessed, stats.unitsIngested);
  // ...and the summary is safe (and stable) after stop().
  EXPECT_EQ(eng.streamSummary(0).unitsProcessed, stats.unitsProcessed);
}

/// A stream shorter than the detector window never leaves warm-up; that
/// must be visible in the summary/stats instead of silently reporting
/// "processed" units with zero instances.
TEST(Engine, SurfacesStreamsEndingInWarmup) {
  const auto spec = workload::ccdNetworkWorkload(Scale::kTest);
  EngineConfig cfg;
  cfg.workers = 1;
  DetectionEngine eng(cfg, nullptr);
  PipelineConfig pcfg = testPipelineConfig(spec);  // window 16
  eng.addStream("short", borrowHierarchy(spec.hierarchy), pcfg,
                std::make_unique<GeneratorSource>(spec, 0, 10, 3));
  eng.start();
  const auto stats = eng.drain();
  EXPECT_EQ(stats.unitsProcessed, 10u);
  EXPECT_EQ(stats.instancesDetected, 0u);
  EXPECT_EQ(stats.warmupUnitsBuffered, 10u);
  const auto sum = eng.streamSummary(0);
  EXPECT_EQ(sum.warmupUnitsBuffered, 10u);
  EXPECT_EQ(sum.instancesDetected, 0u);
}

/// stop() mid-flight must unblock parked producers and join cleanly.
TEST(Engine, StopInterruptsBackloggedIngest) {
  const auto spec = workload::ccdNetworkWorkload(Scale::kTest);
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.streamQueueCapacity = 1;  // producers park almost immediately
  cfg.totalQueueCapacity = 1;
  DetectionEngine eng(cfg, nullptr);
  eng.addStream("s0", borrowHierarchy(spec.hierarchy), testPipelineConfig(spec),
                std::make_unique<GeneratorSource>(spec, 0, 100000, 1));
  eng.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  eng.stop();  // must not hang
  const auto stats = eng.stats();
  EXPECT_LT(stats.unitsProcessed, 100000u);
  EXPECT_GT(stats.elapsedSeconds, 0.0);
}

/// Junk rows in a CSV-backed stream surface through RunSummary and
/// EngineStats instead of disappearing.
TEST(Engine, SurfacesCsvJunkRowCounts) {
  const auto spec = workload::ccdNetworkWorkload(Scale::kTest);
  // A trace with two good rows, one unknown category, one malformed row.
  const std::string path = "engine_junk_test.csv";
  {
    const NodeId leaf = spec.hierarchy.leaves().front();
    std::ofstream out(path);
    out << spec.hierarchy.path(leaf) << ",100\n";
    out << "no/such/category/path,200\n";
    out << "not a csv row\n";
    out << spec.hierarchy.path(leaf) << ",900\n";
  }

  {  // Plain pipeline run: RunSummary carries the count.
    CsvSource src(path, spec.hierarchy);
    PipelineConfig cfg = testPipelineConfig(spec);
    cfg.detector.windowLength = 2;
    cfg.delta = 600;
    TiresiasPipeline pipeline(borrowHierarchy(spec.hierarchy), cfg);
    const auto sum = pipeline.run(src, nullptr);
    EXPECT_EQ(sum.junkRowsSkipped, 2u);
    EXPECT_EQ(sum.recordsProcessed, 2u);
  }

  {  // Engine run: EngineStats and streamSummary carry it too.
    EngineConfig ecfg;
    ecfg.workers = 1;
    DetectionEngine eng(ecfg, nullptr);
    PipelineConfig cfg = testPipelineConfig(spec);
    cfg.detector.windowLength = 2;
    cfg.delta = 600;
    eng.addStream("csv", borrowHierarchy(spec.hierarchy), cfg,
                  std::make_unique<CsvSource>(path, spec.hierarchy));
    eng.start();
    const auto stats = eng.drain();
    EXPECT_EQ(stats.junkRowsSkipped, 2u);
    EXPECT_EQ(eng.streamSummary(0).junkRowsSkipped, 2u);
    EXPECT_EQ(stats.recordsProcessed, 2u);
  }
  std::remove(path.c_str());
}

/// The metrics layer rides along every engine run: stage spans must nest
/// (inner stage totals bounded by their enclosing stage, everything
/// bounded by wall time) and per-unit accounting must line up exactly
/// with the engine's own counters.
TEST(Engine, MetricsStageSpansNestAndAccountForUnits) {
  const auto spec = workload::ccdNetworkWorkload(Scale::kTest);
  EngineConfig cfg;
  cfg.workers = 1;  // single worker: run-slice totals are one thread's time
  cfg.ingestThreads = 1;
  cfg.metricsSampleMillis = 5;  // fast sampler so short runs collect gauges
  DetectionEngine eng(cfg, nullptr);
  eng.addStream("s0", borrowHierarchy(spec.hierarchy), testPipelineConfig(spec),
                std::make_unique<GeneratorSource>(spec, 0, 48, 7));
  eng.start();
  const auto stats = eng.drain();
  ASSERT_TRUE(stats.metrics.enabled);
  ASSERT_FALSE(stats.metrics.stages.empty());

  using obs::Stage;
  const auto* unitLatency = stats.metrics.stage(Stage::kUnitLatency);
  ASSERT_NE(unitLatency, nullptr);
  EXPECT_EQ(unitLatency->count, stats.unitsProcessed);

  const auto* fetch = stats.metrics.stage(Stage::kSourceFetch);
  const auto* flush = stats.metrics.stage(Stage::kBatchFlush);
  ASSERT_NE(fetch, nullptr);
  ASSERT_NE(flush, nullptr);
  // The source pull happens inside the batcher flush span, so its total
  // can never exceed the flush total (span nesting).
  EXPECT_LE(fetch->totalSeconds, flush->totalSeconds);

  const auto* observe = stats.metrics.stage(Stage::kAdaObserve);
  const auto* slice = stats.metrics.stage(Stage::kRunSlice);
  ASSERT_NE(observe, nullptr);
  ASSERT_NE(slice, nullptr);
  EXPECT_EQ(observe->count, stats.unitsProcessed);
  // Detector observe happens inside run slices; run slices happen on one
  // worker thread, so neither can exceed the engine's wall time.
  EXPECT_LE(observe->totalSeconds, slice->totalSeconds);
  EXPECT_LE(slice->totalSeconds, stats.elapsedSeconds);
  EXPECT_LE(flush->totalSeconds, stats.elapsedSeconds);

  // Every row must be internally consistent: ordered percentiles bounded
  // by the tracked max.
  for (const auto& st : stats.metrics.stages) {
    SCOPED_TRACE(st.name);
    EXPECT_GT(st.count, 0u);
    EXPECT_LE(st.p50, st.p90);
    EXPECT_LE(st.p90, st.p99);
    EXPECT_LE(st.p99, st.max);
  }
  // The sampler ran at least once (drain takes a parting sample).
  EXPECT_FALSE(stats.metrics.gauges.empty());
}

/// metrics=false must disable the whole layer: no registry, no snapshot
/// content, identical engine results otherwise.
TEST(Engine, MetricsDisabledLeavesSnapshotEmpty) {
  const auto spec = workload::ccdNetworkWorkload(Scale::kTest);
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.metrics = false;
  DetectionEngine eng(cfg, nullptr);
  eng.addStream("s0", borrowHierarchy(spec.hierarchy), testPipelineConfig(spec),
                std::make_unique<GeneratorSource>(spec, 0, 24, 7));
  eng.start();
  const auto stats = eng.drain();
  EXPECT_GT(stats.unitsProcessed, 0u);
  EXPECT_FALSE(stats.metrics.enabled);
  EXPECT_TRUE(stats.metrics.stages.empty());
  EXPECT_TRUE(stats.metrics.gauges.empty());
}

/// A fleet registered against ONE shared spec must hold one engine-owned
/// hierarchy, and the engine must keep it alive even after the caller
/// drops every other reference — the lifetime footgun the shared-handle
/// addStream exists to close.
TEST(Engine, SharedHierarchyFleetKeepsOneCopyAlive) {
  auto spec = std::make_shared<const WorkloadSpec>(
      workload::ccdNetworkWorkload(Scale::kTest));
  EngineConfig cfg;
  cfg.workers = 2;
  DetectionEngine eng(cfg, nullptr);
  for (std::size_t i = 0; i < 16; ++i) {
    eng.addStream("s" + std::to_string(i), workload::sharedHierarchy(spec),
                  testPipelineConfig(*spec),
                  std::make_unique<GeneratorSource>(*spec, 0, 12, 50 + i));
  }
  // Sources borrow the spec by reference, so the spec object must stay
  // alive for ingest — but the *caller's handle* can go: the engine's
  // aliasing handles keep the control block (and thus the spec) pinned.
  std::weak_ptr<const WorkloadSpec> watch = spec;
  const WorkloadSpec* raw = spec.get();
  spec.reset();
  ASSERT_FALSE(watch.expired()) << "engine must pin the shared spec";
  EXPECT_EQ(watch.lock().get(), raw);

  eng.start();
  const auto stats = eng.drain();
  EXPECT_EQ(stats.streams, 16u);
  EXPECT_EQ(stats.distinctHierarchies, 1u)
      << "16 streams over one spec must register exactly one hierarchy";
  EXPECT_GT(stats.recordsProcessed, 0u);
}

/// Distinct hierarchies registered through distinct handles stay distinct:
/// the registry dedupes by object identity, not by handle.
TEST(Engine, DistinctHierarchiesCountedPerObject) {
  const auto net = workload::ccdNetworkWorkload(Scale::kTest);
  const auto scd = workload::scdNetworkWorkload(Scale::kTest);
  EngineConfig cfg;
  cfg.workers = 2;
  DetectionEngine eng(cfg, nullptr);
  // Two borrowed handles to the SAME object still count once.
  eng.addStream("a", borrowHierarchy(net.hierarchy), testPipelineConfig(net),
                std::make_unique<GeneratorSource>(net, 0, 8, 1));
  eng.addStream("b", borrowHierarchy(net.hierarchy), testPipelineConfig(net),
                std::make_unique<GeneratorSource>(net, 0, 8, 2));
  eng.addStream("c", borrowHierarchy(scd.hierarchy), testPipelineConfig(scd),
                std::make_unique<GeneratorSource>(scd, 0, 8, 3));
  eng.start();
  const auto stats = eng.drain();
  EXPECT_EQ(stats.distinctHierarchies, 2u);
}

/// Pooled workspaces + an aggressive resident cap must not change a single
/// result: every stream's summary and anomaly list stays bit-identical to
/// an uninterrupted unlimited-residency run, at sequential and contended
/// worker counts, while hibernation provably cycled streams in and out.
TEST(Engine, HibernationEquivalentToUnlimitedResidency) {
  const std::vector<WorkloadSpec> specs = {
      workload::ccdNetworkWorkload(Scale::kTest),
      workload::ccdTroubleWorkload(Scale::kTest),
      workload::scdNetworkWorkload(Scale::kTest),
  };
  const std::size_t streams = 12;
  const TimeUnit units = 32;

  auto run = [&](std::size_t workers, std::size_t maxResident) {
    EngineConfig cfg;
    cfg.workers = workers;
    cfg.ingestThreads = 2;
    cfg.runBudget = 2;
    cfg.streamQueueCapacity = 2;  // interleave units across the fleet
    cfg.maxResidentStreams = maxResident;
    report::ConcurrentAnomalyStore store;
    DetectionEngine eng(cfg, store.sink());
    for (std::size_t i = 0; i < streams; ++i) {
      const auto& spec = specs[i % specs.size()];
      const std::string name = "s" + std::to_string(i);
      store.registerStream(name, spec.hierarchy);
      eng.addStream(name, borrowHierarchy(spec.hierarchy),
                    testPipelineConfig(spec),
                    std::make_unique<GeneratorSource>(spec, 0, units, 70 + i));
    }
    eng.start();
    auto stats = eng.drain();
    std::vector<std::vector<report::StoredAnomaly>> anomalies;
    for (std::size_t i = 0; i < streams; ++i) {
      anomalies.push_back(store.snapshot("s" + std::to_string(i)));
    }
    return std::make_pair(std::move(stats), std::move(anomalies));
  };

  const auto [baseStats, baseAnomalies] = run(1, 0);  // unlimited residency
  EXPECT_EQ(baseStats.hibernateEvictions, 0u);
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const auto [stats, anomalies] = run(workers, 2);  // aggressive cap
    EXPECT_GT(stats.hibernateEvictions, 0u)
        << "cap 2 over 12 streams must actually hibernate";
    EXPECT_GT(stats.hibernateWakes, 0u);
    EXPECT_LE(stats.residentStreams, 2 + workers);
    EXPECT_EQ(stats.unitsProcessed, baseStats.unitsProcessed);
    EXPECT_EQ(stats.recordsProcessed, baseStats.recordsProcessed);
    ASSERT_EQ(stats.perStream.size(), baseStats.perStream.size());
    for (std::size_t i = 0; i < streams; ++i) {
      SCOPED_TRACE(baseStats.perStream[i].name);
      EXPECT_EQ(stats.perStream[i].unitsProcessed,
                baseStats.perStream[i].unitsProcessed);
      EXPECT_EQ(stats.perStream[i].anomaliesReported,
                baseStats.perStream[i].anomaliesReported);
      const auto& got = anomalies[i];
      const auto& want = baseAnomalies[i];
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t j = 0; j < got.size(); ++j) {
        EXPECT_EQ(got[j].anomaly, want[j].anomaly);
        EXPECT_EQ(got[j].path, want[j].path);
        EXPECT_EQ(got[j].depth, want[j].depth);
      }
    }
  }
}

}  // namespace
}  // namespace tiresias
