// Unit tests for src/common: rng, stats, csv, table, time helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/csv.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"
#include "common/timeutil.h"

namespace tiresias {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 6.5);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 6.5);
  }
}

TEST(Rng, BelowCoversRangeUniformly) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  RunningMoments m;
  for (int i = 0; i < 50000; ++i) m.add(rng.normal());
  EXPECT_NEAR(m.mean(), 0.0, 0.03);
  EXPECT_NEAR(m.stddev(), 1.0, 0.03);
}

TEST(Rng, PoissonMeanSmall) {
  Rng rng(13);
  RunningMoments m;
  for (int i = 0; i < 20000; ++i) {
    m.add(static_cast<double>(rng.poisson(3.5)));
  }
  EXPECT_NEAR(m.mean(), 3.5, 0.1);
  EXPECT_NEAR(m.variance(), 3.5, 0.25);
}

TEST(Rng, PoissonMeanLargeUsesNormalApprox) {
  Rng rng(17);
  RunningMoments m;
  for (int i = 0; i < 20000; ++i) {
    m.add(static_cast<double>(rng.poisson(200.0)));
  }
  EXPECT_NEAR(m.mean(), 200.0, 1.5);
  EXPECT_NEAR(m.stddev(), std::sqrt(200.0), 1.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ForkIndependence) {
  Rng parent(21);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (c1.next() == c2.next());
  EXPECT_LT(equal, 2);
}

TEST(Zipf, PmfSumsToOneAndDecreases) {
  ZipfSampler z(100, 1.0);
  double total = 0.0;
  for (std::size_t i = 0; i < z.size(); ++i) total += z.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(z.pmf(0), z.pmf(1));
  EXPECT_GT(z.pmf(1), z.pmf(10));
}

TEST(Zipf, SampleMatchesPmf) {
  ZipfSampler z(20, 1.2);
  Rng rng(23);
  std::vector<int> counts(20, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, z.pmf(i), 0.01);
  }
}

TEST(Stats, RunningMomentsMatchesBatch) {
  RunningMoments m;
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7};
  for (double x : xs) m.add(x);
  EXPECT_DOUBLE_EQ(m.mean(), 4.0);
  EXPECT_NEAR(m.variance(), 4.6666666, 1e-6);
  EXPECT_EQ(m.min(), 1.0);
  EXPECT_EQ(m.max(), 7.0);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
}

TEST(Stats, CcdfStepValues) {
  const auto points = ccdf({1, 1, 2, 3});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].x, 1.0);
  EXPECT_DOUBLE_EQ(points[0].y, 1.0);     // P(X >= 1)
  EXPECT_DOUBLE_EQ(points[1].y, 0.5);     // P(X >= 2)
  EXPECT_DOUBLE_EQ(points[2].y, 0.25);    // P(X >= 3)
}

TEST(Stats, CcdfLogBinnedMonotone) {
  std::vector<double> xs;
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.uniform(0.001, 10.0));
  const auto binned = ccdfLogBinned(xs, 20);
  ASSERT_EQ(binned.size(), 20u);
  for (std::size_t i = 1; i < binned.size(); ++i) {
    EXPECT_LE(binned[i].y, binned[i - 1].y + 1e-12);
    EXPECT_GT(binned[i].x, binned[i - 1].x);
  }
}

TEST(Csv, EscapeRoundTrip) {
  const std::vector<std::string> fields{"plain", "with,comma", "with\"quote",
                                        "multi\nline", ""};
  const auto line = csvJoin(fields);
  EXPECT_EQ(csvSplit(line), fields);
}

TEST(Csv, SplitSimple) {
  const auto fields = csvSplit("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(Table, RendersAlignedColumns) {
  AsciiTable t({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addRule();
  t.addRow({"beta", "22"});
  const auto s = t.render();
  EXPECT_NE(s.find("| alpha |"), std::string::npos);
  EXPECT_NE(s.find("| beta  |"), std::string::npos);
}

TEST(Table, Formatting) {
  EXPECT_EQ(fmtF(3.14159, 2), "3.14");
  EXPECT_EQ(fmtPct(0.941, 1), "94.1%");
  EXPECT_EQ(fmtI(45479), "45,479");
  EXPECT_EQ(fmtI(-1234567), "-1,234,567");
  EXPECT_EQ(fmtI(12), "12");
}

TEST(TimeUtil, UnitArithmetic) {
  EXPECT_EQ(timeUnitOf(0, 900), 0);
  EXPECT_EQ(timeUnitOf(899, 900), 0);
  EXPECT_EQ(timeUnitOf(900, 900), 1);
  EXPECT_EQ(timeUnitOf(-1, 900), -1);
  EXPECT_EQ(unitStart(3, 900), 2700);
}

TEST(TimeUtil, CalendarHelpers) {
  EXPECT_EQ(secondOfDay(4 * kHour + 30 * kMinute), 4 * kHour + 30 * kMinute);
  EXPECT_EQ(secondOfDay(kDay + 5), 5);
  EXPECT_EQ(dayOfWeek(0), 0);
  EXPECT_EQ(dayOfWeek(kDay), 1);
  EXPECT_EQ(dayOfWeek(8 * kDay), 1);
  EXPECT_EQ(dayOfWeek(-1), 6);
}

TEST(TimeUtil, FormatTimestamp) {
  EXPECT_EQ(formatTimestamp(kDay + kHour + kMinute + 1), "day+1 01:01:01");
}

TEST(Timer, StageAccumulation) {
  StageTimer timer;
  timer.add("a", 1.0);
  timer.add("a", 3.0);
  timer.add("b", 2.0);
  EXPECT_EQ(timer.stages(), (std::vector<std::string>{"a", "b"}));
  EXPECT_DOUBLE_EQ(timer.totalSeconds("a"), 4.0);
  EXPECT_DOUBLE_EQ(timer.meanSeconds("a"), 2.0);
  EXPECT_DOUBLE_EQ(timer.totalSeconds(), 6.0);
  EXPECT_EQ(timer.samples("a"), 2u);
  EXPECT_DOUBLE_EQ(timer.varianceSeconds("a"), 2.0);
}

}  // namespace
}  // namespace tiresias
