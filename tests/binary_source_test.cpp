// Binary record traces: the CSV→binary→ingest round trip must be
// indistinguishable from reading the CSV directly (identical record
// sequences, identical skip accounting, bit-identical anomalies through
// the pipeline), and a corrupted or truncated file must always surface as
// a clean persist::SnapshotError — never a crash, over-read, or OOM.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "hierarchy/builder.h"
#include "persist/snapshot.h"
#include "report/store.h"
#include "stream/binary_source.h"
#include "stream/source.h"
#include "timeseries/ewma.h"
#include "workload/ccd.h"

namespace tiresias {
namespace {

using persist::SnapshotError;

std::vector<Record> drainPerRecord(RecordSource& src) {
  std::vector<Record> out;
  while (auto r = src.next()) out.push_back(*r);
  return out;
}

std::vector<Record> drainBatched(RecordSource& src, std::size_t max) {
  std::vector<Record> out, chunk;
  while (src.nextBatch(chunk, max) > 0) {
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  return out;
}

std::vector<std::uint8_t> readBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in));
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void writeBytes(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::uint64_t le64At(const std::vector<std::uint8_t>& b, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[at + static_cast<std::size_t>(i)];
  return v;
}

/// The junk-laden CSV from the batched-ingest tests: every skip reason
/// (unknown path, malformed row, bad/empty timestamp) plus quoted, CRLF
/// and blank lines, so the converter faces everything CsvSource does.
std::string writeJunkLadenTrace(const Hierarchy& h) {
  const std::string path = ::testing::TempDir() + "/bin_junk.csv";
  std::ofstream out(path);
  for (int rep = 0; rep < 50; ++rep) {
    out << h.path(h.leaves()[rep % 3]) << "," << 100 + rep << "\n";
  }
  out << "no/such/path,200\n";
  out << "no/such/path,201\n";
  out << "not a csv row\n";
  out << "a,b,c\n";
  out << h.path(h.leaves()[0]) << ",notatime\n";
  out << h.path(h.leaves()[0]) << ",\n";
  out << "\n";
  out << "\"" << h.path(h.leaves()[1]) << "\",300\n";
  out << h.path(h.leaves()[2]) << ",400\r\n";
  out << h.path(h.leaves()[2]) << ",500\n";
  return path;
}

TEST(BinaryTrace, RoundTripMatchesCsvSource) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  const std::string csv = writeJunkLadenTrace(h);
  const std::string bin = ::testing::TempDir() + "/bin_junk.tsrb";
  const auto stats = convertCsvTraceToBinary(csv, bin);

  CsvSource reference(csv, h);
  const auto want = drainPerRecord(reference);
  ASSERT_GT(want.size(), 0u);

  BinarySource perRecord(bin, h);
  EXPECT_EQ(drainPerRecord(perRecord), want);
  // The CSV's skips split across the two stages — junk rows die at
  // convert time, unknown paths at read time — but the total matches.
  EXPECT_EQ(stats.skippedRows + perRecord.skippedRecords(),
            reference.skippedRecords());
  EXPECT_EQ(perRecord.unresolvedPaths(), 1u);  // "no/such/path"

  for (std::size_t max : {1u, 3u, 64u, 4096u}) {
    BinarySource batched(bin, h);
    EXPECT_EQ(drainBatched(batched, max), want) << "max=" << max;
    EXPECT_EQ(batched.skippedRecords(), perRecord.skippedRecords())
        << "max=" << max;
  }

  {  // Mixing next() and nextBatch() on one source must not lose records.
    BinarySource mixed(bin, h);
    std::vector<Record> got, chunk;
    const auto first = mixed.next();
    ASSERT_TRUE(first);
    got.push_back(*first);
    while (mixed.nextBatch(chunk, 7) > 0) {
      got.insert(got.end(), chunk.begin(), chunk.end());
    }
    EXPECT_EQ(got, want);
    EXPECT_EQ(mixed.skippedRecords(), perRecord.skippedRecords());
  }
  std::remove(csv.c_str());
  std::remove(bin.c_str());
}

TEST(BinaryTrace, ConvertStatsAndFraming) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  const std::string csv = writeJunkLadenTrace(h);
  const std::string bin = ::testing::TempDir() + "/bin_stats.tsrb";
  const auto stats = convertCsvTraceToBinary(csv, bin);

  // 50 repeated + quoted + CRLF + plain = 53 records survive conversion
  // (the two unknown-path rows stay — resolution is the reader's job);
  // 4 junk rows die at convert time.
  EXPECT_EQ(stats.records, 55u);
  EXPECT_EQ(stats.skippedRows, 4u);
  EXPECT_EQ(stats.paths, 4u);  // 3 leaves + "no/such/path"

  const auto bytes = readBytes(bin);
  EXPECT_EQ(stats.bytesWritten, bytes.size());
  ASSERT_GE(bytes.size(), 24u);
  EXPECT_EQ(bytes[0], 'T');
  EXPECT_EQ(bytes[1], 'S');
  EXPECT_EQ(bytes[2], 'R');
  EXPECT_EQ(bytes[3], 'B');
  EXPECT_EQ(le64At(bytes, 8), 55u);  // declared record count
  std::remove(csv.c_str());
  std::remove(bin.c_str());
}

TEST(BinaryTrace, OpenTraceSourceSniffsFormat) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  const std::string csv = writeJunkLadenTrace(h);
  const std::string bin = ::testing::TempDir() + "/bin_sniff.tsrb";
  convertCsvTraceToBinary(csv, bin);

  auto fromCsv = openTraceSource(csv, h);
  auto fromBin = openTraceSource(bin, h);
  ASSERT_NE(dynamic_cast<CsvSource*>(fromCsv.get()), nullptr);
  ASSERT_NE(dynamic_cast<BinarySource*>(fromBin.get()), nullptr);
  EXPECT_EQ(drainBatched(*fromBin, 64), drainBatched(*fromCsv, 64));

  // A file shorter than any binary prologue falls back to CSV cleanly.
  const std::string tiny = ::testing::TempDir() + "/bin_tiny.csv";
  { std::ofstream out(tiny); out << "x"; }
  auto fromTiny = openTraceSource(tiny, h);
  ASSERT_NE(dynamic_cast<CsvSource*>(fromTiny.get()), nullptr);
  EXPECT_TRUE(drainPerRecord(*fromTiny).empty());
  std::remove(csv.c_str());
  std::remove(bin.c_str());
  std::remove(tiny.c_str());
}

/// End-to-end: a pipeline fed the converted trace produces bit-identical
/// anomalies and summaries to one fed the original CSV.
TEST(BinaryTrace, PipelineEquivalentToCsvIngest) {
  const auto spec = workload::ccdNetworkWorkload(workload::Scale::kTest);
  workload::SpikeSpec spike;
  spike.node = spec.hierarchy.children(spec.hierarchy.root()).front();
  spike.startUnit = 30;
  spike.durationUnits = 3;
  spike.extraPerUnit = 40.0 * spec.baseRatePerUnit;
  workload::GroundTruthLedger ledger;
  ledger.add(spike);
  const auto injector = std::make_shared<workload::AnomalyInjector>(
      spec.hierarchy, std::move(ledger));

  workload::GeneratorSource gen(spec, 0, 48, 7, injector);
  std::vector<Record> records;
  while (auto r = gen.next()) records.push_back(*r);
  const std::string csv = ::testing::TempDir() + "/bin_pipe.csv";
  const std::string bin = ::testing::TempDir() + "/bin_pipe.tsrb";
  writeRecordsCsv(csv, spec.hierarchy, records);
  const auto stats = convertCsvTraceToBinary(csv, bin);
  EXPECT_EQ(stats.records, records.size());
  EXPECT_EQ(stats.skippedRows, 0u);

  PipelineConfig cfg;
  cfg.delta = spec.unit;
  cfg.detector.theta = 8.0;
  cfg.detector.windowLength = 16;
  cfg.detector.forecasterFactory = std::make_shared<EwmaFactory>(0.5);

  auto runWith = [&](const std::string& trace, RunSummary& sum) {
    auto src = openTraceSource(trace, spec.hierarchy);
    TiresiasPipeline pipeline(borrowHierarchy(spec.hierarchy), cfg);
    report::AnomalyStore store(spec.hierarchy);
    sum = pipeline.run(*src, [&](const InstanceResult& r) { store.add(r); });
    return store.all();
  };

  RunSummary csvSum, binSum;
  const auto fromCsv = runWith(csv, csvSum);
  const auto fromBin = runWith(bin, binSum);
  EXPECT_EQ(binSum.unitsProcessed, csvSum.unitsProcessed);
  EXPECT_EQ(binSum.recordsProcessed, csvSum.recordsProcessed);
  EXPECT_EQ(binSum.instancesDetected, csvSum.instancesDetected);
  EXPECT_EQ(binSum.anomaliesReported, csvSum.anomaliesReported);
  ASSERT_EQ(fromBin.size(), fromCsv.size());
  for (std::size_t i = 0; i < fromBin.size(); ++i) {
    EXPECT_EQ(fromBin[i].anomaly, fromCsv[i].anomaly);
    EXPECT_EQ(fromBin[i].path, fromCsv[i].path);
  }
  EXPECT_GT(fromBin.size(), 0u);
  std::remove(csv.c_str());
  std::remove(bin.c_str());
}

// ---------------------------------------------------------------------
// Corruption fuzzing: every mutation must surface as SnapshotError (at
// construction or while draining), never as a crash or silent data.

class BinaryTraceFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    h_ = HierarchyBuilder::balanced({3, 2});
    csv_ = writeJunkLadenTrace(h_);
    bin_ = ::testing::TempDir() + "/bin_fuzz.tsrb";
    convertCsvTraceToBinary(csv_, bin_);
    bytes_ = readBytes(bin_);
    tableBytes_ = le64At(bytes_, 16);
  }

  void TearDown() override {
    std::remove(csv_.c_str());
    std::remove(bin_.c_str());
  }

  /// Construct + drain the mutated file, expecting SnapshotError from one
  /// of the two phases (header errors throw in the constructor, block
  /// errors while draining).
  void expectCorrupt(const std::vector<std::uint8_t>& mutated,
                     const char* what) {
    writeBytes(bin_, mutated);
    EXPECT_THROW(
        {
          BinarySource src(bin_, h_);
          std::vector<Record> chunk;
          while (src.nextBatch(chunk, 64) > 0) {
          }
        },
        SnapshotError)
        << what;
  }

  std::size_t firstBlockAt() const { return 24 + tableBytes_; }

  Hierarchy h_;
  std::string csv_, bin_;
  std::vector<std::uint8_t> bytes_;
  std::uint64_t tableBytes_ = 0;
};

TEST_F(BinaryTraceFuzz, IntactFileDrainsClean) {
  BinarySource src(bin_, h_);
  EXPECT_GT(drainBatched(src, 64).size(), 0u);
}

TEST_F(BinaryTraceFuzz, BadMagic) {
  auto b = bytes_;
  b[0] ^= 0xFF;
  expectCorrupt(b, "bad magic");
}

TEST_F(BinaryTraceFuzz, UnknownVersion) {
  auto b = bytes_;
  b[4] = 99;
  expectCorrupt(b, "unknown version");
}

TEST_F(BinaryTraceFuzz, TruncatedPrologue) {
  auto b = bytes_;
  b.resize(10);
  expectCorrupt(b, "truncated prologue");
}

TEST_F(BinaryTraceFuzz, EmptyFile) {
  expectCorrupt({}, "empty file");
}

TEST_F(BinaryTraceFuzz, TableOverrunsFile) {
  auto b = bytes_;
  // tableBytes far past the end: must be rejected before any allocation
  // sized from it.
  for (int i = 0; i < 8; ++i) b[16 + i] = 0xFF;
  expectCorrupt(b, "table overruns file");
}

TEST_F(BinaryTraceFuzz, TruncatedPathTable) {
  auto b = bytes_;
  b.resize(24 + static_cast<std::size_t>(tableBytes_) / 2);
  expectCorrupt(b, "truncated path table");
}

TEST_F(BinaryTraceFuzz, TruncatedBlockHeader) {
  auto b = bytes_;
  b.resize(firstBlockAt() + 2);
  expectCorrupt(b, "truncated block header");
}

TEST_F(BinaryTraceFuzz, TruncatedRecordBlock) {
  auto b = bytes_;
  b.resize(b.size() - 5);  // chop mid-record
  expectCorrupt(b, "truncated record block");
}

TEST_F(BinaryTraceFuzz, MissingRecordsAtCleanBoundary) {
  auto b = bytes_;
  // Remove the whole record payload but keep the block prefix intact at
  // zero records... actually: keep the file ending exactly after the
  // prologue + table. The prologue still declares records, so a clean EOF
  // with too few decoded records is truncation.
  b.resize(firstBlockAt());
  expectCorrupt(b, "missing records");
}

TEST_F(BinaryTraceFuzz, ZeroBlockCount) {
  auto b = bytes_;
  const std::size_t at = firstBlockAt();
  b[at] = b[at + 1] = b[at + 2] = b[at + 3] = 0;
  expectCorrupt(b, "zero block count");
}

TEST_F(BinaryTraceFuzz, ImplausibleBlockCount) {
  auto b = bytes_;
  const std::size_t at = firstBlockAt();
  for (int i = 0; i < 4; ++i) b[at + static_cast<std::size_t>(i)] = 0xFF;
  expectCorrupt(b, "oversized block count");
}

TEST_F(BinaryTraceFuzz, BlockOverrunsDeclaredTotal) {
  auto b = bytes_;
  // Declare fewer records than the blocks actually carry.
  for (int i = 0; i < 8; ++i) b[8 + i] = 0;
  b[8] = 1;  // recordCount = 1
  expectCorrupt(b, "more records than declared");
}

TEST_F(BinaryTraceFuzz, FileIdOutsideTable) {
  auto b = bytes_;
  const std::size_t rec = firstBlockAt() + 4;  // first record's fileId
  for (int i = 0; i < 4; ++i) b[rec + static_cast<std::size_t>(i)] = 0xFF;
  expectCorrupt(b, "file id outside table");
}

TEST_F(BinaryTraceFuzz, TrailingBytesInPathTable) {
  auto b = bytes_;
  // Grow the declared table size by 1 so it swallows the first block
  // byte: the table deserializer must reject the trailing byte.
  const std::uint64_t grown = tableBytes_ + 1;
  for (int i = 0; i < 8; ++i) {
    b[16 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(grown >> (8 * i));
  }
  expectCorrupt(b, "trailing table bytes");
}

TEST_F(BinaryTraceFuzz, RandomByteFlipsNeverCrash) {
  // Deterministic sweep: flip one byte at a spread of offsets; every
  // outcome must be either a clean drain (the flip hit a timestamp or a
  // path char that still resolves/skips) or SnapshotError — never a crash
  // (ASan enforces the never-over-read part).
  for (std::size_t at = 0; at < bytes_.size();
       at += std::max<std::size_t>(1, bytes_.size() / 97)) {
    auto b = bytes_;
    b[at] ^= 0x5A;
    writeBytes(bin_, b);
    try {
      BinarySource src(bin_, h_);
      std::vector<Record> chunk;
      while (src.nextBatch(chunk, 64) > 0) {
      }
    } catch (const SnapshotError&) {
      // fine: rejected cleanly
    }
  }
}

}  // namespace
}  // namespace tiresias
