// The fault-tolerance contract, end to end and in process: a named
// client streaming through the router under an armed fault plan
// (injected disconnects, short reads, EINTR) while the server is
// checkpointed, destroyed mid-stream (everything in memory lost — the
// in-process "kill -9"), rebuilt on the same port and restored, must end
// with anomaly reports and stream summaries *bit-identical* to a clean,
// fault-free run over the same records. The unit-granular commit
// protocol is what makes that true: no record is delivered twice, none
// is lost, no matter where the connections tear.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/faultinject.h"
#include "core/pipeline.h"
#include "engine/engine.h"
#include "net/tcp.h"
#include "report/concurrent_store.h"
#include "stream/socket_source.h"
#include "stream/source.h"
#include "stream/stream_router.h"
#include "timeseries/ewma.h"
#include "workload/ccd.h"

namespace tiresias {
namespace {

using engine::DetectionEngine;
using engine::EngineConfig;
using workload::GeneratorSource;
using workload::Scale;
using workload::WorkloadSpec;

constexpr int kTestTimeoutMs = 10'000;
constexpr char kStream[] = "s0";

std::string tempSnapshotPath(const char* name) {
  return std::string(::testing::TempDir()) + "chaos_" + name + "_" +
         std::to_string(::getpid()) + ".tsnap";
}

PipelineConfig pipelineConfig(const WorkloadSpec& spec) {
  PipelineConfig cfg;
  cfg.delta = spec.unit;
  cfg.detector.theta = 8.0;
  cfg.detector.windowLength = 16;
  cfg.detector.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
  return cfg;
}

EngineConfig engineConfig() {
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.ingestThreads = 1;
  cfg.runBudget = 4;
  cfg.streamQueueCapacity = 8;
  cfg.totalQueueCapacity = 64;
  return cfg;
}

std::vector<std::string> allPaths(const Hierarchy& h) {
  std::vector<std::string> paths;
  paths.reserve(h.size());
  for (std::size_t n = 0; n < h.size(); ++n) {
    paths.push_back(h.path(static_cast<NodeId>(n)));
  }
  return paths;
}

/// One `send --stream-name` attempt: connect, v2 handshake, honor the
/// server's committed position, stream frames, optionally finish with
/// end-of-stream. False on any failure (the caller retries) and always
/// false without `withEos` — a phase-1 attempt is a deliberate
/// mid-stream disconnect once everything uncommitted has been pushed.
bool sendOnce(std::uint16_t port, const std::vector<std::string>& paths,
              const std::vector<Record>& records, bool withEos) {
  net::TcpConn conn = net::connectLoopback(port, 2'000);
  if (!conn.valid()) return false;
  const auto hs = encodeSocketHandshakeV2(paths, kStream, /*resumeToken=*/99);
  if (!conn.writeAll(hs.data(), hs.size(), 2'000)) return false;
  SocketResumeReply reply;
  if (!readSocketResumeReply(conn, 5'000, reply)) return false;
  if (reply.status != kSocketResumeOk) return false;
  std::size_t at = 0;
  while (at < records.size() && records[at].time < reply.committedTime) ++at;
  while (at < records.size()) {
    const std::size_t n = std::min<std::size_t>(32, records.size() - at);
    std::vector<std::uint8_t> wire;
    appendSocketFrame(wire, records.data() + at, n);
    if (!conn.writeAll(wire.data(), wire.size(), 2'000)) return false;
    at += n;
  }
  if (!withEos) return false;
  std::vector<std::uint8_t> eos;
  appendSocketEndOfStream(eos);
  return conn.writeAll(eos.data(), eos.size(), 2'000);
}

TEST(ChaosNet, KillRestoreReconnectIsBitIdenticalToFaultFreeRun) {
  WorkloadSpec spec = workload::ccdNetworkWorkload(Scale::kTest);
  const TimeUnit kUnits = 120;
  std::vector<Record> records;
  {
    GeneratorSource gen(spec, 0, kUnits, 17);
    while (auto r = gen.next()) records.push_back(*r);
  }
  ASSERT_GT(records.size(), 500u);
  const auto paths = allPaths(spec.hierarchy);
  const PipelineConfig pcfg = pipelineConfig(spec);

  // Fault-free reference: same records, no network, no interruptions.
  report::ConcurrentAnomalyStore refStore;
  RunSummary refSummary;
  {
    DetectionEngine eng(engineConfig(), refStore.sink());
    refStore.registerStream(kStream, spec.hierarchy);
    eng.addStream(kStream, borrowHierarchy(spec.hierarchy), pcfg,
                  std::make_unique<VectorSource>(records));
    eng.start();
    eng.drain();
    refSummary = eng.streamSummary(0);
  }
  ASSERT_GT(refSummary.recordsProcessed, 0u);

  // Chaos leg. The listener's port is fixed up front so the restarted
  // server can rebind it and the client never has to re-discover it.
  const std::string path = tempSnapshotPath("restore");
  auto listener = std::make_shared<net::TcpListener>();
  ASSERT_TRUE(listener->listen(0, /*loopbackOnly=*/true))
      << listener->lastError();
  const std::uint16_t port = listener->port();

  SocketSourceOptions sopt;
  sopt.streamName = kStream;
  sopt.unitDelta = spec.unit;
  sopt.readTimeoutMs = kTestTimeoutMs;
  sopt.protocolErrorBudget = 100'000;  // chaos burns many connections

  ASSERT_TRUE(faultinject::arm("seed=5,disconnect=0.05,short-read=0.1,"
                               "eintr=0.1"));

  report::ConcurrentAnomalyStore lostStore;  // dies with the crash
  lostStore.registerStream(kStream, spec.hierarchy);
  auto eng1 = std::make_unique<DetectionEngine>(engineConfig(),
                                                lostStore.sink());
  auto router1 =
      std::make_shared<StreamRouter>(listener, StreamRouter::Options{});
  eng1->addStream(kStream, borrowHierarchy(spec.hierarchy), pcfg,
                  std::make_unique<SocketSource>(
                      router1, router1->addNamedSlot(kStream),
                      spec.hierarchy, sopt));
  eng1->start();
  router1->start();

  // The client: phase 1 keeps re-sending everything uncommitted and
  // tearing the connection down (no end-of-stream) until the restarted
  // server is up; phase 2 finishes the stream for real.
  std::atomic<bool> restartReady{false};
  std::atomic<bool> delivered{false};
  std::thread client([&] {
    while (!restartReady.load(std::memory_order_acquire)) {
      sendOnce(port, paths, records, /*withEos=*/false);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    for (int i = 0; i < 500 && !delivered.load(std::memory_order_relaxed);
         ++i) {
      if (sendOnce(port, paths, records, /*withEos=*/true)) {
        delivered.store(true, std::memory_order_release);
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
  });

  // Let real progress land (best effort — the equivalence holds wherever
  // the checkpoint falls), snapshot, then lose everything in memory.
  const auto progressDeadline = std::chrono::steady_clock::now() +
                                std::chrono::seconds(60);
  while (eng1->stats().unitsProcessed < 20 &&
         std::chrono::steady_clock::now() < progressDeadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  eng1->checkpoint(path,
                   [&](persist::Serializer& s) { lostStore.saveState(s); });
  router1->stop();  // wakes the source's await() so stop() joins fast
  eng1->stop();
  eng1.reset();
  router1.reset();
  listener->close();
  listener.reset();
  faultinject::disarm();  // the restored leg runs clean

  // Restart: rebind the same port, restore, let the client reconnect and
  // finish. SO_REUSEADDR makes the rebind race-free against TIME_WAIT,
  // but give the kernel a few tries anyway.
  auto listener2 = std::make_shared<net::TcpListener>();
  bool bound = false;
  for (int i = 0; i < 50 && !bound; ++i) {
    bound = listener2->listen(port, /*loopbackOnly=*/true);
    if (!bound) std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ASSERT_TRUE(bound) << listener2->lastError();

  report::ConcurrentAnomalyStore store;
  store.registerStream(kStream, spec.hierarchy);
  DetectionEngine eng(engineConfig(), store.sink());
  auto router2 =
      std::make_shared<StreamRouter>(listener2, StreamRouter::Options{});
  eng.addStream(kStream, borrowHierarchy(spec.hierarchy), pcfg,
                std::make_unique<SocketSource>(
                    router2, router2->addNamedSlot(kStream), spec.hierarchy,
                    sopt));
  const std::size_t restored = eng.restoreFrom(
      path, [&](persist::Deserializer& d) { store.loadState(d); });
  EXPECT_EQ(restored, 1u);
  eng.start();
  router2->start();
  restartReady.store(true, std::memory_order_release);
  const auto stats = eng.drain();
  router2->stop();
  client.join();
  EXPECT_TRUE(delivered.load());
  EXPECT_EQ(stats.checkpoint.restores, 1u);

  // Bit-identical to the uninterrupted run: summary and every report.
  const RunSummary got = eng.streamSummary(0);
  EXPECT_EQ(got.unitsProcessed, refSummary.unitsProcessed);
  EXPECT_EQ(got.recordsProcessed, refSummary.recordsProcessed);
  EXPECT_EQ(got.instancesDetected, refSummary.instancesDetected);
  EXPECT_EQ(got.anomaliesReported, refSummary.anomaliesReported);
  EXPECT_EQ(got.warmupUnitsBuffered, refSummary.warmupUnitsBuffered);
  const auto gotReports = store.snapshot(kStream);
  const auto wantReports = refStore.snapshot(kStream);
  ASSERT_EQ(gotReports.size(), wantReports.size());
  for (std::size_t k = 0; k < gotReports.size(); ++k) {
    EXPECT_EQ(gotReports[k].anomaly, wantReports[k].anomaly);
    EXPECT_EQ(gotReports[k].path, wantReports[k].path);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tiresias
