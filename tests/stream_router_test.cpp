// StreamRouter: one accept thread must route v2 named connections to
// their slot, v1/CSV connections to the shared anonymous FIFO, refuse
// unknown names with a fatal reply, shed under the overload predicate,
// and reject anonymous overflow — always by closing the socket, never by
// wedging a slot or crashing.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "hierarchy/builder.h"
#include "net/tcp.h"
#include "stream/socket_source.h"
#include "stream/stream_router.h"

namespace tiresias {
namespace {

constexpr int kTestTimeoutMs = 10'000;

std::shared_ptr<net::TcpListener> loopbackListener() {
  auto listener = std::make_shared<net::TcpListener>();
  EXPECT_TRUE(listener->listen(0, /*loopbackOnly=*/true))
      << listener->lastError();
  return listener;
}

std::vector<std::string> allPaths(const Hierarchy& h) {
  std::vector<std::string> paths;
  paths.reserve(h.size());
  for (std::size_t n = 0; n < h.size(); ++n) {
    paths.push_back(h.path(static_cast<NodeId>(n)));
  }
  return paths;
}

std::vector<Record> sampleRecords(const Hierarchy& h, std::size_t count) {
  std::vector<Record> records;
  const auto& leaves = h.leaves();
  for (std::size_t i = 0; i < count; ++i) {
    records.push_back(
        Record{leaves[i % leaves.size()], static_cast<Timestamp>(100 + i)});
  }
  return records;
}

std::vector<Record> drainPerRecord(RecordSource& src) {
  std::vector<Record> out;
  while (auto r = src.next()) out.push_back(*r);
  return out;
}

/// Routing is asynchronous: poll a counter until it reaches `want`.
template <typename Fn>
bool waitFor(Fn&& fn, int timeoutMs = kTestTimeoutMs) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeoutMs);
  while (!fn()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

TEST(StreamRouter, V1BinaryLandsOnAnAnonymousSlot) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  const auto want = sampleRecords(h, 64);
  std::vector<std::uint8_t> wire = encodeSocketHandshake(allPaths(h));
  appendSocketFrame(wire, want.data(), want.size());
  appendSocketEndOfStream(wire);

  auto listener = loopbackListener();
  auto router = std::make_shared<StreamRouter>(listener, StreamRouter::Options{});
  const std::size_t slot = router->addAnonymousSlot();
  router->start();

  std::thread client([port = listener->port(), wire] {
    net::TcpConn conn = net::connectLoopback(port, kTestTimeoutMs);
    ASSERT_TRUE(conn.valid());
    EXPECT_TRUE(conn.writeAll(wire.data(), wire.size(), kTestTimeoutMs));
  });
  SocketSource src(router, slot, h);
  EXPECT_EQ(drainPerRecord(src), want);
  EXPECT_EQ(src.protocolErrors(), 0u);
  client.join();
  EXPECT_EQ(router->accepted(), 1u);
  EXPECT_EQ(router->rejected(), 0u);
  router->stop();
}

TEST(StreamRouter, CsvLandsOnAnAnonymousSlot) {
  const auto h = HierarchyBuilder::fromPaths({"top/a", "top/b"});
  const std::string csv = "top/a,100\ntop/b,101\ntop/a,102\n";

  auto listener = loopbackListener();
  auto router = std::make_shared<StreamRouter>(listener, StreamRouter::Options{});
  const std::size_t slot = router->addAnonymousSlot();
  router->start();

  std::thread client([port = listener->port(), csv] {
    net::TcpConn conn = net::connectLoopback(port, kTestTimeoutMs);
    ASSERT_TRUE(conn.valid());
    EXPECT_TRUE(conn.writeAll(csv.data(), csv.size(), kTestTimeoutMs));
  });
  SocketSource src(router, slot, h);
  const auto got = drainPerRecord(src);
  client.join();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].time, 100);
  EXPECT_EQ(got[2].time, 102);
  EXPECT_EQ(src.protocolErrors(), 0u);
  router->stop();
}

TEST(StreamRouter, V2NamedConnectionRoutesToItsSlot) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  const auto want = sampleRecords(h, 48);
  std::vector<std::uint8_t> wire =
      encodeSocketHandshakeV2(allPaths(h), "s0", /*resumeToken=*/7);

  auto listener = loopbackListener();
  auto router = std::make_shared<StreamRouter>(listener, StreamRouter::Options{});
  const std::size_t named = router->addNamedSlot("s0");
  router->addAnonymousSlot();  // must NOT receive the v2 connection
  router->start();

  std::thread client([port = listener->port(), wire, &want] {
    net::TcpConn conn = net::connectLoopback(port, kTestTimeoutMs);
    ASSERT_TRUE(conn.valid());
    ASSERT_TRUE(conn.writeAll(wire.data(), wire.size(), kTestTimeoutMs));
    SocketResumeReply reply;
    ASSERT_TRUE(readSocketResumeReply(conn, kTestTimeoutMs, reply));
    EXPECT_EQ(reply.status, kSocketResumeOk);
    EXPECT_EQ(reply.committedTime, kSocketNoCommit);
    std::vector<std::uint8_t> frames;
    appendSocketFrame(frames, want.data(), want.size());
    appendSocketEndOfStream(frames);
    EXPECT_TRUE(conn.writeAll(frames.data(), frames.size(), kTestTimeoutMs));
  });
  SocketSourceOptions opts;
  opts.streamName = "s0";
  SocketSource src(router, named, h, opts);
  EXPECT_EQ(drainPerRecord(src), want);
  EXPECT_EQ(src.protocolErrors(), 0u);
  EXPECT_EQ(src.resumes(), 0u);  // nothing committed: a fresh start
  client.join();
  EXPECT_EQ(router->accepted(), 1u);
  EXPECT_EQ(router->rejected(), 0u);
  router->stop();
}

TEST(StreamRouter, UnknownStreamNameGetsAFatalReply) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  const auto wire = encodeSocketHandshakeV2(allPaths(h), "ghost", 0);

  auto listener = loopbackListener();
  auto router = std::make_shared<StreamRouter>(listener, StreamRouter::Options{});
  router->addNamedSlot("s0");
  router->start();

  net::TcpConn conn = net::connectLoopback(listener->port(), kTestTimeoutMs);
  ASSERT_TRUE(conn.valid());
  ASSERT_TRUE(conn.writeAll(wire.data(), wire.size(), kTestTimeoutMs));
  SocketResumeReply reply;
  ASSERT_TRUE(readSocketResumeReply(conn, kTestTimeoutMs, reply));
  EXPECT_EQ(reply.status, kSocketResumeUnknownStream);
  EXPECT_TRUE(waitFor([&] { return router->rejected() == 1; }));
  router->stop();
}

TEST(StreamRouter, ShedPredicateRefusesBeforeReading) {
  auto listener = loopbackListener();
  StreamRouter::Options opt;
  opt.shedPredicate = [] { return true; };  // permanently overloaded
  auto router = std::make_shared<StreamRouter>(listener, std::move(opt));
  router->addAnonymousSlot();
  router->start();

  net::TcpConn conn = net::connectLoopback(listener->port(), kTestTimeoutMs);
  ASSERT_TRUE(conn.valid());
  // The router closes without reading a byte: the client sees EOF.
  char byte = 0;
  std::size_t got = 0;
  EXPECT_EQ(conn.readSome(&byte, 1, got, kTestTimeoutMs), net::IoStatus::kEof);
  EXPECT_TRUE(waitFor([&] { return router->shedConnections() == 1; }));
  EXPECT_EQ(router->rejected(), 0u);
  router->stop();
}

TEST(StreamRouter, AnonymousOverflowIsRejected) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  auto listener = loopbackListener();
  auto router = std::make_shared<StreamRouter>(listener, StreamRouter::Options{});
  router->addNamedSlot("s0");  // no anonymous capacity at all
  router->start();

  const auto wire = encodeSocketHandshake(allPaths(h));
  net::TcpConn conn = net::connectLoopback(listener->port(), kTestTimeoutMs);
  ASSERT_TRUE(conn.valid());
  ASSERT_TRUE(conn.writeAll(wire.data(), wire.size(), kTestTimeoutMs));
  // The router closes with unread handshake bytes still buffered, so the
  // client sees either FIN (kEof) or RST (kError) — never its data read.
  char byte = 0;
  std::size_t got = 0;
  const net::IoStatus st = conn.readSome(&byte, 1, got, kTestTimeoutMs);
  EXPECT_TRUE(st == net::IoStatus::kEof || st == net::IoStatus::kError);
  EXPECT_TRUE(waitFor([&] { return router->rejected() == 1; }));
  router->stop();
}

}  // namespace
}  // namespace tiresias
