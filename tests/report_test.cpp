// Unit tests for the anomaly report store.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "hierarchy/builder.h"
#include "report/store.h"

namespace tiresias::report {
namespace {

class StoreFixture : public ::testing::Test {
 protected:
  StoreFixture() : h_(HierarchyBuilder::balanced({2, 2})), store_(h_) {}

  Anomaly make(NodeId node, TimeUnit unit, double actual = 20.0,
               double forecast = 5.0) {
    return {node, unit, actual, forecast, actual / forecast};
  }

  Hierarchy h_;
  AnomalyStore store_;
};

TEST_F(StoreFixture, AddAndQueryByTime) {
  store_.add(make(h_.leaves()[0], 10));
  store_.add(make(h_.leaves()[1], 20));
  store_.add(make(h_.leaves()[2], 30));
  Query q;
  q.fromUnit = 15;
  q.toUnit = 25;
  const auto hits = store_.query(q);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].anomaly.unit, 20);
}

TEST_F(StoreFixture, QueryBySubtree) {
  const NodeId left = h_.children(h_.root())[0];
  store_.add(make(h_.leaves()[0], 1));  // under left
  store_.add(make(h_.leaves()[3], 1));  // under right
  Query q;
  q.subtreeRoot = left;
  const auto hits = store_.query(q);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_TRUE(h_.isAncestorOrEqual(left, hits[0].anomaly.node));
}

TEST_F(StoreFixture, QueryByDepthAndRatio) {
  store_.add(make(h_.root(), 1, 50.0, 10.0));      // depth 1, ratio 5
  store_.add(make(h_.leaves()[0], 1, 12.0, 10.0)); // depth 3, ratio 1.2
  Query q;
  q.depth = 3;
  EXPECT_EQ(store_.query(q).size(), 1u);
  Query q2;
  q2.minRatio = 2.0;
  const auto hits = store_.query(q2);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].anomaly.node, h_.root());
}

TEST_F(StoreFixture, CountByDepth) {
  store_.add(make(h_.root(), 1));
  store_.add(make(h_.leaves()[0], 1));
  store_.add(make(h_.leaves()[1], 2));
  const auto counts = store_.countByDepth();
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[3], 2u);
}

TEST_F(StoreFixture, AddInstanceResult) {
  InstanceResult result;
  result.unit = 7;
  result.anomalies = {make(h_.leaves()[0], 7), make(h_.leaves()[1], 7)};
  store_.add(result);
  EXPECT_EQ(store_.size(), 2u);
  EXPECT_EQ(store_.all()[0].path, h_.path(h_.leaves()[0]));
}

TEST_F(StoreFixture, CsvExportRoundTrips) {
  store_.add(make(h_.leaves()[0], 3));
  const std::string path = ::testing::TempDir() + "/anoms.csv";
  store_.exportCsv(path);
  std::ifstream in(path);
  std::string header, row;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, "unit,path,depth,actual,forecast,ratio");
  ASSERT_TRUE(std::getline(in, row));
  EXPECT_NE(row.find(h_.path(h_.leaves()[0])), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(StoreFixture, JsonlExportWellFormed) {
  store_.add(make(h_.leaves()[0], 3));
  const std::string path = ::testing::TempDir() + "/anoms.jsonl";
  store_.exportJsonl(path);
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"unit\":3"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tiresias::report
