// Focused tests for the §V-B5 reference time series: which nodes carry
// them, how corrections repair split bias, nested-member subtraction, and
// the deep-chain split counter.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/ada.h"
#include "core/sta.h"
#include "hierarchy/builder.h"
#include "timeseries/ewma.h"

namespace tiresias {
namespace {

DetectorConfig config(std::size_t window, double theta, std::size_t h) {
  DetectorConfig cfg;
  cfg.theta = theta;
  cfg.windowLength = window;
  cfg.referenceLevels = h;
  cfg.validateShhh = true;
  cfg.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
  return cfg;
}

TimeUnitBatch batchOf(TimeUnit unit,
                      std::vector<std::pair<NodeId, int>> counts) {
  TimeUnitBatch b;
  b.unit = unit;
  for (const auto& [node, c] : counts) {
    for (int i = 0; i < c; ++i) b.records.push_back({node, unit * 900});
  }
  return b;
}

TEST(ReferenceSeries, RefCountsFollowConfiguredLevels) {
  const auto h = HierarchyBuilder::balanced({3, 2, 2});
  for (std::size_t refLevels : {0u, 1u, 2u, 3u}) {
    AdaDetector ada(h, config(4, 4.0, refLevels));
    for (TimeUnit u = 0; u < 4; ++u) {
      ada.step(batchOf(u, {{h.leaves()[0], 5}}));
    }
    std::size_t expected = 1;  // root always
    for (std::size_t level = 0; level < refLevels; ++level) {
      expected += h.nodesAtDepth(static_cast<int>(level) + 2).size();
    }
    EXPECT_EQ(ada.memoryStats().refSeriesCount, expected * 2)
        << "refLevels=" << refLevels;
  }
}

TEST(ReferenceSeries, CorrectionMakesLevel2SplitExact) {
  // Mass aggregated at a depth-2 node; a child spike forces a split. With
  // h=2 both the depth-2 node and its children are reference-covered:
  // the spiking child's history is rebuilt from its own reference, and
  // the parent's residual (reference minus corrected member descendants)
  // is then exact as well.
  HierarchyBuilder b("root");
  const NodeId a = b.addChild(0, "a");
  b.addChild(0, "b");
  b.addChild(a, "a0");
  b.addChild(a, "a1");
  b.addChild(a, "a2");
  const auto h = b.build();
  const NodeId a0 = h.find("a/a0");
  const NodeId a1 = h.find("a/a1");
  const NodeId a2 = h.find("a/a2");
  const NodeId an = h.find("a");

  auto cfg = config(4, 4.0, 2);
  AdaDetector ada(h, cfg);
  StaDetector sta(h, cfg);
  // History with a varying child mix (so a uniform-ish split would be
  // biased), aggregate at `a` (sum 5 >= theta each unit, no child heavy).
  const int a0hist[] = {1, 3, 2, 1};
  const int a1hist[] = {3, 1, 2, 3};
  const int a2hist[] = {1, 1, 1, 1};
  for (TimeUnit u = 0; u < 4; ++u) {
    auto batch = batchOf(
        u, {{a0, a0hist[u]}, {a1, a1hist[u]}, {a2, a2hist[u]}});
    ada.step(batch);
    sta.step(batch);
  }
  ASSERT_EQ(ada.currentShhh(), std::vector<NodeId>{an});

  // Split: a0 spikes; a's residual (a1 + a2 = 5) keeps it a member. The
  // h=1 reference correction reconstructs a's residual history exactly
  // even though the split rule had no way to know the true child mix.
  auto batch = batchOf(4, {{a0, 6}, {a1, 2}, {a2, 3}});
  auto ra = ada.step(batch);
  auto rs = sta.step(batch);
  ASSERT_TRUE(ra && rs);
  ASSERT_EQ(ra->shhh, rs->shhh);
  ASSERT_EQ(ra->shhh, (std::vector<NodeId>{an, a0}));
  const auto adaA = ada.seriesOf(an);
  const auto staA = sta.seriesOf(an);
  ASSERT_EQ(adaA.size(), staA.size());
  for (std::size_t i = 0; i < adaA.size(); ++i) {
    EXPECT_NEAR(adaA[i], staA[i], 1e-9) << "idx " << i;
  }
}

TEST(ReferenceSeries, UncoveredLevelsKeepSplitApproximation) {
  // Same scenario but h=0: only the root is reference-covered, so the
  // depth-2 node's residual is the split-rule approximation, not exact.
  HierarchyBuilder b("root");
  const NodeId a = b.addChild(0, "a");
  b.addChild(0, "b");
  b.addChild(a, "a0");
  b.addChild(a, "a1");
  b.addChild(a, "a2");
  const auto h = b.build();
  const NodeId a0 = h.find("a/a0");
  const NodeId a1 = h.find("a/a1");
  const NodeId a2 = h.find("a/a2");
  const NodeId an = h.find("a");

  auto cfg = config(4, 4.0, 0);
  cfg.splitRule = SplitRule::kUniform;
  AdaDetector ada(h, cfg);
  StaDetector sta(h, cfg);
  const int a0hist[] = {1, 3, 2, 1};
  const int a1hist[] = {3, 1, 2, 3};
  const int a2hist[] = {1, 1, 1, 1};
  for (TimeUnit u = 0; u < 4; ++u) {
    auto batch = batchOf(
        u, {{a0, a0hist[u]}, {a1, a1hist[u]}, {a2, a2hist[u]}});
    ada.step(batch);
    sta.step(batch);
  }
  auto batch = batchOf(4, {{a0, 6}, {a1, 2}, {a2, 3}});
  auto ra = ada.step(batch);
  auto rs = sta.step(batch);
  ASSERT_TRUE(ra && rs);
  ASSERT_EQ(ra->shhh, (std::vector<NodeId>{an, a0}));
  const auto adaA = ada.seriesOf(an);
  const auto staA = sta.seriesOf(an);
  ASSERT_EQ(adaA.size(), staA.size());
  ASSERT_FALSE(adaA.empty());
  double diff = 0.0;
  for (std::size_t i = 0; i + 1 < adaA.size(); ++i) {
    diff += std::abs(adaA[i] - staA[i]);
  }
  EXPECT_GT(diff, 0.5);  // visibly biased history...
  EXPECT_DOUBLE_EQ(adaA.back(), staA.back());  // ...but the fresh W exact
}

TEST(ReferenceSeries, RefsTrackUntouchedNodesAsZero) {
  // A reference node that receives no traffic must still advance (zeros),
  // keeping its series aligned with everyone else's.
  const auto h = HierarchyBuilder::balanced({2, 2});
  AdaDetector ada(h, config(3, 4.0, 1));
  const NodeId left = h.children(h.root())[0];
  const NodeId leafUnderLeft = h.children(left)[0];
  // Traffic only under the right subtree.
  const NodeId rightLeaf = h.leaves()[3];
  for (TimeUnit u = 0; u < 5; ++u) {
    ada.step(batchOf(u, {{rightLeaf, 5}}));
  }
  // Force a split inside the left subtree later: its reference series must
  // have zeros for the quiet past, so the corrected series is all-zero
  // except the fresh spike.
  auto r = ada.step(batchOf(5, {{leafUnderLeft, 6}}));
  ASSERT_TRUE(r);
  ASSERT_EQ(r->shhh, std::vector<NodeId>{leafUnderLeft});
  // leafUnderLeft is depth 3 (not ref-covered with h=1), but its parent
  // `left` is; check the root residual series: exact zeros then 0.
  const auto rootSeries = ada.seriesOf(h.root());
  EXPECT_DOUBLE_EQ(rootSeries.back(), 0.0);
}

TEST(ReferenceSeries, DeepChainCounterFires) {
  HierarchyBuilder b("root");
  const NodeId c = b.addChild(0, "c");
  const NodeId g0 = b.addChild(c, "g0");
  b.addChild(c, "g1");
  b.addChild(g0, "x0");
  b.addChild(g0, "x1");
  const auto h = b.build();
  const NodeId x0 = h.find("c/g0/x0");
  const NodeId x1 = h.find("c/g0/x1");
  const NodeId g1 = h.find("c/g1");

  AdaDetector ada(h, config(4, 4.0, 0));
  for (TimeUnit u = 0; u < 4; ++u) {
    ada.step(batchOf(u, {{x0, 2}, {x1, 1}, {g1, 1}}));
  }
  EXPECT_EQ(ada.deepChainSplitCount(), 0u);
  // x0 spikes: the chain c -> g0 -> x0 requires the tosplit trigger at c
  // (g0's residual stays below theta).
  ada.step(batchOf(4, {{x0, 7}, {x1, 1}, {g1, 1}}));
  EXPECT_EQ(ada.currentShhh(), std::vector<NodeId>{x0});
  EXPECT_GE(ada.deepChainSplitCount(), 1u);
}

TEST(ReferenceSeries, DeepChainSplitsOccurOnRandomWorkloads) {
  // The Fig-7 guard gap is not a pathological corner: it fires on plain
  // randomized streams, which is why the deviation matters.
  Rng rng(4096);
  HierarchyBuilder b("root");
  std::vector<NodeId> nodes{0};
  for (int i = 0; i < 120; ++i) {
    nodes.push_back(
        b.addChild(nodes[rng.below(nodes.size())], "n" + std::to_string(i)));
  }
  const auto h = b.build();
  AdaDetector ada(h, config(6, 4.0, 0));
  std::size_t total = 0;
  for (TimeUnit u = 0; u < 200; ++u) {
    TimeUnitBatch batch;
    batch.unit = u;
    const NodeId hot =
        h.leaves()[SplitMix64(static_cast<std::uint64_t>(u / 5)).next() %
                   h.leafCount()];
    for (std::uint64_t i = 0; i < 2 + rng.below(8); ++i) {
      batch.records.push_back({hot, u * 900});
    }
    for (std::uint64_t i = 0; i < rng.below(10); ++i) {
      batch.records.push_back(
          {h.leaves()[rng.below(h.leafCount())], u * 900});
    }
    ada.step(batch);
    total = ada.deepChainSplitCount();
  }
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace tiresias
