#!/usr/bin/env bash
# Checkpoint -> kill -9 -> restore, end to end through `tiresias_cli serve`.
#
# Usage: cli_checkpoint_restore.sh <tiresias_cli> <scratch-dir>
#
# Starts a serve run that checkpoints every few units, kills the process
# the moment a checkpoint has been published (or lets it finish, which
# also publishes a final checkpoint), then proves `serve --restore`
# resumes from the file and completes. Everything is polled with hard
# deadlines so a hung quiesce fails this test fast instead of stalling CI.
set -u

CLI="$1"
DIR="$2"
CKPT="$DIR/checkpoint.tsnap"
SERVE_ARGS=(serve --streams 3 --units 2000 --workers 2 --window 16
            --checkpoint-dir "$DIR")

fail() {
  echo "FAIL: $*" >&2
  [ -n "${PID:-}" ] && kill -9 "$PID" 2>/dev/null
  exit 1
}

rm -rf "$DIR"
mkdir -p "$DIR" || fail "cannot create scratch dir $DIR"

# Phase 1: serve with periodic checkpoints; kill once one is published.
"$CLI" "${SERVE_ARGS[@]}" --checkpoint-every 10 \
    >"$DIR/serve1.log" 2>&1 &
PID=$!
deadline=$((SECONDS + 60))
while [ ! -s "$CKPT" ]; do
  if ! kill -0 "$PID" 2>/dev/null; then
    # The run finished before we sampled a periodic checkpoint; the final
    # checkpoint must exist.
    wait "$PID" || fail "first serve run exited non-zero (see $DIR/serve1.log)"
    break
  fi
  [ "$SECONDS" -ge "$deadline" ] && fail "no checkpoint appeared within 60s"
  sleep 0.05
done
if kill -0 "$PID" 2>/dev/null; then
  kill -9 "$PID" 2>/dev/null   # the "crash"
  wait "$PID" 2>/dev/null
fi
PID=
[ -s "$CKPT" ] || fail "checkpoint file missing after phase 1"
# A SIGKILL may legitimately strand a mid-write .tmp of the *next*
# checkpoint; atomicity only protects the published name. Clear it so
# phase 3 can assert clean shutdown leaves no temp file behind.
rm -f "$CKPT.tmp"

# Phase 2: restore and run to completion.
timeout 120 "$CLI" "${SERVE_ARGS[@]}" --restore >"$DIR/serve2.log" 2>&1 \
    || fail "restore run failed (see $DIR/serve2.log)"
grep -q "restored 3 streams" "$DIR/serve2.log" \
    || fail "restore line missing from serve output"
grep -q "^elapsed " "$DIR/serve2.log" || fail "restore run did not finish"
# Clean exit must publish atomically: no temp file under any name.
[ -e "$CKPT.tmp" ] && fail "clean shutdown left a temp snapshot behind"

# Phase 3: restoring the phase-2 final checkpoint is a no-op resume that
# must still report the cumulative per-stream totals.
timeout 120 "$CLI" "${SERVE_ARGS[@]}" --restore >"$DIR/serve3.log" 2>&1 \
    || fail "second restore failed (see $DIR/serve3.log)"
grep -q "restored 3 streams" "$DIR/serve3.log" || fail "second restore line missing"
units2=$(sed -n 's/.*stream ccd-net-0: units=\([0-9]*\).*/\1/p' "$DIR/serve2.log")
units3=$(sed -n 's/.*stream ccd-net-0: units=\([0-9]*\).*/\1/p' "$DIR/serve3.log")
[ -n "$units2" ] || fail "per-stream units missing from phase-2 output"
[ "$units2" = "$units3" ] || \
    fail "resume-at-end changed totals: $units2 vs $units3"

echo "PASS"
exit 0
