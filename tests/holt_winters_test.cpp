// Unit + property tests for the additive Holt-Winters forecaster: bootstrap
// quality, forecasting of seasonal signals, the Lemma 2 linearity that ADA's
// split/merge relies on, and dual-season combination.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "timeseries/holt_winters.h"

namespace tiresias {
namespace {

std::vector<double> seasonalSignal(std::size_t n, std::size_t period,
                                   double level, double amplitude,
                                   double trendPerUnit = 0.0) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = level + trendPerUnit * static_cast<double>(i) +
             amplitude * std::sin(2.0 * std::numbers::pi *
                                  static_cast<double>(i % period) /
                                  static_cast<double>(period));
  }
  return out;
}

TEST(HoltWinters, ForecastsPureSeasonalSignal) {
  HoltWintersForecaster hw({0.3, 0.05, 0.3}, {{24, 1.0}});
  const auto signal = seasonalSignal(24 * 8, 24, 100.0, 30.0);
  hw.initFromHistory({signal.data(), signal.size() - 24});
  // One-step forecasts over the held-out last season.
  for (std::size_t i = signal.size() - 24; i < signal.size(); ++i) {
    EXPECT_NEAR(hw.forecast(), signal[i], 3.0) << "at index " << i;
    hw.update(signal[i]);
  }
}

TEST(HoltWinters, TracksTrend) {
  HoltWintersForecaster hw({0.4, 0.2, 0.3}, {{12, 1.0}});
  const auto signal = seasonalSignal(12 * 10, 12, 50.0, 10.0, 0.5);
  hw.initFromHistory({signal.data(), signal.size()});
  // Next value continues the trend.
  const double expected = 50.0 + 0.5 * static_cast<double>(signal.size());
  EXPECT_NEAR(hw.forecast(), expected, 4.0);
  EXPECT_GT(hw.trend(), 0.2);
}

TEST(HoltWinters, BootstrapNeedsTwoSeasons) {
  HoltWintersForecaster hw({0.5, 0.1, 0.3}, {{10, 1.0}});
  EXPECT_EQ(hw.bootstrapLength(), 20u);
  for (int i = 0; i < 19; ++i) hw.update(5.0);
  EXPECT_FALSE(hw.bootstrapped());
  hw.update(5.0);
  EXPECT_TRUE(hw.bootstrapped());
  EXPECT_NEAR(hw.forecast(), 5.0, 1e-6);
}

TEST(HoltWinters, WarmupForecastIsRunningMean) {
  HoltWintersForecaster hw({0.5, 0.1, 0.3}, {{100, 1.0}});
  EXPECT_DOUBLE_EQ(hw.forecast(), 0.0);
  hw.update(10.0);
  hw.update(20.0);
  EXPECT_DOUBLE_EQ(hw.forecast(), 15.0);
}

TEST(HoltWinters, NoSeasonDegeneratesToHolt) {
  HoltWintersForecaster hw({0.5, 0.3, 0.3}, {});
  const std::vector<double> ramp{1, 2, 3, 4, 5, 6, 7, 8};
  hw.initFromHistory(ramp);
  EXPECT_NEAR(hw.forecast(), 9.0, 0.5);
}

TEST(HoltWinters, DualSeasonCombination) {
  // Signal with a short and a long season; the combined model should beat
  // either single-season model on held-out data.
  const std::size_t shortP = 8, longP = 56;
  std::vector<double> signal;
  for (std::size_t i = 0; i < longP * 6; ++i) {
    signal.push_back(
        100.0 +
        20.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(i % shortP) / shortP) +
        10.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(i % longP) / longP));
  }
  auto evaluate = [&](std::vector<SeasonSpec> seasons) {
    HoltWintersForecaster hw({0.2, 0.02, 0.3}, std::move(seasons));
    const std::size_t holdout = longP;
    hw.initFromHistory({signal.data(), signal.size() - holdout});
    double sq = 0.0;
    for (std::size_t i = signal.size() - holdout; i < signal.size(); ++i) {
      const double e = hw.forecast() - signal[i];
      sq += e * e;
      hw.update(signal[i]);
    }
    return sq;
  };
  const double dual = evaluate({{shortP, 0.67}, {longP, 0.33}});
  const double onlyShort = evaluate({{shortP, 1.0}});
  EXPECT_LT(dual, onlyShort);
}

TEST(HoltWinters, SeasonalCursorAccessor) {
  HoltWintersForecaster hw({0.5, 0.1, 0.3}, {{4, 1.0}});
  const std::vector<double> two{1, 2, 3, 4, 1, 2, 3, 4};
  hw.initFromHistory(two);
  // Seasonal indices repeat with period 4; deviations around the mean 2.5.
  EXPECT_NEAR(hw.seasonal(0, 0), -1.5, 1e-9);  // next unit is phase "1"
  EXPECT_NEAR(hw.seasonal(0, 1), -0.5, 1e-9);
  EXPECT_NEAR(hw.seasonal(0, 2), 0.5, 1e-9);
  EXPECT_NEAR(hw.seasonal(0, 3), 1.5, 1e-9);
}

// ---- Lemma 2: linearity ----

class HwLinearityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HwLinearityTest, MergeEqualsForecastOfSum) {
  Rng rng(GetParam());
  const std::size_t period = 6;
  const std::size_t n = period * 8;
  std::vector<double> xs(n), ys(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = rng.uniform(0.0, 50.0);
    ys[i] = rng.uniform(0.0, 50.0);
    sum[i] = xs[i] + ys[i];
  }
  const HoltWintersParams params{0.5, 0.1, 0.3};
  HoltWintersForecaster fx(params, {{period, 1.0}});
  HoltWintersForecaster fy(params, {{period, 1.0}});
  HoltWintersForecaster fsum(params, {{period, 1.0}});
  fx.initFromHistory(xs);
  fy.initFromHistory(ys);
  fsum.initFromHistory(sum);

  auto merged = fx.clone();
  merged->addFrom(fy);
  EXPECT_NEAR(merged->forecast(), fsum.forecast(), 1e-8);

  // The equality persists through further joint updates.
  for (int step = 0; step < 20; ++step) {
    const double vx = rng.uniform(0.0, 50.0);
    const double vy = rng.uniform(0.0, 50.0);
    merged->update(vx + vy);
    fsum.update(vx + vy);
    EXPECT_NEAR(merged->forecast(), fsum.forecast(), 1e-8);
  }
}

TEST_P(HwLinearityTest, ScaleEqualsForecastOfScaled) {
  Rng rng(GetParam() ^ 0xabcdULL);
  const std::size_t period = 5;
  std::vector<double> xs(period * 7);
  for (auto& v : xs) v = rng.uniform(0.0, 100.0);
  const double ratio = rng.uniform(0.1, 0.9);
  std::vector<double> scaled(xs);
  for (auto& v : scaled) v *= ratio;

  const HoltWintersParams params{0.4, 0.15, 0.25};
  HoltWintersForecaster full(params, {{period, 1.0}});
  HoltWintersForecaster ref(params, {{period, 1.0}});
  full.initFromHistory(xs);
  ref.initFromHistory(scaled);
  auto split = full.clone();
  split->scale(ratio);
  EXPECT_NEAR(split->forecast(), ref.forecast(), 1e-8);
}

TEST_P(HwLinearityTest, MergeAlignsDifferentBootstrapPhases) {
  // Two models bootstrapped at different absolute times must still merge
  // with correct seasonal-phase alignment.
  Rng rng(GetParam() ^ 0x9999ULL);
  const std::size_t period = 4;
  const HoltWintersParams params{0.5, 0.1, 0.3};
  const std::size_t n = period * 10;
  std::vector<double> xs(n), ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = rng.uniform(0.0, 10.0);
    ys[i] = rng.uniform(0.0, 10.0);
  }

  HoltWintersForecaster fx(params, {{period, 1.0}});
  fx.initFromHistory(xs);

  // fy bootstraps 3 units later in absolute time (drop the first 3).
  HoltWintersForecaster fy(params, {{period, 1.0}});
  fy.initFromHistory({ys.data() + 3, n - 3});

  HoltWintersForecaster fsum(params, {{period, 1.0}});
  // Reference: model of the sum, bootstrapped like fx then updated; not
  // exactly equal because fy saw a shorter history, but the *seasonal
  // phase* must line up: check by updating both with a pure seasonal
  // signal and verifying convergence instead of divergence.
  auto merged = fx.clone();
  merged->addFrom(fy);
  std::vector<double> joint(n);
  for (std::size_t i = 0; i < n; ++i) joint[i] = xs[i] + ys[i];
  fsum.initFromHistory(joint);
  for (int step = 0; step < 60; ++step) {
    const double v = 10.0 + (step % period);
    merged->update(v);
    fsum.update(v);
  }
  EXPECT_NEAR(merged->forecast(), fsum.forecast(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HwLinearityTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

TEST(HoltWinters, RejectsBadParams) {
  EXPECT_DEATH(HoltWintersForecaster({0.0, 0.1, 0.1}, {}), "alpha");
  EXPECT_DEATH(HoltWintersForecaster({0.5, 1.5, 0.1}, {}), "beta");
  EXPECT_DEATH(HoltWintersForecaster({0.5, 0.1, -0.1}, {}), "gamma");
  EXPECT_DEATH(HoltWintersForecaster({0.5, 0.1, 0.1}, {{1, 1.0}}), "period");
}

}  // namespace
}  // namespace tiresias
