// DetectWorkspace rebind hardening: a pooled workspace cycles across
// hierarchies of different sizes (and different hierarchies of the *same*
// size), and every rebind must read as freshly invalidated — no value,
// epoch stamp, or mark of the previous tenant may survive bind().
#include <gtest/gtest.h>

#include "core/workspace.h"

namespace tiresias {
namespace {

/// Stage a recognizable footprint into every plane of `ws`.
void populate(DetectWorkspace& ws) {
  ws.beginUnit();
  ws.beginMarks(DetectWorkspace::kMemberPlane);
  ws.beginMarks(DetectWorkspace::kSplitPlane);
  ws.beginMarks(DetectWorkspace::kReceivedPlane);
  for (NodeId n = 0; n < ws.nodeCount(); ++n) {
    ws.touch(n);
    ws.raw(n) = 100.0 + n;
    ws.modified(n) = 200.0 + n;
    ws.mark(DetectWorkspace::kMemberPlane, n);
    ws.mark(DetectWorkspace::kSplitPlane, n);
    ws.mark(DetectWorkspace::kReceivedPlane, n);
    ws.touched.push_back(n);
  }
}

/// Every plane of `ws` must read as empty/unmarked for ids [0, nodes).
void expectInvalidated(const DetectWorkspace& ws, std::size_t nodes) {
  ASSERT_EQ(ws.nodeCount(), nodes);
  for (NodeId n = 0; n < nodes; ++n) {
    EXPECT_FALSE(ws.isTouched(n)) << "node " << n;
    EXPECT_EQ(ws.rawOrZero(n), 0.0) << "node " << n;
    EXPECT_EQ(ws.modifiedOrZero(n), 0.0) << "node " << n;
    EXPECT_FALSE(ws.isMarked(DetectWorkspace::kMemberPlane, n)) << n;
    EXPECT_FALSE(ws.isMarked(DetectWorkspace::kSplitPlane, n)) << n;
    EXPECT_FALSE(ws.isMarked(DetectWorkspace::kReceivedPlane, n)) << n;
  }
}

TEST(WorkspaceRebind, FreshBindIsInvalidated) {
  DetectWorkspace ws;
  ws.bind(8);
  expectInvalidated(ws, 8);
}

TEST(WorkspaceRebind, SameSizeRebindInvalidates) {
  // Same node count stands in for a *different* hierarchy of equal size:
  // without the rebind bump, the first tenant's stamps would still match
  // the current generation and its values would leak into the new stream.
  DetectWorkspace ws;
  ws.bind(8);
  populate(ws);
  ASSERT_TRUE(ws.isTouched(3));
  ASSERT_EQ(ws.rawOrZero(3), 103.0);

  ws.bind(8);
  expectInvalidated(ws, 8);
}

TEST(WorkspaceRebind, GrowInvalidates) {
  DetectWorkspace ws;
  ws.bind(4);
  populate(ws);

  ws.bind(16);
  expectInvalidated(ws, 16);
}

TEST(WorkspaceRebind, ShrinkInvalidates) {
  DetectWorkspace ws;
  ws.bind(16);
  populate(ws);

  ws.bind(4);
  expectInvalidated(ws, 4);
  // The shrunk workspace must be fully usable within the new bound.
  ws.beginUnit();
  EXPECT_TRUE(ws.touch(3));
  ws.raw(3) = 7.0;
  EXPECT_EQ(ws.rawOrZero(3), 7.0);
  EXPECT_FALSE(ws.touch(3));  // second touch in the same unit
}

TEST(WorkspaceRebind, CyclingGrowShrinkGrowStaysClean) {
  // The pooled pattern: one workspace lent to streams with hierarchies of
  // different sizes in arbitrary order. Every hop must start clean.
  DetectWorkspace ws;
  const std::size_t sizes[] = {8, 32, 8, 4, 32, 4, 8};
  for (const std::size_t nodes : sizes) {
    ws.bind(nodes);
    expectInvalidated(ws, nodes);
    populate(ws);
  }
}

TEST(WorkspaceRebind, RebindDoesNotDisturbNormalUnitCycle) {
  // beginUnit()/beginMarks() semantics are unchanged by the hardening:
  // within one binding, per-unit invalidation works exactly as before.
  DetectWorkspace ws;
  ws.bind(6);
  ws.beginUnit();
  ws.beginMarks(DetectWorkspace::kMemberPlane);
  EXPECT_TRUE(ws.touch(2));
  ws.raw(2) = 5.0;
  EXPECT_TRUE(ws.mark(DetectWorkspace::kMemberPlane, 2));
  EXPECT_FALSE(ws.mark(DetectWorkspace::kMemberPlane, 2));

  ws.beginUnit();
  EXPECT_FALSE(ws.isTouched(2));
  // Marks live on their own plane generations, untouched by beginUnit().
  EXPECT_TRUE(ws.isMarked(DetectWorkspace::kMemberPlane, 2));
  ws.beginMarks(DetectWorkspace::kMemberPlane);
  EXPECT_FALSE(ws.isMarked(DetectWorkspace::kMemberPlane, 2));
}

}  // namespace
}  // namespace tiresias
