// Unit tests for record sources and timeunit batching.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "hierarchy/builder.h"
#include "stream/window.h"

namespace tiresias {
namespace {

Hierarchy tree() { return HierarchyBuilder::balanced({2, 2}); }

TEST(VectorSource, ReplaysInOrder) {
  VectorSource src({{1, 10}, {2, 20}, {1, 20}});
  EXPECT_EQ(src.next()->time, 10);
  EXPECT_EQ(src.next()->time, 20);
  EXPECT_EQ(src.next()->category, 1u);
  EXPECT_FALSE(src.next().has_value());
}

TEST(Batcher, GroupsByUnit) {
  VectorSource src({{1, 0}, {1, 899}, {2, 900}, {1, 1800}});
  TimeUnitBatcher batcher(src, 900, 0);
  auto b0 = batcher.next();
  ASSERT_TRUE(b0);
  EXPECT_EQ(b0->unit, 0);
  EXPECT_EQ(b0->records.size(), 2u);
  auto b1 = batcher.next();
  ASSERT_TRUE(b1);
  EXPECT_EQ(b1->records.size(), 1u);
  auto b2 = batcher.next();
  ASSERT_TRUE(b2);
  EXPECT_EQ(b2->unit, 2);
  EXPECT_FALSE(batcher.next());
}

TEST(Batcher, EmitsEmptyUnitsBetweenRecords) {
  VectorSource src({{1, 0}, {1, 3 * 900 + 1}});
  TimeUnitBatcher batcher(src, 900, 0);
  EXPECT_EQ(batcher.next()->records.size(), 1u);
  EXPECT_EQ(batcher.next()->records.size(), 0u);  // unit 1
  EXPECT_EQ(batcher.next()->records.size(), 0u);  // unit 2
  auto b3 = batcher.next();
  ASSERT_TRUE(b3);
  EXPECT_EQ(b3->unit, 3);
  EXPECT_EQ(b3->records.size(), 1u);
  EXPECT_FALSE(batcher.next());
}

TEST(Batcher, DropsRecordsBeforeStart) {
  VectorSource src({{1, 100}, {1, 200}, {1, 2000}});
  TimeUnitBatcher batcher(src, 900, 1800);
  auto b = batcher.next();
  ASSERT_TRUE(b);
  EXPECT_EQ(b->unit, 2);
  EXPECT_EQ(b->records.size(), 1u);
  EXPECT_EQ(batcher.droppedRecords(), 2u);
}

TEST(Batcher, EmptySource) {
  VectorSource src({});
  TimeUnitBatcher batcher(src, 900, 0);
  EXPECT_FALSE(batcher.next());
}

TEST(Batcher, NegativeTimestamps) {
  VectorSource src({{1, -1800}, {1, -1}});
  TimeUnitBatcher batcher(src, 900, -1800);
  auto b = batcher.next();
  ASSERT_TRUE(b);
  EXPECT_EQ(b->unit, -2);
  EXPECT_EQ(b->records.size(), 1u);
  EXPECT_EQ(batcher.next()->records.size(), 1u);  // unit -1 holds t=-1
  EXPECT_FALSE(batcher.next());
}

TEST(CsvSource, RoundTripAndJunkRows) {
  const auto h = tree();
  const std::string path = ::testing::TempDir() + "/trace.csv";
  {
    std::ofstream out(path);
    out << h.path(h.leaves()[0]) << ",100\n";
    out << "bogus/path,200\n";          // unknown category -> skipped
    out << h.path(h.leaves()[1]) << ",300\n";
    out << h.path(h.leaves()[1]) << ",notatime\n";  // bad time -> skipped
    out << "onlyonefield\n";            // malformed -> skipped
  }
  CsvSource src(path, h);
  auto r1 = src.next();
  ASSERT_TRUE(r1);
  EXPECT_EQ(r1->category, h.leaves()[0]);
  EXPECT_EQ(r1->time, 100);
  auto r2 = src.next();
  ASSERT_TRUE(r2);
  EXPECT_EQ(r2->time, 300);
  EXPECT_FALSE(src.next());
  EXPECT_EQ(src.skippedRecords(), 3u);
  std::remove(path.c_str());
}

TEST(CsvSource, PathCacheSharedByBothPullPaths) {
  // Regression: next() used to resolve paths with a bare hierarchy find,
  // bypassing the path->NodeId cache nextBatch() populates, so per-record
  // ingest paid a full tree walk per row. Both pull paths must accrue
  // hits in the one shared cache.
  const auto h = tree();
  const std::string path = ::testing::TempDir() + "/trace_cache.csv";
  {
    std::ofstream out(path);
    for (int i = 0; i < 10; ++i) {
      out << h.path(h.leaves()[0]) << "," << 100 + i << "\n";
    }
  }
  {
    CsvSource src(path, h);
    while (src.next()) {
    }
    EXPECT_EQ(src.pathCacheSize(), 1u);
    EXPECT_EQ(src.pathCacheHits(), 9u);  // first row misses, rest hit
  }
  {  // next() after nextBatch() reuses the batch-populated entries.
    CsvSource src(path, h);
    std::vector<Record> chunk;
    ASSERT_EQ(src.nextBatch(chunk, 4), 4u);
    const std::size_t hitsAfterBatch = src.pathCacheHits();
    EXPECT_EQ(hitsAfterBatch, 3u);
    while (src.next()) {
    }
    EXPECT_EQ(src.pathCacheSize(), 1u);
    EXPECT_EQ(src.pathCacheHits(), 9u);
  }
  std::remove(path.c_str());
}

TEST(CsvSource, WriteReadRoundTrip) {
  const auto h = tree();
  const std::string path = ::testing::TempDir() + "/trace_rt.csv";
  const std::vector<Record> records{{h.leaves()[0], 1}, {h.leaves()[2], 5}};
  writeRecordsCsv(path, h, records);
  CsvSource src(path, h);
  std::vector<Record> back;
  while (auto r = src.next()) back.push_back(*r);
  EXPECT_EQ(back, records);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tiresias
