// Unit + property tests for the hierarchy substrate.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/rng.h"
#include "hierarchy/builder.h"

namespace tiresias {
namespace {

Hierarchy smallTree() {
  // root -> {a, b}; a -> {a0, a1}; b -> {b0}
  HierarchyBuilder b("root");
  const NodeId a = b.addChild(0, "a");
  const NodeId bb = b.addChild(0, "b");
  b.addChild(a, "a0");
  b.addChild(a, "a1");
  b.addChild(bb, "b0");
  return b.build();
}

TEST(Hierarchy, BasicShape) {
  const auto h = smallTree();
  EXPECT_EQ(h.size(), 6u);
  EXPECT_EQ(h.root(), 0u);
  EXPECT_EQ(h.height(), 3);
  EXPECT_EQ(h.leafCount(), 3u);
  EXPECT_EQ(h.depth(h.root()), 1);
}

TEST(Hierarchy, BfsOrderInvariants) {
  const auto h = smallTree();
  // Parents have smaller ids than children; depths are non-decreasing.
  for (NodeId n = 1; n < h.size(); ++n) {
    EXPECT_LT(h.parent(n), n);
    EXPECT_GE(h.depth(n), h.depth(static_cast<NodeId>(n - 1)));
  }
}

TEST(Hierarchy, ChildrenAndParents) {
  const auto h = smallTree();
  const NodeId a = h.childNamed(h.root(), "a");
  ASSERT_NE(a, kInvalidNode);
  EXPECT_EQ(h.degree(a), 2u);
  for (NodeId c : h.children(a)) EXPECT_EQ(h.parent(c), a);
  EXPECT_EQ(h.childNamed(h.root(), "missing"), kInvalidNode);
}

TEST(Hierarchy, PathFindRoundTrip) {
  const auto h = smallTree();
  for (NodeId n = 0; n < h.size(); ++n) {
    EXPECT_EQ(h.find(h.path(n)), n) << "path " << h.path(n);
  }
  // Relative paths (no root component) resolve too.
  EXPECT_EQ(h.find("a/a1"), h.find("root/a/a1"));
}

TEST(Hierarchy, AncestorQueries) {
  const auto h = smallTree();
  const NodeId a = h.find("a");
  const NodeId a0 = h.find("a/a0");
  const NodeId b0 = h.find("b/b0");
  EXPECT_TRUE(h.isAncestorOrEqual(h.root(), a0));
  EXPECT_TRUE(h.isAncestorOrEqual(a, a0));
  EXPECT_TRUE(h.isAncestorOrEqual(a0, a0));
  EXPECT_FALSE(h.isAncestorOrEqual(a0, a));
  EXPECT_FALSE(h.isAncestorOrEqual(a, b0));
}

TEST(Hierarchy, NodesAtDepthContiguous) {
  const auto h = smallTree();
  const auto level2 = h.nodesAtDepth(2);
  EXPECT_EQ(level2.size(), 2u);
  for (NodeId n : level2) EXPECT_EQ(h.depth(n), 2);
  EXPECT_TRUE(h.nodesAtDepth(9).empty());
  EXPECT_TRUE(h.nodesAtDepth(0).empty());
}

TEST(Hierarchy, LeavesUnder) {
  const auto h = smallTree();
  EXPECT_EQ(h.leavesUnder(h.root()), 3u);
  EXPECT_EQ(h.leavesUnder(h.find("a")), 2u);
  EXPECT_EQ(h.leavesUnder(h.find("b/b0")), 1u);
}

TEST(Hierarchy, BalancedBuilder) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  EXPECT_EQ(h.size(), 1u + 3u + 6u);
  EXPECT_EQ(h.leafCount(), 6u);
  EXPECT_EQ(h.height(), 3);
  for (NodeId n : h.nodesAtDepth(2)) EXPECT_EQ(h.degree(n), 2u);
}

TEST(Hierarchy, BuilderRemapTracksNodes) {
  HierarchyBuilder b("r");
  // Provisional construction order deliberately interleaved.
  const NodeId x = b.addChild(0, "x");
  const NodeId y = b.addChild(0, "y");
  const NodeId xx = b.addChild(x, "xx");
  const NodeId yy = b.addChild(y, "yy");
  std::vector<NodeId> remap;
  const auto h = b.build(&remap);
  EXPECT_EQ(h.name(remap[x]), "x");
  EXPECT_EQ(h.name(remap[xx]), "xx");
  EXPECT_EQ(h.parent(remap[yy]), remap[y]);
}

TEST(Hierarchy, FromPathsBuildsSharedPrefixes) {
  const auto h = HierarchyBuilder::fromPaths(
      {"TV/NoPicture", "TV/NoSound", "Internet/Slow", "TV/NoPicture"},
      "Trouble");
  EXPECT_EQ(h.size(), 6u);  // root + TV + Internet + 3 leaves (dup merged)
  EXPECT_EQ(h.leafCount(), 3u);
  EXPECT_NE(h.find("TV/NoPicture"), kInvalidNode);
  EXPECT_NE(h.find("Trouble/TV/NoSound"), kInvalidNode);  // absolute form
  EXPECT_EQ(h.degree(h.find("TV")), 2u);
}

TEST(Hierarchy, FromPathsAcceptsRootedAndUnrootedMix) {
  const auto h = HierarchyBuilder::fromPaths(
      {"root/a/x", "a/y", "b"}, "root");
  EXPECT_EQ(h.leafCount(), 3u);
  EXPECT_EQ(h.degree(h.find("a")), 2u);
}

TEST(Hierarchy, FromPathsFileSkipsCommentsAndBlanks) {
  const std::string path = ::testing::TempDir() + "/paths.txt";
  {
    std::ofstream out(path);
    out << "# comment\n\nVHO0/IO0\nVHO0/IO1\nVHO1/IO0\n";
  }
  const auto h = HierarchyBuilder::fromPathsFile(path, "SHO");
  EXPECT_EQ(h.leafCount(), 3u);
  EXPECT_EQ(h.nodesAtDepth(2).size(), 2u);  // VHO0, VHO1
  std::remove(path.c_str());
}

TEST(Hierarchy, SingleNodeTree) {
  HierarchyBuilder b("only");
  const auto h = b.build();
  EXPECT_EQ(h.size(), 1u);
  EXPECT_TRUE(h.isLeaf(h.root()));
  EXPECT_EQ(h.leafCount(), 1u);
  EXPECT_EQ(h.height(), 1);
  EXPECT_TRUE(h.isAncestorOrEqual(0, 0));
}

// Property sweep: random trees keep every structural invariant.
class HierarchyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HierarchyPropertyTest, RandomTreeInvariants) {
  Rng rng(GetParam());
  HierarchyBuilder b("root");
  std::vector<NodeId> nodes{0};
  const std::size_t extra = 50 + rng.below(150);
  for (std::size_t i = 0; i < extra; ++i) {
    const NodeId parent = nodes[rng.below(nodes.size())];
    nodes.push_back(b.addChild(parent, "n" + std::to_string(i)));
  }
  std::vector<NodeId> remap;
  const auto h = b.build(&remap);
  ASSERT_EQ(h.size(), nodes.size());

  std::size_t leafTotal = 0;
  for (NodeId n = 0; n < h.size(); ++n) {
    if (n != h.root()) {
      EXPECT_LT(h.parent(n), n);
      EXPECT_EQ(h.depth(n), h.depth(h.parent(n)) + 1);
      EXPECT_TRUE(h.isAncestorOrEqual(h.parent(n), n));
      EXPECT_FALSE(h.isAncestorOrEqual(n, h.parent(n)));
    }
    if (h.isLeaf(n)) {
      ++leafTotal;
      EXPECT_EQ(h.leavesUnder(n), 1u);
    } else {
      std::size_t sum = 0;
      for (NodeId c : h.children(n)) sum += h.leavesUnder(c);
      EXPECT_EQ(h.leavesUnder(n), sum);
    }
  }
  EXPECT_EQ(h.leafCount(), leafTotal);

  // Level ranges partition [0, size).
  std::size_t covered = 0;
  for (int d = 1; d <= h.height(); ++d) covered += h.nodesAtDepth(d).size();
  EXPECT_EQ(covered, h.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace tiresias
