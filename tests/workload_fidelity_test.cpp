// Statistical-fidelity tests for the synthetic workloads: the §II-B
// properties (sparsity ordering, volatility, seasonality strength, dataset
// contrasts) that the detection results depend on, beyond the basic
// generator mechanics covered in workload_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "analysis/fft.h"
#include "common/stats.h"
#include "core/shhh.h"
#include "stream/window.h"
#include "workload/ccd.h"
#include "workload/scd.h"

namespace tiresias::workload {
namespace {

std::vector<double> rootCounts(const WorkloadSpec& spec, TimeUnit units,
                               std::uint64_t seed) {
  GeneratorSource src(spec, 0, units, seed);
  TimeUnitBatcher batcher(src, spec.unit, 0);
  std::vector<double> counts;
  while (auto b = batcher.next()) {
    counts.push_back(static_cast<double>(b->records.size()));
  }
  return counts;
}

TEST(WorkloadFidelity, CcdVolatilityHigh) {
  // §II-B: the CCD root's 90th/10th percentile ratio is ~35x. Our
  // generator lands in the same regime (>10x); SCD is far flatter.
  const auto ccd = rootCounts(ccdTroubleWorkload(Scale::kMedium), 7 * 96, 1);
  const auto scd = rootCounts(scdNetworkWorkload(Scale::kMedium), 7 * 96, 2);
  const double ccdRatio =
      quantile(ccd, 0.9) / std::max(quantile(ccd, 0.1), 1.0);
  const double scdRatio =
      quantile(scd, 0.9) / std::max(quantile(scd, 0.1), 1.0);
  EXPECT_GT(ccdRatio, 10.0);
  EXPECT_LT(scdRatio, ccdRatio / 2.0);
}

TEST(WorkloadFidelity, ScdPerNodeVarianceBelowCcd) {
  // §VII-A attributes SCD's accuracy to smaller per-node variance over
  // time. Compare coefficient of variation of depth-2 aggregates.
  auto cvAtDepth2 = [](const WorkloadSpec& spec, std::uint64_t seed) {
    const auto& h = spec.hierarchy;
    GeneratorSource src(spec, 0, 3 * 96, seed);
    TimeUnitBatcher batcher(src, spec.unit, 0);
    std::unordered_map<NodeId, RunningMoments> moments;
    while (auto b = batcher.next()) {
      std::unordered_map<NodeId, double> agg;
      for (const auto& r : b->records) {
        NodeId cur = r.category;
        while (h.depth(cur) > 2) cur = h.parent(cur);
        agg[cur] += 1.0;
      }
      for (NodeId n : h.nodesAtDepth(2)) {
        moments[n].add(agg.count(n) ? agg[n] : 0.0);
      }
    }
    double cvSum = 0.0;
    std::size_t counted = 0;
    for (const auto& [n, m] : moments) {
      (void)n;
      if (m.mean() > 0.5) {
        cvSum += m.stddev() / m.mean();
        ++counted;
      }
    }
    return counted ? cvSum / static_cast<double>(counted) : 0.0;
  };
  const double ccdCv = cvAtDepth2(ccdNetworkWorkload(Scale::kTest), 3);
  const double scdCv = cvAtDepth2(scdNetworkWorkload(Scale::kTest), 4);
  EXPECT_GT(ccdCv, 0.0);
  EXPECT_GT(scdCv, 0.0);
  EXPECT_LT(scdCv, ccdCv);
}

TEST(WorkloadFidelity, DiurnalDominatesSpectrum) {
  for (auto [spec, seed] :
       {std::pair{ccdTroubleWorkload(Scale::kTest), 5ULL},
        std::pair{scdNetworkWorkload(Scale::kTest), 6ULL}}) {
    const auto counts = rootCounts(spec, 14 * 96, seed);
    const auto top = dominantPeriods(counts, 1);
    ASSERT_FALSE(top.empty());
    EXPECT_NEAR(top[0].period, 96.0, 8.0);  // 24h at 15-min units
  }
}

TEST(WorkloadFidelity, SiblingRatesHeterogeneous) {
  // §II-B: "sibling nodes ... could have very different case arrival
  // rates". Check the spread of level-2 shares.
  const auto spec = ccdNetworkWorkload(Scale::kMedium);
  std::vector<double> shares;
  for (std::size_t i = 0; i < spec.hierarchy.degree(0); ++i) {
    shares.push_back(spec.childShares[spec.hierarchy.root()][i]);
  }
  const double maxShare = *std::max_element(shares.begin(), shares.end());
  const double minShare = *std::min_element(shares.begin(), shares.end());
  EXPECT_GT(maxShare / minShare, 3.0);
}

TEST(WorkloadFidelity, HeavyHitterSetChangesOverTime) {
  // §II-B: "observing any fixed subset of nodes ... could easily miss
  // significant anomalies" because the heavy-hitter set drifts. Compare
  // the set at a quiet hour vs a busy hour.
  const auto spec = ccdNetworkWorkload(Scale::kMedium);
  GeneratorSource src(spec, 0, 96, 7);
  TimeUnitBatcher batcher(src, spec.unit, 0);
  std::vector<std::vector<NodeId>> sets;
  while (auto b = batcher.next()) {
    CountMap counts;
    for (const auto& r : b->records) counts[r.category] += 1.0;
    sets.push_back(computeShhh(spec.hierarchy, counts, 6.0).shhh);
  }
  const auto& night = sets[16];  // 04:00
  const auto& peak = sets[64];   // 16:00
  EXPECT_LT(night.size(), peak.size());
  // The busy set is not a superset relabeling: it reaches nodes the quiet
  // set never tracked.
  std::size_t fresh = 0;
  for (NodeId n : peak) {
    if (std::find(night.begin(), night.end(), n) == night.end()) ++fresh;
  }
  EXPECT_GT(fresh, peak.size() / 2);
}

TEST(WorkloadFidelity, SpikeShapesMatchDurations) {
  // Short and long spikes (Fig 2's "<30 minutes" and ">5 hours" bursts)
  // both materialize with the configured durations.
  const auto spec = ccdNetworkWorkload(Scale::kTest);
  const auto& h = spec.hierarchy;
  GroundTruthLedger ledger;
  const NodeId target = h.children(h.root())[0];
  ledger.add({target, 10, 2, 120.0});   // 30-minute burst
  ledger.add({target, 50, 20, 120.0});  // 5-hour burst
  auto injector = std::make_shared<AnomalyInjector>(h, ledger);
  GeneratorSource with(spec, 0, 96, 9, injector);
  GeneratorSource without(spec, 0, 96, 9);
  std::vector<double> delta(96, 0.0);
  {
    TimeUnitBatcher batcher(with, spec.unit, 0);
    while (auto b = batcher.next()) {
      for (const auto& r : b->records) {
        if (h.isAncestorOrEqual(target, r.category)) {
          delta[static_cast<std::size_t>(b->unit)] += 1.0;
        }
      }
    }
  }
  {
    TimeUnitBatcher batcher(without, spec.unit, 0);
    while (auto b = batcher.next()) {
      for (const auto& r : b->records) {
        if (h.isAncestorOrEqual(target, r.category)) {
          delta[static_cast<std::size_t>(b->unit)] -= 1.0;
        }
      }
    }
  }
  // Inside both bursts the lift is large; just outside it is small.
  EXPECT_GT(delta[10], 60.0);
  EXPECT_GT(delta[11], 60.0);
  EXPECT_LT(std::abs(delta[13]), 30.0);
  for (int u = 50; u < 70; ++u) {
    EXPECT_GT(delta[static_cast<std::size_t>(u)], 60.0) << "unit " << u;
  }
  EXPECT_LT(std::abs(delta[72]), 30.0);
}

TEST(WorkloadFidelity, PaperScaleGenerationIsTractable) {
  // The paper preset for CCD network (46k nodes) must generate and batch
  // an hour of traffic quickly enough for interactive use.
  const auto spec = ccdNetworkWorkload(Scale::kPaper);
  // An hour around the mid-afternoon peak (units 60-63 of day 2).
  const TimeUnit first = 2 * 96 + 60;
  GeneratorSource src(spec, first, first + 4, 11);
  TimeUnitBatcher batcher(src, spec.unit, unitStart(first, spec.unit));
  std::size_t records = 0;
  while (auto b = batcher.next()) records += b->records.size();
  EXPECT_GT(records, 100u);
}

}  // namespace
}  // namespace tiresias::workload
