// Batched-ingestion fast path: RecordSource::nextBatch must be
// indistinguishable from next() — identical record sequences, identical
// skip accounting, and bit-identical anomaly sets through the pipeline and
// the engine (the sequential-equivalence guarantee the ingest refactor
// ships under).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/rng.h"
#include "core/pipeline.h"
#include "engine/engine.h"
#include "hierarchy/builder.h"
#include "report/concurrent_store.h"
#include "report/store.h"
#include "stream/window.h"
#include "timeseries/ewma.h"
#include "workload/ccd.h"

namespace tiresias {
namespace {

using workload::GeneratorSource;
using workload::Scale;
using workload::WorkloadSpec;

/// Hides a source's native nextBatch so consumers exercise the default
/// per-record fallback — the "unbatched" side of every equivalence check.
class ForceUnbatched final : public RecordSource {
 public:
  explicit ForceUnbatched(std::unique_ptr<RecordSource> inner)
      : inner_(std::move(inner)) {}

  std::optional<Record> next() override { return inner_->next(); }
  std::size_t skippedRecords() const override {
    return inner_->skippedRecords();
  }

 private:
  std::unique_ptr<RecordSource> inner_;
};

/// A spike big enough that both sides of every equivalence test detect
/// real anomalies — comparing empty sets would prove nothing.
std::shared_ptr<const workload::AnomalyInjector> spikeInjector(
    const WorkloadSpec& spec, TimeUnit startUnit) {
  workload::SpikeSpec spike;
  spike.node = spec.hierarchy.children(spec.hierarchy.root()).front();
  spike.startUnit = startUnit;
  spike.durationUnits = 3;
  spike.extraPerUnit = 40.0 * spec.baseRatePerUnit;
  workload::GroundTruthLedger ledger;
  ledger.add(spike);
  return std::make_shared<workload::AnomalyInjector>(spec.hierarchy,
                                                     std::move(ledger));
}

PipelineConfig pipelineConfig(const WorkloadSpec& spec) {
  PipelineConfig cfg;
  cfg.delta = spec.unit;
  cfg.detector.theta = 8.0;
  cfg.detector.windowLength = 16;
  cfg.detector.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
  return cfg;
}

std::vector<Record> drainPerRecord(RecordSource& src) {
  std::vector<Record> out;
  while (auto r = src.next()) out.push_back(*r);
  return out;
}

std::vector<Record> drainBatched(RecordSource& src, std::size_t max) {
  std::vector<Record> out, chunk;
  while (src.nextBatch(chunk, max) > 0) {
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  return out;
}

TEST(NextBatch, DefaultFallbackAdaptsNext) {
  ForceUnbatched src(std::make_unique<VectorSource>(
      std::vector<Record>{{1, 10}, {2, 20}, {3, 30}, {4, 40}, {5, 50}}));
  std::vector<Record> chunk;
  EXPECT_EQ(src.nextBatch(chunk, 2), 2u);
  EXPECT_EQ(chunk, (std::vector<Record>{{1, 10}, {2, 20}}));
  EXPECT_EQ(src.nextBatch(chunk, 4), 3u);  // clears, then the remainder
  EXPECT_EQ(chunk, (std::vector<Record>{{3, 30}, {4, 40}, {5, 50}}));
  EXPECT_EQ(src.nextBatch(chunk, 4), 0u);
  EXPECT_TRUE(chunk.empty());
}

TEST(NextBatch, VectorSourceMatchesNextAtAnyChunkSize) {
  std::vector<Record> records;
  for (int i = 0; i < 257; ++i) {
    records.push_back({static_cast<NodeId>(i % 5), i * 3});
  }
  VectorSource perRecord(records);
  const auto want = drainPerRecord(perRecord);
  for (std::size_t max : {1u, 2u, 7u, 256u, 1024u}) {
    VectorSource batched(records);
    EXPECT_EQ(drainBatched(batched, max), want) << "max=" << max;
  }
}

TEST(NextBatch, GeneratorSourceMatchesNext) {
  const auto spec = workload::ccdNetworkWorkload(Scale::kTest);
  GeneratorSource perRecord(spec, 0, 24, 42);
  GeneratorSource batched(spec, 0, 24, 42);
  const auto want = drainPerRecord(perRecord);
  EXPECT_EQ(drainBatched(batched, 100), want);
  EXPECT_EQ(batched.produced(), perRecord.produced());
}

/// One trace exercising every skip reason plus cache-relevant repetition:
/// unknown paths (cached negatively), malformed rows, bad timestamps,
/// quoted and CRLF rows (slow path), and heavy path repetition (cache
/// hits). next() and nextBatch must agree on records AND skip counts.
TEST(NextBatch, CsvSourceMatchesNextOnJunkLadenTrace) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  const std::string path = ::testing::TempDir() + "/batch_junk.csv";
  {
    std::ofstream out(path);
    for (int rep = 0; rep < 50; ++rep) {  // repeated categories: cache hits
      out << h.path(h.leaves()[rep % 3]) << "," << 100 + rep << "\n";
    }
    out << "no/such/path,200\n";            // unknown -> skipped
    out << "no/such/path,201\n";            // repeated unknown (cached)
    out << "not a csv row\n";               // one field -> skipped
    out << "a,b,c\n";                       // three fields -> skipped
    out << h.path(h.leaves()[0]) << ",notatime\n";  // bad time -> skipped
    out << h.path(h.leaves()[0]) << ",\n";          // empty time -> skipped
    out << "\n";                                    // blank line (not junk)
    out << "\"" << h.path(h.leaves()[1]) << "\",300\n";  // quoted row
    out << h.path(h.leaves()[2]) << ",400\r\n";          // CRLF row
    // Embedded NUL after digits: strtoll stops at the NUL and ACCEPTS
    // (t=450); the fast path must agree.
    out << h.path(h.leaves()[0]) << ",450" << '\0' << "x\n";
    out << h.path(h.leaves()[2]) << ",500\n";
  }

  CsvSource perRecord(path, h);
  const auto want = drainPerRecord(perRecord);
  ASSERT_EQ(want.size(), 54u);
  EXPECT_EQ(perRecord.skippedRecords(), 6u);

  for (std::size_t max : {1u, 3u, 64u, 4096u}) {
    CsvSource batched(path, h);
    EXPECT_EQ(drainBatched(batched, max), want) << "max=" << max;
    EXPECT_EQ(batched.skippedRecords(), perRecord.skippedRecords())
        << "max=" << max;
  }

  {  // Mixing the two pull APIs on one source must not lose records.
    CsvSource mixed(path, h);
    std::vector<Record> got, chunk;
    const auto first = mixed.next();  // consume one via the per-record path
    ASSERT_TRUE(first);
    got.push_back(*first);
    while (mixed.nextBatch(chunk, 10) > 0) {
      got.insert(got.end(), chunk.begin(), chunk.end());
    }
    EXPECT_EQ(got, want);
    EXPECT_EQ(mixed.skippedRecords(), 6u);
  }
  std::remove(path.c_str());
}

TEST(Batcher, ReuseApiMatchesOptionalApi) {
  Rng rng(99);
  for (int round = 0; round < 8; ++round) {
    const Duration delta = 60 + static_cast<Duration>(rng.below(900));
    std::vector<Record> records;
    Timestamp t = static_cast<Timestamp>(rng.below(2000));
    for (int i = 0; i < 400; ++i) {
      t += static_cast<Timestamp>(rng.below(static_cast<std::uint64_t>(
          delta * 3)));
      records.push_back({static_cast<NodeId>(rng.below(6)), t});
    }
    const Timestamp start = records.front().time + 2 * delta;

    VectorSource a(records);
    TimeUnitBatcher optionalApi(a, delta, start);
    VectorSource b(records);
    TimeUnitBatcher reuseApi(b, delta, start);

    TimeUnitBatch reused;
    while (auto batch = optionalApi.next()) {
      ASSERT_TRUE(reuseApi.next(reused));
      EXPECT_EQ(reused.unit, batch->unit);
      EXPECT_EQ(reused.records, batch->records);
    }
    EXPECT_FALSE(reuseApi.next(reused));
    EXPECT_EQ(reuseApi.droppedRecords(), optionalApi.droppedRecords());
  }
}

TEST(Batcher, TinyChunksPreserveUnitSlicing) {
  // Chunk boundaries land mid-unit; slicing must not care.
  std::vector<Record> records;
  for (int i = 0; i < 100; ++i) records.push_back({1, i * 37});
  for (std::size_t chunk : {1u, 2u, 3u, 5u}) {
    VectorSource src(records);
    TimeUnitBatcher batcher(src, 300, 0, chunk);
    std::size_t total = 0;
    TimeUnitBatch batch;
    TimeUnit expect = 0;
    while (batcher.next(batch)) {
      EXPECT_EQ(batch.unit, expect++);
      for (const auto& r : batch.records) {
        EXPECT_EQ(timeUnitOf(r.time, 300), batch.unit);
      }
      total += batch.records.size();
    }
    EXPECT_EQ(total, records.size()) << "chunk=" << chunk;
  }
}

/// The tentpole guarantee at the pipeline level: a batched source and the
/// per-record fallback produce bit-identical anomaly sets and summaries.
TEST(BatchedIngest, PipelineEquivalentToPerRecordPath) {
  const auto spec = workload::ccdNetworkWorkload(Scale::kTest);
  const TimeUnit units = 48;

  auto runWith = [&](std::unique_ptr<RecordSource> src, RunSummary& sum) {
    TiresiasPipeline pipeline(borrowHierarchy(spec.hierarchy), pipelineConfig(spec));
    report::AnomalyStore store(spec.hierarchy);
    sum = pipeline.run(*src,
                       [&](const InstanceResult& r) { store.add(r); });
    return store.all();
  };

  const auto injector = spikeInjector(spec, 30);
  RunSummary batchedSum, perRecordSum;
  const auto batched = runWith(
      std::make_unique<GeneratorSource>(spec, 0, units, 7, injector),
      batchedSum);
  const auto perRecord = runWith(
      std::make_unique<ForceUnbatched>(
          std::make_unique<GeneratorSource>(spec, 0, units, 7, injector)),
      perRecordSum);

  EXPECT_EQ(perRecordSum.unitsProcessed, batchedSum.unitsProcessed);
  EXPECT_EQ(perRecordSum.recordsProcessed, batchedSum.recordsProcessed);
  EXPECT_EQ(perRecordSum.instancesDetected, batchedSum.instancesDetected);
  EXPECT_EQ(perRecordSum.anomaliesReported, batchedSum.anomaliesReported);
  ASSERT_EQ(perRecord.size(), batched.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i].anomaly, perRecord[i].anomaly);
    EXPECT_EQ(batched[i].path, perRecord[i].path);
  }
  EXPECT_GT(batched.size(), 0u);  // the comparison must compare something
}

/// And at the engine level, across workers and backpressure.
TEST(BatchedIngest, EngineEquivalentToPerRecordPath) {
  const std::vector<WorkloadSpec> specs = {
      workload::ccdNetworkWorkload(Scale::kTest),
      workload::ccdTroubleWorkload(Scale::kTest),
      workload::ccdNetworkWorkload(Scale::kTest),
  };
  const TimeUnit units = 40;

  auto runEngine = [&](bool batched) {
    engine::EngineConfig cfg;
    cfg.workers = 2;
    cfg.streamQueueCapacity = 2;  // force backpressure on the ingest path
    report::ConcurrentAnomalyStore store;
    engine::DetectionEngine eng(cfg, store.sink());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const std::string name = "s" + std::to_string(i);
      store.registerStream(name, specs[i].hierarchy);
      auto gen = std::make_unique<GeneratorSource>(
          specs[i], 0, units, 31 + i, spikeInjector(specs[i], 24));
      std::unique_ptr<RecordSource> src;
      if (batched) {
        src = std::move(gen);
      } else {
        src = std::make_unique<ForceUnbatched>(std::move(gen));
      }
      eng.addStream(name, borrowHierarchy(specs[i].hierarchy), pipelineConfig(specs[i]),
                    std::move(src));
    }
    eng.start();
    eng.drain();
    std::vector<std::vector<report::StoredAnomaly>> all;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      all.push_back(store.snapshot("s" + std::to_string(i)));
    }
    return all;
  };

  const auto batched = runEngine(true);
  const auto perRecord = runEngine(false);
  ASSERT_EQ(batched.size(), perRecord.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < batched.size(); ++i) {
    SCOPED_TRACE("stream " + std::to_string(i));
    ASSERT_EQ(batched[i].size(), perRecord[i].size());
    for (std::size_t j = 0; j < batched[i].size(); ++j) {
      EXPECT_EQ(batched[i][j].anomaly, perRecord[i][j].anomaly);
      EXPECT_EQ(batched[i][j].path, perRecord[i][j].path);
    }
    total += batched[i].size();
  }
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace tiresias
