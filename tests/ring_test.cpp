// Unit tests for the RingSeries buffer.
#include <gtest/gtest.h>

#include "timeseries/ring.h"

namespace tiresias {
namespace {

TEST(Ring, FillAndEvict) {
  RingSeries r(3);
  EXPECT_TRUE(r.empty());
  r.push(1);
  r.push(2);
  r.push(3);
  EXPECT_TRUE(r.full());
  EXPECT_EQ(r.toVector(), (std::vector<double>{1, 2, 3}));
  r.push(4);  // evicts 1
  EXPECT_EQ(r.toVector(), (std::vector<double>{2, 3, 4}));
  r.push(5);
  EXPECT_EQ(r.toVector(), (std::vector<double>{3, 4, 5}));
}

TEST(Ring, IndexingFromBothEnds) {
  RingSeries r(4);
  for (double v : {10.0, 20.0, 30.0, 40.0, 50.0}) r.push(v);
  EXPECT_DOUBLE_EQ(r.at(0), 20.0);
  EXPECT_DOUBLE_EQ(r.at(3), 50.0);
  EXPECT_DOUBLE_EQ(r.fromLatest(0), 50.0);
  EXPECT_DOUBLE_EQ(r.fromLatest(3), 20.0);
  EXPECT_DOUBLE_EQ(r.latest(), 50.0);
}

TEST(Ring, SetModifiesInPlace) {
  RingSeries r(3);
  r.push(1);
  r.push(2);
  r.set(0, 9);
  EXPECT_EQ(r.toVector(), (std::vector<double>{9, 2}));
}

TEST(Ring, ScaleAndAdd) {
  RingSeries a(3), b(3);
  for (double v : {1.0, 2.0, 3.0}) a.push(v);
  for (double v : {10.0, 20.0, 30.0}) b.push(v);
  a.scale(2.0);
  EXPECT_EQ(a.toVector(), (std::vector<double>{2, 4, 6}));
  a.addFrom(b);
  EXPECT_EQ(a.toVector(), (std::vector<double>{12, 24, 36}));
}

TEST(Ring, AddRespectsRotation) {
  RingSeries a(3), b(3);
  for (double v : {1.0, 2.0, 3.0, 4.0}) a.push(v);  // a = {2,3,4}, rotated
  for (double v : {1.0, 1.0, 1.0}) b.push(v);
  a.addFrom(b);
  EXPECT_EQ(a.toVector(), (std::vector<double>{3, 4, 5}));
}

TEST(Ring, Sums) {
  RingSeries r(5);
  for (double v : {1.0, 2.0, 3.0, 4.0}) r.push(v);
  EXPECT_DOUBLE_EQ(r.sum(), 10.0);
  EXPECT_DOUBLE_EQ(r.sumLatest(2), 7.0);
}

TEST(Ring, AssignTruncatesToCapacity) {
  RingSeries r(3);
  r.assign({1, 2, 3, 4, 5});
  EXPECT_EQ(r.toVector(), (std::vector<double>{3, 4, 5}));
  r.assign({7});
  EXPECT_EQ(r.toVector(), (std::vector<double>{7}));
}

TEST(Ring, ClearKeepsCapacity) {
  RingSeries r(2);
  r.push(1);
  r.clear();
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.capacity(), 2u);
  r.push(5);
  EXPECT_DOUBLE_EQ(r.latest(), 5.0);
}

}  // namespace
}  // namespace tiresias
