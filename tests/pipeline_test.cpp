// Tests for the end-to-end TiresiasPipeline (Fig 3 back end).
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "report/store.h"
#include "timeseries/ewma.h"
#include "workload/ccd.h"

namespace tiresias {
namespace {

using workload::AnomalyInjector;
using workload::ccdNetworkWorkload;
using workload::GeneratorSource;
using workload::GroundTruthLedger;
using workload::Scale;

TEST(Pipeline, RunsWithExplicitForecaster) {
  const auto spec = ccdNetworkWorkload(Scale::kTest);
  GeneratorSource src(spec, 0, 40, 42);
  PipelineConfig cfg;
  cfg.delta = spec.unit;
  cfg.detector.theta = 8.0;
  cfg.detector.windowLength = 16;
  cfg.detector.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
  TiresiasPipeline pipeline(borrowHierarchy(spec.hierarchy), cfg);
  std::size_t results = 0;
  const auto summary = pipeline.run(src, [&](const InstanceResult&) {
    ++results;
  });
  EXPECT_EQ(summary.unitsProcessed, 40u);
  EXPECT_EQ(summary.instancesDetected, results);
  EXPECT_EQ(results, 40u - 16u + 1u);
  EXPECT_GT(summary.recordsProcessed, 0u);
  EXPECT_TRUE(summary.seasons.empty());  // factory was supplied
}

TEST(Pipeline, DerivesSeasonalityFromFirstWindow) {
  const auto spec = ccdNetworkWorkload(Scale::kTest);
  GeneratorSource src(spec, 0, 96 * 4 + 10, 7);  // 4 days + margin
  PipelineConfig cfg;
  cfg.delta = spec.unit;
  cfg.detector.theta = 10.0;
  cfg.detector.windowLength = 96 * 4;  // window spans 4 diurnal cycles
  cfg.candidatePeriods = {96};
  TiresiasPipeline pipeline(borrowHierarchy(spec.hierarchy), cfg);
  const auto summary = pipeline.run(src, nullptr);
  ASSERT_EQ(summary.seasons.size(), 1u);
  EXPECT_EQ(summary.seasons[0].period, 96u);
  EXPECT_GT(summary.instancesDetected, 0u);
}

TEST(Pipeline, DetectsInjectedSpikeAndReportsToStore) {
  const auto spec = ccdNetworkWorkload(Scale::kTest);
  const auto& h = spec.hierarchy;
  const NodeId io = h.find("VHO0/IO1");
  ASSERT_NE(io, kInvalidNode);
  GroundTruthLedger ledger;
  ledger.add({io, 80, 4, 90.0});
  auto injector = std::make_shared<AnomalyInjector>(h, ledger);
  GeneratorSource src(spec, 0, 120, 11, injector);

  PipelineConfig cfg;
  cfg.delta = spec.unit;
  cfg.detector.theta = 8.0;
  cfg.detector.windowLength = 48;
  cfg.detector.forecasterFactory = std::make_shared<EwmaFactory>(0.3);
  TiresiasPipeline pipeline(borrowHierarchy(h), cfg);
  report::AnomalyStore store(h);
  pipeline.run(src, [&](const InstanceResult& r) { store.add(r); });

  // At least one anomaly inside the spike window, located on the injected
  // node's root path or below it.
  report::Query q;
  q.fromUnit = 80;
  q.toUnit = 83;
  const auto hits = store.query(q);
  ASSERT_FALSE(hits.empty());
  bool located = false;
  for (const auto& hit : hits) {
    if (h.isAncestorOrEqual(io, hit.anomaly.node) ||
        h.isAncestorOrEqual(hit.anomaly.node, io)) {
      located = true;
    }
  }
  EXPECT_TRUE(located);
}

TEST(Pipeline, StaBackendAgreesOnSpike) {
  const auto spec = ccdNetworkWorkload(Scale::kTest);
  const auto& h = spec.hierarchy;
  const NodeId io = h.find("VHO1/IO0");
  GroundTruthLedger ledger;
  ledger.add({io, 60, 3, 90.0});
  auto injector = std::make_shared<AnomalyInjector>(h, ledger);

  auto runWith = [&](bool useAda) {
    GeneratorSource src(spec, 0, 80, 21, injector);
    PipelineConfig cfg;
    cfg.delta = spec.unit;
    cfg.useAda = useAda;
    cfg.detector.theta = 8.0;
    cfg.detector.windowLength = 32;
    cfg.detector.forecasterFactory = std::make_shared<EwmaFactory>(0.3);
    TiresiasPipeline pipeline(borrowHierarchy(h), cfg);
    std::size_t inWindow = 0;
    pipeline.run(src, [&](const InstanceResult& r) {
      for (const auto& a : r.anomalies) {
        if (a.unit >= 60 && a.unit < 63 &&
            (h.isAncestorOrEqual(io, a.node) ||
             h.isAncestorOrEqual(a.node, io))) {
          ++inWindow;
        }
      }
    });
    return inWindow;
  };
  EXPECT_GT(runWith(true), 0u);
  EXPECT_GT(runWith(false), 0u);
}

TEST(Pipeline, WarmupSpansMultipleRuns) {
  // Live operation (Step 6): a short first run leaves the pipeline
  // warming; a follow-up run with the remaining units completes the
  // warm-up and starts detecting, with no unit double-counted.
  const auto spec = ccdNetworkWorkload(Scale::kTest);
  PipelineConfig cfg;
  cfg.delta = spec.unit;
  cfg.detector.theta = 8.0;
  cfg.detector.windowLength = 16;
  cfg.detector.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
  TiresiasPipeline pipeline(borrowHierarchy(spec.hierarchy), cfg);

  GeneratorSource first(spec, 0, 5, 3);
  auto summary = pipeline.run(first, nullptr);
  EXPECT_EQ(summary.unitsProcessed, 5u);
  EXPECT_EQ(summary.instancesDetected, 0u);
  EXPECT_EQ(pipeline.detector(), nullptr);  // still warming

  GeneratorSource second(spec, 5, 30, 3);
  summary = pipeline.run(second, nullptr);
  EXPECT_EQ(summary.unitsProcessed, 25u);
  EXPECT_NE(pipeline.detector(), nullptr);
  // 30 total units with a 16-unit window -> 15 detection instances.
  EXPECT_EQ(summary.instancesDetected, 15u);
}

TEST(Pipeline, EmptySource) {
  const auto spec = ccdNetworkWorkload(Scale::kTest);
  VectorSource src({});
  PipelineConfig cfg;
  cfg.delta = spec.unit;
  cfg.detector.windowLength = 8;
  TiresiasPipeline pipeline(borrowHierarchy(spec.hierarchy), cfg);
  const auto summary = pipeline.run(src, nullptr);
  EXPECT_EQ(summary.unitsProcessed, 0u);
  EXPECT_EQ(summary.instancesDetected, 0u);
}

}  // namespace
}  // namespace tiresias
