// Property tests for the Definition-3 fixed-set reconstruction — the
// primitive both STA and ADA's bootstrap stand on. Cross-validated against
// an independent dense brute force on random trees, random member sets and
// random multi-unit count streams, and asserted bit-identical to the
// retained map-based reference implementation (shhh_reference.h) so the
// flat-workspace rewrite can never drift from the historical evaluator.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/simd.h"
#include "core/shhh.h"
#include "core/shhh_reference.h"
#include "hierarchy/builder.h"

namespace tiresias {
namespace {

/// Dense per-unit evaluation: every count climbs to its nearest fixed-set
/// ancestor (or the root); W'[n] is what accumulated at n.
std::vector<double> bruteForceUnit(const Hierarchy& h, const CountMap& counts,
                                   const std::vector<NodeId>& fixedSet) {
  std::vector<bool> member(h.size(), false);
  for (NodeId n : fixedSet) member[n] = true;
  std::vector<double> w(h.size(), 0.0);
  for (const auto& [node, c] : counts) {
    NodeId cur = node;
    while (cur != h.root() && !member[cur]) cur = h.parent(cur);
    w[cur] += c;
  }
  return w;
}

class FixedSetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FixedSetProperty, MatchesBruteForceAndConservesMass) {
  Rng rng(GetParam());
  // Random tree.
  HierarchyBuilder b("root");
  std::vector<NodeId> nodes{0};
  for (int i = 0; i < 60 + static_cast<int>(rng.below(60)); ++i) {
    nodes.push_back(
        b.addChild(nodes[rng.below(nodes.size())], "n" + std::to_string(i)));
  }
  const auto h = b.build();

  // Random fixed member set (any nodes, root possibly included).
  std::vector<NodeId> fixedSet;
  for (NodeId n = 0; n < h.size(); ++n) {
    if (rng.below(5) == 0) fixedSet.push_back(n);
  }

  // Random count stream over several units.
  const std::size_t units = 3 + rng.below(6);
  std::vector<CountMap> stream(units);
  std::vector<double> unitTotals(units, 0.0);
  for (std::size_t u = 0; u < units; ++u) {
    const std::size_t events = rng.below(30);
    for (std::size_t e = 0; e < events; ++e) {
      const auto node = static_cast<NodeId>(rng.below(h.size()));
      const double c = 1.0 + static_cast<double>(rng.below(4));
      stream[u][node] += c;
      unitTotals[u] += c;
    }
  }

  const auto series = modifiedSeriesFixedSet(h, stream, fixedSet);

  // 0a. The SIMD and forced-scalar dispatch paths agree exactly (the
  //     values are positive finite sums, so == here means same bits).
  {
    const bool prev = simd::forceScalar(true);
    const auto scalarSeries = modifiedSeriesFixedSet(h, stream, fixedSet);
    simd::forceScalar(prev);
    EXPECT_EQ(scalarSeries, series);
  }

  // 0. Bit-identical to the retained map-based reference implementation
  //    (not merely close: the flat path must compute the same FP sums).
  {
    const auto ref = reference::modifiedSeriesFixedSet(h, stream, fixedSet);
    ASSERT_EQ(series.size(), ref.size());
    for (const auto& [n, s] : series) {
      const auto it = ref.find(n);
      ASSERT_TRUE(it != ref.end()) << "node " << n;
      EXPECT_EQ(s, it->second) << "node " << n << " seed " << GetParam();
    }
  }

  // 1. Every requested node (plus the root) is present with full length.
  ASSERT_TRUE(series.count(h.root()));
  for (NodeId n : fixedSet) {
    ASSERT_TRUE(series.count(n)) << "node " << n;
    ASSERT_EQ(series.at(n).size(), units);
  }

  for (std::size_t u = 0; u < units; ++u) {
    const auto dense = bruteForceUnit(h, stream[u], fixedSet);
    // 2. Exact agreement with the independent dense evaluation.
    for (const auto& [n, s] : series) {
      EXPECT_NEAR(s[u], dense[n], 1e-9)
          << "node " << n << " unit " << u << " seed " << GetParam();
    }
    // 3. Conservation: member values (+ root residual) sum to the unit
    //    total.
    double sum = series.at(h.root())[u];
    for (NodeId n : fixedSet) {
      if (n != h.root()) sum += series.at(n)[u];
    }
    // If the root is itself in the fixed set it was already counted once.
    EXPECT_NEAR(sum, unitTotals[u], 1e-9) << "unit " << u;
  }
}

TEST_P(FixedSetProperty, RawSeriesMatchesSubtreeSums) {
  Rng rng(GetParam() ^ 0xabcdefULL);
  const auto h = HierarchyBuilder::balanced({3, 2, 2});
  const std::size_t units = 4;
  std::vector<CountMap> stream(units);
  for (std::size_t u = 0; u < units; ++u) {
    for (int e = 0; e < 25; ++e) {
      stream[u][h.leaves()[rng.below(h.leafCount())]] += 1.0;
    }
  }
  std::vector<NodeId> all(h.size());
  for (NodeId n = 0; n < h.size(); ++n) all[n] = n;
  const auto raw = rawSeries(h, stream, all);
  for (std::size_t u = 0; u < units; ++u) {
    for (NodeId n = 0; n < h.size(); ++n) {
      double expected = 0.0;
      for (const auto& [leaf, c] : stream[u]) {
        if (h.isAncestorOrEqual(n, leaf)) expected += c;
      }
      EXPECT_NEAR(raw.at(n)[u], expected, 1e-9) << "node " << n;
    }
  }
  const auto ref = reference::rawSeries(h, stream, all);
  for (NodeId n = 0; n < h.size(); ++n) {
    EXPECT_EQ(raw.at(n), ref.at(n)) << "node " << n;
  }
}

// The flat workspace kernel must reproduce the historical map-based
// computeShhh bit for bit: same touched set, same A_n/W_n doubles, same
// SHHH membership — on random trees and random (non-leaf-only) counts.
TEST_P(FixedSetProperty, ComputeShhhMatchesReferenceBitForBit) {
  Rng rng(GetParam() ^ 0x5eedULL);
  HierarchyBuilder b("root");
  std::vector<NodeId> nodes{0};
  for (int i = 0; i < 50 + static_cast<int>(rng.below(80)); ++i) {
    nodes.push_back(
        b.addChild(nodes[rng.below(nodes.size())], "n" + std::to_string(i)));
  }
  const auto h = b.build();
  const double theta = 1.0 + static_cast<double>(rng.below(6));

  // Pre-generate the count stream so the SIMD and forced-scalar passes
  // see identical inputs; both must match the reference bit for bit.
  std::vector<CountMap> rounds(24);
  for (auto& counts : rounds) {
    const std::size_t events = rng.below(40);
    for (std::size_t e = 0; e < events; ++e) {
      counts[static_cast<NodeId>(rng.below(h.size()))] +=
          1.0 + static_cast<double>(rng.below(4));
    }
  }

  for (const bool scalar : {false, true}) {
    const bool prev = simd::forceScalar(scalar);
    DetectWorkspace ws;  // reused across units, like the detectors do
    ShhhResult flat;
    for (std::size_t round = 0; round < rounds.size(); ++round) {
      const CountMap& counts = rounds[round];
      const ShhhResult ref = reference::computeShhh(h, counts, theta);
      computeShhh(h, counts, theta, ws, flat);
      EXPECT_EQ(flat.shhh, ref.shhh)
          << "round " << round << " scalar=" << scalar;
      ASSERT_EQ(flat.touched.size(), ref.touched.size()) << "round " << round;
      for (std::size_t i = 0; i < ref.touched.size(); ++i) {
        EXPECT_EQ(flat.touched[i].node, ref.touched[i].node);
        EXPECT_EQ(flat.touched[i].raw, ref.touched[i].raw);
        EXPECT_EQ(flat.touched[i].modified, ref.touched[i].modified);
        EXPECT_EQ(flat.touched[i].heavy, ref.touched[i].heavy);
      }
    }
    simd::forceScalar(prev);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixedSetProperty,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256));

}  // namespace
}  // namespace tiresias
