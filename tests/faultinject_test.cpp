// Deterministic fault injection: plan parsing must reject junk loudly,
// armed decisions must be a pure function of (seed, call sequence), the
// disarmed path must be inert, and the net-layer hooks must degrade the
// way the serving surface expects (closed connections, surviving
// listeners) — never crash.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/faultinject.h"
#include "net/tcp.h"

namespace tiresias {
namespace {

using faultinject::Decision;
using faultinject::Point;

/// Every test leaves the process disarmed (the registry is global).
struct DisarmOnExit {
  ~DisarmOnExit() { faultinject::disarm(); }
};

std::vector<Decision::Kind> drawKinds(Point point, std::size_t n) {
  std::vector<Decision::Kind> kinds;
  kinds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    kinds.push_back(faultinject::decide(point).kind);
  }
  return kinds;
}

TEST(FaultInject, RejectsMalformedPlans) {
  DisarmOnExit guard;
  std::string error;
  EXPECT_FALSE(faultinject::arm("disconnect", &error));
  EXPECT_NE(error.find("key=value"), std::string::npos);
  EXPECT_FALSE(faultinject::arm("frobnicate=0.5", &error));
  EXPECT_NE(error.find("unknown key"), std::string::npos);
  EXPECT_FALSE(faultinject::arm("disconnect=1.5", &error));  // p > 1
  EXPECT_FALSE(faultinject::arm("disconnect=-0.1", &error));
  EXPECT_FALSE(faultinject::arm("disconnect=0.5x", &error));  // trailing junk
  EXPECT_FALSE(faultinject::arm("seed=abc", &error));
  EXPECT_FALSE(faultinject::arm("stall=0.5:999999", &error));  // ms cap
  EXPECT_FALSE(faultinject::armed());  // failed arms never arm
}

TEST(FaultInject, AcceptsTheFullGrammar) {
  DisarmOnExit guard;
  EXPECT_TRUE(faultinject::arm(
      "seed=7,short-read=0.1,short-write=0.1,eintr=0.2,disconnect=0.01,"
      "accept-fail=0.05,stall=0.02:25"));
  EXPECT_TRUE(faultinject::armed());
  faultinject::disarm();
  EXPECT_TRUE(faultinject::arm(""));  // empty plan: armed, all-zero rates
  EXPECT_EQ(faultinject::decide(Point::kRecv).kind, Decision::Kind::kNone);
}

TEST(FaultInject, DisarmedDecidesNothing) {
  faultinject::disarm();
  const std::uint64_t before = faultinject::injectedCount();
  for (int i = 0; i < 100; ++i) {
    const Decision d = faultinject::decide(Point::kRecv);
    EXPECT_EQ(d.kind, Decision::Kind::kNone);
    EXPECT_EQ(d.stallMs, 0);
  }
  EXPECT_EQ(faultinject::injectedCount(), before);
}

TEST(FaultInject, SameSeedSameCallSequenceSameDecisions) {
  DisarmOnExit guard;
  const std::string plan =
      "seed=11,disconnect=0.3,short-read=0.2,eintr=0.1";
  ASSERT_TRUE(faultinject::arm(plan));
  const auto first = drawKinds(Point::kRecv, 300);
  faultinject::disarm();
  ASSERT_TRUE(faultinject::arm(plan));  // re-arm resets the stream
  EXPECT_EQ(drawKinds(Point::kRecv, 300), first);
  // A different seed gives a different stream (identical sequences over
  // 300 draws at these rates would be astronomically unlikely).
  faultinject::disarm();
  ASSERT_TRUE(faultinject::arm("seed=12,disconnect=0.3,short-read=0.2,"
                               "eintr=0.1"));
  EXPECT_NE(drawKinds(Point::kRecv, 300), first);
}

TEST(FaultInject, InjectedCountTracksFiredFaults) {
  DisarmOnExit guard;
  ASSERT_TRUE(faultinject::arm("seed=3,disconnect=1.0"));
  const std::uint64_t before = faultinject::injectedCount();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(faultinject::decide(Point::kSend).kind,
              Decision::Kind::kDisconnect);
  }
  EXPECT_EQ(faultinject::injectedCount(), before + 10);
}

// ---------------------------------------------------------------------
// Hook behavior through the TCP layer.

TEST(FaultInject, DisconnectFaultDropsTheConnection) {
  DisarmOnExit guard;
  net::TcpListener listener;
  ASSERT_TRUE(listener.listen(0, /*loopbackOnly=*/true));
  std::thread peer([port = listener.port()] {
    net::TcpConn c = net::connectLoopback(port, 5'000);
    ASSERT_TRUE(c.valid());
    const char byte = 'x';
    (void)c.writeAll(&byte, 1, 5'000);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  net::TcpConn conn = listener.accept(5'000);
  ASSERT_TRUE(conn.valid());
  ASSERT_TRUE(faultinject::arm("seed=1,disconnect=1.0"));
  char buf = 0;
  std::size_t got = 0;
  EXPECT_EQ(conn.readSome(&buf, 1, got, 1'000), net::IoStatus::kError);
  EXPECT_FALSE(conn.valid());  // the injected disconnect closed the fd
  peer.join();
}

TEST(FaultInject, AcceptFaultBacksOffAndTheListenerSurvives) {
  DisarmOnExit guard;
  net::TcpListener listener;
  ASSERT_TRUE(listener.listen(0, /*loopbackOnly=*/true));
  net::TcpConn pending = net::connectLoopback(listener.port(), 5'000);
  ASSERT_TRUE(pending.valid());
  // Every accept attempt fails with an injected EMFILE: the deadline
  // elapses with backoff, the listener itself stays valid.
  ASSERT_TRUE(faultinject::arm("seed=1,accept-fail=1.0"));
  EXPECT_FALSE(listener.accept(200).valid());
  EXPECT_TRUE(listener.valid());
  // Disarmed, the queued connection is accepted normally.
  faultinject::disarm();
  EXPECT_TRUE(listener.accept(5'000).valid());
}

}  // namespace
}  // namespace tiresias
