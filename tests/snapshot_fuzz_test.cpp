// Robustness fuzzing for the snapshot decoder: truncated, bit-flipped,
// wrong-version, zero-length and random-garbage inputs must fail with a
// clean persist::SnapshotError — never crash, over-read (ASan in CI
// catches that) or over-allocate. Also semantic validation below the
// framing layer: a structurally valid section whose payload violates a
// component invariant must throw, not abort.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "engine/engine.h"
#include "persist/snapshot.h"
#include "report/concurrent_store.h"
#include "timeseries/ewma.h"
#include "timeseries/holt_winters.h"
#include "timeseries/ring.h"
#include "workload/ccd.h"

namespace tiresias {
namespace {

using engine::DetectionEngine;
using engine::EngineConfig;
using persist::Deserializer;
using persist::Serializer;
using persist::SnapshotError;
using persist::SnapshotReader;
using workload::GeneratorSource;
using workload::Scale;
using workload::WorkloadSpec;

/// A small but real engine checkpoint (stream sections with detector
/// state inside) to mutate.
class SnapshotFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::string(::testing::TempDir()) + "fuzz_" +
            std::to_string(::getpid()) + ".tsnap";
    spec_ = std::make_unique<WorkloadSpec>(
        workload::ccdNetworkWorkload(Scale::kTest));
    PipelineConfig cfg;
    cfg.delta = spec_->unit;
    cfg.detector.theta = 8.0;
    cfg.detector.windowLength = 8;
    cfg.detector.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
    store_.registerStream("s0", spec_->hierarchy);
    engine_ = std::make_unique<DetectionEngine>(EngineConfig{1, 1, 4, 8, 64},
                                                store_.sink());
    engine_->addStream("s0", borrowHierarchy(spec_->hierarchy), cfg,
                       std::make_unique<GeneratorSource>(*spec_, 0, 24, 1));
    engine_->start();
    engine_->drain();
    engine_->checkpoint(path_,
                        [this](Serializer& s) { store_.saveState(s); });
    std::ifstream in(path_, std::ios::binary);
    bytes_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    ASSERT_GT(bytes_.size(), 64u);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  /// Restore attempt against a fresh, compatibly configured engine. Must
  /// either succeed (a mutation can cancel out) or throw SnapshotError.
  void restoreMutated(const std::vector<std::uint8_t>& mutated) {
    writeBytes(mutated);
    PipelineConfig cfg;
    cfg.delta = spec_->unit;
    cfg.detector.theta = 8.0;
    cfg.detector.windowLength = 8;
    cfg.detector.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
    report::ConcurrentAnomalyStore store;
    store.registerStream("s0", spec_->hierarchy);
    DetectionEngine eng(EngineConfig{1, 1, 4, 8, 64}, store.sink());
    eng.addStream("s0", borrowHierarchy(spec_->hierarchy), cfg,
                  std::make_unique<GeneratorSource>(*spec_, 0, 24, 1));
    try {
      eng.restoreFrom(path_,
                      [&store](Deserializer& d) { store.loadState(d); });
    } catch (const SnapshotError&) {
      // The only acceptable failure mode.
    }
  }

  void writeBytes(const std::vector<std::uint8_t>& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  std::string path_;
  std::unique_ptr<WorkloadSpec> spec_;
  report::ConcurrentAnomalyStore store_;
  std::unique_ptr<DetectionEngine> engine_;
  std::vector<std::uint8_t> bytes_;
};

TEST_F(SnapshotFuzzTest, ZeroLengthAndTinyInputs) {
  EXPECT_THROW(SnapshotReader::parse({}), SnapshotError);
  for (std::size_t len = 1; len < 16 && len < bytes_.size(); ++len) {
    if (len == 8) continue;  // a bare header is a valid *empty* snapshot
    EXPECT_THROW(
        SnapshotReader::parse(std::span(bytes_.data(), len)), SnapshotError)
        << "prefix length " << len;
  }
  // The header alone parses (empty section list) but can never restore:
  // the engine requires its meta section.
  writeBytes({bytes_.begin(), bytes_.begin() + 8});
  DetectionEngine eng(EngineConfig{1, 1, 4, 8, 64}, nullptr);
  EXPECT_THROW(eng.restoreFrom(path_), SnapshotError);
}

TEST_F(SnapshotFuzzTest, MissingFileIsCleanError) {
  EXPECT_THROW(SnapshotReader::readFile(path_ + ".does-not-exist"),
               SnapshotError);
}

TEST_F(SnapshotFuzzTest, WrongMagicAndVersion) {
  auto bad = bytes_;
  bad[0] ^= 0xFF;
  EXPECT_THROW(SnapshotReader::parse(bad), SnapshotError);
  bad = bytes_;
  bad[4] = 0x7F;  // format version far in the future
  EXPECT_THROW(SnapshotReader::parse(bad), SnapshotError);
}

TEST_F(SnapshotFuzzTest, EveryTruncationFailsCleanly) {
  // Sections are self-delimiting, so a truncation that lands exactly on a
  // section boundary is a structurally valid shorter snapshot (dropped
  // trailing sections surface at restore as missing-stream/fresh-start,
  // never as misread bytes). Every other prefix must throw from the
  // framing layer: a partial header, a partial section header, or a
  // payload shorter than its length field.
  std::vector<bool> isBoundary(bytes_.size() + 1, false);
  isBoundary[8] = true;  // bare file header == valid empty snapshot
  {
    const SnapshotReader reader = SnapshotReader::parse(bytes_);
    std::size_t offset = 8;
    for (const auto& section : reader.sections()) {
      offset += 16 + section.payload.size();
      isBoundary[offset] = true;
    }
  }
  for (std::size_t len = 0; len < bytes_.size(); ++len) {
    if (isBoundary[len]) {
      EXPECT_NO_THROW(SnapshotReader::parse(std::span(bytes_.data(), len)));
      restoreMutated({bytes_.begin(),
                      bytes_.begin() + static_cast<std::ptrdiff_t>(len)});
      continue;
    }
    EXPECT_THROW(SnapshotReader::parse(std::span(bytes_.data(), len)),
                 SnapshotError)
        << "truncated to " << len << " of " << bytes_.size();
  }
  // Trailing garbage shorter than a section header is also structural.
  auto padded = bytes_;
  padded.push_back(0xAA);
  EXPECT_THROW(SnapshotReader::parse(padded), SnapshotError);
}

TEST_F(SnapshotFuzzTest, EveryByteFlipFailsCleanlyOrRestores) {
  // Flip one byte at every offset. Payload flips are caught by the CRC;
  // header/frame flips by magic/version/bounds checks. Either way the
  // full restore path must stay exception-clean (run under ASan in CI to
  // prove no over-read).
  for (std::size_t pos = 0; pos < bytes_.size(); ++pos) {
    auto mutated = bytes_;
    mutated[pos] ^= 0x40;
    restoreMutated(mutated);
  }
}

TEST_F(SnapshotFuzzTest, RandomGarbageNeverCrashes) {
  std::mt19937_64 rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> garbage(rng() % 512);
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
    // (>= 32 so the valid-header variant always has leftover bytes that
    // must fail section parsing — exactly 8 would be a valid empty file.)
    if (trial % 3 == 0 && garbage.size() >= 32) {
      // Give a third of the trials a valid header so the section parser
      // itself gets fuzzed, not just the magic check.
      garbage[0] = 0x54; garbage[1] = 0x53; garbage[2] = 0x4E; garbage[3] = 0x50;
      garbage[4] = 1; garbage[5] = 0; garbage[6] = 0; garbage[7] = 0;
    }
    EXPECT_THROW(SnapshotReader::parse(garbage), SnapshotError);
  }
}

TEST_F(SnapshotFuzzTest, HugeCountsAreRejectedBeforeAllocation) {
  // A structurally valid payload whose counts are absurd must be rejected
  // by the count/boundedCount validation, not trusted into resize().
  Serializer s;
  s.u64(std::size_t{1} << 62);  // ring capacity
  s.u64(0);
  RingSeries ring;
  Deserializer in(s.data());
  EXPECT_THROW(ring.loadState(in), SnapshotError);

  Serializer sizeLie;
  sizeLie.u64(8);   // capacity
  sizeLie.u64(16);  // size > capacity
  for (int i = 0; i < 16; ++i) sizeLie.f64(1.0);
  Deserializer in2(sizeLie.data());
  EXPECT_THROW(ring.loadState(in2), SnapshotError);
}

TEST_F(SnapshotFuzzTest, SemanticValidationThrowsNotAborts) {
  // Out-of-range EWMA alpha.
  {
    Serializer s;
    s.u8(kEwmaStateTag);
    s.f64(7.5);  // alpha > 1
    s.f64(0.0);
    s.boolean(false);
    EwmaForecaster model(0.5);
    Deserializer in(s.data());
    EXPECT_THROW(model.loadState(in), SnapshotError);
  }
  // Holt-Winters cursor outside its period.
  {
    Serializer s;
    s.u8(kHoltWintersStateTag);
    s.f64(0.5);
    s.f64(0.1);
    s.f64(0.3);
    s.u64(1);   // one season
    s.u64(4);   // period
    s.f64(1.0); // weight
    s.u64(9);   // cursor >= period
    for (int i = 0; i < 4; ++i) s.f64(0.0);
    s.f64(0.0);
    s.f64(0.0);
    s.boolean(true);
    s.u64(0);
    HoltWintersForecaster model({0.5, 0.1, 0.3}, {});
    Deserializer in(s.data());
    EXPECT_THROW(model.loadState(in), SnapshotError);
  }
}

}  // namespace
}  // namespace tiresias
