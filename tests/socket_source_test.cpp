// Socket-fed ingest: a SocketSource draining a loopback connection must
// be indistinguishable from the equivalent in-memory source (identical
// record sequences, identical skip accounting, per-record and batched),
// must survive slow writers, mid-frame disconnects and arbitrary byte
// corruption without ever crashing or throwing (the engine's ingest loop
// has no exception handling), and must account structural failures in
// protocolErrors() and record-level junk in skippedRecords().
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "hierarchy/builder.h"
#include "net/tcp.h"
#include "stream/socket_source.h"
#include "stream/source.h"

namespace tiresias {
namespace {

constexpr int kTestTimeoutMs = 10'000;

std::vector<Record> drainPerRecord(RecordSource& src) {
  std::vector<Record> out;
  while (auto r = src.next()) out.push_back(*r);
  return out;
}

std::vector<Record> drainBatched(RecordSource& src, std::size_t max) {
  std::vector<Record> out, chunk;
  // An empty pull with idle() true is a bounded idle wait expiring (the
  // writer thread may not have connected yet), not the end of stream.
  while (src.nextBatch(chunk, max) > 0 || src.idle()) {
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  return out;
}

std::shared_ptr<net::TcpListener> loopbackListener() {
  auto listener = std::make_shared<net::TcpListener>();
  EXPECT_TRUE(listener->listen(0, /*loopbackOnly=*/true))
      << listener->lastError();
  return listener;
}

/// Connect to `port` and write `bytes`, then close (a clean FIN). The
/// returned thread must be joined before the test ends.
std::thread writeAsync(std::uint16_t port, std::vector<std::uint8_t> bytes) {
  return std::thread([port, bytes = std::move(bytes)] {
    net::TcpConn conn = net::connectLoopback(port, kTestTimeoutMs);
    EXPECT_TRUE(conn.valid());
    if (conn.valid() && !bytes.empty()) {
      EXPECT_TRUE(conn.writeAll(bytes.data(), bytes.size()));
    }
  });
}

/// Handshake paths for `h` with fileId == NodeId, the same table the
/// `send` CLI builds.
std::vector<std::string> allPaths(const Hierarchy& h) {
  std::vector<std::string> paths;
  paths.reserve(h.size());
  for (std::size_t n = 0; n < h.size(); ++n) {
    paths.push_back(h.path(static_cast<NodeId>(n)));
  }
  return paths;
}

/// A well-formed record run over h's leaves with non-decreasing times.
std::vector<Record> sampleRecords(const Hierarchy& h, std::size_t count) {
  std::vector<Record> records;
  const auto& leaves = h.leaves();
  for (std::size_t i = 0; i < count; ++i) {
    records.push_back(
        Record{leaves[i % leaves.size()], static_cast<Timestamp>(100 + i)});
  }
  return records;
}

/// Full binary wire image: handshake + the records split across frames
/// of `frameLen` + the end-of-stream marker.
std::vector<std::uint8_t> binaryWire(const Hierarchy& h,
                                     const std::vector<Record>& records,
                                     std::size_t frameLen) {
  std::vector<std::uint8_t> wire = encodeSocketHandshake(allPaths(h));
  for (std::size_t at = 0; at < records.size(); at += frameLen) {
    appendSocketFrame(wire, records.data() + at,
                      std::min(frameLen, records.size() - at));
  }
  appendSocketEndOfStream(wire);
  return wire;
}

TEST(SocketSource, BinaryRoundTripPerRecordAndBatched) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  const auto want = sampleRecords(h, 157);
  const auto wire = binaryWire(h, want, 31);

  {
    auto listener = loopbackListener();
    std::thread writer = writeAsync(listener->port(), wire);
    SocketSource src(listener, h);
    EXPECT_EQ(drainPerRecord(src), want);
    EXPECT_EQ(src.skippedRecords(), 0u);
    EXPECT_EQ(src.protocolErrors(), 0u);
    EXPECT_EQ(src.unresolvedPaths(), 0u);
    writer.join();
  }
  for (std::size_t max : {1u, 3u, 64u, 4096u}) {
    auto listener = loopbackListener();
    std::thread writer = writeAsync(listener->port(), wire);
    SocketSource src(listener, h);
    EXPECT_EQ(drainBatched(src, max), want) << "max=" << max;
    EXPECT_EQ(src.skippedRecords(), 0u) << "max=" << max;
    EXPECT_EQ(src.protocolErrors(), 0u) << "max=" << max;
    writer.join();
  }
  {  // Mixing next() and nextBatch() must not lose records.
    auto listener = loopbackListener();
    std::thread writer = writeAsync(listener->port(), wire);
    SocketSource src(listener, h);
    std::vector<Record> got, chunk;
    const auto first = src.next();
    ASSERT_TRUE(first);
    got.push_back(*first);
    while (src.nextBatch(chunk, 7) > 0 || src.idle()) {
      got.insert(got.end(), chunk.begin(), chunk.end());
    }
    EXPECT_EQ(got, want);
    writer.join();
  }
}

TEST(SocketSource, CsvMatchesCsvSourceSemantics) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  // Every skip reason CsvSource handles, plus quoted and CRLF rows and a
  // final line without a trailing newline.
  std::string csv;
  for (int rep = 0; rep < 20; ++rep) {
    csv += h.path(h.leaves()[rep % 3]) + "," + std::to_string(100 + rep) +
           "\n";
  }
  csv += "no/such/path,200\n";
  csv += "not a csv row\n";
  csv += h.path(h.leaves()[0]) + ",notatime\n";
  csv += "\n";
  csv += "\"" + h.path(h.leaves()[1]) + "\",300\n";
  csv += h.path(h.leaves()[2]) + ",400\r\n";
  csv += h.path(h.leaves()[2]) + ",500";  // no trailing newline

  const std::string path = ::testing::TempDir() + "/socket_ref.csv";
  {
    std::ofstream out(path, std::ios::trunc);
    out << csv;
  }
  CsvSource reference(path, h);
  const auto want = drainPerRecord(reference);
  ASSERT_GT(want.size(), 0u);

  auto listener = loopbackListener();
  std::thread writer = writeAsync(
      listener->port(), std::vector<std::uint8_t>(csv.begin(), csv.end()));
  SocketSource src(listener, h);  // kAuto: no magic -> CSV
  EXPECT_EQ(drainPerRecord(src), want);
  EXPECT_EQ(src.skippedRecords(), reference.skippedRecords());
  EXPECT_EQ(src.protocolErrors(), 0u);
  writer.join();
  std::remove(path.c_str());
}

TEST(SocketSource, SlowWriterDeliversEverything) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  const auto want = sampleRecords(h, 40);
  const auto wire = binaryWire(h, want, 16);

  // Dribble the wire bytes in small chunks with pauses, splitting the
  // handshake, frame prefixes and record payloads arbitrarily.
  auto listener = loopbackListener();
  std::thread writer([port = listener->port(), &wire] {
    net::TcpConn conn = net::connectLoopback(port, kTestTimeoutMs);
    ASSERT_TRUE(conn.valid());
    for (std::size_t at = 0; at < wire.size(); at += 7) {
      EXPECT_TRUE(
          conn.writeAll(wire.data() + at, std::min<std::size_t>(7, wire.size() - at)));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  SocketSource src(listener, h);
  EXPECT_EQ(drainBatched(src, 64), want);
  EXPECT_EQ(src.protocolErrors(), 0u);
  writer.join();
}

TEST(SocketSource, EmptyConnectionIsEmptyStream) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  auto listener = loopbackListener();
  std::thread writer = writeAsync(listener->port(), {});
  SocketSource src(listener, h);
  EXPECT_EQ(src.next(), std::nullopt);
  EXPECT_EQ(src.protocolErrors(), 0u);  // closing without a byte is clean
  writer.join();
}

TEST(SocketSource, AcceptTimeoutIsProtocolError) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  auto listener = loopbackListener();
  SocketSourceOptions opt;
  opt.readTimeoutMs = 50;
  SocketSource src(listener, h, opt);  // nobody connects
  EXPECT_EQ(src.next(), std::nullopt);
  EXPECT_EQ(src.protocolErrors(), 1u);
}

TEST(SocketSource, MidFrameDisconnectEndsStreamCleanly) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  const auto want = sampleRecords(h, 10);
  std::vector<std::uint8_t> wire = encodeSocketHandshake(allPaths(h));
  appendSocketFrame(wire, want.data(), want.size());
  wire.resize(wire.size() - 5);  // peer dies mid-record

  auto listener = loopbackListener();
  std::thread writer = writeAsync(listener->port(), wire);
  SocketSource src(listener, h);
  EXPECT_EQ(drainBatched(src, 64).size(), 0u);  // frame never completed
  EXPECT_EQ(src.protocolErrors(), 1u);
  writer.join();
}

TEST(SocketSource, EofAtFrameBoundaryIsCleanWithoutMarker) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  const auto want = sampleRecords(h, 24);
  std::vector<std::uint8_t> wire = encodeSocketHandshake(allPaths(h));
  appendSocketFrame(wire, want.data(), want.size());
  // No end-of-stream marker: the FIN lands exactly on a frame boundary.
  auto listener = loopbackListener();
  std::thread writer = writeAsync(listener->port(), wire);
  SocketSource src(listener, h);
  EXPECT_EQ(drainBatched(src, 64), want);
  EXPECT_EQ(src.protocolErrors(), 0u);
  writer.join();
}

TEST(SocketSource, BackwardsTimestampsAreSkippedNotFatal) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  const auto& leaves = h.leaves();
  const std::vector<Record> sent = {
      {leaves[0], 100}, {leaves[1], 50},  // runs backwards: skipped
      {leaves[1], 200}, {leaves[2], 150},  // backwards again: skipped
      {leaves[2], 200},
  };
  std::vector<std::uint8_t> wire = encodeSocketHandshake(allPaths(h));
  appendSocketFrame(wire, sent.data(), sent.size());
  appendSocketEndOfStream(wire);

  auto listener = loopbackListener();
  std::thread writer = writeAsync(listener->port(), wire);
  SocketSource src(listener, h);
  const std::vector<Record> want = {
      {leaves[0], 100}, {leaves[1], 200}, {leaves[2], 200}};
  EXPECT_EQ(drainBatched(src, 64), want);
  EXPECT_EQ(src.skippedRecords(), 2u);
  EXPECT_EQ(src.protocolErrors(), 0u);
  writer.join();
}

TEST(SocketSource, UnresolvablePathsSkipTheirRecords) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  std::vector<std::string> paths = allPaths(h);
  paths.push_back("no/such/path");
  const auto ghost = static_cast<NodeId>(paths.size() - 1);
  const std::vector<Record> sent = {
      {h.leaves()[0], 100}, {ghost, 150}, {h.leaves()[1], 200}};
  std::vector<std::uint8_t> wire = encodeSocketHandshake(paths);
  appendSocketFrame(wire, sent.data(), sent.size());
  appendSocketEndOfStream(wire);

  auto listener = loopbackListener();
  std::thread writer = writeAsync(listener->port(), wire);
  SocketSource src(listener, h);
  const std::vector<Record> want = {{h.leaves()[0], 100},
                                    {h.leaves()[1], 200}};
  EXPECT_EQ(drainBatched(src, 64), want);
  EXPECT_EQ(src.unresolvedPaths(), 1u);
  EXPECT_EQ(src.skippedRecords(), 1u);
  EXPECT_EQ(src.protocolErrors(), 0u);
  writer.join();
}

TEST(SocketSource, FileIdOutsideTableIsProtocolError) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  const std::vector<Record> sent = {{h.leaves()[0], 100},
                                    {static_cast<NodeId>(9999), 150}};
  std::vector<std::uint8_t> wire = encodeSocketHandshake(allPaths(h));
  appendSocketFrame(wire, sent.data(), sent.size());

  auto listener = loopbackListener();
  std::thread writer = writeAsync(listener->port(), wire);
  SocketSource src(listener, h);
  // The record before the desync is still delivered; then the stream
  // ends as a protocol error.
  EXPECT_EQ(drainBatched(src, 64),
            (std::vector<Record>{{h.leaves()[0], 100}}));
  EXPECT_EQ(src.protocolErrors(), 1u);
  writer.join();
}

TEST(SocketSource, ForcedBinaryRejectsCsvBytes) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  const std::string csv = h.path(h.leaves()[0]) + ",100\n";
  auto listener = loopbackListener();
  std::thread writer = writeAsync(
      listener->port(), std::vector<std::uint8_t>(csv.begin(), csv.end()));
  SocketSourceOptions opt;
  opt.format = SocketSourceOptions::Format::kBinary;
  SocketSource src(listener, h, opt);
  EXPECT_EQ(src.next(), std::nullopt);
  EXPECT_EQ(src.protocolErrors(), 1u);
  writer.join();
}

TEST(SocketSource, ForcedCsvTreatsBinaryBytesAsJunkRows) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  const auto wire = binaryWire(h, sampleRecords(h, 8), 8);
  auto listener = loopbackListener();
  std::thread writer = writeAsync(listener->port(), wire);
  SocketSourceOptions opt;
  opt.format = SocketSourceOptions::Format::kCsv;
  SocketSource src(listener, h, opt);
  // Binary bytes are not CSV rows: everything skips or the line cap
  // trips; either way no records and no crash.
  EXPECT_EQ(drainBatched(src, 64).size(), 0u);
  writer.join();
}

TEST(SocketSource, AdoptedConnectionWorksWithoutListener) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  const auto want = sampleRecords(h, 12);
  const auto wire = binaryWire(h, want, 5);
  auto listener = loopbackListener();
  std::thread writer = writeAsync(listener->port(), wire);
  net::TcpConn accepted = listener->accept(kTestTimeoutMs);
  ASSERT_TRUE(accepted.valid());
  SocketSource src(std::move(accepted), h);
  EXPECT_EQ(drainPerRecord(src), want);
  EXPECT_EQ(src.protocolErrors(), 0u);
  writer.join();
}

// ---------------------------------------------------------------------
// kAuto sniff: binary requires the FULL magic + version prefix.

TEST(SocketSource, AutoSniffCsvRowStartingWithMagicIsCsv) {
  // Regression: a CSV category path that literally starts with "TSRS"
  // used to be mistaken for binary (the old sniff checked only the four
  // magic bytes). The version field never matches printable text, so the
  // full 8-byte sniff keeps it in the CSV lane.
  const auto h =
      HierarchyBuilder::fromPaths({"TSRSROOT/leafA", "TSRSROOT/leafB"});
  const NodeId a = h.find("TSRSROOT/leafA");
  const NodeId b = h.find("TSRSROOT/leafB");
  ASSERT_NE(a, kInvalidNode);
  ASSERT_NE(b, kInvalidNode);
  const std::string csv = "TSRSROOT/leafA,100\nTSRSROOT/leafB,200\n";

  auto listener = loopbackListener();
  std::thread writer = writeAsync(
      listener->port(), std::vector<std::uint8_t>(csv.begin(), csv.end()));
  SocketSource src(listener, h);  // kAuto
  EXPECT_EQ(drainPerRecord(src),
            (std::vector<Record>{{a, 100}, {b, 200}}));
  EXPECT_EQ(src.skippedRecords(), 0u);
  EXPECT_EQ(src.protocolErrors(), 0u);
  writer.join();
}

TEST(SocketSource, AutoSniffTinyCsvUnderEightBytesIsCsv) {
  // A whole CSV stream shorter than the sniff window (EOF mid-sniff)
  // must still parse as CSV, not fail or hang.
  const auto h = HierarchyBuilder::fromPaths({"a"});
  const NodeId a = h.find("a");
  ASSERT_NE(a, kInvalidNode);
  const std::string csv = "a,7\n";  // 4 bytes
  auto listener = loopbackListener();
  std::thread writer = writeAsync(
      listener->port(), std::vector<std::uint8_t>(csv.begin(), csv.end()));
  SocketSource src(listener, h);
  EXPECT_EQ(drainPerRecord(src), (std::vector<Record>{{a, 7}}));
  EXPECT_EQ(src.protocolErrors(), 0u);
  writer.join();
}

// ---------------------------------------------------------------------
// v2 named-stream handshake: resume reply, reconnect, unit-granular
// commits.

TEST(SocketSource, V2HandshakeRepliesAndDelivers) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  const auto want = sampleRecords(h, 20);
  auto listener = loopbackListener();
  std::thread client([port = listener->port(), &h, &want] {
    net::TcpConn conn = net::connectLoopback(port, kTestTimeoutMs);
    ASSERT_TRUE(conn.valid());
    const auto hs = encodeSocketHandshakeV2(allPaths(h), "s0", 42);
    ASSERT_TRUE(conn.writeAll(hs.data(), hs.size()));
    SocketResumeReply reply;
    ASSERT_TRUE(readSocketResumeReply(conn, kTestTimeoutMs, reply));
    EXPECT_EQ(reply.status, kSocketResumeOk);
    EXPECT_EQ(reply.committedTime, kSocketNoCommit);  // fresh stream
    std::vector<std::uint8_t> wire;
    appendSocketFrame(wire, want.data(), want.size());
    appendSocketEndOfStream(wire);
    EXPECT_TRUE(conn.writeAll(wire.data(), wire.size()));
  });
  SocketSourceOptions opt;
  opt.streamName = "s0";
  opt.unitDelta = 10;
  SocketSource src(listener, h, opt);
  EXPECT_EQ(drainBatched(src, 64), want);
  EXPECT_EQ(src.protocolErrors(), 0u);
  EXPECT_EQ(src.reconnects(), 0u);
  EXPECT_EQ(src.resumes(), 0u);
  client.join();
}

TEST(SocketSource, V2WrongNameIsProtocolError) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  auto listener = loopbackListener();
  std::thread client([port = listener->port(), &h] {
    net::TcpConn conn = net::connectLoopback(port, kTestTimeoutMs);
    ASSERT_TRUE(conn.valid());
    const auto hs = encodeSocketHandshakeV2(allPaths(h), "intruder", 1);
    EXPECT_TRUE(conn.writeAll(hs.data(), hs.size()));
  });
  SocketSourceOptions opt;
  opt.streamName = "s0";
  opt.protocolErrorBudget = 0;  // fail hard instead of awaiting reconnect
  SocketSource src(listener, h, opt);
  EXPECT_EQ(src.next(), std::nullopt);
  EXPECT_EQ(src.protocolErrors(), 1u);
  client.join();
}

TEST(SocketSource, V2ReconnectResumesFromCommittedUnit) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  // Three timeunits of 10s: [100,110) [110,120) [120,130).
  std::vector<Record> want;
  const auto& leaves = h.leaves();
  for (int i = 0; i < 30; ++i) {
    want.push_back(
        Record{leaves[i % leaves.size()], static_cast<Timestamp>(100 + i)});
  }
  auto listener = loopbackListener();
  std::thread client([port = listener->port(), &h, &want] {
    // Connection 1: all 30 records, then a crash (no end-of-stream).
    {
      net::TcpConn conn = net::connectLoopback(port, kTestTimeoutMs);
      ASSERT_TRUE(conn.valid());
      const auto hs = encodeSocketHandshakeV2(allPaths(h), "s0", 7);
      ASSERT_TRUE(conn.writeAll(hs.data(), hs.size()));
      SocketResumeReply reply;
      ASSERT_TRUE(readSocketResumeReply(conn, kTestTimeoutMs, reply));
      EXPECT_EQ(reply.committedTime, kSocketNoCommit);
      std::vector<std::uint8_t> wire;
      appendSocketFrame(wire, want.data(), want.size());
      ASSERT_TRUE(conn.writeAll(wire.data(), wire.size()));
    }  // RAII close without EOS = mid-stream disconnect
    // Connection 2: the server must ask for the uncommitted suffix (the
    // last, still-open unit) and nothing else.
    net::TcpConn conn = net::connectLoopback(port, kTestTimeoutMs);
    ASSERT_TRUE(conn.valid());
    const auto hs = encodeSocketHandshakeV2(allPaths(h), "s0", 7);
    ASSERT_TRUE(conn.writeAll(hs.data(), hs.size()));
    SocketResumeReply reply;
    ASSERT_TRUE(readSocketResumeReply(conn, kTestTimeoutMs, reply));
    EXPECT_EQ(reply.status, kSocketResumeOk);
    EXPECT_EQ(reply.committedTime, 120);  // units 100/110 committed
    std::vector<Record> tail;
    for (const Record& r : want) {
      if (r.time >= reply.committedTime) tail.push_back(r);
    }
    std::vector<std::uint8_t> wire;
    appendSocketFrame(wire, tail.data(), tail.size());
    appendSocketEndOfStream(wire);
    EXPECT_TRUE(conn.writeAll(wire.data(), wire.size()));
  });
  SocketSourceOptions opt;
  opt.streamName = "s0";
  opt.unitDelta = 10;
  SocketSource src(listener, h, opt);
  // Bit-identical: the replayed partial unit is delivered exactly once.
  EXPECT_EQ(drainBatched(src, 64), want);
  EXPECT_EQ(src.protocolErrors(), 1u);  // the EOS-less disconnect
  EXPECT_EQ(src.reconnects(), 1u);
  EXPECT_EQ(src.resumes(), 1u);
  client.join();
}

TEST(SocketSource, NoteResumePointSeedsTheFirstReply) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  const auto& leaves = h.leaves();
  auto listener = loopbackListener();
  std::thread client([port = listener->port(), &h, &leaves] {
    net::TcpConn conn = net::connectLoopback(port, kTestTimeoutMs);
    ASSERT_TRUE(conn.valid());
    const auto hs = encodeSocketHandshakeV2(allPaths(h), "s0", 1);
    ASSERT_TRUE(conn.writeAll(hs.data(), hs.size()));
    SocketResumeReply reply;
    ASSERT_TRUE(readSocketResumeReply(conn, kTestTimeoutMs, reply));
    EXPECT_EQ(reply.committedTime, 500);  // the restore position
    const std::vector<Record> tail = {{leaves[0], 500}, {leaves[1], 503}};
    std::vector<std::uint8_t> wire;
    appendSocketFrame(wire, tail.data(), tail.size());
    appendSocketEndOfStream(wire);
    EXPECT_TRUE(conn.writeAll(wire.data(), wire.size()));
  });
  SocketSourceOptions opt;
  opt.streamName = "s0";
  opt.unitDelta = 10;
  SocketSource src(listener, h, opt);
  // What the engine does after --restore, before the first pull.
  src.noteResumePoint(500);
  EXPECT_EQ(drainBatched(src, 64),
            (std::vector<Record>{{leaves[0], 500}, {leaves[1], 503}}));
  EXPECT_EQ(src.protocolErrors(), 0u);
  EXPECT_EQ(src.resumes(), 1u);
  client.join();
}

TEST(SocketSource, JunkBudgetDropsGarbageConnections) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  std::vector<std::string> paths = allPaths(h);
  paths.push_back("no/such/path");
  const auto ghost = static_cast<NodeId>(paths.size() - 1);
  std::vector<Record> garbage;
  for (int i = 0; i < 50; ++i) {
    garbage.push_back(Record{ghost, static_cast<Timestamp>(100 + i)});
  }
  std::vector<std::uint8_t> wire = encodeSocketHandshake(paths);
  appendSocketFrame(wire, garbage.data(), garbage.size());
  appendSocketEndOfStream(wire);

  auto listener = loopbackListener();
  std::thread writer = writeAsync(listener->port(), wire);
  SocketSourceOptions opt;
  opt.junkBudgetPerConn = 10;
  SocketSource src(listener, h, opt);
  EXPECT_EQ(drainBatched(src, 64).size(), 0u);
  EXPECT_EQ(src.protocolErrors(), 1u);  // dropped at the 11th junk record
  EXPECT_EQ(src.skippedRecords(), 11u);
  writer.join();
}

// ---------------------------------------------------------------------
// Corruption fuzzing, mirroring binary_source_test: flip one byte at a
// spread of offsets across the full wire image. Every outcome must be a
// clean drain or a counted protocol error / skipped records — never a
// crash, throw, or hang (ASan/TSan enforce the memory half).

TEST(SocketSourceFuzz, RandomByteFlipsNeverCrash) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  const auto wire = binaryWire(h, sampleRecords(h, 30), 10);
  SocketSourceOptions opt;
  opt.readTimeoutMs = 2000;  // corrupt counts may stall the reader briefly
  for (std::size_t at = 0; at < wire.size();
       at += std::max<std::size_t>(1, wire.size() / 97)) {
    auto mutated = wire;
    mutated[at] ^= 0x5A;
    auto listener = loopbackListener();
    std::thread writer = writeAsync(listener->port(), mutated);
    SocketSource src(listener, h, opt);
    const auto got = drainBatched(src, 64);
    // Accounting sanity: a failed stream is counted, a clean one is not.
    EXPECT_LE(src.protocolErrors(), 1u) << "at=" << at;
    (void)got;
    writer.join();
  }
}

}  // namespace
}  // namespace tiresias
