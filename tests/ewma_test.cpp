// Unit tests for the EWMA forecaster, including the linearity relied on by
// ADA's split/merge and the Fig 9 bias-decay behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "timeseries/ewma.h"

namespace tiresias {
namespace {

TEST(Ewma, RecursionMatchesPaperForm) {
  // F[t] = alpha*T[t-1] + (1-alpha)*F[t-1]
  EwmaForecaster f(0.5);
  f.update(10.0);                 // seeds F = 10
  EXPECT_DOUBLE_EQ(f.forecast(), 10.0);
  f.update(20.0);
  EXPECT_DOUBLE_EQ(f.forecast(), 15.0);
  f.update(0.0);
  EXPECT_DOUBLE_EQ(f.forecast(), 7.5);
}

TEST(Ewma, InitFromHistoryEqualsSequentialUpdates) {
  EwmaForecaster a(0.3), b(0.3);
  const std::vector<double> history{5, 9, 1, 7, 3};
  a.initFromHistory(history);
  for (double v : history) b.update(v);
  EXPECT_DOUBLE_EQ(a.forecast(), b.forecast());
}

TEST(Ewma, ScaleAndMergeAreLinear) {
  EwmaForecaster sum(0.4), x(0.4), y(0.4);
  const std::vector<double> xs{1, 4, 2, 8};
  const std::vector<double> ys{3, 0, 5, 1};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sum.update(xs[i] + ys[i]);
    x.update(xs[i]);
    y.update(ys[i]);
  }
  auto merged = x.clone();
  merged->addFrom(y);
  EXPECT_NEAR(merged->forecast(), sum.forecast(), 1e-12);

  auto scaled = sum.clone();
  scaled->scale(0.25);
  EXPECT_NEAR(scaled->forecast(), sum.forecast() * 0.25, 1e-12);
}

TEST(Ewma, SplitBiasDecaysExponentially) {
  // Equation (1)/(2) of the paper: a bias xi injected into F at time t
  // decays as (1-alpha)^k. With T[i] = 1 the unbiased forecast is 1.
  const double alpha = 0.5;
  const double xi = 1.0;  // bias = F[t] (the paper's "xi = F[t]" curve)
  EwmaForecaster unbiased(alpha), biased(alpha);
  for (int i = 0; i < 50; ++i) {
    unbiased.update(1.0);
    biased.update(1.0);
  }
  biased.scale((unbiased.forecast() + xi) / unbiased.forecast());
  double prevErr = std::abs(biased.forecast() - unbiased.forecast());
  for (int k = 1; k <= 10; ++k) {
    unbiased.update(1.0);
    biased.update(1.0);
    const double err = std::abs(biased.forecast() - unbiased.forecast());
    EXPECT_NEAR(err / prevErr, 1.0 - alpha, 1e-9);
    prevErr = err;
  }
}

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_DEATH(EwmaForecaster(0.0), "alpha");
  EXPECT_DEATH(EwmaForecaster(1.5), "alpha");
}

TEST(Ewma, MergeRequiresMatchingAlpha) {
  EwmaForecaster a(0.4), b(0.5);
  a.update(1);
  b.update(1);
  EXPECT_DEATH(a.addFrom(b), "alpha");
}

}  // namespace
}  // namespace tiresias
