// Unit tests for evaluation: confusion metrics, Table VI comparison
// semantics, the control-chart reference method, and memory normalization.
#include <gtest/gtest.h>

#include "eval/comparison.h"
#include "eval/memory_model.h"
#include "eval/metrics.h"
#include "eval/reference_method.h"
#include "hierarchy/builder.h"

namespace tiresias::eval {
namespace {

TEST(Confusion, BasicRates) {
  ConfusionCounts c{.tp = 8, .fp = 2, .tn = 88, .fn = 2};
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.96);
  EXPECT_DOUBLE_EQ(c.precision(), 0.8);
  EXPECT_DOUBLE_EQ(c.recall(), 0.8);
  EXPECT_DOUBLE_EQ(c.f1(), 0.8);
}

TEST(Confusion, EmptyIsZero) {
  ConfusionCounts c;
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(c.precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.f1(), 0.0);
}

TEST(Confusion, Accumulates) {
  ConfusionCounts a{.tp = 1, .fp = 2, .tn = 3, .fn = 4};
  ConfusionCounts b{.tp = 10, .fp = 20, .tn = 30, .fn = 40};
  a += b;
  EXPECT_EQ(a.tp, 11u);
  EXPECT_EQ(a.total(), 110u);
}

class ComparisonFixture : public ::testing::Test {
 protected:
  ComparisonFixture() : h_(HierarchyBuilder::balanced({2, 2, 2})) {}
  Hierarchy h_;
};

TEST_F(ComparisonFixture, TrueAlarmRequiresFinerOrEqualLocation) {
  const NodeId vho = h_.children(h_.root())[0];
  const NodeId below = h_.children(vho)[1];
  // Reference at VHO, Tiresias reports one level deeper: TA.
  auto counts = compareToReference(h_, {{below, 5}}, {{vho, 5}}, {});
  EXPECT_EQ(counts.trueAlarms, 1u);
  EXPECT_EQ(counts.missedAnomalies, 0u);
  EXPECT_EQ(counts.newAnomalies, 0u);

  // Tiresias reports an unrelated sibling VHO: MA + NA.
  const NodeId otherVho = h_.children(h_.root())[1];
  counts = compareToReference(h_, {{otherVho, 5}}, {{vho, 5}}, {});
  EXPECT_EQ(counts.trueAlarms, 0u);
  EXPECT_EQ(counts.missedAnomalies, 1u);
  EXPECT_EQ(counts.newAnomalies, 1u);
}

TEST_F(ComparisonFixture, TimeMustMatch) {
  const NodeId vho = h_.children(h_.root())[0];
  const auto counts = compareToReference(h_, {{vho, 6}}, {{vho, 5}}, {});
  EXPECT_EQ(counts.trueAlarms, 0u);
  EXPECT_EQ(counts.missedAnomalies, 1u);
  EXPECT_EQ(counts.newAnomalies, 1u);
}

TEST_F(ComparisonFixture, TrueNegativesExcludeReferenceRelated) {
  const NodeId vho = h_.children(h_.root())[0];
  const NodeId other = h_.children(h_.root())[1];
  const NodeId belowVho = h_.children(vho)[0];
  // Negatives: one related to the reference anomaly (not TN), one not.
  const auto counts = compareToReference(h_, {}, {{vho, 5}},
                                         {{belowVho, 5}, {other, 5}});
  EXPECT_EQ(counts.trueNegatives, 1u);
  EXPECT_EQ(counts.missedAnomalies, 1u);
}

TEST_F(ComparisonFixture, TypeMetricsMatchPaperFormulas) {
  ComparisonCounts c;
  c.trueAlarms = 9;
  c.missedAnomalies = 1;
  c.newAnomalies = 2;
  c.trueNegatives = 30;
  EXPECT_DOUBLE_EQ(c.type1(), 39.0 / 42.0);
  EXPECT_DOUBLE_EQ(c.type2(), 0.9);
  EXPECT_DOUBLE_EQ(c.type3(), 30.0 / 32.0);
}

TEST_F(ComparisonFixture, DropAncestorDuplicates) {
  const NodeId vho = h_.children(h_.root())[0];
  const NodeId io = h_.children(vho)[0];
  const NodeId co = h_.children(io)[0];
  const auto kept = dropAncestorDuplicates(
      h_, {{vho, 5}, {io, 5}, {co, 5}, {vho, 6}});
  // Within unit 5 only the deepest (co) survives; unit 6's vho stays.
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].node, co);
  EXPECT_EQ(kept[1].node, vho);
  EXPECT_EQ(kept[1].unit, 6);
}

TEST_F(ComparisonFixture, CountByDepth) {
  const NodeId vho = h_.children(h_.root())[0];
  const NodeId io = h_.children(vho)[0];
  const auto counts = countByDepth(h_, {{vho, 1}, {io, 1}, {io, 2}});
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 2u);
}

TEST(ControlChart, FlagsSpikeAtMonitoredLevel) {
  const auto h = HierarchyBuilder::balanced({3, 2});
  ControlChartConfig cfg;
  cfg.depth = 2;
  cfg.sigmas = 3.0;
  cfg.history = 50;
  cfg.minHistory = 10;
  cfg.minExcess = 2.0;
  ControlChartReference chart(h, cfg);
  const NodeId vho = h.children(h.root())[0];
  const NodeId leaf = h.children(vho)[0];

  auto feed = [&](TimeUnit u, int count) {
    TimeUnitBatch b;
    b.unit = u;
    for (int i = 0; i < count; ++i) b.records.push_back({leaf, u * 900});
    return chart.step(b);
  };
  // Stable phase: no alarms after warm-up.
  for (TimeUnit u = 0; u < 30; ++u) {
    const auto alarms = feed(u, 5 + static_cast<int>(u % 2));
    if (u >= 10) {
      EXPECT_TRUE(alarms.empty()) << "unit " << u;
    }
  }
  // Spike.
  const auto alarms = feed(30, 40);
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_EQ(alarms[0].node, vho);
  EXPECT_EQ(alarms[0].unit, 30);
  EXPECT_EQ(chart.allAlarms().size(), 1u);
}

TEST(ControlChart, CannotSeeBelowMonitoredLevel) {
  // A dip-and-shift within one VHO that keeps the VHO total flat is
  // invisible to the chart — the structural limitation Table VI probes.
  const auto h = HierarchyBuilder::balanced({2, 2});
  ControlChartConfig cfg;
  cfg.depth = 2;
  cfg.minHistory = 5;
  ControlChartReference chart(h, cfg);
  const NodeId vho = h.children(h.root())[0];
  const NodeId a = h.children(vho)[0];
  const NodeId b = h.children(vho)[1];
  for (TimeUnit u = 0; u < 30; ++u) {
    TimeUnitBatch batch;
    batch.unit = u;
    // Total constant at 10; in the second half all mass moves to `b`.
    const int countA = u < 15 ? 5 : 0;
    for (int i = 0; i < countA; ++i) batch.records.push_back({a, u * 900});
    for (int i = 0; i < 10 - countA; ++i) batch.records.push_back({b, u * 900});
    EXPECT_TRUE(chart.step(batch).empty()) << "unit " << u;
  }
}

TEST(MemoryModel, NormalizesLikeTableFour) {
  MemoryStats stats;
  stats.bytesEstimate = 120000;
  const auto report = normalizeMemory(stats, 100.0, 12.0);
  EXPECT_DOUBLE_EQ(report.normalized, 100.0);
  EXPECT_EQ(report.bytes, 120000u);
}

}  // namespace
}  // namespace tiresias::eval
