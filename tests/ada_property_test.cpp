// Property-based sweeps for ADA: across random trees, random workloads
// with regime shifts, all split rules and several reference depths, the
// adapted heavy-hitter set must always equal the Definition-2 ground truth
// (Lemma 1), and weight conservation must hold.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/rng.h"
#include "core/ada.h"
#include "core/shhh.h"
#include "core/shhh_reference.h"
#include "core/sta.h"
#include "hierarchy/builder.h"
#include "timeseries/ewma.h"
#include "timeseries/holt_winters.h"

namespace tiresias {
namespace {

Hierarchy randomTree(Rng& rng, std::size_t extra) {
  HierarchyBuilder b("root");
  std::vector<NodeId> nodes{0};
  for (std::size_t i = 0; i < extra; ++i) {
    nodes.push_back(
        b.addChild(nodes[rng.below(nodes.size())], "n" + std::to_string(i)));
  }
  return b.build();
}

/// Regime-shifting workload: a hot leaf that relocates every few units, a
/// varying diffuse background, and occasional total silence. Designed to
/// trigger many splits and merges.
TimeUnitBatch randomBatch(const Hierarchy& h, TimeUnit u, Rng& rng) {
  TimeUnitBatch batch;
  batch.unit = u;
  if (rng.below(13) == 0) return batch;  // silent unit
  const NodeId hot =
      h.leaves()[SplitMix64(static_cast<std::uint64_t>(u / 4)).next() %
                 h.leafCount()];
  const int hotCount = 3 + static_cast<int>(rng.below(10));
  for (int i = 0; i < hotCount; ++i) {
    batch.records.push_back({hot, unitStart(u, 900)});
  }
  const int noise = static_cast<int>(rng.below(12));
  for (int i = 0; i < noise; ++i) {
    batch.records.push_back(
        {h.leaves()[rng.below(h.leafCount())], unitStart(u, 900)});
  }
  return batch;
}

using Params = std::tuple<std::uint64_t /*seed*/, SplitRule, std::size_t /*h*/>;

class AdaSweep : public ::testing::TestWithParam<Params> {};

TEST_P(AdaSweep, HhSetAlwaysMatchesGroundTruth) {
  const auto [seed, rule, refLevels] = GetParam();
  Rng rng(seed);
  const auto h = randomTree(rng, 40 + rng.below(60));

  DetectorConfig cfg;
  cfg.theta = 3.0 + static_cast<double>(rng.below(4));
  cfg.windowLength = 8;
  cfg.splitRule = rule;
  cfg.referenceLevels = refLevels;
  cfg.validateShhh = true;  // internal Lemma-1 cross-check every step
  cfg.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
  AdaDetector ada(h, cfg);

  for (TimeUnit u = 0; u < 60; ++u) {
    const auto batch = randomBatch(h, u, rng);
    CountMap counts;
    for (const auto& r : batch.records) counts[r.category] += 1.0;
    const auto truth = reference::computeShhh(h, counts, cfg.theta).shhh;
    const auto result = ada.step(batch);
    if (!result) continue;
    EXPECT_EQ(result->shhh, truth) << "seed " << seed << " unit " << u;
  }
}

TEST_P(AdaSweep, WeightConservationAcrossHolders) {
  // At every instance the newest value across all holders (members plus
  // the root residual) sums to the unit's total record count.
  const auto [seed, rule, refLevels] = GetParam();
  Rng rng(seed ^ 0xfeedULL);
  const auto h = randomTree(rng, 50);

  DetectorConfig cfg;
  cfg.theta = 4.0;
  cfg.windowLength = 6;
  cfg.splitRule = rule;
  cfg.referenceLevels = refLevels;
  cfg.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
  AdaDetector ada(h, cfg);

  for (TimeUnit u = 0; u < 40; ++u) {
    const auto batch = randomBatch(h, u, rng);
    const double total = static_cast<double>(batch.records.size());
    const auto result = ada.step(batch);
    if (!result) continue;
    double sum = 0.0;
    for (NodeId n : result->shhh) sum += ada.seriesOf(n).back();
    const bool rootMember =
        !result->shhh.empty() && result->shhh.front() == h.root();
    if (!rootMember) sum += ada.seriesOf(h.root()).back();
    EXPECT_NEAR(sum, total, 1e-9) << "seed " << seed << " unit " << u;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RulesAndSeeds, AdaSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(11, 22, 33, 44),
                       ::testing::Values(SplitRule::kUniform,
                                         SplitRule::kLastTimeUnit,
                                         SplitRule::kLongTermHistory,
                                         SplitRule::kEwma),
                       ::testing::Values<std::size_t>(0, 2)),
    [](const ::testing::TestParamInfo<Params>& info) {
      std::string rule = splitRuleName(std::get<1>(info.param));
      rule.erase(std::remove(rule.begin(), rule.end(), '-'), rule.end());
      return "seed" + std::to_string(std::get<0>(info.param)) + "_" + rule +
             "_h" + std::to_string(std::get<2>(info.param));
    });

// Holt-Winters end-to-end sweep: the HH-set equality must also hold with
// the seasonal forecaster carrying state through splits and merges.
class AdaHwSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdaHwSweep, HhSetMatchesWithHoltWinters) {
  Rng rng(GetParam());
  const auto h = randomTree(rng, 60);
  DetectorConfig cfg;
  cfg.theta = 4.0;
  cfg.windowLength = 12;
  cfg.referenceLevels = 1;
  cfg.validateShhh = true;
  cfg.forecasterFactory = std::make_shared<HoltWintersFactory>(
      HoltWintersParams{0.4, 0.1, 0.3}, std::vector<SeasonSpec>{{4, 1.0}});
  AdaDetector ada(h, cfg);
  for (TimeUnit u = 0; u < 50; ++u) {
    const auto batch = randomBatch(h, u, rng);
    CountMap counts;
    for (const auto& r : batch.records) counts[r.category] += 1.0;
    const auto truth = reference::computeShhh(h, counts, cfg.theta).shhh;
    const auto result = ada.step(batch);
    if (result) {
      EXPECT_EQ(result->shhh, truth) << "unit " << u;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdaHwSweep,
                         ::testing::Values(3, 6, 9, 12, 15));

}  // namespace
}  // namespace tiresias
