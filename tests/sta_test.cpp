// Unit tests for the STA strawman detector (Fig 4), plus the randomized
// equivalence property pinning the incremental sliding-window rewrite to
// the retained window-copy reference implementation.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/shhh_reference.h"
#include "core/sta.h"
#include "hierarchy/builder.h"
#include "timeseries/ewma.h"

namespace tiresias {
namespace {

DetectorConfig smallConfig(std::size_t window = 8) {
  DetectorConfig cfg;
  cfg.theta = 4.0;
  cfg.windowLength = window;
  cfg.ratioThreshold = 2.0;
  cfg.diffThreshold = 3.0;
  cfg.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
  return cfg;
}

TimeUnitBatch batchOf(TimeUnit unit, std::vector<std::pair<NodeId, int>> counts,
                      Duration delta = 900) {
  TimeUnitBatch b;
  b.unit = unit;
  for (const auto& [node, c] : counts) {
    for (int i = 0; i < c; ++i) {
      b.records.push_back({node, unitStart(unit, delta)});
    }
  }
  return b;
}

TEST(Sta, WarmsUpBeforeDetecting) {
  const auto h = HierarchyBuilder::balanced({2, 2});
  StaDetector sta(h, smallConfig(4));
  const NodeId leaf = h.leaves()[0];
  for (TimeUnit u = 0; u < 3; ++u) {
    EXPECT_FALSE(sta.step(batchOf(u, {{leaf, 5}})).has_value());
  }
  EXPECT_TRUE(sta.step(batchOf(3, {{leaf, 5}})).has_value());
}

TEST(Sta, DetectsObviousSpike) {
  const auto h = HierarchyBuilder::balanced({2, 2});
  StaDetector sta(h, smallConfig(8));
  const NodeId leaf = h.leaves()[0];
  std::optional<InstanceResult> result;
  for (TimeUnit u = 0; u < 10; ++u) {
    result = sta.step(batchOf(u, {{leaf, 5}}));
  }
  ASSERT_TRUE(result);
  EXPECT_TRUE(result->anomalies.empty());  // steady state

  result = sta.step(batchOf(10, {{leaf, 50}}));
  ASSERT_TRUE(result);
  ASSERT_EQ(result->anomalies.size(), 1u);
  EXPECT_EQ(result->anomalies[0].node, leaf);
  EXPECT_DOUBLE_EQ(result->anomalies[0].actual, 50.0);
}

TEST(Sta, ShhhTracksDetectionUnitOnly) {
  const auto h = HierarchyBuilder::balanced({2, 2});
  StaDetector sta(h, smallConfig(4));
  const NodeId hot = h.leaves()[0];
  const NodeId other = h.leaves()[3];
  for (TimeUnit u = 0; u < 4; ++u) sta.step(batchOf(u, {{hot, 6}}));
  // Shift the mass: the HH set must follow the newest unit.
  auto result = sta.step(batchOf(4, {{other, 6}}));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->shhh, std::vector<NodeId>{other});
}

TEST(Sta, SeriesReconstructionIsExact) {
  const auto h = HierarchyBuilder::balanced({2, 2});
  auto cfg = smallConfig(4);
  cfg.theta = 3.0;
  StaDetector sta(h, cfg);
  const NodeId leaf = h.leaves()[0];
  sta.step(batchOf(0, {{leaf, 1}}));
  sta.step(batchOf(1, {{leaf, 2}}));
  sta.step(batchOf(2, {{leaf, 3}}));
  auto result = sta.step(batchOf(3, {{leaf, 4}}));
  ASSERT_TRUE(result);
  ASSERT_EQ(result->shhh, std::vector<NodeId>{leaf});
  EXPECT_EQ(sta.seriesOf(leaf), (std::vector<double>{1, 2, 3, 4}));
  // Forecast series is the EWMA recursion over that history.
  const auto fc = sta.forecastSeriesOf(leaf);
  ASSERT_EQ(fc.size(), 4u);
  EXPECT_DOUBLE_EQ(fc[1], 1.0);
  EXPECT_DOUBLE_EQ(fc[2], 1.5);
  EXPECT_DOUBLE_EQ(fc[3], 2.25);
}

TEST(Sta, EmptyUnitsKeepWindowMoving) {
  const auto h = HierarchyBuilder::balanced({2});
  StaDetector sta(h, smallConfig(3));
  const NodeId leaf = h.leaves()[0];
  sta.step(batchOf(0, {{leaf, 9}}));
  sta.step(batchOf(1, {}));
  auto result = sta.step(batchOf(2, {}));
  ASSERT_TRUE(result);
  EXPECT_TRUE(result->shhh.empty());
  // Root series exists and shows the fade-out.
  EXPECT_EQ(sta.seriesOf(h.root()), (std::vector<double>{9, 0, 0}));
}

// Randomized hierarchies, unit counts and regime shifts: every step of the
// incremental detector must be *bit-identical* to the historical
// window-copy reconstruction — same SHHH sets, anomalies, series and
// forecast series. Counts are unit record weights, so all aggregates are
// integers and the incremental subtraction is exact.
class StaEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StaEquivalence, MatchesWindowCopyReferenceBitForBit) {
  Rng rng(GetParam());
  HierarchyBuilder b("root");
  std::vector<NodeId> nodes{0};
  for (int i = 0; i < 30 + static_cast<int>(rng.below(70)); ++i) {
    nodes.push_back(
        b.addChild(nodes[rng.below(nodes.size())], "n" + std::to_string(i)));
  }
  const auto h = b.build();

  DetectorConfig cfg;
  cfg.theta = 2.0 + static_cast<double>(rng.below(4));
  cfg.windowLength = 4 + rng.below(8);
  cfg.ratioThreshold = 2.0;
  cfg.diffThreshold = 3.0;
  cfg.forecasterFactory = std::make_shared<EwmaFactory>(0.5);

  StaDetector sta(h, cfg);
  reference::StaReplica replica(h, cfg);

  for (TimeUnit u = 0; u < 60; ++u) {
    TimeUnitBatch batch;
    batch.unit = u;
    if (rng.below(9) != 0) {  // occasional silent unit
      const NodeId hot = h.leaves()[(u / 5) % h.leafCount()];
      const int hotCount = static_cast<int>(rng.below(12));
      for (int i = 0; i < hotCount; ++i) {
        batch.records.push_back({hot, unitStart(u, 900)});
      }
      const int noise = static_cast<int>(rng.below(15));
      for (int i = 0; i < noise; ++i) {
        batch.records.push_back(
            {h.leaves()[rng.below(h.leafCount())], unitStart(u, 900)});
      }
    }
    const auto got = sta.step(batch);
    const auto want = replica.step(batch);
    ASSERT_EQ(got.has_value(), want.has_value()) << "unit " << u;
    if (!got) continue;
    EXPECT_EQ(got->unit, want->unit);
    EXPECT_EQ(got->shhh, want->shhh) << "unit " << u;
    EXPECT_EQ(got->anomalies, want->anomalies) << "unit " << u;
    // Exact (not approximate) series agreement for every node that holds
    // a series — including the root residual.
    for (NodeId n = 0; n < h.size(); ++n) {
      EXPECT_EQ(sta.seriesOf(n), replica.seriesOf(n))
          << "node " << n << " unit " << u;
      EXPECT_EQ(sta.forecastSeriesOf(n), replica.forecastSeriesOf(n))
          << "node " << n << " unit " << u;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaEquivalence,
                         ::testing::Values(5, 17, 23, 42, 77, 101));

TEST(Sta, MemoryStatsCountLTrees) {
  const auto h = HierarchyBuilder::balanced({2, 2});
  StaDetector sta(h, smallConfig(4));
  const NodeId leaf = h.leaves()[0];
  for (TimeUnit u = 0; u < 4; ++u) sta.step(batchOf(u, {{leaf, 5}}));
  const auto stats = sta.memoryStats();
  // Each unit tree holds the leaf + 2 ancestors.
  EXPECT_EQ(stats.treeNodesStored, 4u * 3u);
  EXPECT_GT(stats.bytesEstimate, 0u);
}

}  // namespace
}  // namespace tiresias
