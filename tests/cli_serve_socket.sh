#!/usr/bin/env bash
# Loopback smoke for the network serving surface, end to end through
# `tiresias_cli serve --listen` and `tiresias_cli send`.
#
# Usage: cli_serve_socket.sh <tiresias_cli> <scratch-dir>
#
# Generates a spiked trace, serves on ephemeral ports, subscribes to the
# anomaly JSON-lines stream, polls the stats endpoint, feeds the trace
# once in the framed binary protocol (`send`) and once as raw CSV bytes,
# and asserts: anomaly lines arrive with the spiked path, the stats poll
# answers a tiresias_metrics/v1 document, both runs ingest every record
# with zero protocol errors, and both serve processes exit 0 on their
# own. Hard deadlines everywhere so a wedged accept fails fast.
set -u

CLI="$1"
DIR="$2"

fail() {
  echo "FAIL: $*" >&2
  [ -n "${PID:-}" ] && kill -9 "$PID" 2>/dev/null
  [ -n "${SUBPID:-}" ] && kill -9 "$SUBPID" 2>/dev/null
  exit 1
}

# Poll for a sed-extractable value in a file within ~10s.
await() {  # await <file> <sed-expr> -> echoes the value
  local file="$1" expr="$2" v="" i
  for i in $(seq 200); do
    v=$(sed -n "$expr" "$file" 2>/dev/null | head -1)
    [ -n "$v" ] && break
    sleep 0.05
  done
  echo "$v"
}

rm -rf "$DIR"
mkdir -p "$DIR" || fail "cannot create scratch dir $DIR"

# A 2-day test-scale trace with one leaf spiked hard after the 16-unit
# warmup window: deterministic, detected by theta 4 (verified: ratio
# ~190 at unit 40).
LEAF="SHO/VHO0/IO1/CO1/DSLAM1"
"$CLI" generate --dataset ccd-net --scale test --days 2 --seed 3 \
    --spike "$LEAF:40:3:60" --out "$DIR/trace.csv" \
    >"$DIR/generate.log" 2>&1 || fail "generate failed"
records=$(sed -n 's/^wrote \([0-9]*\) records.*/\1/p' "$DIR/generate.log")
[ -n "$records" ] || fail "generate did not report a record count"

# ---- Leg 1: framed binary protocol via `send`, with anomaly + stats ----
# --loopback: every client below connects via 127.0.0.1, so the smoke
# also proves the restricted bind serves all three ports.
"$CLI" serve --listen 0 --anomaly-port 0 --stats-port 0 --loopback \
    --window 16 --theta 4 >"$DIR/serve_bin.log" 2>&1 &
PID=$!
ingest=$(await "$DIR/serve_bin.log" 's/.*ingest=\([0-9]*\).*/\1/p')
anomaly=$(await "$DIR/serve_bin.log" 's/.*anomaly=\([0-9]*\).*/\1/p')
stats=$(await "$DIR/serve_bin.log" 's/.*stats=\([0-9]*\).*/\1/p')
[ -n "$ingest" ] && [ -n "$anomaly" ] && [ -n "$stats" ] \
    || fail "serving: line missing ports (see $DIR/serve_bin.log)"

# Subscribe to the anomaly stream before any record flows.
timeout 60 bash -c \
    "exec cat </dev/tcp/127.0.0.1/$anomaly" >"$DIR/anomalies.jsonl" &
SUBPID=$!
sleep 0.2

# Stats must answer while the engine is idle (a scrape, not a summary).
timeout 10 bash -c \
    "exec 3<>/dev/tcp/127.0.0.1/$stats && cat <&3" >"$DIR/stats_pre.json" \
    || fail "stats poll before ingest failed"
grep -q 'tiresias_metrics/v1' "$DIR/stats_pre.json" \
    || fail "stats poll is not a tiresias_metrics/v1 document"
grep -q '"checkpoint":{' "$DIR/stats_pre.json" \
    || fail "stats document lacks the checkpoint object"

timeout 60 "$CLI" send --to "127.0.0.1:$ingest" --trace "$DIR/trace.csv" \
    --dataset ccd-net --scale test >"$DIR/send.log" 2>&1 \
    || fail "send failed (see $DIR/send.log)"
grep -q "sent $records records" "$DIR/send.log" \
    || fail "send did not deliver every record"

# The run ends by itself once the connection ends.
deadline=$((SECONDS + 60))
while kill -0 "$PID" 2>/dev/null; do
  [ "$SECONDS" -ge "$deadline" ] && fail "binary serve did not exit"
  sleep 0.1
done
wait "$PID" || fail "binary serve exited non-zero (see $DIR/serve_bin.log)"
PID=
wait "$SUBPID" 2>/dev/null
SUBPID=

grep -q "records=$records" "$DIR/serve_bin.log" \
    || fail "binary serve did not ingest every record"
grep -q "protocol-errors=0" "$DIR/serve_bin.log" \
    || fail "binary serve counted protocol errors"
grep -q "\"path\":\"$LEAF\"" "$DIR/anomalies.jsonl" \
    || fail "anomaly stream never carried the spiked path"
grep -q '"unit":40' "$DIR/anomalies.jsonl" \
    || fail "anomaly stream missed the spike unit"

# ---- Leg 2: raw CSV bytes (the `nc trace.csv` path) ----
"$CLI" serve --listen 0 --window 16 --theta 4 \
    >"$DIR/serve_csv.log" 2>&1 &
PID=$!
ingest=$(await "$DIR/serve_csv.log" 's/.*ingest=\([0-9]*\).*/\1/p')
[ -n "$ingest" ] || fail "csv serving: line missing (see $DIR/serve_csv.log)"
timeout 60 bash -c \
    "exec cat \"$DIR/trace.csv\" >/dev/tcp/127.0.0.1/$ingest" \
    || fail "csv stream failed"
deadline=$((SECONDS + 60))
while kill -0 "$PID" 2>/dev/null; do
  [ "$SECONDS" -ge "$deadline" ] && fail "csv serve did not exit"
  sleep 0.1
done
wait "$PID" || fail "csv serve exited non-zero (see $DIR/serve_csv.log)"
PID=
grep -q "records=$records" "$DIR/serve_csv.log" \
    || fail "csv serve did not ingest every record"
grep -q "protocol-errors=0" "$DIR/serve_csv.log" \
    || fail "csv serve counted protocol errors"
# Both formats drove the same engine: identical anomaly totals.
bin_anoms=$(sed -n 's/.*aggregate.*anomalies=\([0-9]*\).*/\1/p' "$DIR/serve_bin.log")
csv_anoms=$(sed -n 's/.*aggregate.*anomalies=\([0-9]*\).*/\1/p' "$DIR/serve_csv.log")
[ -n "$bin_anoms" ] && [ "$bin_anoms" = "$csv_anoms" ] \
    || fail "binary/csv ingest disagree on anomalies: '$bin_anoms' vs '$csv_anoms'"
[ "$bin_anoms" -ge 1 ] || fail "no anomalies detected at all"

echo "PASS"
exit 0
