// Tests for the §V-B6 sliding-scale detector (detection unit Δ = λ·ς).
#include <gtest/gtest.h>

#include "core/multiscale_detector.h"
#include "hierarchy/builder.h"
#include "timeseries/ewma.h"

namespace tiresias {
namespace {

DetectorConfig fineConfig(std::size_t window) {
  DetectorConfig cfg;
  cfg.theta = 3.0;
  cfg.windowLength = window;
  cfg.ratioThreshold = 2.0;
  cfg.diffThreshold = 3.0;
  cfg.forecasterFactory = std::make_shared<EwmaFactory>(0.3);
  return cfg;
}

TimeUnitBatch batchOf(TimeUnit unit, NodeId node, int count) {
  TimeUnitBatch b;
  b.unit = unit;
  for (int i = 0; i < count; ++i) b.records.push_back({node, unit * 900});
  return b;
}

TEST(SlidingScale, LambdaOneMatchesInnerDetector) {
  const auto h = HierarchyBuilder::balanced({2});
  const NodeId leaf = h.leaves()[0];
  SlidingScaleConfig scale;
  scale.lambda = 1;
  scale.ratioThreshold = 2.0;
  scale.diffThreshold = 3.0;
  SlidingScaleDetector sliding(h, fineConfig(8), scale);
  AdaDetector plain(h, fineConfig(8));

  for (TimeUnit u = 0; u < 20; ++u) {
    const int count = u == 15 ? 40 : 4;
    auto rs = sliding.step(batchOf(u, leaf, count));
    auto rp = plain.step(batchOf(u, leaf, count));
    ASSERT_EQ(rs.has_value(), rp.has_value());
    if (!rs) continue;
    ASSERT_EQ(rs->anomalies.size(), rp->anomalies.size()) << "unit " << u;
    for (std::size_t i = 0; i < rs->anomalies.size(); ++i) {
      EXPECT_EQ(rs->anomalies[i].node, rp->anomalies[i].node);
      EXPECT_DOUBLE_EQ(rs->anomalies[i].actual, rp->anomalies[i].actual);
    }
  }
}

TEST(SlidingScale, DetectsSlowBurstInvisibleAtFineScale) {
  // A burst that adds a modest amount per fine unit but persists for a
  // full coarse unit: each fine unit alone stays under the thresholds;
  // the λ-unit aggregate trips them.
  const auto h = HierarchyBuilder::balanced({2});
  const NodeId leaf = h.leaves()[0];
  SlidingScaleConfig scale;
  scale.lambda = 4;
  // The EWMA partially absorbs the burst across its 4 units, so the
  // coarse ratio is modest even though the aggregate excess is large.
  scale.ratioThreshold = 1.3;
  scale.diffThreshold = 10.0;  // > any single fine-unit excess
  SlidingScaleDetector sliding(h, fineConfig(16), scale);

  bool fineTripped = false, coarseTripped = false;
  for (TimeUnit u = 0; u < 40; ++u) {
    const bool burst = u >= 32 && u < 36;
    const int count = burst ? 9 : 4;  // +5/unit, +20 per coarse unit
    auto result = sliding.step(batchOf(u, leaf, count));
    if (!result) continue;
    // Fine-scale Definition 4 with the same thresholds would need a
    // single-unit diff > 10, which never happens.
    if (9.0 - 4.0 > scale.diffThreshold) fineTripped = true;
    for (const auto& a : result->anomalies) {
      if (a.node == leaf && a.unit == 35) coarseTripped = true;
    }
  }
  EXPECT_FALSE(fineTripped);
  EXPECT_TRUE(coarseTripped);
}

TEST(SlidingScale, CoarseValuesAreWindowSums) {
  const auto h = HierarchyBuilder::balanced({2});
  const NodeId leaf = h.leaves()[0];
  SlidingScaleConfig scale;
  scale.lambda = 3;
  scale.ratioThreshold = 1.1;
  scale.diffThreshold = 0.5;
  SlidingScaleDetector sliding(h, fineConfig(6), scale);
  // Values 4,4,4,4,4 then 30: the coarse actual at the spike unit must be
  // 4+4+30 = 38.
  std::optional<InstanceResult> last;
  for (TimeUnit u = 0; u < 6; ++u) {
    last = sliding.step(batchOf(u, leaf, u == 5 ? 30 : 4));
  }
  ASSERT_TRUE(last);
  ASSERT_FALSE(last->anomalies.empty());
  EXPECT_DOUBLE_EQ(last->anomalies.front().actual, 38.0);
}

TEST(SlidingScale, WindowSlidesByFineIncrement) {
  // Consecutive fine steps each produce a coarse verdict (the Δ window
  // slides by ς, not by Δ).
  const auto h = HierarchyBuilder::balanced({2});
  const NodeId leaf = h.leaves()[0];
  SlidingScaleConfig scale;
  scale.lambda = 4;
  SlidingScaleDetector sliding(h, fineConfig(8), scale);
  int results = 0;
  for (TimeUnit u = 0; u < 12; ++u) {
    if (sliding.step(batchOf(u, leaf, 5))) ++results;
  }
  EXPECT_EQ(results, 12 - 8 + 1);
}

}  // namespace
}  // namespace tiresias
