// Unit tests for the ADA adaptive detector: bootstrap, split, merge, the
// deep-chain regression, root handling and reference corrections.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/ada.h"
#include "core/sta.h"
#include "hierarchy/builder.h"
#include "timeseries/ewma.h"

namespace tiresias {
namespace {

DetectorConfig config(std::size_t window, double theta = 4.0,
                      std::size_t refLevels = 0) {
  DetectorConfig cfg;
  cfg.theta = theta;
  cfg.windowLength = window;
  cfg.ratioThreshold = 2.0;
  cfg.diffThreshold = 3.0;
  cfg.referenceLevels = refLevels;
  cfg.validateShhh = true;
  cfg.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
  return cfg;
}

TimeUnitBatch batchOf(TimeUnit unit,
                      std::vector<std::pair<NodeId, int>> counts,
                      Duration delta = 900) {
  TimeUnitBatch b;
  b.unit = unit;
  for (const auto& [node, c] : counts) {
    for (int i = 0; i < c; ++i) {
      b.records.push_back({node, unitStart(unit, delta)});
    }
  }
  return b;
}

TEST(Ada, BootstrapMatchesSta) {
  const auto h = HierarchyBuilder::balanced({2, 2});
  AdaDetector ada(h, config(4));
  StaDetector sta(h, config(4));
  const NodeId leaf = h.leaves()[0];
  std::optional<InstanceResult> ra, rs;
  for (TimeUnit u = 0; u < 4; ++u) {
    auto batch = batchOf(u, {{leaf, 5 + static_cast<int>(u)}});
    ra = ada.step(batch);
    rs = sta.step(batch);
  }
  ASSERT_TRUE(ra && rs);
  EXPECT_EQ(ra->shhh, rs->shhh);
  EXPECT_EQ(ada.seriesOf(leaf), sta.seriesOf(leaf));
}

TEST(Ada, SplitMovesSeriesDownOneLevel) {
  // Mass starts aggregated below theta at two leaves (parent is the HH);
  // then one leaf spikes above theta -> the parent splits.
  HierarchyBuilder b("root");
  const NodeId a = b.addChild(0, "a");
  b.addChild(a, "a0");
  b.addChild(a, "a1");
  const auto h = b.build();
  const NodeId a0 = h.find("a/a0");
  const NodeId a1 = h.find("a/a1");
  const NodeId an = h.find("a");

  AdaDetector ada(h, config(4, 4.0));
  for (TimeUnit u = 0; u < 4; ++u) {
    ada.step(batchOf(u, {{a0, 3}, {a1, 2}}));  // a's W = 5 >= theta
  }
  EXPECT_EQ(ada.currentShhh(), std::vector<NodeId>{an});
  const auto before = ada.seriesOf(an);
  ASSERT_EQ(before.size(), 4u);

  auto result = ada.step(batchOf(4, {{a0, 6}, {a1, 2}}));
  ASSERT_TRUE(result);
  // a0 heavy (6), a residual = 2 -> a not heavy, root residual = 2 -> not.
  EXPECT_EQ(result->shhh, std::vector<NodeId>{a0});
  EXPECT_GT(ada.splitCount(), 0u);
  // a0 received a share of a's history plus the fresh exact value.
  const auto s = ada.seriesOf(a0);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s.back(), 6.0);
}

TEST(Ada, MergeFoldsFadedHeavyHitters) {
  HierarchyBuilder b("root");
  const NodeId a = b.addChild(0, "a");
  b.addChild(a, "a0");
  b.addChild(a, "a1");
  const auto h = b.build();
  const NodeId a0 = h.find("a/a0");
  const NodeId a1 = h.find("a/a1");
  const NodeId an = h.find("a");

  AdaDetector ada(h, config(4, 4.0));
  for (TimeUnit u = 0; u < 4; ++u) {
    ada.step(batchOf(u, {{a0, 5}, {a1, 5}}));  // both leaves heavy
  }
  EXPECT_EQ(ada.currentShhh(), (std::vector<NodeId>{a0, a1}));

  // Both fade: their series merge into the parent (which becomes heavy).
  auto result = ada.step(batchOf(4, {{a0, 2}, {a1, 3}}));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->shhh, std::vector<NodeId>{an});
  EXPECT_GT(ada.mergeCount(), 0u);
  const auto s = ada.seriesOf(an);
  ASSERT_EQ(s.size(), 4u);
  // Merged history = sum of the two leaf histories (5+5 per unit).
  EXPECT_DOUBLE_EQ(s[0], 10.0);
  EXPECT_DOUBLE_EQ(s[1], 10.0);
  EXPECT_DOUBLE_EQ(s[2], 10.0);
  EXPECT_DOUBLE_EQ(s.back(), 5.0);  // fresh exact W
}

TEST(Ada, DeepChainRegression) {
  // DESIGN.md deviation 1: a new heavy hitter two levels below the series
  // holder, with a below-theta intermediate, must still receive a series.
  HierarchyBuilder b("root");
  const NodeId c = b.addChild(0, "c");
  const NodeId g0 = b.addChild(c, "g0");
  b.addChild(c, "g1");
  b.addChild(g0, "x0");
  b.addChild(g0, "x1");
  const auto h = b.build();
  const NodeId x0 = h.find("c/g0/x0");
  const NodeId x1 = h.find("c/g0/x1");
  const NodeId g1 = h.find("c/g1");

  AdaDetector ada(h, config(4, 4.0));
  // History: diffuse mass -> c is the only holder (W_c = 4 >= theta), two
  // levels above the leaf that will spike.
  for (TimeUnit u = 0; u < 4; ++u) {
    ada.step(batchOf(u, {{x0, 2}, {x1, 1}, {g1, 1}}));
  }
  EXPECT_EQ(ada.currentShhh(), std::vector<NodeId>{h.find("c")});

  // Deep spike at x0: x0 heavy, g0 residual 1 < theta, c residual 2 < theta.
  auto result = ada.step(batchOf(4, {{x0, 7}, {x1, 1}, {g1, 1}}));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->shhh, std::vector<NodeId>{x0});
  EXPECT_EQ(ada.seriesOf(x0).size(), 4u);
}

TEST(Ada, RootSplitAndRecovery) {
  const auto h = HierarchyBuilder::balanced({2, 2});
  const NodeId leaf = h.leaves()[0];
  // theta = 5: with 2 records per leaf each depth-2 node aggregates only 4,
  // so the root (W = 8) is the sole heavy hitter.
  AdaDetector ada(h, config(4, 5.0, /*refLevels=*/1));
  for (TimeUnit u = 0; u < 4; ++u) {
    TimeUnitBatch batch;
    batch.unit = u;
    for (NodeId l : h.leaves()) {
      batch.records.push_back({l, unitStart(u, 900)});
      batch.records.push_back({l, unitStart(u, 900)});
    }
    ada.step(batch);  // root W = 8
  }
  EXPECT_EQ(ada.currentShhh(), std::vector<NodeId>{h.root()});

  // One leaf takes all the mass: root splits down to it; later the mass
  // diffuses again and everything merges back up to the root.
  auto result = ada.step(batchOf(4, {{leaf, 9}}));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->shhh, std::vector<NodeId>{leaf});

  TimeUnitBatch diffuse;
  diffuse.unit = 5;
  for (NodeId l : h.leaves()) {
    diffuse.records.push_back({l, unitStart(5, 900)});
    diffuse.records.push_back({l, unitStart(5, 900)});
  }
  result = ada.step(diffuse);
  ASSERT_TRUE(result);
  EXPECT_EQ(result->shhh, std::vector<NodeId>{h.root()});
  // The root's history was rebuilt (reference correction): the fresh
  // value is exact.
  EXPECT_DOUBLE_EQ(ada.seriesOf(h.root()).back(), 8.0);
}

TEST(Ada, FullReferenceLevelsGiveExactSeries) {
  // With reference series on every level, every split/merge-received node
  // is corrected, so ADA's series must equal STA's exactly.
  const auto h = HierarchyBuilder::balanced({3, 2, 2});
  auto cfg = config(6, 4.0, /*refLevels=*/4);
  AdaDetector ada(h, cfg);
  StaDetector sta(h, cfg);
  Rng rng(61);
  std::optional<InstanceResult> ra, rs;
  for (TimeUnit u = 0; u < 30; ++u) {
    TimeUnitBatch batch;
    batch.unit = u;
    // Shifting hotspot: forces splits and merges.
    const NodeId hot = h.leaves()[(u / 3) % h.leafCount()];
    for (int i = 0; i < 6; ++i) {
      batch.records.push_back({hot, unitStart(u, 900)});
    }
    for (int i = 0; i < 3; ++i) {
      batch.records.push_back(
          {h.leaves()[rng.below(h.leafCount())], unitStart(u, 900)});
    }
    ra = ada.step(batch);
    rs = sta.step(batch);
    if (!ra) continue;
    ASSERT_TRUE(rs);
    ASSERT_EQ(ra->shhh, rs->shhh) << "unit " << u;
    for (NodeId n : ra->shhh) {
      const auto sa = ada.seriesOf(n);
      const auto ss = sta.seriesOf(n);
      ASSERT_EQ(sa.size(), ss.size());
      for (std::size_t i = 0; i < sa.size(); ++i) {
        EXPECT_NEAR(sa[i], ss[i], 1e-9)
            << "node " << n << " idx " << i << " unit " << u;
      }
    }
  }
  EXPECT_GT(ada.splitCount() + ada.mergeCount(), 0u);
}

TEST(Ada, AnomalyOnFreshValueUsesExactWeight) {
  const auto h = HierarchyBuilder::balanced({2});
  const NodeId leaf = h.leaves()[0];
  AdaDetector ada(h, config(4, 4.0));
  for (TimeUnit u = 0; u < 6; ++u) ada.step(batchOf(u, {{leaf, 5}}));
  auto result = ada.step(batchOf(6, {{leaf, 42}}));
  ASSERT_TRUE(result);
  ASSERT_EQ(result->anomalies.size(), 1u);
  EXPECT_EQ(result->anomalies[0].node, leaf);
  EXPECT_DOUBLE_EQ(result->anomalies[0].actual, 42.0);
  EXPECT_GT(result->anomalies[0].ratio, 2.0);
}

TEST(Ada, MemoryStatsReflectHolders) {
  const auto h = HierarchyBuilder::balanced({2, 2});
  AdaDetector ada(h, config(4, 4.0, 1));
  const NodeId leaf = h.leaves()[0];
  for (TimeUnit u = 0; u < 4; ++u) ada.step(batchOf(u, {{leaf, 5}}));
  const auto stats = ada.memoryStats();
  // Holders: leaf + root residual -> 2 nodes * 2 rings.
  EXPECT_EQ(stats.seriesCount, 4u);
  // Refs: root + 2 level-2 nodes.
  EXPECT_EQ(stats.refSeriesCount, 6u);
  EXPECT_GT(stats.bytesEstimate, 0u);
}

TEST(Ada, QuietStreamKeepsOnlyRoot) {
  const auto h = HierarchyBuilder::balanced({2, 2});
  AdaDetector ada(h, config(3, 4.0));
  for (TimeUnit u = 0; u < 6; ++u) {
    auto result = ada.step(batchOf(u, {}));
    if (result) {
      EXPECT_TRUE(result->shhh.empty());
    }
  }
  EXPECT_TRUE(ada.seriesOf(h.root()).size() > 0);
}

}  // namespace
}  // namespace tiresias
