#!/usr/bin/env bash
# Chaos smoke for the fault-tolerant serving surface, end to end through
# the real CLI binary: serve --listen under an armed --fault-plan, fed by
# `send --stream-name --retries`, checkpointed, killed with SIGKILL,
# restarted with --restore on the same port, and finished by a resuming
# client — the per-stream totals must be identical to a clean, fault-free
# run over the same trace.
#
# Usage: cli_chaos_serve.sh <tiresias_cli> <scratch-dir>
#
# Determinism notes: the phase-1 trace is cut at a timeunit boundary, so
# everything the first server processes is a whole-unit prefix of the
# reference run; the unit-granular commit protocol then guarantees the
# resumed phase-2 stream replays exactly from the last committed
# boundary. A second declared stream (s1) never connects, which keeps the
# first server alive (listen mode drains when every stream ends) so the
# SIGKILL always lands mid-run.
set -u

CLI="$1"
DIR="$2"
UNIT=900  # ccd-net test-scale timeunit seconds (cut boundary below)

PID=
SENDPID=
fail() {
  echo "FAIL: $*" >&2
  [ -n "${PID:-}" ] && kill -9 "$PID" 2>/dev/null
  [ -n "${SENDPID:-}" ] && kill -9 "$SENDPID" 2>/dev/null
  exit 1
}

# Poll for a sed-extractable value in a file within ~10s.
await() {  # await <file> <sed-expr> -> echoes the value
  local file="$1" expr="$2" v="" i
  for i in $(seq 200); do
    v=$(sed -n "$expr" "$file" 2>/dev/null | head -1)
    [ -n "$v" ] && break
    sleep 0.05
  done
  echo "$v"
}

await_exit() {  # await_exit <pid> <what> <log>
  local pid="$1" what="$2" log="$3"
  local deadline=$((SECONDS + 90))
  while kill -0 "$pid" 2>/dev/null; do
    [ "$SECONDS" -ge "$deadline" ] && fail "$what did not exit (see $log)"
    sleep 0.1
  done
}

stream_totals() {  # stream_totals <log> -> "units records instances anomalies"
  sed -n 's/.*stream s0: units=\([0-9]*\) records=\([0-9]*\) instances=\([0-9]*\) anomalies=\([0-9]*\).*/\1 \2 \3 \4/p' \
      "$1" | head -1
}

rm -rf "$DIR"
mkdir -p "$DIR" || fail "cannot create scratch dir $DIR"
CKPT="$DIR/ckpt/checkpoint.tsnap"

# A 2-day test-scale trace with one leaf spiked after the warmup window.
LEAF="SHO/VHO0/IO1/CO1/DSLAM1"
"$CLI" generate --dataset ccd-net --scale test --days 2 --seed 3 \
    --spike "$LEAF:40:3:60" --out "$DIR/trace.csv" \
    >"$DIR/generate.log" 2>&1 || fail "generate failed"
records=$(sed -n 's/^wrote \([0-9]*\) records.*/\1/p' "$DIR/generate.log")
[ -n "$records" ] || fail "generate did not report a record count"

# Phase-1 prefix, cut exactly at a unit boundary (unit 96 of 192) so the
# mid-stream end-of-stream commits only whole units.
awk -F, -v u="$UNIT" 'int($NF / u) < 96' "$DIR/trace.csv" \
    >"$DIR/trace_head.csv"
[ -s "$DIR/trace_head.csv" ] || fail "phase-1 trace cut came out empty"

# ---- Reference: the same trace, clean connection, no faults ----
"$CLI" serve --listen 0 --loopback --stream-names s0 \
    --window 16 --theta 4 >"$DIR/serve_ref.log" 2>&1 &
PID=$!
port=$(await "$DIR/serve_ref.log" 's/.*ingest=\([0-9]*\).*/\1/p')
[ -n "$port" ] || fail "reference serve never listened"
timeout 60 "$CLI" send --to "127.0.0.1:$port" --trace "$DIR/trace.csv" \
    --dataset ccd-net --scale test --stream-name s0 \
    >"$DIR/send_ref.log" 2>&1 || fail "reference send failed"
await_exit "$PID" "reference serve" "$DIR/serve_ref.log"
wait "$PID" || fail "reference serve exited non-zero"
PID=
ref=$(stream_totals "$DIR/serve_ref.log")
[ -n "$ref" ] || fail "reference run printed no stream totals"

# ---- Chaos phase 1: faults armed, checkpoints on, then SIGKILL ----
# The port must survive the restart, so pick a fixed one (with retries:
# another suite may hold it).
started=
for try in 1 2 3 4 5; do
  port=$((21000 + (RANDOM % 20000)))
  "$CLI" serve --listen "$port" --loopback --stream-names s0,s1 \
      --window 16 --theta 4 --read-timeout-ms 120000 \
      --checkpoint-dir "$DIR/ckpt" --checkpoint-every 3 \
      --fault-plan "seed=5,disconnect=0.005,short-read=0.1,eintr=0.1" \
      >"$DIR/serve_chaos1.log" 2>&1 &
  PID=$!
  up=$(await "$DIR/serve_chaos1.log" 's/.*ingest=\([0-9]*\).*/\1/p')
  if [ -n "$up" ]; then started=1; break; fi
  kill -9 "$PID" 2>/dev/null
  wait "$PID" 2>/dev/null
done
[ -n "$started" ] || fail "chaos serve never came up on a fixed port"

# The client retries through the injected disconnects until the whole
# phase-1 prefix (minus the replayed-from-commit parts) is delivered.
timeout 120 "$CLI" send --to "127.0.0.1:$port" \
    --trace "$DIR/trace_head.csv" --dataset ccd-net --scale test \
    --stream-name s0 --frame 512 --retries 200 --backoff-ms 20 \
    >"$DIR/send_chaos1.log" 2>&1 || fail "phase-1 send gave up"

# Wait for a checkpoint of the phase-1 progress, then crash the server.
for i in $(seq 200); do
  [ -s "$CKPT" ] && break
  sleep 0.05
done
[ -s "$CKPT" ] || fail "no checkpoint appeared (see $DIR/serve_chaos1.log)"
kill -9 "$PID" || fail "could not SIGKILL the chaos serve"
wait "$PID" 2>/dev/null
PID=
# A SIGKILL mid-write may leave a temp snapshot; the atomic rename
# protocol means the published file is always whole.
rm -f "$CKPT.tmp"

# ---- Chaos phase 2: restore on the same port, client resumes ----
# No fault plan (the restored leg runs clean); a finite read timeout so
# the never-connecting s1 ends the drain instead of wedging it.
"$CLI" serve --listen "$port" --loopback --stream-names s0,s1 \
    --window 16 --theta 4 --read-timeout-ms 15000 \
    --checkpoint-dir "$DIR/ckpt" --restore \
    >"$DIR/serve_chaos2.log" 2>&1 &
PID=$!
up=$(await "$DIR/serve_chaos2.log" 's/.*ingest=\([0-9]*\).*/\1/p')
[ -n "$up" ] || fail "restored serve never listened (see $DIR/serve_chaos2.log)"
grep -q "restored 2 streams" "$DIR/serve_chaos2.log" \
    || fail "restore line missing"

timeout 120 "$CLI" send --to "127.0.0.1:$port" --trace "$DIR/trace.csv" \
    --dataset ccd-net --scale test --stream-name s0 \
    --retries 50 --backoff-ms 100 >"$DIR/send_chaos2.log" 2>&1 \
    || fail "phase-2 send failed (see $DIR/send_chaos2.log)"
await_exit "$PID" "restored serve" "$DIR/serve_chaos2.log"
wait "$PID" || fail "restored serve exited non-zero"
PID=
# The restored server must have answered the reconnect with a real
# committed position (resumes >= 1 in the net summary).
grep -Eq "net: .*resumes=[1-9]" "$DIR/serve_chaos2.log" \
    || fail "restored serve never resumed a stream (see $DIR/serve_chaos2.log)"

# ---- The contract: identical per-stream totals, faults and all ----
got=$(stream_totals "$DIR/serve_chaos2.log")
[ -n "$got" ] || fail "restored run printed no stream totals"
[ "$got" = "$ref" ] \
    || fail "totals diverged: reference '$ref' vs chaos '$got'"

echo "PASS"
exit 0
