// Serving-surface output side: the anomaly broadcaster and the bounded
// write primitive beneath it. The load-bearing property is the
// slow-consumer policy from serving.h — a subscriber that connects and
// never reads must be *dropped*, never allowed to wedge publish() (and
// with it the engine worker calling the result sink) behind a full
// socket buffer. These tests pin that: a timed writeAll fails instead of
// blocking, a non-draining subscriber is evicted within a bounded number
// of publishes, and a draining one keeps receiving intact lines.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <string>
#include <thread>

#include "net/tcp.h"
#include "serve/serving.h"

namespace tiresias {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kTestTimeoutMs = 10'000;

long long elapsedMs(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               start)
      .count();
}

/// Cap a socket buffer so "peer never reads" fills it after a few KB
/// instead of after megabytes of kernel autotuning headroom.
void shrinkBuffer(int fd, int option) {
  const int bytes = 8 * 1024;
  ASSERT_EQ(
      ::setsockopt(fd, SOL_SOCKET, option, &bytes, sizeof(bytes)), 0);
}

/// Read from `conn` until `want` bytes arrived (bounded by the test
/// timeout), appending to `out`.
bool readBytes(net::TcpConn& conn, std::size_t want, std::string& out) {
  char buf[4096];
  while (out.size() < want) {
    std::size_t got = 0;
    const net::IoStatus st =
        conn.readSome(buf, sizeof(buf), got, kTestTimeoutMs);
    if (st != net::IoStatus::kOk) return false;
    out.append(buf, got);
  }
  return true;
}

TEST(TcpConnWriteAll, TimesOutInsteadOfBlockingOnFullBuffer) {
  net::TcpListener listener;
  ASSERT_TRUE(listener.listen(0, /*loopbackOnly=*/true))
      << listener.lastError();
  net::TcpConn client = net::connectLoopback(listener.port(), kTestTimeoutMs);
  ASSERT_TRUE(client.valid());
  net::TcpConn server = listener.accept(kTestTimeoutMs);
  ASSERT_TRUE(server.valid());
  shrinkBuffer(server.fd(), SO_SNDBUF);
  shrinkBuffer(client.fd(), SO_RCVBUF);

  // The client never reads, so in-flight capacity is the (shrunken)
  // kernel buffers; repeated writes must start failing on the deadline
  // rather than parking this thread forever.
  const std::string chunk(256 * 1024, 'x');
  const auto start = Clock::now();
  bool timedOut = false;
  for (int i = 0; i < 200 && !timedOut; ++i) {
    timedOut = !server.writeAll(chunk.data(), chunk.size(), /*timeoutMs=*/100);
  }
  EXPECT_TRUE(timedOut);
  // Generous bound: the point is "returns", not a precise deadline.
  EXPECT_LT(elapsedMs(start), kTestTimeoutMs);
}

TEST(JsonLineBroadcaster, DeliversLinesToDrainingSubscriber) {
  serve::JsonLineBroadcaster bc;
  ASSERT_TRUE(bc.start(0, /*loopbackOnly=*/true)) << bc.error();
  net::TcpConn sub = net::connectLoopback(bc.port(), kTestTimeoutMs);
  ASSERT_TRUE(sub.valid());
  const auto start = Clock::now();
  while (bc.subscribers() < 1 && elapsedMs(start) < kTestTimeoutMs) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(bc.subscribers(), 1u);

  const std::string line = "{\"stream\":\"s\",\"unit\":1}";
  bc.publish(line);
  bc.publish(line);
  std::string got;
  ASSERT_TRUE(readBytes(sub, 2 * (line.size() + 1), got));
  EXPECT_EQ(got, line + "\n" + line + "\n");
  EXPECT_EQ(bc.subscribers(), 1u);  // a reading subscriber stays
  bc.stop();
}

TEST(JsonLineBroadcaster, DropsNonDrainingSubscriberWithinDeadline) {
  serve::JsonLineBroadcaster bc;
  ASSERT_TRUE(bc.start(0, /*loopbackOnly=*/true, /*writeTimeoutMs=*/100))
      << bc.error();
  net::TcpConn sub = net::connectLoopback(bc.port(), kTestTimeoutMs);
  ASSERT_TRUE(sub.valid());
  shrinkBuffer(sub.fd(), SO_RCVBUF);
  auto start = Clock::now();
  while (bc.subscribers() < 1 && elapsedMs(start) < kTestTimeoutMs) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(bc.subscribers(), 1u);

  // The subscriber never reads. Once the socket buffers fill, the next
  // publish must hit the write deadline and evict it — publish() itself
  // returning (rather than blocking on send) IS the regression under
  // test; the engine's result sink calls it from worker threads.
  const std::string line(64 * 1024, 'a');
  start = Clock::now();
  bool dropped = false;
  for (int i = 0; i < 400 && !dropped; ++i) {
    bc.publish(line);
    dropped = bc.subscribers() == 0;
  }
  EXPECT_TRUE(dropped);
  EXPECT_LT(elapsedMs(start), kTestTimeoutMs);
  EXPECT_EQ(bc.accepted(), 1u);
  bc.stop();
}

}  // namespace
}  // namespace tiresias
