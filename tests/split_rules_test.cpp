// Unit tests for the §V-B4 split-ratio heuristics.
#include <gtest/gtest.h>

#include <cmath>

#include "core/split_rules.h"

namespace tiresias {
namespace {

TEST(SplitRules, UniformIgnoresHistory) {
  SplitRuleEngine engine(SplitRule::kUniform, 0.4);
  engine.observeInstance({{1, 100.0}, {2, 1.0}});
  const auto r = engine.ratios({1, 2, 3});
  for (double v : r) EXPECT_DOUBLE_EQ(v, 1.0 / 3.0);
}

TEST(SplitRules, LastTimeUnitUsesMostRecentOnly) {
  SplitRuleEngine engine(SplitRule::kLastTimeUnit, 0.4);
  engine.observeInstance({{1, 100.0}, {2, 100.0}});
  engine.observeInstance({{1, 30.0}, {2, 10.0}});
  const auto r = engine.ratios({1, 2});
  EXPECT_DOUBLE_EQ(r[0], 0.75);
  EXPECT_DOUBLE_EQ(r[1], 0.25);
  // A node absent from the last unit weighs zero.
  EXPECT_DOUBLE_EQ(engine.weightOf(9), 0.0);
}

TEST(SplitRules, LongTermHistoryAccumulates) {
  SplitRuleEngine engine(SplitRule::kLongTermHistory, 0.4);
  engine.observeInstance({{1, 10.0}, {2, 30.0}});
  engine.observeInstance({{1, 30.0}});
  const auto r = engine.ratios({1, 2});
  EXPECT_DOUBLE_EQ(r[0], 40.0 / 70.0);
  EXPECT_DOUBLE_EQ(r[1], 30.0 / 70.0);
}

TEST(SplitRules, EwmaSmoothsAndDecays) {
  const double a = 0.5;
  SplitRuleEngine engine(SplitRule::kEwma, a);
  engine.observeInstance({{1, 8.0}});
  EXPECT_DOUBLE_EQ(engine.weightOf(1), a * 8.0);
  engine.observeInstance({{1, 4.0}});
  EXPECT_DOUBLE_EQ(engine.weightOf(1), a * 4.0 + (1 - a) * a * 8.0);
  // Two untouched instances: lazy decay applies (1-a)^2.
  const double before = engine.weightOf(1);
  engine.observeInstance({});
  engine.observeInstance({});
  EXPECT_NEAR(engine.weightOf(1), before * (1 - a) * (1 - a), 1e-12);
}

TEST(SplitRules, FallbackToUniformWhenNoHistory) {
  SplitRuleEngine engine(SplitRule::kLongTermHistory, 0.4);
  const auto r = engine.ratios({5, 6});
  EXPECT_DOUBLE_EQ(r[0], 0.5);
  EXPECT_DOUBLE_EQ(r[1], 0.5);
}

TEST(SplitRules, RatiosAlwaysSumToOne) {
  for (SplitRule rule : {SplitRule::kUniform, SplitRule::kLastTimeUnit,
                         SplitRule::kLongTermHistory, SplitRule::kEwma}) {
    SplitRuleEngine engine(rule, 0.3);
    engine.observeInstance({{1, 3.0}, {3, 9.0}});
    engine.observeInstance({{1, 1.0}, {2, 2.0}});
    const auto r = engine.ratios({1, 2, 3, 4});
    double total = 0.0;
    for (double v : r) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-12) << splitRuleName(rule);
  }
}

TEST(SplitRules, NamesAreStable) {
  EXPECT_STREQ(splitRuleName(SplitRule::kUniform), "Uniform");
  EXPECT_STREQ(splitRuleName(SplitRule::kLastTimeUnit), "Last-Time-Unit");
  EXPECT_STREQ(splitRuleName(SplitRule::kLongTermHistory),
               "Long-Term-History");
  EXPECT_STREQ(splitRuleName(SplitRule::kEwma), "EWMA");
}

TEST(SplitRules, TrackedNodesCountsState) {
  SplitRuleEngine engine(SplitRule::kLongTermHistory, 0.4);
  EXPECT_EQ(engine.trackedNodes(), 0u);
  engine.observeInstance({{1, 1.0}, {2, 1.0}});
  EXPECT_EQ(engine.trackedNodes(), 2u);
}

}  // namespace
}  // namespace tiresias
