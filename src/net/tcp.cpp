#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/faultinject.h"

namespace tiresias::net {

namespace {

using faultinject::Decision;

/// Remaining milliseconds of a deadline started `elapsed` ago; negative
/// total means "forever" (poll takes -1).
int remainingMs(int totalMs, std::chrono::steady_clock::time_point start) {
  if (totalMs < 0) return -1;
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  const long long left = static_cast<long long>(totalMs) - elapsed;
  return left > 0 ? static_cast<int>(left) : 0;
}

/// poll() one fd for `events`, EINTR-retrying against the caller's
/// deadline. Returns >0 ready, 0 timeout, <0 error.
int pollOne(int fd, short events, int timeoutMs) {
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int rc = ::poll(&p, 1, remainingMs(timeoutMs, start));
    if (rc >= 0) return rc;
    if (errno != EINTR) return -1;
  }
}

void setCloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

/// An injected peer stall: sleep, but never past the caller's deadline
/// (the stall models a slow peer, not a broken timeout).
void injectStall(int stallMs, int timeoutMs,
                 std::chrono::steady_clock::time_point start) {
  int ms = stallMs;
  const int left = remainingMs(timeoutMs, start);
  if (left >= 0 && left < ms) ms = left;
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

void ignoreSigpipe() {
  // Once per process is enough; a static initializer keeps it race-free
  // without the callers having to coordinate.
  static std::once_flag once;
  std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpConn::shutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

IoStatus TcpConn::readSome(void* dst, std::size_t n, std::size_t& got,
                           int timeoutMs) {
  got = 0;
  if (fd_ < 0) return IoStatus::kError;
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    const Decision fault = faultinject::decide(faultinject::Point::kRecv);
    if (fault.stallMs > 0) injectStall(fault.stallMs, timeoutMs, start);
    if (fault.kind == Decision::Kind::kDisconnect) {
      close();
      return IoStatus::kError;
    }
    const int ready = pollOne(fd_, POLLIN, remainingMs(timeoutMs, start));
    if (ready == 0) return IoStatus::kTimeout;
    if (ready < 0) return IoStatus::kError;
    if (fault.kind == Decision::Kind::kEintr) {
      continue;  // injected interruption: re-poll against the deadline
    }
    const std::size_t want =
        fault.kind == Decision::Kind::kShortIo ? std::size_t{1} : n;
    for (;;) {
      const ssize_t rc = ::recv(fd_, dst, want, 0);
      if (rc > 0) {
        got = static_cast<std::size_t>(rc);
        return IoStatus::kOk;
      }
      if (rc == 0) return IoStatus::kEof;
      if (errno != EINTR) return IoStatus::kError;
    }
  }
}

IoStatus TcpConn::readExact(void* dst, std::size_t n, std::size_t& got,
                            int timeoutMs) {
  got = 0;
  auto* p = static_cast<std::uint8_t*>(dst);
  const auto start = std::chrono::steady_clock::now();
  while (got < n) {
    std::size_t chunk = 0;
    const IoStatus st =
        readSome(p + got, n - got, chunk, remainingMs(timeoutMs, start));
    if (st == IoStatus::kOk) {
      got += chunk;
      continue;
    }
    if (st == IoStatus::kEof && got == 0) return IoStatus::kEof;
    // EOF mid-buffer is a truncation, not an orderly end.
    return st == IoStatus::kEof ? IoStatus::kError : st;
  }
  return IoStatus::kOk;
}

bool TcpConn::writeAll(const void* src, std::size_t n, int timeoutMs) {
  if (fd_ < 0) return false;
  const auto* p = static_cast<const std::uint8_t*>(src);
  std::size_t sent = 0;
  const auto start = std::chrono::steady_clock::now();
  while (sent < n) {
    const Decision fault = faultinject::decide(faultinject::Point::kSend);
    if (fault.stallMs > 0) injectStall(fault.stallMs, timeoutMs, start);
    if (fault.kind == Decision::Kind::kDisconnect) {
      close();
      return false;
    }
    if (fault.kind == Decision::Kind::kEintr) {
      if (remainingMs(timeoutMs, start) == 0) return false;
      continue;  // injected interruption: retry the chunk
    }
    const std::size_t chunk =
        fault.kind == Decision::Kind::kShortIo ? std::size_t{1} : n - sent;
    const ssize_t rc =
        ::send(fd_, p + sent, chunk, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Socket buffer full: wait for drain, bounded by the deadline. A
      // peer that never drains surfaces as `false` here, not as a
      // blocked thread.
      const int left = remainingMs(timeoutMs, start);
      if (left == 0 || pollOne(fd_, POLLOUT, left) <= 0) return false;
      continue;
    }
    return false;
  }
  return true;
}

TcpListener::~TcpListener() { close(); }

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  port_ = 0;
}

bool TcpListener::listen(std::uint16_t port, bool loopbackOnly) {
  ignoreSigpipe();
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  setCloexec(fd_);
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      loopbackOnly ? htonl(INADDR_LOOPBACK) : htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    error_ = std::string("bind: ") + std::strerror(errno);
    close();
    return false;
  }
  if (::listen(fd_, 64) != 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    close();
    return false;
  }
  // Non-blocking so concurrent accepts can race benignly: both pollers
  // may wake for one connection, the loser's accept() returns EAGAIN and
  // it re-polls instead of blocking past its deadline.
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
  return true;
}

TcpConn TcpListener::accept(int timeoutMs) {
  const auto start = std::chrono::steady_clock::now();
  while (fd_ >= 0) {
    const int left = remainingMs(timeoutMs, start);
    const int ready = pollOne(fd_, POLLIN, left);
    if (ready <= 0) return TcpConn();  // timeout or listener error
    const Decision fault = faultinject::decide(faultinject::Point::kAccept);
    int conn = -1;
    if (fault.kind == Decision::Kind::kAcceptFail) {
      errno = EMFILE;  // injected descriptor exhaustion
    } else {
      conn = ::accept(fd_, nullptr, nullptr);
    }
    if (conn >= 0) {
      setCloexec(conn);
      return TcpConn(conn);
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      continue;  // lost the race / transient: re-poll within the deadline
    }
    if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
        errno == ENOMEM) {
      // Resource exhaustion is a load condition, not a broken listener:
      // descriptors and buffers free up as other connections close. Back
      // off briefly within the deadline and keep serving.
      int backoff = 10;
      const int remain = remainingMs(timeoutMs, start);
      if (remain >= 0 && remain < backoff) backoff = remain;
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      }
      if (remainingMs(timeoutMs, start) == 0) return TcpConn();
      continue;
    }
    return TcpConn();
  }
  return TcpConn();
}

TcpConn connectTo(const std::string& host, std::uint16_t port,
                  int timeoutMs) {
  ignoreSigpipe();
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string portStr = std::to_string(port);
  if (::getaddrinfo(host.c_str(), portStr.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    return TcpConn();
  }
  int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    return TcpConn();
  }
  setCloexec(fd);
  // Non-blocking connect + poll(POLLOUT) bounds the handshake.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
    ::close(fd);
    return TcpConn();
  }
  if (rc != 0) {
    if (pollOne(fd, POLLOUT, timeoutMs) <= 0) {
      ::close(fd);
      return TcpConn();
    }
    int soErr = 0;
    socklen_t len = sizeof(soErr);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soErr, &len) != 0 ||
        soErr != 0) {
      ::close(fd);
      return TcpConn();
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking for the data phase
  return TcpConn(fd);
}

TcpConn connectLoopback(std::uint16_t port, int timeoutMs) {
  return connectTo("127.0.0.1", port, timeoutMs);
}

}  // namespace tiresias::net
