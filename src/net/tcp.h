// Minimal POSIX TCP layer for the serving surface.
//
// The engine's network-facing pieces (SocketSource ingest, the anomaly
// JSON-lines broadcaster, the stats poll endpoint) all sit on these two
// RAII types. Design constraints, in order:
//
//   - Never crash on peer behavior. SIGPIPE is ignored process-wide
//     (ignoreSigpipe, also belt-and-braces MSG_NOSIGNAL on every send);
//     every read distinguishes EOF / timeout / error so callers can
//     degrade instead of aborting.
//   - Every blocking call is bounded by a poll()-based timeout and
//     retries EINTR, so a stalled or vanished peer can never wedge an
//     ingest thread forever.
//   - Listeners are non-blocking + poll so several threads may accept
//     from one shared listener without an accept() race parking a thread
//     past its deadline.
//
// IPv4 only (the serving surface is an internal ingest port, not a
// general web server); port 0 binds an ephemeral port and port() reports
// the actual one, which tests and the CLI print for scripting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace tiresias::net {

/// Ignore SIGPIPE process-wide (idempotent). A peer closing its read end
/// must surface as a write error, never a signal; every server entry
/// point calls this before touching a socket.
void ignoreSigpipe();

/// Outcome of a bounded read.
enum class IoStatus : std::uint8_t {
  kOk = 0,   // >= 1 byte transferred
  kEof,      // orderly peer shutdown
  kTimeout,  // deadline elapsed with no data
  kError,    // socket error (connection reset, bad fd, ...)
};

/// One connected TCP socket (RAII over the fd). Movable, not copyable.
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(int fd) : fd_(fd) {}
  ~TcpConn() { close(); }

  TcpConn(TcpConn&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpConn& operator=(TcpConn&& other) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Read up to `n` bytes with a deadline. `got` is the byte count on
  /// kOk (>= 1). timeoutMs < 0 waits forever; 0 polls. EINTR retries.
  IoStatus readSome(void* dst, std::size_t n, std::size_t& got,
                    int timeoutMs);

  /// Read exactly `n` bytes (looping readSome). On kOk all bytes landed;
  /// kEof means the peer closed cleanly *before the first byte* —
  /// mid-buffer EOF degrades to kError (a truncated frame is structural,
  /// not an orderly end). `got` reports bytes read in every case.
  IoStatus readExact(void* dst, std::size_t n, std::size_t& got,
                     int timeoutMs);

  /// Write all of `n` bytes (MSG_NOSIGNAL, EINTR retry, short-write
  /// loop) within `timeoutMs` (< 0 waits forever). Sends never block the
  /// calling thread directly: each chunk goes out MSG_DONTWAIT and a
  /// full socket buffer is waited out with poll(POLLOUT) against the
  /// deadline, so the fd's own blocking mode is irrelevant. False on any
  /// error or on deadline expiry; either way the connection should be
  /// dropped (a timed-out peer may have received a torn tail).
  bool writeAll(const void* src, std::size_t n, int timeoutMs = -1);

  /// Half-close the write side (signals end-of-stream to the peer while
  /// reads stay open).
  void shutdownWrite();

  void close();

 private:
  int fd_ = -1;
};

/// Listening socket (non-blocking, SO_REUSEADDR). Thread-safe accept:
/// any number of threads may block in accept() on one listener.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Bind + listen on `port` (0 = ephemeral; see port()). `loopbackOnly`
  /// binds 127.0.0.1 instead of INADDR_ANY. False on failure (errno
  /// formatted into lastError()).
  bool listen(std::uint16_t port, bool loopbackOnly = false);

  bool valid() const { return fd_ >= 0; }
  /// Actual bound port (resolves ephemeral binds), 0 when not listening.
  std::uint16_t port() const { return port_; }
  const std::string& lastError() const { return error_; }

  /// Accept one connection within `timeoutMs` (< 0 waits forever). An
  /// invalid TcpConn means timeout or a transient accept failure — the
  /// listener stays usable either way. Transient errno (EINTR,
  /// ECONNABORTED, and descriptor/buffer exhaustion: EMFILE, ENFILE,
  /// ENOBUFS, ENOMEM) never ends the loop early: exhaustion backs off
  /// briefly inside the deadline so closes elsewhere can free resources.
  TcpConn accept(int timeoutMs);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::string error_;
};

/// Blocking connect to `host:port` with a deadline. `host` is an IPv4
/// literal or a name resolvable by getaddrinfo. Invalid TcpConn on
/// failure.
TcpConn connectTo(const std::string& host, std::uint16_t port,
                  int timeoutMs);

/// connectTo("127.0.0.1", ...) — the shape tests and the bench use.
TcpConn connectLoopback(std::uint16_t port, int timeoutMs);

}  // namespace tiresias::net
