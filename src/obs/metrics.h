// Engine-wide metrics: sharded lock-free counters and log2 latency
// histograms, merged on read.
//
// The paper judges the detection system on per-unit runtime and detection
// latency, so the serving engine must be able to answer "where is time
// going" — per stage, as a distribution, while running — without slowing
// the hot path it measures. Design:
//
//   - A MetricsRegistry holds one shard per recording thread (workers,
//     ingest threads, the sampler). A shard is a cache-line-aligned block
//     of relaxed atomics: per-stage fixed-bucket log2 histograms plus
//     sum/max. The record path is branch + bit_width + three relaxed
//     fetch_adds and one bounded CAS loop for the max — no mutex, no
//     allocation, TSan-clean by construction (every slot is atomic).
//   - Readers (stats() pollers, the CLI metrics emitter) merge all shards
//     into a MetricsSnapshot. Sample counts are derived from the bucket
//     sums, so a snapshot is always self-consistent with its own
//     percentiles; concurrent recording can only make a snapshot slightly
//     stale, never torn.
//   - Stages are a closed enum, so recording indexes dense arrays — no
//     string hashing on the hot path. Latency stages hold nanosecond
//     durations; gauges hold sampled values (queue depths, bytes).
//
// Threads bind a shard id once (bindThreadShard); unbound threads fall
// back to shard 0, which is safe (atomics) just potentially contended.
// Overhead is measured, not assumed: BENCH_engine.json commits a
// metrics-on vs metrics-off delta (<2% target, uniform workers=1).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace tiresias::obs {

/// Instrumented latency stages, one histogram each. Names (stageName) are
/// the stable identifiers used in JSON output and the CLI table.
enum class Stage : std::uint8_t {
  kSourceFetch = 0,    // RecordSource::nextBatch (the raw source pull)
  kBatchFlush,         // TimeUnitBatcher::next (one timeunit assembled)
  kDispatchWait,       // worker blocked on the ready queue (idle time)
  kRunSlice,           // one worker claim: up to runBudget units
  kStaObserve,         // StaDetector::step, one timeunit
  kAdaObserve,         // AdaDetector::step, one timeunit
  kUpdateHierarchies,  // detector stage: SHHH update (Table III row 2)
  kCreateSeries,       // detector stage: time-series upkeep (row 3)
  kDetectAnomalies,    // detector stage: forecast + judge (row 4)
  kReportSink,         // result sink call (anomaly store insert)
  kCheckpointSave,     // DetectionEngine::checkpoint (incl. quiesce)
  kCheckpointRestore,  // DetectionEngine::restoreFrom
  kHibernateRestore,   // wake of a hibernated stream on its next record
  kUnitLatency,        // end-to-end: unit enqueued -> unit processed
  kStageCount
};
inline constexpr std::size_t kStageCount =
    static_cast<std::size_t>(Stage::kStageCount);
const char* stageName(Stage stage);

/// Sampled gauges (value histograms + last-seen), fed by the engine's
/// periodic sampler: queue pressure and residency, as distributions.
enum class Gauge : std::uint8_t {
  kReadyStreams = 0,     // ready-queue depth (runnable streams)
  kQueuedUnits,          // units queued across all streams
  kMaxStreamQueueDepth,  // deepest per-stream FIFO
  kWorkspaceBytes,       // total resident detect-workspace bytes
  kBusiestStreamPpm,     // busiest stream's share of processed units, ppm
  kResidentStreams,      // streams with live in-memory pipeline state
  kHibernatedStreams,    // streams paged out to hibernation snapshots
  kNetReconnects,        // named-stream reconnections accepted
  kNetResumes,           // v2 handshakes answered with a real resume point
  kNetShedConnections,   // connections refused at accept (overload shed)
  kNetInjectedFaults,    // fault-injection decisions that fired (chaos runs)
  kGaugeCount
};
inline constexpr std::size_t kGaugeCount =
    static_cast<std::size_t>(Gauge::kGaugeCount);
const char* gaugeName(Gauge gauge);

/// Merged view of one histogram. Bucket b holds values whose bit_width is
/// b: bucket 0 is exactly {0}, bucket b >= 1 covers [2^(b-1), 2^b). The
/// last bucket absorbs everything wider (2^38 ns ~= 4.6 min — any real
/// latency sample fits below it).
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 40;

  std::uint64_t count = 0;  // == sum of buckets (self-consistent)
  std::uint64_t sum = 0;    // of raw values (advisory under concurrency)
  std::uint64_t max = 0;    // exact largest recorded value
  std::array<std::uint64_t, kBuckets> buckets{};

  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// containing bucket, clamped to the exact max. 0 when empty.
  double percentile(double q) const;
  double mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
};

/// One stage row of a MetricsSnapshot, in seconds.
struct StageStats {
  std::string name;
  std::uint64_t count = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double totalSeconds = 0.0;
};

/// One gauge row, in the gauge's native unit (units, bytes, ppm).
struct GaugeStats {
  std::string name;
  std::uint64_t samples = 0;
  std::uint64_t last = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  std::uint64_t max = 0;
};

/// Point-in-time merge of a registry; what EngineStats carries.
struct MetricsSnapshot {
  bool enabled = false;
  /// Stages with at least one sample, in enum order.
  std::vector<StageStats> stages;
  /// Gauges with at least one sample, in enum order.
  std::vector<GaugeStats> gauges;

  const StageStats* stage(Stage s) const { return stage(stageName(s)); }
  const StageStats* stage(const std::string& name) const;
  const GaugeStats* gauge(Gauge g) const;
};

/// Binds the calling thread to `shard` for every subsequent record into
/// any registry (ids are clamped per registry, so a thread serving one
/// registry can safely touch another). Pool threads bind their dense
/// worker/ingest index once at startup; unbound threads record into
/// shard 0.
void bindThreadShard(std::size_t shard);
std::size_t threadShard();

class MetricsRegistry {
 public:
  static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;

  /// `shards` should cover every concurrently recording thread (workers +
  /// ingest + sampler + 1 for unbound callers); fewer only costs
  /// contention, never correctness.
  explicit MetricsRegistry(std::size_t shards);

  std::size_t shardCount() const { return shards_.size(); }

  /// Lock-free hot-path record: one duration sample into the calling
  /// thread's shard of `stage`.
  void recordLatencyNs(Stage stage, std::uint64_t ns);
  /// One sampled value into `gauge` (also refreshes the last-seen slot).
  void recordValue(Gauge gauge, std::uint64_t value);

  /// Merge every shard into a consistent snapshot (counts derived from
  /// bucket sums). Safe concurrently with recording.
  MetricsSnapshot snapshot() const;

  /// Merged raw histograms, for tests and custom exposition.
  HistogramSnapshot stageHistogram(Stage stage) const;
  HistogramSnapshot gaugeHistogram(Gauge gauge) const;

  /// Bucket index of a value (bit_width, clamped) — exposed so tests can
  /// assert the boundary mapping.
  static constexpr std::size_t bucketOf(std::uint64_t v) {
    const auto w = static_cast<std::size_t>(std::bit_width(v));
    return w < kBuckets ? w : kBuckets - 1;
  }

 private:
  /// All-atomic histogram cell. Single logical writer per shard in the
  /// engine wiring, but multiple writers are correct too (unbound threads
  /// share shard 0) — hence the CAS loop for max.
  struct Cell {
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  };
  /// One recording thread's block, cache-line aligned so neighboring
  /// shards never false-share.
  struct alignas(64) Shard {
    std::array<Cell, kStageCount> stages;
    std::array<Cell, kGaugeCount> gauges;
  };

  static void record(Cell& cell, std::uint64_t value);
  void mergeInto(HistogramSnapshot& out, std::size_t cellIndex,
                 bool gauge) const;

  std::vector<Shard> shards_;
  std::array<std::atomic<std::uint64_t>, kGaugeCount> lastGauge_{};
};

/// RAII latency span: records the scope's duration into `stage` on
/// destruction. A null registry makes it a no-op (metrics-off builds the
/// same code; the disabled path is one branch).
class StageSpan {
 public:
  StageSpan(MetricsRegistry* registry, Stage stage);
  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;
  ~StageSpan() { finish(); }

  /// Ends the span early (idempotent).
  void finish();

 private:
  MetricsRegistry* registry_;
  Stage stage_;
  std::int64_t startNs_;
};

/// `"name":{"count":..,"p50_us":..,"p90_us":..,"p99_us":..,"max_us":..,
/// "total_s":..}` pairs joined into one JSON object — the exposition
/// format shared by `tiresias_cli serve --metrics-out` and the bench
/// baselines.
std::string stagesJson(const MetricsSnapshot& snapshot);
/// Same for gauges: `"name":{"samples":..,"last":..,"p50":..,"p90":..,
/// "p99":..,"max":..}`.
std::string gaugesJson(const MetricsSnapshot& snapshot);

}  // namespace tiresias::obs
