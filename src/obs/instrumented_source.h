// InstrumentedSource — a RecordSource decorator that times every source
// pull into Stage::kSourceFetch.
//
// The engine wraps each registered stream's source with one of these when
// metrics are on, so the raw fetch cost (file read, CSV parse, generator
// work — or a remote source's round-trip) is separated from the batcher's
// unit-slicing on top of it: kSourceFetch nests inside kBatchFlush, and
// the gap between the two is pure batching cost.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "obs/metrics.h"
#include "stream/source.h"

namespace tiresias::obs {

class InstrumentedSource final : public RecordSource {
 public:
  /// `registry` must outlive the source (the engine owns both).
  InstrumentedSource(std::unique_ptr<RecordSource> inner,
                     MetricsRegistry* registry)
      : inner_(std::move(inner)), registry_(registry) {}

  std::optional<Record> next() override {
    StageSpan span(registry_, Stage::kSourceFetch);
    return inner_->next();
  }

  std::size_t nextBatch(std::vector<Record>& out, std::size_t max) override {
    StageSpan span(registry_, Stage::kSourceFetch);
    return inner_->nextBatch(out, max);
  }

  std::size_t skippedRecords() const override {
    return inner_->skippedRecords();
  }

  bool idle() const override { return inner_->idle(); }

  void noteResumePoint(Timestamp time) override {
    inner_->noteResumePoint(time);
  }

 private:
  std::unique_ptr<RecordSource> inner_;
  MetricsRegistry* registry_;
};

}  // namespace tiresias::obs
