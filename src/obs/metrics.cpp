#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <iterator>

#include "common/expect.h"
#include "common/timer.h"

namespace tiresias::obs {

namespace {

constexpr const char* kStageNames[] = {
    "ingest.source_fetch",        // kSourceFetch
    "ingest.batch_flush",         // kBatchFlush
    "scheduler.dispatch_wait",    // kDispatchWait
    "scheduler.run_slice",        // kRunSlice
    "detect.sta_observe",         // kStaObserve
    "detect.ada_observe",         // kAdaObserve
    "detect.update_hierarchies",  // kUpdateHierarchies
    "detect.create_series",       // kCreateSeries
    "detect.judge_anomalies",     // kDetectAnomalies
    "report.sink",                // kReportSink
    "checkpoint.save",            // kCheckpointSave
    "checkpoint.restore",         // kCheckpointRestore
    "persist.hibernate_restore",  // kHibernateRestore
    "engine.unit_latency",        // kUnitLatency
};

constexpr const char* kGaugeNames[] = {
    "gauge.ready_streams",           // kReadyStreams
    "gauge.queued_units",            // kQueuedUnits
    "gauge.max_stream_queue_depth",  // kMaxStreamQueueDepth
    "gauge.workspace_bytes",         // kWorkspaceBytes
    "gauge.busiest_stream_ppm",      // kBusiestStreamPpm
    "gauge.resident_streams",        // kResidentStreams
    "gauge.hibernated_streams",      // kHibernatedStreams
    "gauge.net_reconnects",          // kNetReconnects
    "gauge.net_resumes",             // kNetResumes
    "gauge.net_shed_connections",    // kNetShedConnections
    "gauge.net_injected_faults",     // kNetInjectedFaults
};

// A new Stage/Gauge value without a matching name row fails here, not at
// runtime.
static_assert(std::size(kStageNames) == kStageCount);
static_assert(std::size(kGaugeNames) == kGaugeCount);

thread_local std::size_t tThreadShard = 0;

/// Lower/upper value bounds of histogram bucket b (see HistogramSnapshot).
constexpr double bucketLower(std::size_t b) {
  return b == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << (b - 1));
}
constexpr double bucketUpper(std::size_t b) {
  return b == 0 ? 1.0 : static_cast<double>(std::uint64_t{1} << b);
}

}  // namespace

const char* stageName(Stage stage) {
  const auto i = static_cast<std::size_t>(stage);
  TIRESIAS_EXPECT(i < kStageCount, "stage out of range");
  return kStageNames[i];
}

const char* gaugeName(Gauge gauge) {
  const auto i = static_cast<std::size_t>(gauge);
  TIRESIAS_EXPECT(i < kGaugeCount, "gauge out of range");
  return kGaugeNames[i];
}

void bindThreadShard(std::size_t shard) { tThreadShard = shard; }

std::size_t threadShard() { return tThreadShard; }

double HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile sample (1-based, nearest-rank with
  // interpolation inside the containing bucket).
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const auto next = cumulative + buckets[b];
    if (static_cast<double>(next) >= rank) {
      const double into =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[b]);
      const double value =
          bucketLower(b) + into * (bucketUpper(b) - bucketLower(b));
      // The exact max bounds the estimate: the top bucket's upper edge can
      // overshoot the largest value actually recorded.
      return std::min(value, static_cast<double>(max));
    }
    cumulative = next;
  }
  return static_cast<double>(max);
}

MetricsRegistry::MetricsRegistry(std::size_t shards)
    : shards_(std::max<std::size_t>(shards, 1)) {}

void MetricsRegistry::record(Cell& cell, std::uint64_t value) {
  cell.sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = cell.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !cell.max.compare_exchange_weak(seen, value,
                                         std::memory_order_relaxed)) {
  }
  cell.buckets[bucketOf(value)].fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::recordLatencyNs(Stage stage, std::uint64_t ns) {
  std::size_t shard = tThreadShard;
  if (shard >= shards_.size()) shard = 0;
  record(shards_[shard].stages[static_cast<std::size_t>(stage)], ns);
}

void MetricsRegistry::recordValue(Gauge gauge, std::uint64_t value) {
  std::size_t shard = tThreadShard;
  if (shard >= shards_.size()) shard = 0;
  const auto g = static_cast<std::size_t>(gauge);
  record(shards_[shard].gauges[g], value);
  lastGauge_[g].store(value, std::memory_order_relaxed);
}

void MetricsRegistry::mergeInto(HistogramSnapshot& out, std::size_t cellIndex,
                                bool gauge) const {
  for (const Shard& shard : shards_) {
    const Cell& cell =
        gauge ? shard.gauges[cellIndex] : shard.stages[cellIndex];
    out.sum += cell.sum.load(std::memory_order_relaxed);
    out.max = std::max(out.max, cell.max.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < kBuckets; ++b) {
      out.buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
    }
  }
  // The count is derived from the merged buckets, never read separately:
  // whatever interleaving recording is mid-flight, the snapshot's
  // percentiles always describe exactly `count` samples.
  out.count = 0;
  for (const auto b : out.buckets) out.count += b;
}

HistogramSnapshot MetricsRegistry::stageHistogram(Stage stage) const {
  HistogramSnapshot out;
  mergeInto(out, static_cast<std::size_t>(stage), false);
  return out;
}

HistogramSnapshot MetricsRegistry::gaugeHistogram(Gauge gauge) const {
  HistogramSnapshot out;
  mergeInto(out, static_cast<std::size_t>(gauge), true);
  return out;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  out.enabled = true;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const auto hist = stageHistogram(static_cast<Stage>(i));
    if (hist.count == 0) continue;
    StageStats s;
    s.name = kStageNames[i];
    s.count = hist.count;
    s.p50 = hist.percentile(0.50) / 1e9;
    s.p90 = hist.percentile(0.90) / 1e9;
    s.p99 = hist.percentile(0.99) / 1e9;
    s.max = static_cast<double>(hist.max) / 1e9;
    s.totalSeconds = static_cast<double>(hist.sum) / 1e9;
    out.stages.push_back(std::move(s));
  }
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    const auto hist = gaugeHistogram(static_cast<Gauge>(i));
    if (hist.count == 0) continue;
    GaugeStats g;
    g.name = kGaugeNames[i];
    g.samples = hist.count;
    g.last = lastGauge_[i].load(std::memory_order_relaxed);
    g.p50 = hist.percentile(0.50);
    g.p90 = hist.percentile(0.90);
    g.p99 = hist.percentile(0.99);
    g.max = hist.max;
    out.gauges.push_back(std::move(g));
  }
  return out;
}

const StageStats* MetricsSnapshot::stage(const std::string& name) const {
  for (const auto& s : stages) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const GaugeStats* MetricsSnapshot::gauge(Gauge g) const {
  const char* name = gaugeName(g);
  for (const auto& entry : gauges) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

StageSpan::StageSpan(MetricsRegistry* registry, Stage stage)
    : registry_(registry),
      stage_(stage),
      startNs_(registry ? monotonicNanos() : 0) {}

void StageSpan::finish() {
  if (!registry_) return;
  const std::int64_t delta = monotonicNanos() - startNs_;
  registry_->recordLatencyNs(stage_,
                             delta > 0 ? static_cast<std::uint64_t>(delta)
                                       : 0);
  registry_ = nullptr;
}

std::string stagesJson(const MetricsSnapshot& snapshot) {
  std::string out = "{";
  char buf[256];
  for (std::size_t i = 0; i < snapshot.stages.size(); ++i) {
    const auto& s = snapshot.stages[i];
    std::snprintf(buf, sizeof buf,
                  "\"%s\":{\"count\":%llu,\"p50_us\":%.3f,\"p90_us\":%.3f,"
                  "\"p99_us\":%.3f,\"max_us\":%.3f,\"total_s\":%.6f}",
                  s.name.c_str(),
                  static_cast<unsigned long long>(s.count), s.p50 * 1e6,
                  s.p90 * 1e6, s.p99 * 1e6, s.max * 1e6, s.totalSeconds);
    if (i > 0) out += ",";
    out += buf;
  }
  out += "}";
  return out;
}

std::string gaugesJson(const MetricsSnapshot& snapshot) {
  std::string out = "{";
  char buf[256];
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& g = snapshot.gauges[i];
    std::snprintf(buf, sizeof buf,
                  "\"%s\":{\"samples\":%llu,\"last\":%llu,\"p50\":%.1f,"
                  "\"p90\":%.1f,\"p99\":%.1f,\"max\":%llu}",
                  g.name.c_str(),
                  static_cast<unsigned long long>(g.samples),
                  static_cast<unsigned long long>(g.last), g.p50, g.p90,
                  g.p99, static_cast<unsigned long long>(g.max));
    if (i > 0) out += ",";
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace tiresias::obs
