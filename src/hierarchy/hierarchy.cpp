#include "hierarchy/hierarchy.h"

#include "common/expect.h"

namespace tiresias {

NodeIdRange Hierarchy::nodesAtDepth(int d) const {
  if (d < 1 || d > height_) return {};
  return {levelStart_[static_cast<std::size_t>(d - 1)],
          levelStart_[static_cast<std::size_t>(d)]};
}

std::string Hierarchy::path(NodeId n, char sep) const {
  TIRESIAS_EXPECT(n < size(), "node id out of range");
  std::vector<NodeId> chain;
  for (NodeId cur = n; cur != kInvalidNode; cur = parent_[cur]) {
    chain.push_back(cur);
  }
  std::string out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (!out.empty()) out += sep;
    out += name_[*it];
  }
  return out;
}

NodeId Hierarchy::childNamed(NodeId n, std::string_view name) const {
  for (NodeId c : children(n)) {
    if (name_[c] == name) return c;
  }
  return kInvalidNode;
}

NodeId Hierarchy::find(std::string_view path, char sep) const {
  NodeId cur = root();
  bool first = true;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t next = path.find(sep, pos);
    const std::string_view comp =
        next == std::string_view::npos ? path.substr(pos)
                                       : path.substr(pos, next - pos);
    if (!comp.empty()) {
      // Accept both absolute paths (leading root name, as produced by
      // path()) and paths relative to the root.
      if (!(first && comp == name_[root()])) {
        cur = childNamed(cur, comp);
        if (cur == kInvalidNode) return kInvalidNode;
      }
      first = false;
    }
    if (next == std::string_view::npos) break;
    pos = next + 1;
  }
  return cur;
}

}  // namespace tiresias
