// Immutable hierarchical category domain (the paper's classification tree).
//
// Node ids are assigned in breadth-first (level) order at build time, which
// gives the two traversal orders the algorithms need for free:
//   - top-down level order  == ascending NodeId
//   - bottom-up level order == descending NodeId
// Children of a node are contiguous, and every level occupies a contiguous
// id range. Depth follows the paper's convention: the root has depth 1.
//
// Ancestor tests are O(1) via Euler-tour intervals, which the Table VI
// comparison metrics (L(a) ⊒ L(b)) rely on heavily.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tiresias {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

class HierarchyBuilder;

/// Half-open range of consecutive node ids; iterable in range-for.
struct NodeIdRange {
  NodeId first = 0;
  NodeId last = 0;  // one past the end

  struct Iterator {
    NodeId n;
    NodeId operator*() const { return n; }
    Iterator& operator++() {
      ++n;
      return *this;
    }
    bool operator!=(const Iterator& o) const { return n != o.n; }
  };
  Iterator begin() const { return {first}; }
  Iterator end() const { return {last}; }
  std::size_t size() const { return last - first; }
  bool empty() const { return first == last; }
};

class Hierarchy {
 public:
  /// Empty hierarchy; populate via HierarchyBuilder::build().
  Hierarchy() = default;

  std::size_t size() const { return parent_.size(); }
  NodeId root() const { return 0; }

  NodeId parent(NodeId n) const { return parent_[n]; }
  std::span<const NodeId> children(NodeId n) const {
    return {childList_.data() + childStart_[n],
            childStart_[n + 1] - childStart_[n]};
  }
  bool isLeaf(NodeId n) const { return childStart_[n] == childStart_[n + 1]; }
  std::size_t degree(NodeId n) const {
    return childStart_[n + 1] - childStart_[n];
  }

  /// Depth with the root at 1 (paper convention).
  int depth(NodeId n) const { return depth_[n]; }
  /// Height of the tree == depth of the deepest node.
  int height() const { return height_; }

  /// Ids of all nodes at the given depth (contiguous range).
  NodeIdRange nodesAtDepth(int d) const;

  std::size_t leafCount() const { return leafCount_; }
  /// All leaf ids in ascending order.
  const std::vector<NodeId>& leaves() const { return leaves_; }

  /// True iff `a` is `b` or an ancestor of `b` (the paper's L(a) ⊒ L(b)).
  bool isAncestorOrEqual(NodeId a, NodeId b) const {
    return tin_[a] <= tin_[b] && tout_[b] <= tout_[a];
  }

  const std::string& name(NodeId n) const { return name_[n]; }
  /// Slash-separated path from the root, e.g. "root/TV/NoService".
  std::string path(NodeId n, char sep = '/') const;

  /// Child of `n` with the given name, or kInvalidNode.
  NodeId childNamed(NodeId n, std::string_view name) const;
  /// Resolve a slash-separated path starting below the root;
  /// returns kInvalidNode if any component is missing.
  NodeId find(std::string_view path, char sep = '/') const;

  /// Number of leaves in the subtree rooted at n.
  std::size_t leavesUnder(NodeId n) const { return leavesUnder_[n]; }

 private:
  friend class HierarchyBuilder;

  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> childStart_;  // size() + 1 offsets
  std::vector<NodeId> childList_;
  std::vector<int> depth_;
  std::vector<std::uint32_t> tin_, tout_;
  std::vector<std::string> name_;
  std::vector<NodeId> levelStart_;  // levelStart_[d] = first id of depth d+1
  std::vector<NodeId> leaves_;
  std::vector<std::uint32_t> leavesUnder_;
  std::size_t leafCount_ = 0;
  int height_ = 0;
};

/// Non-owning shared handle to a hierarchy the caller keeps alive (stack
/// or member storage outliving every pipeline/engine it is passed to).
/// Spells the borrowed-lifetime contract out at the call site; prefer an
/// owning handle (make_shared, or an aliasing handle into a shared owner)
/// whenever nothing else pins the hierarchy.
inline std::shared_ptr<const Hierarchy> borrowHierarchy(const Hierarchy& h) {
  return std::shared_ptr<const Hierarchy>(std::shared_ptr<const Hierarchy>(),
                                          &h);
}

}  // namespace tiresias
