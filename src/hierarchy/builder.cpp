#include "hierarchy/builder.h"

#include <algorithm>
#include <deque>
#include <fstream>
#include <map>
#include <utility>

#include "common/expect.h"

namespace tiresias {

HierarchyBuilder::HierarchyBuilder(std::string rootName) {
  parent_.push_back(kInvalidNode);
  name_.push_back(std::move(rootName));
  children_.emplace_back();
}

NodeId HierarchyBuilder::addChild(NodeId parent, std::string name) {
  TIRESIAS_EXPECT(parent < parent_.size(), "parent id out of range");
  const NodeId id = static_cast<NodeId>(parent_.size());
  parent_.push_back(parent);
  name_.push_back(std::move(name));
  children_.emplace_back();
  children_[parent].push_back(id);
  return id;
}

Hierarchy HierarchyBuilder::build(std::vector<NodeId>* remapOut) {
  const std::size_t n = parent_.size();

  // BFS relabel: provisional -> final.
  std::vector<NodeId> remap(n, kInvalidNode);
  std::vector<NodeId> order;  // final index -> provisional id
  order.reserve(n);
  std::deque<NodeId> queue{0};
  while (!queue.empty()) {
    const NodeId prov = queue.front();
    queue.pop_front();
    remap[prov] = static_cast<NodeId>(order.size());
    order.push_back(prov);
    for (NodeId c : children_[prov]) queue.push_back(c);
  }
  TIRESIAS_EXPECT(order.size() == n, "hierarchy must be a connected tree");

  Hierarchy h;
  h.parent_.resize(n);
  h.depth_.resize(n);
  h.name_.resize(n);
  h.childStart_.assign(n + 1, 0);
  h.childList_.reserve(n - 1);
  h.leavesUnder_.assign(n, 0);

  for (NodeId id = 0; id < n; ++id) {
    const NodeId prov = order[id];
    h.parent_[id] = parent_[prov] == kInvalidNode ? kInvalidNode
                                                  : remap[parent_[prov]];
    h.name_[id] = std::move(name_[prov]);
    h.depth_[id] = id == 0 ? 1 : h.depth_[h.parent_[id]] + 1;
  }
  // Children are BFS-consecutive, so one forward pass fills the CSR layout.
  for (NodeId id = 0; id < n; ++id) {
    for (NodeId c : children_[order[id]]) {
      (void)c;
      ++h.childStart_[id + 1];
    }
  }
  for (std::size_t i = 0; i < n; ++i) h.childStart_[i + 1] += h.childStart_[i];
  {
    std::vector<std::uint32_t> cursor(h.childStart_.begin(),
                                      h.childStart_.end() - 1);
    h.childList_.resize(n - 1);
    for (NodeId id = 0; id < n; ++id) {
      for (NodeId c : children_[order[id]]) {
        h.childList_[cursor[id]++] = remap[c];
      }
    }
  }

  h.height_ = 0;
  for (NodeId id = 0; id < n; ++id) h.height_ = std::max(h.height_, h.depth_[id]);
  // levelStart_[d] = number of nodes with depth <= d == first id of depth
  // d+1; BFS order makes levels contiguous, so counting + prefix sums
  // suffice. nodesAtDepth(d) then reads [levelStart_[d-1], levelStart_[d]).
  h.levelStart_.assign(static_cast<std::size_t>(h.height_) + 1, 0);
  for (NodeId id = 0; id < n; ++id) {
    ++h.levelStart_[static_cast<std::size_t>(h.depth_[id])];
  }
  for (std::size_t d = 1; d < h.levelStart_.size(); ++d) {
    h.levelStart_[d] += h.levelStart_[d - 1];
  }

  // Euler-tour intervals via iterative DFS, plus leaf bookkeeping.
  h.tin_.resize(n);
  h.tout_.resize(n);
  {
    std::uint32_t clock = 0;
    std::vector<std::pair<NodeId, bool>> stack{{0, false}};
    while (!stack.empty()) {
      auto [node, exiting] = stack.back();
      stack.pop_back();
      if (exiting) {
        h.tout_[node] = clock++;
        continue;
      }
      h.tin_[node] = clock++;
      stack.emplace_back(node, true);
      const auto kids = h.children(node);
      for (std::size_t i = kids.size(); i-- > 0;) {
        stack.emplace_back(kids[i], false);
      }
    }
  }
  for (NodeId id = static_cast<NodeId>(n); id-- > 0;) {
    if (h.isLeaf(id)) {
      h.leaves_.push_back(id);
      h.leavesUnder_[id] = 1;
    }
    if (h.parent_[id] != kInvalidNode) {
      h.leavesUnder_[h.parent_[id]] += h.leavesUnder_[id];
    }
  }
  std::reverse(h.leaves_.begin(), h.leaves_.end());
  h.leafCount_ = h.leaves_.size();

  if (remapOut) *remapOut = std::move(remap);
  parent_.clear();
  name_.clear();
  children_.clear();
  return h;
}

Hierarchy HierarchyBuilder::fromPaths(const std::vector<std::string>& paths,
                                      const std::string& rootName, char sep) {
  HierarchyBuilder b(rootName);
  // Provisional name index: parent id -> (child name -> child id).
  std::vector<std::map<std::string, NodeId>> childIndex(1);
  for (const auto& path : paths) {
    NodeId cur = 0;
    std::size_t pos = 0;
    bool first = true;
    while (pos <= path.size()) {
      const std::size_t next = path.find(sep, pos);
      const std::string comp = next == std::string::npos
                                   ? path.substr(pos)
                                   : path.substr(pos, next - pos);
      if (!comp.empty() && !(first && comp == rootName)) {
        const auto it = childIndex[cur].find(comp);
        if (it == childIndex[cur].end()) {
          const NodeId child = b.addChild(cur, comp);
          // emplace_back first: it may reallocate, so index into the
          // vector afresh afterwards.
          childIndex.emplace_back();
          childIndex[cur].emplace(comp, child);
          cur = child;
        } else {
          cur = it->second;
        }
      }
      if (!comp.empty()) first = false;
      if (next == std::string::npos) break;
      pos = next + 1;
    }
  }
  return b.build();
}

Hierarchy HierarchyBuilder::fromPathsFile(const std::string& filePath,
                                          const std::string& rootName,
                                          char sep) {
  std::ifstream in(filePath);
  TIRESIAS_EXPECT(static_cast<bool>(in), "cannot open hierarchy paths file");
  std::vector<std::string> paths;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    paths.push_back(line);
  }
  return fromPaths(paths, rootName, sep);
}

Hierarchy HierarchyBuilder::balanced(const std::vector<std::size_t>& degrees,
                                     const std::string& rootName) {
  HierarchyBuilder b(rootName);
  std::vector<NodeId> frontier{0};
  for (std::size_t level = 0; level < degrees.size(); ++level) {
    std::vector<NodeId> next;
    next.reserve(frontier.size() * degrees[level]);
    for (NodeId p : frontier) {
      for (std::size_t i = 0; i < degrees[level]; ++i) {
        next.push_back(b.addChild(
            p, "L" + std::to_string(level + 2) + "_" + std::to_string(i)));
      }
    }
    frontier = std::move(next);
  }
  return b.build();
}

}  // namespace tiresias
