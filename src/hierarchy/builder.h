// Mutable construction interface for Hierarchy.
//
// Build-time ids are provisional; build() relabels nodes into breadth-first
// order and returns the finished Hierarchy together with (on request) the
// provisional-to-final id mapping.
#pragma once

#include <string>
#include <vector>

#include "hierarchy/hierarchy.h"

namespace tiresias {

class HierarchyBuilder {
 public:
  /// Creates the builder with a root node of the given name (id 0).
  explicit HierarchyBuilder(std::string rootName = "root");

  /// Adds a child under `parent` (a provisional id) and returns its
  /// provisional id.
  NodeId addChild(NodeId parent, std::string name);

  std::size_t size() const { return parent_.size(); }

  /// Finalize. If `remapOut` is non-null it receives the mapping from
  /// provisional ids to final BFS ids. The builder is left empty.
  Hierarchy build(std::vector<NodeId>* remapOut = nullptr);

  /// Convenience: balanced tree with the given out-degrees per level
  /// (degrees[0] = root's children, ...). Node names are "L<depth>_<idx>".
  static Hierarchy balanced(const std::vector<std::size_t>& degrees,
                            const std::string& rootName = "root");

  /// Build a hierarchy from slash-separated category paths (one per leaf,
  /// interior nodes created on demand; duplicate paths are fine). An
  /// optional leading component equal to `rootName` is accepted. This is
  /// how custom (non-preset) domains enter the system, e.g. from the
  /// first column of a CSV trace.
  static Hierarchy fromPaths(const std::vector<std::string>& paths,
                             const std::string& rootName = "root",
                             char sep = '/');

  /// fromPaths over a text file with one path per line (blank lines and
  /// lines starting with '#' skipped). Aborts if the file cannot be read.
  static Hierarchy fromPathsFile(const std::string& filePath,
                                 const std::string& rootName = "root",
                                 char sep = '/');

 private:
  std::vector<NodeId> parent_;
  std::vector<std::string> name_;
  std::vector<std::vector<NodeId>> children_;
};

}  // namespace tiresias
