#include "core/shhh.h"

#include <algorithm>

#include "common/expect.h"

namespace tiresias {
namespace {

/// Collect the union of the counted nodes and all their ancestors, sorted
/// descending (BFS ids make descending order a valid bottom-up order).
std::vector<NodeId> touchedBottomUp(const Hierarchy& hierarchy,
                                    const CountMap& counts) {
  std::vector<NodeId> touched;
  touched.reserve(counts.size() * 2 + 1);
  std::unordered_map<NodeId, bool> seen;
  for (const auto& [node, weight] : counts) {
    (void)weight;
    for (NodeId cur = node; cur != kInvalidNode;
         cur = hierarchy.parent(cur)) {
      if (seen.emplace(cur, true).second) {
        touched.push_back(cur);
      } else {
        break;  // the rest of the chain is already present
      }
    }
  }
  std::sort(touched.begin(), touched.end(), std::greater<NodeId>());
  return touched;
}

}  // namespace

ShhhResult computeShhh(const Hierarchy& hierarchy, const CountMap& counts,
                       double theta) {
  TIRESIAS_EXPECT(theta > 0.0, "theta must be positive");
  ShhhResult result;
  const auto touched = touchedBottomUp(hierarchy, counts);
  if (touched.empty()) return result;

  std::unordered_map<NodeId, double> raw, modified;
  raw.reserve(touched.size());
  modified.reserve(touched.size());
  for (const auto& [node, weight] : counts) {
    raw[node] += weight;
    modified[node] += weight;
  }

  result.touched.reserve(touched.size());
  for (NodeId n : touched) {
    const double a = raw[n];
    const double w = modified[n];
    const bool heavy = w >= theta;
    result.touched.push_back({n, a, w, heavy});
    const NodeId p = hierarchy.parent(n);
    if (p != kInvalidNode) {
      raw[p] += a;
      if (!heavy) modified[p] += w;  // Definition 2: HH children discounted
    }
    if (heavy) result.shhh.push_back(n);
  }
  std::reverse(result.touched.begin(), result.touched.end());
  std::reverse(result.shhh.begin(), result.shhh.end());
  return result;
}

std::unordered_map<NodeId, std::vector<double>> modifiedSeriesFixedSet(
    const Hierarchy& hierarchy, const std::vector<CountMap>& unitCounts,
    const std::vector<NodeId>& fixedSet) {
  std::unordered_map<NodeId, bool> inSet;
  inSet.reserve(fixedSet.size());
  for (NodeId n : fixedSet) inSet[n] = true;

  std::unordered_map<NodeId, std::vector<double>> series;
  auto ensure = [&](NodeId n) {
    auto& s = series[n];
    if (s.empty()) s.assign(unitCounts.size(), 0.0);
  };
  ensure(hierarchy.root());
  for (NodeId n : fixedSet) ensure(n);

  for (std::size_t u = 0; u < unitCounts.size(); ++u) {
    const auto touched = touchedBottomUp(hierarchy, unitCounts[u]);
    std::unordered_map<NodeId, double> value;
    value.reserve(touched.size());
    for (const auto& [node, weight] : unitCounts[u]) value[node] += weight;
    for (NodeId n : touched) {
      const double w = value[n];
      auto it = series.find(n);
      if (it != series.end()) it->second[u] = w;
      const NodeId p = hierarchy.parent(n);
      // Members of the fixed set cut their weight off from ancestors,
      // regardless of this unit's magnitudes (fixed-membership semantics).
      if (p != kInvalidNode && !inSet.count(n)) value[p] += w;
    }
  }
  return series;
}

std::unordered_map<NodeId, std::vector<double>> rawSeries(
    const Hierarchy& hierarchy, const std::vector<CountMap>& unitCounts,
    const std::vector<NodeId>& nodes) {
  std::unordered_map<NodeId, std::vector<double>> series;
  for (NodeId n : nodes) series[n].assign(unitCounts.size(), 0.0);

  for (std::size_t u = 0; u < unitCounts.size(); ++u) {
    const auto touched = touchedBottomUp(hierarchy, unitCounts[u]);
    std::unordered_map<NodeId, double> value;
    value.reserve(touched.size());
    for (const auto& [node, weight] : unitCounts[u]) value[node] += weight;
    for (NodeId n : touched) {
      const double a = value[n];
      auto it = series.find(n);
      if (it != series.end()) it->second[u] = a;
      const NodeId p = hierarchy.parent(n);
      if (p != kInvalidNode) value[p] += a;
    }
  }
  return series;
}

}  // namespace tiresias
