#include "core/shhh.h"

#include <algorithm>

#include "common/expect.h"

namespace tiresias {
namespace {

/// Workspace for the CountMap convenience overloads (tests, benches,
/// bootstrap); the detectors pass their pipeline's workspace instead.
DetectWorkspace& localWorkspace(const Hierarchy& hierarchy) {
  static thread_local DetectWorkspace ws;
  ws.bind(hierarchy.size());
  return ws;
}

/// Extend ws.touched (currently the counted nodes) with every ancestor,
/// deduplicated by the value-plane epoch stamps, and sort it descending —
/// BFS ids make that a valid bottom-up order.
void climbAndSort(const Hierarchy& hierarchy, DetectWorkspace& ws) {
  auto& touched = ws.touched;
  const std::size_t counted = touched.size();
  for (std::size_t i = 0; i < counted; ++i) {
    for (NodeId cur = hierarchy.parent(touched[i]); cur != kInvalidNode;
         cur = hierarchy.parent(cur)) {
      if (!ws.touch(cur)) break;  // the rest of the chain is already present
      touched.push_back(cur);
    }
  }
  std::sort(touched.begin(), touched.end(), std::greater<NodeId>());
}

}  // namespace

void collectTouchedStaged(const Hierarchy& hierarchy, DetectWorkspace& ws) {
  climbAndSort(hierarchy, ws);
}

void computeShhhStaged(const Hierarchy& hierarchy, double theta,
                       DetectWorkspace& ws, ShhhResult& out) {
  TIRESIAS_EXPECT(theta > 0.0, "theta must be positive");
  out.clear();
  climbAndSort(hierarchy, ws);
  // The sweep itself is loop-carried (children accumulate into parents
  // before the parent is visited), so it stays scalar — but branch-free:
  // the Definition-2 discount is a lane select on the heavy mask (a
  // no-op keeps the parent's exact bits, so this is bit-identical to the
  // historical `if (!heavy)`), the SHHH set is a branchless compaction,
  // and output slots are written in place instead of push_back + reverse.
  const std::size_t total = ws.touched.size();
  out.touched.resize(total);
  out.shhh.resize(total);
  std::size_t shhhLen = 0;
  for (std::size_t i = 0; i < total; ++i) {
    const NodeId n = ws.touched[i];
    const double a = ws.raw(n);
    const double w = ws.modified(n);
    const bool heavy = w >= theta;
    out.touched[total - 1 - i] = {n, a, w, heavy};  // ascending-id output
    const NodeId p = hierarchy.parent(n);
    if (p != kInvalidNode) {
      ws.raw(p) += a;
      double& mp = ws.modified(p);
      mp = heavy ? mp : mp + w;  // Definition 2: HH children discounted
    }
    out.shhh[shhhLen] = n;
    shhhLen += heavy;
  }
  out.shhh.resize(shhhLen);
  std::reverse(out.shhh.begin(), out.shhh.end());
}

void computeShhh(const Hierarchy& hierarchy, const CountMap& counts,
                 double theta, DetectWorkspace& ws, ShhhResult& out) {
  ws.bind(hierarchy.size());
  ws.beginUnit();
  ws.touched.clear();
  for (const auto& [node, weight] : counts) stageCount(ws, node, weight);
  computeShhhStaged(hierarchy, theta, ws, out);
}

ShhhResult computeShhh(const Hierarchy& hierarchy, const CountMap& counts,
                       double theta) {
  ShhhResult result;
  computeShhh(hierarchy, counts, theta, localWorkspace(hierarchy), result);
  return result;
}

namespace {

/// Shared body of modifiedSeriesFixedSet / rawSeries: one bottom-up sweep
/// per unit over the staged counts, writing touched output-map entries and
/// propagating weight to the parent unless `cut` says the node keeps it.
template <typename Cut>
std::unordered_map<NodeId, std::vector<double>> seriesSweep(
    const Hierarchy& hierarchy, const std::vector<CountMap>& unitCounts,
    const std::vector<NodeId>& outputNodes, DetectWorkspace& ws,
    const Cut& cut) {
  std::unordered_map<NodeId, std::vector<double>> series;
  for (NodeId n : outputNodes) {
    auto& s = series[n];
    if (s.empty()) s.assign(unitCounts.size(), 0.0);
  }

  for (std::size_t u = 0; u < unitCounts.size(); ++u) {
    ws.beginUnit();
    ws.touched.clear();
    for (const auto& [node, weight] : unitCounts[u]) {
      stageCount(ws, node, weight);
    }
    climbAndSort(hierarchy, ws);
    for (NodeId n : ws.touched) {
      const double w = ws.raw(n);
      auto it = series.find(n);
      if (it != series.end()) it->second[u] = w;
      const NodeId p = hierarchy.parent(n);
      if (p != kInvalidNode) {
        // Mark-plane select, not a branch: a cut node leaves the parent's
        // exact bits untouched, same as skipping the add.
        double& rp = ws.raw(p);
        rp = cut(n) ? rp : rp + w;
      }
    }
  }
  return series;
}

}  // namespace

std::unordered_map<NodeId, std::vector<double>> modifiedSeriesFixedSet(
    const Hierarchy& hierarchy, const std::vector<CountMap>& unitCounts,
    const std::vector<NodeId>& fixedSet) {
  DetectWorkspace& ws = localWorkspace(hierarchy);
  ws.beginMarks(DetectWorkspace::kMemberPlane);
  for (NodeId n : fixedSet) ws.mark(DetectWorkspace::kMemberPlane, n);

  std::vector<NodeId> outputNodes;
  outputNodes.reserve(fixedSet.size() + 1);
  outputNodes.push_back(hierarchy.root());
  outputNodes.insert(outputNodes.end(), fixedSet.begin(), fixedSet.end());

  // Members of the fixed set cut their weight off from ancestors,
  // regardless of this unit's magnitudes (fixed-membership semantics).
  return seriesSweep(hierarchy, unitCounts, outputNodes, ws, [&](NodeId n) {
    return ws.isMarked(DetectWorkspace::kMemberPlane, n);
  });
}

std::unordered_map<NodeId, std::vector<double>> rawSeries(
    const Hierarchy& hierarchy, const std::vector<CountMap>& unitCounts,
    const std::vector<NodeId>& nodes) {
  return seriesSweep(hierarchy, unitCounts, nodes, localWorkspace(hierarchy),
                     [](NodeId) { return false; });
}

}  // namespace tiresias
