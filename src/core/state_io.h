// Snapshot helpers shared by the detectors: node-keyed maps and per-unit
// sparse counts. Maps are written sorted by NodeId so equal state always
// encodes to identical bytes, and every node id read back is validated
// against the hierarchy it will index into.
#pragma once

#include <algorithm>
#include <vector>

#include "core/shhh.h"
#include "persist/snapshot.h"

namespace tiresias::state_io {

/// Write any node-keyed map as `count u64` + ascending `(node u32, value)`
/// pairs; `writeValue` encodes one mapped value. The single writer keeps
/// every node-map payload byte-format-consistent and deterministic.
template <typename Map, typename WriteValue>
inline void writeSortedNodeMap(persist::Serializer& out, const Map& map,
                               const WriteValue& writeValue) {
  std::vector<NodeId> keys;
  keys.reserve(map.size());
  for (const auto& [node, value] : map) {
    (void)value;
    keys.push_back(node);
  }
  std::sort(keys.begin(), keys.end());
  out.u64(keys.size());
  for (NodeId n : keys) {
    out.u32(n);
    writeValue(map.at(n));
  }
}

inline void writeCountMap(persist::Serializer& out, const CountMap& counts) {
  writeSortedNodeMap(out, counts, [&out](double w) { out.f64(w); });
}

inline CountMap readCountMap(persist::Deserializer& in,
                             const Hierarchy& hierarchy) {
  const std::size_t n = in.count(sizeof(std::uint32_t) + sizeof(double));
  CountMap counts;
  counts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node = in.u32();
    persist::Deserializer::require(node < hierarchy.size(),
                                   "snapshot: node id outside hierarchy");
    counts[node] = in.f64();
  }
  return counts;
}

inline void writeNodeVec(persist::Serializer& out,
                         const std::vector<NodeId>& nodes) {
  out.u64(nodes.size());
  for (NodeId n : nodes) out.u32(n);
}

inline std::vector<NodeId> readNodeVec(persist::Deserializer& in,
                                       const Hierarchy& hierarchy) {
  const std::size_t n = in.count(sizeof(std::uint32_t));
  std::vector<NodeId> out(n);
  for (auto& node : out) {
    node = in.u32();
    persist::Deserializer::require(node < hierarchy.size(),
                                   "snapshot: node id outside hierarchy");
  }
  return out;
}

inline void writeDoubleVec(persist::Serializer& out,
                           const std::vector<double>& values) {
  out.u64(values.size());
  for (double v : values) out.f64(v);
}

inline std::vector<double> readDoubleVec(persist::Deserializer& in) {
  const std::size_t n = in.count(sizeof(double));
  std::vector<double> out(n);
  for (double& v : out) v = in.f64();
  return out;
}

}  // namespace tiresias::state_io
