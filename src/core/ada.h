// ADA — the adaptive low-complexity detection scheme (§V-B, Figs 5-8).
//
// ADA maintains a single tree worth of state. Per instance it:
//   1. computes fresh raw aggregates A_n and Definition-2 modified weights
//      W_n for the nodes touched by the new timeunit (Fig 6);
//   2. adapts the *positions* of the series-holding nodes with top-down
//      SPLIT (Fig 7) and bottom-up MERGE (Fig 8) operations so the holders
//      equal the fresh SHHH set (Lemma 1), moving each series' ring buffers
//      and Holt-Winters state by the linear scale/add operations that
//      Lemma 2 licenses;
//   3. repairs split-induced history bias from reference time series kept
//      for the top h levels (§V-B5);
//   4. appends W_n to every holder's series, produces the forecast, and
//      applies the Definition-4 anomaly test.
//
// The first ℓ timeunits are a bootstrap phase that buffers per-unit counts
// and then performs one STA-style reconstruction (Fig 5 lines 2-5).
//
// Hot-path layout: per-instance scratch (A_n, W_n, tosplit, received)
// lives in the pipeline's DetectWorkspace — dense epoch-stamped arrays,
// invalidated per unit by a generation bump. Series holders sit in a dense
// NodeId→slot table with a free list (holder lookups are array indexing);
// `holders_` keeps the ascending id order the adaptation sweeps and the
// snapshot encoding rely on. Reference series are fixed after bootstrap
// and live in parallel ascending arrays with their own dense index.
//
// Documented deviations from the paper's pseudocode (see DESIGN.md,
// "Faithful-intent corrections"): SPLIT also fires on a pending child
// tosplit flag so deep new heavy hitters are reachable, series values are
// always the exact fresh W_n, and merge-received nodes are reference-
// corrected like split-received ones.
#pragma once

#include <memory>

#include "core/detector.h"
#include "core/shhh.h"
#include "core/split_rules.h"
#include "timeseries/ring.h"

namespace tiresias {

class AdaDetector final : public Detector {
 public:
  AdaDetector(const Hierarchy& hierarchy, DetectorConfig config);
  ~AdaDetector() override;

  std::optional<InstanceResult> step(const TimeUnitBatch& batch) override;
  std::vector<NodeId> currentShhh() const override;
  void seriesInto(NodeId node, std::vector<double>& out) const override;
  void forecastSeriesInto(NodeId node,
                          std::vector<double>& out) const override;
  MemoryStats memoryStats() const override;
  void saveState(persist::Serializer& out) const override;
  void loadState(persist::Deserializer& in) override;
  void bindWorkspace(std::shared_ptr<DetectWorkspace> workspace) override {
    config_.workspace = std::move(workspace);
  }

  const Hierarchy& hierarchy() const { return hierarchy_; }

  /// Number of split/merge operations performed so far (diagnostics and
  /// the Fig 12 / §VII-A discussion of how split frequency drives error).
  std::size_t splitCount() const { return splitCount_; }
  std::size_t mergeCount() const { return mergeCount_; }
  /// Splits triggered *only* by a pending child tosplit flag — the deep-
  /// chain case the paper's Fig 7 guard misses (DESIGN.md deviation 1).
  /// Nonzero values on real workloads show the correction is load-bearing.
  std::size_t deepChainSplitCount() const { return deepChainSplitCount_; }

 private:
  /// Series + forecaster state bound to one heavy hitter.
  struct SeriesState {
    RingSeries actual;
    RingSeries forecastSeries;
    std::unique_ptr<Forecaster> model;
  };

  /// Reference (unmodified-weight) series for a top-level node (§V-B5).
  using RefState = SeriesState;

  DetectWorkspace& ws() { return *config_.workspace; }
  const DetectWorkspace& ws() const { return *config_.workspace; }

  void bootstrapInstance(const TimeUnitBatch& batch);
  void finishBootstrap();
  std::optional<InstanceResult> adaptiveInstance(const TimeUnitBatch& batch);

  void split(NodeId n);
  void mergeGroupOf(NodeId n);
  /// Replace n's series with T_REF[n] − Σ member-descendant series, if a
  /// reference series exists. Returns true if a correction was applied.
  bool correctFromRef(NodeId n);
  void applyReferenceCorrections();
  SeriesState makeScaledCopy(const SeriesState& src, double ratio) const;

  // --- dense holder slot table -----------------------------------------
  bool holds(NodeId n) const { return stateSlot_[n] >= 0; }
  SeriesState& stateOf(NodeId n) {
    return stateSlots_[static_cast<std::size_t>(stateSlot_[n])];
  }
  const SeriesState& stateOf(NodeId n) const {
    return stateSlots_[static_cast<std::size_t>(stateSlot_[n])];
  }
  /// Bind `st` to `n` (insert-or-assign); keeps holders_ sorted.
  void setState(NodeId n, SeriesState&& st);
  /// Release n's slot to the free list; keeps holders_ sorted.
  void eraseState(NodeId n);

  bool isMember(NodeId n) const {
    return holds(n) && (n != hierarchy_.root() || rootIsMember_);
  }

  /// W_n of the current instance (0 for untouched nodes).
  double freshWeight(NodeId n) const { return ws().modifiedOrZero(n); }
  bool freshHeavy(NodeId n) const {
    return freshWeight(n) >= config_.theta;
  }

  /// Flag n as having acquired a series this instance.
  void markReceived(NodeId n);

  const Hierarchy& hierarchy_;
  DetectorConfig config_;
  SplitRuleEngine splitRules_;

  // --- bootstrap phase ---
  bool bootstrapped_ = false;
  std::vector<CountMap> bootstrapUnits_;

  // --- adaptive phase ---
  TimeUnit newestUnit_ = 0;
  /// Series holders: dense slot table + ascending id list. Presence ==
  /// SHHH membership, except the root which always holds a series and
  /// carries an explicit membership flag (Fig 5 lines 24-25).
  std::vector<std::int32_t> stateSlot_;   // NodeId → slot, -1 = none
  std::vector<SeriesState> stateSlots_;
  std::vector<std::uint32_t> freeStateSlots_;
  std::vector<NodeId> holders_;           // ascending ids holding a slot
  bool rootIsMember_ = false;
  /// Reference series for nodes of depth 2..h+1, plus the root — fixed
  /// after bootstrap (ascending ids, dense index).
  std::vector<NodeId> refNodes_;
  std::vector<RefState> refStates_;
  std::vector<std::int32_t> refSlot_;     // NodeId → refStates_ index

  // Per-instance scratch: A_n/W_n live in the workspace value plane,
  // tosplit/received in its mark planes; these vectors enumerate the
  // marked nodes (reused capacity).
  std::vector<NodeId> tosplitNodes_;
  std::vector<NodeId> receivedNodes_;
  ShhhResult shhhScratch_;                // reused across units
  std::size_t lastTouched_ = 0;           // |touched| of the last instance
  /// SoA staging for the series-append sweeps: the holders' fresh W_n and
  /// the reference nodes' fresh A_n are gathered (epoch-masked) from the
  /// workspace planes in bulk before the sequential model updates run.
  std::vector<double> weightScratch_;

  std::size_t splitCount_ = 0;
  std::size_t mergeCount_ = 0;
  std::size_t deepChainSplitCount_ = 0;
};

}  // namespace tiresias
