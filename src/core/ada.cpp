#include "core/ada.h"

#include <algorithm>
#include <set>

#include "common/expect.h"
#include "common/simd.h"
#include "core/state_io.h"

namespace tiresias {

AdaDetector::AdaDetector(const Hierarchy& hierarchy, DetectorConfig config)
    : hierarchy_(hierarchy),
      config_(std::move(config)),
      splitRules_(config_.splitRule, config_.splitEwmaAlpha) {
  TIRESIAS_EXPECT(config_.windowLength >= 2, "window length must be >= 2");
  TIRESIAS_EXPECT(config_.forecasterFactory != nullptr,
                  "forecaster factory is required");
  if (!config_.workspace) {
    config_.workspace = std::make_shared<DetectWorkspace>();
  }
  config_.workspace->bind(hierarchy_.size());
  stateSlot_.assign(hierarchy_.size(), -1);
  refSlot_.assign(hierarchy_.size(), -1);
}

AdaDetector::~AdaDetector() = default;

void AdaDetector::setState(NodeId n, SeriesState&& st) {
  const std::int32_t existing = stateSlot_[n];
  if (existing >= 0) {
    stateSlots_[static_cast<std::size_t>(existing)] = std::move(st);
    return;
  }
  std::uint32_t slot;
  if (!freeStateSlots_.empty()) {
    slot = freeStateSlots_.back();
    freeStateSlots_.pop_back();
    stateSlots_[slot] = std::move(st);
  } else {
    slot = static_cast<std::uint32_t>(stateSlots_.size());
    stateSlots_.push_back(std::move(st));
  }
  stateSlot_[n] = static_cast<std::int32_t>(slot);
  holders_.insert(std::upper_bound(holders_.begin(), holders_.end(), n), n);
}

void AdaDetector::eraseState(NodeId n) {
  const std::int32_t slot = stateSlot_[n];
  if (slot < 0) return;
  stateSlots_[static_cast<std::size_t>(slot)] = SeriesState{};
  freeStateSlots_.push_back(static_cast<std::uint32_t>(slot));
  stateSlot_[n] = -1;
  holders_.erase(std::lower_bound(holders_.begin(), holders_.end(), n));
}

void AdaDetector::markReceived(NodeId n) {
  if (ws().mark(DetectWorkspace::kReceivedPlane, n)) {
    receivedNodes_.push_back(n);
  }
}

std::optional<InstanceResult> AdaDetector::step(const TimeUnitBatch& batch) {
  newestUnit_ = batch.unit;
  if (!bootstrapped_) {
    bootstrapInstance(batch);
    if (bootstrapUnits_.size() < config_.windowLength) return std::nullopt;
    finishBootstrap();
    // The bootstrap instance itself also reports a detection result.
  } else {
    return adaptiveInstance(batch);
  }

  // First detection result (end of bootstrap).
  InstanceResult result;
  result.unit = newestUnit_;
  {
    StageTimer::Scope scope(stages_, kStageDetect);
    result.shhh = currentShhh();
    for (NodeId n : result.shhh) {
      const auto& st = stateOf(n);
      const double actual = st.actual.latest();
      const double forecast = st.forecastSeries.latest();
      if (isAnomalous(actual, forecast, config_.ratioThreshold,
                      config_.diffThreshold)) {
        result.anomalies.push_back(
            {n, newestUnit_, actual, forecast, anomalyRatio(actual, forecast)});
      }
    }
  }
  return result;
}

void AdaDetector::bootstrapInstance(const TimeUnitBatch& batch) {
  StageTimer::Scope scope(stages_, kStageUpdateHierarchies);
  CountMap counts;
  counts.reserve(batch.records.size());
  for (const auto& r : batch.records) counts[r.category] += 1.0;
  bootstrapUnits_.push_back(std::move(counts));
}

void AdaDetector::finishBootstrap() {
  StageTimer::Scope scope(stages_, kStageCreateSeries);
  // One STA-style reconstruction (Fig 5 lines 2-5).
  const auto shhhResult =
      computeShhh(hierarchy_, bootstrapUnits_.back(), config_.theta);
  const auto& shhh = shhhResult.shhh;

  const auto series =
      modifiedSeriesFixedSet(hierarchy_, bootstrapUnits_, shhh);
  for (const auto& [node, actual] : series) {
    SeriesState st;
    st.actual = RingSeries(config_.windowLength);
    st.forecastSeries = RingSeries(config_.windowLength);
    st.model = config_.forecasterFactory->make();
    for (double v : actual) {
      st.forecastSeries.push(st.model->forecast());
      st.actual.push(v);
      st.model->update(v);
    }
    setState(node, std::move(st));
  }
  rootIsMember_ =
      std::binary_search(shhh.begin(), shhh.end(), hierarchy_.root());

  // Reference series for the root and depths 2..h+1 (§V-B5).
  std::vector<NodeId> refNodes{hierarchy_.root()};
  for (std::size_t h = 0; h < config_.referenceLevels; ++h) {
    for (NodeId n : hierarchy_.nodesAtDepth(static_cast<int>(h) + 2)) {
      refNodes.push_back(n);
    }
  }
  const auto rawHist = rawSeries(hierarchy_, bootstrapUnits_, refNodes);
  refNodes_.clear();
  refNodes_.reserve(rawHist.size());
  for (const auto& [node, hist] : rawHist) {
    (void)hist;
    refNodes_.push_back(node);
  }
  std::sort(refNodes_.begin(), refNodes_.end());
  refStates_.clear();
  refStates_.reserve(refNodes_.size());
  for (std::size_t i = 0; i < refNodes_.size(); ++i) {
    const NodeId node = refNodes_[i];
    RefState ref;
    ref.actual = RingSeries(config_.windowLength);
    ref.forecastSeries = RingSeries(config_.windowLength);
    ref.model = config_.forecasterFactory->make();
    for (double v : rawHist.at(node)) {
      ref.forecastSeries.push(ref.model->forecast());
      ref.actual.push(v);
      ref.model->update(v);
    }
    refSlot_[node] = static_cast<std::int32_t>(i);
    refStates_.push_back(std::move(ref));
  }

  // Seed the split-rule statistics with the bootstrap history.
  for (const auto& unit : bootstrapUnits_) {
    const auto result = computeShhh(hierarchy_, unit, config_.theta);
    splitRules_.observeTouched(result.touched);
  }

  bootstrapUnits_.clear();
  bootstrapUnits_.shrink_to_fit();
  bootstrapped_ = true;
}

AdaDetector::SeriesState AdaDetector::makeScaledCopy(const SeriesState& src,
                                                     double ratio) const {
  SeriesState out;
  out.actual = src.actual;
  out.actual.scale(ratio);
  out.forecastSeries = src.forecastSeries;
  out.forecastSeries.scale(ratio);
  out.model = src.model->clone();
  out.model->scale(ratio);
  return out;
}

void AdaDetector::split(NodeId n) {
  // C_n: children not currently holding membership (Fig 7 line 1).
  std::vector<NodeId> group;
  bool weightTrigger = false;
  bool chainTrigger = false;
  for (NodeId c : hierarchy_.children(n)) {
    if (isMember(c)) continue;
    group.push_back(c);
    if (freshWeight(c) >= config_.theta) weightTrigger = true;
    // Deviation 1 (DESIGN.md): a pending tosplit also triggers, so heavy
    // hitters hidden multiple levels down still receive a series.
    if (ws().isMarked(DetectWorkspace::kSplitPlane, c)) chainTrigger = true;
  }
  if ((!weightTrigger && !chainTrigger) || group.empty()) return;
  ++splitCount_;
  if (!weightTrigger) ++deepChainSplitCount_;

  const auto ratios = splitRules_.ratios(group);
  // Stage the children's shares before touching the slot table (setState
  // may reuse or grow slot storage, which would invalidate a reference to
  // n's own state).
  std::vector<SeriesState> shares;
  shares.reserve(group.size());
  {
    const SeriesState& st = stateOf(n);
    for (std::size_t i = 0; i < group.size(); ++i) {
      shares.push_back(makeScaledCopy(st, ratios[i]));
    }
  }
  for (std::size_t i = 0; i < group.size(); ++i) {
    setState(group[i], std::move(shares[i]));
    markReceived(group[i]);
  }
  if (n == hierarchy_.root()) {
    // The root always keeps a series object for future splits; its
    // residual history is rebuilt from the root reference series in the
    // correction phase.
    rootIsMember_ = false;
    markReceived(n);
  } else {
    eraseState(n);
  }
}

void AdaDetector::mergeGroupOf(NodeId n) {
  // Gather C_n = members among {parent} ∪ siblings with W < θ (Fig 8).
  const NodeId np = hierarchy_.parent(n);
  TIRESIAS_EXPECT(np != kInvalidNode, "root does not merge");
  std::vector<NodeId> group;
  for (NodeId c : hierarchy_.children(np)) {
    if (isMember(c) && freshWeight(c) < config_.theta) group.push_back(c);
  }
  TIRESIAS_EXPECT(!group.empty(), "merge group must contain the trigger");
  ++mergeCount_;

  // Sum the group's states; start from the parent's own state if it holds
  // one (whether or not it is part of the below-θ group). For the root
  // this folds into its permanent series state.
  SeriesState acc;
  bool accInit = false;
  if (holds(np)) {
    acc = std::move(stateOf(np));
    accInit = true;
  }
  for (NodeId c : group) {
    auto& cs = stateOf(c);
    if (!accInit) {
      acc = std::move(cs);
      accInit = true;
    } else {
      acc.actual.addFrom(cs.actual);
      acc.forecastSeries.addFrom(cs.forecastSeries);
      acc.model->addFrom(*cs.model);
    }
    eraseState(c);
  }
  setState(np, std::move(acc));
  markReceived(np);
  if (np == hierarchy_.root()) rootIsMember_ = true;
}

bool AdaDetector::correctFromRef(NodeId n) {
  if (!holds(n)) return false;
  const std::int32_t refIdx = refSlot_[n];
  if (refIdx < 0) return false;
  const RefState& ref = refStates_[static_cast<std::size_t>(refIdx)];

  // T[n] := T_REF[n] − Σ T[d] over member heavy-hitter descendants d.
  RingSeries actual = ref.actual;
  RingSeries forecast = ref.forecastSeries;
  auto model = ref.model->clone();
  for (auto it = std::upper_bound(holders_.begin(), holders_.end(), n);
       it != holders_.end(); ++it) {
    const NodeId d = *it;
    if (!hierarchy_.isAncestorOrEqual(n, d)) continue;
    if (!isMember(d)) continue;
    const SeriesState& ds = stateOf(d);
    auto neg = ds.model->clone();
    neg->scale(-1.0);
    model->addFrom(*neg);
    RingSeries negActual = ds.actual;
    negActual.scale(-1.0);
    actual.addFrom(negActual);
    RingSeries negForecast = ds.forecastSeries;
    negForecast.scale(-1.0);
    forecast.addFrom(negForecast);
  }
  auto& st = stateOf(n);
  st.actual = std::move(actual);
  st.forecastSeries = std::move(forecast);
  st.model = std::move(model);
  return true;
}

void AdaDetector::applyReferenceCorrections() {
  if (receivedNodes_.empty()) return;
  // Deepest first so corrected descendants feed ancestors' corrections.
  // Nodes that received a series and lost it again fail correctFromRef's
  // holds() check, so the marks need no erase support.
  std::sort(receivedNodes_.begin(), receivedNodes_.end(),
            std::greater<NodeId>());
  for (NodeId n : receivedNodes_) correctFromRef(n);
}

std::optional<InstanceResult> AdaDetector::adaptiveInstance(
    const TimeUnitBatch& batch) {
  DetectWorkspace& w = ws();
  // ---- Stage: Updating Hierarchies (Fig 5 lines 6-12) ----
  {
    StageTimer::Scope scope(stages_, kStageUpdateHierarchies);
    w.beginUnit();
    w.touched.clear();
    for (const auto& r : batch.records) stageCount(w, r.category, 1.0);
    computeShhhStaged(hierarchy_, config_.theta, w, shhhScratch_);
    // The value plane now holds A_n / W_n for every touched node and stays
    // valid for the rest of the instance (no kernel runs until the next
    // unit bumps the generation).
    lastTouched_ = shhhScratch_.touched.size();
  }

  // ---- Stage: Creating Time Series (Fig 5 lines 13-29) ----
  {
    StageTimer::Scope scope(stages_, kStageCreateSeries);
    w.beginMarks(DetectWorkspace::kSplitPlane);
    w.beginMarks(DetectWorkspace::kReceivedPlane);
    tosplitNodes_.clear();
    receivedNodes_.clear();

    // Bottom-up tosplit marking (lines 13-17): a node that needs a series
    // but has none asks its parent to split.
    const auto& touched = shhhScratch_.touched;
    for (auto it = touched.rbegin(); it != touched.rend(); ++it) {
      const NodeId n = it->node;
      if (n == hierarchy_.root()) continue;
      if ((it->heavy || w.isMarked(DetectWorkspace::kSplitPlane, n)) &&
          !isMember(n)) {
        const NodeId p = hierarchy_.parent(n);
        if (w.mark(DetectWorkspace::kSplitPlane, p)) {
          tosplitNodes_.push_back(p);
        }
      }
    }

    // Top-down splits (lines 18-20). The tosplit set was fully determined
    // above, so an ascending sweep visits parents before children.
    if (!tosplitNodes_.empty()) {
      std::sort(tosplitNodes_.begin(), tosplitNodes_.end());
      for (NodeId n : tosplitNodes_) {
        if (isMember(n) || n == hierarchy_.root()) {
          // If this node itself received a share earlier in the sweep and
          // a reference series is available, repair its history before
          // distributing it further down (§V-B5 applies corrections at
          // split time).
          if (w.isMarked(DetectWorkspace::kReceivedPlane, n)) {
            correctFromRef(n);
          }
          split(n);
        }
      }
    }

    // Bottom-up merges (lines 21-23): members that are no longer heavy
    // fold into their parent; cascades handled by a descending worklist.
    {
      std::set<NodeId, std::greater<NodeId>> worklist;
      for (NodeId n : holders_) {
        if (n != hierarchy_.root() && isMember(n) && !freshHeavy(n)) {
          worklist.insert(n);
        }
      }
      while (!worklist.empty()) {
        const NodeId n = *worklist.begin();
        worklist.erase(worklist.begin());
        if (!isMember(n) || freshHeavy(n)) continue;
        const NodeId np = hierarchy_.parent(n);
        mergeGroupOf(n);
        if (np != kInvalidNode && np != hierarchy_.root() &&
            !freshHeavy(np)) {
          worklist.insert(np);
        }
      }
    }

    // Root membership by weight (lines 24-25).
    rootIsMember_ = freshHeavy(hierarchy_.root());

    // Reference-series repair of split/merge bias (§V-B5).
    applyReferenceCorrections();

    if (config_.validateShhh) {
      // Lemma 1 cross-check: holders (modulo the root flag) must equal the
      // fresh Definition-2 set.
      for (NodeId n : holders_) {
        if (n == hierarchy_.root()) continue;
        TIRESIAS_EXPECT(freshHeavy(n), "holder is not a fresh heavy hitter");
      }
      for (const auto& t : touched) {
        TIRESIAS_EXPECT(!t.heavy || isMember(t.node),
                        "fresh heavy hitter lacks a series");
      }
    }

    // Append the fresh W_n and advance forecasts (lines 26-29). The root
    // appends even when not a member so its series stays current. The
    // holders' fresh weights come out of the workspace in one epoch-masked
    // SIMD gather (the bulk form of modifiedOrZero — a pure copy-or-zero,
    // so the staged values are the exact scalar reads); only the
    // inherently sequential model updates remain per-holder.
    weightScratch_.resize(holders_.size());
    simd::gatherStampedOrZero(weightScratch_.data(), w.modifiedData(),
                              w.valueEpochData(), w.valueGeneration(),
                              holders_.data(), holders_.size());
    for (std::size_t i = 0; i < holders_.size(); ++i) {
      auto& st = stateOf(holders_[i]);
      const double weight = weightScratch_[i];
      st.forecastSeries.push(st.model->forecast());
      st.actual.push(weight);
      st.model->update(weight);
    }
    // Reference series track raw aggregates unconditionally (same bulk
    // gather, over the raw plane).
    weightScratch_.resize(refNodes_.size());
    simd::gatherStampedOrZero(weightScratch_.data(), w.rawData(),
                              w.valueEpochData(), w.valueGeneration(),
                              refNodes_.data(), refNodes_.size());
    for (std::size_t i = 0; i < refNodes_.size(); ++i) {
      auto& ref = refStates_[i];
      const double a = weightScratch_[i];
      ref.forecastSeries.push(ref.model->forecast());
      ref.actual.push(a);
      ref.model->update(a);
    }
    // Split-rule statistics absorb this instance *after* adaptation.
    splitRules_.observeTouched(touched);
  }

  // ---- Stage: Detecting Anomalies (Definition 4) ----
  InstanceResult result;
  result.unit = newestUnit_;
  {
    StageTimer::Scope scope(stages_, kStageDetect);
    result.shhh = currentShhh();
    for (NodeId n : result.shhh) {
      const auto& st = stateOf(n);
      const double actual = st.actual.latest();
      const double forecast = st.forecastSeries.latest();
      if (isAnomalous(actual, forecast, config_.ratioThreshold,
                      config_.diffThreshold)) {
        result.anomalies.push_back(
            {n, newestUnit_, actual, forecast, anomalyRatio(actual, forecast)});
      }
    }
  }
  return result;
}

std::vector<NodeId> AdaDetector::currentShhh() const {
  std::vector<NodeId> out;
  out.reserve(holders_.size());
  for (NodeId n : holders_) {
    if (isMember(n)) out.push_back(n);
  }
  return out;
}

void AdaDetector::seriesInto(NodeId node, std::vector<double>& out) const {
  out.clear();
  if (node >= stateSlot_.size() || stateSlot_[node] < 0) return;
  stateOf(node).actual.appendTo(out);
}

void AdaDetector::forecastSeriesInto(NodeId node,
                                     std::vector<double>& out) const {
  out.clear();
  if (node >= stateSlot_.size() || stateSlot_[node] < 0) return;
  stateOf(node).forecastSeries.appendTo(out);
}

void AdaDetector::saveState(persist::Serializer& out) const {
  out.u8(kAdaDetectorStateTag);
  out.u64(config_.windowLength);
  out.boolean(bootstrapped_);
  out.u64(bootstrapUnits_.size());
  for (const auto& unit : bootstrapUnits_) state_io::writeCountMap(out, unit);
  out.i64(newestUnit_);
  out.boolean(rootIsMember_);
  out.u64(splitCount_);
  out.u64(mergeCount_);
  out.u64(deepChainSplitCount_);
  // holders_/refNodes_ are kept ascending, so iteration order matches the
  // historical std::map encoding byte for byte.
  out.u64(holders_.size());
  for (NodeId n : holders_) {
    const auto& st = stateOf(n);
    out.u32(n);
    st.actual.saveState(out);
    st.forecastSeries.saveState(out);
    st.model->saveState(out);
  }
  out.u64(refNodes_.size());
  for (std::size_t i = 0; i < refNodes_.size(); ++i) {
    const auto& ref = refStates_[i];
    out.u32(refNodes_[i]);
    ref.actual.saveState(out);
    ref.forecastSeries.saveState(out);
    ref.model->saveState(out);
  }
  splitRules_.saveState(out);
}

void AdaDetector::loadState(persist::Deserializer& in) {
  using persist::Deserializer;
  Deserializer::require(in.u8() == kAdaDetectorStateTag,
                        "snapshot holds a different detector type");
  Deserializer::require(in.u64() == config_.windowLength,
                        "ADA snapshot: window length mismatch");
  const bool bootstrapped = in.boolean();
  const std::size_t nBootstrap = in.count(sizeof(std::uint64_t));
  Deserializer::require(nBootstrap <= config_.windowLength,
                        "ADA snapshot: more bootstrap units than the window");
  Deserializer::require(bootstrapped || nBootstrap < config_.windowLength,
                        "ADA snapshot: bootstrap buffer full but not promoted");
  std::vector<CountMap> bootstrapUnits;
  bootstrapUnits.reserve(nBootstrap);
  for (std::size_t i = 0; i < nBootstrap; ++i) {
    bootstrapUnits.push_back(state_io::readCountMap(in, hierarchy_));
  }
  const TimeUnit newestUnit = in.i64();
  const bool rootIsMember = in.boolean();
  const std::size_t splitCount = in.u64();
  const std::size_t mergeCount = in.u64();
  const std::size_t deepChainSplitCount = in.u64();

  const auto readStates = [&](std::vector<NodeId>& nodes,
                              std::vector<SeriesState>& states) {
    const std::size_t n = in.count(sizeof(std::uint32_t));
    nodes.clear();
    states.clear();
    nodes.reserve(n);
    states.reserve(n);
    NodeId prev = kInvalidNode;
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId node = in.u32();
      Deserializer::require(node < hierarchy_.size(),
                            "snapshot: node id outside hierarchy");
      Deserializer::require(prev == kInvalidNode || node > prev,
                            "ADA snapshot: node keys not strictly ascending");
      prev = node;
      SeriesState st;
      st.actual.loadState(in);
      st.forecastSeries.loadState(in);
      Deserializer::require(
          st.actual.capacity() == config_.windowLength &&
              st.forecastSeries.capacity() == config_.windowLength,
          "ADA snapshot: series ring capacity != window length");
      st.model = config_.forecasterFactory->make();
      st.model->loadState(in);
      nodes.push_back(node);
      states.push_back(std::move(st));
    }
  };
  std::vector<NodeId> holders, refNodes;
  std::vector<SeriesState> states, refs;
  readStates(holders, states);
  readStates(refNodes, refs);
  splitRules_.loadState(in, hierarchy_.size());

  bootstrapped_ = bootstrapped;
  bootstrapUnits_ = std::move(bootstrapUnits);
  newestUnit_ = newestUnit;
  rootIsMember_ = rootIsMember;
  splitCount_ = splitCount;
  mergeCount_ = mergeCount;
  deepChainSplitCount_ = deepChainSplitCount;
  std::fill(stateSlot_.begin(), stateSlot_.end(), -1);
  freeStateSlots_.clear();
  holders_ = std::move(holders);
  stateSlots_ = std::move(states);
  for (std::size_t i = 0; i < holders_.size(); ++i) {
    stateSlot_[holders_[i]] = static_cast<std::int32_t>(i);
  }
  std::fill(refSlot_.begin(), refSlot_.end(), -1);
  refNodes_ = std::move(refNodes);
  refStates_ = std::move(refs);
  for (std::size_t i = 0; i < refNodes_.size(); ++i) {
    refSlot_[refNodes_[i]] = static_cast<std::int32_t>(i);
  }
  // Per-instance scratch never survives a step, so a restored detector
  // starts with it empty, exactly like one that just finished step().
  tosplitNodes_.clear();
  receivedNodes_.clear();
  lastTouched_ = 0;
}

MemoryStats AdaDetector::memoryStats() const {
  MemoryStats stats;
  stats.seriesCount = holders_.size() * 2;
  for (NodeId n : holders_) {
    const auto& st = stateOf(n);
    stats.seriesValues += st.actual.size() + st.forecastSeries.size();
  }
  stats.refSeriesCount = refNodes_.size() * 2;
  for (const auto& ref : refStates_) {
    stats.refSeriesValues += ref.actual.size() + ref.forecastSeries.size();
  }
  // One resident tree's worth of per-node bookkeeping: the last touched
  // set plus split-rule statistics.
  stats.treeNodesStored = lastTouched_ + splitRules_.trackedNodes();
  stats.workspaceBytes = config_.workspace->bytes();
  stats.bytesEstimate =
      (stats.seriesValues + stats.refSeriesValues) * sizeof(double) +
      stats.treeNodesStored * (sizeof(NodeId) + sizeof(double));
  return stats;
}

}  // namespace tiresias
