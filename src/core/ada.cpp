#include "core/ada.h"

#include <algorithm>
#include <type_traits>

#include "common/expect.h"
#include "core/state_io.h"

namespace tiresias {

AdaDetector::AdaDetector(const Hierarchy& hierarchy, DetectorConfig config)
    : hierarchy_(hierarchy),
      config_(std::move(config)),
      splitRules_(config_.splitRule, config_.splitEwmaAlpha) {
  TIRESIAS_EXPECT(config_.windowLength >= 2, "window length must be >= 2");
  TIRESIAS_EXPECT(config_.forecasterFactory != nullptr,
                  "forecaster factory is required");
}

AdaDetector::~AdaDetector() = default;

std::optional<InstanceResult> AdaDetector::step(const TimeUnitBatch& batch) {
  newestUnit_ = batch.unit;
  if (!bootstrapped_) {
    bootstrapInstance(batch);
    if (bootstrapUnits_.size() < config_.windowLength) return std::nullopt;
    finishBootstrap();
    // The bootstrap instance itself also reports a detection result.
  } else {
    return adaptiveInstance(batch);
  }

  // First detection result (end of bootstrap).
  InstanceResult result;
  result.unit = newestUnit_;
  {
    StageTimer::Scope scope(stages_, kStageDetect);
    result.shhh = currentShhh();
    for (NodeId n : result.shhh) {
      const auto& st = states_.at(n);
      const double actual = st.actual.latest();
      const double forecast = st.forecastSeries.latest();
      if (isAnomalous(actual, forecast, config_.ratioThreshold,
                      config_.diffThreshold)) {
        result.anomalies.push_back(
            {n, newestUnit_, actual, forecast, anomalyRatio(actual, forecast)});
      }
    }
  }
  return result;
}

void AdaDetector::bootstrapInstance(const TimeUnitBatch& batch) {
  StageTimer::Scope scope(stages_, kStageUpdateHierarchies);
  CountMap counts;
  counts.reserve(batch.records.size());
  for (const auto& r : batch.records) counts[r.category] += 1.0;
  bootstrapUnits_.push_back(std::move(counts));
}

void AdaDetector::finishBootstrap() {
  StageTimer::Scope scope(stages_, kStageCreateSeries);
  // One STA-style reconstruction (Fig 5 lines 2-5).
  const auto shhhResult =
      computeShhh(hierarchy_, bootstrapUnits_.back(), config_.theta);
  const auto& shhh = shhhResult.shhh;

  const auto series =
      modifiedSeriesFixedSet(hierarchy_, bootstrapUnits_, shhh);
  for (const auto& [node, actual] : series) {
    SeriesState st;
    st.actual = RingSeries(config_.windowLength);
    st.forecastSeries = RingSeries(config_.windowLength);
    st.model = config_.forecasterFactory->make();
    for (double v : actual) {
      st.forecastSeries.push(st.model->forecast());
      st.actual.push(v);
      st.model->update(v);
    }
    states_.emplace(node, std::move(st));
  }
  rootIsMember_ =
      std::binary_search(shhh.begin(), shhh.end(), hierarchy_.root());

  // Reference series for the root and depths 2..h+1 (§V-B5).
  std::vector<NodeId> refNodes{hierarchy_.root()};
  for (std::size_t h = 0; h < config_.referenceLevels; ++h) {
    for (NodeId n : hierarchy_.nodesAtDepth(static_cast<int>(h) + 2)) {
      refNodes.push_back(n);
    }
  }
  const auto rawHist = rawSeries(hierarchy_, bootstrapUnits_, refNodes);
  for (const auto& [node, hist] : rawHist) {
    RefState ref;
    ref.actual = RingSeries(config_.windowLength);
    ref.forecastSeries = RingSeries(config_.windowLength);
    ref.model = config_.forecasterFactory->make();
    for (double v : hist) {
      ref.forecastSeries.push(ref.model->forecast());
      ref.actual.push(v);
      ref.model->update(v);
    }
    refs_.emplace(node, std::move(ref));
  }

  // Seed the split-rule statistics with the bootstrap history.
  for (const auto& unit : bootstrapUnits_) {
    const auto touched = computeShhh(hierarchy_, unit, config_.theta).touched;
    std::vector<std::pair<NodeId, double>> raws;
    raws.reserve(touched.size());
    for (const auto& t : touched) raws.emplace_back(t.node, t.raw);
    splitRules_.observeInstance(raws);
  }

  bootstrapUnits_.clear();
  bootstrapUnits_.shrink_to_fit();
  bootstrapped_ = true;
}

AdaDetector::SeriesState AdaDetector::makeScaledCopy(const SeriesState& src,
                                                     double ratio) const {
  SeriesState out;
  out.actual = src.actual;
  out.actual.scale(ratio);
  out.forecastSeries = src.forecastSeries;
  out.forecastSeries.scale(ratio);
  out.model = src.model->clone();
  out.model->scale(ratio);
  return out;
}

void AdaDetector::split(NodeId n) {
  // C_n: children not currently holding membership (Fig 7 line 1).
  std::vector<NodeId> group;
  bool weightTrigger = false;
  bool chainTrigger = false;
  for (NodeId c : hierarchy_.children(n)) {
    if (isMember(c)) continue;
    group.push_back(c);
    auto wit = weight_.find(c);
    const double w = wit == weight_.end() ? 0.0 : wit->second;
    if (w >= config_.theta) weightTrigger = true;
    // Deviation 1 (DESIGN.md): a pending tosplit also triggers, so heavy
    // hitters hidden multiple levels down still receive a series.
    if (tosplit_.count(c)) chainTrigger = true;
  }
  if ((!weightTrigger && !chainTrigger) || group.empty()) return;
  ++splitCount_;
  if (!weightTrigger) ++deepChainSplitCount_;

  const auto& st = states_.at(n);
  const auto ratios = splitRules_.ratios(group);
  for (std::size_t i = 0; i < group.size(); ++i) {
    SeriesState child = makeScaledCopy(st, ratios[i]);
    states_.insert_or_assign(group[i], std::move(child));
    received_.insert(group[i]);
  }
  if (n == hierarchy_.root()) {
    // The root always keeps a series object for future splits; its
    // residual history is rebuilt from the root reference series in the
    // correction phase.
    rootIsMember_ = false;
    received_.insert(n);
  } else {
    states_.erase(n);
    received_.erase(n);
  }
}

void AdaDetector::mergeGroupOf(NodeId n) {
  // Gather C_n = members among {parent} ∪ siblings with W < θ (Fig 8).
  const NodeId np = hierarchy_.parent(n);
  TIRESIAS_EXPECT(np != kInvalidNode, "root does not merge");
  auto weightOf = [&](NodeId id) {
    auto it = weight_.find(id);
    return it == weight_.end() ? 0.0 : it->second;
  };
  std::vector<NodeId> group;
  for (NodeId c : hierarchy_.children(np)) {
    if (isMember(c) && weightOf(c) < config_.theta) group.push_back(c);
  }
  TIRESIAS_EXPECT(!group.empty(), "merge group must contain the trigger");
  ++mergeCount_;

  // Sum the group's states; start from the parent's own state if it holds
  // one (whether or not it is part of the below-θ group). For the root
  // this folds into its permanent series state.
  SeriesState acc;
  bool accInit = false;
  if (holds(np)) {
    acc = std::move(states_.at(np));
    accInit = true;
  }
  for (NodeId c : group) {
    auto& cs = states_.at(c);
    if (!accInit) {
      acc = std::move(cs);
      accInit = true;
    } else {
      acc.actual.addFrom(cs.actual);
      acc.forecastSeries.addFrom(cs.forecastSeries);
      acc.model->addFrom(*cs.model);
    }
    states_.erase(c);
    received_.erase(c);
  }
  states_.insert_or_assign(np, std::move(acc));
  received_.insert(np);
  if (np == hierarchy_.root()) rootIsMember_ = true;
}

bool AdaDetector::correctFromRef(NodeId n) {
  if (!holds(n)) return false;
  auto refIt = refs_.find(n);
  if (refIt == refs_.end()) return false;

  // T[n] := T_REF[n] − Σ T[d] over member heavy-hitter descendants d.
  RingSeries actual = refIt->second.actual;
  RingSeries forecast = refIt->second.forecastSeries;
  auto model = refIt->second.model->clone();
  for (auto it = states_.upper_bound(n); it != states_.end(); ++it) {
    const NodeId d = it->first;
    if (!hierarchy_.isAncestorOrEqual(n, d)) continue;
    if (!isMember(d)) continue;
    auto neg = it->second.model->clone();
    neg->scale(-1.0);
    model->addFrom(*neg);
    RingSeries negActual = it->second.actual;
    negActual.scale(-1.0);
    actual.addFrom(negActual);
    RingSeries negForecast = it->second.forecastSeries;
    negForecast.scale(-1.0);
    forecast.addFrom(negForecast);
  }
  auto& st = states_.at(n);
  st.actual = std::move(actual);
  st.forecastSeries = std::move(forecast);
  st.model = std::move(model);
  return true;
}

void AdaDetector::applyReferenceCorrections() {
  if (received_.empty()) return;
  // Deepest first so corrected descendants feed ancestors' corrections.
  std::vector<NodeId> targets(received_.begin(), received_.end());
  std::sort(targets.begin(), targets.end(), std::greater<NodeId>());
  for (NodeId n : targets) correctFromRef(n);
}

std::optional<InstanceResult> AdaDetector::adaptiveInstance(
    const TimeUnitBatch& batch) {
  // ---- Stage: Updating Hierarchies (Fig 5 lines 6-12) ----
  std::vector<NodeId> touched;
  {
    StageTimer::Scope scope(stages_, kStageUpdateHierarchies);
    raw_.clear();
    weight_.clear();
    tosplit_.clear();
    received_.clear();

    CountMap counts;
    counts.reserve(batch.records.size());
    for (const auto& r : batch.records) counts[r.category] += 1.0;
    const auto result = computeShhh(hierarchy_, counts, config_.theta);
    touched.reserve(result.touched.size());
    for (const auto& t : result.touched) {
      raw_[t.node] = t.raw;
      weight_[t.node] = t.modified;
      touched.push_back(t.node);
    }
    // `touched` comes back ascending; descending is bottom-up.
  }

  auto freshHeavy = [&](NodeId n) {
    auto it = weight_.find(n);
    return it != weight_.end() && it->second >= config_.theta;
  };

  // ---- Stage: Creating Time Series (Fig 5 lines 13-29) ----
  {
    StageTimer::Scope scope(stages_, kStageCreateSeries);

    // Bottom-up tosplit marking (lines 13-17): a node that needs a series
    // but has none asks its parent to split.
    for (auto it = touched.rbegin(); it != touched.rend(); ++it) {
      const NodeId n = *it;
      if (n == hierarchy_.root()) continue;
      if ((freshHeavy(n) || tosplit_.count(n)) && !isMember(n)) {
        tosplit_.insert(hierarchy_.parent(n));
      }
    }

    // Top-down splits (lines 18-20). tosplit_ was fully determined above,
    // so an ascending sweep visits parents before children.
    if (!tosplit_.empty()) {
      std::vector<NodeId> splitters(tosplit_.begin(), tosplit_.end());
      std::sort(splitters.begin(), splitters.end());
      for (NodeId n : splitters) {
        if (isMember(n) || n == hierarchy_.root()) {
          // If this node itself received a share earlier in the sweep and
          // a reference series is available, repair its history before
          // distributing it further down (§V-B5 applies corrections at
          // split time).
          if (received_.count(n)) correctFromRef(n);
          split(n);
        }
      }
    }

    // Bottom-up merges (lines 21-23): members that are no longer heavy
    // fold into their parent; cascades handled by a descending worklist.
    {
      std::set<NodeId, std::greater<NodeId>> worklist;
      for (const auto& [n, st] : states_) {
        (void)st;
        if (n != hierarchy_.root() && isMember(n) && !freshHeavy(n)) {
          worklist.insert(n);
        }
      }
      while (!worklist.empty()) {
        const NodeId n = *worklist.begin();
        worklist.erase(worklist.begin());
        if (!isMember(n) || freshHeavy(n)) continue;
        const NodeId np = hierarchy_.parent(n);
        mergeGroupOf(n);
        if (np != kInvalidNode && np != hierarchy_.root() &&
            !freshHeavy(np)) {
          worklist.insert(np);
        }
      }
    }

    // Root membership by weight (lines 24-25).
    rootIsMember_ = freshHeavy(hierarchy_.root());

    // Reference-series repair of split/merge bias (§V-B5).
    applyReferenceCorrections();

    if (config_.validateShhh) {
      // Lemma 1 cross-check: holders (modulo the root flag) must equal the
      // fresh Definition-2 set.
      for (const auto& [n, st] : states_) {
        (void)st;
        if (n == hierarchy_.root()) continue;
        TIRESIAS_EXPECT(freshHeavy(n), "holder is not a fresh heavy hitter");
      }
      for (NodeId n : touched) {
        TIRESIAS_EXPECT(!freshHeavy(n) || isMember(n),
                        "fresh heavy hitter lacks a series");
      }
    }

    // Append the fresh W_n and advance forecasts (lines 26-29). The root
    // appends even when not a member so its series stays current.
    for (auto& [n, st] : states_) {
      auto wit = weight_.find(n);
      const double w = wit == weight_.end() ? 0.0 : wit->second;
      st.forecastSeries.push(st.model->forecast());
      st.actual.push(w);
      st.model->update(w);
    }
    // Reference series track raw aggregates unconditionally.
    for (auto& [n, ref] : refs_) {
      auto rit = raw_.find(n);
      const double a = rit == raw_.end() ? 0.0 : rit->second;
      ref.forecastSeries.push(ref.model->forecast());
      ref.actual.push(a);
      ref.model->update(a);
    }
    // Split-rule statistics absorb this instance *after* adaptation.
    std::vector<std::pair<NodeId, double>> raws;
    raws.reserve(raw_.size());
    for (const auto& [n, a] : raw_) raws.emplace_back(n, a);
    splitRules_.observeInstance(raws);
  }

  // ---- Stage: Detecting Anomalies (Definition 4) ----
  InstanceResult result;
  result.unit = newestUnit_;
  {
    StageTimer::Scope scope(stages_, kStageDetect);
    result.shhh = currentShhh();
    for (NodeId n : result.shhh) {
      const auto& st = states_.at(n);
      const double actual = st.actual.latest();
      const double forecast = st.forecastSeries.latest();
      if (isAnomalous(actual, forecast, config_.ratioThreshold,
                      config_.diffThreshold)) {
        result.anomalies.push_back(
            {n, newestUnit_, actual, forecast, anomalyRatio(actual, forecast)});
      }
    }
  }
  return result;
}

std::vector<NodeId> AdaDetector::currentShhh() const {
  std::vector<NodeId> out;
  out.reserve(states_.size());
  for (const auto& [n, st] : states_) {
    (void)st;
    if (isMember(n)) out.push_back(n);
  }
  return out;
}

std::vector<double> AdaDetector::seriesOf(NodeId node) const {
  auto it = states_.find(node);
  return it == states_.end() ? std::vector<double>{}
                             : it->second.actual.toVector();
}

std::vector<double> AdaDetector::forecastSeriesOf(NodeId node) const {
  auto it = states_.find(node);
  return it == states_.end() ? std::vector<double>{}
                             : it->second.forecastSeries.toVector();
}

void AdaDetector::saveState(persist::Serializer& out) const {
  out.u8(kAdaDetectorStateTag);
  out.u64(config_.windowLength);
  out.boolean(bootstrapped_);
  out.u64(bootstrapUnits_.size());
  for (const auto& unit : bootstrapUnits_) state_io::writeCountMap(out, unit);
  out.i64(newestUnit_);
  out.boolean(rootIsMember_);
  out.u64(splitCount_);
  out.u64(mergeCount_);
  out.u64(deepChainSplitCount_);
  // states_ and refs_ are std::map, so iteration is already the canonical
  // ascending-node order.
  out.u64(states_.size());
  for (const auto& [node, st] : states_) {
    out.u32(node);
    st.actual.saveState(out);
    st.forecastSeries.saveState(out);
    st.model->saveState(out);
  }
  out.u64(refs_.size());
  for (const auto& [node, ref] : refs_) {
    out.u32(node);
    ref.actual.saveState(out);
    ref.forecastSeries.saveState(out);
    ref.model->saveState(out);
  }
  splitRules_.saveState(out);
}

void AdaDetector::loadState(persist::Deserializer& in) {
  using persist::Deserializer;
  Deserializer::require(in.u8() == kAdaDetectorStateTag,
                        "snapshot holds a different detector type");
  Deserializer::require(in.u64() == config_.windowLength,
                        "ADA snapshot: window length mismatch");
  const bool bootstrapped = in.boolean();
  const std::size_t nBootstrap = in.count(sizeof(std::uint64_t));
  Deserializer::require(nBootstrap <= config_.windowLength,
                        "ADA snapshot: more bootstrap units than the window");
  Deserializer::require(bootstrapped || nBootstrap < config_.windowLength,
                        "ADA snapshot: bootstrap buffer full but not promoted");
  std::vector<CountMap> bootstrapUnits;
  bootstrapUnits.reserve(nBootstrap);
  for (std::size_t i = 0; i < nBootstrap; ++i) {
    bootstrapUnits.push_back(state_io::readCountMap(in, hierarchy_));
  }
  const TimeUnit newestUnit = in.i64();
  const bool rootIsMember = in.boolean();
  const std::size_t splitCount = in.u64();
  const std::size_t mergeCount = in.u64();
  const std::size_t deepChainSplitCount = in.u64();

  const auto readStates = [&](auto& map) {
    const std::size_t n = in.count(sizeof(std::uint32_t));
    NodeId prev = kInvalidNode;
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId node = in.u32();
      Deserializer::require(node < hierarchy_.size(),
                            "snapshot: node id outside hierarchy");
      Deserializer::require(prev == kInvalidNode || node > prev,
                            "ADA snapshot: node keys not strictly ascending");
      prev = node;
      typename std::decay_t<decltype(map)>::mapped_type st;
      st.actual.loadState(in);
      st.forecastSeries.loadState(in);
      Deserializer::require(
          st.actual.capacity() == config_.windowLength &&
              st.forecastSeries.capacity() == config_.windowLength,
          "ADA snapshot: series ring capacity != window length");
      st.model = config_.forecasterFactory->make();
      st.model->loadState(in);
      map.emplace(node, std::move(st));
    }
  };
  std::map<NodeId, SeriesState> states;
  std::map<NodeId, RefState> refs;
  readStates(states);
  readStates(refs);
  splitRules_.loadState(in);

  bootstrapped_ = bootstrapped;
  bootstrapUnits_ = std::move(bootstrapUnits);
  newestUnit_ = newestUnit;
  rootIsMember_ = rootIsMember;
  splitCount_ = splitCount;
  mergeCount_ = mergeCount;
  deepChainSplitCount_ = deepChainSplitCount;
  states_ = std::move(states);
  refs_ = std::move(refs);
  // Per-instance scratch never survives a step, so a restored detector
  // starts with it empty, exactly like one that just finished step().
  raw_.clear();
  weight_.clear();
  tosplit_.clear();
  received_.clear();
}

MemoryStats AdaDetector::memoryStats() const {
  MemoryStats stats;
  stats.seriesCount = states_.size() * 2;
  for (const auto& [n, st] : states_) {
    (void)n;
    stats.seriesValues += st.actual.size() + st.forecastSeries.size();
  }
  stats.refSeriesCount = refs_.size() * 2;
  for (const auto& [n, ref] : refs_) {
    (void)n;
    stats.refSeriesValues += ref.actual.size() + ref.forecastSeries.size();
  }
  // One resident tree's worth of per-node bookkeeping: the touched maps
  // plus split-rule statistics.
  stats.treeNodesStored = raw_.size() + splitRules_.trackedNodes();
  stats.bytesEstimate =
      (stats.seriesValues + stats.refSeriesValues) * sizeof(double) +
      stats.treeNodesStored * (sizeof(NodeId) + sizeof(double));
  return stats;
}

}  // namespace tiresias
