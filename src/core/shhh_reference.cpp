#include "core/shhh_reference.h"

#include <algorithm>

#include "common/expect.h"

namespace tiresias::reference {
namespace {

/// Collect the union of the counted nodes and all their ancestors, sorted
/// descending (BFS ids make descending order a valid bottom-up order).
std::vector<NodeId> touchedBottomUp(const Hierarchy& hierarchy,
                                    const CountMap& counts) {
  std::vector<NodeId> touched;
  touched.reserve(counts.size() * 2 + 1);
  std::unordered_map<NodeId, bool> seen;
  for (const auto& [node, weight] : counts) {
    (void)weight;
    for (NodeId cur = node; cur != kInvalidNode;
         cur = hierarchy.parent(cur)) {
      if (seen.emplace(cur, true).second) {
        touched.push_back(cur);
      } else {
        break;  // the rest of the chain is already present
      }
    }
  }
  std::sort(touched.begin(), touched.end(), std::greater<NodeId>());
  return touched;
}

}  // namespace

ShhhResult computeShhh(const Hierarchy& hierarchy, const CountMap& counts,
                       double theta) {
  TIRESIAS_EXPECT(theta > 0.0, "theta must be positive");
  ShhhResult result;
  const auto touched = touchedBottomUp(hierarchy, counts);
  if (touched.empty()) return result;

  std::unordered_map<NodeId, double> raw, modified;
  raw.reserve(touched.size());
  modified.reserve(touched.size());
  for (const auto& [node, weight] : counts) {
    raw[node] += weight;
    modified[node] += weight;
  }

  result.touched.reserve(touched.size());
  for (NodeId n : touched) {
    const double a = raw[n];
    const double w = modified[n];
    const bool heavy = w >= theta;
    result.touched.push_back({n, a, w, heavy});
    const NodeId p = hierarchy.parent(n);
    if (p != kInvalidNode) {
      raw[p] += a;
      if (!heavy) modified[p] += w;  // Definition 2: HH children discounted
    }
    if (heavy) result.shhh.push_back(n);
  }
  std::reverse(result.touched.begin(), result.touched.end());
  std::reverse(result.shhh.begin(), result.shhh.end());
  return result;
}

std::unordered_map<NodeId, std::vector<double>> modifiedSeriesFixedSet(
    const Hierarchy& hierarchy, const std::vector<CountMap>& unitCounts,
    const std::vector<NodeId>& fixedSet) {
  std::unordered_map<NodeId, bool> inSet;
  inSet.reserve(fixedSet.size());
  for (NodeId n : fixedSet) inSet[n] = true;

  std::unordered_map<NodeId, std::vector<double>> series;
  auto ensure = [&](NodeId n) {
    auto& s = series[n];
    if (s.empty()) s.assign(unitCounts.size(), 0.0);
  };
  ensure(hierarchy.root());
  for (NodeId n : fixedSet) ensure(n);

  for (std::size_t u = 0; u < unitCounts.size(); ++u) {
    const auto touched = touchedBottomUp(hierarchy, unitCounts[u]);
    std::unordered_map<NodeId, double> value;
    value.reserve(touched.size());
    for (const auto& [node, weight] : unitCounts[u]) value[node] += weight;
    for (NodeId n : touched) {
      const double w = value[n];
      auto it = series.find(n);
      if (it != series.end()) it->second[u] = w;
      const NodeId p = hierarchy.parent(n);
      // Members of the fixed set cut their weight off from ancestors,
      // regardless of this unit's magnitudes (fixed-membership semantics).
      if (p != kInvalidNode && !inSet.count(n)) value[p] += w;
    }
  }
  return series;
}

std::unordered_map<NodeId, std::vector<double>> rawSeries(
    const Hierarchy& hierarchy, const std::vector<CountMap>& unitCounts,
    const std::vector<NodeId>& nodes) {
  std::unordered_map<NodeId, std::vector<double>> series;
  for (NodeId n : nodes) series[n].assign(unitCounts.size(), 0.0);

  for (std::size_t u = 0; u < unitCounts.size(); ++u) {
    const auto touched = touchedBottomUp(hierarchy, unitCounts[u]);
    std::unordered_map<NodeId, double> value;
    value.reserve(touched.size());
    for (const auto& [node, weight] : unitCounts[u]) value[node] += weight;
    for (NodeId n : touched) {
      const double a = value[n];
      auto it = series.find(n);
      if (it != series.end()) it->second[u] = a;
      const NodeId p = hierarchy.parent(n);
      if (p != kInvalidNode) value[p] += a;
    }
  }
  return series;
}

StaReplica::StaReplica(const Hierarchy& hierarchy, DetectorConfig config)
    : hierarchy_(hierarchy), config_(std::move(config)) {
  TIRESIAS_EXPECT(config_.windowLength >= 2, "window length must be >= 2");
  TIRESIAS_EXPECT(config_.forecasterFactory != nullptr,
                  "forecaster factory is required");
}

std::optional<InstanceResult> StaReplica::step(const TimeUnitBatch& batch) {
  {
    StageTimer::Scope scope(stages_, kStageUpdateHierarchies);
    CountMap counts;
    counts.reserve(batch.records.size());
    for (const auto& r : batch.records) counts[r.category] += 1.0;
    window_.push_back(std::move(counts));
    if (window_.size() > config_.windowLength) window_.pop_front();
    newestUnit_ = batch.unit;
  }
  if (window_.size() < config_.windowLength) return std::nullopt;

  InstanceResult result;
  result.unit = newestUnit_;

  {
    StageTimer::Scope scope(stages_, kStageCreateSeries);
    // SHHH of the detection unit, then full window reconstruction with
    // that fixed set (Fig 4 lines 6-9) — including the historical window
    // copy.
    shhh_ = reference::computeShhh(hierarchy_, window_.back(),
                                   config_.theta).shhh;
    const std::vector<CountMap> units(window_.begin(), window_.end());
    series_ = reference::modifiedSeriesFixedSet(hierarchy_, units, shhh_);

    forecastSeries_.clear();
    for (const auto& [node, actual] : series_) {
      auto model = config_.forecasterFactory->make();
      std::vector<double> fc(actual.size(), 0.0);
      for (std::size_t i = 0; i < actual.size(); ++i) {
        fc[i] = model->forecast();
        model->update(actual[i]);
      }
      forecastSeries_[node] = std::move(fc);
    }
  }

  {
    StageTimer::Scope scope(stages_, kStageDetect);
    result.shhh = shhh_;
    for (NodeId n : shhh_) {
      const double actual = series_.at(n).back();
      const double forecast = forecastSeries_.at(n).back();
      if (isAnomalous(actual, forecast, config_.ratioThreshold,
                      config_.diffThreshold)) {
        result.anomalies.push_back(
            {n, newestUnit_, actual, forecast,
             anomalyRatio(actual, forecast)});
      }
    }
    std::sort(result.anomalies.begin(), result.anomalies.end(),
              [](const Anomaly& a, const Anomaly& b) {
                return a.node < b.node;
              });
  }
  return result;
}

std::vector<double> StaReplica::seriesOf(NodeId node) const {
  auto it = series_.find(node);
  return it == series_.end() ? std::vector<double>{} : it->second;
}

std::vector<double> StaReplica::forecastSeriesOf(NodeId node) const {
  auto it = forecastSeries_.find(node);
  return it == forecastSeries_.end() ? std::vector<double>{} : it->second;
}

}  // namespace tiresias::reference
