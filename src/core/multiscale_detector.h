// Sliding-scale detection (§V-B6): detection timeunit Δ with a finer
// window increment ς, where Δ = λ·ς.
//
// The paper reduces the (Δ, ς) problem to an equivalent one at unit size
// ς with multiple time scales: run the core detector at resolution ς and
// evaluate Definition 4 on the *coarse* value — the sum of the last λ
// fine-grained actuals — against the sum of the last λ fine-grained
// forecasts (both linear functionals, so the reduction is exact for the
// additive models used). Every fine step therefore yields a detection
// verdict for the Δ-sized unit ending at that step: the detection window
// slides by ς as in Fig 3(b).
//
// Heavy hitters are the inner detector's (computed at resolution ς); the
// coarse anomaly test runs on each holder with at least λ values of
// history.
#pragma once

#include "core/ada.h"

namespace tiresias {

struct SlidingScaleConfig {
  /// λ = Δ/ς: how many fine units make one detection unit. λ = 1
  /// degenerates to plain per-unit detection.
  std::size_t lambda = 1;
  /// Definition-4 thresholds applied at the coarse scale.
  double ratioThreshold = 2.8;
  double diffThreshold = 8.0;
};

class SlidingScaleDetector {
 public:
  /// `fine` configures the inner ADA detector at unit size ς. The fine
  /// window must be at least `scale.lambda` long.
  SlidingScaleDetector(const Hierarchy& hierarchy, DetectorConfig fine,
                       SlidingScaleConfig scale);

  /// Feed one ς-sized timeunit. Once the inner window is full, returns the
  /// coarse-scale detection result for the Δ window ending at this unit.
  /// Anomaly::unit is the fine unit index of the window's last unit.
  std::optional<InstanceResult> step(const TimeUnitBatch& batch);

  const AdaDetector& inner() const { return ada_; }
  std::size_t lambda() const { return scale_.lambda; }

  /// The sliding-scale layer is stateless beyond the inner ADA detector,
  /// so its snapshot is the inner detector's.
  void saveState(persist::Serializer& out) const { ada_.saveState(out); }
  void loadState(persist::Deserializer& in) { ada_.loadState(in); }

 private:
  AdaDetector ada_;
  SlidingScaleConfig scale_;
  // Reused per-step copies of one holder's series (copy-once accessors;
  // steady state allocates nothing).
  std::vector<double> actualBuf_;
  std::vector<double> forecastBuf_;
};

}  // namespace tiresias
