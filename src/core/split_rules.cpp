#include "core/split_rules.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"
#include "common/simd.h"

namespace tiresias {

const char* splitRuleName(SplitRule rule) {
  switch (rule) {
    case SplitRule::kUniform:
      return "Uniform";
    case SplitRule::kLastTimeUnit:
      return "Last-Time-Unit";
    case SplitRule::kLongTermHistory:
      return "Long-Term-History";
    case SplitRule::kEwma:
      return "EWMA";
  }
  return "?";
}

SplitRuleEngine::SplitRuleEngine(SplitRule rule, double ewmaAlpha)
    : rule_(rule), alpha_(ewmaAlpha) {
  TIRESIAS_EXPECT(ewmaAlpha > 0.0 && ewmaAlpha <= 1.0,
                  "split EWMA alpha must be in (0,1]");
}

void SplitRuleEngine::ensureNode(NodeId node) {
  if (node < lastValue_.size()) return;
  const std::size_t size = static_cast<std::size_t>(node) + 1;
  lastValue_.resize(size, 0.0);
  lastStamp_.resize(size, -1);
  cumulative_.resize(size, 0.0);
  cumPresent_.resize(size, 0);
  ewma_.resize(size);
}

template <typename Range, typename Proj>
void SplitRuleEngine::observeRange(const Range& range, const Proj& proj) {
  ++instanceCount_;
  switch (rule_) {
    case SplitRule::kUniform:
      break;
    case SplitRule::kLastTimeUnit:
      lastCount_ = 0;
      for (const auto& entry : range) {
        const auto [node, w] = proj(entry);
        ensureNode(node);
        if (lastStamp_[node] != instanceCount_) {
          lastStamp_[node] = instanceCount_;
          ++lastCount_;
          lastValue_[node] = w;
        } else {
          lastValue_[node] = w;  // duplicate key: overwrite, like the map
        }
      }
      break;
    case SplitRule::kLongTermHistory:
      for (const auto& entry : range) {
        const auto [node, w] = proj(entry);
        ensureNode(node);
        if (!cumPresent_[node]) {
          cumPresent_[node] = 1;
          ++cumCount_;
        }
        cumulative_[node] += w;
      }
      break;
    case SplitRule::kEwma:
      for (const auto& entry : range) {
        const auto [node, w] = proj(entry);
        ensureNode(node);
        auto& state = ewma_[node];
        if (state.instance == 0) ++ewmaCount_;
        const auto gap = instanceCount_ - state.instance;
        // Lazy decay covers the instances where the node was untouched
        // (observed weight 0): value *= (1-alpha)^(gap-1), then blend.
        const double decayed =
            state.instance == 0
                ? 0.0
                : state.value * std::pow(1.0 - alpha_,
                                         static_cast<double>(gap - 1));
        state.value = alpha_ * w + (1.0 - alpha_) * decayed;
        state.instance = instanceCount_;
      }
      break;
  }
}

void SplitRuleEngine::observeInstance(
    const std::vector<std::pair<NodeId, double>>& rawWeights) {
  observeRange(rawWeights, [](const auto& e) { return e; });
}

void SplitRuleEngine::observeTouched(std::span<const NodeWeights> touched) {
  observeRange(touched, [](const NodeWeights& t) {
    return std::pair<NodeId, double>{t.node, t.raw};
  });
}

double SplitRuleEngine::weightOf(NodeId node) const {
  switch (rule_) {
    case SplitRule::kUniform:
      return 1.0;
    case SplitRule::kLastTimeUnit:
      return lastUnitHas(node) ? lastValue_[node] : 0.0;
    case SplitRule::kLongTermHistory:
      return node < cumulative_.size() && cumPresent_[node]
                 ? cumulative_[node]
                 : 0.0;
    case SplitRule::kEwma: {
      if (node >= ewma_.size() || ewma_[node].instance == 0) return 0.0;
      const auto gap = instanceCount_ - ewma_[node].instance;
      return ewma_[node].value *
             std::pow(1.0 - alpha_, static_cast<double>(gap));
    }
  }
  return 0.0;
}

std::vector<double> SplitRuleEngine::ratios(
    const std::vector<NodeId>& group) const {
  TIRESIAS_EXPECT(!group.empty(), "split group must be non-empty");
  std::vector<double> out(group.size(), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    out[i] = weightOf(group[i]);
    total += out[i];
  }
  if (total <= 0.0) {
    const double u = 1.0 / static_cast<double>(group.size());
    for (auto& r : out) r = u;
    return out;
  }
  // Element-wise true division (not a reciprocal multiply), so the
  // normalized ratios match the scalar `r /= total` bit for bit.
  simd::divide(out.data(), total, out.size());
  return out;
}

void SplitRuleEngine::saveState(persist::Serializer& out) const {
  out.u8(static_cast<std::uint8_t>(rule_));
  out.f64(alpha_);
  out.i64(instanceCount_);
  // Each plane encodes exactly like the historical sorted node map:
  // count, then ascending (node, payload) for every present node.
  out.u64(lastCount_);
  for (NodeId n = 0; n < lastStamp_.size(); ++n) {
    if (!lastUnitHas(n)) continue;
    out.u32(n);
    out.f64(lastValue_[n]);
  }
  out.u64(cumCount_);
  for (NodeId n = 0; n < cumulative_.size(); ++n) {
    if (!cumPresent_[n]) continue;
    out.u32(n);
    out.f64(cumulative_[n]);
  }
  out.u64(ewmaCount_);
  for (NodeId n = 0; n < ewma_.size(); ++n) {
    if (ewma_[n].instance == 0) continue;
    out.u32(n);
    out.f64(ewma_[n].value);
    out.i64(ewma_[n].instance);
  }
}

void SplitRuleEngine::loadState(persist::Deserializer& in,
                                std::size_t nodeBound) {
  using persist::Deserializer;
  const std::uint8_t rule = in.u8();
  Deserializer::require(rule <= static_cast<std::uint8_t>(SplitRule::kEwma),
                        "split-rule snapshot: unknown rule");
  const double alpha = in.f64();
  Deserializer::require(alpha > 0.0 && alpha <= 1.0,
                        "split-rule snapshot: alpha out of range");
  const std::int64_t instances = in.i64();
  Deserializer::require(instances >= 0,
                        "split-rule snapshot: negative instance count");

  const auto readNode = [&] {
    const NodeId node = in.u32();
    Deserializer::require(static_cast<std::size_t>(node) < nodeBound,
                          "split-rule snapshot: node id out of range");
    return node;
  };

  std::vector<double> lastValue, cumulative;
  std::vector<std::int64_t> lastStamp;  // grown with -1 (= absent) stamps
  std::vector<std::uint8_t> cumPresent;
  std::vector<EwmaState> ewma;
  std::size_t lastCount = 0, cumCount = 0, ewmaCount = 0;
  const auto ensure = [](auto& vec, NodeId node,
                         auto fill) -> decltype(vec[node])& {
    if (static_cast<std::size_t>(node) >= vec.size()) {
      vec.resize(static_cast<std::size_t>(node) + 1, fill);
    }
    return vec[node];
  };

  std::size_t n = in.count(sizeof(std::uint32_t) + sizeof(double));
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node = readNode();
    ensure(lastValue, node, 0.0) = in.f64();
    // Duplicate keys collapse (the historical map overwrote them).
    if (ensure(lastStamp, node, std::int64_t{-1}) != instances) ++lastCount;
    lastStamp[node] = instances;
  }
  n = in.count(sizeof(std::uint32_t) + sizeof(double));
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node = readNode();
    ensure(cumulative, node, 0.0) = in.f64();
    if (!ensure(cumPresent, node, std::uint8_t{0})) ++cumCount;
    cumPresent[node] = 1;
  }
  n = in.count(sizeof(std::uint32_t) + 2 * sizeof(double));
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node = readNode();
    EwmaState state;
    state.value = in.f64();
    state.instance = in.i64();
    Deserializer::require(state.instance >= 0 && state.instance <= instances,
                          "split-rule snapshot: EWMA instance out of range");
    auto& slot = ensure(ewma, node, EwmaState{});
    // Keep the count equal to the number of *present* (instance != 0)
    // entries even when duplicate keys flip a slot between present and
    // absent — a drifting count would make the next saveState declare
    // more entries than it writes.
    if (slot.instance == 0 && state.instance != 0) ++ewmaCount;
    if (slot.instance != 0 && state.instance == 0) --ewmaCount;
    slot = state;
  }

  // Pad every plane to a common size.
  const std::size_t size =
      std::max({lastValue.size(), cumulative.size(), ewma.size()});
  lastValue.resize(size, 0.0);
  lastStamp.resize(size, -1);
  cumulative.resize(size, 0.0);
  cumPresent.resize(size, 0);
  ewma.resize(size);

  rule_ = static_cast<SplitRule>(rule);
  alpha_ = alpha;
  instanceCount_ = instances;
  lastValue_ = std::move(lastValue);
  lastStamp_ = std::move(lastStamp);
  lastCount_ = lastCount;
  cumulative_ = std::move(cumulative);
  cumPresent_ = std::move(cumPresent);
  cumCount_ = cumCount;
  ewma_ = std::move(ewma);
  ewmaCount_ = ewmaCount;
}

std::size_t SplitRuleEngine::trackedNodes() const {
  switch (rule_) {
    case SplitRule::kUniform:
      return 0;
    case SplitRule::kLastTimeUnit:
      return lastCount_;
    case SplitRule::kLongTermHistory:
      return cumCount_;
    case SplitRule::kEwma:
      return ewmaCount_;
  }
  return 0;
}

}  // namespace tiresias
