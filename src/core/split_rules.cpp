#include "core/split_rules.h"

#include <cmath>

#include "common/expect.h"
#include "core/state_io.h"

namespace tiresias {

const char* splitRuleName(SplitRule rule) {
  switch (rule) {
    case SplitRule::kUniform:
      return "Uniform";
    case SplitRule::kLastTimeUnit:
      return "Last-Time-Unit";
    case SplitRule::kLongTermHistory:
      return "Long-Term-History";
    case SplitRule::kEwma:
      return "EWMA";
  }
  return "?";
}

SplitRuleEngine::SplitRuleEngine(SplitRule rule, double ewmaAlpha)
    : rule_(rule), alpha_(ewmaAlpha) {
  TIRESIAS_EXPECT(ewmaAlpha > 0.0 && ewmaAlpha <= 1.0,
                  "split EWMA alpha must be in (0,1]");
}

void SplitRuleEngine::observeInstance(
    const std::vector<std::pair<NodeId, double>>& rawWeights) {
  ++instanceCount_;
  switch (rule_) {
    case SplitRule::kUniform:
      break;
    case SplitRule::kLastTimeUnit:
      lastUnit_.clear();
      for (const auto& [node, w] : rawWeights) lastUnit_[node] = w;
      break;
    case SplitRule::kLongTermHistory:
      for (const auto& [node, w] : rawWeights) cumulative_[node] += w;
      break;
    case SplitRule::kEwma:
      for (const auto& [node, w] : rawWeights) {
        auto& state = ewma_[node];
        const auto gap = instanceCount_ - state.instance;
        // Lazy decay covers the instances where the node was untouched
        // (observed weight 0): value *= (1-alpha)^(gap-1), then blend.
        const double decayed =
            state.instance == 0
                ? 0.0
                : state.value * std::pow(1.0 - alpha_,
                                         static_cast<double>(gap - 1));
        state.value = alpha_ * w + (1.0 - alpha_) * decayed;
        state.instance = instanceCount_;
      }
      break;
  }
}

double SplitRuleEngine::weightOf(NodeId node) const {
  switch (rule_) {
    case SplitRule::kUniform:
      return 1.0;
    case SplitRule::kLastTimeUnit: {
      auto it = lastUnit_.find(node);
      return it == lastUnit_.end() ? 0.0 : it->second;
    }
    case SplitRule::kLongTermHistory: {
      auto it = cumulative_.find(node);
      return it == cumulative_.end() ? 0.0 : it->second;
    }
    case SplitRule::kEwma: {
      auto it = ewma_.find(node);
      if (it == ewma_.end()) return 0.0;
      const auto gap = instanceCount_ - it->second.instance;
      return it->second.value *
             std::pow(1.0 - alpha_, static_cast<double>(gap));
    }
  }
  return 0.0;
}

std::vector<double> SplitRuleEngine::ratios(
    const std::vector<NodeId>& group) const {
  TIRESIAS_EXPECT(!group.empty(), "split group must be non-empty");
  std::vector<double> out(group.size(), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    out[i] = weightOf(group[i]);
    total += out[i];
  }
  if (total <= 0.0) {
    const double u = 1.0 / static_cast<double>(group.size());
    for (auto& r : out) r = u;
    return out;
  }
  for (auto& r : out) r /= total;
  return out;
}

void SplitRuleEngine::saveState(persist::Serializer& out) const {
  out.u8(static_cast<std::uint8_t>(rule_));
  out.f64(alpha_);
  out.i64(instanceCount_);
  state_io::writeSortedNodeMap(out, lastUnit_,
                               [&out](double v) { out.f64(v); });
  state_io::writeSortedNodeMap(out, cumulative_,
                               [&out](double v) { out.f64(v); });
  state_io::writeSortedNodeMap(out, ewma_, [&out](const EwmaState& s) {
    out.f64(s.value);
    out.i64(s.instance);
  });
}

void SplitRuleEngine::loadState(persist::Deserializer& in) {
  using persist::Deserializer;
  const std::uint8_t rule = in.u8();
  Deserializer::require(rule <= static_cast<std::uint8_t>(SplitRule::kEwma),
                        "split-rule snapshot: unknown rule");
  const double alpha = in.f64();
  Deserializer::require(alpha > 0.0 && alpha <= 1.0,
                        "split-rule snapshot: alpha out of range");
  const std::int64_t instances = in.i64();
  Deserializer::require(instances >= 0,
                        "split-rule snapshot: negative instance count");

  std::unordered_map<NodeId, double> lastUnit, cumulative;
  std::unordered_map<NodeId, EwmaState> ewma;
  std::size_t n = in.count(sizeof(std::uint32_t) + sizeof(double));
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node = in.u32();
    lastUnit[node] = in.f64();
  }
  n = in.count(sizeof(std::uint32_t) + sizeof(double));
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node = in.u32();
    cumulative[node] = in.f64();
  }
  n = in.count(sizeof(std::uint32_t) + 2 * sizeof(double));
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node = in.u32();
    EwmaState state;
    state.value = in.f64();
    state.instance = in.i64();
    Deserializer::require(state.instance >= 0 && state.instance <= instances,
                          "split-rule snapshot: EWMA instance out of range");
    ewma[node] = state;
  }

  rule_ = static_cast<SplitRule>(rule);
  alpha_ = alpha;
  instanceCount_ = instances;
  lastUnit_ = std::move(lastUnit);
  cumulative_ = std::move(cumulative);
  ewma_ = std::move(ewma);
}

std::size_t SplitRuleEngine::trackedNodes() const {
  switch (rule_) {
    case SplitRule::kUniform:
      return 0;
    case SplitRule::kLastTimeUnit:
      return lastUnit_.size();
    case SplitRule::kLongTermHistory:
      return cumulative_.size();
    case SplitRule::kEwma:
      return ewma_.size();
  }
  return 0;
}

}  // namespace tiresias
