#include "core/split_rules.h"

#include <cmath>

#include "common/expect.h"

namespace tiresias {

const char* splitRuleName(SplitRule rule) {
  switch (rule) {
    case SplitRule::kUniform:
      return "Uniform";
    case SplitRule::kLastTimeUnit:
      return "Last-Time-Unit";
    case SplitRule::kLongTermHistory:
      return "Long-Term-History";
    case SplitRule::kEwma:
      return "EWMA";
  }
  return "?";
}

SplitRuleEngine::SplitRuleEngine(SplitRule rule, double ewmaAlpha)
    : rule_(rule), alpha_(ewmaAlpha) {
  TIRESIAS_EXPECT(ewmaAlpha > 0.0 && ewmaAlpha <= 1.0,
                  "split EWMA alpha must be in (0,1]");
}

void SplitRuleEngine::observeInstance(
    const std::vector<std::pair<NodeId, double>>& rawWeights) {
  ++instanceCount_;
  switch (rule_) {
    case SplitRule::kUniform:
      break;
    case SplitRule::kLastTimeUnit:
      lastUnit_.clear();
      for (const auto& [node, w] : rawWeights) lastUnit_[node] = w;
      break;
    case SplitRule::kLongTermHistory:
      for (const auto& [node, w] : rawWeights) cumulative_[node] += w;
      break;
    case SplitRule::kEwma:
      for (const auto& [node, w] : rawWeights) {
        auto& state = ewma_[node];
        const auto gap = instanceCount_ - state.instance;
        // Lazy decay covers the instances where the node was untouched
        // (observed weight 0): value *= (1-alpha)^(gap-1), then blend.
        const double decayed =
            state.instance == 0
                ? 0.0
                : state.value * std::pow(1.0 - alpha_,
                                         static_cast<double>(gap - 1));
        state.value = alpha_ * w + (1.0 - alpha_) * decayed;
        state.instance = instanceCount_;
      }
      break;
  }
}

double SplitRuleEngine::weightOf(NodeId node) const {
  switch (rule_) {
    case SplitRule::kUniform:
      return 1.0;
    case SplitRule::kLastTimeUnit: {
      auto it = lastUnit_.find(node);
      return it == lastUnit_.end() ? 0.0 : it->second;
    }
    case SplitRule::kLongTermHistory: {
      auto it = cumulative_.find(node);
      return it == cumulative_.end() ? 0.0 : it->second;
    }
    case SplitRule::kEwma: {
      auto it = ewma_.find(node);
      if (it == ewma_.end()) return 0.0;
      const auto gap = instanceCount_ - it->second.instance;
      return it->second.value *
             std::pow(1.0 - alpha_, static_cast<double>(gap));
    }
  }
  return 0.0;
}

std::vector<double> SplitRuleEngine::ratios(
    const std::vector<NodeId>& group) const {
  TIRESIAS_EXPECT(!group.empty(), "split group must be non-empty");
  std::vector<double> out(group.size(), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    out[i] = weightOf(group[i]);
    total += out[i];
  }
  if (total <= 0.0) {
    const double u = 1.0 / static_cast<double>(group.size());
    for (auto& r : out) r = u;
    return out;
  }
  for (auto& r : out) r /= total;
  return out;
}

std::size_t SplitRuleEngine::trackedNodes() const {
  switch (rule_) {
    case SplitRule::kUniform:
      return 0;
    case SplitRule::kLastTimeUnit:
      return lastUnit_.size();
    case SplitRule::kLongTermHistory:
      return cumulative_.size();
    case SplitRule::kEwma:
      return ewma_.size();
  }
  return 0;
}

}  // namespace tiresias
