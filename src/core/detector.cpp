#include "core/detector.h"

#include <limits>

namespace tiresias {

bool isAnomalous(double actual, double forecast, double ratioThreshold,
                 double diffThreshold) {
  if (actual - forecast <= diffThreshold) return false;
  if (forecast <= 0.0) return actual > 0.0;
  return actual / forecast > ratioThreshold;
}

double anomalyRatio(double actual, double forecast) {
  if (forecast <= 0.0) {
    return actual > 0.0 ? std::numeric_limits<double>::max() : 0.0;
  }
  return actual / forecast;
}

}  // namespace tiresias
