// Detector interface shared by STA and ADA, plus the Definition-4 anomaly
// judgment.
//
// A detector consumes one TimeUnitBatch per step. While the ℓ-unit history
// window is still filling it returns nothing; once warm, every step yields
// an InstanceResult for the newest (detection) timeunit. Stage timings are
// accumulated under the paper's Table III stage names so benches can print
// the same breakdown.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/timer.h"
#include "core/types.h"
#include "core/workspace.h"
#include "persist/snapshot.h"
#include "stream/window.h"
#include "timeseries/forecaster.h"

namespace tiresias {

/// Leading type tags of serialized detector state (see persist/snapshot.h
/// versioning rules).
inline constexpr std::uint8_t kStaDetectorStateTag = 1;
inline constexpr std::uint8_t kAdaDetectorStateTag = 2;

/// Detector configuration (paper §VII "System parameters").
struct DetectorConfig {
  /// Heavy-hitter threshold θ (Definition 1/2). Must be positive.
  double theta = 5.0;
  /// Time-series window length ℓ, in timeunits (paper default: 8064 =
  /// 12 weeks of 15-minute units).
  std::size_t windowLength = 0;
  /// Sensitivity thresholds of Definition 4 (paper: RT=2.8, DT=8).
  double ratioThreshold = 2.8;
  double diffThreshold = 8.0;
  /// Split heuristic and its EWMA smoothing rate (§V-B4). ADA only.
  SplitRule splitRule = SplitRule::kLongTermHistory;
  double splitEwmaAlpha = 0.4;
  /// Number of reference-series levels h below the root (§V-B5). ADA only.
  /// The root's raw series is always maintained.
  std::size_t referenceLevels = 2;
  /// Forecasting model for heavy-hitter series. Required.
  std::shared_ptr<const ForecasterFactory> forecasterFactory;
  /// Dense per-unit scratch. Normally supplied by the owning
  /// TiresiasPipeline (one workspace per stream, reused across units); a
  /// detector constructed with a null workspace creates a private one.
  /// Never shared across concurrently stepping detectors.
  std::shared_ptr<DetectWorkspace> workspace;
  /// When true, ADA cross-checks its adapted SHHH set against the
  /// Definition-2 ground truth every instance (tests; costs one
  /// computeShhh per step).
  bool validateShhh = false;
};

/// Definition 4: anomalous iff T/F > RT and T − F > DT. A non-positive
/// forecast with positive actual counts as an infinite ratio.
bool isAnomalous(double actual, double forecast, double ratioThreshold,
                 double diffThreshold);

/// Ratio score reported in Anomaly::ratio (capped for F <= 0).
double anomalyRatio(double actual, double forecast);

class Detector {
 public:
  virtual ~Detector() = default;

  /// Consume the next timeunit; a result is produced for every unit once
  /// the history window is full.
  virtual std::optional<InstanceResult> step(const TimeUnitBatch& batch) = 0;

  /// Current SHHH set (ascending ids). Empty before the window fills.
  virtual std::vector<NodeId> currentShhh() const = 0;

  /// Copy the node's current modified-weight series (oldest first) into
  /// `out` (cleared first, capacity reused); `out` ends empty if the node
  /// holds no series in the current instance. This is the allocation-free
  /// accessor for per-step callers — hold a buffer and refill it.
  virtual void seriesInto(NodeId node, std::vector<double>& out) const = 0;

  /// The node's current forecast series (oldest first), aligned with
  /// seriesInto; `out` ends empty if the node holds no series.
  virtual void forecastSeriesInto(NodeId node,
                                  std::vector<double>& out) const = 0;

  /// Convenience wrappers returning a fresh vector per call (tests and
  /// offline evaluation; hot callers use the *Into accessors).
  std::vector<double> seriesOf(NodeId node) const {
    std::vector<double> out;
    seriesInto(node, out);
    return out;
  }
  std::vector<double> forecastSeriesOf(NodeId node) const {
    std::vector<double> out;
    forecastSeriesInto(node, out);
    return out;
  }

  virtual MemoryStats memoryStats() const = 0;

  /// Swap the detection workspace (engine pooling: the owning pipeline
  /// attaches the advancing worker's loaner before each advance). The
  /// workspace must already be bound to this detector's hierarchy; call
  /// only between steps — the workspace is per-step scratch, so nothing
  /// the detector needs survives the swap.
  virtual void bindWorkspace(std::shared_ptr<DetectWorkspace> workspace) = 0;

  /// Snapshot the detector's full mutable state (window contents, series,
  /// forecaster models, adaptation statistics), prefixed with the type tag
  /// above. Stage timings are diagnostics and are not persisted.
  virtual void saveState(persist::Serializer& out) const = 0;
  /// Restore state saved by the same detector type over the same
  /// hierarchy and configuration. Throws persist::SnapshotError on a type
  /// mismatch or malformed input.
  virtual void loadState(persist::Deserializer& in) = 0;

  StageTimer& stages() { return stages_; }
  const StageTimer& stages() const { return stages_; }

 protected:
  StageTimer stages_;
};

/// Stage names used by both detectors (Table III rows).
inline constexpr const char* kStageUpdateHierarchies = "Updating Hierarchies";
inline constexpr const char* kStageCreateSeries = "Creating Time Series";
inline constexpr const char* kStageDetect = "Detecting Anomalies";

}  // namespace tiresias
