// STA — the strawman algorithm (Fig 4).
//
// STA stores the last ℓ timeunits of (sparse) per-unit counts. Every
// instance it (1) derives the SHHH set of the detection unit with a
// bottom-up pass, (2) reconstructs the Definition-3 time series for every
// heavy hitter against that fixed set, and (3) refits the forecasting
// model on the reconstructed history to judge the detection unit.
//
// Hot-path layout: instead of re-walking all ℓ stored units per instance
// (the historical implementation, retained as reference::StaReplica), the
// detector keeps an incremental sliding window of *raw aggregates*: a
// dense NodeId→slot table where every node touched by a resident unit
// holds an ℓ-length ring of its A_n values, updated by adding the entering
// unit and zeroing the expiring one. Definition-3 series then follow
// without touching history:
//
//     T[n] = rawRing[n] − Σ rawRing[d]   over members d whose nearest
//                                        member ancestor is n
//
// which is exactly the fixed-membership semantics (each count accrues to
// its nearest fixed-set ancestor). All counts are unit record weights, so
// every aggregate is integer-valued and the regrouped sums are exact —
// bit-identical to the reference reconstruction (asserted by the
// equivalence property tests).
//
// STA is exact: its series are the ground truth ADA is evaluated against
// (Fig 12, Table V).
#pragma once

#include "core/detector.h"
#include "core/shhh.h"

namespace tiresias {

class StaDetector final : public Detector {
 public:
  StaDetector(const Hierarchy& hierarchy, DetectorConfig config);

  std::optional<InstanceResult> step(const TimeUnitBatch& batch) override;
  std::vector<NodeId> currentShhh() const override;
  void seriesInto(NodeId node, std::vector<double>& out) const override;
  void forecastSeriesInto(NodeId node,
                          std::vector<double>& out) const override;
  MemoryStats memoryStats() const override;
  void saveState(persist::Serializer& out) const override;
  void loadState(persist::Deserializer& in) override;
  void bindWorkspace(std::shared_ptr<DetectWorkspace> workspace) override {
    config_.workspace = std::move(workspace);
  }

  const Hierarchy& hierarchy() const { return hierarchy_; }

 private:
  /// One resident timeunit of the sliding window.
  struct WindowUnit {
    /// Direct counts, one entry per distinct counted node, in staging
    /// order (saveState sorts a copy to keep the snapshot byte-identical
    /// to the historical CountMap encoding).
    std::vector<std::pair<NodeId, double>> counts;
    /// |counted ∪ ancestors| — the unit's sparse-tree size (Table IV).
    std::uint32_t touchedNodes = 0;
  };

  DetectWorkspace& ws() { return *config_.workspace; }

  /// Zero the expiring unit's ring entries and release empty slots.
  void expireUnit(std::size_t pos);
  /// Stage `batch` into the workspace, record its direct counts and raw
  /// aggregates at ring position `pos`, and evaluate Definition 2 into
  /// shhhScratch_.
  void ingestUnit(const TimeUnitBatch& batch, std::size_t pos);
  /// Definition-2 sweep over the staged counts + slot-table fill at `pos`
  /// (the single writer of the ring/present invariant; used by ingestUnit
  /// and the snapshot-restore rebuild).
  void recordUnitAggregates(std::size_t pos);
  /// Rebuild the materialized member series + forecasts for the current
  /// SHHH set (the per-instance Definition-3 reconstruction).
  void rebuildSeries();
  /// Recompute slots/rings from windowUnits_ (after loadState).
  void rebuildSlots();

  std::size_t ringIndex(std::size_t age) const {
    // age 0 = oldest resident unit. While filling, units sit at 0..size-1
    // with nextPos_ == size; once full, nextPos_ is the oldest slot.
    return (nextPos_ + config_.windowLength - windowSize_ + age) %
           config_.windowLength;
  }
  /// Start of node n's ℓ-length raw-aggregate ring inside the slot-major
  /// storage, or nullptr when the node holds no slot.
  double* ringOf(NodeId n) {
    const std::int32_t s = slotIndex_[n];
    return s < 0 ? nullptr
                 : slotRings_.data() +
                       static_cast<std::size_t>(s) * config_.windowLength;
  }
  const double* ringOf(NodeId n) const {
    const std::int32_t s = slotIndex_[n];
    return s < 0 ? nullptr
                 : slotRings_.data() +
                       static_cast<std::size_t>(s) * config_.windowLength;
  }

  const Hierarchy& hierarchy_;
  DetectorConfig config_;

  // --- sliding window ---
  std::vector<WindowUnit> windowUnits_;  // ring of ℓ units, recycled buffers
  std::size_t windowSize_ = 0;           // resident units (≤ ℓ)
  std::size_t nextPos_ = 0;              // ring slot the next unit writes
  TimeUnit newestUnit_ = 0;

  // --- dense raw-aggregate slot table (SoA) ---
  // One flat slot-major array instead of per-slot ring vectors: a slot's
  // ℓ values are contiguous, so the per-instance series fill and the
  // member-cut subtraction in rebuildSeries are (at most two) straight
  // segment sweeps over lane-loadable memory.
  std::vector<std::int32_t> slotIndex_;  // NodeId → slot, -1 = none
  std::vector<double> slotRings_;        // slots × windowLength values
  std::vector<std::uint32_t> slotPresent_;  // resident units per slot
  std::vector<std::uint32_t> freeSlots_;

  // --- state of the most recent instance, for inspection/persist ---
  std::vector<NodeId> shhh_;
  /// {root} ∪ shhh_, ascending — the nodes holding materialized series.
  std::vector<NodeId> resultNodes_;
  std::vector<std::vector<double>> resultSeries_;    // parallel, reused
  std::vector<std::vector<double>> resultForecast_;  // parallel, reused
  std::vector<std::int32_t> resultIndex_;  // NodeId → resultNodes_ index

  ShhhResult shhhScratch_;  // reused across units
};

}  // namespace tiresias
