// STA — the strawman algorithm (Fig 4).
//
// STA stores the last ℓ timeunits of (sparse) per-unit counts. Every
// instance it (1) derives the SHHH set of the detection unit with a
// bottom-up pass, (2) reconstructs the Definition-3 time series for every
// heavy hitter by traversing all ℓ stored units with that fixed set, and
// (3) refits the forecasting model on the reconstructed history to judge
// the detection unit. Reconstruction dominates the running time — the
// paper's Table III shows "Creating Time Series" at 83-94% of STA's total —
// which is exactly the inefficiency ADA removes.
//
// STA is exact: its series are the ground truth ADA is evaluated against
// (Fig 12, Table V).
#pragma once

#include <deque>

#include "core/detector.h"
#include "core/shhh.h"

namespace tiresias {

class StaDetector final : public Detector {
 public:
  StaDetector(const Hierarchy& hierarchy, DetectorConfig config);

  std::optional<InstanceResult> step(const TimeUnitBatch& batch) override;
  std::vector<NodeId> currentShhh() const override;
  std::vector<double> seriesOf(NodeId node) const override;
  std::vector<double> forecastSeriesOf(NodeId node) const override;
  MemoryStats memoryStats() const override;
  void saveState(persist::Serializer& out) const override;
  void loadState(persist::Deserializer& in) override;

  const Hierarchy& hierarchy() const { return hierarchy_; }

 private:
  const Hierarchy& hierarchy_;
  DetectorConfig config_;
  std::deque<CountMap> window_;  // ℓ most recent units, oldest first
  TimeUnit newestUnit_ = 0;

  // State of the most recent instance, for inspection.
  std::vector<NodeId> shhh_;
  std::unordered_map<NodeId, std::vector<double>> series_;
  std::unordered_map<NodeId, std::vector<double>> forecastSeries_;
};

}  // namespace tiresias
