#include "core/sta.h"

#include <algorithm>
#include <map>

#include "common/expect.h"
#include "common/simd.h"
#include "core/state_io.h"

namespace tiresias {

StaDetector::StaDetector(const Hierarchy& hierarchy, DetectorConfig config)
    : hierarchy_(hierarchy), config_(std::move(config)) {
  TIRESIAS_EXPECT(config_.windowLength >= 2, "window length must be >= 2");
  TIRESIAS_EXPECT(config_.forecasterFactory != nullptr,
                  "forecaster factory is required");
  if (!config_.workspace) {
    config_.workspace = std::make_shared<DetectWorkspace>();
  }
  config_.workspace->bind(hierarchy_.size());
  slotIndex_.assign(hierarchy_.size(), -1);
  resultIndex_.assign(hierarchy_.size(), -1);
  windowUnits_.resize(config_.windowLength);
}

void StaDetector::expireUnit(std::size_t pos) {
  // Re-derive the expiring unit's touched set from its direct counts (one
  // mark-climb, no per-unit seen map) and zero its ring entries.
  DetectWorkspace& w = ws();
  w.beginUnit();
  w.touched.clear();
  for (const auto& [node, c] : windowUnits_[pos].counts) {
    stageCount(w, node, c);
  }
  collectTouchedStaged(hierarchy_, w);
  const std::size_t len = config_.windowLength;
  for (NodeId n : w.touched) {
    const std::int32_t si = slotIndex_[n];
    if (si < 0) continue;
    slotRings_[static_cast<std::size_t>(si) * len + pos] = 0.0;
    if (--slotPresent_[static_cast<std::size_t>(si)] == 0) {
      // The ring is all zeros again, so the slot can be handed out as-is.
      slotIndex_[n] = -1;
      freeSlots_.push_back(static_cast<std::uint32_t>(si));
    }
  }
}

void StaDetector::recordUnitAggregates(std::size_t pos) {
  // The unit's counts are staged in the workspace: one Definition-2 sweep
  // yields the touched set with raw aggregates, which lands in the slot
  // table at ring position `pos`. Shared by the live step and the
  // snapshot-restore rebuild so the slot-table invariant has one writer.
  computeShhhStaged(hierarchy_, config_.theta, ws(), shhhScratch_);
  const std::size_t len = config_.windowLength;
  WindowUnit& unit = windowUnits_[pos];
  unit.touchedNodes = static_cast<std::uint32_t>(shhhScratch_.touched.size());
  for (const auto& t : shhhScratch_.touched) {
    std::int32_t si = slotIndex_[t.node];
    if (si < 0) {
      if (!freeSlots_.empty()) {
        si = static_cast<std::int32_t>(freeSlots_.back());
        freeSlots_.pop_back();
      } else {
        si = static_cast<std::int32_t>(slotPresent_.size());
        slotPresent_.push_back(0);
        slotRings_.resize(slotRings_.size() + len, 0.0);
      }
      slotIndex_[t.node] = si;
    }
    slotRings_[static_cast<std::size_t>(si) * len + pos] = t.raw;
    ++slotPresent_[static_cast<std::size_t>(si)];
  }
}

void StaDetector::ingestUnit(const TimeUnitBatch& batch, std::size_t pos) {
  DetectWorkspace& w = ws();
  w.beginUnit();
  w.touched.clear();
  for (const auto& r : batch.records) stageCount(w, r.category, 1.0);

  // Snapshot the direct counts before the Definition-2 sweep accumulates
  // child aggregates upward. Staging order — one entry per distinct
  // counted node; the snapshot writer sorts at checkpoint time so the
  // per-unit hot path pays no O(k log k).
  WindowUnit& unit = windowUnits_[pos];
  unit.counts.clear();
  unit.counts.reserve(w.touched.size());
  for (NodeId n : w.touched) unit.counts.emplace_back(n, w.raw(n));

  recordUnitAggregates(pos);
}

void StaDetector::rebuildSeries() {
  const std::size_t len = config_.windowLength;
  // The window is full here (step() only reconstructs once warmed up), so
  // every slot ring is one rotation of the age axis: age a lives at
  // (base + a) % len — two contiguous runs, [base, len) then [0, base).
  const std::size_t base = ringIndex(0);
  const std::size_t firstRun = len - base;

  for (NodeId n : resultNodes_) resultIndex_[n] = -1;
  resultNodes_.clear();
  if (shhh_.empty() || shhh_.front() != hierarchy_.root()) {
    resultNodes_.push_back(hierarchy_.root());
  }
  resultNodes_.insert(resultNodes_.end(), shhh_.begin(), shhh_.end());
  if (resultSeries_.size() < resultNodes_.size()) {
    resultSeries_.resize(resultNodes_.size());
    resultForecast_.resize(resultNodes_.size());
  }

  // Every output node starts from its raw-aggregate ring (zeros if no unit
  // in the window touched it). The SoA slot table keeps each ring flat, so
  // de-rotation is two straight copies.
  for (std::size_t i = 0; i < resultNodes_.size(); ++i) {
    const NodeId n = resultNodes_[i];
    resultIndex_[n] = static_cast<std::int32_t>(i);
    auto& series = resultSeries_[i];
    series.resize(len);
    const double* ring = ringOf(n);
    if (ring == nullptr) {
      std::fill(series.begin(), series.end(), 0.0);
    } else {
      std::copy(ring + base, ring + len, series.begin());
      std::copy(ring, ring + base, series.begin() + firstRun);
    }
  }

  // Fixed-membership cut: every member's raw series is subtracted from its
  // nearest member ancestor (or the root), leaving each output node with
  // exactly the weight that accrues to it under the fixed set. All values
  // are integer counts, so the regrouped sums are exact. Element-wise
  // subtraction over the two contiguous ring runs: the SIMD sweep performs
  // the identical per-age subtract the rotated scalar loop did.
  DetectWorkspace& w = ws();
  w.beginMarks(DetectWorkspace::kMemberPlane);
  for (NodeId n : shhh_) w.mark(DetectWorkspace::kMemberPlane, n);
  for (NodeId d : shhh_) {
    if (d == hierarchy_.root()) continue;
    const double* ring = ringOf(d);
    if (ring == nullptr) continue;  // untouched member: all-zero series
    NodeId a = hierarchy_.parent(d);
    while (a != hierarchy_.root() &&
           !w.isMarked(DetectWorkspace::kMemberPlane, a)) {
      a = hierarchy_.parent(a);
    }
    auto& target = resultSeries_[static_cast<std::size_t>(resultIndex_[a])];
    simd::sub(target.data(), ring + base, firstRun);
    simd::sub(target.data() + firstRun, ring, base);
  }

  // Refit the forecasting model over each reconstructed series, recording
  // the one-step-ahead forecast at every unit (Fig 4 lines 10-11).
  for (std::size_t i = 0; i < resultNodes_.size(); ++i) {
    const auto& actual = resultSeries_[i];
    auto& fc = resultForecast_[i];
    fc.resize(len);
    auto model = config_.forecasterFactory->make();
    for (std::size_t u = 0; u < len; ++u) {
      fc[u] = model->forecast();
      model->update(actual[u]);
    }
  }
}

std::optional<InstanceResult> StaDetector::step(const TimeUnitBatch& batch) {
  {
    StageTimer::Scope scope(stages_, kStageUpdateHierarchies);
    const std::size_t pos = nextPos_;
    if (windowSize_ == config_.windowLength) expireUnit(pos);
    ingestUnit(batch, pos);
    nextPos_ = (pos + 1) % config_.windowLength;
    if (windowSize_ < config_.windowLength) ++windowSize_;
    newestUnit_ = batch.unit;
  }
  if (windowSize_ < config_.windowLength) return std::nullopt;

  InstanceResult result;
  result.unit = newestUnit_;

  {
    StageTimer::Scope scope(stages_, kStageCreateSeries);
    // SHHH of the detection unit (Fig 4 line 6), then the incremental
    // window reconstruction with that fixed set (lines 7-9).
    shhh_.assign(shhhScratch_.shhh.begin(), shhhScratch_.shhh.end());
    rebuildSeries();
  }

  {
    StageTimer::Scope scope(stages_, kStageDetect);
    result.shhh = shhh_;
    for (NodeId n : shhh_) {
      const std::size_t i = static_cast<std::size_t>(resultIndex_[n]);
      const double actual = resultSeries_[i].back();
      const double forecast = resultForecast_[i].back();
      if (isAnomalous(actual, forecast, config_.ratioThreshold,
                      config_.diffThreshold)) {
        result.anomalies.push_back(
            {n, newestUnit_, actual, forecast, anomalyRatio(actual, forecast)});
      }
    }
    std::sort(result.anomalies.begin(), result.anomalies.end(),
              [](const Anomaly& a, const Anomaly& b) { return a.node < b.node; });
  }
  return result;
}

std::vector<NodeId> StaDetector::currentShhh() const { return shhh_; }

void StaDetector::seriesInto(NodeId node, std::vector<double>& out) const {
  out.clear();
  if (node >= resultIndex_.size()) return;
  const std::int32_t i = resultIndex_[node];
  if (i < 0) return;
  const auto& s = resultSeries_[static_cast<std::size_t>(i)];
  out.assign(s.begin(), s.end());
}

void StaDetector::forecastSeriesInto(NodeId node,
                                     std::vector<double>& out) const {
  out.clear();
  if (node >= resultIndex_.size()) return;
  const std::int32_t i = resultIndex_[node];
  if (i < 0) return;
  const auto& s = resultForecast_[static_cast<std::size_t>(i)];
  out.assign(s.begin(), s.end());
}

void StaDetector::saveState(persist::Serializer& out) const {
  out.u8(kStaDetectorStateTag);
  out.u64(config_.windowLength);
  out.i64(newestUnit_);
  // Resident units oldest first, each encoded exactly like the historical
  // CountMap encoding (sorted node/value pairs). Units hold their counts
  // in staging order, so sort a copy here — checkpoint-time work, not
  // per-unit work.
  out.u64(windowSize_);
  std::vector<std::pair<NodeId, double>> sorted;
  for (std::size_t age = 0; age < windowSize_; ++age) {
    const WindowUnit& unit = windowUnits_[ringIndex(age)];
    sorted.assign(unit.counts.begin(), unit.counts.end());
    std::sort(sorted.begin(), sorted.end());
    out.u64(sorted.size());
    for (const auto& [node, c] : sorted) {
      out.u32(node);
      out.f64(c);
    }
  }
  state_io::writeNodeVec(out, shhh_);
  // The materialized series, keyed ascending — byte-identical to the
  // historical writeSortedNodeMap encoding of the per-node map.
  const auto writeSeriesVec =
      [&](const std::vector<std::vector<double>>& series) {
        out.u64(resultNodes_.size());
        for (std::size_t i = 0; i < resultNodes_.size(); ++i) {
          out.u32(resultNodes_[i]);
          state_io::writeDoubleVec(out, series[i]);
        }
      };
  writeSeriesVec(resultSeries_);
  writeSeriesVec(resultForecast_);
}

void StaDetector::rebuildSlots() {
  std::fill(slotIndex_.begin(), slotIndex_.end(), -1);
  slotRings_.clear();
  slotPresent_.clear();
  freeSlots_.clear();
  DetectWorkspace& w = ws();
  for (std::size_t pos = 0; pos < windowSize_; ++pos) {
    w.beginUnit();
    w.touched.clear();
    for (const auto& [node, c] : windowUnits_[pos].counts) {
      stageCount(w, node, c);
    }
    recordUnitAggregates(pos);
  }
}

void StaDetector::loadState(persist::Deserializer& in) {
  using persist::Deserializer;
  Deserializer::require(in.u8() == kStaDetectorStateTag,
                        "snapshot holds a different detector type");
  Deserializer::require(in.u64() == config_.windowLength,
                        "STA snapshot: window length mismatch");
  const TimeUnit newestUnit = in.i64();
  const std::size_t units = in.count(sizeof(std::uint64_t));
  Deserializer::require(units <= config_.windowLength,
                        "STA snapshot: more units than the window holds");
  std::vector<std::vector<std::pair<NodeId, double>>> window(units);
  for (auto& unit : window) {
    // Historical acceptance semantics: arbitrary order, duplicate keys
    // overwrite (readCountMap), then normalized to sorted pairs.
    const CountMap counts = state_io::readCountMap(in, hierarchy_);
    unit.assign(counts.begin(), counts.end());
    std::sort(unit.begin(), unit.end());
  }
  std::vector<NodeId> shhh = state_io::readNodeVec(in, hierarchy_);
  const auto readSeriesMap = [&] {
    std::map<NodeId, std::vector<double>> map;
    const std::size_t n =
        in.count(sizeof(std::uint32_t) + sizeof(std::uint64_t));
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId node = in.u32();
      Deserializer::require(node < hierarchy_.size(),
                            "snapshot: node id outside hierarchy");
      map[node] = state_io::readDoubleVec(in);
    }
    return map;
  };
  auto series = readSeriesMap();
  auto forecastSeries = readSeriesMap();
  Deserializer::require(series.size() == forecastSeries.size(),
                        "STA snapshot: series maps disagree");
  for (const auto& [node, s] : series) {
    (void)s;
    Deserializer::require(forecastSeries.count(node) != 0,
                          "STA snapshot: series maps disagree");
  }

  newestUnit_ = newestUnit;
  windowSize_ = units;
  nextPos_ = units % config_.windowLength;
  for (std::size_t pos = 0; pos < config_.windowLength; ++pos) {
    windowUnits_[pos].counts.clear();
    windowUnits_[pos].touchedNodes = 0;
  }
  for (std::size_t pos = 0; pos < units; ++pos) {
    windowUnits_[pos].counts = std::move(window[pos]);
  }
  shhh_ = std::move(shhh);
  std::fill(resultIndex_.begin(), resultIndex_.end(), -1);
  resultNodes_.clear();
  resultSeries_.clear();
  resultForecast_.clear();
  for (auto& [node, s] : series) {
    resultIndex_[node] = static_cast<std::int32_t>(resultNodes_.size());
    resultNodes_.push_back(node);
    resultSeries_.push_back(std::move(s));
    resultForecast_.push_back(std::move(forecastSeries.at(node)));
  }
  rebuildSlots();
}

MemoryStats StaDetector::memoryStats() const {
  MemoryStats stats;
  // STA's resident state is ℓ sparse trees: every counted node plus its
  // ancestors exists in the per-unit tree (Fig 4 line 4).
  for (std::size_t age = 0; age < windowSize_; ++age) {
    stats.treeNodesStored += windowUnits_[ringIndex(age)].touchedNodes;
  }
  stats.seriesCount = resultNodes_.size() * 2;
  for (std::size_t i = 0; i < resultNodes_.size(); ++i) {
    stats.seriesValues += resultSeries_[i].size() + resultForecast_[i].size();
  }
  stats.workspaceBytes = config_.workspace->bytes();
  stats.bytesEstimate =
      stats.treeNodesStored * (sizeof(NodeId) + sizeof(double)) +
      stats.seriesValues * sizeof(double);
  return stats;
}

}  // namespace tiresias
