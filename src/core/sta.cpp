#include "core/sta.h"

#include <algorithm>

#include "common/expect.h"
#include "core/state_io.h"

namespace tiresias {

StaDetector::StaDetector(const Hierarchy& hierarchy, DetectorConfig config)
    : hierarchy_(hierarchy), config_(std::move(config)) {
  TIRESIAS_EXPECT(config_.windowLength >= 2, "window length must be >= 2");
  TIRESIAS_EXPECT(config_.forecasterFactory != nullptr,
                  "forecaster factory is required");
}

std::optional<InstanceResult> StaDetector::step(const TimeUnitBatch& batch) {
  {
    StageTimer::Scope scope(stages_, kStageUpdateHierarchies);
    CountMap counts;
    counts.reserve(batch.records.size());
    for (const auto& r : batch.records) counts[r.category] += 1.0;
    window_.push_back(std::move(counts));
    if (window_.size() > config_.windowLength) window_.pop_front();
    newestUnit_ = batch.unit;
  }
  if (window_.size() < config_.windowLength) return std::nullopt;

  InstanceResult result;
  result.unit = newestUnit_;

  {
    StageTimer::Scope scope(stages_, kStageCreateSeries);
    // SHHH of the detection unit (Fig 4 line 6), then full window
    // reconstruction with that fixed set (lines 7-9).
    shhh_ = computeShhh(hierarchy_, window_.back(), config_.theta).shhh;
    const std::vector<CountMap> units(window_.begin(), window_.end());
    series_ = modifiedSeriesFixedSet(hierarchy_, units, shhh_);

    // Refit the forecasting model over each reconstructed series,
    // recording the one-step-ahead forecast at every unit.
    forecastSeries_.clear();
    for (const auto& [node, actual] : series_) {
      auto model = config_.forecasterFactory->make();
      std::vector<double> fc(actual.size(), 0.0);
      for (std::size_t i = 0; i < actual.size(); ++i) {
        fc[i] = model->forecast();
        model->update(actual[i]);
      }
      forecastSeries_[node] = std::move(fc);
    }
  }

  {
    StageTimer::Scope scope(stages_, kStageDetect);
    result.shhh = shhh_;
    for (NodeId n : shhh_) {
      const double actual = series_.at(n).back();
      const double forecast = forecastSeries_.at(n).back();
      if (isAnomalous(actual, forecast, config_.ratioThreshold,
                      config_.diffThreshold)) {
        result.anomalies.push_back(
            {n, newestUnit_, actual, forecast, anomalyRatio(actual, forecast)});
      }
    }
    std::sort(result.anomalies.begin(), result.anomalies.end(),
              [](const Anomaly& a, const Anomaly& b) { return a.node < b.node; });
  }
  return result;
}

std::vector<NodeId> StaDetector::currentShhh() const { return shhh_; }

std::vector<double> StaDetector::seriesOf(NodeId node) const {
  auto it = series_.find(node);
  return it == series_.end() ? std::vector<double>{} : it->second;
}

std::vector<double> StaDetector::forecastSeriesOf(NodeId node) const {
  auto it = forecastSeries_.find(node);
  return it == forecastSeries_.end() ? std::vector<double>{} : it->second;
}

void StaDetector::saveState(persist::Serializer& out) const {
  out.u8(kStaDetectorStateTag);
  out.u64(config_.windowLength);
  out.i64(newestUnit_);
  out.u64(window_.size());
  for (const auto& unit : window_) state_io::writeCountMap(out, unit);
  state_io::writeNodeVec(out, shhh_);
  const auto writeSeriesMap =
      [&out](const std::unordered_map<NodeId, std::vector<double>>& map) {
        state_io::writeSortedNodeMap(out, map, [&out](const auto& series) {
          state_io::writeDoubleVec(out, series);
        });
      };
  writeSeriesMap(series_);
  writeSeriesMap(forecastSeries_);
}

void StaDetector::loadState(persist::Deserializer& in) {
  using persist::Deserializer;
  Deserializer::require(in.u8() == kStaDetectorStateTag,
                        "snapshot holds a different detector type");
  Deserializer::require(in.u64() == config_.windowLength,
                        "STA snapshot: window length mismatch");
  const TimeUnit newestUnit = in.i64();
  const std::size_t units = in.count(sizeof(std::uint64_t));
  Deserializer::require(units <= config_.windowLength,
                        "STA snapshot: more units than the window holds");
  std::deque<CountMap> window;
  for (std::size_t i = 0; i < units; ++i) {
    window.push_back(state_io::readCountMap(in, hierarchy_));
  }
  std::vector<NodeId> shhh = state_io::readNodeVec(in, hierarchy_);
  const auto readSeriesMap = [&] {
    std::unordered_map<NodeId, std::vector<double>> map;
    const std::size_t n =
        in.count(sizeof(std::uint32_t) + sizeof(std::uint64_t));
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId node = in.u32();
      Deserializer::require(node < hierarchy_.size(),
                            "snapshot: node id outside hierarchy");
      map[node] = state_io::readDoubleVec(in);
    }
    return map;
  };
  auto series = readSeriesMap();
  auto forecastSeries = readSeriesMap();

  newestUnit_ = newestUnit;
  window_ = std::move(window);
  shhh_ = std::move(shhh);
  series_ = std::move(series);
  forecastSeries_ = std::move(forecastSeries);
}

MemoryStats StaDetector::memoryStats() const {
  MemoryStats stats;
  // STA's resident state is ℓ sparse trees: every counted node plus its
  // ancestors exists in the per-unit tree (Fig 4 line 4).
  for (const auto& unit : window_) {
    std::unordered_map<NodeId, bool> seen;
    for (const auto& [node, w] : unit) {
      (void)w;
      for (NodeId cur = node; cur != kInvalidNode;
           cur = hierarchy_.parent(cur)) {
        if (!seen.emplace(cur, true).second) break;
      }
    }
    stats.treeNodesStored += seen.size();
  }
  stats.seriesCount = series_.size() + forecastSeries_.size();
  for (const auto& [n, s] : series_) {
    (void)n;
    stats.seriesValues += s.size();
  }
  for (const auto& [n, s] : forecastSeries_) {
    (void)n;
    stats.seriesValues += s.size();
  }
  stats.bytesEstimate =
      stats.treeNodesStored * (sizeof(NodeId) + sizeof(double)) +
      stats.seriesValues * sizeof(double);
  return stats;
}

}  // namespace tiresias
