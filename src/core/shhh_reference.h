// Retained map-based reference implementations of the SHHH kernels.
//
// These are the pre-flat-workspace evaluators, kept verbatim as an
// independent oracle: the equivalence property tests assert that the dense
// epoch-stamped hot path (shhh.cpp, sta.cpp) produces bit-identical output,
// and bench/detect_throughput.cpp measures the flat path against them as
// its committed before/after baseline. Nothing in src/ outside tests and
// benches should call these — they allocate several unordered_maps per
// unit by design.
#pragma once

#include <deque>

#include "core/detector.h"
#include "core/shhh.h"

namespace tiresias::reference {

/// Definition-2 evaluation for one timeunit (historical map-based pass).
ShhhResult computeShhh(const Hierarchy& hierarchy, const CountMap& counts,
                       double theta);

/// Definition-3 fixed-set reconstruction (historical map-based pass).
std::unordered_map<NodeId, std::vector<double>> modifiedSeriesFixedSet(
    const Hierarchy& hierarchy, const std::vector<CountMap>& unitCounts,
    const std::vector<NodeId>& fixedSet);

/// Raw-aggregate series (historical map-based pass).
std::unordered_map<NodeId, std::vector<double>> rawSeries(
    const Hierarchy& hierarchy, const std::vector<CountMap>& unitCounts,
    const std::vector<NodeId>& nodes);

/// The historical STA step: store ℓ sparse count maps, and per instance
/// copy the window and rebuild every member series from scratch with
/// modifiedSeriesFixedSet (the exact shape of the pre-rewrite
/// StaDetector::step, including the per-step window copy). Used as the
/// "before" side of BENCH_detect.json, as the oracle for the STA
/// equivalence property test, and as the paper-faithful STA cost model
/// for the Table III runtime reproduction (it keeps the historical
/// per-stage timers — the production StaDetector no longer has the
/// paper's cost shape).
class StaReplica {
 public:
  StaReplica(const Hierarchy& hierarchy, DetectorConfig config);

  std::optional<InstanceResult> step(const TimeUnitBatch& batch);

  const std::vector<NodeId>& currentShhh() const { return shhh_; }
  std::vector<double> seriesOf(NodeId node) const;
  std::vector<double> forecastSeriesOf(NodeId node) const;

  StageTimer& stages() { return stages_; }
  const StageTimer& stages() const { return stages_; }

 private:
  const Hierarchy& hierarchy_;
  DetectorConfig config_;
  StageTimer stages_;
  std::deque<CountMap> window_;
  TimeUnit newestUnit_ = 0;
  std::vector<NodeId> shhh_;
  std::unordered_map<NodeId, std::vector<double>> series_;
  std::unordered_map<NodeId, std::vector<double>> forecastSeries_;
};

}  // namespace tiresias::reference
