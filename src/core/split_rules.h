// Split-ratio heuristics (§V-B4).
//
// When ADA splits a heavy hitter's series to its non-heavy-hitter children
// C_n, each child nc receives the fraction F(nc, C_n) = X_nc / Σ_{m∈C_n} X_m
// where X depends on the configured rule:
//   Uniform            X = 1
//   Last-Time-Unit     X = node's raw weight in the previous timeunit
//   Long-Term-History  X = node's total raw weight over all past timeunits
//   EWMA               X = exponentially smoothed raw weight
//
// The engine is fed each instance's raw (A_n) weights *after* the
// adaptation so that every rule sees only past data, as the paper defines.
// EWMA decay for untouched nodes is applied lazily at read time.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "hierarchy/hierarchy.h"
#include "persist/snapshot.h"

namespace tiresias {

class SplitRuleEngine {
 public:
  SplitRuleEngine(SplitRule rule, double ewmaAlpha);

  /// Record the raw weights of one finished timeunit (touched nodes only;
  /// untouched nodes implicitly weigh 0).
  void observeInstance(const std::vector<std::pair<NodeId, double>>& rawWeights);

  /// X_n for the current instance (based on past instances only).
  double weightOf(NodeId node) const;

  /// F(nc, Cn) ratios for the given sibling group, normalized to sum to 1;
  /// falls back to uniform when every X is zero.
  std::vector<double> ratios(const std::vector<NodeId>& group) const;

  SplitRule rule() const { return rule_; }

  /// Number of nodes with tracked state (memory accounting).
  std::size_t trackedNodes() const;

  /// Snapshot the rule, smoothing rate and per-node statistics.
  void saveState(persist::Serializer& out) const;
  /// Restore (overwriting rule and statistics). Throws
  /// persist::SnapshotError on malformed input.
  void loadState(persist::Deserializer& in);

 private:
  struct EwmaState {
    double value = 0.0;
    std::int64_t instance = 0;
  };

  SplitRule rule_;
  double alpha_;
  std::int64_t instanceCount_ = 0;
  std::unordered_map<NodeId, double> lastUnit_;
  std::unordered_map<NodeId, double> cumulative_;
  std::unordered_map<NodeId, EwmaState> ewma_;
};

}  // namespace tiresias
