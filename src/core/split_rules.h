// Split-ratio heuristics (§V-B4).
//
// When ADA splits a heavy hitter's series to its non-heavy-hitter children
// C_n, each child nc receives the fraction F(nc, C_n) = X_nc / Σ_{m∈C_n} X_m
// where X depends on the configured rule:
//   Uniform            X = 1
//   Last-Time-Unit     X = node's raw weight in the previous timeunit
//   Long-Term-History  X = node's total raw weight over all past timeunits
//   EWMA               X = exponentially smoothed raw weight
//
// The engine is fed each instance's raw (A_n) weights *after* the
// adaptation so that every rule sees only past data, as the paper defines.
// EWMA decay for untouched nodes is applied lazily at read time.
//
// Storage is dense: per-node statistics live in NodeId-indexed arrays that
// grow to the highest node observed (hierarchy ids are dense and small),
// so the per-unit observeInstance is pure array indexing — no hashing on
// the hot path. Presence is tracked per rule (stamps for Last-Time-Unit, a
// presence flag for Long-Term-History, the EWMA instance stamp) so the
// snapshot encoding stays byte-identical to the historical sorted-map one.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/shhh.h"
#include "core/types.h"
#include "hierarchy/hierarchy.h"
#include "persist/snapshot.h"

namespace tiresias {

class SplitRuleEngine {
 public:
  SplitRuleEngine(SplitRule rule, double ewmaAlpha);

  /// Record the raw weights of one finished timeunit (touched nodes only;
  /// untouched nodes implicitly weigh 0).
  void observeInstance(
      const std::vector<std::pair<NodeId, double>>& rawWeights);
  /// Hot-path variant over a Definition-2 touched list (no intermediate
  /// pair vector). Distinct name: the braced-initializer call sites of the
  /// pair overload must stay unambiguous.
  void observeTouched(std::span<const NodeWeights> touched);

  /// X_n for the current instance (based on past instances only).
  double weightOf(NodeId node) const;

  /// F(nc, Cn) ratios for the given sibling group, normalized to sum to 1;
  /// falls back to uniform when every X is zero.
  std::vector<double> ratios(const std::vector<NodeId>& group) const;

  SplitRule rule() const { return rule_; }

  /// Number of nodes with tracked state (memory accounting).
  std::size_t trackedNodes() const;

  /// Snapshot the rule, smoothing rate and per-node statistics.
  void saveState(persist::Serializer& out) const;
  /// Restore (overwriting rule and statistics). Node ids at or above
  /// `nodeBound` are rejected (callers that know the hierarchy pass its
  /// size; the default bound only guards the dense storage against
  /// garbage ids in corrupted snapshots). Throws persist::SnapshotError
  /// on malformed input.
  void loadState(persist::Deserializer& in,
                 std::size_t nodeBound = kDefaultNodeBound);

  /// Ceiling for node ids accepted from unbounded snapshots (way above
  /// any real hierarchy; keeps a corrupt id from growing the arrays to
  /// gigabytes).
  static constexpr std::size_t kDefaultNodeBound = std::size_t{1} << 20;

 private:
  struct EwmaState {
    double value = 0.0;
    std::int64_t instance = 0;  // 0 = never observed
  };

  /// Grow the per-node planes to cover `node`.
  void ensureNode(NodeId node);

  /// Stamps are -1 when never written, so presence is a plain stamp
  /// comparison even before the first instance.
  bool lastUnitHas(NodeId n) const {
    return n < lastStamp_.size() && lastStamp_[n] == instanceCount_;
  }

  template <typename Range, typename Proj>
  void observeRange(const Range& range, const Proj& proj);

  SplitRule rule_;
  double alpha_;
  std::int64_t instanceCount_ = 0;

  // Last-Time-Unit: value valid iff its stamp equals instanceCount_.
  std::vector<double> lastValue_;
  std::vector<std::int64_t> lastStamp_;
  std::size_t lastCount_ = 0;  // nodes stamped in the newest instance

  // Long-Term-History: presence flag marks ever-observed nodes.
  std::vector<double> cumulative_;
  std::vector<std::uint8_t> cumPresent_;
  std::size_t cumCount_ = 0;

  // EWMA: present iff instance >= 1.
  std::vector<EwmaState> ewma_;
  std::size_t ewmaCount_ = 0;
};

}  // namespace tiresias
