#include "core/workspace.h"

#include <algorithm>
#include <limits>

namespace tiresias {

void DetectWorkspace::bind(std::size_t nodes) {
  if (raw_.size() == nodes) {
    // Same node count, but possibly a different hierarchy (a pooled
    // workspace cycling between equally-sized streams): the previous
    // tenant's epoch stamps would alias the current generations, so
    // invalidate every plane. A generation bump is O(1) per plane.
    bump(valueGen_, valueEpoch_);
    for (unsigned p = 0; p < kPlaneCount; ++p) {
      bump(markGen_[p], markEpoch_[p]);
    }
    return;
  }
  // Grow *or shrink* to the new node count. assign() resizes in both
  // directions and zero-fills, so a shrink cannot leave slots beyond the
  // new bound readable, and every generation restarts from scratch.
  raw_.assign(nodes, 0.0);
  modified_.assign(nodes, 0.0);
  valueEpoch_.assign(nodes, 0);
  // Generations start at 1, not 0: zero-filled epoch stamps must read as
  // stale, so a just-bound workspace is invalidated like any rebind (at
  // gen 0 every slot would read as touched-with-zero instead).
  valueGen_ = 1;
  for (unsigned p = 0; p < kPlaneCount; ++p) {
    markEpoch_[p].assign(nodes, 0);
    markGen_[p] = 1;
  }
  // A shrink keeps the old capacity in reserve; a pooled workspace
  // bouncing between a large and a small hierarchy should not reallocate
  // on every hop, and bytes() reports capacity, so the residency math
  // stays honest.
  touched.clear();
}

std::size_t DetectWorkspace::bytes() const {
  std::size_t b = raw_.capacity() * sizeof(double) +
                  modified_.capacity() * sizeof(double) +
                  valueEpoch_.capacity() * sizeof(std::uint32_t) +
                  touched.capacity() * sizeof(NodeId);
  for (unsigned p = 0; p < kPlaneCount; ++p) {
    b += markEpoch_[p].capacity() * sizeof(std::uint32_t);
  }
  return b;
}

void DetectWorkspace::bump(std::uint32_t& gen,
                           std::vector<std::uint32_t>& epoch) {
  if (gen == std::numeric_limits<std::uint32_t>::max()) {
    // Generation wrap: stale stamps could alias the recycled value, so pay
    // one full clear every 2^32 - 1 units and restart.
    std::fill(epoch.begin(), epoch.end(), 0);
    gen = 1;
    return;
  }
  ++gen;
}

}  // namespace tiresias
