#include "core/workspace.h"

#include <algorithm>
#include <limits>

namespace tiresias {

void DetectWorkspace::bind(std::size_t nodes) {
  if (raw_.size() == nodes) return;
  raw_.assign(nodes, 0.0);
  modified_.assign(nodes, 0.0);
  valueEpoch_.assign(nodes, 0);
  valueGen_ = 0;
  for (unsigned p = 0; p < kPlaneCount; ++p) {
    markEpoch_[p].assign(nodes, 0);
    markGen_[p] = 0;
  }
}

std::size_t DetectWorkspace::bytes() const {
  std::size_t b = raw_.capacity() * sizeof(double) +
                  modified_.capacity() * sizeof(double) +
                  valueEpoch_.capacity() * sizeof(std::uint32_t) +
                  touched.capacity() * sizeof(NodeId);
  for (unsigned p = 0; p < kPlaneCount; ++p) {
    b += markEpoch_[p].capacity() * sizeof(std::uint32_t);
  }
  return b;
}

void DetectWorkspace::bump(std::uint32_t& gen,
                           std::vector<std::uint32_t>& epoch) {
  if (gen == std::numeric_limits<std::uint32_t>::max()) {
    // Generation wrap: stale stamps could alias the recycled value, so pay
    // one full clear every 2^32 - 1 units and restart.
    std::fill(epoch.begin(), epoch.end(), 0);
    gen = 1;
    return;
  }
  ++gen;
}

}  // namespace tiresias
