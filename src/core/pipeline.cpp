#include "core/pipeline.h"

#include <algorithm>

#include "common/expect.h"

namespace tiresias {

TiresiasPipeline::TiresiasPipeline(std::shared_ptr<const Hierarchy> hierarchy,
                                   PipelineConfig config)
    : hierarchy_(std::move(hierarchy)), config_(std::move(config)) {
  TIRESIAS_EXPECT(hierarchy_ != nullptr, "pipeline needs a hierarchy");
  TIRESIAS_EXPECT(config_.detector.windowLength >= 2,
                  "window length must be >= 2");
  TIRESIAS_EXPECT(config_.delta > 0, "delta must be positive");
  nextStart_ = config_.startTime;
  // No workspace yet: a freshly registered stream costs its configuration,
  // nothing more. The engine attaches a pooled workspace per advance;
  // standalone pipelines create a private one when the detector is built.
}

void TiresiasPipeline::ensureWorkspace() {
  if (workspace_) return;
  workspace_ = std::make_shared<DetectWorkspace>();
  workspace_->bind(hierarchy_->size());
}

void TiresiasPipeline::attachWorkspace(
    std::shared_ptr<DetectWorkspace> workspace) {
  TIRESIAS_EXPECT(workspace != nullptr, "attachWorkspace(null)");
  // Rebind invalidates whatever the previous tenant staged (same-size
  // rebinds bump generations; size changes reallocate).
  workspace->bind(hierarchy_->size());
  if (workspace_ != workspace) {
    workspace_ = std::move(workspace);
    if (detector_) detector_->bindWorkspace(workspace_);
  }
}

void TiresiasPipeline::hibernate(persist::Serializer& out) {
  saveState(out);
  // Reset to a shell: everything saveState captured is released; the
  // configuration and hierarchy handle stay, and nextStart_ is deliberately
  // preserved — the engine's ingest side reads resumeTime() from the shell
  // to place the batcher, and a wake() restores the identical value.
  detector_.reset();
  warmup_.clear();
  warmup_.shrink_to_fit();
  warmupRootCounts_.clear();
  warmupRootCounts_.shrink_to_fit();
  derivedSeasons_.clear();
  derivedSeasons_.shrink_to_fit();
  factoryDerived_ = false;
  activeFactory_.reset();
  // Drop the loaner workspace reference (pooling) or the private one
  // (standalone): a hibernated stream holds no scratch.
  workspace_.reset();
  lastStageSeconds_[0] = lastStageSeconds_[1] = lastStageSeconds_[2] = 0.0;
}

void TiresiasPipeline::buildDetector(const std::vector<double>& rootSeries,
                                     RunSummary& summary) {
  DetectorConfig cfg = config_.detector;
  factoryDerived_ = !cfg.forecasterFactory;
  if (!cfg.forecasterFactory) {
    // Step 3: offline seasonality analysis on the first window's root
    // counts, as the paper does ("we perform the data seasonality analysis
    // ... only in the first time instance"). Windows too short or too flat
    // for spectral analysis degrade to a trend-only model.
    std::vector<SeasonSpec> seasons;
    const bool flat =
        rootSeries.empty() ||
        std::all_of(rootSeries.begin(), rootSeries.end(),
                    [&](double v) { return v == rootSeries.front(); });
    if (rootSeries.size() >= 16 && !flat) {
      SeasonalityOptions opts;
      opts.candidatePeriods = config_.candidatePeriods;
      opts.maxSeasons = config_.maxSeasons;
      seasons = analyzeSeasonality(rootSeries, opts).seasons;
    }
    summary.seasons = seasons;
    derivedSeasons_ = seasons;
    cfg.forecasterFactory = std::make_shared<HoltWintersFactory>(
        config_.hwParams, std::move(seasons));
  }
  activeFactory_ = cfg.forecasterFactory;
  ensureWorkspace();
  cfg.workspace = workspace_;
  if (config_.useAda) {
    detector_ = std::make_unique<AdaDetector>(*hierarchy_, cfg);
  } else {
    detector_ = std::make_unique<StaDetector>(*hierarchy_, cfg);
  }
}

void TiresiasPipeline::processUnit(const TimeUnitBatch& batch,
                                   const ResultCallback& onResult,
                                   RunSummary& summary) {
  auto deliver = [&](const TimeUnitBatch& b) {
    std::optional<InstanceResult> result;
    {
      obs::StageSpan observe(metrics_, config_.useAda
                                           ? obs::Stage::kAdaObserve
                                           : obs::Stage::kStaObserve);
      result = detector_->step(b);
    }
    if (metrics_) {
      // Bridge the detector's Table-III stage timers into the per-stage
      // histograms: record this unit's delta of each cumulative total.
      static constexpr const char* kNames[3] = {
          kStageUpdateHierarchies, kStageCreateSeries, kStageDetect};
      static constexpr obs::Stage kStages[3] = {
          obs::Stage::kUpdateHierarchies, obs::Stage::kCreateSeries,
          obs::Stage::kDetectAnomalies};
      const StageTimer& timer = detector_->stages();
      for (int i = 0; i < 3; ++i) {
        const double total = timer.totalSeconds(kNames[i]);
        const double delta = std::max(0.0, total - lastStageSeconds_[i]);
        metrics_->recordLatencyNs(kStages[i],
                                  static_cast<std::uint64_t>(delta * 1e9));
        lastStageSeconds_[i] = total;
      }
    }
    if (result) {
      ++summary.instancesDetected;
      summary.anomaliesReported += result->anomalies.size();
      if (onResult) onResult(*result);
    }
  };

  ++summary.unitsProcessed;
  summary.recordsProcessed += batch.records.size();
  nextStart_ = unitStart(batch.unit + 1, config_.delta);
  if (!detector_) {
    // Warm-up spans calls: buffer until one full window of root counts is
    // available for the Step 3 seasonality analysis.
    warmupRootCounts_.push_back(static_cast<double>(batch.records.size()));
    warmup_.push_back(batch);
    if (warmup_.size() < config_.detector.windowLength) {
      summary.warmupUnitsBuffered = warmup_.size();
      return;
    }
    buildDetector(warmupRootCounts_, summary);
    for (const auto& buffered : warmup_) deliver(buffered);
    warmup_.clear();
    warmup_.shrink_to_fit();
    warmupRootCounts_.clear();
    summary.warmupUnitsBuffered = 0;
    return;
  }
  deliver(batch);
  summary.warmupUnitsBuffered = 0;
}

void TiresiasPipeline::saveState(persist::Serializer& out) const {
  // Configuration fingerprint: a snapshot restored into a pipeline set up
  // differently must fail loudly, not resume with mixed semantics.
  out.i64(config_.delta);
  out.u64(config_.detector.windowLength);
  out.boolean(config_.useAda);
  out.f64(config_.detector.theta);

  out.i64(nextStart_);
  out.u64(warmupRootCounts_.size());
  for (double v : warmupRootCounts_) out.f64(v);
  out.u64(warmup_.size());
  for (const auto& batch : warmup_) {
    out.i64(batch.unit);
    out.u64(batch.records.size());
    for (const auto& r : batch.records) {
      out.u32(r.category);
      out.i64(r.time);
    }
  }
  out.boolean(detector_ != nullptr);
  if (detector_) {
    out.boolean(factoryDerived_);
    out.u64(derivedSeasons_.size());
    for (const auto& s : derivedSeasons_) {
      out.u64(s.period);
      out.f64(s.weight);
    }
    // Factory fingerprint: the serialized state of one fresh forecaster.
    // Factories are opaque, but a fresh instance's state captures their
    // parameters (EWMA alpha, Holt-Winters params + seasons), so a
    // restore under a differently-parameterized factory fails loudly
    // instead of mixing semantics between restored and newly promoted
    // heavy hitters.
    persist::Serializer probe;
    activeFactory_->make()->saveState(probe);
    out.str(std::string_view(
        reinterpret_cast<const char*>(probe.data().data()), probe.size()));
    detector_->saveState(out);
  }
}

void TiresiasPipeline::loadState(persist::Deserializer& in) {
  using persist::Deserializer;
  Deserializer::require(in.i64() == config_.delta,
                        "pipeline snapshot: timeunit size mismatch");
  Deserializer::require(in.u64() == config_.detector.windowLength,
                        "pipeline snapshot: window length mismatch");
  Deserializer::require(in.boolean() == config_.useAda,
                        "pipeline snapshot: detector algorithm mismatch");
  Deserializer::require(in.f64() == config_.detector.theta,
                        "pipeline snapshot: theta mismatch");

  const Timestamp nextStart = in.i64();
  std::size_t n = in.count(sizeof(double));
  Deserializer::require(n <= config_.detector.windowLength,
                        "pipeline snapshot: warm-up longer than the window");
  std::vector<double> warmupRootCounts(n);
  for (double& v : warmupRootCounts) v = in.f64();
  n = in.count(sizeof(std::int64_t) + sizeof(std::uint64_t));
  Deserializer::require(n == warmupRootCounts.size(),
                        "pipeline snapshot: warm-up buffers disagree");
  std::vector<TimeUnitBatch> warmup(n);
  for (auto& batch : warmup) {
    batch.unit = in.i64();
    const std::size_t records =
        in.count(sizeof(std::uint32_t) + sizeof(std::int64_t));
    batch.records.resize(records);
    for (auto& r : batch.records) {
      r.category = in.u32();
      Deserializer::require(r.category < hierarchy_->size(),
                            "snapshot: node id outside hierarchy");
      r.time = in.i64();
    }
  }
  const bool hasDetector = in.boolean();
  bool factoryDerived = false;
  std::vector<SeasonSpec> derivedSeasons;
  std::unique_ptr<Detector> detector;
  std::shared_ptr<const ForecasterFactory> factory;
  if (hasDetector) {
    factoryDerived = in.boolean();
    const std::size_t seasons =
        in.count(sizeof(std::uint64_t) + sizeof(double));
    derivedSeasons.resize(seasons);
    for (auto& s : derivedSeasons) {
      s.period = in.boundedCount(persist::kMaxUnbackedCount);
      Deserializer::require(s.period >= 2,
                            "pipeline snapshot: seasonal period < 2");
      s.weight = in.f64();
    }
    const std::string savedProbe = in.str();
    DetectorConfig cfg = config_.detector;
    ensureWorkspace();
    cfg.workspace = workspace_;
    if (factoryDerived) {
      cfg.forecasterFactory = std::make_shared<HoltWintersFactory>(
          config_.hwParams, derivedSeasons);
    } else {
      Deserializer::require(
          cfg.forecasterFactory != nullptr,
          "pipeline snapshot: checkpoint used the caller's forecaster "
          "factory but this pipeline was configured without one");
    }
    // Compare factory fingerprints (a fresh instance's serialized state):
    // a differently-parameterized factory would hand newly promoted heavy
    // hitters models that disagree with the restored ones.
    persist::Serializer probe;
    cfg.forecasterFactory->make()->saveState(probe);
    Deserializer::require(
        savedProbe.size() == probe.size() &&
            std::equal(probe.data().begin(), probe.data().end(),
                       reinterpret_cast<const std::uint8_t*>(
                           savedProbe.data())),
        "pipeline snapshot: forecaster factory configuration differs from "
        "the checkpoint");
    if (config_.useAda) {
      detector = std::make_unique<AdaDetector>(*hierarchy_, cfg);
    } else {
      detector = std::make_unique<StaDetector>(*hierarchy_, cfg);
    }
    detector->loadState(in);
    factory = cfg.forecasterFactory;
  }

  nextStart_ = nextStart;
  warmupRootCounts_ = std::move(warmupRootCounts);
  warmup_ = std::move(warmup);
  factoryDerived_ = factoryDerived;
  derivedSeasons_ = std::move(derivedSeasons);
  detector_ = std::move(detector);
  activeFactory_ = std::move(factory);
  // The restored detector starts with a fresh StageTimer; the metrics
  // bridge must delta against zero again.
  lastStageSeconds_[0] = lastStageSeconds_[1] = lastStageSeconds_[2] = 0.0;
}

RunSummary TiresiasPipeline::run(RecordSource& source,
                                 const ResultCallback& onResult) {
  RunSummary summary;
  const std::size_t skippedBefore = source.skippedRecords();
  TimeUnitBatcher batcher(source, config_.delta, nextStart_);
  TimeUnitBatch batch;  // reused across units
  while (batcher.next(batch)) {
    processUnit(batch, onResult, summary);
  }
  summary.junkRowsSkipped = source.skippedRecords() - skippedBefore;
  summary.warmupUnitsBuffered = warmup_.size();
  return summary;
}

}  // namespace tiresias
