#include "core/pipeline.h"

#include <algorithm>

#include "common/expect.h"

namespace tiresias {

TiresiasPipeline::TiresiasPipeline(const Hierarchy& hierarchy,
                                   PipelineConfig config)
    : hierarchy_(hierarchy), config_(std::move(config)) {
  TIRESIAS_EXPECT(config_.detector.windowLength >= 2,
                  "window length must be >= 2");
  TIRESIAS_EXPECT(config_.delta > 0, "delta must be positive");
  nextStart_ = config_.startTime;
}

void TiresiasPipeline::buildDetector(const std::vector<double>& rootSeries,
                                     RunSummary& summary) {
  DetectorConfig cfg = config_.detector;
  if (!cfg.forecasterFactory) {
    // Step 3: offline seasonality analysis on the first window's root
    // counts, as the paper does ("we perform the data seasonality analysis
    // ... only in the first time instance"). Windows too short or too flat
    // for spectral analysis degrade to a trend-only model.
    std::vector<SeasonSpec> seasons;
    const bool flat =
        rootSeries.empty() ||
        std::all_of(rootSeries.begin(), rootSeries.end(),
                    [&](double v) { return v == rootSeries.front(); });
    if (rootSeries.size() >= 16 && !flat) {
      SeasonalityOptions opts;
      opts.candidatePeriods = config_.candidatePeriods;
      opts.maxSeasons = config_.maxSeasons;
      seasons = analyzeSeasonality(rootSeries, opts).seasons;
    }
    summary.seasons = seasons;
    cfg.forecasterFactory = std::make_shared<HoltWintersFactory>(
        config_.hwParams, std::move(seasons));
  }
  if (config_.useAda) {
    detector_ = std::make_unique<AdaDetector>(hierarchy_, cfg);
  } else {
    detector_ = std::make_unique<StaDetector>(hierarchy_, cfg);
  }
}

void TiresiasPipeline::processUnit(const TimeUnitBatch& batch,
                                   const ResultCallback& onResult,
                                   RunSummary& summary) {
  auto deliver = [&](const TimeUnitBatch& b) {
    if (auto result = detector_->step(b)) {
      ++summary.instancesDetected;
      summary.anomaliesReported += result->anomalies.size();
      if (onResult) onResult(*result);
    }
  };

  ++summary.unitsProcessed;
  summary.recordsProcessed += batch.records.size();
  nextStart_ = unitStart(batch.unit + 1, config_.delta);
  if (!detector_) {
    // Warm-up spans calls: buffer until one full window of root counts is
    // available for the Step 3 seasonality analysis.
    warmupRootCounts_.push_back(static_cast<double>(batch.records.size()));
    warmup_.push_back(batch);
    if (warmup_.size() < config_.detector.windowLength) {
      summary.warmupUnitsBuffered = warmup_.size();
      return;
    }
    buildDetector(warmupRootCounts_, summary);
    for (const auto& buffered : warmup_) deliver(buffered);
    warmup_.clear();
    warmup_.shrink_to_fit();
    warmupRootCounts_.clear();
    summary.warmupUnitsBuffered = 0;
    return;
  }
  deliver(batch);
  summary.warmupUnitsBuffered = 0;
}

RunSummary TiresiasPipeline::run(RecordSource& source,
                                 const ResultCallback& onResult) {
  RunSummary summary;
  const std::size_t skippedBefore = source.skippedRecords();
  TimeUnitBatcher batcher(source, config_.delta, nextStart_);
  TimeUnitBatch batch;  // reused across units
  while (batcher.next(batch)) {
    processUnit(batch, onResult, summary);
  }
  summary.junkRowsSkipped = source.skippedRecords() - skippedBefore;
  summary.warmupUnitsBuffered = warmup_.size();
  return summary;
}

}  // namespace tiresias
