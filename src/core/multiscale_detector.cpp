#include "core/multiscale_detector.h"

#include "common/expect.h"

namespace tiresias {

SlidingScaleDetector::SlidingScaleDetector(const Hierarchy& hierarchy,
                                           DetectorConfig fine,
                                           SlidingScaleConfig scale)
    : ada_(hierarchy, std::move(fine)), scale_(scale) {
  TIRESIAS_EXPECT(scale_.lambda >= 1, "lambda must be at least 1");
}

std::optional<InstanceResult> SlidingScaleDetector::step(
    const TimeUnitBatch& batch) {
  auto fineResult = ada_.step(batch);
  if (!fineResult) return std::nullopt;

  InstanceResult coarse;
  coarse.unit = fineResult->unit;
  coarse.shhh = fineResult->shhh;
  for (NodeId n : coarse.shhh) {
    ada_.seriesInto(n, actualBuf_);
    ada_.forecastSeriesInto(n, forecastBuf_);
    const auto& actual = actualBuf_;
    const auto& forecast = forecastBuf_;
    if (actual.size() < scale_.lambda) continue;
    double coarseActual = 0.0, coarseForecast = 0.0;
    for (std::size_t j = 0; j < scale_.lambda; ++j) {
      coarseActual += actual[actual.size() - 1 - j];
      coarseForecast += forecast[forecast.size() - 1 - j];
    }
    if (isAnomalous(coarseActual, coarseForecast, scale_.ratioThreshold,
                    scale_.diffThreshold)) {
      coarse.anomalies.push_back({n, coarse.unit, coarseActual,
                                  coarseForecast,
                                  anomalyRatio(coarseActual, coarseForecast)});
    }
  }
  return coarse;
}

}  // namespace tiresias
