// DetectWorkspace — reusable dense scratch for the per-unit detection hot
// path.
//
// The Hierarchy assigns dense BFS-ordered NodeIds, so every per-unit
// quantity the detectors juggle (direct counts, raw aggregates A_n,
// modified weights W_n, membership / tosplit / received marks) indexes a
// flat array instead of an unordered_map. Clearing between units would
// still be O(hierarchy), so every plane is *epoch-stamped*: each node
// carries the generation that last wrote it, and invalidating a whole
// plane is one counter bump. A slot is valid only while its stamp equals
// the plane's current generation; stale slots read as zero / unmarked.
//
// Workspaces are *pooled*, not per-stream: the engine keeps one workspace
// per worker and lends it to whichever stream that worker is advancing
// (the scheduler serializes a stream to one worker at a time, and nothing
// in the workspace survives a step, so lending is bit-identity-safe).
// Standalone pipelines lazily create a private workspace instead. The
// workspace is scratch only: nothing in it survives a step, and it is
// never serialized.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hierarchy/hierarchy.h"

namespace tiresias {

class DetectWorkspace {
 public:
  /// Independent mark planes (sets that coexist within one instance).
  enum Plane : unsigned {
    kMemberPlane = 0,    // fixed-set / SHHH membership
    kSplitPlane = 1,     // ADA tosplit flags
    kReceivedPlane = 2,  // ADA nodes that acquired a series this instance
    kPlaneCount = 3,
  };

  /// Size every plane for a hierarchy of `nodes` ids and invalidate every
  /// slot. Rebinding is how a pooled workspace moves between streams, so
  /// bind() must leave no readable residue of the previous tenant: growing
  /// and shrinking reallocate the planes, and a same-size rebind (the
  /// common pooled case — also a *different* hierarchy of equal size)
  /// bumps every generation so stale stamps can never read as current.
  /// Idempotent in sizing; always freshly invalidated on return.
  void bind(std::size_t nodes);

  std::size_t nodeCount() const { return raw_.size(); }
  bool bound() const { return !raw_.empty(); }

  /// Resident bytes of the dense planes plus the reusable buffers.
  std::size_t bytes() const;

  // --- value plane: per-unit raw / modified weights --------------------
  /// Invalidate all staged values (start of a new timeunit's pass).
  void beginUnit() { bump(valueGen_, valueEpoch_); }

  /// First touch of `n` this unit zeroes its values and returns true.
  bool touch(NodeId n) {
    if (valueEpoch_[n] == valueGen_) return false;
    valueEpoch_[n] = valueGen_;
    raw_[n] = 0.0;
    modified_[n] = 0.0;
    return true;
  }
  bool isTouched(NodeId n) const { return valueEpoch_[n] == valueGen_; }

  /// Mutable access; only meaningful after touch(n) this unit.
  double& raw(NodeId n) { return raw_[n]; }
  double& modified(NodeId n) { return modified_[n]; }

  double rawOrZero(NodeId n) const {
    return valueEpoch_[n] == valueGen_ ? raw_[n] : 0.0;
  }
  double modifiedOrZero(NodeId n) const {
    return valueEpoch_[n] == valueGen_ ? modified_[n] : 0.0;
  }

  // Bulk plane access for the SIMD kernels (simd::gatherStampedOrZero is
  // the vector form of rawOrZero/modifiedOrZero over a node-id list).
  // Every slot is initialized at bind(), so gathering stale lanes is
  // well-defined; the stamp mask zeroes them exactly like the scalar read.
  const double* rawData() const { return raw_.data(); }
  const double* modifiedData() const { return modified_.data(); }
  const std::uint32_t* valueEpochData() const { return valueEpoch_.data(); }
  std::uint32_t valueGeneration() const { return valueGen_; }

  // --- mark planes -----------------------------------------------------
  void beginMarks(Plane p) { bump(markGen_[p], markEpoch_[p]); }

  /// Returns true on the first mark of `n` in this plane's generation.
  bool mark(Plane p, NodeId n) {
    if (markEpoch_[p][n] == markGen_[p]) return false;
    markEpoch_[p][n] = markGen_[p];
    return true;
  }
  bool isMarked(Plane p, NodeId n) const {
    return markEpoch_[p][n] == markGen_[p];
  }

  // --- reusable buffers (capacity persists across units) ---------------
  /// Touched nodes of the current unit: the caller stages counted nodes,
  /// computeShhhStaged extends it with their ancestors and sorts it
  /// bottom-up (descending id).
  std::vector<NodeId> touched;

 private:
  static void bump(std::uint32_t& gen, std::vector<std::uint32_t>& epoch);

  std::vector<double> raw_;
  std::vector<double> modified_;
  std::vector<std::uint32_t> valueEpoch_;
  std::uint32_t valueGen_ = 0;
  std::vector<std::uint32_t> markEpoch_[kPlaneCount];
  std::uint32_t markGen_[kPlaneCount] = {};
};

}  // namespace tiresias
