// Shared types of the detection core.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/timeutil.h"
#include "hierarchy/hierarchy.h"

namespace tiresias {

/// One detected anomalous event (Definition 4): at heavy hitter `node`, in
/// timeunit `unit`, the observed modified weight `actual` exceeded the
/// forecast `forecast` on both the relative and absolute criteria.
struct Anomaly {
  NodeId node = kInvalidNode;
  TimeUnit unit = 0;
  double actual = 0.0;
  double forecast = 0.0;

  /// Relative excess T/F (a convenience score; +inf-safe value capped by
  /// the producer when F <= 0).
  double ratio = 0.0;

  friend bool operator==(const Anomaly&, const Anomaly&) = default;
};

/// Output of one detection instance (one window shift).
struct InstanceResult {
  TimeUnit unit = 0;                 // the detection timeunit
  std::vector<NodeId> shhh;          // succinct HH set, ascending node id
  std::vector<Anomaly> anomalies;    // ascending node id
};

/// Live memory accounting counters, the inputs to the Table IV model.
struct MemoryStats {
  std::size_t seriesCount = 0;      // actual+forecast ring pairs held
  std::size_t seriesValues = 0;     // total doubles stored in rings
  std::size_t refSeriesCount = 0;   // reference series pairs (§V-B5)
  std::size_t refSeriesValues = 0;
  std::size_t forecasterValues = 0; // doubles of forecaster state (L,B,S..)
  std::size_t treeNodesStored = 0;  // resident tree nodes (STA: ℓ sparse trees)
  std::size_t workspaceBytes = 0;   // dense detect-workspace scratch (actual)
  /// Series + tree state at 8 bytes/double — the paper's Table IV model.
  /// Excludes workspaceBytes: the workspace is shared per-stream scratch,
  /// not per-detector algorithm state the model accounts for.
  std::size_t bytesEstimate = 0;
};

/// Split-ratio heuristics of §V-B4.
enum class SplitRule {
  kUniform,
  kLastTimeUnit,
  kLongTermHistory,
  kEwma,
};

const char* splitRuleName(SplitRule rule);

}  // namespace tiresias
