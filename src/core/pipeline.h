// TiresiasPipeline — the back end of Fig 3 wired end-to-end:
// Step 1 timeunit batching, Step 2 heavy-hitter detection + time series,
// Step 3 offline seasonality analysis on the first window, Steps 4-5
// forecasting, anomaly detection and reporting, Step 6 streaming until the
// source is exhausted.
//
// The pipeline owns the detector; callers receive every InstanceResult via
// a callback (report::AnomalyStore provides a convenient sink).
#pragma once

#include <functional>
#include <memory>

#include "analysis/seasonality.h"
#include "core/ada.h"
#include "core/sta.h"
#include "obs/metrics.h"

namespace tiresias {

struct PipelineConfig {
  /// Detector configuration. If forecasterFactory is null, the pipeline
  /// builds a Holt-Winters factory from the seasonality analysis of the
  /// first window (Step 3); otherwise the given factory is used as-is.
  DetectorConfig detector;
  /// Timeunit size Δ (seconds). Paper default: 15 minutes.
  Duration delta = 15 * kMinute;
  /// First timestamp of interest (records before it are dropped).
  Timestamp startTime = 0;
  /// Use ADA (true) or the STA strawman (false).
  bool useAda = true;
  /// Holt-Winters smoothing for the derived factory.
  HoltWintersParams hwParams;
  /// Candidate seasonal periods in timeunits for Step 3 (e.g. {96, 672}
  /// for day/week at 15-minute units). Empty = automatic peak picking.
  std::vector<std::size_t> candidatePeriods;
  std::size_t maxSeasons = 2;
};

struct RunSummary {
  std::size_t unitsProcessed = 0;
  std::size_t recordsProcessed = 0;
  std::size_t instancesDetected = 0;
  std::size_t anomaliesReported = 0;
  /// Rows the source consumed but skipped (junk lines, unknown categories)
  /// during this run — RecordSource::skippedRecords() delta.
  std::size_t junkRowsSkipped = 0;
  /// Timeunits still buffered in pipeline warm-up (Step 3 has not run yet)
  /// after the last processed unit. Non-zero at end of stream means the
  /// stream was shorter than the detector window: every unit was absorbed
  /// silently and no detection instance was ever produced.
  std::size_t warmupUnitsBuffered = 0;
  /// The seasonality chosen in Step 3 (empty when a factory was supplied).
  std::vector<SeasonSpec> seasons;
};

class TiresiasPipeline {
 public:
  using ResultCallback = std::function<void(const InstanceResult&)>;

  /// The pipeline shares ownership of its (immutable) hierarchy, so a
  /// fleet of streams over one topology keeps a single BFS-ordered
  /// hierarchy alive between them and no caller has to outlive anyone.
  TiresiasPipeline(std::shared_ptr<const Hierarchy> hierarchy,
                   PipelineConfig config);

  /// Stream the whole source through the detector. The callback fires once
  /// per detection instance (after the warm-up window fills). run() may be
  /// called repeatedly with successive sources (live operation, Step 6);
  /// batching resumes after the last processed timeunit.
  RunSummary run(RecordSource& source, const ResultCallback& onResult);

  /// Feed one already-batched timeunit (engine ingestion path). Units must
  /// arrive in consecutive order, exactly as a TimeUnitBatcher over the
  /// concatenated record stream would emit them; run() is expressed in
  /// terms of this, so chunked and whole-source processing are
  /// bit-identical. The batch is only read (callers reuse their buffers);
  /// during warm-up it is copied into the buffered window. Counters
  /// accumulate into `summary`.
  void processUnit(const TimeUnitBatch& batch, const ResultCallback& onResult,
                   RunSummary& summary);

  /// The live detector (valid during/after run), e.g. for memory stats.
  Detector* detector() { return detector_.get(); }
  const Detector* detector() const { return detector_.get(); }

  const PipelineConfig& config() const { return config_; }

  /// The shared hierarchy handle (never null).
  const std::shared_ptr<const Hierarchy>& hierarchyHandle() const {
    return hierarchy_;
  }
  const Hierarchy& hierarchy() const { return *hierarchy_; }

  /// Where processing resumes: the start timestamp of the next unit this
  /// pipeline expects (== config().startTime until the first unit). A
  /// restored pipeline re-fed its source from the beginning skips
  /// everything before this point. Survives hibernate()/wake() (the
  /// engine's ingest side reads it from a possibly-hibernated shell).
  Timestamp resumeTime() const { return nextStart_; }

  /// Resident bytes of the detection workspace currently attached to this
  /// pipeline (0 until a detector is built or a workspace is attached).
  /// Under engine pooling the attached workspace is shared loaner scratch,
  /// not stream-owned memory.
  std::size_t workspaceBytes() const {
    return workspace_ ? workspace_->bytes() : 0;
  }

  /// Lend this pipeline a detection workspace (engine pooling: one
  /// workspace per worker, attached to the stream being advanced). The
  /// workspace is (re)bound to this pipeline's hierarchy — an idempotent
  /// sizing plus a generation bump, so whatever the previous tenant left
  /// behind reads as invalidated — and handed to the live detector. Call
  /// only between units. Idempotent; attaching the already-attached
  /// workspace still invalidates it (another stream may have used it in
  /// between).
  void attachWorkspace(std::shared_ptr<DetectWorkspace> workspace);

  /// Snapshot the pipeline's full state into `out` (the exact saveState
  /// bytes) and reset the pipeline to an empty shell: detector, warm-up
  /// buffers and factory state are released; only the configuration, the
  /// hierarchy handle and resumeTime() remain resident. wake() (loadState
  /// over the emitted bytes) restores it bit-identically.
  void hibernate(persist::Serializer& out);

  /// Restore a hibernated pipeline (alias of loadState, named for the
  /// paging path). Attach a workspace first when pooling, or the rebuilt
  /// detector allocates a private one.
  void wake(persist::Deserializer& in) { loadState(in); }

  /// True when the pipeline holds live per-stream state worth paging out
  /// (a built detector or buffered warm-up units).
  bool holdsState() const { return detector_ != nullptr || !warmup_.empty(); }

  /// Attach a metrics registry (not owned; null detaches). processUnit
  /// then records a per-unit observe span (STA or ADA) and bridges the
  /// detector's Table-III stage timers into per-stage latency histograms.
  /// Call only between units (the engine binds it before start()).
  void bindMetrics(obs::MetricsRegistry* registry) { metrics_ = registry; }

  /// Snapshot the pipeline: batching position, warm-up buffer, the Step-3
  /// seasonality decision, and (when built) the detector state.
  void saveState(persist::Serializer& out) const;
  /// Restore onto a pipeline constructed with the same configuration
  /// (delta, window length, algorithm, theta are fingerprinted). When the
  /// snapshot's forecaster factory was derived from Step-3 seasonality
  /// analysis, an identical factory is rebuilt from the persisted seasons.
  /// Throws persist::SnapshotError on mismatch or malformed input.
  void loadState(persist::Deserializer& in);

 private:
  void buildDetector(const std::vector<double>& rootSeries,
                     RunSummary& summary);
  /// Lazily create a private workspace when none was attached (standalone
  /// pipelines; the engine always attaches pooled ones first).
  void ensureWorkspace();

  std::shared_ptr<const Hierarchy> hierarchy_;
  PipelineConfig config_;
  /// The detection workspace handed to every detector this pipeline
  /// builds. Null until needed: under engine pooling this is a loaner
  /// owned by the worker pool (attachWorkspace); standalone pipelines
  /// lazily create a private one when the detector is built. Nothing in
  /// it survives a unit, so rebinding between streams is safe.
  std::shared_ptr<DetectWorkspace> workspace_;
  std::unique_ptr<Detector> detector_;
  /// Where the next run() resumes batching (advances past processed units).
  Timestamp nextStart_ = 0;
  /// Warm-up state carried across run() calls until the window fills.
  std::vector<TimeUnitBatch> warmup_;
  std::vector<double> warmupRootCounts_;
  /// The Step-3 decision, remembered so a checkpoint can rebuild the
  /// derived forecaster factory instead of re-running the analysis.
  bool factoryDerived_ = false;
  std::vector<SeasonSpec> derivedSeasons_;
  /// The factory the live detector was built with (caller-supplied or
  /// derived); snapshots fingerprint it via a fresh instance's state.
  std::shared_ptr<const ForecasterFactory> activeFactory_;
  /// Metrics sink (not owned; null = metrics off) plus the last-seen
  /// cumulative totals of the detector's Table-III stage timers, so each
  /// processed unit records only its own delta into the histograms.
  obs::MetricsRegistry* metrics_ = nullptr;
  double lastStageSeconds_[3] = {0.0, 0.0, 0.0};
};

}  // namespace tiresias
