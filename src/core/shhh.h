// Succinct Hierarchical Heavy Hitters (Definitions 1-3).
//
// computeShhh is the authoritative bottom-up evaluation of Definition 2 for
// one timeunit; both detectors use it (STA per instance, ADA for its weight
// pass and the tests as ground truth). modifiedSeriesFixedSet reconstructs
// Definition-3 time series for a *fixed* heavy-hitter set across a window
// of timeunits — STA's per-instance reconstruction and ADA's bootstrap.
//
// Sparse convention: only nodes on the root-path of a nonzero leaf count
// are materialized; all others implicitly have A = W = 0 (θ > 0 keeps them
// out of every heavy-hitter set).
#pragma once

#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "hierarchy/hierarchy.h"

namespace tiresias {

/// Sparse per-unit counts: node -> weight contributed directly at that node
/// (for leaf-categorised operational data, keys are leaves).
using CountMap = std::unordered_map<NodeId, double>;

struct NodeWeights {
  NodeId node = kInvalidNode;
  double raw = 0.0;       // A_n: full subtree aggregate
  double modified = 0.0;  // W_n: Definition-2 modified weight
  bool heavy = false;     // W_n >= theta
};

struct ShhhResult {
  /// Every touched node (ascending id) with its weights.
  std::vector<NodeWeights> touched;
  /// The SHHH set (ascending id). Unique per Definition 2.
  std::vector<NodeId> shhh;
};

/// Evaluate Definition 2 for one timeunit of counts.
ShhhResult computeShhh(const Hierarchy& hierarchy, const CountMap& counts,
                       double theta);

/// Definition-3 reconstruction: given per-unit counts (oldest first) and a
/// fixed heavy-hitter set (ascending ids), return each set member's series
/// of modified weights computed against that fixed membership, plus the
/// root's series (always included, keyed by the root id).
std::unordered_map<NodeId, std::vector<double>> modifiedSeriesFixedSet(
    const Hierarchy& hierarchy, const std::vector<CountMap>& unitCounts,
    const std::vector<NodeId>& fixedSet);

/// Raw-aggregate series A_n for the requested nodes over the window
/// (§V-B5 reference time series; also used by the reference method).
std::unordered_map<NodeId, std::vector<double>> rawSeries(
    const Hierarchy& hierarchy, const std::vector<CountMap>& unitCounts,
    const std::vector<NodeId>& nodes);

}  // namespace tiresias
