// Succinct Hierarchical Heavy Hitters (Definitions 1-3).
//
// computeShhh is the authoritative bottom-up evaluation of Definition 2 for
// one timeunit; both detectors use it (STA per instance, ADA for its weight
// pass and the tests as ground truth). modifiedSeriesFixedSet reconstructs
// Definition-3 time series for a *fixed* heavy-hitter set across a window
// of timeunits — STA's per-instance reconstruction and ADA's bootstrap.
//
// Sparse convention: only nodes on the root-path of a nonzero leaf count
// are materialized; all others implicitly have A = W = 0 (θ > 0 keeps them
// out of every heavy-hitter set).
//
// Hot path: every kernel runs on a DetectWorkspace — dense NodeId-indexed,
// epoch-stamped arrays instead of per-call unordered_maps. The detectors
// stage record counts straight into the workspace and call
// computeShhhStaged; the CountMap-taking overloads below stage a sparse
// map into a thread-local workspace and wrap the same kernel, so every
// entry point computes the identical floating-point sequence (the
// equivalence tests assert bit-identity against the retained map-based
// implementation in shhh_reference.h).
#pragma once

#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "core/workspace.h"
#include "hierarchy/hierarchy.h"

namespace tiresias {

/// Sparse per-unit counts: node -> weight contributed directly at that node
/// (for leaf-categorised operational data, keys are leaves). This stays the
/// public ingest-facing type; the detectors only use it off the hot path
/// (bootstrap buffers, snapshots, tests).
using CountMap = std::unordered_map<NodeId, double>;

struct NodeWeights {
  NodeId node = kInvalidNode;
  double raw = 0.0;       // A_n: full subtree aggregate
  double modified = 0.0;  // W_n: Definition-2 modified weight
  bool heavy = false;     // W_n >= theta
};

struct ShhhResult {
  /// Every touched node (ascending id) with its weights.
  std::vector<NodeWeights> touched;
  /// The SHHH set (ascending id). Unique per Definition 2.
  std::vector<NodeId> shhh;

  void clear() {
    touched.clear();
    shhh.clear();
  }
};

/// Stage one direct count into a workspace whose value plane was opened
/// with ws.beginUnit(): first touch registers the node in ws.touched.
inline void stageCount(DetectWorkspace& ws, NodeId node, double weight) {
  if (ws.touch(node)) ws.touched.push_back(node);
  ws.raw(node) += weight;
  ws.modified(node) += weight;
}

/// Evaluate Definition 2 over the counts staged in `ws` (beginUnit +
/// stageCount since the last generation). Extends ws.touched with every
/// ancestor of a counted node and leaves it sorted bottom-up (descending
/// id); on return ws.raw/ws.modified hold A_n / W_n for each touched node.
/// `out` is cleared and refilled (capacity reused across units).
void computeShhhStaged(const Hierarchy& hierarchy, double theta,
                       DetectWorkspace& ws, ShhhResult& out);

/// Collect ws.touched ∪ ancestors for the staged counts without the
/// Definition-2 sweep (sorted bottom-up). Used to walk a unit's resident
/// tree, e.g. when expiring it from an incremental window.
void collectTouchedStaged(const Hierarchy& hierarchy, DetectWorkspace& ws);

/// Evaluate Definition 2 for one timeunit of counts (workspace-reusing
/// overload; `out` is cleared and refilled).
void computeShhh(const Hierarchy& hierarchy, const CountMap& counts,
                 double theta, DetectWorkspace& ws, ShhhResult& out);

/// Convenience overload over a thread-local workspace.
ShhhResult computeShhh(const Hierarchy& hierarchy, const CountMap& counts,
                       double theta);

/// Definition-3 reconstruction: given per-unit counts (oldest first) and a
/// fixed heavy-hitter set (ascending ids), return each set member's series
/// of modified weights computed against that fixed membership, plus the
/// root's series (always included, keyed by the root id).
std::unordered_map<NodeId, std::vector<double>> modifiedSeriesFixedSet(
    const Hierarchy& hierarchy, const std::vector<CountMap>& unitCounts,
    const std::vector<NodeId>& fixedSet);

/// Raw-aggregate series A_n for the requested nodes over the window
/// (§V-B5 reference time series; also used by the reference method).
std::unordered_map<NodeId, std::vector<double>> rawSeries(
    const Hierarchy& hierarchy, const std::vector<CountMap>& unitCounts,
    const std::vector<NodeId>& nodes);

}  // namespace tiresias
