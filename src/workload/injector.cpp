#include "workload/injector.h"

namespace tiresias::workload {

std::vector<SpikeSpec> GroundTruthLedger::activeAt(TimeUnit unit) const {
  std::vector<SpikeSpec> out;
  for (const auto& s : specs_) {
    if (s.activeAt(unit)) out.push_back(s);
  }
  return out;
}

bool GroundTruthLedger::matches(const Hierarchy& hierarchy, NodeId node,
                                TimeUnit unit) const {
  for (const auto& s : specs_) {
    if (!s.activeAt(unit)) continue;
    if (hierarchy.isAncestorOrEqual(node, s.node) ||
        hierarchy.isAncestorOrEqual(s.node, node)) {
      return true;
    }
  }
  return false;
}

NodeId AnomalyInjector::randomLeafUnder(NodeId node, Rng& rng) const {
  NodeId cur = node;
  while (!hierarchy_->isLeaf(cur)) {
    // Weight the walk by subtree leaf counts for a uniform leaf choice.
    const auto kids = hierarchy_->children(cur);
    const std::uint64_t pick =
        rng.below(hierarchy_->leavesUnder(cur));
    std::uint64_t acc = 0;
    NodeId chosen = kids.back();
    for (NodeId c : kids) {
      acc += hierarchy_->leavesUnder(c);
      if (pick < acc) {
        chosen = c;
        break;
      }
    }
    cur = chosen;
  }
  return cur;
}

std::vector<NodeId> AnomalyInjector::drawExtras(TimeUnit unit,
                                                Rng& rng) const {
  std::vector<NodeId> extras;
  for (const auto& spec : ledger_.specs()) {
    if (!spec.activeAt(unit)) continue;
    const std::uint64_t count = rng.poisson(spec.extraPerUnit);
    for (std::uint64_t i = 0; i < count; ++i) {
      extras.push_back(randomLeafUnder(spec.node, rng));
    }
  }
  return extras;
}

}  // namespace tiresias::workload
