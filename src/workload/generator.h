// Synthetic operational-data generation.
//
// A WorkloadSpec bundles a hierarchy, a per-node child-share distribution
// (leaf popularity = product of shares along the root path, giving the
// heterogeneous sibling rates §II-B observes), a seasonal rate model, and a
// base rate. GeneratorSource turns a spec (plus an optional injector) into
// a time-ordered RecordSource: per timeunit it draws a Poisson count around
// base · multiplier(t), samples leaves in O(1) from an alias table over
// the leaf distribution (root-path product of shares), adds injected
// extras and uniformly spreads timestamps within the unit.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "stream/source.h"
#include "workload/arrival.h"
#include "workload/injector.h"

namespace tiresias::workload {

struct WorkloadSpec {
  Hierarchy hierarchy;
  /// childShares[n] has one probability per child of n (same order as
  /// hierarchy.children(n)), summing to 1 for interior nodes.
  std::vector<std::vector<double>> childShares;
  SeasonalRateModel rate;
  /// Expected records per timeunit when the seasonal multiplier is 1.
  double baseRatePerUnit = 100.0;
  /// Timeunit the base rate refers to.
  Duration unit = 15 * kMinute;

  /// Long-run probability that a record lands on each leaf (root-path
  /// product of shares), aligned with hierarchy.leaves().
  std::vector<double> leafProbabilities() const;
  /// As above but for an arbitrary node.
  double nodeProbability(NodeId node) const;

  /// Zipf-like child shares for every interior node: the k-th child of a
  /// node at depth d gets a share ∝ 1/k^exponents[d-1] (exponent 0 =>
  /// uniform). Exponents beyond the vector reuse the last entry.
  static std::vector<std::vector<double>> zipfShares(
      const Hierarchy& hierarchy, const std::vector<double>& exponents);
};

/// Aliasing handle to the hierarchy inside a shared WorkloadSpec: the
/// handle keeps the whole spec alive, so any number of streams can be
/// registered against one spec's hierarchy (the memory-sharing idiom the
/// engine's addStream expects for preset-driven fleets).
inline std::shared_ptr<const Hierarchy> sharedHierarchy(
    const std::shared_ptr<const WorkloadSpec>& spec) {
  return std::shared_ptr<const Hierarchy>(spec, &spec->hierarchy);
}

class GeneratorSource final : public RecordSource {
 public:
  /// Generates records for timeunits [firstUnit, lastUnit). The injector
  /// is optional.
  GeneratorSource(const WorkloadSpec& spec, TimeUnit firstUnit,
                  TimeUnit lastUnit, std::uint64_t seed,
                  std::shared_ptr<const AnomalyInjector> injector = nullptr);

  std::optional<Record> next() override;
  /// Native batch pull: copies whole runs out of the per-unit buffer, so
  /// the per-record cost is a memcpy instead of a virtual call. Yields the
  /// identical record sequence as next() (same RNG draws, same order).
  std::size_t nextBatch(std::vector<Record>& out, std::size_t max) override;

  /// Total records generated so far.
  std::size_t produced() const { return produced_; }

 private:
  void fillUnit();
  NodeId sampleLeaf();

  const WorkloadSpec& spec_;
  /// Walker/Vose alias table over the leaves (probability = root-path
  /// product of child shares): one uniform draw and O(1) work per record,
  /// instead of a root-to-leaf walk of binary searches.
  std::vector<double> aliasProb_;
  std::vector<std::uint32_t> aliasIdx_;
  TimeUnit nextUnit_;
  TimeUnit lastUnit_;
  Rng rng_;
  std::shared_ptr<const AnomalyInjector> injector_;
  std::vector<Record> buffer_;
  std::size_t bufferPos_ = 0;
  std::size_t produced_ = 0;
};

}  // namespace tiresias::workload
