// Seasonal arrival-rate model for synthetic operational data.
//
// The paper's Fig 2 shows a strong diurnal cycle (daily peak ≈ 4 PM, trough
// ≈ 4 AM), a weekly cycle in CCD (quieter weekends), and heavy volatility
// (90th/10th percentile ratio ≈ 35 at the CCD root). We model the expected
// arrival rate as
//     rate(t) = base · diurnal(t) · weekday(t)
// with a raised-cosine diurnal curve (smooth, sharpness-controlled) and a
// per-day-of-week factor; actual counts are Poisson draws around it.
#pragma once

#include <array>

#include "common/timeutil.h"

namespace tiresias::workload {

struct DiurnalPattern {
  double troughHour = 4.0;   // local hour of the daily minimum
  double peakToTrough = 20.0;  // ratio of peak rate to trough rate
  double sharpness = 1.6;    // >1 narrows the peak
};

class SeasonalRateModel {
 public:
  SeasonalRateModel() { weekdayFactor_.fill(1.0); }
  SeasonalRateModel(DiurnalPattern diurnal,
                    std::array<double, 7> weekdayFactor)
      : diurnal_(diurnal), weekdayFactor_(weekdayFactor) {}

  /// Dimensionless multiplier; averages ≈ (1 + trough)/something — callers
  /// treat `base · multiplier` as the expected rate.
  double multiplier(Timestamp t) const;

  const DiurnalPattern& diurnal() const { return diurnal_; }
  const std::array<double, 7>& weekdayFactor() const { return weekdayFactor_; }

  /// Uniform rate (no seasonality).
  static SeasonalRateModel flat();
  /// Paper-like CCD shape: strong diurnal + weekend dip.
  static SeasonalRateModel ccdLike();
  /// Paper-like SCD shape: diurnal only, gentler, no weekly pattern.
  static SeasonalRateModel scdLike();

 private:
  DiurnalPattern diurnal_{};
  std::array<double, 7> weekdayFactor_{};
};

}  // namespace tiresias::workload
