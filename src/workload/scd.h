// SCD — Set-Top Box crash dataset presets (§II-A).
//
// One network-path hierarchy of depth 4 (Table II: national -> CO -> DSLAM
// -> STB with typical degrees 2000 / 30 / 6). The arrival pattern is
// diurnal-only and has a smaller variance than CCD, which is why the paper
// sees fewer split operations and higher ADA accuracy on SCD (§VII-A).
#pragma once

#include "workload/ccd.h"

namespace tiresias::workload {

/// SCD network-path workload.
WorkloadSpec scdNetworkWorkload(Scale scale);

/// Per-scale degree vectors (Table II row for SCD).
std::vector<std::size_t> scdNetworkDegrees(Scale scale);

}  // namespace tiresias::workload
