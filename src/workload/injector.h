// Anomaly injection with a ground-truth ledger.
//
// A SpikeSpec adds extra records under a target node for a window of
// timeunits — the synthetic equivalent of the paper's network incidents
// (outages, intermittent drops) that drive bursts of customer calls or STB
// crashes. The ledger is the evaluation ground truth for Table VI.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/timeutil.h"
#include "hierarchy/hierarchy.h"

namespace tiresias::workload {

struct SpikeSpec {
  NodeId node = kInvalidNode;  // affected aggregate (records land on
                               // leaves beneath it)
  TimeUnit startUnit = 0;
  std::size_t durationUnits = 1;
  /// Expected extra records per timeunit while active (Poisson mean).
  double extraPerUnit = 0.0;

  bool activeAt(TimeUnit unit) const {
    return unit >= startUnit &&
           unit < startUnit + static_cast<TimeUnit>(durationUnits);
  }
};

class GroundTruthLedger {
 public:
  void add(const SpikeSpec& spec) { specs_.push_back(spec); }
  const std::vector<SpikeSpec>& specs() const { return specs_; }

  /// Spikes active in the given unit.
  std::vector<SpikeSpec> activeAt(TimeUnit unit) const;

  /// True iff some spike active at `unit` injects at `node` or anywhere in
  /// `node`'s subtree, or at an ancestor of `node` — i.e. the detection
  /// location is on the injected event's root path (the paper's
  /// L(a) ⊒ L(b) match in either direction).
  bool matches(const Hierarchy& hierarchy, NodeId node, TimeUnit unit) const;

 private:
  std::vector<SpikeSpec> specs_;
};

/// Draws the injected records for one timeunit.
class AnomalyInjector {
 public:
  AnomalyInjector(const Hierarchy& hierarchy, GroundTruthLedger ledger)
      : hierarchy_(&hierarchy), ledger_(std::move(ledger)) {}

  const GroundTruthLedger& ledger() const { return ledger_; }

  /// Leaf nodes (with multiplicity) of extra records for `unit`.
  std::vector<NodeId> drawExtras(TimeUnit unit, Rng& rng) const;

 private:
  /// Uniformly random leaf in the subtree of `node`.
  NodeId randomLeafUnder(NodeId node, Rng& rng) const;

  const Hierarchy* hierarchy_;
  GroundTruthLedger ledger_;
};

}  // namespace tiresias::workload
