// CCD — Customer Care call Dataset presets (§II-A).
//
// Two hierarchies, matching Table II:
//   trouble description  depth 5, typical degrees 9 / 6 / 3 / 5
//   network path         depth 5, typical degrees 61 / 5 / 6 / 24
//                        (SHO -> VHO -> IO -> CO -> DSLAM)
// The trouble tree's first level carries the Table I ticket mix (TV 39.59%,
// All Products 26.71%, ... Remote Control 2.35%, plus two residual
// categories with negligible mass so the level-1 degree is 9).
//
// Scale presets keep the paper's shape at different sizes:
//   kTest   — seconds-fast trees for unit tests and CI
//   kMedium — the benches' default; preserves the level structure with a
//             few thousand network leaves
//   kPaper  — the full Table II degrees (CCD network ≈ 46k nodes)
#pragma once

#include "workload/generator.h"

namespace tiresias::workload {

enum class Scale { kTest, kMedium, kPaper };

/// Table I first-level categories and their ticket shares (fractions).
struct TicketCategory {
  const char* name;
  double share;
};
const std::vector<TicketCategory>& ccdTicketMix();

/// CCD trouble-description workload (hierarchy of call categories).
WorkloadSpec ccdTroubleWorkload(Scale scale);

/// CCD network-path workload (SHO/VHO/IO/CO/DSLAM).
WorkloadSpec ccdNetworkWorkload(Scale scale);

/// Per-scale degree vectors (exposed for the Table II bench).
std::vector<std::size_t> ccdTroubleDegrees(Scale scale);
std::vector<std::size_t> ccdNetworkDegrees(Scale scale);

}  // namespace tiresias::workload
