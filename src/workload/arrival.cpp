#include "workload/arrival.h"

#include <cmath>
#include <numbers>

namespace tiresias::workload {

double SeasonalRateModel::multiplier(Timestamp t) const {
  const double hour = static_cast<double>(secondOfDay(t)) / kHour;
  // Raised cosine with minimum at troughHour: u ∈ [0, 1].
  const double phase =
      2.0 * std::numbers::pi * (hour - diurnal_.troughHour) / 24.0;
  const double u = 0.5 * (1.0 - std::cos(phase));
  const double shaped = std::pow(u, diurnal_.sharpness);
  // Map to [1/peakToTrough, 1] so the configured ratio holds exactly.
  const double lo = 1.0 / diurnal_.peakToTrough;
  const double diurnal = lo + (1.0 - lo) * shaped;
  return diurnal * weekdayFactor_[static_cast<std::size_t>(dayOfWeek(t))];
}

SeasonalRateModel SeasonalRateModel::flat() {
  SeasonalRateModel m;
  m.diurnal_.peakToTrough = 1.0;
  m.diurnal_.sharpness = 1.0;
  return m;
}

SeasonalRateModel SeasonalRateModel::ccdLike() {
  // Day 0 of the synthetic calendar is a Saturday (Fig 2(a) starts on
  // Saturday May 1 2010): weekend days 0, 1 and 7k+{0,1} are quiet.
  return SeasonalRateModel({4.0, 24.0, 1.8},
                           {0.55, 0.6, 1.0, 1.0, 1.0, 1.0, 0.95});
}

SeasonalRateModel SeasonalRateModel::scdLike() {
  // STB crashes follow TV-watching hours: diurnal but flatter, with no
  // weekly structure (Fig 2(b), Fig 11(b)).
  return SeasonalRateModel({4.5, 6.0, 1.2},
                           {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0});
}

}  // namespace tiresias::workload
