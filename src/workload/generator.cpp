#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"

namespace tiresias::workload {

std::vector<double> WorkloadSpec::leafProbabilities() const {
  std::vector<double> prob(hierarchy.size(), 0.0);
  prob[hierarchy.root()] = 1.0;
  // Top-down (ascending ids): parents precede children.
  for (NodeId n = 0; n < hierarchy.size(); ++n) {
    const auto kids = hierarchy.children(n);
    for (std::size_t i = 0; i < kids.size(); ++i) {
      prob[kids[i]] = prob[n] * childShares[n][i];
    }
  }
  std::vector<double> out;
  out.reserve(hierarchy.leafCount());
  for (NodeId leaf : hierarchy.leaves()) out.push_back(prob[leaf]);
  return out;
}

double WorkloadSpec::nodeProbability(NodeId node) const {
  double p = 1.0;
  NodeId cur = node;
  while (cur != hierarchy.root()) {
    const NodeId parent = hierarchy.parent(cur);
    const auto kids = hierarchy.children(parent);
    for (std::size_t i = 0; i < kids.size(); ++i) {
      if (kids[i] == cur) {
        p *= childShares[parent][i];
        break;
      }
    }
    cur = parent;
  }
  return p;
}

std::vector<std::vector<double>> WorkloadSpec::zipfShares(
    const Hierarchy& hierarchy, const std::vector<double>& exponents) {
  TIRESIAS_EXPECT(!exponents.empty(), "need at least one exponent");
  std::vector<std::vector<double>> shares(hierarchy.size());
  for (NodeId n = 0; n < hierarchy.size(); ++n) {
    const auto kids = hierarchy.children(n);
    if (kids.empty()) continue;
    const std::size_t depthIdx = std::min<std::size_t>(
        static_cast<std::size_t>(hierarchy.depth(n)) - 1,
        exponents.size() - 1);
    const double s = exponents[depthIdx];
    std::vector<double> w(kids.size());
    double total = 0.0;
    for (std::size_t i = 0; i < kids.size(); ++i) {
      w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
      total += w[i];
    }
    for (auto& v : w) v /= total;
    shares[n] = std::move(w);
  }
  return shares;
}

GeneratorSource::GeneratorSource(
    const WorkloadSpec& spec, TimeUnit firstUnit, TimeUnit lastUnit,
    std::uint64_t seed, std::shared_ptr<const AnomalyInjector> injector)
    : spec_(spec),
      nextUnit_(firstUnit),
      lastUnit_(lastUnit),
      rng_(seed),
      injector_(std::move(injector)) {
  TIRESIAS_EXPECT(firstUnit <= lastUnit, "unit range reversed");
  TIRESIAS_EXPECT(spec.childShares.size() == spec.hierarchy.size(),
                  "child shares must cover every node");
  // Vose's alias method over the leaf distribution: O(leaves) setup, one
  // uniform draw per sample. Same long-run leaf probabilities as walking
  // the per-node share CDFs, at a fraction of the per-record cost.
  const auto probs = spec.leafProbabilities();
  const std::size_t n = probs.size();
  TIRESIAS_EXPECT(n > 0, "workload hierarchy has no leaves");
  aliasProb_.assign(n, 1.0);
  aliasIdx_.resize(n);
  std::vector<std::uint32_t> small, large;
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = probs[i] * static_cast<double>(n);
    aliasIdx_[i] = static_cast<std::uint32_t>(i);
    (scaled[i] < 1.0 ? small : large).push_back(
        static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    const std::uint32_t l = large.back();
    small.pop_back();
    aliasProb_[s] = scaled[s];
    aliasIdx_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers (rounding drift) keep probability 1 onto themselves.
}

NodeId GeneratorSource::sampleLeaf() {
  // One uniform split into bucket index (integer part) and the coin toss
  // (fractional part).
  const double u =
      rng_.uniform() * static_cast<double>(aliasProb_.size());
  std::size_t i = static_cast<std::size_t>(u);
  if (i >= aliasProb_.size()) i = aliasProb_.size() - 1;
  const double frac = u - static_cast<double>(i);
  const std::size_t pick = frac < aliasProb_[i] ? i : aliasIdx_[i];
  return spec_.hierarchy.leaves()[pick];
}

void GeneratorSource::fillUnit() {
  buffer_.clear();
  bufferPos_ = 0;
  const Timestamp start = unitStart(nextUnit_, spec_.unit);
  const Timestamp mid = start + spec_.unit / 2;
  const double mean =
      spec_.baseRatePerUnit * spec_.rate.multiplier(mid);
  const std::uint64_t count = rng_.poisson(mean);
  buffer_.reserve(count + 8);
  for (std::uint64_t i = 0; i < count; ++i) {
    const Timestamp t =
        start + static_cast<Timestamp>(rng_.below(
                    static_cast<std::uint64_t>(spec_.unit)));
    buffer_.push_back({sampleLeaf(), t});
  }
  if (injector_) {
    for (NodeId leaf : injector_->drawExtras(nextUnit_, rng_)) {
      const Timestamp t =
          start + static_cast<Timestamp>(rng_.below(
                      static_cast<std::uint64_t>(spec_.unit)));
      buffer_.push_back({leaf, t});
    }
  }
  std::sort(buffer_.begin(), buffer_.end(),
            [](const Record& a, const Record& b) { return a.time < b.time; });
  ++nextUnit_;
}

std::optional<Record> GeneratorSource::next() {
  while (bufferPos_ >= buffer_.size()) {
    if (nextUnit_ >= lastUnit_) return std::nullopt;
    fillUnit();
  }
  ++produced_;
  return buffer_[bufferPos_++];
}

std::size_t GeneratorSource::nextBatch(std::vector<Record>& out,
                                       std::size_t max) {
  out.clear();
  while (out.size() < max) {
    if (bufferPos_ >= buffer_.size()) {
      if (nextUnit_ >= lastUnit_) break;
      fillUnit();
      continue;
    }
    const std::size_t take =
        std::min(max - out.size(), buffer_.size() - bufferPos_);
    out.insert(out.end(), buffer_.begin() + bufferPos_,
               buffer_.begin() + bufferPos_ + take);
    bufferPos_ += take;
    produced_ += take;
  }
  return out.size();
}

}  // namespace tiresias::workload
