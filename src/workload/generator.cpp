#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"

namespace tiresias::workload {

std::vector<double> WorkloadSpec::leafProbabilities() const {
  std::vector<double> prob(hierarchy.size(), 0.0);
  prob[hierarchy.root()] = 1.0;
  // Top-down (ascending ids): parents precede children.
  for (NodeId n = 0; n < hierarchy.size(); ++n) {
    const auto kids = hierarchy.children(n);
    for (std::size_t i = 0; i < kids.size(); ++i) {
      prob[kids[i]] = prob[n] * childShares[n][i];
    }
  }
  std::vector<double> out;
  out.reserve(hierarchy.leafCount());
  for (NodeId leaf : hierarchy.leaves()) out.push_back(prob[leaf]);
  return out;
}

double WorkloadSpec::nodeProbability(NodeId node) const {
  double p = 1.0;
  NodeId cur = node;
  while (cur != hierarchy.root()) {
    const NodeId parent = hierarchy.parent(cur);
    const auto kids = hierarchy.children(parent);
    for (std::size_t i = 0; i < kids.size(); ++i) {
      if (kids[i] == cur) {
        p *= childShares[parent][i];
        break;
      }
    }
    cur = parent;
  }
  return p;
}

std::vector<std::vector<double>> WorkloadSpec::zipfShares(
    const Hierarchy& hierarchy, const std::vector<double>& exponents) {
  TIRESIAS_EXPECT(!exponents.empty(), "need at least one exponent");
  std::vector<std::vector<double>> shares(hierarchy.size());
  for (NodeId n = 0; n < hierarchy.size(); ++n) {
    const auto kids = hierarchy.children(n);
    if (kids.empty()) continue;
    const std::size_t depthIdx = std::min<std::size_t>(
        static_cast<std::size_t>(hierarchy.depth(n)) - 1,
        exponents.size() - 1);
    const double s = exponents[depthIdx];
    std::vector<double> w(kids.size());
    double total = 0.0;
    for (std::size_t i = 0; i < kids.size(); ++i) {
      w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
      total += w[i];
    }
    for (auto& v : w) v /= total;
    shares[n] = std::move(w);
  }
  return shares;
}

GeneratorSource::GeneratorSource(
    const WorkloadSpec& spec, TimeUnit firstUnit, TimeUnit lastUnit,
    std::uint64_t seed, std::shared_ptr<const AnomalyInjector> injector)
    : spec_(spec),
      nextUnit_(firstUnit),
      lastUnit_(lastUnit),
      rng_(seed),
      injector_(std::move(injector)) {
  TIRESIAS_EXPECT(firstUnit <= lastUnit, "unit range reversed");
  TIRESIAS_EXPECT(spec.childShares.size() == spec.hierarchy.size(),
                  "child shares must cover every node");
  cdf_.resize(spec.hierarchy.size());
  for (NodeId n = 0; n < spec.hierarchy.size(); ++n) {
    const auto& shares = spec.childShares[n];
    if (shares.empty()) continue;
    cdf_[n].resize(shares.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < shares.size(); ++i) {
      acc += shares[i];
      cdf_[n][i] = acc;
    }
    cdf_[n].back() = 1.0;  // guard against rounding drift
  }
}

NodeId GeneratorSource::sampleLeaf() {
  NodeId cur = spec_.hierarchy.root();
  while (!spec_.hierarchy.isLeaf(cur)) {
    const auto& cdf = cdf_[cur];
    const double u = rng_.uniform();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const std::size_t idx = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cdf.begin(),
                                 static_cast<std::ptrdiff_t>(cdf.size()) - 1));
    cur = spec_.hierarchy.children(cur)[idx];
  }
  return cur;
}

void GeneratorSource::fillUnit() {
  buffer_.clear();
  bufferPos_ = 0;
  const Timestamp start = unitStart(nextUnit_, spec_.unit);
  const Timestamp mid = start + spec_.unit / 2;
  const double mean =
      spec_.baseRatePerUnit * spec_.rate.multiplier(mid);
  const std::uint64_t count = rng_.poisson(mean);
  buffer_.reserve(count + 8);
  for (std::uint64_t i = 0; i < count; ++i) {
    const Timestamp t =
        start + static_cast<Timestamp>(rng_.below(
                    static_cast<std::uint64_t>(spec_.unit)));
    buffer_.push_back({sampleLeaf(), t});
  }
  if (injector_) {
    for (NodeId leaf : injector_->drawExtras(nextUnit_, rng_)) {
      const Timestamp t =
          start + static_cast<Timestamp>(rng_.below(
                      static_cast<std::uint64_t>(spec_.unit)));
      buffer_.push_back({leaf, t});
    }
  }
  std::sort(buffer_.begin(), buffer_.end(),
            [](const Record& a, const Record& b) { return a.time < b.time; });
  ++nextUnit_;
}

std::optional<Record> GeneratorSource::next() {
  while (bufferPos_ >= buffer_.size()) {
    if (nextUnit_ >= lastUnit_) return std::nullopt;
    fillUnit();
  }
  ++produced_;
  return buffer_[bufferPos_++];
}

}  // namespace tiresias::workload
