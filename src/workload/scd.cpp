#include "workload/scd.h"

#include "hierarchy/builder.h"

namespace tiresias::workload {

std::vector<std::size_t> scdNetworkDegrees(Scale scale) {
  switch (scale) {
    case Scale::kTest:
      return {12, 4, 3};
    case Scale::kMedium:
      return {120, 12, 6};
    case Scale::kPaper:
      return {2000, 30, 6};
  }
  return {};
}

WorkloadSpec scdNetworkWorkload(Scale scale) {
  const auto degrees = scdNetworkDegrees(scale);
  WorkloadSpec spec;
  HierarchyBuilder b("National");
  std::vector<NodeId> frontier{0};
  const char* levelName[] = {"CO", "DSLAM", "STB"};
  for (std::size_t level = 0; level < degrees.size(); ++level) {
    std::vector<NodeId> next;
    for (NodeId p : frontier) {
      for (std::size_t i = 0; i < degrees[level]; ++i) {
        next.push_back(
            b.addChild(p, std::string(levelName[level]) + std::to_string(i)));
      }
    }
    frontier = std::move(next);
  }
  spec.hierarchy = b.build();
  // Flatter skew than CCD: crashes are spread broadly across boxes, giving
  // the lower per-node variance the paper reports for SCD.
  spec.childShares =
      WorkloadSpec::zipfShares(spec.hierarchy, {0.4, 0.3, 0.2});
  spec.rate = SeasonalRateModel::scdLike();
  spec.baseRatePerUnit = scale == Scale::kTest ? 100.0 : 250.0;
  spec.unit = 15 * kMinute;
  return spec;
}

}  // namespace tiresias::workload
