#include "workload/ccd.h"

#include "common/expect.h"
#include "hierarchy/builder.h"

namespace tiresias::workload {

const std::vector<TicketCategory>& ccdTicketMix() {
  static const std::vector<TicketCategory> kMix = {
      {"TV", 0.3959},          {"AllProducts", 0.2671},
      {"Internet", 0.1004},    {"Wireless", 0.0926},
      {"Phone", 0.0846},       {"Email", 0.0359},
      {"RemoteControl", 0.0235},
  };
  return kMix;
}

std::vector<std::size_t> ccdTroubleDegrees(Scale scale) {
  switch (scale) {
    case Scale::kTest:
      return {5, 3, 2, 2};
    case Scale::kMedium:
      return {9, 4, 3, 3};
    case Scale::kPaper:
      return {9, 6, 3, 5};
  }
  return {};
}

std::vector<std::size_t> ccdNetworkDegrees(Scale scale) {
  switch (scale) {
    case Scale::kTest:
      return {6, 3, 2, 3};
    case Scale::kMedium:
      return {20, 5, 4, 6};
    case Scale::kPaper:
      return {61, 5, 6, 24};
  }
  return {};
}

WorkloadSpec ccdTroubleWorkload(Scale scale) {
  const auto degrees = ccdTroubleDegrees(scale);
  WorkloadSpec spec;
  // Build the tree with named first-level categories.
  HierarchyBuilder b("TroubleMgmt");
  const auto& mix = ccdTicketMix();
  std::vector<NodeId> level1;
  for (std::size_t i = 0; i < degrees[0]; ++i) {
    const std::string name = i < mix.size()
                                 ? mix[i].name
                                 : "Residual" + std::to_string(i - mix.size());
    level1.push_back(b.addChild(0, name));
  }
  std::vector<NodeId> frontier = level1;
  for (std::size_t level = 1; level < degrees.size(); ++level) {
    std::vector<NodeId> next;
    for (NodeId p : frontier) {
      for (std::size_t i = 0; i < degrees[level]; ++i) {
        next.push_back(b.addChild(
            p, "L" + std::to_string(level + 2) + "_" + std::to_string(i)));
      }
    }
    frontier = std::move(next);
  }
  std::vector<NodeId> remap;
  spec.hierarchy = b.build(&remap);

  // Child shares: Table I mix at level 1 (residual categories share 0.2%
  // of the mass, taken pro rata), Zipf-ish below.
  spec.childShares =
      WorkloadSpec::zipfShares(spec.hierarchy, {1.0, 0.9, 0.7, 0.5});
  auto& rootShares = spec.childShares[spec.hierarchy.root()];
  TIRESIAS_EXPECT(rootShares.size() == degrees[0], "level-1 degree mismatch");
  const std::size_t named = std::min(mix.size(), rootShares.size());
  const std::size_t residuals = rootShares.size() - named;
  const double residualMass = residuals > 0 ? 0.002 : 0.0;
  double namedSum = 0.0;
  for (std::size_t i = 0; i < named; ++i) namedSum += mix[i].share;
  for (std::size_t i = 0; i < rootShares.size(); ++i) {
    if (i < named) {
      // Table I proportions, renormalized over the categories present.
      rootShares[i] = mix[i].share / namedSum * (1.0 - residualMass);
    } else {
      rootShares[i] = residualMass / static_cast<double>(residuals);
    }
  }

  spec.rate = SeasonalRateModel::ccdLike();
  spec.baseRatePerUnit = scale == Scale::kTest ? 120.0 : 400.0;
  spec.unit = 15 * kMinute;
  return spec;
}

WorkloadSpec ccdNetworkWorkload(Scale scale) {
  const auto degrees = ccdNetworkDegrees(scale);
  WorkloadSpec spec;
  HierarchyBuilder b("SHO");
  std::vector<NodeId> frontier{0};
  const char* levelName[] = {"VHO", "IO", "CO", "DSLAM"};
  for (std::size_t level = 0; level < degrees.size(); ++level) {
    std::vector<NodeId> next;
    for (NodeId p : frontier) {
      for (std::size_t i = 0; i < degrees[level]; ++i) {
        next.push_back(
            b.addChild(p, std::string(levelName[level]) + std::to_string(i)));
      }
    }
    frontier = std::move(next);
  }
  spec.hierarchy = b.build();
  // Regional skew: busy metros get more of the traffic.
  spec.childShares =
      WorkloadSpec::zipfShares(spec.hierarchy, {0.8, 0.6, 0.5, 0.3});
  spec.rate = SeasonalRateModel::ccdLike();
  spec.baseRatePerUnit = scale == Scale::kTest ? 120.0 : 400.0;
  spec.unit = 15 * kMinute;
  return spec;
}

}  // namespace tiresias::workload
