// Table IV memory accounting.
//
// The paper reports "normalized memory cost" = total memory cost /
// average number of nodes in the tree / per-node memory cost. We compute
// the same normalization from the live MemoryStats counters of a detector,
// using the window-averaged touched-tree size as the node base.
#pragma once

#include <cstddef>

#include "core/types.h"

namespace tiresias::eval {

struct MemoryReport {
  std::size_t bytes = 0;          // estimated resident bytes
  double avgTreeNodes = 0.0;      // average touched nodes per unit tree
  double perNodeBytes = 0.0;      // cost model of one tree node
  double normalized = 0.0;        // bytes / avgTreeNodes / perNodeBytes
};

/// Normalize a detector's MemoryStats the way Table IV does.
/// `avgTreeNodes` is the average number of nodes in one timeunit's sparse
/// tree (callers measure it from the workload); `perNodeBytes` is the cost
/// of a single tree node (id + weight by default).
MemoryReport normalizeMemory(const MemoryStats& stats, double avgTreeNodes,
                             double perNodeBytes = 12.0);

}  // namespace tiresias::eval
