// Table VI comparison semantics (§VII-B).
//
// The paper compares Tiresias against a reference anomaly set that only
// covers the first network level, so instead of plain TP/FP/TN/FN it
// defines, for anomalies a with location L(a) and timeunit T(a):
//   TA  (true alarm)    reference anomaly matched by a Tiresias anomaly at
//                       the same unit and at L_ref ⊒ L_tiresias (equal or
//                       descendant location — finer granularity counts)
//   MA  (missed)        reference anomaly with no such match
//   NA  (new)           Tiresias anomaly unrelated to any reference anomaly
//   TN  (true negative) heavy hitter not reported by Tiresias and unrelated
//                       to any reference anomaly
// and scores Type1 = (TA+TN)/cases, Type2 = TA/(TA+MA), Type3 = TN/(TN+NA).
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.h"
#include "hierarchy/hierarchy.h"

namespace tiresias::eval {

/// A located anomaly: (node, unit) pair.
struct LocatedEvent {
  NodeId node = kInvalidNode;
  TimeUnit unit = 0;
};

struct ComparisonCounts {
  std::size_t trueAlarms = 0;     // TA
  std::size_t missedAnomalies = 0;  // MA
  std::size_t newAnomalies = 0;   // NA
  std::size_t trueNegatives = 0;  // TN

  std::size_t cases() const {
    return trueAlarms + missedAnomalies + newAnomalies + trueNegatives;
  }
  /// Type 1 (the paper labels it "Accuracy") = (TA + TN) / cases.
  double type1() const;
  /// Type 2 = TA / (TA + MA).
  double type2() const;
  /// Type 3 = TN / (TN + NA).
  double type3() const;
};

/// Compare Tiresias' detections against a reference set.
///
/// `tiresias`      anomalies reported by Tiresias (any level)
/// `reference`     reference anomalies (in the paper: VHO level only)
/// `negatives`     (node, unit) pairs that were heavy hitters but NOT
///                 reported by Tiresias (candidates for TN/NA accounting)
ComparisonCounts compareToReference(const Hierarchy& hierarchy,
                                    const std::vector<LocatedEvent>& tiresias,
                                    const std::vector<LocatedEvent>& reference,
                                    const std::vector<LocatedEvent>& negatives);

/// Remove events that are ancestors of other events in the same unit
/// (the paper's "simple data aggregation of the NAs to remove any
/// redundant anomalies which are an ancestor of other anomalies").
std::vector<LocatedEvent> dropAncestorDuplicates(
    const Hierarchy& hierarchy, std::vector<LocatedEvent> events);

/// The subset of `tiresias` events unrelated to any reference event
/// (the NA set, before deduplication).
std::vector<LocatedEvent> newAnomalySet(
    const Hierarchy& hierarchy, const std::vector<LocatedEvent>& tiresias,
    const std::vector<LocatedEvent>& reference);

/// Count events per hierarchy depth (index = depth, 1-based) — the paper's
/// NA level distribution (5% VHO, 56.3% IO, 29.3% CO, 9.4% DSLAM).
std::vector<std::size_t> countByDepth(const Hierarchy& hierarchy,
                                      const std::vector<LocatedEvent>& events);

}  // namespace tiresias::eval
