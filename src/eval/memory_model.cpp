#include "eval/memory_model.h"

#include "common/expect.h"

namespace tiresias::eval {

MemoryReport normalizeMemory(const MemoryStats& stats, double avgTreeNodes,
                             double perNodeBytes) {
  TIRESIAS_EXPECT(avgTreeNodes > 0.0, "need a positive tree size");
  TIRESIAS_EXPECT(perNodeBytes > 0.0, "need a positive per-node cost");
  MemoryReport report;
  report.bytes = stats.bytesEstimate;
  report.avgTreeNodes = avgTreeNodes;
  report.perNodeBytes = perNodeBytes;
  report.normalized =
      static_cast<double>(stats.bytesEstimate) / avgTreeNodes / perNodeBytes;
  return report;
}

}  // namespace tiresias::eval
