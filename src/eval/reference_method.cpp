#include "eval/reference_method.h"

#include <cmath>

#include "common/expect.h"

namespace tiresias::eval {

ControlChartReference::ControlChartReference(const Hierarchy& hierarchy,
                                             ControlChartConfig config)
    : hierarchy_(hierarchy), config_(config) {
  TIRESIAS_EXPECT(config_.depth >= 1 && config_.depth <= hierarchy.height(),
                  "monitored depth out of range");
  for (NodeId n : hierarchy_.nodesAtDepth(config_.depth)) {
    monitored_.push_back(n);
    history_[n] = {};
  }
}

std::vector<LocatedEvent> ControlChartReference::step(
    const TimeUnitBatch& batch) {
  // Raw aggregates at the monitored depth: ancestors of each record.
  std::unordered_map<NodeId, double> agg;
  for (const auto& r : batch.records) {
    NodeId cur = r.category;
    while (cur != kInvalidNode && hierarchy_.depth(cur) > config_.depth) {
      cur = hierarchy_.parent(cur);
    }
    if (cur != kInvalidNode && hierarchy_.depth(cur) == config_.depth) {
      agg[cur] += 1.0;
    }
  }

  std::vector<LocatedEvent> unitAlarms;
  for (NodeId n : monitored_) {
    const double value = agg.count(n) ? agg.at(n) : 0.0;
    auto& hist = history_.at(n);
    if (hist.size() >= config_.minHistory) {
      double mean = 0.0;
      for (double v : hist) mean += v;
      mean /= static_cast<double>(hist.size());
      double var = 0.0;
      for (double v : hist) var += (v - mean) * (v - mean);
      var /= static_cast<double>(hist.size() > 1 ? hist.size() - 1 : 1);
      const double limit = mean + config_.sigmas * std::sqrt(var);
      if (value > limit && value - mean > config_.minExcess) {
        unitAlarms.push_back({n, batch.unit});
      }
    }
    hist.push_back(value);
    if (hist.size() > config_.history) hist.pop_front();
  }
  alarms_.insert(alarms_.end(), unitAlarms.begin(), unitAlarms.end());
  return unitAlarms;
}

}  // namespace tiresias::eval
