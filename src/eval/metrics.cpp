#include "eval/metrics.h"

namespace tiresias::eval {

double ConfusionCounts::accuracy() const {
  const auto n = total();
  return n == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(n);
}

double ConfusionCounts::precision() const {
  const auto denom = tp + fp;
  return denom == 0 ? 0.0
                    : static_cast<double>(tp) / static_cast<double>(denom);
}

double ConfusionCounts::recall() const {
  const auto denom = tp + fn;
  return denom == 0 ? 0.0
                    : static_cast<double>(tp) / static_cast<double>(denom);
}

double ConfusionCounts::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

ConfusionCounts& ConfusionCounts::operator+=(const ConfusionCounts& other) {
  tp += other.tp;
  fp += other.fp;
  tn += other.tn;
  fn += other.fn;
  return *this;
}

}  // namespace tiresias::eval
