// Detection-quality metrics.
//
// ConfusionCounts/ConfusionMetrics cover the Table V accuracy/precision/
// recall comparison of ADA against STA (STA is ground truth there). The
// Table VI metrics live in eval/comparison.h because they need the paper's
// ancestor-aware matching.
#pragma once

#include <cstddef>

namespace tiresias::eval {

struct ConfusionCounts {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t tn = 0;
  std::size_t fn = 0;

  std::size_t total() const { return tp + fp + tn + fn; }
  double accuracy() const;
  double precision() const;
  double recall() const;
  double f1() const;

  ConfusionCounts& operator+=(const ConfusionCounts& other);
};

}  // namespace tiresias::eval
