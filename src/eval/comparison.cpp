#include "eval/comparison.h"

#include <algorithm>

namespace tiresias::eval {
namespace {

/// True if some reference event shares `unit` and lies on the root path of
/// (or below) the given node per the matching direction used for that set.
bool matchesReference(const Hierarchy& hierarchy, const LocatedEvent& event,
                      const std::vector<LocatedEvent>& reference) {
  for (const auto& ref : reference) {
    if (ref.unit != event.unit) continue;
    // T(a_ref) == T(a) and L(a_ref) ⊒ L(a): the reference is at the same
    // or a coarser location.
    if (hierarchy.isAncestorOrEqual(ref.node, event.node)) return true;
  }
  return false;
}

}  // namespace

double ComparisonCounts::type1() const {
  const auto n = cases();
  return n == 0 ? 0.0
                : static_cast<double>(trueAlarms + trueNegatives) /
                      static_cast<double>(n);
}

double ComparisonCounts::type2() const {
  const auto denom = trueAlarms + missedAnomalies;
  return denom == 0 ? 0.0
                    : static_cast<double>(trueAlarms) /
                          static_cast<double>(denom);
}

double ComparisonCounts::type3() const {
  const auto denom = trueNegatives + newAnomalies;
  return denom == 0 ? 0.0
                    : static_cast<double>(trueNegatives) /
                          static_cast<double>(denom);
}

ComparisonCounts compareToReference(
    const Hierarchy& hierarchy, const std::vector<LocatedEvent>& tiresias,
    const std::vector<LocatedEvent>& reference,
    const std::vector<LocatedEvent>& negatives) {
  ComparisonCounts counts;

  // TA/MA: each reference anomaly is matched if Tiresias reported the same
  // unit at an equal-or-finer location.
  for (const auto& ref : reference) {
    bool matched = false;
    for (const auto& t : tiresias) {
      if (t.unit == ref.unit && hierarchy.isAncestorOrEqual(ref.node, t.node)) {
        matched = true;
        break;
      }
    }
    if (matched) {
      ++counts.trueAlarms;
    } else {
      ++counts.missedAnomalies;
    }
  }

  // NA: Tiresias anomalies with no related reference anomaly.
  for (const auto& t : tiresias) {
    if (!matchesReference(hierarchy, t, reference)) ++counts.newAnomalies;
  }

  // TN: unreported heavy hitters with no related reference anomaly.
  for (const auto& n : negatives) {
    if (!matchesReference(hierarchy, n, reference)) ++counts.trueNegatives;
  }
  return counts;
}

std::vector<LocatedEvent> newAnomalySet(
    const Hierarchy& hierarchy, const std::vector<LocatedEvent>& tiresias,
    const std::vector<LocatedEvent>& reference) {
  std::vector<LocatedEvent> out;
  for (const auto& t : tiresias) {
    if (!matchesReference(hierarchy, t, reference)) out.push_back(t);
  }
  return out;
}

std::vector<LocatedEvent> dropAncestorDuplicates(
    const Hierarchy& hierarchy, std::vector<LocatedEvent> events) {
  std::vector<LocatedEvent> out;
  for (const auto& e : events) {
    bool redundant = false;
    for (const auto& other : events) {
      if (other.unit != e.unit) continue;
      if (other.node == e.node) continue;
      // e is redundant if it is a strict ancestor of another reported
      // event in the same unit.
      if (hierarchy.isAncestorOrEqual(e.node, other.node)) {
        redundant = true;
        break;
      }
    }
    if (!redundant) out.push_back(e);
  }
  return out;
}

std::vector<std::size_t> countByDepth(
    const Hierarchy& hierarchy, const std::vector<LocatedEvent>& events) {
  std::vector<std::size_t> counts(
      static_cast<std::size_t>(hierarchy.height()) + 1, 0);
  for (const auto& e : events) {
    counts[static_cast<std::size_t>(hierarchy.depth(e.node))] += 1;
  }
  return counts;
}

}  // namespace tiresias::eval
