// The operational team's current practice (§VII-B): control charts on the
// time series of first-network-level (VHO) aggregates.
//
// We implement a Shewhart-style individuals chart: for each monitored node
// the raw aggregate A_n[t] is compared against mean + k·stddev computed
// over a trailing history window; exceedances are flagged. The method is
// deliberately limited to one hierarchy level — that limitation is the
// premise of Table VI (Tiresias finds the below-VHO anomalies the
// reference method structurally cannot).
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "core/shhh.h"
#include "eval/comparison.h"
#include "stream/window.h"

namespace tiresias::eval {

struct ControlChartConfig {
  /// Hierarchy depth to monitor (2 == the paper's VHO level).
  int depth = 2;
  /// Sigma multiplier for the upper control limit.
  double sigmas = 3.0;
  /// Trailing window length (units) for mean/stddev.
  std::size_t history = 672;
  /// Minimum history before alarms fire.
  std::size_t minHistory = 96;
  /// Also require an absolute excess (guards against near-zero stddev).
  double minExcess = 4.0;
};

class ControlChartReference {
 public:
  ControlChartReference(const Hierarchy& hierarchy,
                        ControlChartConfig config);

  /// Feed one timeunit; returns the (node, unit) alarms for that unit.
  std::vector<LocatedEvent> step(const TimeUnitBatch& batch);

  const std::vector<LocatedEvent>& allAlarms() const { return alarms_; }

 private:
  const Hierarchy& hierarchy_;
  ControlChartConfig config_;
  std::vector<NodeId> monitored_;
  /// Trailing raw-aggregate history per monitored node.
  std::unordered_map<NodeId, std::deque<double>> history_;
  std::vector<LocatedEvent> alarms_;
};

}  // namespace tiresias::eval
