// tiresias_cli — command-line front end for trace generation, detection
// and seasonality analysis over the built-in dataset presets.
//
// Subcommands:
//   generate   synthesize a CSV trace (optionally with injected spikes)
//   detect     run the pipeline over a CSV trace, export anomalies
//   analyze    FFT/wavelet seasonality report for a trace's root counts
//   hierarchy  print a dataset's hierarchy summary
//   serve      multiplex generated streams through the concurrent
//              multi-stream DetectionEngine (src/engine/)
//
// The implementation lives behind runCli so tests can drive it without
// spawning processes; main() is a one-liner.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tiresias::tools {

/// Parsed "--key value" / positional arguments.
struct CliArgs {
  std::string command;
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> options;

  /// Value of --name, or `fallback`. If --name was given more than once
  /// the LAST occurrence wins — callers going through runCli never see
  /// that case, because every command rejects duplicated single-use
  /// options (and unknown options) with a usage error up front; it only
  /// matters for repeatable options (--spike, read via `options` directly)
  /// and for code driving parseArgs() itself.
  std::string get(const std::string& name, const std::string& fallback) const;
  bool has(const std::string& name) const;
};

/// Parse argv (past the program name). Options are "--name value"; a
/// leading bare word is the subcommand.
CliArgs parseArgs(const std::vector<std::string>& argv);

/// Run a CLI invocation; output goes to `out`, errors to `err`.
/// Returns the process exit code.
int runCli(const std::vector<std::string>& argv, std::ostream& out,
           std::ostream& err);

}  // namespace tiresias::tools
