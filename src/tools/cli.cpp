#include "tools/cli.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>
#include <ostream>
#include <random>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "hierarchy/builder.h"

#include "analysis/seasonality.h"
#include "common/faultinject.h"
#include "common/table.h"
#include "core/pipeline.h"
#include "engine/engine.h"
#include "net/tcp.h"
#include "persist/snapshot.h"
#include "report/concurrent_store.h"
#include "report/store.h"
#include "serve/serving.h"
#include "stream/binary_source.h"
#include "stream/socket_source.h"
#include "stream/stream_router.h"
#include "timeseries/ewma.h"
#include "workload/ccd.h"
#include "workload/scd.h"

namespace tiresias::tools {
namespace {

using workload::AnomalyInjector;
using workload::GroundTruthLedger;
using workload::Scale;
using workload::SpikeSpec;
using workload::WorkloadSpec;

constexpr const char* kUsage =
    "usage: tiresias_cli <command> [options]\n"
    "\n"
    "commands:\n"
    "  generate   --dataset ccd-net|ccd-trouble|scd [--scale test|medium|paper]\n"
    "             [--days N] [--seed S] [--spike path:unit:dur:magnitude]...\n"
    "             --out trace.csv\n"
    "  convert    --in trace.csv --out trace.tsrb\n"
    "             re-encode a CSV trace in the binary record format: the\n"
    "             category paths are deduplicated into a path table and\n"
    "             each record becomes a fixed-width (file-id, timestamp)\n"
    "             pair, so ingest is parse-free. Junk rows are dropped\n"
    "             (and counted) with exactly CsvSource's semantics.\n"
    "  detect     --dataset ... --trace trace.csv [--theta T] [--window W]\n"
    "             [--rt R] [--dt D] [--algo ada|sta] [--out anomalies.csv]\n"
    "  analyze    --dataset ... --trace trace.csv [--unit-minutes M]\n"
    "  hierarchy  --dataset ... [--scale ...]\n"
    "  serve      --streams K --units M [--workers W] [--ingest-threads I]\n"
    "             [--queue C] [--total-queue Q] [--budget B] [--scale ...]\n"
    "             [--seed S] [--theta T] [--window W]\n"
    "             [--checkpoint-dir DIR [--checkpoint-every N] [--restore]]\n"
    "             [--metrics-out FILE [--metrics-every MS]]\n"
    "             [--max-resident R [--hibernate-dir DIR]]\n"
    "             [--anomaly-port P] [--stats-port P] [--loopback]\n"
    "             multiplex K generated CCD/SCD streams through the\n"
    "             task-scheduled detection engine (W shared workers over\n"
    "             per-stream queues; W defaults to the hardware threads)\n"
    "             and print per-stream + scheduler stats.\n"
    "             --max-resident R caps the streams holding live state in\n"
    "             memory: colder streams hibernate to snapshots (in-memory\n"
    "             blobs, or files under --hibernate-dir) and wake\n"
    "             bit-identically on their next unit.\n"
    "             --checkpoint-dir DIR snapshots engine + anomaly-store\n"
    "             state to DIR/checkpoint.tsnap (atomically, every N\n"
    "             processed units plus once at the end); --restore resumes\n"
    "             from that file, skipping the already-processed prefix.\n"
    "             --metrics-out FILE appends one JSON-lines metrics\n"
    "             snapshot (schema tiresias_metrics/v1: per-stage latency\n"
    "             percentiles + sampled gauges) every --metrics-every MS\n"
    "             (default 1000) plus a final one after drain.\n"
    "             --shards N is deprecated: it now maps to --workers N\n"
    "  serve      --listen PORT [--ingest-format auto|csv|binary]\n"
    "             [--net-streams K] [--stream-names A,B,...]\n"
    "             [--read-timeout-ms MS] [--error-budget N]\n"
    "             [--junk-budget N] [--shed-watermark U] [--fault-plan P]\n"
    "             [--dataset ...|--hierarchy FILE] [--scale ...]\n"
    "             [--checkpoint-dir DIR [--checkpoint-every N] [--restore]]\n"
    "             [--anomaly-port P] [--stats-port P] [--loopback]\n"
    "             [engine options]\n"
    "             network mode: ingest live records over TCP instead of\n"
    "             generating them. K anonymous connections are accepted on\n"
    "             PORT (one engine stream each); every connection speaks\n"
    "             either newline-separated CSV rows (\"path,timestamp\" —\n"
    "             `nc` a trace file at it) or the framed binary stream\n"
    "             protocol (`tiresias_cli send`), auto-detected per\n"
    "             connection by the full 8-byte magic+version prefix\n"
    "             unless --ingest-format pins it. Records resolve against\n"
    "             the --dataset/--hierarchy tree (default ccd-net --scale\n"
    "             test). PORT 0 binds an ephemeral port; the actual ports\n"
    "             are printed on one 'serving:' line for scripting. The\n"
    "             run ends when every stream ends (end-of-stream marker,\n"
    "             EOF, or --read-timeout-ms of silence).\n"
    "             --stream-names declares named resumable streams (served\n"
    "             beside the K anonymous ones; --net-streams defaults to 0\n"
    "             when names are given): a `send --stream-name A` client\n"
    "             that disconnects mid-stream may reconnect and is told\n"
    "             the committed position to resume from, surviving up to\n"
    "             --error-budget (default 16) dropped connections per\n"
    "             stream. With --checkpoint-dir/--restore the resume point\n"
    "             also survives a server crash: totals end bit-identical\n"
    "             to an uninterrupted run. --junk-budget N drops a\n"
    "             connection after N skipped records (0 = unlimited);\n"
    "             --shed-watermark U refuses new connections while the\n"
    "             engine's queue lag is at least U units.\n"
    "             --fault-plan arms deterministic fault injection on the\n"
    "             serving surface (chaos testing): seed=N,short-read=P,\n"
    "             short-write=P,eintr=P,disconnect=P,accept-fail=P,\n"
    "             stall=P[:MS] with probabilities in [0,1].\n"
    "             --anomaly-port streams every detected anomaly to all\n"
    "             connected subscribers as JSON lines; --stats-port\n"
    "             answers each connection with one tiresias_metrics/v1\n"
    "             JSON document (poll with `nc`). Both also work in\n"
    "             generated mode. All serving ports are unauthenticated\n"
    "             and bind all interfaces by default; --loopback restricts\n"
    "             every listener (ingest, anomaly, stats) to 127.0.0.1.\n"
    "  send       --to HOST:PORT --trace FILE [--format binary|csv]\n"
    "             [--dataset ...|--hierarchy FILE] [--scale ...]\n"
    "             [--frame N] [--timeout-ms MS] [--stream-name NAME]\n"
    "             [--retries N] [--backoff-ms MS]\n"
    "             stream a trace file into a listening serve instance.\n"
    "             binary (default): records are resolved against the\n"
    "             --dataset/--hierarchy tree (must match the server's) and\n"
    "             sent as the framed stream protocol with an end-of-stream\n"
    "             marker, --frame records per frame. csv: the file's bytes\n"
    "             are streamed verbatim.\n"
    "             --stream-name NAME (binary only) identifies the stream\n"
    "             by name instead of by connection: on every (re)connect\n"
    "             the server replies with the position it has committed\n"
    "             and the already-processed prefix is skipped. --retries N\n"
    "             reconnects up to N times on a lost connection, with\n"
    "             jittered exponential backoff from --backoff-ms (default\n"
    "             200).\n"
    "\n"
    "detect/analyze/hierarchy also accept --hierarchy <paths-file> (one\n"
    "leaf path per line) instead of --dataset, for custom domains.\n"
    "detect/analyze sniff the --trace format by magic, so CSV traces and\n"
    "converted binary traces are interchangeable.\n"
    "Unknown options and duplicated single-use options are errors; only\n"
    "--spike may be repeated.\n";

/// Per-command option whitelist. runCli rejects unknown options (typo
/// protection: `--shard 4` must fail loudly, not be silently ignored),
/// stray positionals, and duplicates of any option not listed as
/// repeatable.
bool checkOptions(const CliArgs& args, std::ostream& err,
                  std::initializer_list<const char*> allowed,
                  std::initializer_list<const char*> repeatable = {}) {
  const auto in = [](const auto& list, const std::string& name) {
    for (const char* a : list) {
      if (name == a) return true;
    }
    return false;
  };
  for (const auto& [key, value] : args.options) {
    (void)value;
    if (!in(allowed, key) && !in(repeatable, key)) {
      err << args.command << ": unknown option '--" << key << "'\n" << kUsage;
      return false;
    }
  }
  for (const char* name : allowed) {
    std::size_t count = 0;
    for (const auto& [key, value] : args.options) {
      (void)value;
      if (key == name) ++count;
    }
    if (count > 1) {
      err << args.command << ": option '--" << name << "' given " << count
          << " times";
      if (repeatable.size() > 0) {
        err << " (only";
        for (const char* r : repeatable) err << " --" << r;
        err << " may be repeated)";
      }
      err << "\n";
      return false;
    }
  }
  if (!args.positional.empty()) {
    err << args.command << ": unexpected argument '" << args.positional[0]
        << "'\n"
        << kUsage;
    return false;
  }
  return true;
}

/// Numeric value of --name (or `fallback` when absent). Non-numeric,
/// trailing-garbage, missing or out-of-range values are usage errors —
/// value typos must fail as loudly as option-name typos, not escape as
/// an uncaught std::sto* exception.
template <typename T>
bool parsedOption(const CliArgs& args, const std::string& cmd,
                  const char* name, T fallback, std::ostream& err, T& out,
                  T (*parse)(const std::string&, std::size_t*)) {
  if (!args.has(name)) {
    out = fallback;
    return true;
  }
  const std::string text = args.get(name, "");
  try {
    std::size_t pos = 0;
    out = parse(text, &pos);
    if (!text.empty() && pos == text.size()) return true;
  } catch (const std::exception&) {
  }
  err << cmd << ": bad numeric value '" << text << "' for --" << name << "\n";
  return false;
}

bool numOption(const CliArgs& args, const std::string& cmd, const char* name,
               long long fallback, std::ostream& err, long long& out) {
  return parsedOption<long long>(
      args, cmd, name, fallback, err, out,
      [](const std::string& s, std::size_t* pos) { return std::stoll(s, pos); });
}

bool realOption(const CliArgs& args, const std::string& cmd, const char* name,
                double fallback, std::ostream& err, double& out) {
  return parsedOption<double>(
      args, cmd, name, fallback, err, out,
      [](const std::string& s, std::size_t* pos) { return std::stod(s, pos); });
}

bool parseDataset(const CliArgs& args, std::ostream& err, WorkloadSpec& spec) {
  // A custom domain can be supplied as a file of leaf paths; detection and
  // analysis then run against that hierarchy (generation still needs a
  // preset's rate model, so --hierarchy is accepted for detect/analyze).
  if (args.has("hierarchy")) {
    std::ifstream probe(args.get("hierarchy", ""));
    if (!probe) {
      err << "cannot open --hierarchy file '" << args.get("hierarchy", "")
          << "'\n";
      return false;
    }
    spec.hierarchy = HierarchyBuilder::fromPathsFile(
        args.get("hierarchy", ""), args.get("root-name", "root"));
    spec.unit = 15 * kMinute;
    return true;
  }
  const std::string dataset = args.get("dataset", "ccd-net");
  const std::string scaleName = args.get("scale", "test");
  Scale scale;
  if (scaleName == "test") {
    scale = Scale::kTest;
  } else if (scaleName == "medium") {
    scale = Scale::kMedium;
  } else if (scaleName == "paper") {
    scale = Scale::kPaper;
  } else {
    err << "unknown --scale '" << scaleName << "'\n";
    return false;
  }
  if (dataset == "ccd-net") {
    spec = workload::ccdNetworkWorkload(scale);
  } else if (dataset == "ccd-trouble") {
    spec = workload::ccdTroubleWorkload(scale);
  } else if (dataset == "scd") {
    spec = workload::scdNetworkWorkload(scale);
  } else {
    err << "unknown --dataset '" << dataset << "'\n";
    return false;
  }
  return true;
}

/// "path:unit:duration:magnitude" -> SpikeSpec.
bool parseSpike(const std::string& text, const Hierarchy& h, std::ostream& err,
                SpikeSpec& spike) {
  std::vector<std::string> parts;
  std::string cur;
  // The category path itself contains '/'; fields are ':'-separated and
  // the path is the first field.
  std::stringstream ss(text);
  while (std::getline(ss, cur, ':')) parts.push_back(cur);
  if (parts.size() != 4) {
    err << "bad --spike '" << text << "' (want path:unit:dur:magnitude)\n";
    return false;
  }
  spike.node = h.find(parts[0]);
  if (spike.node == kInvalidNode) {
    err << "unknown spike path '" << parts[0] << "'\n";
    return false;
  }
  // Full-field, sign-aware parses. The old stoul here silently wrapped a
  // negative duration ("0:-1:5" became a ~2^64-unit spike), and bare
  // sto* calls accept trailing garbage — every such typo must land in
  // the same usage error instead.
  bool ok = true;
  long long durationIn = 0;
  try {
    std::size_t pos = 0;
    spike.startUnit = std::stoll(parts[1], &pos);
    ok = !parts[1].empty() && pos == parts[1].size();
    if (ok) {
      durationIn = std::stoll(parts[2], &pos);
      ok = !parts[2].empty() && pos == parts[2].size() && durationIn >= 0;
    }
    if (ok) {
      spike.extraPerUnit = std::stod(parts[3], &pos);
      ok = !parts[3].empty() && pos == parts[3].size();
    }
  } catch (const std::exception&) {
    ok = false;
  }
  if (!ok) {
    err << "bad --spike '" << text << "' (want path:unit:dur:magnitude)\n";
    return false;
  }
  spike.durationUnits = static_cast<std::size_t>(durationIn);
  return true;
}

int cmdGenerate(const CliArgs& args, std::ostream& out, std::ostream& err) {
  if (!checkOptions(args, err,
                    {"dataset", "scale", "hierarchy", "root-name", "days",
                     "seed", "out"},
                    {"spike"})) {
    return 2;
  }
  WorkloadSpec spec;
  if (!parseDataset(args, err, spec)) return 2;
  const std::string outPath = args.get("out", "");
  if (outPath.empty()) {
    err << "generate: --out is required\n";
    return 2;
  }
  long long days = 0, seedIn = 0;
  if (!numOption(args, "generate", "days", 7, err, days) ||
      !numOption(args, "generate", "seed", 1, err, seedIn)) {
    return 2;
  }
  if (days <= 0) {
    err << "generate: --days must be positive\n";
    return 2;
  }
  const auto seed = static_cast<std::uint64_t>(seedIn);
  const auto unitsPerDay = static_cast<TimeUnit>(kDay / spec.unit);

  GroundTruthLedger ledger;
  for (const auto& [key, value] : args.options) {
    if (key != "spike") continue;
    SpikeSpec spike;
    if (!parseSpike(value, spec.hierarchy, err, spike)) return 2;
    ledger.add(spike);
  }
  std::shared_ptr<AnomalyInjector> injector;
  if (!ledger.specs().empty()) {
    injector = std::make_shared<AnomalyInjector>(spec.hierarchy, ledger);
  }

  workload::GeneratorSource src(spec, 0, days * unitsPerDay, seed, injector);
  std::vector<Record> records;
  while (auto r = src.next()) records.push_back(*r);
  writeRecordsCsv(outPath, spec.hierarchy, records);
  out << "wrote " << records.size() << " records (" << days << " days, "
      << ledger.specs().size() << " injected spikes) to " << outPath << "\n";
  return 0;
}

int cmdConvert(const CliArgs& args, std::ostream& out, std::ostream& err) {
  if (!checkOptions(args, err, {"in", "out"})) return 2;
  const std::string inPath = args.get("in", "");
  const std::string outPath = args.get("out", "");
  if (inPath.empty() || outPath.empty()) {
    err << "convert: --in and --out are required\n";
    return 2;
  }
  try {
    const auto stats = convertCsvTraceToBinary(inPath, outPath);
    out << "wrote " << stats.records << " records (" << stats.paths
        << " distinct paths, " << stats.skippedRows
        << " junk rows dropped), " << stats.bytesWritten << " bytes to "
        << outPath << "\n";
    return 0;
  } catch (const persist::SnapshotError& e) {
    err << "convert: " << e.what() << "\n";
    return 1;
  }
}

int cmdDetect(const CliArgs& args, std::ostream& out, std::ostream& err) {
  if (!checkOptions(args, err,
                    {"dataset", "scale", "hierarchy", "root-name", "trace",
                     "theta", "window", "rt", "dt", "algo", "out"})) {
    return 2;
  }
  WorkloadSpec spec;
  if (!parseDataset(args, err, spec)) return 2;
  const std::string trace = args.get("trace", "");
  if (trace.empty()) {
    err << "detect: --trace is required\n";
    return 2;
  }
  double theta = 0, rt = 0, dt = 0;
  long long window = 0;
  if (!realOption(args, "detect", "theta", 8, err, theta) ||
      !realOption(args, "detect", "rt", 2.8, err, rt) ||
      !realOption(args, "detect", "dt", 8, err, dt) ||
      !numOption(args, "detect", "window", 288, err, window)) {
    return 2;
  }
  if (window <= 0) {
    err << "detect: --window must be positive\n";
    return 2;
  }
  PipelineConfig cfg;
  cfg.delta = spec.unit;
  cfg.detector.theta = theta;
  cfg.detector.windowLength = static_cast<std::size_t>(window);
  cfg.detector.ratioThreshold = rt;
  cfg.detector.diffThreshold = dt;
  cfg.useAda = args.get("algo", "ada") != "sta";
  cfg.candidatePeriods = {static_cast<std::size_t>(kDay / spec.unit),
                          static_cast<std::size_t>(kWeek / spec.unit)};

  TiresiasPipeline pipeline(borrowHierarchy(spec.hierarchy), cfg);
  report::AnomalyStore store(spec.hierarchy);
  RunSummary summary;
  try {
    // Constructing the source validates a binary trace's framing, so it
    // sits inside the catch along with the record decode.
    const auto source = openTraceSource(trace, spec.hierarchy);
    summary =
        pipeline.run(*source, [&](const InstanceResult& r) { store.add(r); });
  } catch (const persist::SnapshotError& e) {
    err << "detect: bad binary trace: " << e.what() << "\n";
    return 1;
  }

  out << "processed " << summary.unitsProcessed << " timeunits, "
      << summary.recordsProcessed << " records ("
      << summary.junkRowsSkipped << " junk rows skipped)\n";
  out << summary.instancesDetected << " detection instances, "
      << store.size() << " anomalies\n";
  if (summary.warmupUnitsBuffered > 0) {
    err << "warning: trace ended during warm-up ("
        << summary.warmupUnitsBuffered << " of "
        << cfg.detector.windowLength
        << " window units buffered); no detection was performed — use a "
           "longer trace or a smaller --window\n";
  }
  if (!summary.seasons.empty()) {
    out << "seasonality:";
    for (const auto& s : summary.seasons) {
      out << " period=" << s.period << " (w=" << fmtF(s.weight, 2) << ")";
    }
    out << "\n";
  }
  for (const auto& e : store.all()) {
    out << "anomaly unit=" << e.anomaly.unit << " " << e.path
        << " actual=" << fmtF(e.anomaly.actual, 0)
        << " forecast=" << fmtF(e.anomaly.forecast, 1) << "\n";
  }
  const std::string outPath = args.get("out", "");
  if (!outPath.empty()) {
    store.exportCsv(outPath);
    out << "anomaly report written to " << outPath << "\n";
  }
  return 0;
}

int cmdAnalyze(const CliArgs& args, std::ostream& out, std::ostream& err) {
  if (!checkOptions(args, err,
                    {"dataset", "scale", "hierarchy", "root-name", "trace",
                     "unit-minutes"})) {
    return 2;
  }
  WorkloadSpec spec;
  if (!parseDataset(args, err, spec)) return 2;
  const std::string trace = args.get("trace", "");
  if (trace.empty()) {
    err << "analyze: --trace is required\n";
    return 2;
  }
  long long unitMinutes = 0;
  if (!numOption(args, "analyze", "unit-minutes", 15, err, unitMinutes)) {
    return 2;
  }
  if (unitMinutes <= 0) {
    err << "analyze: --unit-minutes must be positive\n";
    return 2;
  }
  const Duration delta = unitMinutes * kMinute;

  std::vector<double> counts;
  try {
    // Constructing the source validates a binary trace's framing, so it
    // sits inside the catch along with the record decode.
    const auto source = openTraceSource(trace, spec.hierarchy);
    TimeUnitBatcher batcher(*source, delta, 0);
    while (auto b = batcher.next()) {
      counts.push_back(static_cast<double>(b->records.size()));
    }
  } catch (const persist::SnapshotError& e) {
    err << "analyze: bad binary trace: " << e.what() << "\n";
    return 1;
  }
  if (counts.size() < 64) {
    err << "analyze: trace too short (" << counts.size() << " units)\n";
    return 1;
  }
  SeasonalityOptions opts;
  opts.candidatePeriods = {static_cast<std::size_t>(kDay / delta),
                           static_cast<std::size_t>(kWeek / delta)};
  const auto result = analyzeSeasonality(counts, opts);
  out << counts.size() << " timeunits of " << unitMinutes << " minutes\n";
  for (std::size_t i = 0; i < result.seasons.size(); ++i) {
    out << "season " << i + 1 << ": period=" << result.seasons[i].period
        << " units (" << fmtF(static_cast<double>(result.seasons[i].period) *
                                  static_cast<double>(unitMinutes) / 60.0,
                              1)
        << " hours), weight=" << fmtF(result.seasons[i].weight, 2) << "\n";
  }
  if (result.seasons.empty()) out << "no significant seasonality found\n";
  return 0;
}

int cmdHierarchy(const CliArgs& args, std::ostream& out, std::ostream& err) {
  if (!checkOptions(args, err, {"dataset", "scale", "hierarchy", "root-name"})) {
    return 2;
  }
  WorkloadSpec spec;
  if (!parseDataset(args, err, spec)) return 2;
  const auto& h = spec.hierarchy;
  out << "nodes=" << h.size() << " leaves=" << h.leafCount()
      << " height=" << h.height() << "\n";
  for (int d = 1; d <= h.height(); ++d) {
    const auto range = h.nodesAtDepth(d);
    out << "depth " << d << ": " << range.size() << " nodes";
    if (!range.empty()) {
      out << " (e.g. " << h.path(range.first) << ")";
    }
    out << "\n";
  }
  return 0;
}

/// One JSON-lines metrics snapshot (schema tiresias_metrics/v1) — the
/// scrapeable stats surface behind `serve --metrics-out`, rendered by the
/// same serve::engineStatsJson the stats poll endpoint serves.
void writeMetricsLine(std::ostream& os, const engine::EngineStats& st) {
  os << serve::engineStatsJson(st) << "\n";
}

int cmdServe(const CliArgs& args, std::ostream& out, std::ostream& err) {
  if (!checkOptions(args, err,
                    {"streams", "units", "workers", "ingest-threads", "queue",
                     "total-queue", "budget", "scale", "seed", "theta",
                     "window", "shards", "checkpoint-dir", "checkpoint-every",
                     "restore", "metrics-out", "metrics-every",
                     "max-resident", "hibernate-dir", "listen",
                     "ingest-format", "net-streams", "stream-names",
                     "read-timeout-ms", "error-budget", "junk-budget",
                     "shed-watermark", "fault-plan",
                     "dataset", "hierarchy", "root-name", "anomaly-port",
                     "stats-port", "loopback"})) {
    return 2;
  }
  // Parse signed so "--streams -1" can't wrap around to a huge count.
  long long streamsIn = 0, units = 0, workersIn = 0, ingestIn = 0;
  long long queueIn = 0, totalQueueIn = 0, budgetIn = 0, seedIn = 0;
  long long window = 0, checkpointEvery = 0, metricsEvery = 0;
  long long maxResident = 0;
  long long listenPort = 0, netStreamsIn = 0, readTimeoutMs = 0;
  long long anomalyPort = 0, statsPort = 0;
  long long errorBudget = 0, junkBudget = 0, shedWatermark = 0;
  double theta = 0;
  if (!numOption(args, "serve", "streams", 4, err, streamsIn) ||
      !numOption(args, "serve", "units", 96, err, units) ||
      !numOption(args, "serve", "workers", 0, err, workersIn) ||  // 0 = hw
      !numOption(args, "serve", "ingest-threads", 1, err, ingestIn) ||
      !numOption(args, "serve", "queue", 16, err, queueIn) ||
      !numOption(args, "serve", "total-queue", 1024, err, totalQueueIn) ||
      !numOption(args, "serve", "budget", 8, err, budgetIn) ||
      !numOption(args, "serve", "seed", 1, err, seedIn) ||
      !numOption(args, "serve", "window", 32, err, window) ||
      !numOption(args, "serve", "checkpoint-every", 0, err, checkpointEvery) ||
      !numOption(args, "serve", "metrics-every", 1000, err, metricsEvery) ||
      !numOption(args, "serve", "max-resident", 0, err, maxResident) ||
      !numOption(args, "serve", "listen", -1, err, listenPort) ||
      !numOption(args, "serve", "net-streams", 1, err, netStreamsIn) ||
      !numOption(args, "serve", "read-timeout-ms", 30'000, err,
                 readTimeoutMs) ||
      !numOption(args, "serve", "anomaly-port", -1, err, anomalyPort) ||
      !numOption(args, "serve", "stats-port", -1, err, statsPort) ||
      !numOption(args, "serve", "error-budget", 16, err, errorBudget) ||
      !numOption(args, "serve", "junk-budget", 0, err, junkBudget) ||
      !numOption(args, "serve", "shed-watermark", 0, err, shedWatermark) ||
      !realOption(args, "serve", "theta", 8, err, theta)) {
    return 2;
  }
  // Network mode (--listen) replaces the generated preset streams with
  // socket-fed ones; the two modes' stream options are mutually
  // exclusive, everything engine-level applies to both.
  const bool listenMode = args.has("listen");
  // A --fault-plan armed by this run is disarmed on every exit path, so
  // in-process callers (tests) never leak chaos into the next command.
  struct FaultInjectGuard {
    bool armed = false;
    ~FaultInjectGuard() {
      if (armed) faultinject::disarm();
    }
  } faultGuard;
  // Named resumable streams (--stream-names a,b,c). Parsed before the
  // mode checks so the --net-streams default can depend on it: with names
  // given, anonymous slots default to none.
  std::vector<std::string> streamNames;
  if (args.has("stream-names")) {
    const std::string namesArg = args.get("stream-names", "");
    std::size_t pos = 0;
    while (pos <= namesArg.size()) {
      const std::size_t comma = namesArg.find(',', pos);
      const std::string name =
          namesArg.substr(pos, comma == std::string::npos ? std::string::npos
                                                          : comma - pos);
      if (name.empty() || name.size() > kSocketMaxStreamNameBytes) {
        err << "serve: --stream-names wants comma-separated names of 1.."
            << kSocketMaxStreamNameBytes << " bytes\n";
        return 2;
      }
      for (const std::string& prev : streamNames) {
        if (prev == name) {
          err << "serve: --stream-names lists '" << name << "' twice\n";
          return 2;
        }
      }
      streamNames.push_back(name);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  if (listenMode) {
    for (const char* conflicting : {"streams", "units", "seed"}) {
      if (args.has(conflicting)) {
        err << "serve: --" << conflicting
            << " cannot be combined with --listen\n";
        return 2;
      }
    }
    if (listenPort < 0 || listenPort > 65535) {
      err << "serve: --listen wants a port in [0, 65535] (0 = ephemeral)\n";
      return 2;
    }
    // Anonymous (positional) slots: default 1, or 0 once named streams
    // are declared — but explicit --net-streams always wins.
    if (!args.has("net-streams") && !streamNames.empty()) netStreamsIn = 0;
    if (netStreamsIn < 0 || (netStreamsIn == 0 && streamNames.empty())) {
      err << "serve: --net-streams must be positive (0 allowed only with "
             "--stream-names)\n";
      return 2;
    }
    if (readTimeoutMs <= 0) {
      err << "serve: --read-timeout-ms must be positive\n";
      return 2;
    }
    if (errorBudget < 0 || junkBudget < 0 || shedWatermark < 0) {
      err << "serve: --error-budget, --junk-budget and --shed-watermark "
             "must be >= 0\n";
      return 2;
    }
    if (args.has("fault-plan")) {
      std::string planError;
      if (!faultinject::arm(args.get("fault-plan", ""), &planError)) {
        err << "serve: bad --fault-plan: " << planError << "\n";
        return 2;
      }
      faultGuard.armed = true;
    }
  } else {
    for (const char* listenOnly :
         {"ingest-format", "net-streams", "stream-names", "read-timeout-ms",
          "error-budget", "junk-budget", "shed-watermark", "fault-plan",
          "dataset", "hierarchy", "root-name"}) {
      if (args.has(listenOnly)) {
        err << "serve: --" << listenOnly << " requires --listen\n";
        return 2;
      }
    }
  }
  SocketSourceOptions socketOpts;
  socketOpts.readTimeoutMs = static_cast<int>(readTimeoutMs);
  const std::string formatName = args.get("ingest-format", "auto");
  if (formatName == "auto") {
    socketOpts.format = SocketSourceOptions::Format::kAuto;
  } else if (formatName == "csv") {
    socketOpts.format = SocketSourceOptions::Format::kCsv;
  } else if (formatName == "binary") {
    socketOpts.format = SocketSourceOptions::Format::kBinary;
  } else {
    err << "serve: unknown --ingest-format '" << formatName
        << "' (want auto|csv|binary)\n";
    return 2;
  }
  if ((args.has("anomaly-port") && (anomalyPort < 0 || anomalyPort > 65535)) ||
      (args.has("stats-port") && (statsPort < 0 || statsPort > 65535))) {
    err << "serve: --anomaly-port/--stats-port want a port in [0, 65535]\n";
    return 2;
  }
  // All serving-surface ports are unauthenticated, so offer the obvious
  // containment: one flag restricting every listener to 127.0.0.1.
  const bool loopback = args.has("loopback");
  if (loopback && !args.get("loopback", "").empty()) {
    err << "serve: --loopback takes no value\n";
    return 2;
  }
  if (loopback && !listenMode && !args.has("anomaly-port") &&
      !args.has("stats-port")) {
    err << "serve: --loopback requires --listen, --anomaly-port, or "
           "--stats-port\n";
    return 2;
  }
  if (maxResident < 0) {
    err << "serve: --max-resident must be positive (0 = unlimited)\n";
    return 2;
  }
  const std::string hibernateDir = args.get("hibernate-dir", "");
  if (!hibernateDir.empty() && maxResident == 0) {
    err << "serve: --hibernate-dir requires --max-resident\n";
    return 2;
  }
  const std::string metricsOut = args.get("metrics-out", "");
  if (args.has("metrics-every") && metricsOut.empty()) {
    err << "serve: --metrics-every requires --metrics-out\n";
    return 2;
  }
  if (metricsEvery <= 0) {
    err << "serve: --metrics-every must be positive\n";
    return 2;
  }
  const std::string checkpointDir = args.get("checkpoint-dir", "");
  const bool restore = args.has("restore");
  if (restore && !args.get("restore", "").empty()) {
    err << "serve: --restore takes no value\n";
    return 2;
  }
  if ((checkpointEvery != 0 || restore) && checkpointDir.empty()) {
    err << "serve: --checkpoint-every/--restore require --checkpoint-dir\n";
    return 2;
  }
  if (checkpointEvery < 0) {
    err << "serve: --checkpoint-every must be positive\n";
    return 2;
  }
  if (window <= 0) {
    err << "serve: --window must be positive\n";
    return 2;
  }
  const auto seed = static_cast<std::uint64_t>(seedIn);
  if (args.has("shards")) {
    // The static-shard engine is gone; a shard's dedicated thread pair is
    // now a worker drawn from the shared pool.
    long long shardsIn = 0;
    if (!numOption(args, "serve", "shards", 0, err, shardsIn)) return 2;
    if (shardsIn <= 0) {
      err << "serve: --shards must be positive\n";
      return 2;
    }
    if (args.has("workers")) {
      err << "serve: --shards is deprecated and cannot be combined with "
             "--workers\n";
      return 2;
    }
    err << "warning: --shards is deprecated; mapping to --workers "
        << shardsIn << " (the scheduler decouples threads from streams)\n";
    workersIn = shardsIn;
  }
  if (streamsIn <= 0 || units <= 0 || queueIn <= 0 || totalQueueIn <= 0 ||
      budgetIn <= 0 || ingestIn <= 0 || workersIn < 0) {
    err << "serve: --streams, --units, --queue, --total-queue, --budget and "
           "--ingest-threads must be positive (--workers 0 = one per "
           "hardware thread)\n";
    return 2;
  }
  const std::size_t streams =
      listenMode ? static_cast<std::size_t>(netStreamsIn) + streamNames.size()
                 : static_cast<std::size_t>(streamsIn);
  const std::string scaleName = args.get("scale", "test");
  Scale scale;
  if (scaleName == "test") {
    scale = Scale::kTest;
  } else if (scaleName == "medium") {
    scale = Scale::kMedium;
  } else if (scaleName == "paper") {
    scale = Scale::kPaper;
  } else {
    err << "unknown --scale '" << scaleName << "'\n";
    return 2;
  }

  engine::EngineConfig ecfg;
  ecfg.workers = static_cast<std::size_t>(workersIn);
  ecfg.ingestThreads = static_cast<std::size_t>(ingestIn);
  ecfg.runBudget = static_cast<std::size_t>(budgetIn);
  ecfg.streamQueueCapacity = static_cast<std::size_t>(queueIn);
  ecfg.totalQueueCapacity = static_cast<std::size_t>(totalQueueIn);
  ecfg.maxResidentStreams = static_cast<std::size_t>(maxResident);
  ecfg.hibernateDir = hibernateDir;

  // Streams cycle through the dataset presets (the paper's two CCD
  // hierarchies plus SCD), each with its own seed so workloads differ.
  // One spec per *preset*, not per stream: every stream of a preset
  // registers an aliasing handle into the same shared spec, so a
  // 100k-stream fleet holds three hierarchies, not 100k.
  struct Preset {
    const char* name;
    WorkloadSpec (*make)(Scale);
  };
  static constexpr Preset kPresets[] = {
      {"ccd-net", workload::ccdNetworkWorkload},
      {"ccd-trouble", workload::ccdTroubleWorkload},
      {"scd", workload::scdNetworkWorkload},
  };
  // Declared before the engine (so it outlives it) for GeneratorSource,
  // which borrows its spec; the hierarchies themselves are additionally
  // pinned by the engine through the aliasing handles.
  std::vector<std::shared_ptr<const WorkloadSpec>> specs;
  report::ConcurrentAnomalyStore store;
  // Sink plumbing shared by both modes: the store always collects; with
  // --anomaly-port each anomaly is additionally rendered as a JSON line
  // and fanned out to subscribers. streamHier is filled during stream
  // registration (before start) and read-only once workers run.
  serve::JsonLineBroadcaster broadcaster;
  std::unordered_map<std::string, const Hierarchy*> streamHier;
  engine::DetectionEngine::ResultSink sink = store.sink();
  if (args.has("anomaly-port")) {
    sink = [&store, &broadcaster, &streamHier](const std::string& name,
                                               const InstanceResult& res) {
      store.add(name, res);
      const Hierarchy& h = *streamHier.at(name);
      for (const Anomaly& a : res.anomalies) {
        broadcaster.publish(
            serve::anomalyJsonLine(name, h.path(a.node), h.depth(a.node), a));
      }
    };
  }
  engine::DetectionEngine eng(ecfg, std::move(sink));
  std::shared_ptr<net::TcpListener> ingestListener;
  std::shared_ptr<StreamRouter> router;
  // Borrowed views of the engine-owned sources, for post-drain protocol
  // accounting; valid for the engine's lifetime.
  std::vector<const SocketSource*> netSources;
  if (listenMode) {
    WorkloadSpec specIn;
    if (!parseDataset(args, err, specIn)) return 2;
    auto spec = std::make_shared<const WorkloadSpec>(std::move(specIn));
    specs.push_back(spec);
    net::ignoreSigpipe();
    ingestListener = std::make_shared<net::TcpListener>();
    if (!ingestListener->listen(static_cast<std::uint16_t>(listenPort),
                                loopback)) {
      err << "serve: cannot listen on port " << listenPort << ": "
          << ingestListener->lastError() << "\n";
      return 1;
    }
    // One router thread accepts every ingest connection: v2 handshakes
    // carrying a name land on that name's slot (every reconnect included),
    // everything else fills the anonymous slots first-come. The run ends
    // after every stream ends.
    StreamRouter::Options ropt;
    ropt.format = socketOpts.format;
    ropt.handshakeTimeoutMs = socketOpts.readTimeoutMs;
    if (shedWatermark > 0) {
      // Accept-time load shedding: refuse new connections while the
      // engine is this many units behind (checked on the router thread,
      // stats() is thread-safe).
      ropt.shedPredicate = [&eng,
                            mark = static_cast<std::size_t>(shedWatermark)] {
        return eng.stats().queueLagUnits() >= mark;
      };
    }
    router = std::make_shared<StreamRouter>(ingestListener, ropt);
    socketOpts.protocolErrorBudget = static_cast<std::size_t>(errorBudget);
    socketOpts.junkBudgetPerConn = static_cast<std::size_t>(junkBudget);
    const auto addNetStream = [&](const std::string& name,
                                  SocketSourceOptions opts,
                                  std::size_t slot) {
      PipelineConfig cfg;
      cfg.delta = spec->unit;
      cfg.detector.theta = theta;
      cfg.detector.windowLength = static_cast<std::size_t>(window);
      cfg.detector.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
      store.registerStream(name, spec->hierarchy);
      streamHier.emplace(name, &spec->hierarchy);
      auto src = std::make_unique<SocketSource>(router, slot, spec->hierarchy,
                                                std::move(opts));
      netSources.push_back(src.get());
      eng.addStream(name, workload::sharedHierarchy(spec), cfg,
                    std::move(src));
    };
    // Named resumable streams first. The engine stream name is the wire
    // name, so a checkpoint restore matches a reconnecting client's
    // stream by the same identity.
    for (const std::string& name : streamNames) {
      SocketSourceOptions opts = socketOpts;
      opts.streamName = name;
      opts.unitDelta = spec->unit;
      addNetStream(name, std::move(opts), router->addNamedSlot(name));
    }
    for (long long i = 0; i < netStreamsIn; ++i) {
      addNetStream("net-" + std::to_string(i), socketOpts,
                   router->addAnonymousSlot());
    }
    // Fold the serving-surface counters into the sampled gauges the
    // stats endpoint serves. Captures by value: the sampler thread stops
    // inside the engine's own teardown, before either the sources (engine
    // owned) or the router (shared_ptr) can die.
    eng.setGaugeSampler(
        [sources = netSources, router](obs::MetricsRegistry& reg) {
          std::size_t reconnects = 0, resumes = 0;
          for (const SocketSource* s : sources) {
            reconnects += s->reconnects();
            resumes += s->resumes();
          }
          reg.recordValue(obs::Gauge::kNetReconnects, reconnects);
          reg.recordValue(obs::Gauge::kNetResumes, resumes);
          reg.recordValue(obs::Gauge::kNetShedConnections,
                          router->shedConnections());
          reg.recordValue(obs::Gauge::kNetInjectedFaults,
                          faultinject::injectedCount());
        });
  } else {
    specs.reserve(std::size(kPresets));
    for (const Preset& preset : kPresets) {
      specs.push_back(
          std::make_shared<const WorkloadSpec>(preset.make(scale)));
    }
    for (std::size_t i = 0; i < streams; ++i) {
      const Preset& preset = kPresets[i % std::size(kPresets)];
      const std::shared_ptr<const WorkloadSpec>& spec =
          specs[i % std::size(kPresets)];
      PipelineConfig cfg;
      cfg.delta = spec->unit;
      cfg.detector.theta = theta;
      cfg.detector.windowLength = static_cast<std::size_t>(window);
      cfg.detector.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
      const std::string name = std::string(preset.name) + "-" +
                               std::to_string(i);
      store.registerStream(name, spec->hierarchy);
      streamHier.emplace(name, &spec->hierarchy);
      eng.addStream(name, workload::sharedHierarchy(spec), cfg,
                    std::make_unique<workload::GeneratorSource>(
                        *spec, 0, units, seed + i));
    }
  }

  const std::string checkpointPath =
      checkpointDir.empty() ? "" : checkpointDir + "/checkpoint.tsnap";
  // The anomaly store rides in the snapshot's user section so restored
  // reports continue the checkpointed ones with nothing lost or doubled.
  const auto storeWriter = [&store](persist::Serializer& s) {
    store.saveState(s);
  };
  if (!checkpointDir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(checkpointDir, ec);
    if (ec) {
      err << "serve: cannot create --checkpoint-dir '" << checkpointDir
          << "': " << ec.message() << "\n";
      return 1;
    }
  }
  if (restore) {
    try {
      const std::size_t restored = eng.restoreFrom(
          checkpointPath,
          [&store](persist::Deserializer& d) { store.loadState(d); });
      out << "restored " << restored << " streams from " << checkpointPath
          << "\n";
    } catch (const persist::SnapshotError& e) {
      err << "serve: restore failed: " << e.what() << "\n";
      return 1;
    }
  }

  // Output-side servers come up before the engine so a script can parse
  // the flushed "serving:" line, subscribe, and only then feed records.
  serve::StatsPollServer statsServer;
  if (args.has("anomaly-port") &&
      !broadcaster.start(static_cast<std::uint16_t>(anomalyPort), loopback)) {
    err << "serve: cannot listen on --anomaly-port " << anomalyPort << ": "
        << broadcaster.error() << "\n";
    return 1;
  }
  if (args.has("stats-port") &&
      !statsServer.start(
          static_cast<std::uint16_t>(statsPort),
          [&eng] { return serve::engineStatsJson(eng.stats()); }, loopback)) {
    err << "serve: cannot listen on --stats-port " << statsPort << ": "
        << statsServer.error() << "\n";
    return 1;
  }
  if (listenMode || args.has("anomaly-port") || args.has("stats-port")) {
    out << "serving:";
    if (listenMode) {
      out << " ingest=" << ingestListener->port() << " format=" << formatName
          << " net-streams=" << streams;
      if (!streamNames.empty()) out << " named=" << streamNames.size();
    }
    if (args.has("anomaly-port")) out << " anomaly=" << broadcaster.port();
    if (args.has("stats-port")) out << " stats=" << statsServer.port();
    out << std::endl;  // flushed: scripts block on this line
  }

  eng.start();
  if (router) router->start();

  // Periodic checkpointer: snapshot whenever another --checkpoint-every
  // units have been processed. Runs beside drain(); the engine quiesces
  // to a unit boundary around each snapshot and resumes by itself.
  std::atomic<bool> serveDone{false};
  // Periodic metrics emitter: one JSON line per --metrics-every window,
  // plus a final line after drain (written by the main thread, so the
  // last line always reflects the fully drained state).
  std::ofstream metricsFile;
  std::thread metricsEmitter;
  if (!metricsOut.empty()) {
    metricsFile.open(metricsOut, std::ios::trunc);
    if (!metricsFile) {
      err << "serve: cannot open --metrics-out '" << metricsOut << "'\n";
      if (router) router->stop();  // wakes sources blocked in await()
      eng.stop();
      return 1;
    }
    metricsEmitter = std::thread([&] {
      auto last = std::chrono::steady_clock::now();
      while (!serveDone.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        const auto now = std::chrono::steady_clock::now();
        if (now - last < std::chrono::milliseconds(metricsEvery)) continue;
        last = now;
        writeMetricsLine(metricsFile, eng.stats());
        metricsFile.flush();
      }
    });
  }
  std::thread checkpointer;
  if (checkpointEvery > 0) {
    checkpointer = std::thread([&] {
      std::size_t lastUnits = eng.stats().checkpoint.lastUnits;
      while (!serveDone.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        const auto st = eng.stats();
        if (st.unitsProcessed - lastUnits <
            static_cast<std::size_t>(checkpointEvery)) {
          continue;
        }
        try {
          eng.checkpoint(checkpointPath, storeWriter);
          lastUnits = st.unitsProcessed;
        } catch (const persist::SnapshotError& e) {
          err << "warning: checkpoint failed: " << e.what() << "\n";
          return;
        }
      }
    });
  }

  const auto stats = eng.drain();
  // Stop order matters: the router's shed predicate polls the engine, so
  // the accept thread dies first; closing the broadcaster's subscribers
  // is their end-of-run EOF, and the stats renderer must not outlive the
  // engine.
  if (router) router->stop();
  broadcaster.stop();
  statsServer.stop();
  serveDone.store(true, std::memory_order_relaxed);
  if (checkpointer.joinable()) checkpointer.join();
  if (metricsEmitter.joinable()) metricsEmitter.join();
  if (metricsFile.is_open()) {
    writeMetricsLine(metricsFile, stats);
    metricsFile.close();
  }
  if (!checkpointDir.empty()) {
    // Final checkpoint of the drained state, so a later --restore resumes
    // (or re-reports) from the end of this run.
    try {
      eng.checkpoint(checkpointPath, storeWriter);
    } catch (const persist::SnapshotError& e) {
      err << "warning: final checkpoint failed: " << e.what() << "\n";
    }
  }

  out << "engine: " << streams << " streams, " << stats.scheduler.workers
      << " workers, " << stats.ingestThreads
      << " ingest threads (stream queue " << ecfg.streamQueueCapacity
      << ", total queue " << ecfg.totalQueueCapacity << ", budget "
      << ecfg.runBudget << ")\n";
  for (std::size_t i = 0; i < eng.streamCount(); ++i) {
    const auto sum = eng.streamSummary(i);
    const auto& ss = stats.perStream[i];
    out << "stream " << eng.streamName(i) << ": units="
        << sum.unitsProcessed << " records=" << sum.recordsProcessed
        << " instances=" << sum.instancesDetected
        << " anomalies=" << sum.anomaliesReported
        << " junk=" << sum.junkRowsSkipped << " runs=" << ss.runs
        << " requeues=" << ss.requeues << "\n";
    if (sum.warmupUnitsBuffered > 0) {
      err << "warning: stream " << eng.streamName(i)
          << " ended during warm-up (" << sum.warmupUnitsBuffered
          << " units buffered, no detection performed) — run more --units "
             "or shrink --window\n";
    }
  }
  out << "scheduler: claims=" << stats.scheduler.claims
      << " requeues=" << stats.scheduler.requeues
      << " max-ready=" << stats.scheduler.maxReadyStreams
      << " max-queued=" << stats.scheduler.maxQueuedUnits
      << " backpressure-waits=" << stats.scheduler.backpressureWaits
      << " busiest-share=" << fmtF(stats.busiestStreamShare, 2) << "\n";
  out << "residency: hierarchies=" << stats.distinctHierarchies
      << " workspace-bytes=" << stats.workspaceBytes
      << " resident=" << stats.residentStreams
      << " hibernated=" << stats.hibernatedStreams
      << " evictions=" << stats.hibernateEvictions
      << " wakes=" << stats.hibernateWakes << "\n";
  out << "aggregate: ingested=" << stats.unitsIngested
      << " units=" << stats.unitsProcessed
      << " discarded=" << stats.unitsDiscarded
      << " lag=" << stats.queueLagUnits()
      << " records=" << stats.recordsProcessed
      << " instances=" << stats.instancesDetected
      << " anomalies=" << stats.anomaliesReported
      << " junk=" << stats.junkRowsSkipped
      << " warmup=" << stats.warmupUnitsBuffered << "\n";
  if (stats.metrics.enabled && !stats.metrics.stages.empty()) {
    out << "stages (latency percentiles):\n";
    AsciiTable table({"stage", "count", "p50 us", "p90 us", "p99 us",
                      "max us", "total s"});
    for (const auto& s : stats.metrics.stages) {
      table.addRow({s.name, std::to_string(s.count), fmtF(s.p50 * 1e6, 1),
                    fmtF(s.p90 * 1e6, 1), fmtF(s.p99 * 1e6, 1),
                    fmtF(s.max * 1e6, 1), fmtF(s.totalSeconds, 3)});
    }
    table.print(out);
  }
  if (!checkpointDir.empty()) {
    const auto finalStats = eng.stats();
    out << "checkpoints: " << finalStats.checkpoint.checkpoints
        << " taken (last " << finalStats.checkpoint.lastBytes << " bytes, "
        << fmtF(finalStats.checkpoint.lastSeconds * 1e3, 1) << " ms; total "
        << fmtF(finalStats.checkpoint.totalSeconds * 1e3, 1) << " ms), "
        << finalStats.checkpoint.restores << " restores -> "
        << checkpointPath << "\n";
  }
  if (listenMode) {
    std::size_t protoErrors = 0, unresolved = 0;
    std::size_t reconnects = 0, resumes = 0;
    for (const SocketSource* src : netSources) {
      protoErrors += src->protocolErrors();
      unresolved += src->unresolvedPaths();
      reconnects += src->reconnects();
      resumes += src->resumes();
    }
    out << "net: protocol-errors=" << protoErrors
        << " unresolved-paths=" << unresolved
        << " reconnects=" << reconnects << " resumes=" << resumes;
    if (router) {
      out << " shed=" << router->shedConnections()
          << " rejected=" << router->rejected();
    }
    if (faultinject::armed()) {
      out << " injected-faults=" << faultinject::injectedCount();
    }
    if (args.has("anomaly-port")) {
      out << " anomaly-subscribers=" << broadcaster.accepted();
    }
    if (args.has("stats-port")) {
      out << " stats-polls=" << statsServer.served();
    }
    out << "\n";
  }
  out << "elapsed " << fmtF(stats.elapsedSeconds, 3) << "s, "
      << fmtF(stats.recordsPerSecond, 0) << " records/sec\n";
  return 0;
}

int cmdSend(const CliArgs& args, std::ostream& out, std::ostream& err) {
  if (!checkOptions(args, err,
                    {"to", "trace", "format", "dataset", "scale", "hierarchy",
                     "root-name", "frame", "timeout-ms", "stream-name",
                     "retries", "backoff-ms"})) {
    return 2;
  }
  const std::string to = args.get("to", "");
  const std::string trace = args.get("trace", "");
  if (to.empty() || trace.empty()) {
    err << "send: --to HOST:PORT and --trace FILE are required\n";
    return 2;
  }
  const std::size_t colon = to.rfind(':');
  long long portIn = -1;
  if (colon != std::string::npos && colon + 1 < to.size()) {
    try {
      std::size_t pos = 0;
      portIn = std::stoll(to.substr(colon + 1), &pos);
      if (pos != to.size() - colon - 1) portIn = -1;
    } catch (const std::exception&) {
      portIn = -1;
    }
  }
  if (colon == std::string::npos || colon == 0 || portIn < 1 ||
      portIn > 65535) {
    err << "send: bad --to '" << to << "' (want HOST:PORT)\n";
    return 2;
  }
  const std::string host = to.substr(0, colon);
  const std::string format = args.get("format", "binary");
  if (format != "binary" && format != "csv") {
    err << "send: unknown --format '" << format << "' (want binary|csv)\n";
    return 2;
  }
  long long frameIn = 0, timeoutMs = 0, retries = 0, backoffMs = 0;
  if (!numOption(args, "send", "frame", 8192, err, frameIn) ||
      !numOption(args, "send", "timeout-ms", 30'000, err, timeoutMs) ||
      !numOption(args, "send", "retries", 0, err, retries) ||
      !numOption(args, "send", "backoff-ms", 200, err, backoffMs)) {
    return 2;
  }
  if (frameIn <= 0 ||
      frameIn > static_cast<long long>(kSocketMaxFrameRecords)) {
    err << "send: --frame must be in [1, " << kSocketMaxFrameRecords
        << "]\n";
    return 2;
  }
  if (timeoutMs <= 0) {
    err << "send: --timeout-ms must be positive\n";
    return 2;
  }
  const std::string streamName = args.get("stream-name", "");
  if (streamName.size() > kSocketMaxStreamNameBytes ||
      (args.has("stream-name") && streamName.empty())) {
    err << "send: --stream-name wants 1.." << kSocketMaxStreamNameBytes
        << " bytes\n";
    return 2;
  }
  if (retries < 0 || backoffMs <= 0) {
    err << "send: --retries must be >= 0 and --backoff-ms positive\n";
    return 2;
  }
  if (format == "csv" &&
      (args.has("stream-name") || args.has("retries") ||
       args.has("backoff-ms"))) {
    err << "send: --stream-name/--retries/--backoff-ms require the binary "
           "format (csv bytes are forwarded verbatim, with no handshake to "
           "resume from)\n";
    return 2;
  }

  net::ignoreSigpipe();
  const auto port = static_cast<std::uint16_t>(portIn);

  if (format == "csv") {
    net::TcpConn conn =
        net::connectTo(host, port, static_cast<int>(timeoutMs));
    if (!conn.valid()) {
      err << "send: cannot connect to " << to << "\n";
      return 1;
    }
    // CSV is forwarded verbatim; the server applies CsvSource semantics.
    std::ifstream in(trace, std::ios::binary);
    if (!in) {
      err << "send: cannot open --trace '" << trace << "'\n";
      return 1;
    }
    std::vector<char> chunk(256 * 1024);
    std::uint64_t bytes = 0;
    while (in) {
      in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
      const auto got = static_cast<std::size_t>(in.gcount());
      if (got == 0) break;
      if (!conn.writeAll(chunk.data(), got)) {
        err << "send: connection lost after " << bytes << " bytes\n";
        return 1;
      }
      bytes += got;
    }
    conn.shutdownWrite();
    out << "sent " << bytes << " csv bytes to " << to << "\n";
    return 0;
  }

  // Binary: resolve the trace against the dataset hierarchy, then frame
  // its records with the hierarchy's own paths as the handshake table
  // (file-id == NodeId, so records pass through unmapped).
  WorkloadSpec spec;
  if (!parseDataset(args, err, spec)) return 2;
  const Hierarchy& h = spec.hierarchy;
  std::vector<std::string> paths;
  paths.reserve(h.size());
  for (std::size_t n = 0; n < h.size(); ++n) {
    paths.push_back(h.path(static_cast<NodeId>(n)));
  }
  // Client-chosen session token (informational — the name is the
  // identity) which doubles as the backoff-jitter seed, so concurrent
  // retrying clients spread out instead of reconnecting in lockstep.
  std::random_device rd;
  const std::uint64_t token =
      (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  std::mt19937_64 jitterRng(token);
  const int ioTimeout = static_cast<int>(timeoutMs);

  std::uint64_t sent = 0, resumeSkipped = 0, skipped = 0;
  std::string lastError;
  for (long long attempt = 0;; ++attempt) {
    if (attempt > 0) {
      if (attempt > retries) {
        err << "send: " << lastError << " (gave up after " << retries
            << " retries)\n";
        return 1;
      }
      // Jittered exponential backoff, capped at 10s: delay in
      // [base/2, base] with base = backoffMs * 2^(attempt-1).
      const long long shift = attempt - 1 < 10 ? attempt - 1 : 10;
      const long long base = std::min(backoffMs << shift, 10'000LL);
      std::uniform_int_distribution<long long> jitter(base / 2, base);
      std::this_thread::sleep_for(std::chrono::milliseconds(jitter(jitterRng)));
      err << "send: " << lastError << "; retrying (" << attempt << "/"
          << retries << ")\n";
    }
    sent = 0;
    resumeSkipped = 0;
    net::TcpConn conn = net::connectTo(host, port, ioTimeout);
    if (!conn.valid()) {
      lastError = "cannot connect to " + to;
      continue;
    }
    std::vector<std::uint8_t> wire =
        streamName.empty()
            ? encodeSocketHandshake(paths)
            : encodeSocketHandshakeV2(paths, streamName, token);
    if (!conn.writeAll(wire.data(), wire.size(), ioTimeout)) {
      lastError = "connection lost during handshake";
      continue;
    }
    // Named streams: the server answers with the position it has already
    // committed; everything before it is skipped instead of re-sent.
    Timestamp committed = kSocketNoCommit;
    if (!streamName.empty()) {
      SocketResumeReply reply;
      if (!readSocketResumeReply(conn, ioTimeout, reply)) {
        lastError = "no resume reply from server";
        continue;
      }
      if (reply.status == kSocketResumeUnknownStream) {
        err << "send: server does not serve a stream named '" << streamName
            << "'\n";
        return 1;
      }
      if (reply.status != kSocketResumeOk) {
        lastError = "server shed the connection (overloaded)";
        continue;
      }
      committed = reply.committedTime;
      if (committed != kSocketNoCommit && attempt > 0) {
        err << "send: resuming '" << streamName << "' from t=" << committed
            << "\n";
      }
    }
    // The trace reopens on every attempt; the committed prefix is
    // dropped record by record and the rest re-framed.
    bool lost = false;
    try {
      const auto source = openTraceSource(trace, h);
      std::vector<Record> batch, keep;
      while (source->nextBatch(batch, static_cast<std::size_t>(frameIn)) >
             0) {
        keep.clear();
        for (const Record& r : batch) {
          if (r.time < committed) {
            ++resumeSkipped;
          } else {
            keep.push_back(r);
          }
        }
        if (keep.empty()) continue;
        wire.clear();
        appendSocketFrame(wire, keep.data(), keep.size());
        if (!conn.writeAll(wire.data(), wire.size(), ioTimeout)) {
          lastError =
              "connection lost after " + std::to_string(sent) + " records";
          lost = true;
          break;
        }
        sent += keep.size();
      }
      if (!lost) {
        skipped = source->skippedRecords();
        wire.clear();
        appendSocketEndOfStream(wire);
        if (!conn.writeAll(wire.data(), wire.size(), ioTimeout)) {
          lastError = "connection lost at end of stream";
          lost = true;
        }
      }
    } catch (const persist::SnapshotError& e) {
      err << "send: cannot read --trace '" << trace << "': " << e.what()
          << "\n";
      return 1;
    }
    if (lost) continue;
    conn.shutdownWrite();
    break;
  }
  // resumeSkipped counts records the server had already committed — they
  // were delivered (by an earlier attempt or an earlier process), so the
  // logical total stays the full trace.
  out << "sent " << (sent + resumeSkipped) << " records to " << to << " ("
      << skipped << " skipped)\n";
  return 0;
}

}  // namespace

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  std::string value = fallback;
  for (const auto& [key, v] : options) {
    if (key == name) value = v;
  }
  return value;
}

bool CliArgs::has(const std::string& name) const {
  for (const auto& [key, v] : options) {
    (void)v;
    if (key == name) return true;
  }
  return false;
}

CliArgs parseArgs(const std::vector<std::string>& argv) {
  CliArgs args;
  std::size_t i = 0;
  if (!argv.empty() && argv[0].rfind("--", 0) != 0) {
    args.command = argv[i++];
  }
  for (; i < argv.size(); ++i) {
    if (argv[i].rfind("--", 0) == 0) {
      const std::string key = argv[i].substr(2);
      if (i + 1 < argv.size() && argv[i + 1].rfind("--", 0) != 0) {
        args.options.emplace_back(key, argv[++i]);
      } else {
        args.options.emplace_back(key, "");
      }
    } else {
      args.positional.push_back(argv[i]);
    }
  }
  return args;
}

int runCli(const std::vector<std::string>& argv, std::ostream& out,
           std::ostream& err) {
  const CliArgs args = parseArgs(argv);
  if (args.command.empty() || args.command == "help") {
    out << kUsage;
    return args.command.empty() ? 2 : 0;
  }
  if (args.command == "generate") return cmdGenerate(args, out, err);
  if (args.command == "convert") return cmdConvert(args, out, err);
  if (args.command == "detect") return cmdDetect(args, out, err);
  if (args.command == "analyze") return cmdAnalyze(args, out, err);
  if (args.command == "hierarchy") return cmdHierarchy(args, out, err);
  if (args.command == "serve") return cmdServe(args, out, err);
  if (args.command == "send") return cmdSend(args, out, err);
  err << "unknown command '" << args.command << "'\n" << kUsage;
  return 2;
}

}  // namespace tiresias::tools
