#include <iostream>
#include <vector>

#include "tools/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return tiresias::tools::runCli(args, std::cout, std::cerr);
}
