#include "report/store.h"

#include <fstream>

#include "common/csv.h"
#include "common/expect.h"
#include "common/table.h"

namespace tiresias::report {

AnomalyStore::AnomalyStore(const Hierarchy& hierarchy)
    : hierarchy_(hierarchy) {}

void AnomalyStore::add(const InstanceResult& result) {
  for (const auto& a : result.anomalies) add(a);
}

void AnomalyStore::add(const Anomaly& anomaly) {
  TIRESIAS_EXPECT(anomaly.node < hierarchy_.size(), "anomaly node id invalid");
  entries_.push_back({anomaly, hierarchy_.path(anomaly.node),
                      hierarchy_.depth(anomaly.node)});
}

std::vector<StoredAnomaly> AnomalyStore::query(const Query& query) const {
  std::vector<StoredAnomaly> out;
  for (const auto& e : entries_) {
    if (query.fromUnit && e.anomaly.unit < *query.fromUnit) continue;
    if (query.toUnit && e.anomaly.unit > *query.toUnit) continue;
    if (query.subtreeRoot &&
        !hierarchy_.isAncestorOrEqual(*query.subtreeRoot, e.anomaly.node)) {
      continue;
    }
    if (query.depth && e.depth != *query.depth) continue;
    if (query.minRatio && e.anomaly.ratio < *query.minRatio) continue;
    out.push_back(e);
  }
  return out;
}

std::vector<std::size_t> AnomalyStore::countByDepth() const {
  std::vector<std::size_t> counts(
      static_cast<std::size_t>(hierarchy_.height()) + 1, 0);
  for (const auto& e : entries_) {
    counts[static_cast<std::size_t>(e.depth)] += 1;
  }
  return counts;
}

void AnomalyStore::saveState(persist::Serializer& out) const {
  out.u64(entries_.size());
  for (const auto& e : entries_) {
    out.u32(e.anomaly.node);
    out.i64(e.anomaly.unit);
    out.f64(e.anomaly.actual);
    out.f64(e.anomaly.forecast);
    out.f64(e.anomaly.ratio);
  }
}

void AnomalyStore::loadState(persist::Deserializer& in) {
  const std::size_t n =
      in.count(sizeof(std::uint32_t) + 4 * sizeof(double));
  std::vector<StoredAnomaly> entries;
  entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Anomaly a;
    a.node = in.u32();
    persist::Deserializer::require(a.node < hierarchy_.size(),
                                   "snapshot: node id outside hierarchy");
    a.unit = in.i64();
    a.actual = in.f64();
    a.forecast = in.f64();
    a.ratio = in.f64();
    entries.push_back({a, hierarchy_.path(a.node), hierarchy_.depth(a.node)});
  }
  entries_ = std::move(entries);
}

void AnomalyStore::exportCsv(const std::string& filePath) const {
  std::ofstream out(filePath);
  TIRESIAS_EXPECT(static_cast<bool>(out), "cannot open CSV export file");
  CsvWriter writer(out);
  writer.row({"unit", "path", "depth", "actual", "forecast", "ratio"});
  for (const auto& e : entries_) {
    writer.row({std::to_string(e.anomaly.unit), e.path,
                std::to_string(e.depth), fmtG(e.anomaly.actual, 10),
                fmtG(e.anomaly.forecast, 10), fmtG(e.anomaly.ratio, 6)});
  }
}

void AnomalyStore::exportJsonl(const std::string& filePath) const {
  std::ofstream out(filePath);
  TIRESIAS_EXPECT(static_cast<bool>(out), "cannot open JSONL export file");
  for (const auto& e : entries_) {
    out << "{\"unit\":" << e.anomaly.unit << ",\"path\":\"";
    for (char c : e.path) {
      if (c == '"' || c == '\\') out << '\\';
      out << c;
    }
    out << "\",\"depth\":" << e.depth << ",\"actual\":" << e.anomaly.actual
        << ",\"forecast\":" << e.anomaly.forecast
        << ",\"ratio\":" << (e.anomaly.ratio > 1e300 ? -1.0 : e.anomaly.ratio)
        << "}\n";
  }
}

}  // namespace tiresias::report
