// Anomaly report store (Step 5 / Fig 3(f) back end).
//
// The paper reports anomalous events to a text database queried by a web
// front end. This store provides the same semantics as a library: append
// InstanceResults, query by time range / node subtree / hierarchy depth,
// and export to CSV or JSONL for external tooling.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/types.h"
#include "hierarchy/hierarchy.h"
#include "persist/snapshot.h"

namespace tiresias::report {

struct StoredAnomaly {
  Anomaly anomaly;
  std::string path;  // human-readable hierarchy path at insert time
  int depth = 0;
};

struct Query {
  std::optional<TimeUnit> fromUnit;    // inclusive
  std::optional<TimeUnit> toUnit;      // inclusive
  std::optional<NodeId> subtreeRoot;   // restrict to this node's subtree
  std::optional<int> depth;            // restrict to one hierarchy depth
  std::optional<double> minRatio;      // minimum T/F score
};

class AnomalyStore {
 public:
  explicit AnomalyStore(const Hierarchy& hierarchy);

  /// Append every anomaly of a detection instance.
  void add(const InstanceResult& result);
  void add(const Anomaly& anomaly);

  std::size_t size() const { return entries_.size(); }
  const std::vector<StoredAnomaly>& all() const { return entries_; }

  /// Filtered view, in insertion (time) order.
  std::vector<StoredAnomaly> query(const Query& query) const;

  /// Count of anomalies per hierarchy depth (index = depth, 1-based).
  std::vector<std::size_t> countByDepth() const;

  /// Serialize to CSV ("unit,path,depth,actual,forecast,ratio").
  void exportCsv(const std::string& filePath) const;
  /// Serialize to JSON Lines.
  void exportJsonl(const std::string& filePath) const;

  /// Snapshot the stored anomalies (paths/depths are re-derived from the
  /// hierarchy on load, so only the Anomaly records are persisted).
  void saveState(persist::Serializer& out) const;
  /// Replace the contents from a snapshot. Throws persist::SnapshotError
  /// on malformed input.
  void loadState(persist::Deserializer& in);

 private:
  const Hierarchy& hierarchy_;
  std::vector<StoredAnomaly> entries_;
};

}  // namespace tiresias::report
