#include "report/concurrent_store.h"

#include "common/expect.h"

namespace tiresias::report {

void ConcurrentAnomalyStore::registerStream(const std::string& name,
                                            const Hierarchy& hierarchy) {
  std::lock_guard lock(mutex_);
  const auto [it, inserted] =
      stores_.emplace(name, std::make_unique<AnomalyStore>(hierarchy));
  (void)it;
  TIRESIAS_EXPECT(inserted, "stream name already registered");
}

bool ConcurrentAnomalyStore::hasStream(const std::string& name) const {
  std::lock_guard lock(mutex_);
  return stores_.count(name) != 0;
}

void ConcurrentAnomalyStore::add(const std::string& name,
                                 const InstanceResult& result) {
  std::lock_guard lock(mutex_);
  const auto it = stores_.find(name);
  TIRESIAS_EXPECT(it != stores_.end(), "add() for unregistered stream");
  it->second->add(result);
}

std::size_t ConcurrentAnomalyStore::totalSize() const {
  std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (const auto& [name, store] : stores_) {
    (void)name;
    total += store->size();
  }
  return total;
}

std::vector<std::string> ConcurrentAnomalyStore::streamNames() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> names;
  names.reserve(stores_.size());
  for (const auto& [name, store] : stores_) {
    (void)store;
    names.push_back(name);
  }
  return names;
}

const AnomalyStore& ConcurrentAnomalyStore::store(
    const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = stores_.find(name);
  TIRESIAS_EXPECT(it != stores_.end(), "store() for unregistered stream");
  return *it->second;
}

void ConcurrentAnomalyStore::saveState(persist::Serializer& out) const {
  std::lock_guard lock(mutex_);
  out.u64(stores_.size());
  for (const auto& [name, store] : stores_) {
    out.str(name);
    store->saveState(out);
  }
}

void ConcurrentAnomalyStore::loadState(persist::Deserializer& in) {
  std::lock_guard lock(mutex_);
  const std::size_t n = in.count(sizeof(std::uint64_t));
  for (std::size_t i = 0; i < n; ++i) {
    const std::string name = in.str();
    const auto it = stores_.find(name);
    persist::Deserializer::require(
        it != stores_.end(),
        "anomaly-store snapshot names an unregistered stream");
    it->second->loadState(in);
  }
}

std::vector<StoredAnomaly> ConcurrentAnomalyStore::snapshot(
    const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = stores_.find(name);
  TIRESIAS_EXPECT(it != stores_.end(), "snapshot() for unregistered stream");
  return it->second->all();
}

}  // namespace tiresias::report
