// Thread-safe, stream-tagged anomaly sink for the detection engine.
//
// The engine runs many pipelines concurrently; their InstanceResults all
// funnel here, tagged with the originating stream's name. Internally one
// AnomalyStore per stream (each stream has its own hierarchy, so paths
// resolve against the right tree) behind a single mutex — result delivery
// is rare relative to record processing, so one lock is plenty.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "report/store.h"

namespace tiresias::report {

class ConcurrentAnomalyStore {
 public:
  /// Create the per-stream store. The hierarchy must outlive this object.
  /// Registering the same name twice is a precondition violation.
  void registerStream(const std::string& name, const Hierarchy& hierarchy);

  bool hasStream(const std::string& name) const;

  /// Append a detection instance's anomalies under `name`. Thread-safe;
  /// the stream must be registered.
  void add(const std::string& name, const InstanceResult& result);

  /// Anomalies across all streams.
  std::size_t totalSize() const;
  /// Registered stream names, sorted.
  std::vector<std::string> streamNames() const;

  /// Per-stream store access. The reference is stable, but reading it
  /// while workers still add() races — call after the engine drained, or
  /// use snapshot() for a copy under the lock.
  const AnomalyStore& store(const std::string& name) const;

  /// Copy of one stream's anomalies, taken under the lock (safe live).
  std::vector<StoredAnomaly> snapshot(const std::string& name) const;

  /// Adapter usable as a DetectionEngine result sink.
  std::function<void(const std::string&, const InstanceResult&)> sink() {
    return [this](const std::string& name, const InstanceResult& r) {
      add(name, r);
    };
  }

  /// Snapshot every registered stream's anomalies (under the lock, so a
  /// consistent cut even while workers add). Suitable as the extra-section
  /// payload of DetectionEngine::checkpoint.
  void saveState(persist::Serializer& out) const;
  /// Restore: every snapshotted stream must already be registered (same
  /// set of registerStream calls as at save time); contents are replaced.
  /// Throws persist::SnapshotError on unknown streams or malformed input.
  void loadState(persist::Deserializer& in);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<AnomalyStore>> stores_;
};

}  // namespace tiresias::report
