// Serving-surface output side: live anomaly streaming + stats polling.
//
// Two tiny single-purpose TCP servers complement the SocketSource ingest
// path so the engine can sit in front of real traffic and be observed:
//
//   JsonLineBroadcaster — subscribers connect and receive one JSON object
//     per line (schema below) for every anomaly the engine reports, as it
//     is reported. Write-only from the subscriber's perspective; a dead
//     subscriber is dropped on its first failed write, and a live one
//     that stops reading is dropped once a line cannot be flushed within
//     a bounded per-write deadline (a slow consumer must never
//     backpressure detection — the kernel socket buffer plus that
//     deadline is all the lag a subscriber gets). publish() is
//     thread-safe — the engine's result sink runs on worker threads.
//   StatsPollServer — connect, receive one JSON document (the full
//     EngineStats/CheckpointStats/MetricsSnapshot rendering), connection
//     closes. `nc host port < /dev/null` is a scrape.
//
// Anomaly line schema (one object per anomaly, AnomalyStore::exportJsonl
// field layout plus the stream tag):
//   {"stream":"...","unit":N,"path":"...","depth":D,
//    "actual":A,"forecast":F,"ratio":R}
//
// Stats document schema: tiresias_metrics/v1, the same object `serve
// --metrics-out` appends per line (engineStatsJson is the single shared
// renderer), extended with the checkpoint counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "net/tcp.h"

namespace tiresias::serve {

/// The tiresias_metrics/v1 JSON object for one stats snapshot (no
/// trailing newline). Shared by `serve --metrics-out`, the stats poll
/// endpoint, and the bench.
std::string engineStatsJson(const engine::EngineStats& stats);

/// One anomaly as a JSON line (no trailing newline), matching
/// AnomalyStore::exportJsonl's escaping and field layout with the stream
/// name prepended.
std::string anomalyJsonLine(const std::string& stream,
                            const std::string& path, int depth,
                            const Anomaly& anomaly);

/// Accepts subscribers on its own thread and fans published lines out to
/// all of them. start() binds; stop() (or destruction) closes every
/// subscriber — an EOF is the subscriber's end-of-run signal.
class JsonLineBroadcaster {
 public:
  JsonLineBroadcaster() = default;
  ~JsonLineBroadcaster() { stop(); }

  JsonLineBroadcaster(const JsonLineBroadcaster&) = delete;
  JsonLineBroadcaster& operator=(const JsonLineBroadcaster&) = delete;

  /// Default per-subscriber write deadline: generous for any reading
  /// peer (one line flushes in microseconds on a healthy connection),
  /// short enough that a wedged one cannot stall the publishing worker
  /// noticeably.
  static constexpr int kDefaultWriteTimeoutMs = 250;

  /// Bind `port` (0 = ephemeral) and start accepting. `loopbackOnly`
  /// binds 127.0.0.1 instead of INADDR_ANY. `writeTimeoutMs` bounds each
  /// subscriber write in publish(); a subscriber that cannot take a line
  /// within it is dropped. False on bind failure (error()).
  bool start(std::uint16_t port, bool loopbackOnly = false,
             int writeTimeoutMs = kDefaultWriteTimeoutMs);
  /// Actual bound port (valid after start()).
  std::uint16_t port() const { return listener_.port(); }
  const std::string& error() const { return listener_.lastError(); }

  /// Send `line` + '\n' to every subscriber, dropping dead and
  /// non-draining ones (each write is bounded by the start() deadline,
  /// so a stalled peer can delay this call but never wedge it).
  /// Thread-safe; called from engine worker threads.
  void publish(const std::string& line);

  /// Subscribers ever accepted / currently connected.
  std::size_t accepted() const;
  std::size_t subscribers() const;

  /// Close the listener and every subscriber connection; joins the
  /// accept thread. Idempotent.
  void stop();

 private:
  void acceptLoop();

  net::TcpListener listener_;
  std::thread acceptor_;
  std::atomic<bool> stop_{false};
  int writeTimeoutMs_ = kDefaultWriteTimeoutMs;
  mutable std::mutex mu_;
  std::vector<net::TcpConn> subs_;
  std::size_t accepted_ = 0;
};

/// One-shot request server: every accepted connection receives render()'s
/// bytes and is closed. The renderer runs on the serving thread and must
/// be safe to call concurrently with the engine (EngineStats::stats() is).
class StatsPollServer {
 public:
  using Renderer = std::function<std::string()>;

  StatsPollServer() = default;
  ~StatsPollServer() { stop(); }

  StatsPollServer(const StatsPollServer&) = delete;
  StatsPollServer& operator=(const StatsPollServer&) = delete;

  bool start(std::uint16_t port, Renderer render, bool loopbackOnly = false);
  std::uint16_t port() const { return listener_.port(); }
  const std::string& error() const { return listener_.lastError(); }

  /// Requests served so far.
  std::size_t served() const { return served_.load(); }

  void stop();

 private:
  void serveLoop();

  net::TcpListener listener_;
  Renderer render_;
  std::thread server_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> served_{0};
};

}  // namespace tiresias::serve
