#include "serve/serving.h"

#include <sstream>

#include "common/table.h"
#include "obs/metrics.h"

namespace tiresias::serve {

namespace {

/// Accept-poll slice: how quickly stop() takes effect. Subscriber churn
/// latency, not data latency — data is pushed, never polled.
constexpr int kAcceptSliceMs = 100;

/// Write deadline for the stats poll response. One scrape document is a
/// few KB, so any reading peer finishes instantly; a peer that connects
/// and never reads must not park the serving thread past this.
constexpr int kStatsWriteTimeoutMs = 1000;

void appendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

std::string engineStatsJson(const engine::EngineStats& st) {
  std::ostringstream os;
  os << "{\"schema\":\"tiresias_metrics/v1\""
     << ",\"elapsed_seconds\":" << fmtF(st.elapsedSeconds, 3)
     << ",\"units_processed\":" << st.unitsProcessed
     << ",\"records_processed\":" << st.recordsProcessed
     << ",\"units_discarded\":" << st.unitsDiscarded
     << ",\"queue_lag_units\":" << st.queueLagUnits()
     << ",\"records_per_sec\":" << fmtF(st.recordsPerSecond, 1)
     << ",\"workspace_bytes\":" << st.workspaceBytes
     << ",\"resident_streams\":" << st.residentStreams
     << ",\"hibernated_streams\":" << st.hibernatedStreams
     << ",\"hibernate_evictions\":" << st.hibernateEvictions
     << ",\"hibernate_wakes\":" << st.hibernateWakes
     << ",\"checkpoint\":{\"checkpoints\":" << st.checkpoint.checkpoints
     << ",\"restores\":" << st.checkpoint.restores
     << ",\"last_bytes\":" << st.checkpoint.lastBytes
     << ",\"last_units\":" << st.checkpoint.lastUnits
     << ",\"last_seconds\":" << fmtF(st.checkpoint.lastSeconds, 3)
     << ",\"total_seconds\":" << fmtF(st.checkpoint.totalSeconds, 3) << "}"
     << ",\"stages\":" << obs::stagesJson(st.metrics)
     << ",\"gauges\":" << obs::gaugesJson(st.metrics) << "}";
  return os.str();
}

std::string anomalyJsonLine(const std::string& stream,
                            const std::string& path, int depth,
                            const Anomaly& anomaly) {
  std::ostringstream os;
  std::string escaped;
  escaped.reserve(stream.size());
  appendEscaped(escaped, stream);
  os << "{\"stream\":\"" << escaped << "\",\"unit\":" << anomaly.unit
     << ",\"path\":\"";
  escaped.clear();
  appendEscaped(escaped, path);
  os << escaped << "\",\"depth\":" << depth << ",\"actual\":" << anomaly.actual
     << ",\"forecast\":" << anomaly.forecast << ",\"ratio\":"
     << (anomaly.ratio > 1e300 ? -1.0 : anomaly.ratio) << "}";
  return os.str();
}

bool JsonLineBroadcaster::start(std::uint16_t port, bool loopbackOnly,
                                int writeTimeoutMs) {
  net::ignoreSigpipe();
  if (!listener_.listen(port, loopbackOnly)) return false;
  writeTimeoutMs_ = writeTimeoutMs;
  stop_.store(false);
  acceptor_ = std::thread([this] { acceptLoop(); });
  return true;
}

void JsonLineBroadcaster::acceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    net::TcpConn conn = listener_.accept(kAcceptSliceMs);
    if (!conn.valid()) continue;
    std::lock_guard lk(mu_);
    subs_.push_back(std::move(conn));
    ++accepted_;
  }
}

void JsonLineBroadcaster::publish(const std::string& line) {
  std::string msg;
  msg.reserve(line.size() + 1);
  msg = line;
  msg += '\n';
  std::lock_guard lk(mu_);
  std::size_t keep = 0;
  for (std::size_t i = 0; i < subs_.size(); ++i) {
    const bool ok = subs_[i].writeAll(msg.data(), msg.size(), writeTimeoutMs_);
    if (ok) {
      if (keep != i) subs_[keep] = std::move(subs_[i]);
      ++keep;
    }
    // A failed write means the subscriber is dead, or alive but not
    // draining within the deadline; dropping it here is the whole
    // slow-consumer policy (the kernel socket buffer plus one write
    // deadline is all the lag a subscriber gets, and detection is never
    // backpressured by it).
  }
  subs_.resize(keep);
}

std::size_t JsonLineBroadcaster::accepted() const {
  std::lock_guard lk(mu_);
  return accepted_;
}

std::size_t JsonLineBroadcaster::subscribers() const {
  std::lock_guard lk(mu_);
  return subs_.size();
}

void JsonLineBroadcaster::stop() {
  if (stop_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  if (acceptor_.joinable()) acceptor_.join();
  listener_.close();
  std::lock_guard lk(mu_);
  subs_.clear();  // closes every subscriber: their EOF
}

bool StatsPollServer::start(std::uint16_t port, Renderer render,
                            bool loopbackOnly) {
  net::ignoreSigpipe();
  if (!listener_.listen(port, loopbackOnly)) return false;
  render_ = std::move(render);
  stop_.store(false);
  server_ = std::thread([this] { serveLoop(); });
  return true;
}

void StatsPollServer::serveLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    net::TcpConn conn = listener_.accept(kAcceptSliceMs);
    if (!conn.valid()) continue;
    const std::string body = render_();
    if (conn.writeAll(body.data(), body.size(), kStatsWriteTimeoutMs)) {
      conn.writeAll("\n", 1, kStatsWriteTimeoutMs);
    }
    conn.shutdownWrite();
    served_.fetch_add(1, std::memory_order_relaxed);
  }
}

void StatsPollServer::stop() {
  if (stop_.exchange(true)) {
    if (server_.joinable()) server_.join();
    return;
  }
  if (server_.joinable()) server_.join();
  listener_.close();
}

}  // namespace tiresias::serve
