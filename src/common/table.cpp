#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/expect.h"

namespace tiresias {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  TIRESIAS_EXPECT(!header_.empty(), "table needs at least one column");
}

void AsciiTable::addRow(std::vector<std::string> cells) {
  TIRESIAS_EXPECT(cells.size() == header_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(cells));
}

void AsciiTable::addRule() { rows_.emplace_back(); }

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto renderRow = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += ' ';
      line += cell;
      line.append(widths[c] - cell.size(), ' ');
      line += " |";
    }
    return line + "\n";
  };
  auto rule = [&] {
    std::string line = "+";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      line.append(widths[c] + 2, '-');
      line += '+';
    }
    return line + "\n";
  };
  std::string out = rule() + renderRow(header_) + rule();
  for (const auto& row : rows_) {
    out += row.empty() ? rule() : renderRow(row);
  }
  out += rule();
  return out;
}

void AsciiTable::print(std::ostream& out) const { out << render(); }

std::string fmtF(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmtPct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string fmtI(long long v) {
  const bool neg = v < 0;
  unsigned long long mag = neg ? 0ULL - static_cast<unsigned long long>(v)
                               : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(mag);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (neg) out += '-';
  std::reverse(out.begin(), out.end());
  return out;
}

std::string fmtG(double v, int significant) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", significant, v);
  return buf;
}

}  // namespace tiresias
