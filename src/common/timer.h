// Wall-clock stage timing for the Table III runtime breakdown (Reading
// Traces / Updating Hierarchies / Creating Time Series / Detecting
// Anomalies). A StageTimer accumulates per-stage totals and per-instance
// samples so benches can report mean and variance like the paper does.
//
// All timing in the tree is monotonic: every duration is a steady_clock
// delta (Stopwatch, monotonicNanos). system_clock is never used for
// intervals — an NTP step mid-measurement must not produce a negative
// latency sample or a skewed throughput figure.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"

namespace tiresias {

/// Nanoseconds on the steady (monotonic) clock. The one time source for
/// interval measurement across the engine, the metrics layer and the CLI;
/// only deltas of this value are meaningful.
inline std::int64_t monotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named stage durations. Stages are created on first use and
/// remembered in first-use order for stable report layout.
class StageTimer {
 public:
  /// RAII scope that adds its lifetime to a stage.
  class Scope {
   public:
    Scope(StageTimer& timer, const std::string& stage)
        : timer_(timer), stage_(stage) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { timer_.add(stage_, watch_.elapsedSeconds()); }

   private:
    StageTimer& timer_;
    std::string stage_;
    Stopwatch watch_;
  };

  void add(const std::string& stage, double seconds);

  /// Stage names in first-use order.
  const std::vector<std::string>& stages() const { return order_; }

  double totalSeconds(const std::string& stage) const;
  double totalSeconds() const;
  /// Mean of the individual samples added to the stage.
  double meanSeconds(const std::string& stage) const;
  /// Sample variance of the individual samples.
  double varianceSeconds(const std::string& stage) const;
  std::size_t samples(const std::string& stage) const;

 private:
  std::vector<std::string> order_;
  std::map<std::string, RunningMoments> byStage_;
};

}  // namespace tiresias
