// Deterministic random number generation.
//
// All stochastic behaviour in the library (workload synthesis, property
// tests, injected anomalies) flows through these generators so every result
// is reproducible from a single seed. SplitMix64 is used to expand seeds;
// xoshiro256** is the workhorse generator (fast, well-distributed, tiny
// state), wrapped in a std::uniform_random_bit_generator-compatible shell.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tiresias {

/// Stateless-step seed expander; also useful as a cheap hash of an index.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1e55ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Standard normal via Marsaglia polar method.
  double normal();

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Poisson-distributed count with the given mean (>= 0). Uses Knuth's
  /// method for small means and a normal approximation for large ones.
  std::uint64_t poisson(double mean);

  /// Fork an independent generator; deterministic in (this stream, salt).
  Rng fork(std::uint64_t salt);

 private:
  std::uint64_t s_[4];
  bool haveSpare_ = false;
  double spare_ = 0.0;
};

/// Zipf(s) sampler over {0, .., n-1} using a precomputed CDF (O(log n) draw).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }
  /// Probability mass of rank i.
  double pmf(std::size_t i) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace tiresias
