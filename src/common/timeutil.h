// Time representation shared across the library.
//
// Operational records carry second-resolution timestamps (the paper's data
// arrives "on the order of minutes"). We model time as seconds from an
// arbitrary epoch; workloads use a synthetic calendar where the epoch is
// midnight on a configurable weekday so diurnal/weekly seasonality is
// well-defined without pulling in timezone machinery.
#pragma once

#include <cstdint>
#include <string>

namespace tiresias {

/// Seconds since the synthetic epoch.
using Timestamp = std::int64_t;
/// A duration in seconds.
using Duration = std::int64_t;
/// Index of a timeunit of size delta: unit = floor(t / delta).
using TimeUnit = std::int64_t;

inline constexpr Duration kSecond = 1;
inline constexpr Duration kMinute = 60;
inline constexpr Duration kHour = 3600;
inline constexpr Duration kDay = 86400;
inline constexpr Duration kWeek = 7 * kDay;

/// Floor division that is correct for negative timestamps too.
constexpr TimeUnit timeUnitOf(Timestamp t, Duration delta) {
  const TimeUnit q = t / delta;
  return (t % delta != 0 && ((t < 0) != (delta < 0))) ? q - 1 : q;
}

/// Start timestamp of a timeunit.
constexpr Timestamp unitStart(TimeUnit unit, Duration delta) {
  return unit * delta;
}

/// Seconds into the current day, in [0, kDay).
constexpr Duration secondOfDay(Timestamp t) {
  const Duration r = t % kDay;
  return r < 0 ? r + kDay : r;
}

/// Day index within the week, in [0, 7). Day 0 is the epoch's weekday.
constexpr int dayOfWeek(Timestamp t) {
  const Timestamp d = timeUnitOf(t, kDay);
  const Timestamp r = d % 7;
  return static_cast<int>(r < 0 ? r + 7 : r);
}

/// Human-readable "d HH:MM:SS" rendering for logs and examples.
std::string formatTimestamp(Timestamp t);

}  // namespace tiresias
