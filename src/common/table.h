// ASCII table rendering for bench output: every bench prints the paper's
// tables in a fixed-width layout so paper-vs-measured comparison is a
// side-by-side read.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tiresias {

/// Column-aligned ASCII table. Cells are strings; numeric formatting is the
/// caller's job (see fmt helpers below).
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void addRow(std::vector<std::string> cells);
  /// Insert a horizontal rule before the next added row.
  void addRule();

  /// Render with column padding and header separator.
  std::string render() const;
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == rule
};

/// Fixed-precision float formatting ("3.142" for (pi, 3)).
std::string fmtF(double v, int precision = 3);

/// Percentage formatting ("94.1%" for (0.941, 1)).
std::string fmtPct(double fraction, int precision = 1);

/// Integer with thousands separators ("45,479").
std::string fmtI(long long v);

/// Scientific-ish compact formatting for log-scale plot values.
std::string fmtG(double v, int significant = 4);

}  // namespace tiresias
