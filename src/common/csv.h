// Minimal CSV reading/writing for record traces and bench output.
// Handles quoting of fields containing separators/quotes/newlines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tiresias {

/// Escape a field per RFC 4180 if it contains the separator, quotes or
/// newlines; otherwise return it unchanged.
std::string csvEscape(const std::string& field, char sep = ',');

/// Join fields into one CSV line (no trailing newline).
std::string csvJoin(const std::vector<std::string>& fields, char sep = ',');

/// Parse one CSV line into fields, honouring RFC 4180 quoting.
std::vector<std::string> csvSplit(const std::string& line, char sep = ',');

/// Streaming CSV writer bound to an ostream the caller owns.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char sep = ',') : out_(out), sep_(sep) {}

  void row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
  char sep_;
};

/// Reads a whole CSV file into memory. Returns false if the file cannot be
/// opened. Blank lines are skipped.
bool csvReadFile(const std::string& path,
                 std::vector<std::vector<std::string>>& rows, char sep = ',');

}  // namespace tiresias
