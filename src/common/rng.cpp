#include "common/rng.h"

#include <cmath>

#include "common/expect.h"

namespace tiresias {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) {
  TIRESIAS_EXPECT(n > 0, "Rng::below requires n > 0");
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (haveSpare_) {
    haveSpare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * m;
  haveSpare_ = true;
  return u * m;
}

std::uint64_t Rng::poisson(double mean) {
  TIRESIAS_EXPECT(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until the product drops below exp(-mean).
    const double limit = std::exp(-mean);
    double product = 1.0;
    std::uint64_t count = 0;
    do {
      ++count;
      product *= uniform();
    } while (product > limit);
    return count - 1;
  }
  // Normal approximation with continuity correction; adequate for workload
  // synthesis at high rates.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

Rng Rng::fork(std::uint64_t salt) {
  SplitMix64 sm(next() ^ (salt * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
  Rng child(0);
  for (auto& s : child.s_) s = sm.next();
  return child;
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  TIRESIAS_EXPECT(n > 0, "ZipfSampler requires at least one element");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  // First index whose CDF value exceeds u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] > u) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

double ZipfSampler::pmf(std::size_t i) const {
  TIRESIAS_EXPECT(i < cdf_.size(), "ZipfSampler::pmf index out of range");
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace tiresias
