#include "common/timer.h"

namespace tiresias {

void StageTimer::add(const std::string& stage, double seconds) {
  auto it = byStage_.find(stage);
  if (it == byStage_.end()) {
    order_.push_back(stage);
    it = byStage_.emplace(stage, RunningMoments{}).first;
  }
  it->second.add(seconds);
}

double StageTimer::totalSeconds(const std::string& stage) const {
  auto it = byStage_.find(stage);
  if (it == byStage_.end()) return 0.0;
  return it->second.mean() * static_cast<double>(it->second.count());
}

double StageTimer::totalSeconds() const {
  double total = 0.0;
  for (const auto& name : order_) total += totalSeconds(name);
  return total;
}

double StageTimer::meanSeconds(const std::string& stage) const {
  auto it = byStage_.find(stage);
  return it == byStage_.end() ? 0.0 : it->second.mean();
}

double StageTimer::varianceSeconds(const std::string& stage) const {
  auto it = byStage_.find(stage);
  return it == byStage_.end() ? 0.0 : it->second.variance();
}

std::size_t StageTimer::samples(const std::string& stage) const {
  auto it = byStage_.find(stage);
  return it == byStage_.end() ? 0 : it->second.count();
}

}  // namespace tiresias
