// SIMD primitives for the flat detection kernels.
//
// Every routine here is an *element-wise* double-lane operation whose
// vector form performs exactly the same IEEE-754 operation per element as
// the scalar loop it replaces — no fused multiply-add, no horizontal
// reduction, no reassociation — so the SIMD and scalar paths are
// bit-identical by construction (asserted by tests/simd_kernel_test.cpp
// and, end to end, by the flat-vs-reference property tests that run the
// detectors under both paths). Anything order-dependent (running sums,
// the loop-carried parent accumulation in computeShhhStaged) stays scalar
// in the callers.
//
// Instruction-set selection:
//   - Compile time: AVX2 when the TU is built with -mavx2, else SSE2 on
//     x86-64 (always available), else NEON on aarch64, else plain scalar.
//   - Runtime: on x86-64 builds whose baseline is SSE2, the AVX2 bodies
//     are compiled with a per-function target attribute and dispatched
//     through a table resolved once at static-init (one
//     __builtin_cpu_supports probe) — cheap, branch-predictable, and
//     bit-identity makes the choice unobservable.
//   - TIRESIAS_NO_SIMD forces the scalar bodies everywhere (the CI
//     forced-scalar leg builds the whole tree this way).
//
// forceScalar() flips the dispatch table to the scalar bodies at runtime
// so one test binary can compare both paths; it is test-only and must be
// called while single-threaded.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tiresias::simd {

/// Name of the instruction set the dispatch table currently points at:
/// "avx2", "sse2", "neon", or "scalar".
const char* activeIsa();

/// Test hook: route every primitive through the scalar bodies (true) or
/// restore the best available ISA (false). Returns the previous setting.
/// Not thread-safe — call before spawning workers.
bool forceScalar(bool on);

/// dst[i] += src[i]
void add(double* dst, const double* src, std::size_t n);

/// dst[i] -= src[i]
void sub(double* dst, const double* src, std::size_t n);

/// v[i] *= factor
void scale(double* v, double factor, std::size_t n);

/// v[i] /= divisor (kept as a true division — not a reciprocal multiply —
/// so normalization matches the scalar `r /= total` bit for bit).
void divide(double* v, double divisor, std::size_t n);

/// Epoch-masked accumulate over a stamped plane:
///   dst[i] = stamp[i] == gen ? dst[i] + src[i] : dst[i]
/// The blend keeps the *old* dst bits on masked-out lanes (never adds a
/// signed zero), replicating `if (stamp[i] == gen) dst[i] += src[i];`.
void accumulateStamped(double* dst, const double* src,
                       const std::uint32_t* stamp, std::uint32_t gen,
                       std::size_t n);

/// Epoch-masked gather from a stamped plane (the bulk form of
/// DetectWorkspace::rawOrZero/modifiedOrZero):
///   out[i] = stamp[idx[i]] == gen ? values[idx[i]] : 0.0
/// A pure copy-or-+0.0 — no arithmetic — so it is trivially bit-identical
/// to the scalar stamped read. Every idx[i] must be a valid plane index.
void gatherStampedOrZero(double* out, const double* values,
                         const std::uint32_t* stamp, std::uint32_t gen,
                         const std::uint32_t* idx, std::size_t n);

}  // namespace tiresias::simd
