// Descriptive statistics used throughout measurement and evaluation:
// running moments, quantiles, and the complementary CDF plots of Fig 1.
#pragma once

#include <cstddef>
#include <vector>

namespace tiresias {

/// Welford's online mean/variance accumulator.
class RunningMoments {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean; 0 for an empty range.
double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1); 0 for fewer than two samples.
double stddev(const std::vector<double>& xs);

/// Linear-interpolation quantile, q in [0, 1]. Requires non-empty input.
double quantile(std::vector<double> xs, double q);

/// One (x, y) point of an empirical complementary CDF: y = P(X >= x).
struct CcdfPoint {
  double x;
  double y;
};

/// Empirical CCDF of the sample, evaluated at each distinct sample value
/// (ascending x). Requires non-empty input.
std::vector<CcdfPoint> ccdf(std::vector<double> xs);

/// CCDF downsampled onto logarithmically spaced x values between the
/// smallest positive sample and the maximum — the form plotted in Fig 1.
std::vector<CcdfPoint> ccdfLogBinned(const std::vector<double>& xs,
                                     std::size_t bins);

}  // namespace tiresias
