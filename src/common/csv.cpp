#include "common/csv.h"

#include <fstream>
#include <ostream>

namespace tiresias {

std::string csvEscape(const std::string& field, char sep) {
  const bool needsQuote =
      field.find(sep) != std::string::npos ||
      field.find('"') != std::string::npos ||
      field.find('\n') != std::string::npos ||
      field.find('\r') != std::string::npos;
  if (!needsQuote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string csvJoin(const std::vector<std::string>& fields, char sep) {
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) line += sep;
    line += csvEscape(fields[i], sep);
  }
  return line;
}

std::vector<std::string> csvSplit(const std::string& line, char sep) {
  std::vector<std::string> fields;
  std::string cur;
  bool inQuotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (inQuotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          inQuotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      inQuotes = true;
    } else if (c == sep) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  out_ << csvJoin(fields, sep_) << '\n';
}

bool csvReadFile(const std::string& path,
                 std::vector<std::vector<std::string>>& rows, char sep) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    rows.push_back(csvSplit(line, sep));
  }
  return true;
}

}  // namespace tiresias
