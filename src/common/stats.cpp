#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"

namespace tiresias {

void RunningMoments::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningMoments::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningMoments::stddev() const { return std::sqrt(variance()); }

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sq = 0.0;
  for (double x : xs) sq += (x - m) * (x - m);
  return std::sqrt(sq / static_cast<double>(xs.size() - 1));
}

double quantile(std::vector<double> xs, double q) {
  TIRESIAS_EXPECT(!xs.empty(), "quantile of empty sample");
  TIRESIAS_EXPECT(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= xs.size()) return xs.back();
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

std::vector<CcdfPoint> ccdf(std::vector<double> xs) {
  TIRESIAS_EXPECT(!xs.empty(), "ccdf of empty sample");
  std::sort(xs.begin(), xs.end());
  std::vector<CcdfPoint> out;
  const double n = static_cast<double>(xs.size());
  std::size_t i = 0;
  while (i < xs.size()) {
    std::size_t j = i;
    while (j < xs.size() && xs[j] == xs[i]) ++j;
    // P(X >= xs[i]) = (count of samples at index >= i) / n.
    out.push_back({xs[i], static_cast<double>(xs.size() - i) / n});
    i = j;
  }
  return out;
}

std::vector<CcdfPoint> ccdfLogBinned(const std::vector<double>& xs,
                                     std::size_t bins) {
  TIRESIAS_EXPECT(bins >= 2, "need at least two bins");
  const auto full = ccdf(xs);
  double minPos = 0.0;
  for (const auto& p : full) {
    if (p.x > 0.0) {
      minPos = p.x;
      break;
    }
  }
  const double maxX = full.back().x;
  if (minPos <= 0.0 || maxX <= minPos) return full;
  std::vector<CcdfPoint> out;
  const double logLo = std::log10(minPos);
  const double logHi = std::log10(maxX);
  for (std::size_t b = 0; b < bins; ++b) {
    const double x = std::pow(
        10.0, logLo + (logHi - logLo) * static_cast<double>(b) /
                          static_cast<double>(bins - 1));
    // CCDF value at the largest sample value <= x (step function).
    double y = 1.0;
    for (const auto& p : full) {
      if (p.x > x) break;
      y = p.y;
    }
    out.push_back({x, y});
  }
  return out;
}

}  // namespace tiresias
