#include "common/timeutil.h"

#include <cstdio>

namespace tiresias {

std::string formatTimestamp(Timestamp t) {
  const Timestamp day = timeUnitOf(t, kDay);
  const Duration sod = secondOfDay(t);
  char buf[64];
  std::snprintf(buf, sizeof buf, "day%+lld %02lld:%02lld:%02lld",
                static_cast<long long>(day),
                static_cast<long long>(sod / kHour),
                static_cast<long long>((sod % kHour) / kMinute),
                static_cast<long long>(sod % kMinute));
  return buf;
}

}  // namespace tiresias
