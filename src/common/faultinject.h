// Deterministic fault injection for the serving surface's I/O layer.
//
// Chaos tests need real failure modes — short reads, EINTR storms,
// accept() running out of descriptors, mid-frame disconnects, stalled
// peers — on demand and *reproducibly*, or a flake is indistinguishable
// from a bug. This harness sits at the three syscall-adjacent points in
// net/tcp.cpp (recv, send, accept) and answers one question per call:
// "should this operation fail right now, and how?" from a seeded RNG, so
// the same plan + seed replays the same fault sequence on a
// single-threaded driver.
//
// Usage:
//   faultinject::arm("seed=7,disconnect=0.02,short-read=0.3", &err);
//   ... run traffic; decide() fires at the armed probabilities ...
//   faultinject::disarm();
//
// Plan grammar (comma-separated key=value, probabilities in [0, 1]):
//   seed=N           RNG seed (default 1)
//   short-read=P     recv delivers exactly 1 byte
//   short-write=P    send pushes exactly 1 byte
//   eintr=P          the call is "interrupted": the caller must re-poll
//                    (storms are bounded by the caller's deadline)
//   disconnect=P     the connection drops on the spot (recv and send)
//   accept-fail=P    accept() fails as if out of descriptors (EMFILE)
//   stall=P:MS       the peer stalls: the call sleeps MS ms, then proceeds
//
// Disarmed cost is one relaxed atomic load per I/O call — the hooks are
// in cold syscall wrappers, so the serving hot path is unaffected; the
// BENCH_engine socket_ingest section keeps that honest. Building with
// TIRESIAS_NO_FAULTINJECT compiles the whole harness to constant no-ops
// (the TIRESIAS_NO_SIMD idiom) for deployments that want the code gone.
#pragma once

#include <cstdint>
#include <string>

namespace tiresias::faultinject {

/// Where in the I/O layer a decision is being made.
enum class Point : std::uint8_t { kRecv = 0, kSend, kAccept };

/// What decide() told the hook to do. At most one fault fires per call
/// except kStall, which is drawn independently (a stalled peer can also
/// be the one that disconnects).
struct Decision {
  enum class Kind : std::uint8_t {
    kNone = 0,
    kShortIo,     // transfer exactly 1 byte this call
    kEintr,       // pretend the syscall was interrupted; re-poll
    kDisconnect,  // drop the connection now
    kAcceptFail,  // accept fails with EMFILE
  };
  Kind kind = Kind::kNone;
  int stallMs = 0;  // > 0: sleep this long first (independent of kind)
};

#if defined(TIRESIAS_NO_FAULTINJECT)

inline bool arm(const std::string&, std::string* error = nullptr) {
  if (error != nullptr) *error = "fault injection compiled out";
  return false;
}
inline void disarm() {}
inline constexpr bool armed() { return false; }
inline constexpr std::uint64_t injectedCount() { return 0; }
inline constexpr Decision decide(Point) { return {}; }

#else

/// Parse `plan` and start injecting. Replaces any previous plan. False
/// (with `*error` set) on a malformed plan, leaving the previous state
/// untouched.
bool arm(const std::string& plan, std::string* error = nullptr);

/// Stop injecting. The injected-fault counter survives (it is a
/// cumulative run statistic, not plan state).
void disarm();

bool armed();

/// Faults injected since process start (stalls count too).
std::uint64_t injectedCount();

/// One draw at `point`. Always Kind::kNone while disarmed.
Decision decide(Point point);

#endif  // TIRESIAS_NO_FAULTINJECT

}  // namespace tiresias::faultinject
