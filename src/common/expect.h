// Precondition / invariant checking.
//
// Follows the Core Guidelines' I.5/I.6 spirit: interfaces state their
// preconditions and violations fail fast with a useful message. Checks are
// always on — the library is dominated by streaming arithmetic, and these
// guards sit on cold setup paths or amortized O(1) hot paths where a
// predictable branch costs nothing measurable.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace tiresias {

[[noreturn]] inline void expectFail(const char* cond, const char* file,
                                    int line, const char* msg) {
  std::fprintf(stderr, "tiresias: precondition failed: %s\n  at %s:%d\n  %s\n",
               cond, file, line, msg);
  std::abort();
}

}  // namespace tiresias

#define TIRESIAS_EXPECT(cond, msg)                                     \
  do {                                                                 \
    if (!(cond)) ::tiresias::expectFail(#cond, __FILE__, __LINE__, msg); \
  } while (0)
