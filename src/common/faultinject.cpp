#include "common/faultinject.h"

#if !defined(TIRESIAS_NO_FAULTINJECT)

#include <atomic>
#include <cstdlib>
#include <mutex>

namespace tiresias::faultinject {

namespace {

/// Probabilities are stored in parts-per-million so the draw is one
/// 64-bit modulo against a deterministic integer stream — no floating
/// point in the decision path.
constexpr std::uint64_t kPpmScale = 1'000'000;

struct Plan {
  std::uint64_t seed = 1;
  std::uint64_t shortReadPpm = 0;
  std::uint64_t shortWritePpm = 0;
  std::uint64_t eintrPpm = 0;
  std::uint64_t disconnectPpm = 0;
  std::uint64_t acceptFailPpm = 0;
  std::uint64_t stallPpm = 0;
  int stallMs = 0;
};

std::atomic<bool> gArmed{false};
std::atomic<std::uint64_t> gInjected{0};
std::mutex gMu;  // guards gPlan + gRng; taken only while armed
Plan gPlan;
std::uint64_t gRng = 1;

/// splitmix64: full-period, seedable, and cheap. Each call advances the
/// shared state under gMu, so a single-threaded driver sees one fixed
/// sequence per seed.
std::uint64_t nextDraw() {
  gRng += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = gRng;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

bool hit(std::uint64_t ppm) { return ppm > 0 && nextDraw() % kPpmScale < ppm; }

/// "0.25" -> 250000 ppm. Full-field parse; [0, 1] only.
bool parsePpm(const std::string& text, std::uint64_t& out) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || text.empty() || v < 0.0 ||
      v > 1.0) {
    return false;
  }
  out = static_cast<std::uint64_t>(v * static_cast<double>(kPpmScale) + 0.5);
  return true;
}

bool parseU64(const std::string& text, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || text.empty()) return false;
  out = v;
  return true;
}

bool parsePlan(const std::string& plan, Plan& out, std::string& error) {
  std::size_t pos = 0;
  while (pos < plan.size()) {
    std::size_t comma = plan.find(',', pos);
    if (comma == std::string::npos) comma = plan.size();
    const std::string item = plan.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      error = "'" + item + "' is not key=value";
      return false;
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    bool ok = true;
    if (key == "seed") {
      ok = parseU64(value, out.seed);
    } else if (key == "short-read") {
      ok = parsePpm(value, out.shortReadPpm);
    } else if (key == "short-write") {
      ok = parsePpm(value, out.shortWritePpm);
    } else if (key == "eintr") {
      ok = parsePpm(value, out.eintrPpm);
    } else if (key == "disconnect") {
      ok = parsePpm(value, out.disconnectPpm);
    } else if (key == "accept-fail") {
      ok = parsePpm(value, out.acceptFailPpm);
    } else if (key == "stall") {
      // P:MS — a probability alone stalls 10ms.
      const std::size_t colon = value.find(':');
      std::uint64_t ms = 10;
      ok = parsePpm(value.substr(0, colon), out.stallPpm);
      if (ok && colon != std::string::npos) {
        ok = parseU64(value.substr(colon + 1), ms) && ms <= 60'000;
      }
      out.stallMs = static_cast<int>(ms);
    } else {
      error = "unknown key '" + key + "'";
      return false;
    }
    if (!ok) {
      error = "bad value '" + value + "' for " + key;
      return false;
    }
  }
  return true;
}

}  // namespace

bool arm(const std::string& plan, std::string* error) {
  Plan parsed;
  std::string why;
  if (!parsePlan(plan, parsed, why)) {
    if (error != nullptr) *error = why;
    return false;
  }
  std::lock_guard lk(gMu);
  gPlan = parsed;
  gRng = parsed.seed;
  gArmed.store(true, std::memory_order_release);
  return true;
}

void disarm() { gArmed.store(false, std::memory_order_release); }

bool armed() { return gArmed.load(std::memory_order_acquire); }

std::uint64_t injectedCount() {
  return gInjected.load(std::memory_order_relaxed);
}

Decision decide(Point point) {
  Decision d;
  if (!gArmed.load(std::memory_order_acquire)) return d;
  std::lock_guard lk(gMu);
  switch (point) {
    case Point::kAccept:
      if (hit(gPlan.acceptFailPpm)) d.kind = Decision::Kind::kAcceptFail;
      break;
    case Point::kRecv:
    case Point::kSend:
      // First match wins; the draws happen unconditionally so the
      // sequence of RNG states is a function of the call sequence alone,
      // not of which faults fired.
      if (hit(gPlan.disconnectPpm)) {
        d.kind = Decision::Kind::kDisconnect;
      }
      if (hit(point == Point::kRecv ? gPlan.shortReadPpm
                                    : gPlan.shortWritePpm) &&
          d.kind == Decision::Kind::kNone) {
        d.kind = Decision::Kind::kShortIo;
      }
      if (hit(gPlan.eintrPpm) && d.kind == Decision::Kind::kNone) {
        d.kind = Decision::Kind::kEintr;
      }
      if (hit(gPlan.stallPpm)) d.stallMs = gPlan.stallMs;
      break;
  }
  if (d.kind != Decision::Kind::kNone || d.stallMs > 0) {
    gInjected.fetch_add(1, std::memory_order_relaxed);
  }
  return d;
}

}  // namespace tiresias::faultinject

#endif  // !TIRESIAS_NO_FAULTINJECT
