#include "common/simd.h"

#if !defined(TIRESIAS_NO_SIMD) && defined(__x86_64__)
#define TIRESIAS_SIMD_X86 1
#include <immintrin.h>
#elif !defined(TIRESIAS_NO_SIMD) && defined(__ARM_NEON) && \
    defined(__aarch64__)
#define TIRESIAS_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace tiresias::simd {
namespace {

// ---------------------------------------------------------------------
// Scalar bodies — the semantic reference every vector body must match
// bit for bit. Also the only bodies under TIRESIAS_NO_SIMD.
// ---------------------------------------------------------------------

void addScalar(double* dst, const double* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void subScalar(double* dst, const double* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] -= src[i];
}

void scaleScalar(double* v, double factor, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) v[i] *= factor;
}

void divideScalar(double* v, double divisor, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) v[i] /= divisor;
}

void accumulateStampedScalar(double* dst, const double* src,
                             const std::uint32_t* stamp, std::uint32_t gen,
                             std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (stamp[i] == gen) dst[i] += src[i];
  }
}

void gatherStampedOrZeroScalar(double* out, const double* values,
                               const std::uint32_t* stamp, std::uint32_t gen,
                               const std::uint32_t* idx, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t j = idx[i];
    out[i] = stamp[j] == gen ? values[j] : 0.0;
  }
}

struct Ops {
  void (*add)(double*, const double*, std::size_t);
  void (*sub)(double*, const double*, std::size_t);
  void (*scale)(double*, double, std::size_t);
  void (*divide)(double*, double, std::size_t);
  void (*accumulateStamped)(double*, const double*, const std::uint32_t*,
                            std::uint32_t, std::size_t);
  void (*gatherStampedOrZero)(double*, const double*, const std::uint32_t*,
                              std::uint32_t, const std::uint32_t*,
                              std::size_t);
  const char* name;
};

constexpr Ops kScalarOps = {addScalar,
                            subScalar,
                            scaleScalar,
                            divideScalar,
                            accumulateStampedScalar,
                            gatherStampedOrZeroScalar,
                            "scalar"};

#if defined(TIRESIAS_SIMD_X86)

// ---------------------------------------------------------------------
// SSE2 — the x86-64 baseline: 2 doubles per op. No blendv before SSE4.1,
// so masked lanes merge through and/andnot, which preserves the exact old
// dst bits on masked-out lanes just like the scalar `if`.
// ---------------------------------------------------------------------

void addSse2(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(dst + i,
                  _mm_add_pd(_mm_loadu_pd(dst + i), _mm_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void subSse2(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(dst + i,
                  _mm_sub_pd(_mm_loadu_pd(dst + i), _mm_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] -= src[i];
}

void scaleSse2(double* v, double factor, std::size_t n) {
  const __m128d f = _mm_set1_pd(factor);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(v + i, _mm_mul_pd(_mm_loadu_pd(v + i), f));
  }
  for (; i < n; ++i) v[i] *= factor;
}

void divideSse2(double* v, double divisor, std::size_t n) {
  const __m128d d = _mm_set1_pd(divisor);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(v + i, _mm_div_pd(_mm_loadu_pd(v + i), d));
  }
  for (; i < n; ++i) v[i] /= divisor;
}

void accumulateStampedSse2(double* dst, const double* src,
                           const std::uint32_t* stamp, std::uint32_t gen,
                           std::size_t n) {
  const __m128i vgen = _mm_set1_epi32(static_cast<int>(gen));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // Two u32 stamps in the low half; compare, then widen each 32-bit
    // all-ones/zeros lane to 64 bits by pairing it with itself.
    __m128i m32 = _mm_cmpeq_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(stamp + i)), vgen);
    const __m128d mask = _mm_castsi128_pd(_mm_unpacklo_epi32(m32, m32));
    const __m128d d = _mm_loadu_pd(dst + i);
    const __m128d sum = _mm_add_pd(d, _mm_loadu_pd(src + i));
    _mm_storeu_pd(dst + i, _mm_or_pd(_mm_and_pd(mask, sum),
                                     _mm_andnot_pd(mask, d)));
  }
  for (; i < n; ++i) {
    if (stamp[i] == gen) dst[i] += src[i];
  }
}

// ---------------------------------------------------------------------
// AVX2 — 4 doubles per op. Compiled with a per-function target attribute
// so the default (SSE2-baseline) build can still carry these bodies and
// select them at runtime on AVX2 hardware.
// ---------------------------------------------------------------------

#if defined(__AVX2__)
#define TIRESIAS_TARGET_AVX2
#else
#define TIRESIAS_TARGET_AVX2 __attribute__((target("avx2")))
#endif

TIRESIAS_TARGET_AVX2
void addAvx2(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

TIRESIAS_TARGET_AVX2
void subAvx2(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_sub_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] -= src[i];
}

TIRESIAS_TARGET_AVX2
void scaleAvx2(double* v, double factor, std::size_t n) {
  const __m256d f = _mm256_set1_pd(factor);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(v + i, _mm256_mul_pd(_mm256_loadu_pd(v + i), f));
  }
  for (; i < n; ++i) v[i] *= factor;
}

TIRESIAS_TARGET_AVX2
void divideAvx2(double* v, double divisor, std::size_t n) {
  const __m256d d = _mm256_set1_pd(divisor);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(v + i, _mm256_div_pd(_mm256_loadu_pd(v + i), d));
  }
  for (; i < n; ++i) v[i] /= divisor;
}

TIRESIAS_TARGET_AVX2
void accumulateStampedAvx2(double* dst, const double* src,
                           const std::uint32_t* stamp, std::uint32_t gen,
                           std::size_t n) {
  const __m128i vgen = _mm_set1_epi32(static_cast<int>(gen));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i m32 = _mm_cmpeq_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(stamp + i)), vgen);
    // Sign-extend the 32-bit all-ones/zeros lanes to 64-bit lane masks.
    const __m256d mask = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(m32));
    const __m256d d = _mm256_loadu_pd(dst + i);
    const __m256d sum = _mm256_add_pd(d, _mm256_loadu_pd(src + i));
    _mm256_storeu_pd(dst + i, _mm256_blendv_pd(d, sum, mask));
  }
  for (; i < n; ++i) {
    if (stamp[i] == gen) dst[i] += src[i];
  }
}

TIRESIAS_TARGET_AVX2
void gatherStampedOrZeroAvx2(double* out, const double* values,
                             const std::uint32_t* stamp, std::uint32_t gen,
                             const std::uint32_t* idx, std::size_t n) {
  const __m128i vgen = _mm_set1_epi32(static_cast<int>(gen));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vidx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    const __m128i stamps = _mm_i32gather_epi32(
        reinterpret_cast<const int*>(stamp), vidx, 4);
    const __m256d mask =
        _mm256_castsi256_pd(_mm256_cvtepi32_epi64(_mm_cmpeq_epi32(stamps,
                                                                  vgen)));
    // Unconditional gather is safe (every idx is a valid plane index, the
    // planes are always initialized); the mask then zeroes stale lanes.
    // and_pd with an all-zero lane yields exactly +0.0, matching the
    // scalar ternary's literal 0.0.
    const __m256d vals = _mm256_i32gather_pd(values, vidx, 8);
    _mm256_storeu_pd(out + i, _mm256_and_pd(vals, mask));
  }
  for (; i < n; ++i) {
    const std::uint32_t j = idx[i];
    out[i] = stamp[j] == gen ? values[j] : 0.0;
  }
}

constexpr Ops kSse2Ops = {addSse2,
                          subSse2,
                          scaleSse2,
                          divideSse2,
                          accumulateStampedSse2,
                          gatherStampedOrZeroScalar,  // no gather before AVX2
                          "sse2"};

constexpr Ops kAvx2Ops = {addAvx2,
                          subAvx2,
                          scaleAvx2,
                          divideAvx2,
                          accumulateStampedAvx2,
                          gatherStampedOrZeroAvx2,
                          "avx2"};

#elif defined(TIRESIAS_SIMD_NEON)

// ---------------------------------------------------------------------
// NEON (aarch64) — 2 doubles per op; bsl gives the lane select. There is
// no NEON gather, so the stamped gather stays scalar.
// ---------------------------------------------------------------------

void addNeon(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(dst + i, vaddq_f64(vld1q_f64(dst + i), vld1q_f64(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void subNeon(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(dst + i, vsubq_f64(vld1q_f64(dst + i), vld1q_f64(src + i)));
  }
  for (; i < n; ++i) dst[i] -= src[i];
}

void scaleNeon(double* v, double factor, std::size_t n) {
  const float64x2_t f = vdupq_n_f64(factor);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(v + i, vmulq_f64(vld1q_f64(v + i), f));
  }
  for (; i < n; ++i) v[i] *= factor;
}

void divideNeon(double* v, double divisor, std::size_t n) {
  const float64x2_t d = vdupq_n_f64(divisor);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(v + i, vdivq_f64(vld1q_f64(v + i), d));
  }
  for (; i < n; ++i) v[i] /= divisor;
}

void accumulateStampedNeon(double* dst, const double* src,
                           const std::uint32_t* stamp, std::uint32_t gen,
                           std::size_t n) {
  const uint32x2_t vgen = vdup_n_u32(gen);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t mask = vmovl_u32(vceq_u32(vld1_u32(stamp + i), vgen));
    const float64x2_t d = vld1q_f64(dst + i);
    const float64x2_t sum = vaddq_f64(d, vld1q_f64(src + i));
    vst1q_f64(dst + i, vbslq_f64(mask, sum, d));
  }
  for (; i < n; ++i) {
    if (stamp[i] == gen) dst[i] += src[i];
  }
}

constexpr Ops kNeonOps = {addNeon,
                          subNeon,
                          scaleNeon,
                          divideNeon,
                          accumulateStampedNeon,
                          gatherStampedOrZeroScalar,
                          "neon"};

#endif  // ISA blocks

const Ops& bestOps() {
#if defined(TIRESIAS_SIMD_X86)
#if defined(__AVX2__)
  return kAvx2Ops;
#else
  return __builtin_cpu_supports("avx2") ? kAvx2Ops : kSse2Ops;
#endif
#elif defined(TIRESIAS_SIMD_NEON)
  return kNeonOps;
#else
  return kScalarOps;
#endif
}

/// Active dispatch table. Written only by forceScalar (single-threaded
/// test setup per the header contract); every primitive reads it.
const Ops* g_ops = &bestOps();

}  // namespace

const char* activeIsa() { return g_ops->name; }

bool forceScalar(bool on) {
  const bool was = g_ops == &kScalarOps;
  g_ops = on ? &kScalarOps : &bestOps();
  return was;
}

void add(double* dst, const double* src, std::size_t n) {
  g_ops->add(dst, src, n);
}

void sub(double* dst, const double* src, std::size_t n) {
  g_ops->sub(dst, src, n);
}

void scale(double* v, double factor, std::size_t n) {
  g_ops->scale(v, factor, n);
}

void divide(double* v, double divisor, std::size_t n) {
  g_ops->divide(v, divisor, n);
}

void accumulateStamped(double* dst, const double* src,
                       const std::uint32_t* stamp, std::uint32_t gen,
                       std::size_t n) {
  g_ops->accumulateStamped(dst, src, stamp, gen, n);
}

void gatherStampedOrZero(double* out, const double* values,
                         const std::uint32_t* stamp, std::uint32_t gen,
                         const std::uint32_t* idx, std::size_t n) {
  g_ops->gatherStampedOrZero(out, values, stamp, gen, idx, n);
}

}  // namespace tiresias::simd
