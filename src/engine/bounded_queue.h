// Bounded MPMC work queue for the detection engine.
//
// A fixed-capacity FIFO, safe for any number of producers and consumers,
// with blocking push (backpressure: a producer that outruns its consumers
// parks until space frees up), non-blocking tryPush, and blocking pop.
// close() wakes everyone; pushes after close are refused, and pops either
// drain whatever is still queued before reporting end-of-stream (kDrain,
// the graceful path) or stop immediately with the backlog dropped
// (kDiscard, early shutdown). Depth high-water mark, blocked-push and
// discarded-item counts feed EngineStats so operators can see where the
// system is saturated.
//
// The engine::Scheduler uses it in the full MPMC role as its ready queue:
// producer threads and workers both push (initial schedule / requeue),
// workers pop, and shutdown rides on the close/discard semantics.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "common/expect.h"

namespace tiresias::engine {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    TIRESIAS_EXPECT(capacity > 0, "queue capacity must be positive");
  }

  /// Enqueue, blocking while the queue is full. Returns false (dropping
  /// the item) iff the queue was closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    if (queue_.size() >= capacity_ && !closed_) {
      ++blockedPushes_;
      notFull_.wait(lock,
                    [&] { return queue_.size() < capacity_ || closed_; });
    }
    if (closed_) return false;
    queue_.push_back(std::move(item));
    if (queue_.size() > maxDepth_) maxDepth_ = queue_.size();
    notEmpty_.notify_one();
    return true;
  }

  enum class PushResult { kOk, kFull, kClosed };

  /// Non-blocking enqueue: kFull instead of parking when at capacity.
  PushResult tryPush(T item) {
    std::lock_guard lock(mutex_);
    if (closed_) return PushResult::kClosed;
    if (queue_.size() >= capacity_) return PushResult::kFull;
    queue_.push_back(std::move(item));
    if (queue_.size() > maxDepth_) maxDepth_ = queue_.size();
    notEmpty_.notify_one();
    return PushResult::kOk;
  }

  /// Dequeue, blocking while empty. nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    notEmpty_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    notFull_.notify_one();
    return item;
  }

  enum class CloseMode {
    kDrain,    // queued items remain poppable (graceful end of stream)
    kDiscard,  // queued items are dropped; pop() reports end immediately
  };

  /// Refuse further pushes and wake all waiters. In kDrain mode queued
  /// items remain poppable; in kDiscard mode they are dropped on the floor
  /// (counted in discardedItems()) so consumers stop without touching the
  /// backlog — the early-shutdown path. Idempotent; a later kDiscard close
  /// still discards whatever is queued.
  void close(CloseMode mode = CloseMode::kDrain) {
    std::lock_guard lock(mutex_);
    closed_ = true;
    if (mode == CloseMode::kDiscard) {
      discarded_ += queue_.size();
      queue_.clear();
    }
    notFull_.notify_all();
    notEmpty_.notify_all();
  }

  std::size_t depth() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }
  std::size_t maxDepth() const {
    std::lock_guard lock(mutex_);
    return maxDepth_;
  }
  /// Pushes that had to wait for space (backpressure events).
  std::size_t blockedPushes() const {
    std::lock_guard lock(mutex_);
    return blockedPushes_;
  }
  /// Items dropped by close(kDiscard).
  std::size_t discardedItems() const {
    std::lock_guard lock(mutex_);
    return discarded_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable notFull_, notEmpty_;
  std::deque<T> queue_;
  bool closed_ = false;
  std::size_t maxDepth_ = 0;
  std::size_t blockedPushes_ = 0;
  std::size_t discarded_ = 0;
};

}  // namespace tiresias::engine
