// DetectionEngine — concurrent multi-stream detection (the operational
// deployment the paper describes: continuous detection over many
// independent operational streams — per-dataset, per-region, per-hierarchy
// — on shared hardware).
//
// Architecture: a task-scheduled executor (engine::Scheduler). Each stream
// (a RecordSource paired with its own Hierarchy + TiresiasPipeline) owns a
// FIFO queue of timeunits; two thread pools, sized independently, move
// work through it:
//
//   ingest pool  — `ingestThreads` threads; streams are partitioned
//                  statically across them (one producer per stream keeps
//                  source order). Each thread sweeps its streams
//                  round-robin, batching one timeunit per stream per sweep
//                  (Step 1, TimeUnitBatcher over RecordSource::nextBatch)
//                  into the stream's queue. A stream whose queue is full —
//                  or a global queued-unit bound — makes the thread skip
//                  or park (backpressure), so memory stays bounded no
//                  matter how fast sources produce or how many streams are
//                  registered.
//   worker pool  — `workers` threads sharing the scheduler's ready queue.
//                  A worker claims a ready stream, advances its pipeline
//                  by at most `runBudget` units via
//                  TiresiasPipeline::processUnit, requeues it if backlog
//                  remains, and recycles batch buffers back to ingest
//                  (steady-state batching allocates nothing).
//
// A stream is owned by at most one worker at a time and its units arrive
// in source order, so an M-worker run is bit-identical to M=1 and to k
// sequential TiresiasPipeline::run calls (the equivalence the engine test
// asserts) — while a heavy or bursty stream can no longer stall streams
// that previously shared its shard, and thread count is decoupled from
// stream count. Results are delivered to a user sink tagged with the
// stream name; report::ConcurrentAnomalyStore is the ready-made
// thread-safe sink.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "engine/scheduler.h"
#include "stream/window.h"

namespace tiresias::engine {

struct EngineConfig {
  /// Worker pool size. 0 = one per hardware thread.
  std::size_t workers = 0;
  /// Ingest pool size; decoupled from `workers` (sources are usually far
  /// cheaper to batch than pipelines are to advance).
  std::size_t ingestThreads = 1;
  /// Max units a worker advances one stream by before requeueing it.
  std::size_t runBudget = 8;
  /// Per-stream queue bound, in timeunits. Smaller values bound memory
  /// tighter but trigger backpressure earlier.
  std::size_t streamQueueCapacity = 16;
  /// Global bound on queued units across all streams (the memory cap that
  /// holds no matter how many streams are registered).
  std::size_t totalQueueCapacity = 1024;
};

/// Live counters of one stream (a snapshot; the engine keeps atomics and
/// the scheduler's per-stream bookkeeping).
struct StreamStats {
  std::string name;
  std::size_t unitsIngested = 0;     // units pushed into the stream queue
  std::size_t unitsProcessed = 0;    // units consumed by the pipeline
  std::size_t unitsDiscarded = 0;    // units dropped by stop()
  std::size_t recordsProcessed = 0;
  std::size_t instancesDetected = 0;
  std::size_t anomaliesReported = 0;
  std::size_t junkRowsSkipped = 0;   // source-side skipped rows (CSV junk)
  std::size_t warmupUnitsBuffered = 0;  // units held in pipeline warm-up
  std::size_t queueDepth = 0;        // current
  std::size_t maxQueueDepth = 0;     // high-water mark
  std::size_t runs = 0;              // worker claims of this stream
  std::size_t requeues = 0;          // claims that left backlog behind
};

struct EngineStats {
  std::vector<StreamStats> perStream;
  /// Executor-level counters (ready-queue depth, claims, requeues,
  /// global queued units, producer backpressure waits).
  SchedulerStats scheduler;
  std::size_t ingestThreads = 0;
  // Aggregates over all streams:
  std::size_t streams = 0;
  std::size_t unitsIngested = 0;
  std::size_t unitsProcessed = 0;
  std::size_t unitsDiscarded = 0;
  std::size_t recordsProcessed = 0;
  std::size_t instancesDetected = 0;
  std::size_t anomaliesReported = 0;
  std::size_t junkRowsSkipped = 0;
  /// Units absorbed by pipelines still in warm-up (streams shorter than
  /// the detector window never leave warm-up and report zero instances).
  std::size_t warmupUnitsBuffered = 0;
  std::size_t maxQueueDepth = 0;      // max over per-stream high-water marks
  std::size_t backpressureWaits = 0;  // == scheduler.backpressureWaits
  /// Units processed by the busiest stream, and its share of the total —
  /// 1/streams for a perfectly even mix, approaching 1.0 under heavy skew.
  std::size_t busiestStreamUnits = 0;
  double busiestStreamShare = 0.0;
  /// Wall-clock seconds from start() until now (or until drain finished).
  double elapsedSeconds = 0.0;
  /// recordsProcessed / elapsedSeconds.
  double recordsPerSecond = 0.0;

  /// Queue lag: units ingested but not yet processed (nor discarded).
  std::size_t queueLagUnits() const {
    const std::size_t done = unitsProcessed + unitsDiscarded;
    return unitsIngested > done ? unitsIngested - done : 0;
  }
};

class DetectionEngine {
 public:
  /// Result delivery, called from worker threads (concurrently across
  /// streams — the sink must be thread-safe; ConcurrentAnomalyStore::sink()
  /// qualifies). May be null to discard results.
  using ResultSink =
      std::function<void(const std::string& stream, const InstanceResult&)>;

  DetectionEngine(EngineConfig config, ResultSink sink);
  /// Stops and joins outstanding threads.
  ~DetectionEngine();

  DetectionEngine(const DetectionEngine&) = delete;
  DetectionEngine& operator=(const DetectionEngine&) = delete;

  /// Register a stream before start(). The hierarchy must outlive the
  /// engine (the pipeline keeps a reference); the source is owned.
  /// Returns the stream id (dense, in registration order).
  std::size_t addStream(std::string name, const Hierarchy& hierarchy,
                        PipelineConfig config,
                        std::unique_ptr<RecordSource> source);

  std::size_t streamCount() const { return streams_.size(); }
  const std::string& streamName(std::size_t id) const;

  /// Launch the worker + ingest pools. Call once, after all addStream.
  void start();

  /// Block until every source is exhausted and every queue is drained,
  /// then stop the pools. Returns the final stats.
  EngineStats drain();

  /// Early shutdown: stop ingesting, discard queued work (the dropped
  /// units are counted in EngineStats::unitsDiscarded, not processed),
  /// join. Safe to call repeatedly or after drain().
  void stop();

  /// Live (or final) counters. Thread-safe: may be polled from any thread
  /// while the pools run, including concurrently with drain()/stop().
  EngineStats stats() const;

  /// A stream's cumulative pipeline summary (with the ingest-side junk-row
  /// count folded in). Must be called after drain()/stop() — calling it
  /// while the pools run would race the owning worker's pipeline, so it
  /// fails fast instead.
  RunSummary streamSummary(std::size_t id) const;

 private:
  struct StreamState;

  void ingestLoop(std::size_t threadIndex);
  /// Worker-side unit processor (serialized per stream by the scheduler).
  void processOne(std::size_t id, TimeUnitBatch& batch);

  std::vector<Record> takeRecycled();
  void recycleBuffer(std::vector<Record>&& buf);

  EngineConfig config_;
  ResultSink sink_;
  std::vector<std::unique_ptr<StreamState>> streams_;
  std::unique_ptr<Scheduler> scheduler_;
  std::vector<std::thread> ingestPool_;
  std::atomic<bool> started_{false};
  std::atomic<bool> joined_{false};  // pools stopped; summaries are stable
  std::atomic<bool> stopRequested_{false};
  /// Serializes drain()/stop() against each other (they may be issued
  /// from different threads; the joins must not interleave). Note a
  /// stop() issued while drain() is blocked joining waits for the drain
  /// to finish — it cannot interrupt it.
  std::mutex controlMutex_;

  // Record buffers cycle ingest -> stream queue -> worker -> back to
  // ingest, so steady-state batching allocates nothing. Bounded: the pool
  // never holds more than what can be in flight.
  std::mutex recycleMutex_;
  std::vector<std::vector<Record>> recycle_;
  std::size_t recycleCap_ = 0;

  // Timing is read by concurrent stats() pollers while drain()/stop()
  // finalize it, so both values live in atomics (nanoseconds on the
  // steady clock). finalElapsedNs_ < 0 means "still running".
  std::atomic<std::int64_t> startNs_{0};
  std::atomic<std::int64_t> finalElapsedNs_{-1};
};

}  // namespace tiresias::engine
