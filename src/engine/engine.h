// DetectionEngine — concurrent multi-stream detection (the operational
// deployment the paper describes: continuous detection over many
// independent operational streams — per-dataset, per-region, per-hierarchy
// — on shared hardware).
//
// Architecture: the engine owns N *shards*. Each stream (a RecordSource
// paired with its own Hierarchy + TiresiasPipeline) is assigned
// round-robin to a shard. Per shard there are two threads:
//
//   ingest  — batches each of the shard's sources into timeunits
//             (Step 1, TimeUnitBatcher over RecordSource::nextBatch, so
//             the per-record path is non-virtual) and pushes them into the
//             shard's bounded queue; a full queue blocks the producer
//             (backpressure), so memory stays bounded no matter how fast
//             sources produce.
//   worker  — pops batches FIFO, advances the owning stream's pipeline
//             via TiresiasPipeline::processUnit, and recycles the batch
//             buffer back to ingest (steady-state batching allocates
//             nothing).
//
// Every stream's pipeline is touched by exactly one worker, and its units
// arrive in source order, so an N-shard run is bit-identical to N=1 and to
// k sequential TiresiasPipeline::run calls (the equivalence the engine
// test asserts). Results are delivered to a user sink tagged with the
// stream name; report::ConcurrentAnomalyStore is the ready-made
// thread-safe sink.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "engine/bounded_queue.h"
#include "stream/window.h"

namespace tiresias::engine {

struct EngineConfig {
  /// Number of shards == size of each of the two thread pools. Streams
  /// beyond `shards` multiplex onto existing shards round-robin.
  std::size_t shards = 1;
  /// Per-shard ingest queue capacity, in timeunit batches. Smaller values
  /// bound memory tighter but trigger backpressure earlier.
  std::size_t queueCapacity = 64;
};

/// Live counters of one shard (a snapshot; the engine keeps atomics).
struct ShardStats {
  std::size_t streams = 0;
  std::size_t unitsIngested = 0;     // batches pushed into the queue
  std::size_t unitsProcessed = 0;    // batches consumed by the pipeline
  std::size_t unitsDiscarded = 0;    // batches dropped by stop()
  std::size_t recordsProcessed = 0;
  std::size_t instancesDetected = 0;
  std::size_t anomaliesReported = 0;
  std::size_t junkRowsSkipped = 0;   // source-side skipped rows (CSV junk)
  std::size_t warmupUnitsBuffered = 0;  // units held in pipeline warm-up
  std::size_t queueDepth = 0;        // current
  std::size_t maxQueueDepth = 0;     // high-water mark
  std::size_t backpressureWaits = 0; // pushes that blocked on a full queue
};

struct EngineStats {
  std::vector<ShardStats> shards;
  // Aggregates over all shards:
  std::size_t streams = 0;
  std::size_t unitsIngested = 0;
  std::size_t unitsProcessed = 0;
  std::size_t unitsDiscarded = 0;
  std::size_t recordsProcessed = 0;
  std::size_t instancesDetected = 0;
  std::size_t anomaliesReported = 0;
  std::size_t junkRowsSkipped = 0;
  /// Units absorbed by pipelines still in warm-up (streams shorter than
  /// the detector window never leave warm-up and report zero instances).
  std::size_t warmupUnitsBuffered = 0;
  std::size_t maxQueueDepth = 0;
  std::size_t backpressureWaits = 0;
  /// Wall-clock seconds from start() until now (or until drain finished).
  double elapsedSeconds = 0.0;
  /// recordsProcessed / elapsedSeconds.
  double recordsPerSecond = 0.0;

  /// Queue lag: batches ingested but not yet processed (nor discarded).
  std::size_t queueLagUnits() const {
    const std::size_t done = unitsProcessed + unitsDiscarded;
    return unitsIngested > done ? unitsIngested - done : 0;
  }
};

class DetectionEngine {
 public:
  /// Result delivery, called from worker threads (concurrently across
  /// shards — the sink must be thread-safe; ConcurrentAnomalyStore::sink()
  /// qualifies). May be null to discard results.
  using ResultSink =
      std::function<void(const std::string& stream, const InstanceResult&)>;

  DetectionEngine(EngineConfig config, ResultSink sink);
  /// Stops and joins outstanding threads.
  ~DetectionEngine();

  DetectionEngine(const DetectionEngine&) = delete;
  DetectionEngine& operator=(const DetectionEngine&) = delete;

  /// Register a stream before start(). The hierarchy must outlive the
  /// engine (the pipeline keeps a reference); the source is owned.
  /// Returns the stream id (dense, in registration order).
  std::size_t addStream(std::string name, const Hierarchy& hierarchy,
                        PipelineConfig config,
                        std::unique_ptr<RecordSource> source);

  std::size_t streamCount() const { return streams_.size(); }
  const std::string& streamName(std::size_t id) const;

  /// Launch the ingest + worker pools. Call once, after all addStream.
  void start();

  /// Block until every source is exhausted and every queue is drained,
  /// then stop the pools. Returns the final stats.
  EngineStats drain();

  /// Early shutdown: stop ingesting, discard queued work (the dropped
  /// batches are counted in EngineStats::unitsDiscarded, not processed),
  /// join. Safe to call repeatedly or after drain().
  void stop();

  /// Live (or final) counters. Thread-safe: may be polled from any thread
  /// while the pools run, including concurrently with drain()/stop().
  EngineStats stats() const;

  /// A stream's cumulative pipeline summary (with the ingest-side junk-row
  /// count folded in). Call after drain()/stop().
  RunSummary streamSummary(std::size_t id) const;

 private:
  struct StreamState;
  struct ShardState;

  void ingestLoop(ShardState& shard);
  void workerLoop(ShardState& shard);

  EngineConfig config_;
  ResultSink sink_;
  std::vector<std::unique_ptr<StreamState>> streams_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::atomic<bool> started_{false};
  bool joined_ = false;  // touched only by the control thread (drain/stop)
  std::atomic<bool> stopRequested_{false};
  // Timing is read by concurrent stats() pollers while drain()/stop()
  // finalize it, so both values live in atomics (nanoseconds on the
  // steady clock). finalElapsedNs_ < 0 means "still running".
  std::atomic<std::int64_t> startNs_{0};
  std::atomic<std::int64_t> finalElapsedNs_{-1};
};

}  // namespace tiresias::engine
