// DetectionEngine — concurrent multi-stream detection (the operational
// deployment the paper describes: continuous detection over many
// independent operational streams — per-dataset, per-region, per-hierarchy
// — on shared hardware).
//
// Architecture: a task-scheduled executor (engine::Scheduler). Each stream
// (a RecordSource paired with its own Hierarchy + TiresiasPipeline) owns a
// FIFO queue of timeunits; two thread pools, sized independently, move
// work through it:
//
//   ingest pool  — `ingestThreads` threads; streams are partitioned
//                  statically across them (one producer per stream keeps
//                  source order). Each thread sweeps its streams
//                  round-robin, batching one timeunit per stream per sweep
//                  (Step 1, TimeUnitBatcher over RecordSource::nextBatch)
//                  into the stream's queue. A stream whose queue is full —
//                  or a global queued-unit bound — makes the thread skip
//                  or park (backpressure), so memory stays bounded no
//                  matter how fast sources produce or how many streams are
//                  registered.
//   worker pool  — `workers` threads sharing the scheduler's ready queue.
//                  A worker claims a ready stream, advances its pipeline
//                  by at most `runBudget` units via
//                  TiresiasPipeline::processUnit, requeues it if backlog
//                  remains, and recycles batch buffers back to ingest
//                  (steady-state batching allocates nothing).
//
// A stream is owned by at most one worker at a time and its units arrive
// in source order, so an M-worker run is bit-identical to M=1 and to k
// sequential TiresiasPipeline::run calls (the equivalence the engine test
// asserts) — while a heavy or bursty stream can no longer stall streams
// that previously shared its shard, and thread count is decoupled from
// stream count. Results are delivered to a user sink tagged with the
// stream name; report::ConcurrentAnomalyStore is the ready-made
// thread-safe sink.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/pipeline.h"
#include "engine/scheduler.h"
#include "obs/metrics.h"
#include "persist/snapshot.h"
#include "stream/window.h"

namespace tiresias::engine {

struct EngineConfig {
  /// Worker pool size. 0 = one per hardware thread.
  std::size_t workers = 0;
  /// Ingest pool size; decoupled from `workers` (sources are usually far
  /// cheaper to batch than pipelines are to advance).
  std::size_t ingestThreads = 1;
  /// Max units a worker advances one stream by before requeueing it.
  std::size_t runBudget = 8;
  /// Per-stream queue bound, in timeunits. Smaller values bound memory
  /// tighter but trigger backpressure earlier.
  std::size_t streamQueueCapacity = 16;
  /// Global bound on queued units across all streams (the memory cap that
  /// holds no matter how many streams are registered).
  std::size_t totalQueueCapacity = 1024;
  /// Per-stage latency histograms + gauge sampling (obs::MetricsRegistry).
  /// On by default: the record path is lock-free and the measured overhead
  /// is committed in BENCH_engine.json (<2% target). Off = zero-cost
  /// (spans compile to one null-pointer branch).
  bool metrics = true;
  /// Gauge sampling period for the background sampler thread; 0 disables
  /// the sampler (stage histograms still record).
  std::size_t metricsSampleMillis = 50;
  /// Resident-stream cap for the hibernation paging layer. 0 = unlimited
  /// (no hibernation). When positive, at most this many streams keep live
  /// pipeline state in memory; colder streams (LRU by last-advanced unit)
  /// are evicted to hibernation snapshots and restored, bit-identically,
  /// on their next unit. Best-effort under concurrency: streams currently
  /// owned by a worker cannot be evicted, so the resident count can
  /// briefly exceed the cap by up to `workers`.
  std::size_t maxResidentStreams = 0;
  /// Where hibernation snapshots go. Empty = evicted state is kept as an
  /// in-memory serialized blob (still far smaller than the live detector);
  /// set = one snapshot file per stream under this directory (created on
  /// demand; a failed write falls back to the in-memory blob).
  std::string hibernateDir;
};

/// Live counters of one stream (a snapshot; the engine keeps atomics and
/// the scheduler's per-stream bookkeeping).
struct StreamStats {
  std::string name;
  std::size_t unitsIngested = 0;     // units pushed into the stream queue
  std::size_t unitsProcessed = 0;    // units consumed by the pipeline
  std::size_t unitsDiscarded = 0;    // units dropped by stop()
  std::size_t recordsProcessed = 0;
  std::size_t instancesDetected = 0;
  std::size_t anomaliesReported = 0;
  std::size_t junkRowsSkipped = 0;   // source-side skipped rows (CSV junk)
  std::size_t warmupUnitsBuffered = 0;  // units held in pipeline warm-up
  /// Stream-owned workspace bytes. 0 whenever the stream borrows from the
  /// engine's per-worker pool (the normal case); the pool itself shows up
  /// in EngineStats::workspaceBytes.
  std::size_t workspaceBytes = 0;
  std::size_t queueDepth = 0;        // current
  std::size_t maxQueueDepth = 0;     // high-water mark
  std::size_t runs = 0;              // worker claims of this stream
  std::size_t requeues = 0;          // claims that left backlog behind
};

/// Checkpoint/restore counters. Written by checkpoint()/restoreFrom(),
/// read tear-free by stats() pollers (the engine guards them with a
/// seqlock over relaxed atomics, so a concurrent snapshot never mixes
/// fields of two different checkpoints).
struct CheckpointStats {
  std::size_t checkpoints = 0;    // completed checkpoint() calls
  std::size_t restores = 0;       // completed restoreFrom() calls
  std::size_t lastBytes = 0;      // encoded size of the last snapshot
  std::size_t lastUnits = 0;      // aggregate unitsProcessed it captured
  double lastSeconds = 0.0;       // duration of the last checkpoint
  double totalSeconds = 0.0;      // cumulative checkpoint time
};

struct EngineStats {
  std::vector<StreamStats> perStream;
  /// Executor-level counters (ready-queue depth, claims, requeues,
  /// global queued units, producer backpressure waits).
  SchedulerStats scheduler;
  std::size_t ingestThreads = 0;
  // Aggregates over all streams:
  std::size_t streams = 0;
  std::size_t unitsIngested = 0;
  std::size_t unitsProcessed = 0;
  std::size_t unitsDiscarded = 0;
  std::size_t recordsProcessed = 0;
  std::size_t instancesDetected = 0;
  std::size_t anomaliesReported = 0;
  std::size_t junkRowsSkipped = 0;
  /// Units absorbed by pipelines still in warm-up (streams shorter than
  /// the detector window never leave warm-up and report zero instances).
  std::size_t warmupUnitsBuffered = 0;
  /// Total resident detect-workspace bytes: the engine's per-worker pool
  /// plus any stream-owned workspaces. Scales with `workers`, not with
  /// the stream count.
  std::size_t workspaceBytes = 0;
  /// Distinct Hierarchy objects behind the registered streams (streams
  /// sharing a handle share one hierarchy's memory).
  std::size_t distinctHierarchies = 0;
  /// Residency: streams holding live pipeline state in memory vs. streams
  /// paged out to hibernation snapshots, and the paging traffic so far.
  std::size_t residentStreams = 0;
  std::size_t hibernatedStreams = 0;
  std::size_t hibernateEvictions = 0;
  std::size_t hibernateWakes = 0;
  std::size_t maxQueueDepth = 0;      // max over per-stream high-water marks
  std::size_t backpressureWaits = 0;  // == scheduler.backpressureWaits
  /// Units processed by the busiest stream, and its share of the total —
  /// 1/streams for a perfectly even mix, approaching 1.0 under heavy skew.
  std::size_t busiestStreamUnits = 0;
  double busiestStreamShare = 0.0;
  /// Checkpoint/restore counters and durations.
  CheckpointStats checkpoint;
  /// Per-stage latency percentiles and sampled gauges (empty with
  /// `enabled == false` when the engine runs with metrics off).
  obs::MetricsSnapshot metrics;
  /// Wall-clock seconds from start() until now (or until drain finished).
  double elapsedSeconds = 0.0;
  /// recordsProcessed / elapsedSeconds.
  double recordsPerSecond = 0.0;

  /// Queue lag: units ingested but not yet processed (nor discarded).
  std::size_t queueLagUnits() const {
    const std::size_t done = unitsProcessed + unitsDiscarded;
    return unitsIngested > done ? unitsIngested - done : 0;
  }
};

class DetectionEngine {
 public:
  /// Result delivery, called from worker threads (concurrently across
  /// streams — the sink must be thread-safe; ConcurrentAnomalyStore::sink()
  /// qualifies). May be null to discard results.
  using ResultSink =
      std::function<void(const std::string& stream, const InstanceResult&)>;

  DetectionEngine(EngineConfig config, ResultSink sink);
  /// Stops and joins outstanding threads.
  ~DetectionEngine();

  DetectionEngine(const DetectionEngine&) = delete;
  DetectionEngine& operator=(const DetectionEngine&) = delete;

  /// Register a stream before start(). The engine keeps the shared
  /// hierarchy handle alive for its own lifetime (streams registered with
  /// the same handle share one hierarchy's memory); the source is owned.
  /// Returns the stream id (dense, in registration order).
  std::size_t addStream(std::string name,
                        std::shared_ptr<const Hierarchy> hierarchy,
                        PipelineConfig config,
                        std::unique_ptr<RecordSource> source);

  std::size_t streamCount() const { return streams_.size(); }
  const std::string& streamName(std::size_t id) const;

  /// Launch the worker + ingest pools. Call once, after all addStream.
  void start();

  /// Block until every source is exhausted and every queue is drained,
  /// then stop the pools. Returns the final stats.
  EngineStats drain();

  /// Early shutdown: stop ingesting, discard queued work (the dropped
  /// units are counted in EngineStats::unitsDiscarded, not processed),
  /// join. Safe to call repeatedly or after drain().
  void stop();

  /// Live (or final) counters. Thread-safe: may be polled from any thread
  /// while the pools run, including concurrently with drain()/stop().
  EngineStats stats() const;

  /// A stream's cumulative pipeline summary (with the ingest-side junk-row
  /// count folded in). Must be called after drain()/stop() — calling it
  /// while the pools run would race the owning worker's pipeline, so it
  /// fails fast instead.
  RunSummary streamSummary(std::size_t id) const;

  /// Appends caller state (e.g. the anomaly store) into the snapshot's
  /// user section, inside the quiesced window, so it is atomically
  /// consistent with the pipeline state in the same file.
  using ExtraWriter = std::function<void(persist::Serializer&)>;
  using ExtraReader = std::function<void(persist::Deserializer&)>;

  /// Write a consistent snapshot of every stream's pipeline state and
  /// cumulative summary to `path` (write-to-temp + rename, so the
  /// published file is always complete). While the pools run this
  /// quiesces first: ingestion pauses and the workers drain every queued
  /// unit, so the snapshot sits on a unit boundary for every stream;
  /// processing resumes before the call returns. May be called from any
  /// thread, concurrently with drain()/stop() (a checkpoint racing stop()
  /// captures the post-discard state). Throws persist::SnapshotError on
  /// I/O failure.
  void checkpoint(const std::string& path, const ExtraWriter& extra = {});

  /// Load a checkpoint into this engine before start(). Every stream
  /// named in the snapshot must already be registered (addStream) with an
  /// identical configuration; its source should cover at least the
  /// not-yet-processed suffix — ingestion resumes at each pipeline's
  /// resumeTime(), so re-registering the same source from the beginning
  /// simply skips the already-processed prefix. Streams registered but
  /// absent from the snapshot start fresh. Junk-row counts restart at the
  /// checkpointed value plus whatever the new source skips. Returns the
  /// number of streams restored; throws persist::SnapshotError on
  /// mismatch or corruption.
  std::size_t restoreFrom(const std::string& path,
                          const ExtraReader& extra = {});

  /// Extra gauges recorded on every sampler pass (after the engine's own).
  /// Lets the embedder fold sources it owns — reconnect counters, shed
  /// connections, injected faults — into the same registry the stats
  /// endpoint serves. Called from the sampler thread; must be thread-safe
  /// and must not touch the engine. Set before start().
  using GaugeSampler = std::function<void(obs::MetricsRegistry&)>;
  void setGaugeSampler(GaugeSampler sampler) {
    gaugeSampler_ = std::move(sampler);
  }

 private:
  struct StreamState;

  void ingestLoop(std::size_t threadIndex);
  /// Parks the calling ingest thread while a checkpoint is quiescing.
  void maybePauseIngest();
  /// Worker-side unit processor (serialized per stream by the scheduler).
  /// Lends workspacePool_[workerIndex] to the stream for the duration of
  /// the call and wakes the stream first if it is hibernated.
  void processOne(std::size_t workerIndex, std::size_t id,
                  TimeUnitBatch& batch);
  /// Restore a hibernated stream's pipeline from its blob/file. Call with
  /// the stream's pageMu held and a workspace already attached.
  void wakeStream(std::size_t id, StreamState& stream);
  /// Serialize a stream's pipeline state and reset it to a shell. Call
  /// with the stream's pageMu held.
  void hibernateStream(std::size_t id, StreamState& stream);
  /// LRU bookkeeping after a stream advanced one unit (or was restored):
  /// marks it resident and most-recently-used.
  void noteAdvanced(std::size_t id, StreamState& stream);
  /// Evict least-recently-advanced streams (never `protectId`, never a
  /// stream a worker currently owns) until the resident count is within
  /// config_.maxResidentStreams. No-op when the cap is 0.
  void enforceResidentCap(std::size_t protectId);
  std::string hibernatePath(std::size_t id) const;
  /// Background gauge sampler (queue depths, workspace bytes, skew);
  /// one pass every metricsSampleMillis until stopped.
  void samplerLoop();
  void sampleGauges();
  void stopSampler();

  std::vector<Record> takeRecycled();
  void recycleBuffer(std::vector<Record>&& buf);

  EngineConfig config_;
  ResultSink sink_;
  /// Metrics registry (null when config.metrics is false). Created before
  /// the scheduler and destroyed after it — every span holds a plain
  /// pointer. Shards: [0] unbound, [1..W] workers, [W+1..W+I] ingest,
  /// [W+I+1] the sampler.
  std::unique_ptr<obs::MetricsRegistry> registry_;
  GaugeSampler gaugeSampler_;
  std::vector<std::unique_ptr<StreamState>> streams_;
  /// Distinct hierarchies behind the streams, in first-registration order.
  /// Holding the handles here is what makes addStream's lifetime promise:
  /// a hierarchy outlives the engine even if the caller drops its copy.
  std::vector<std::shared_ptr<const Hierarchy>> hierarchies_;
  /// Identity index over hierarchies_ so registering 100k streams that
  /// share a handle stays O(1) per stream.
  std::unordered_set<const void*> hierarchyKeys_;
  std::unique_ptr<Scheduler> scheduler_;

  // Workspace pool: one DetectWorkspace per worker, lent to whichever
  // stream that worker is advancing (attach + generation bump per unit).
  // Resident scratch therefore scales with `workers`, not stream count.
  // poolBytes_[w] mirrors pool[w]->bytes(), written only by worker w after
  // it finishes a unit, so stats/sampler threads never touch a workspace
  // a worker might be rebinding.
  std::vector<std::shared_ptr<DetectWorkspace>> workspacePool_;
  std::vector<std::atomic<std::size_t>> poolBytes_;

  // Residency/paging state. residencyMu_ guards only the LRU list and the
  // per-stream inLru flags — never held across serialization. Eviction
  // claims a victim's pageMu with try_lock under residencyMu_ (a stream
  // mid-advance is simply skipped), then serializes outside residencyMu_.
  std::mutex residencyMu_;
  std::list<std::size_t> lru_;  // front = least recently advanced
  std::atomic<std::size_t> residentCount_{0};
  std::atomic<std::size_t> hibernatedCount_{0};
  std::atomic<std::size_t> evictions_{0};
  std::atomic<std::size_t> wakes_{0};
  std::vector<std::thread> ingestPool_;
  /// Gauge sampler thread (running iff registry_ and sample period > 0).
  std::thread sampler_;
  std::mutex samplerMutex_;
  std::condition_variable samplerCv_;
  bool samplerStop_ = false;
  std::atomic<bool> started_{false};
  std::atomic<bool> joined_{false};  // pools stopped; summaries are stable
  std::atomic<bool> stopRequested_{false};
  /// Serializes drain()/stop() against each other (they may be issued
  /// from different threads; the joins must not interleave). Note a
  /// stop() issued while drain() is blocked joining waits for the drain
  /// to finish — it cannot interrupt it.
  std::mutex controlMutex_;

  // Record buffers cycle ingest -> stream queue -> worker -> back to
  // ingest, so steady-state batching allocates nothing. Bounded: the pool
  // never holds more than what can be in flight.
  std::mutex recycleMutex_;
  std::vector<std::vector<Record>> recycle_;
  std::size_t recycleCap_ = 0;

  // Timing is read by concurrent stats() pollers while drain()/stop()
  // finalize it, so both values live in atomics (nanoseconds on the
  // steady clock). finalElapsedNs_ < 0 means "still running".
  std::atomic<std::int64_t> startNs_{0};
  std::atomic<std::int64_t> finalElapsedNs_{-1};

  /// Serializes checkpoint()/restoreFrom() against each other. Distinct
  /// from controlMutex_ on purpose: drain() holds controlMutex_ for its
  /// entire blocking join, and a periodic checkpointer must still be able
  /// to snapshot while the engine drains.
  std::mutex checkpointMutex_;

  // Ingest-pause handshake for the quiesce window: checkpoint() raises
  // the flag, each ingest thread parks on pauseCv_ and acks, and the
  // checkpointer waits until every live ingest thread is parked before
  // asking the scheduler to drain to a unit boundary.
  std::atomic<bool> ingestPauseFlag_{false};
  std::mutex pauseMutex_;
  std::condition_variable pauseCv_;      // paused ingest threads park here
  std::condition_variable pauseAckCv_;   // checkpointer waits for acks here
  bool ingestPaused_ = false;
  std::size_t activeIngest_ = 0;  // ingest threads that have not exited
  std::size_t pausedIngest_ = 0;  // ingest threads currently parked

  // Checkpoint counters: a seqlock over relaxed atomics. Writers bump
  // ckptSeq_ to odd, store the fields, bump back to even; readers retry
  // until they see a stable even sequence, so a stats() snapshot can
  // never tear across fields (every access is atomic — TSan-clean).
  std::atomic<std::uint64_t> ckptSeq_{0};
  std::atomic<std::size_t> ckptCount_{0};
  std::atomic<std::size_t> ckptRestores_{0};
  std::atomic<std::size_t> ckptLastBytes_{0};
  std::atomic<std::size_t> ckptLastUnits_{0};
  std::atomic<std::int64_t> ckptLastNs_{0};
  std::atomic<std::int64_t> ckptTotalNs_{0};
};

}  // namespace tiresias::engine
