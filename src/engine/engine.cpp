#include "engine/engine.h"

#include <algorithm>
#include <chrono>

#include "common/expect.h"

namespace tiresias::engine {

namespace {

std::int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// One registered stream: the pipeline plus everything it consumes.
struct DetectionEngine::StreamState {
  std::string name;
  std::unique_ptr<RecordSource> source;
  TiresiasPipeline pipeline;
  /// Cumulative counters; written only by the worker currently owning the
  /// stream (serialized by the scheduler), read after the pools stop.
  RunSummary summary;
  // Mirrors of the summary that stats() may poll while the pools run.
  std::atomic<std::size_t> sourceSkipped{0};
  std::atomic<std::size_t> warmupBuffered{0};
  std::atomic<std::size_t> recordsProcessed{0};
  std::atomic<std::size_t> instancesDetected{0};
  std::atomic<std::size_t> anomaliesReported{0};
  /// Ingest-side batcher state; null until ingest begins. Touched only by
  /// the stream's single ingest thread.
  std::unique_ptr<TimeUnitBatcher> batcher;
  bool exhausted = false;

  StreamState(std::string streamName, const Hierarchy& hierarchy,
              PipelineConfig config, std::unique_ptr<RecordSource> src)
      : name(std::move(streamName)),
        source(std::move(src)),
        pipeline(hierarchy, std::move(config)) {}
};

DetectionEngine::DetectionEngine(EngineConfig config, ResultSink sink)
    : config_(config), sink_(std::move(sink)) {
  if (config_.workers == 0) {
    config_.workers = std::max(1u, std::thread::hardware_concurrency());
  }
  TIRESIAS_EXPECT(config_.ingestThreads > 0,
                  "engine needs at least one ingest thread");
  TIRESIAS_EXPECT(config_.runBudget > 0, "run budget must be positive");
  TIRESIAS_EXPECT(config_.streamQueueCapacity > 0,
                  "per-stream queue capacity must be positive");
  TIRESIAS_EXPECT(config_.totalQueueCapacity > 0,
                  "total queue capacity must be positive");
  SchedulerConfig scfg;
  scfg.workers = config_.workers;
  scfg.runBudget = config_.runBudget;
  scfg.streamQueueCapacity = config_.streamQueueCapacity;
  scfg.totalQueueCapacity = config_.totalQueueCapacity;
  scheduler_ = std::make_unique<Scheduler>(
      scfg, [this](std::size_t id, TimeUnitBatch& b) { processOne(id, b); });
  recycleCap_ =
      config_.totalQueueCapacity + config_.workers + config_.ingestThreads;
}

DetectionEngine::~DetectionEngine() { stop(); }

std::size_t DetectionEngine::addStream(std::string name,
                                       const Hierarchy& hierarchy,
                                       PipelineConfig config,
                                       std::unique_ptr<RecordSource> source) {
  TIRESIAS_EXPECT(!started_.load(), "addStream() after start()");
  TIRESIAS_EXPECT(source != nullptr, "stream needs a source");
  const std::size_t id = streams_.size();
  streams_.push_back(std::make_unique<StreamState>(
      std::move(name), hierarchy, std::move(config), std::move(source)));
  const std::size_t schedId = scheduler_->addStream();
  TIRESIAS_EXPECT(schedId == id, "scheduler/stream id mismatch");
  return id;
}

const std::string& DetectionEngine::streamName(std::size_t id) const {
  TIRESIAS_EXPECT(id < streams_.size(), "stream id out of range");
  return streams_[id]->name;
}

void DetectionEngine::start() {
  TIRESIAS_EXPECT(!started_.load(), "start() called twice");
  startNs_.store(nowNs(), std::memory_order_release);
  started_.store(true, std::memory_order_release);
  scheduler_->start();
  ingestPool_.reserve(config_.ingestThreads);
  for (std::size_t t = 0; t < config_.ingestThreads; ++t) {
    ingestPool_.emplace_back([this, t] { ingestLoop(t); });
  }
}

std::vector<Record> DetectionEngine::takeRecycled() {
  std::lock_guard lock(recycleMutex_);
  if (recycle_.empty()) return {};
  std::vector<Record> buf = std::move(recycle_.back());
  recycle_.pop_back();
  return buf;
}

void DetectionEngine::recycleBuffer(std::vector<Record>&& buf) {
  buf.clear();
  std::lock_guard lock(recycleMutex_);
  if (recycle_.size() < recycleCap_) recycle_.push_back(std::move(buf));
}

void DetectionEngine::ingestLoop(std::size_t threadIndex) {
  // Static partition: stream id modulo pool size. One producer per stream
  // preserves source order; the scheduler takes care of the rest.
  std::vector<std::pair<std::size_t, StreamState*>> mine;
  for (std::size_t id = threadIndex; id < streams_.size();
       id += config_.ingestThreads) {
    StreamState* s = streams_[id].get();
    s->batcher = std::make_unique<TimeUnitBatcher>(
        *s->source, s->pipeline.config().delta, s->pipeline.config().startTime);
    mine.emplace_back(id, s);
  }
  // Round-robin one timeunit per stream per sweep, so every stream
  // advances at a similar pace. A stream whose queue is full is skipped
  // (its backlog is the workers' problem, not its neighbors'); when no
  // stream accepts anything in a whole sweep, park until a unit drains.
  std::size_t live = mine.size();
  TimeUnitBatch batch;
  while (live > 0 && !stopRequested_.load(std::memory_order_relaxed)) {
    bool progressed = false;
    for (auto& [id, stream] : mine) {
      if (stream->exhausted) continue;
      if (stopRequested_.load(std::memory_order_relaxed)) return;
      if (!scheduler_->canAccept(id)) continue;  // backpressure: skip
      // Batch into a buffer recycled from the workers (allocation-free
      // once the pool is primed).
      batch.records = takeRecycled();
      const bool more = stream->batcher->next(batch);
      stream->sourceSkipped.store(stream->source->skippedRecords(),
                                  std::memory_order_relaxed);
      if (!more) {
        stream->exhausted = true;
        --live;
        scheduler_->finishStream(id);
        recycleBuffer(std::move(batch.records));
        progressed = true;
        continue;
      }
      if (!scheduler_->submit(id, std::move(batch))) return;  // stopping
      progressed = true;
    }
    if (!progressed && live > 0) {
      if (!scheduler_->waitForSpace()) return;  // stopping
    }
  }
}

void DetectionEngine::processOne(std::size_t id, TimeUnitBatch& batch) {
  StreamState& stream = *streams_[id];
  RunSummary& sum = stream.summary;
  const std::size_t instancesBefore = sum.instancesDetected;
  const std::size_t anomaliesBefore = sum.anomaliesReported;
  const std::size_t batchRecords = batch.records.size();
  stream.pipeline.processUnit(
      batch,
      [&](const InstanceResult& r) {
        if (sink_) sink_(stream.name, r);
      },
      sum);
  stream.warmupBuffered.store(sum.warmupUnitsBuffered,
                              std::memory_order_relaxed);
  stream.recordsProcessed.fetch_add(batchRecords, std::memory_order_relaxed);
  stream.instancesDetected.fetch_add(sum.instancesDetected - instancesBefore,
                                     std::memory_order_relaxed);
  stream.anomaliesReported.fetch_add(sum.anomaliesReported - anomaliesBefore,
                                     std::memory_order_relaxed);
  recycleBuffer(std::move(batch.records));
}

EngineStats DetectionEngine::drain() {
  TIRESIAS_EXPECT(started_.load(), "drain() before start()");
  // drain() and stop() may be issued from different threads (a watchdog
  // stopping a draining engine); serialize them so the joined_ check and
  // the joins themselves can't interleave into a double-join.
  std::lock_guard control(controlMutex_);
  if (!joined_.load()) {
    // Each ingest thread ends on its own once its sources are exhausted,
    // finishing its streams; the scheduler closes the ready queue when the
    // last stream drains, which ends the workers.
    for (auto& t : ingestPool_) {
      if (t.joinable()) t.join();
    }
    scheduler_->drainAndJoin();
    finalElapsedNs_.store(nowNs() - startNs_.load(std::memory_order_relaxed),
                          std::memory_order_release);
    joined_.store(true, std::memory_order_release);
  }
  return stats();
}

void DetectionEngine::stop() {
  if (!started_.load()) return;
  std::lock_guard control(controlMutex_);
  if (joined_.load()) return;
  stopRequested_.store(true);
  // Releases parked producers (submit/waitForSpace return false), closes
  // the ready queue in discard mode and drops the queued backlog: stop()
  // means "discard queued work", in contrast to drain().
  scheduler_->stopAndJoin();
  for (auto& t : ingestPool_) {
    if (t.joinable()) t.join();
  }
  finalElapsedNs_.store(nowNs() - startNs_.load(std::memory_order_relaxed),
                        std::memory_order_release);
  joined_.store(true, std::memory_order_release);
}

EngineStats DetectionEngine::stats() const {
  EngineStats out;
  out.streams = streams_.size();
  out.ingestThreads = config_.ingestThreads;
  if (scheduler_) out.scheduler = scheduler_->stats();
  out.scheduler.workers = config_.workers;
  out.backpressureWaits = out.scheduler.backpressureWaits;
  // One bulk snapshot: per-stream streamStats() calls in a loop would
  // take the scheduler lock once per stream against the hot path.
  std::vector<StreamQueueStats> queueStats;
  if (scheduler_) queueStats = scheduler_->allStreamStats();
  out.perStream.reserve(streams_.size());
  for (std::size_t id = 0; id < streams_.size(); ++id) {
    const StreamState& stream = *streams_[id];
    StreamStats s;
    s.name = stream.name;
    if (id < queueStats.size()) {
      const StreamQueueStats& q = queueStats[id];
      s.unitsIngested = q.unitsEnqueued;
      s.unitsProcessed = q.unitsProcessed;
      s.unitsDiscarded = q.unitsDiscarded;
      s.queueDepth = q.queueDepth;
      s.maxQueueDepth = q.maxQueueDepth;
      s.runs = q.runs;
      s.requeues = q.requeues;
    }
    s.recordsProcessed = stream.recordsProcessed.load(std::memory_order_relaxed);
    s.instancesDetected =
        stream.instancesDetected.load(std::memory_order_relaxed);
    s.anomaliesReported =
        stream.anomaliesReported.load(std::memory_order_relaxed);
    s.junkRowsSkipped = stream.sourceSkipped.load(std::memory_order_relaxed);
    s.warmupUnitsBuffered = stream.warmupBuffered.load(std::memory_order_relaxed);
    out.unitsIngested += s.unitsIngested;
    out.unitsProcessed += s.unitsProcessed;
    out.unitsDiscarded += s.unitsDiscarded;
    out.recordsProcessed += s.recordsProcessed;
    out.instancesDetected += s.instancesDetected;
    out.anomaliesReported += s.anomaliesReported;
    out.junkRowsSkipped += s.junkRowsSkipped;
    out.warmupUnitsBuffered += s.warmupUnitsBuffered;
    out.maxQueueDepth = std::max(out.maxQueueDepth, s.maxQueueDepth);
    out.busiestStreamUnits = std::max(out.busiestStreamUnits, s.unitsProcessed);
    out.perStream.push_back(std::move(s));
  }
  if (out.unitsProcessed > 0) {
    out.busiestStreamShare = static_cast<double>(out.busiestStreamUnits) /
                             static_cast<double>(out.unitsProcessed);
  }
  std::int64_t elapsedNs = 0;
  if (started_.load(std::memory_order_acquire)) {
    const std::int64_t fin = finalElapsedNs_.load(std::memory_order_acquire);
    elapsedNs =
        fin >= 0 ? fin : nowNs() - startNs_.load(std::memory_order_acquire);
  }
  out.elapsedSeconds = static_cast<double>(elapsedNs) / 1e9;
  if (out.elapsedSeconds > 0.0) {
    out.recordsPerSecond =
        static_cast<double>(out.recordsProcessed) / out.elapsedSeconds;
  }
  return out;
}

RunSummary DetectionEngine::streamSummary(std::size_t id) const {
  TIRESIAS_EXPECT(id < streams_.size(), "stream id out of range");
  // The summary is plain (non-atomic) state written by whichever worker
  // owns the stream; it is only stable once the pools have stopped.
  TIRESIAS_EXPECT(!started_.load(std::memory_order_acquire) ||
                      joined_.load(std::memory_order_acquire),
                  "streamSummary() while the pools are running — call it "
                  "after drain() or stop()");
  const auto& stream = *streams_[id];
  RunSummary sum = stream.summary;
  // Fold the ingest-side junk-row count in at read time (the worker never
  // sees the source, so the pipeline summary alone can't carry it).
  sum.junkRowsSkipped = stream.sourceSkipped.load(std::memory_order_relaxed);
  return sum;
}

}  // namespace tiresias::engine
